package rolap_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	rolap "repro"
)

// ExampleBuild builds a tiny full cube and runs point queries.
func ExampleBuild() {
	schema := rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "city", Cardinality: 3},
		{Name: "year", Cardinality: 2},
	}}
	in, err := rolap.NewInput(schema)
	if err != nil {
		log.Fatal(err)
	}
	// (city, year, revenue)
	facts := [][3]uint32{{0, 0, 10}, {0, 1, 20}, {1, 0, 5}, {2, 1, 7}, {0, 0, 3}}
	for _, f := range facts {
		if err := in.AddRow([]uint32{f[0], f[1]}, int64(f[2])); err != nil {
			log.Fatal(err)
		}
	}
	cube, err := rolap.Build(in, rolap.Options{Processors: 2})
	if err != nil {
		log.Fatal(err)
	}
	total, _ := cube.Aggregate(nil, nil)
	city0, _ := cube.Aggregate([]string{"city"}, []uint32{0})
	pair, _ := cube.Aggregate([]string{"city", "year"}, []uint32{0, 0})
	fmt.Println(total, city0, pair)
	// Output: 45 33 13
}

// ExampleLoadCSV ingests a CSV fact table with string dimensions and
// exports an aggregated view back to CSV.
func ExampleLoadCSV() {
	const facts = `country,product,measure
de,bolt,4
de,nut,6
fr,bolt,1
`
	in, err := rolap.LoadCSV(strings.NewReader(facts), rolap.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cube, err := rolap.Build(in, rolap.Options{Processors: 2})
	if err != nil {
		log.Fatal(err)
	}
	vw, err := cube.View([]string{"country"})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vw.WriteCSV(&buf, in); err != nil {
		log.Fatal(err)
	}
	fmt.Print(buf.String())
	// Output:
	// country,measure
	// de,10
	// fr,1
}

// ExampleCube_GroupBy answers an ad-hoc filtered roll-up from the
// materialized views.
func ExampleCube_GroupBy() {
	schema := rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "store", Cardinality: 4},
		{Name: "promo", Cardinality: 2},
	}}
	in, _ := rolap.NewInput(schema)
	in.AddRow([]uint32{0, 1}, 10)
	in.AddRow([]uint32{0, 0}, 99)
	in.AddRow([]uint32{1, 1}, 20)
	cube, err := rolap.Build(in, rolap.Options{Processors: 2})
	if err != nil {
		log.Fatal(err)
	}
	promoSales, err := cube.GroupBy([]string{"store"}, map[string]uint32{"promo": 1})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < promoSales.Len(); i++ {
		key, m := promoSales.Row(i)
		fmt.Printf("store %d: %d\n", key[0], m)
	}
	// Output:
	// store 0: 10
	// store 1: 20
}
