package main

import (
	"math/rand"
	"strings"
	"testing"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		rows:    1500,
		procs:   []int{1, 2},
		queries: 30,
		workers: 4,
		cache:   64,
		seed:    7,
	}
	if err := run(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "q/sim_s") {
		t.Fatalf("missing table header:\n%s", out)
	}
	// One line per sweep point plus banner and header.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 3 {
		t.Fatalf("unexpected output shape (%d newlines):\n%s", lines, out)
	}
}

func TestRunReplicaSweep(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		rows:       1500,
		queries:    30,
		workers:    4,
		cache:      64,
		seed:       7,
		replicas:   []int{1, 2},
		leaderP:    2,
		maxLag:     4,
		snapEvery:  2,
		ingBatches: 2,
		ingRows:    50,
	}
	if err := runReplicas(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "speedup") {
		t.Fatalf("missing table header:\n%s", out)
	}
	// Banner, header, one line per replica count.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 3 {
		t.Fatalf("unexpected output shape (%d newlines):\n%s", lines, out)
	}
}

func TestPercentile(t *testing.T) {
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
	s := []float64{1, 2, 3, 4, 5}
	if p := percentile(s, 0.5); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile(s, 1.0); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestMakeWorkloadDeterministic(t *testing.T) {
	cfg := config{queries: 20}
	a := makeWorkload(cfg, newRand(3))
	b := makeWorkload(cfg, newRand(3))
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i].group, ",") != strings.Join(b[i].group, ",") {
			t.Fatalf("workload %d differs across identical seeds", i)
		}
	}
}
