// The -advisor scenario: workload-driven adaptive materialization.
//
// Three arms serve the identical Zipf-skewed group-by stream,
// sequentially and with caching disabled, so per-query simulated cost
// is fully attributable to the materialized view set:
//
//   - full:    the full cube (every view), the latency floor.
//   - static:  a minimal cube materializing only the full view — every
//     query is a superset fallback scan, the latency ceiling.
//   - advisor: starts exactly like static, but a materialization
//     advisor steps every -advise-every queries, mining the demand
//     counters and building hot rollups online / retiring cold ones.
//
// The report (optionally BENCH_PR8.json via -out) carries the advisor
// arm's convergence trajectory and the two acceptance ratios: final
// p50 vs the full cube, and final view count vs the full lattice.
// Every answer in every arm is digest-checked against the full-cube
// arm — adaptation must never change an answer.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"sort"

	rolap "repro"
)

// advisorShape is one group-by shape of the Zipf mix.
type advisorShape struct {
	group []string
}

// makeAdvisorMix builds the deterministic query stream: a pool of
// distinct 1–2 dimension group-by shapes (plus the grand total) drawn
// through a Zipf distribution, so a few shapes dominate and a long
// tail stays cold.
func makeAdvisorMix(cfg config) ([]advisorShape, []int) {
	dims := benchSchema().Dimensions
	rng := rand.New(rand.NewSource(cfg.seed + 3))
	seen := map[string]bool{}
	var pool []advisorShape
	add := func(group []string) {
		key := fmt.Sprint(group)
		if !seen[key] {
			seen[key] = true
			pool = append(pool, advisorShape{group: group})
		}
	}
	add(nil) // grand total
	for len(pool) < 14 {
		perm := rng.Perm(len(dims))
		n := 1 + rng.Intn(2)
		var group []string
		for _, u := range perm[:n] {
			group = append(group, dims[u].Name)
		}
		add(group)
	}
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(pool)-1))
	picks := make([]int, cfg.queries)
	for i := range picks {
		picks[i] = int(zipf.Uint64())
	}
	return pool, picks
}

// digestView folds a group-by result into a comparable fingerprint.
func digestView(vw *rolap.View) uint64 {
	h := fnv.New64a()
	for _, a := range vw.Attributes {
		fmt.Fprintf(h, "%s|", a)
	}
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		fmt.Fprintf(h, "%v=%d;", key, m)
	}
	return h.Sum64()
}

// trajPoint is one advisor step of the convergence trajectory.
type trajPoint struct {
	Step         int     `json:"step"`
	Views        int     `json:"views"`
	StorageBytes int64   `json:"storage_bytes"`
	Materialized int64   `json:"materialized_total"`
	Retired      int64   `json:"retired_total"`
	P50Ms        float64 `json:"window_p50_ms"`
	P99Ms        float64 `json:"window_p99_ms"`
}

// armResult is one arm's summary.
type armResult struct {
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	SimSeconds   float64 `json:"sim_seconds"`
	Views        int     `json:"views"`
	StorageBytes int64   `json:"storage_bytes"`
	RowsScanned  int64   `json:"rows_scanned"`
}

// advisorReport is the BENCH_PR8.json payload.
type advisorReport struct {
	Bench      string `json:"bench"`
	Rows       int    `json:"rows"`
	Procs      int    `json:"procs"`
	Queries    int    `json:"queries"`
	StepEvery  int    `json:"advise_every"`
	Seed       int64  `json:"seed"`
	PoolShapes int    `json:"pool_shapes"`

	Full    armResult `json:"full"`
	Static  armResult `json:"static"`
	Advisor armResult `json:"advisor"`

	Trajectory   []trajPoint `json:"trajectory"`
	FinalP50Ms   float64     `json:"advisor_final_window_p50_ms"`
	FinalP99Ms   float64     `json:"advisor_final_window_p99_ms"`
	P50RatioFull float64     `json:"advisor_final_p50_over_full_p50"`
	ViewFraction float64     `json:"advisor_view_fraction_of_full"`
	Converged    bool        `json:"converged"`

	OracleChecked    int `json:"oracle_checked"`
	OracleMismatches int `json:"oracle_mismatches"`
}

// serveAdvisorArm drives the workload through one arm. adv non-nil
// steps the advisor every stepEvery queries and records the
// trajectory. Returns per-query latencies, per-query digests, and the
// trajectory (nil without an advisor).
func serveAdvisorArm(cube *rolap.Cube, pool []advisorShape, picks []int,
	adv *rolap.Advisor, stepEvery int) ([]float64, []uint64, []trajPoint, *rolap.ServerStats, error) {
	srv, err := cube.NewServer(rolap.ServerOptions{
		Workers: 1, QueueDepth: len(picks) + 1, CacheSize: -1, NoCoalesce: true,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ctx := context.Background()
	lat := make([]float64, 0, len(picks))
	digests := make([]uint64, 0, len(picks))
	var traj []trajPoint
	windowStart := 0
	for i, k := range picks {
		sh := pool[k]
		vw, qm, err := srv.GroupBy(ctx, sh.group, nil)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("query %d %v: %w", i, sh.group, err)
		}
		lat = append(lat, qm.SimSeconds)
		digests = append(digests, digestView(vw))
		if adv != nil && stepEvery > 0 && (i+1)%stepEvery == 0 {
			if _, err := adv.Step(); err != nil {
				return nil, nil, nil, nil, fmt.Errorf("advisor step: %w", err)
			}
			st := adv.Stats()
			win := append([]float64(nil), lat[windowStart:]...)
			sort.Float64s(win)
			traj = append(traj, trajPoint{
				Step:         int(st.Steps),
				Views:        st.CurrentViews,
				StorageBytes: st.StorageBytes,
				Materialized: st.Materialized,
				Retired:      st.Retired,
				P50Ms:        1e3 * percentile(win, 0.50),
				P99Ms:        1e3 * percentile(win, 0.99),
			})
			windowStart = len(lat)
		}
	}
	st := srv.Stats()
	return lat, digests, traj, &st, nil
}

func summarize(lat []float64, st *rolap.ServerStats, views int, storage int64) armResult {
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	return armResult{
		P50Ms:        1e3 * percentile(sorted, 0.50),
		P99Ms:        1e3 * percentile(sorted, 0.99),
		SimSeconds:   st.SimSeconds,
		Views:        views,
		StorageBytes: storage,
		RowsScanned:  st.RowsScanned,
	}
}

// cubeStorageBytes sums the materialized views' row storage.
func cubeStorageBytes(c *rolap.Cube) int64 {
	met := c.Metrics()
	return met.OutputBytes
}

func runAdvisor(cfg config, w io.Writer) error {
	pool, picks := makeAdvisorMix(cfg)
	procs := cfg.procs[0]
	dims := benchSchema().Dimensions
	var allNames []string
	for _, d := range dims {
		allNames = append(allNames, d.Name)
	}
	fullViews := 1 << len(dims)

	build := func(minimal bool) (*rolap.Cube, error) {
		in, err := buildInput(cfg)
		if err != nil {
			return nil, err
		}
		opts := rolap.Options{Processors: procs}
		if minimal {
			opts.SelectedViews = [][]string{allNames}
		}
		return rolap.Build(in, opts)
	}

	// Arm 1: full cube — the floor and the answer oracle.
	fullCube, err := build(false)
	if err != nil {
		return fmt.Errorf("qbench: build full: %w", err)
	}
	fullLat, oracle, _, fullStats, err := serveAdvisorArm(fullCube, pool, picks, nil, 0)
	if err != nil {
		return fmt.Errorf("qbench: full arm: %w", err)
	}

	// Arm 2: static-minimal — every query scans the full view.
	staticCube, err := build(true)
	if err != nil {
		return fmt.Errorf("qbench: build static: %w", err)
	}
	staticLat, staticDig, _, staticStats, err := serveAdvisorArm(staticCube, pool, picks, nil, 0)
	if err != nil {
		return fmt.Errorf("qbench: static arm: %w", err)
	}

	// Arm 3: adaptive — static start plus a stepping advisor.
	advCube, err := build(true)
	if err != nil {
		return fmt.Errorf("qbench: build advisor: %w", err)
	}
	budget := fullViews * 35 / 100 // the acceptance cap, enforced by the advisor itself
	adv, err := advCube.NewAdvisor(rolap.AdvisorOptions{
		MaxViews:           budget,
		MinFallbacks:       2,
		MaterializePerStep: 2,
		RetirePerStep:      1,
		Seed:               cfg.seed,
	})
	if err != nil {
		return err
	}
	advLat, advDig, traj, advStats, err := serveAdvisorArm(advCube, pool, picks, adv, cfg.stepEvery)
	if err != nil {
		return fmt.Errorf("qbench: advisor arm: %w", err)
	}

	mismatches := 0
	for i := range oracle {
		if staticDig[i] != oracle[i] || advDig[i] != oracle[i] {
			mismatches++
		}
	}

	rep := advisorReport{
		Bench:      "advisor-convergence",
		Rows:       cfg.rows,
		Procs:      procs,
		Queries:    cfg.queries,
		StepEvery:  cfg.stepEvery,
		Seed:       cfg.seed,
		PoolShapes: len(pool),
		Full:       summarize(fullLat, fullStats, fullViews, cubeStorageBytes(fullCube)),
		Static:     summarize(staticLat, staticStats, 1, cubeStorageBytes(staticCube)),
		Advisor: summarize(advLat, advStats,
			len(advCube.Views()), cubeStorageBytes(advCube)),
		Trajectory:       traj,
		OracleChecked:    2 * len(oracle),
		OracleMismatches: mismatches,
	}
	if n := len(traj); n > 0 {
		rep.FinalP50Ms = traj[n-1].P50Ms
		rep.FinalP99Ms = traj[n-1].P99Ms
	}
	if rep.Full.P50Ms > 0 {
		rep.P50RatioFull = rep.FinalP50Ms / rep.Full.P50Ms
	}
	rep.ViewFraction = float64(rep.Advisor.Views) / float64(fullViews)
	rep.Converged = rep.P50RatioFull <= 1.25 && rep.ViewFraction <= 0.35 && mismatches == 0

	fmt.Fprintf(w, "qbench advisor: %d rows, p=%d, %d queries over %d shapes, step every %d\n",
		cfg.rows, procs, cfg.queries, len(pool), cfg.stepEvery)
	fmt.Fprintf(w, "%-8s %10s %10s %8s %14s %12s\n", "arm", "p50_ms", "p99_ms", "views", "storage_bytes", "rows_scan")
	for _, row := range []struct {
		name string
		a    armResult
	}{{"full", rep.Full}, {"static", rep.Static}, {"advisor", rep.Advisor}} {
		fmt.Fprintf(w, "%-8s %10.3f %10.3f %8d %14d %12d\n",
			row.name, row.a.P50Ms, row.a.P99Ms, row.a.Views, row.a.StorageBytes, row.a.RowsScanned)
	}
	fmt.Fprintf(w, "trajectory:\n")
	for _, pt := range traj {
		fmt.Fprintf(w, "  step %2d: views=%2d storage=%8d p50=%8.3fms p99=%8.3fms (mat %d, ret %d)\n",
			pt.Step, pt.Views, pt.StorageBytes, pt.P50Ms, pt.P99Ms, pt.Materialized, pt.Retired)
	}
	fmt.Fprintf(w, "final window p50 %.3fms = %.2fx full-cube p50; %d/%d views (%.0f%%); oracle %d/%d ok; converged=%v\n",
		rep.FinalP50Ms, rep.P50RatioFull, rep.Advisor.Views, fullViews,
		100*rep.ViewFraction, rep.OracleChecked-rep.OracleMismatches, rep.OracleChecked, rep.Converged)

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.out)
	}

	if cfg.smoke {
		if mismatches > 0 {
			return fmt.Errorf("qbench: %d answers diverged from the full cube", mismatches)
		}
		if rep.FinalP50Ms >= rep.Static.P50Ms {
			return fmt.Errorf("qbench: advisor final p50 %.3fms did not improve on static-minimal %.3fms",
				rep.FinalP50Ms, rep.Static.P50Ms)
		}
		if !rep.Converged {
			return fmt.Errorf("qbench: not converged: p50 ratio %.2fx (cap 1.25), views %.0f%% (cap 35%%)",
				rep.P50RatioFull, 100*rep.ViewFraction)
		}
	}
	return nil
}
