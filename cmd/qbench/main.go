// Command qbench drives a synthetic query workload against the
// distributed serving subsystem and reports simulated throughput and
// latency as the machine size grows.
//
// For each processor count in the sweep it builds the same cube,
// starts a query server, and pushes a deterministic mixed workload
// (group-bys with random filters, point and range aggregates, with
// half the stream drawn from a hot pool so the result cache matters)
// through a bounded worker pool. The table reports simulated seconds,
// queries per simulated second, latency percentiles, cache hit ratio,
// rows scanned, and how many queries were answered from the prefix
// index.
//
//	qbench -rows 60000 -p 1,2,4,8 -queries 400 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	rolap "repro"
)

type config struct {
	rows    int
	procs   []int
	queries int
	workers int
	queue   int
	cache   int
	seed    int64
}

func main() {
	rows := flag.Int("rows", 20000, "fact rows to generate")
	procsFlag := flag.String("p", "1,2,4,8", "comma-separated processor counts to sweep")
	queries := flag.Int("queries", 200, "queries per processor count")
	workers := flag.Int("workers", 8, "server worker pool size")
	queue := flag.Int("queue", 0, "server queue depth (0 = default)")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	cfg := config{rows: *rows, queries: *queries, workers: *workers,
		queue: *queue, cache: *cache, seed: *seed}
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "qbench: bad processor count %q\n", s)
			os.Exit(1)
		}
		cfg.procs = append(cfg.procs, p)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchSchema is the fixed workload schema: six dimensions with
// paper-style decreasing cardinalities.
func benchSchema() rolap.Schema {
	return rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "store", Cardinality: 32},
		{Name: "product", Cardinality: 16},
		{Name: "month", Cardinality: 12},
		{Name: "region", Cardinality: 8},
		{Name: "channel", Cardinality: 4},
		{Name: "promo", Cardinality: 3},
	}}
}

// op is one pre-planned workload query, replayable across machine
// sizes so every sweep point serves the identical stream.
type op struct {
	group   []string
	filters map[string]uint32
	// rangeDims non-nil makes this a RangeAggregate instead.
	rangeDims []string
	lo, hi    []uint32
}

// makeWorkload builds a deterministic query stream: a hot pool of
// distinct queries plus a 50% repeat rate, so the cache sees realistic
// reuse.
func makeWorkload(cfg config, rng *rand.Rand) []op {
	dims := benchSchema().Dimensions
	randomOp := func() op {
		if rng.Intn(4) == 0 { // 25% range aggregates
			n := 1 + rng.Intn(2)
			o := op{}
			for _, u := range rng.Perm(len(dims))[:n] {
				a := uint32(rng.Intn(dims[u].Cardinality))
				b := uint32(rng.Intn(dims[u].Cardinality))
				if a > b {
					a, b = b, a
				}
				o.rangeDims = append(o.rangeDims, dims[u].Name)
				o.lo = append(o.lo, a)
				o.hi = append(o.hi, b)
			}
			return o
		}
		perm := rng.Perm(len(dims))
		ng := 1 + rng.Intn(2)
		o := op{filters: map[string]uint32{}}
		for _, u := range perm[:ng] {
			o.group = append(o.group, dims[u].Name)
		}
		nf := rng.Intn(3)
		for _, u := range perm[ng : ng+nf] {
			o.filters[dims[u].Name] = uint32(rng.Intn(dims[u].Cardinality))
		}
		return o
	}
	pool := make([]op, 1+cfg.queries/8)
	for i := range pool {
		pool[i] = randomOp()
	}
	out := make([]op, cfg.queries)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i] = pool[rng.Intn(len(pool))]
		} else {
			out[i] = randomOp()
		}
	}
	return out
}

type sweepResult struct {
	p          int
	served     int64
	rejected   int64
	simSeconds float64
	p50, p95   float64
	p99        float64
	hits       int64
	rows       int64
	indexed    int64
}

func run(cfg config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed))

	// Load the fact table once; rebuild the cube per sweep point.
	in0 := func() (*rolap.Input, error) {
		in, err := rolap.NewInput(benchSchema())
		if err != nil {
			return nil, err
		}
		gen := rand.New(rand.NewSource(cfg.seed + 1))
		dims := benchSchema().Dimensions
		row := make([]uint32, len(dims))
		for i := 0; i < cfg.rows; i++ {
			for j, d := range dims {
				row[j] = uint32(gen.Intn(d.Cardinality))
			}
			if err := in.AddRow(row, int64(gen.Intn(500))); err != nil {
				return nil, err
			}
		}
		return in, nil
	}

	workload := makeWorkload(cfg, rng)

	var results []sweepResult
	for _, p := range cfg.procs {
		in, err := in0()
		if err != nil {
			return err
		}
		cube, err := rolap.Build(in, rolap.Options{Processors: p})
		if err != nil {
			return fmt.Errorf("qbench: build at p=%d: %w", p, err)
		}
		srv, err := cube.NewServer(rolap.ServerOptions{
			Workers:    cfg.workers,
			QueueDepth: cfg.queue,
			CacheSize:  cfg.cache,
		})
		if err != nil {
			return err
		}

		res := sweepResult{p: p}
		var mu sync.Mutex
		var lat []float64
		var indexed int64

		jobs := make(chan op)
		var wg sync.WaitGroup
		for i := 0; i < cfg.workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for o := range jobs {
					var qm rolap.QueryMetrics
					var err error
					if o.rangeDims != nil {
						_, qm, err = srv.RangeAggregate(context.Background(), o.rangeDims, o.lo, o.hi)
					} else {
						_, qm, err = srv.GroupBy(context.Background(), o.group, o.filters)
					}
					if err != nil {
						continue // rejected or expired; counted by the server
					}
					mu.Lock()
					lat = append(lat, qm.SimSeconds)
					if qm.IndexUsed {
						indexed++
					}
					mu.Unlock()
				}
			}()
		}
		for _, o := range workload {
			jobs <- o
		}
		close(jobs)
		wg.Wait()

		st := srv.Stats()
		sort.Float64s(lat)
		res.served = st.Queries
		res.rejected = st.Rejected
		res.simSeconds = st.SimSeconds
		res.hits = st.CacheHits
		res.rows = st.RowsScanned
		res.indexed = indexed
		res.p50 = percentile(lat, 0.50)
		res.p95 = percentile(lat, 0.95)
		res.p99 = percentile(lat, 0.99)
		results = append(results, res)
	}

	fmt.Fprintf(w, "qbench: %d rows, %d queries/point, %d workers, cache %d\n",
		cfg.rows, cfg.queries, cfg.workers, cfg.cache)
	fmt.Fprintf(w, "%4s %8s %8s %10s %10s %10s %10s %10s %7s %12s %8s\n",
		"p", "served", "rejected", "sim_s", "q/sim_s", "p50_ms", "p95_ms", "p99_ms", "hit%", "rows_scan", "indexed")
	var base float64
	for i, r := range results {
		tput := 0.0
		if r.simSeconds > 0 {
			tput = float64(r.served-r.hits) / r.simSeconds
		}
		if i == 0 {
			base = tput
		}
		speedup := ""
		if base > 0 {
			speedup = fmt.Sprintf(" (%.2fx)", tput/base)
		}
		hitPct := 0.0
		if r.served > 0 {
			hitPct = 100 * float64(r.hits) / float64(r.served)
		}
		fmt.Fprintf(w, "%4d %8d %8d %10.3f %10.1f %10.3f %10.3f %10.3f %6.1f%% %12d %8d%s\n",
			r.p, r.served, r.rejected, r.simSeconds, tput,
			1e3*r.p50, 1e3*r.p95, 1e3*r.p99, hitPct, r.rows, r.indexed, speedup)
	}
	return nil
}

// percentile returns the q-th percentile of sorted values (nearest
// rank), 0 for an empty slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
