// Command qbench drives a synthetic query workload against the
// distributed serving subsystem and reports simulated throughput and
// latency as the machine size grows.
//
// For each processor count in the sweep it builds the same cube,
// starts a query server, and pushes a deterministic mixed workload
// (group-bys with random filters, point and range aggregates, with
// half the stream drawn from a hot pool so the result cache matters)
// through a bounded worker pool. The table reports simulated seconds,
// queries per simulated second, latency percentiles, cache hit ratio,
// rows scanned, and how many queries were answered from the prefix
// index.
//
// With -replicas the sweep is over replica counts instead: one ingest
// leader feeds N read replicas by snapshot/delta shipping while the
// replica set serves the workload, reporting fleet read throughput
// (served queries per simulated second of the busiest replica) and
// latency percentiles per replica count, optionally as JSON (-out).
//
//	qbench -rows 60000 -p 1,2,4,8 -queries 400 -workers 8
//	qbench -rows 40000 -replicas 1,2,4 -queries 600 -out BENCH_PR6.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	rolap "repro"
)

type config struct {
	rows    int
	procs   []int
	queries int
	workers int
	queue   int
	cache   int
	seed    int64

	// Replica-sweep mode (non-empty replicas switches modes).
	replicas   []int
	leaderP    int
	maxLag     uint64
	snapEvery  int
	ingBatches int
	ingRows    int
	out        string

	// Resilience modes (-chaos and/or -flashcrowd).
	chaos         bool
	flashcrowd    bool
	verify        bool
	chaosReplicas int
	alpha         float64
	hotKeys       int
	clients       int

	// Advisor mode (-advisor): adaptive partial cube vs static arms.
	advisor   bool
	smoke     bool
	stepEvery int
}

func main() {
	rows := flag.Int("rows", 20000, "fact rows to generate")
	procsFlag := flag.String("p", "1,2,4,8", "comma-separated processor counts to sweep")
	queries := flag.Int("queries", 200, "queries per processor count")
	workers := flag.Int("workers", 8, "server worker pool size")
	queue := flag.Int("queue", 0, "server queue depth (0 = default)")
	cache := flag.Int("cache", 256, "result cache entries (negative disables)")
	seed := flag.Int64("seed", 42, "workload seed")
	replicasFlag := flag.String("replicas", "", "comma-separated replica counts: sweep the replicated serving tier instead of machine sizes")
	leaderP := flag.Int("leaderp", 4, "leader machine size in replica mode")
	maxLag := flag.Uint64("maxlag", 4, "replica staleness bound in batches")
	snapEvery := flag.Int("snapevery", 4, "refresh the bootstrap snapshot every N batches")
	ingBatches := flag.Int("ingest-batches", 8, "leader batches ingested while replicas serve")
	ingRows := flag.Int("ingest-rows", 250, "rows per concurrent ingest batch")
	out := flag.String("out", "", "write the replica-sweep report as JSON to this file")
	chaos := flag.Bool("chaos", false, "run the chaos scenario: replicas serving under an injected crash loop, stragglers, and ship stalls")
	flashcrowd := flag.Bool("flashcrowd", false, "run the flash-crowd scenario: a Zipf hot-key stampede against one server, coalescing+stale-serve vs a control")
	verify := flag.Bool("verify", false, "with -chaos: disable concurrent ingest and check every answer against the leader, exiting nonzero on any mismatch")
	chaosReplicas := flag.Int("chaos-replicas", 4, "replica count for -chaos (one of them crash-loops)")
	alpha := flag.Float64("alpha", 1.2, "Zipf skew of the -flashcrowd hot-key mix")
	hotKeys := flag.Int("hotkeys", 48, "distinct queries in the -flashcrowd key space")
	clients := flag.Int("clients", 0, "concurrent -flashcrowd clients (0 = 6x workers)")
	advisor := flag.Bool("advisor", false, "run the advisor scenario: adaptive partial cube under a Zipf query mix vs full-cube and static-minimal arms")
	smoke := flag.Bool("smoke", false, "with -advisor: exit nonzero unless the advisor arm strictly improves p50 over static-minimal and every answer matches the full cube")
	stepEvery := flag.Int("advise-every", 40, "advisor steps every N queries")
	storage := flag.Bool("storage", false, "storage smoke gate: replay the workload against row and columnar cubes, exiting nonzero unless every answer is byte-identical")
	sketchFlag := flag.Bool("sketch", false, "sketch accuracy experiment: distinct/quantile estimates vs the exact gather oracle across cardinalities and ranks, plus build-cost overhead and the kernels-on/off determinism gate")
	flag.Parse()

	cfg := config{rows: *rows, queries: *queries, workers: *workers,
		queue: *queue, cache: *cache, seed: *seed,
		leaderP: *leaderP, maxLag: *maxLag, snapEvery: *snapEvery,
		ingBatches: *ingBatches, ingRows: *ingRows, out: *out,
		chaos: *chaos, flashcrowd: *flashcrowd, verify: *verify,
		chaosReplicas: *chaosReplicas, alpha: *alpha, hotKeys: *hotKeys, clients: *clients,
		advisor: *advisor, smoke: *smoke, stepEvery: *stepEvery}
	parseCounts := func(s, what string) []int {
		var counts []int
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "qbench: bad %s count %q\n", what, f)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		return counts
	}
	cfg.procs = parseCounts(*procsFlag, "processor")
	if *sketchFlag {
		if err := runSketch(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *storage {
		if err := runStorageSmoke(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if cfg.advisor {
		if err := runAdvisor(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if cfg.chaos || cfg.flashcrowd {
		if err := runResilience(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *replicasFlag != "" {
		cfg.replicas = parseCounts(*replicasFlag, "replica")
		if err := runReplicas(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchSchema is the fixed workload schema: six dimensions with
// paper-style decreasing cardinalities.
func benchSchema() rolap.Schema {
	return rolap.Schema{Dimensions: []rolap.Dimension{
		{Name: "store", Cardinality: 32},
		{Name: "product", Cardinality: 16},
		{Name: "month", Cardinality: 12},
		{Name: "region", Cardinality: 8},
		{Name: "channel", Cardinality: 4},
		{Name: "promo", Cardinality: 3},
	}}
}

// op is one pre-planned workload query, replayable across machine
// sizes so every sweep point serves the identical stream.
type op struct {
	group   []string
	filters map[string]uint32
	// rangeDims non-nil makes this a RangeAggregate instead.
	rangeDims []string
	lo, hi    []uint32
}

// randomOp draws one workload query: a range aggregate 25% of the
// time, otherwise a group-by with random filters.
func randomOp(rng *rand.Rand, dims []rolap.Dimension) op {
	if rng.Intn(4) == 0 { // 25% range aggregates
		n := 1 + rng.Intn(2)
		o := op{}
		for _, u := range rng.Perm(len(dims))[:n] {
			a := uint32(rng.Intn(dims[u].Cardinality))
			b := uint32(rng.Intn(dims[u].Cardinality))
			if a > b {
				a, b = b, a
			}
			o.rangeDims = append(o.rangeDims, dims[u].Name)
			o.lo = append(o.lo, a)
			o.hi = append(o.hi, b)
		}
		return o
	}
	perm := rng.Perm(len(dims))
	ng := 1 + rng.Intn(2)
	o := op{filters: map[string]uint32{}}
	for _, u := range perm[:ng] {
		o.group = append(o.group, dims[u].Name)
	}
	nf := rng.Intn(3)
	for _, u := range perm[ng : ng+nf] {
		o.filters[dims[u].Name] = uint32(rng.Intn(dims[u].Cardinality))
	}
	return o
}

// makeWorkload builds a deterministic query stream: a hot pool of
// distinct queries plus a 50% repeat rate, so the cache sees realistic
// reuse.
func makeWorkload(cfg config, rng *rand.Rand) []op {
	dims := benchSchema().Dimensions
	pool := make([]op, 1+cfg.queries/8)
	for i := range pool {
		pool[i] = randomOp(rng, dims)
	}
	out := make([]op, cfg.queries)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i] = pool[rng.Intn(len(pool))]
		} else {
			out[i] = randomOp(rng, dims)
		}
	}
	return out
}

type sweepResult struct {
	p          int
	served     int64
	rejected   int64
	simSeconds float64
	p50, p95   float64
	p99        float64
	hits       int64
	rows       int64
	indexed    int64
}

// buildInput generates the deterministic fact table (same facts for
// every sweep point).
func buildInput(cfg config) (*rolap.Input, error) {
	in, err := rolap.NewInput(benchSchema())
	if err != nil {
		return nil, err
	}
	gen := rand.New(rand.NewSource(cfg.seed + 1))
	dims := benchSchema().Dimensions
	row := make([]uint32, len(dims))
	for i := 0; i < cfg.rows; i++ {
		for j, d := range dims {
			row[j] = uint32(gen.Intn(d.Cardinality))
		}
		if err := in.AddRow(row, int64(gen.Intn(500))); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// makeIngestStream pre-generates the batches the leader ingests while
// the replicas serve, identical for every sweep point.
func makeIngestStream(cfg config) ([][][]uint32, [][]int64) {
	gen := rand.New(rand.NewSource(cfg.seed + 2))
	dims := benchSchema().Dimensions
	batches := make([][][]uint32, cfg.ingBatches)
	meas := make([][]int64, cfg.ingBatches)
	for b := range batches {
		rows := make([][]uint32, cfg.ingRows)
		ms := make([]int64, cfg.ingRows)
		for i := range rows {
			row := make([]uint32, len(dims))
			for j, d := range dims {
				row[j] = uint32(gen.Intn(d.Cardinality))
			}
			rows[i] = row
			ms[i] = int64(gen.Intn(500))
		}
		batches[b] = rows
		meas[b] = ms
	}
	return batches, meas
}

func run(cfg config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed))

	workload := makeWorkload(cfg, rng)

	var results []sweepResult
	for _, p := range cfg.procs {
		in, err := buildInput(cfg)
		if err != nil {
			return err
		}
		cube, err := rolap.Build(in, rolap.Options{Processors: p})
		if err != nil {
			return fmt.Errorf("qbench: build at p=%d: %w", p, err)
		}
		srv, err := cube.NewServer(rolap.ServerOptions{
			Workers:    cfg.workers,
			QueueDepth: cfg.queue,
			CacheSize:  cfg.cache,
		})
		if err != nil {
			return err
		}

		res := sweepResult{p: p}
		var mu sync.Mutex
		var lat []float64
		var indexed int64

		jobs := make(chan op)
		var wg sync.WaitGroup
		for i := 0; i < cfg.workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for o := range jobs {
					var qm rolap.QueryMetrics
					var err error
					if o.rangeDims != nil {
						_, qm, err = srv.RangeAggregate(context.Background(), o.rangeDims, o.lo, o.hi)
					} else {
						_, qm, err = srv.GroupBy(context.Background(), o.group, o.filters)
					}
					if err != nil {
						continue // rejected or expired; counted by the server
					}
					mu.Lock()
					lat = append(lat, qm.SimSeconds)
					if qm.IndexUsed {
						indexed++
					}
					mu.Unlock()
				}
			}()
		}
		for _, o := range workload {
			jobs <- o
		}
		close(jobs)
		wg.Wait()

		st := srv.Stats()
		sort.Float64s(lat)
		res.served = st.Queries
		res.rejected = st.Rejected
		res.simSeconds = st.SimSeconds
		res.hits = st.CacheHits
		res.rows = st.RowsScanned
		res.indexed = indexed
		res.p50 = percentile(lat, 0.50)
		res.p95 = percentile(lat, 0.95)
		res.p99 = percentile(lat, 0.99)
		results = append(results, res)
	}

	fmt.Fprintf(w, "qbench: %d rows, %d queries/point, %d workers, cache %d\n",
		cfg.rows, cfg.queries, cfg.workers, cfg.cache)
	fmt.Fprintf(w, "%4s %8s %8s %10s %10s %10s %10s %10s %7s %12s %8s\n",
		"p", "served", "rejected", "sim_s", "q/sim_s", "p50_ms", "p95_ms", "p99_ms", "hit%", "rows_scan", "indexed")
	var base float64
	for i, r := range results {
		tput := 0.0
		if r.simSeconds > 0 {
			tput = float64(r.served-r.hits) / r.simSeconds
		}
		if i == 0 {
			base = tput
		}
		speedup := ""
		if base > 0 {
			speedup = fmt.Sprintf(" (%.2fx)", tput/base)
		}
		hitPct := 0.0
		if r.served > 0 {
			hitPct = 100 * float64(r.hits) / float64(r.served)
		}
		fmt.Fprintf(w, "%4d %8d %8d %10.3f %10.1f %10.3f %10.3f %10.3f %6.1f%% %12d %8d%s\n",
			r.p, r.served, r.rejected, r.simSeconds, tput,
			1e3*r.p50, 1e3*r.p95, 1e3*r.p99, hitPct, r.rows, r.indexed, speedup)
	}
	return nil
}

// replicaPoint is one replica-count sweep point of the JSON report.
type replicaPoint struct {
	Replicas        int     `json:"replicas"`
	Served          int64   `json:"served"`
	FleetSimSeconds float64 `json:"fleet_sim_seconds"`
	Throughput      float64 `json:"queries_per_sim_second"`
	Speedup         float64 `json:"speedup_vs_single"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
	CacheHitPct     float64 `json:"cache_hit_pct"`
	StalenessWaits  int64   `json:"staleness_waits"`
	LeaderSeq       uint64  `json:"leader_batches_committed"`
	IngestedRows    int64   `json:"leader_rows_ingested"`
	Bootstraps      int64   `json:"replica_bootstraps"`
}

// replicaReport is the BENCH_PR6.json payload.
type replicaReport struct {
	Bench         string         `json:"bench"`
	Rows          int            `json:"rows"`
	LeaderProcs   int            `json:"leader_procs"`
	Queries       int            `json:"queries"`
	Workers       int            `json:"workers"`
	Cache         int            `json:"cache"`
	MaxLag        uint64         `json:"max_lag_batches"`
	SnapshotEvery int            `json:"snapshot_every"`
	IngestBatches int            `json:"ingest_batches"`
	IngestRows    int            `json:"ingest_rows_per_batch"`
	Seed          int64          `json:"seed"`
	Sweep         []replicaPoint `json:"sweep"`
}

// runReplicas sweeps the replicated serving tier over replica counts:
// the same leader cube, the same query workload, and the same
// concurrent leader ingest stream at every point, so throughput scaling
// is attributable to the replica fan-out alone. Fleet throughput is
// served queries per simulated second of the busiest replica — the
// replicas are independent simulated machines serving in parallel, so
// the busiest one is the fleet's makespan.
func runReplicas(cfg config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	workload := makeWorkload(cfg, rng)
	batches, batchMeas := makeIngestStream(cfg)

	rep := replicaReport{
		Bench:         "replica-sweep",
		Rows:          cfg.rows,
		LeaderProcs:   cfg.leaderP,
		Queries:       cfg.queries,
		Workers:       cfg.workers,
		Cache:         cfg.cache,
		MaxLag:        cfg.maxLag,
		SnapshotEvery: cfg.snapEvery,
		IngestBatches: cfg.ingBatches,
		IngestRows:    cfg.ingRows,
		Seed:          cfg.seed,
	}

	for _, n := range cfg.replicas {
		in, err := buildInput(cfg)
		if err != nil {
			return err
		}
		leader, err := rolap.Build(in, rolap.Options{Processors: cfg.leaderP})
		if err != nil {
			return fmt.Errorf("qbench: build leader: %w", err)
		}
		rs, err := leader.NewReplicaSet(rolap.ReplicaOptions{
			Replicas:      n,
			MaxLag:        cfg.maxLag,
			SnapshotEvery: cfg.snapEvery,
			Server: rolap.ServerOptions{
				Workers:    cfg.workers,
				QueueDepth: cfg.queue,
				CacheSize:  cfg.cache,
			},
		})
		if err != nil {
			return err
		}

		// The leader ingests continuously while the replicas serve.
		ingDone := make(chan error, 1)
		go func() {
			for b := range batches {
				if _, err := leader.Ingest(batches[b], batchMeas[b]); err != nil {
					ingDone <- err
					return
				}
			}
			ingDone <- nil
		}()

		var mu sync.Mutex
		var lat []float64
		jobs := make(chan op)
		var wg sync.WaitGroup
		for i := 0; i < cfg.workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for o := range jobs {
					var qm rolap.QueryMetrics
					var err error
					if o.rangeDims != nil {
						_, qm, err = rs.RangeAggregate(context.Background(), o.rangeDims, o.lo, o.hi)
					} else {
						_, qm, err = rs.GroupBy(context.Background(), o.group, o.filters)
					}
					if err != nil {
						continue
					}
					mu.Lock()
					lat = append(lat, qm.SimSeconds)
					mu.Unlock()
				}
			}()
		}
		for _, o := range workload {
			jobs <- o
		}
		close(jobs)
		wg.Wait()
		if err := <-ingDone; err != nil {
			return fmt.Errorf("qbench: concurrent ingest: %w", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		err = rs.WaitCaughtUp(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("qbench: replicas never caught up: %w", err)
		}

		st := rs.Stats()
		pt := replicaPoint{
			Replicas:       n,
			StalenessWaits: st.StalenessWaits,
			LeaderSeq:      st.LeaderSeq,
			IngestedRows:   leader.Metrics().IngestedRows,
		}
		var hits int64
		for _, r := range st.Replicas {
			pt.Served += r.Server.Queries
			hits += r.Server.CacheHits
			pt.Bootstraps += r.Bootstraps
			if r.Server.SimSeconds > pt.FleetSimSeconds {
				pt.FleetSimSeconds = r.Server.SimSeconds
			}
		}
		if pt.FleetSimSeconds > 0 {
			pt.Throughput = float64(pt.Served) / pt.FleetSimSeconds
		}
		if pt.Served > 0 {
			pt.CacheHitPct = 100 * float64(hits) / float64(pt.Served)
		}
		sort.Float64s(lat)
		pt.P50Ms = 1e3 * percentile(lat, 0.50)
		pt.P95Ms = 1e3 * percentile(lat, 0.95)
		pt.P99Ms = 1e3 * percentile(lat, 0.99)
		rep.Sweep = append(rep.Sweep, pt)
		rs.Close()
	}

	for i := range rep.Sweep {
		if rep.Sweep[0].Throughput > 0 {
			rep.Sweep[i].Speedup = rep.Sweep[i].Throughput / rep.Sweep[0].Throughput
		}
	}

	fmt.Fprintf(w, "qbench replica sweep: %d rows, leader p=%d, %d queries/point, %d ingest batches x %d rows, maxlag %d\n",
		cfg.rows, cfg.leaderP, cfg.queries, cfg.ingBatches, cfg.ingRows, cfg.maxLag)
	fmt.Fprintf(w, "%5s %8s %12s %10s %8s %10s %10s %10s %7s %6s %6s\n",
		"repl", "served", "fleet_sim_s", "q/sim_s", "speedup", "p50_ms", "p95_ms", "p99_ms", "hit%", "waits", "boots")
	for _, pt := range rep.Sweep {
		fmt.Fprintf(w, "%5d %8d %12.3f %10.1f %7.2fx %10.3f %10.3f %10.3f %6.1f%% %6d %6d\n",
			pt.Replicas, pt.Served, pt.FleetSimSeconds, pt.Throughput, pt.Speedup,
			pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.CacheHitPct, pt.StalenessWaits, pt.Bootstraps)
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.out)
	}
	return nil
}

// percentile returns the q-th percentile of sorted values (nearest
// rank), 0 for an empty slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
