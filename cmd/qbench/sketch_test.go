package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSketch runs the full three-arm experiment at a reduced scale
// and checks the gates and the report shape.
func TestRunSketch(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sketch.json")
	cfg := config{rows: 8000, seed: 7, out: out}
	var buf bytes.Buffer
	if err := runSketch(cfg, &buf); err != nil {
		t.Fatalf("runSketch: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "sketch gates passed") {
		t.Fatalf("gates not reported as passed:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep sketchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("report not passing: %+v", rep)
	}
	if len(rep.Distinct) != 4 || len(rep.Quantile) != 6 {
		t.Fatalf("unexpected report shape: %d distinct, %d quantile rows", len(rep.Distinct), len(rep.Quantile))
	}
	for _, d := range rep.Distinct {
		if d.MaxRelErr > rep.Bound {
			t.Fatalf("distinct card %d rel err %v over bound", d.Cardinality, d.MaxRelErr)
		}
	}
	for _, q := range rep.Quantile {
		if q.MaxRelErr > rep.Bound {
			t.Fatalf("quantile rank %v rel err %v over bound", q.Rank, q.MaxRelErr)
		}
	}
	if !rep.Determinism.Identical || rep.Determinism.BlobsCompared == 0 {
		t.Fatalf("determinism gate: %+v", rep.Determinism)
	}
	if rep.BuildCost.DistinctSketchBytes <= 0 || rep.BuildCost.QuantileSketchBytes <= 0 {
		t.Fatalf("missing sketch storage cost: %+v", rep.BuildCost)
	}
}
