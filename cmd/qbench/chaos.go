// Resilience scenarios: -chaos serves a deterministic workload
// through a replica set while an injected fault plan crash-loops one
// replica, straggles another, and stalls delta shipping, reporting
// goodput (correct answers per issued query) and wall-clock latency
// percentiles; -flashcrowd stampedes a Zipf hot-key mix against a
// single server and compares the coalescing + stale-serve ladder with
// a control that has both disabled. Both scenarios append to the same
// JSON report (-out), the BENCH_PR7.json artifact.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	rolap "repro"
	"repro/internal/gen"
)

// serving is the query surface shared by *rolap.Server and
// *rolap.ReplicaSet, so the same workload runs against either.
type serving interface {
	GroupBy(ctx context.Context, dims []string, filters map[string]uint32) (*rolap.View, rolap.QueryMetrics, error)
	RangeAggregate(ctx context.Context, dims []string, lo, hi []uint32) (int64, rolap.QueryMetrics, error)
}

// execOp runs one workload query and encodes its answer canonically,
// so answers from different serving tiers compare byte-for-byte.
func execOp(ctx context.Context, s serving, o op) (string, error) {
	if o.rangeDims != nil {
		v, _, err := s.RangeAggregate(ctx, o.rangeDims, o.lo, o.hi)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(v, 10), nil
	}
	vw, _, err := s.GroupBy(ctx, o.group, o.filters)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		fmt.Fprintf(&sb, "(%v:%d)", key, m)
	}
	return sb.String(), nil
}

// chaosReport is the -chaos section of the JSON report.
type chaosReport struct {
	Replicas      int    `json:"replicas"`
	CrashReplica  int    `json:"crash_replica"`
	CrashEvery    uint64 `json:"crash_every_reads"`
	Crashes       int    `json:"crashes_planned"`
	IngestBatches int    `json:"ingest_batches"`
	Verified      bool   `json:"answers_verified"`

	Issued       int64   `json:"issued"`
	Succeeded    int64   `json:"succeeded"`
	Failed       int64   `json:"failed"`
	WrongAnswers int64   `json:"wrong_answers"`
	GoodputPct   float64 `json:"goodput_pct"`
	P50Ms        float64 `json:"p50_wall_ms"`
	P95Ms        float64 `json:"p95_wall_ms"`
	P99Ms        float64 `json:"p99_wall_ms"`

	ServeCrashes    int64 `json:"serve_crashes_fired"`
	Retries         int64 `json:"retries"`
	Failovers       int64 `json:"failovers"`
	LeaderFallbacks int64 `json:"leader_fallbacks"`
	HedgesLaunched  int64 `json:"hedges_launched"`
	HedgesWon       int64 `json:"hedges_won"`
	BreakerOpens    int64 `json:"breaker_opens"`
	Bootstraps      int64 `json:"replica_bootstraps"`
}

// flashPoint is one arm of the -flashcrowd comparison.
type flashPoint struct {
	Served           int64   `json:"served"`
	Rejected         int64   `json:"rejected"`
	Expired          int64   `json:"expired"`
	Coalesced        int64   `json:"coalesced"`
	StaleServes      int64   `json:"stale_serves"`
	StaleWidened     int64   `json:"stale_widened"`
	QueueFullRejects int64   `json:"queue_full_rejects"`
	CacheHitPct      float64 `json:"cache_hit_pct"`
	P50Ms            float64 `json:"p50_wall_ms"`
	P95Ms            float64 `json:"p95_wall_ms"`
	P99Ms            float64 `json:"p99_wall_ms"`
}

// flashReport is the -flashcrowd section of the JSON report.
type flashReport struct {
	HotKeys       int        `json:"hot_keys"`
	Alpha         float64    `json:"alpha"`
	Clients       int        `json:"clients"`
	IngestBatches int        `json:"ingest_batches"`
	Resilient     flashPoint `json:"resilient"`
	Control       flashPoint `json:"control_no_coalesce_no_stale"`
}

// resilienceReport is the BENCH_PR7.json payload.
type resilienceReport struct {
	Bench       string       `json:"bench"`
	Rows        int          `json:"rows"`
	LeaderProcs int          `json:"leader_procs"`
	Queries     int          `json:"queries"`
	Workers     int          `json:"workers"`
	Seed        int64        `json:"seed"`
	Chaos       *chaosReport `json:"chaos,omitempty"`
	Flashcrowd  *flashReport `json:"flashcrowd,omitempty"`
}

// runResilience dispatches the -chaos and/or -flashcrowd scenarios and
// writes the combined JSON report.
func runResilience(cfg config, w io.Writer) error {
	rep := resilienceReport{
		Bench: "resilience", Rows: cfg.rows, LeaderProcs: cfg.leaderP,
		Queries: cfg.queries, Workers: cfg.workers, Seed: cfg.seed,
	}
	if cfg.chaos {
		c, err := runChaos(cfg, w)
		if err != nil {
			return err
		}
		rep.Chaos = &c
	}
	if cfg.flashcrowd {
		f, err := runFlashcrowd(cfg, w)
		if err != nil {
			return err
		}
		rep.Flashcrowd = &f
	}
	if cfg.out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.out)
	}
	return nil
}

// runChaos serves the standard workload through a replica set whose
// fault plan crash-loops one replica, straggles another, and (when
// ingesting) stalls a delta batch. Failover, hedging, breakers, and
// the leader fallback must mask all of it: with -verify every answer
// is checked against the leader's, and any wrong or failed query is a
// nonzero exit.
func runChaos(cfg config, w io.Writer) (chaosReport, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	workload := makeWorkload(cfg, rng)
	n := cfg.chaosReplicas
	if n < 1 {
		n = 1
	}
	ingBatches := cfg.ingBatches
	if cfg.verify {
		ingBatches = 0 // answers must be version-independent to compare
	}

	in, err := buildInput(cfg)
	if err != nil {
		return chaosReport{}, err
	}
	leader, err := rolap.Build(in, rolap.Options{Processors: cfg.leaderP})
	if err != nil {
		return chaosReport{}, fmt.Errorf("qbench: build leader: %w", err)
	}

	// Precompute the expected answer transcript on the leader's own
	// cube before any ingest or faults.
	var expected []string
	if ingBatches == 0 {
		oracle, err := leader.NewServer(rolap.ServerOptions{Workers: 1, QueueDepth: len(workload) + 1, CacheSize: cfg.cache})
		if err != nil {
			return chaosReport{}, err
		}
		for _, o := range workload {
			ans, err := execOp(context.Background(), oracle, o)
			if err != nil {
				return chaosReport{}, fmt.Errorf("qbench: oracle query: %w", err)
			}
			expected = append(expected, ans)
		}
	}

	crashReplica := 1 % n
	const crashFirst, crashEvery = 2, 3
	nCrash := cfg.queries / 12
	if nCrash < 3 {
		nCrash = 3
	}
	plan := &rolap.ServeFaultPlan{
		Crashes: rolap.ServeCrashLoop(crashReplica, crashFirst, crashEvery, nCrash),
		Stragglers: []rolap.ServeStraggler{
			{Replica: 0, FromQuery: 10, ToQuery: 10 + uint64(cfg.queries/8), DelaySeconds: 0.005},
		},
	}
	if ingBatches > 0 {
		plan.Stalls = []rolap.ShipStall{{Replica: 0, Batch: 2, DelaySeconds: 0.05}}
	}

	rs, err := leader.NewReplicaSet(rolap.ReplicaOptions{
		Replicas:      n,
		MaxLag:        cfg.maxLag,
		SnapshotEvery: cfg.snapEvery,
		Server: rolap.ServerOptions{
			Workers: cfg.workers, QueueDepth: cfg.queue, CacheSize: cfg.cache,
		},
		Resilience: rolap.ResilienceOptions{
			Hedge:            true,
			BreakerThreshold: 1,
			BreakerCooldown:  5 * time.Millisecond,
		},
		ServeFaults: plan,
	})
	if err != nil {
		return chaosReport{}, err
	}
	defer rs.Close()

	ingDone := make(chan error, 1)
	if ingBatches > 0 {
		batches, batchMeas := makeIngestStream(cfg)
		go func() {
			for b := 0; b < ingBatches; b++ {
				if _, err := leader.Ingest(batches[b], batchMeas[b]); err != nil {
					ingDone <- err
					return
				}
			}
			ingDone <- nil
		}()
	} else {
		ingDone <- nil
	}

	var ok, failed, wrong int64
	var mu sync.Mutex
	var lat []float64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range jobs {
				start := time.Now()
				ans, err := execOp(context.Background(), rs, workload[qi])
				wall := time.Since(start)
				if err != nil {
					atomic.AddInt64(&failed, 1)
					continue
				}
				if expected != nil && ans != expected[qi] {
					atomic.AddInt64(&wrong, 1)
					continue
				}
				atomic.AddInt64(&ok, 1)
				mu.Lock()
				lat = append(lat, wall.Seconds())
				mu.Unlock()
			}
		}()
	}
	for qi := range workload {
		jobs <- qi
	}
	close(jobs)
	wg.Wait()
	if err := <-ingDone; err != nil {
		return chaosReport{}, fmt.Errorf("qbench: concurrent ingest: %w", err)
	}

	st := rs.Stats()
	sort.Float64s(lat)
	rep := chaosReport{
		Replicas: n, CrashReplica: crashReplica, CrashEvery: crashEvery,
		Crashes: nCrash, IngestBatches: ingBatches, Verified: expected != nil,
		Issued: int64(len(workload)), Succeeded: ok, Failed: failed, WrongAnswers: wrong,
		P50Ms: 1e3 * percentile(lat, 0.50),
		P95Ms: 1e3 * percentile(lat, 0.95),
		P99Ms: 1e3 * percentile(lat, 0.99),

		ServeCrashes:    st.Resilience.ServeCrashes,
		Retries:         st.Resilience.Retries,
		Failovers:       st.Resilience.Failovers,
		LeaderFallbacks: st.Resilience.LeaderFallbacks,
		HedgesLaunched:  st.Resilience.HedgesLaunched,
		HedgesWon:       st.Resilience.HedgesWon,
		BreakerOpens:    st.Resilience.BreakerOpens,
	}
	for _, r := range st.Replicas {
		rep.Bootstraps += r.Bootstraps
	}
	if rep.Issued > 0 {
		rep.GoodputPct = 100 * float64(ok) / float64(rep.Issued)
	}

	fmt.Fprintf(w, "qbench chaos: %d rows, %d replicas (replica %d crash-loops every %d reads x%d), %d queries, %d ingest batches\n",
		cfg.rows, n, crashReplica, crashEvery, nCrash, cfg.queries, ingBatches)
	fmt.Fprintf(w, "%8s %8s %8s %8s %9s %10s %10s %10s %8s %8s %9s %9s %7s %8s %6s\n",
		"issued", "ok", "failed", "wrong", "goodput", "p50_ms", "p95_ms", "p99_ms",
		"crashes", "retries", "failovers", "leader_fb", "hedges", "br_open", "boots")
	fmt.Fprintf(w, "%8d %8d %8d %8d %8.1f%% %10.3f %10.3f %10.3f %8d %8d %9d %9d %7d %8d %6d\n",
		rep.Issued, rep.Succeeded, rep.Failed, rep.WrongAnswers, rep.GoodputPct,
		rep.P50Ms, rep.P95Ms, rep.P99Ms,
		rep.ServeCrashes, rep.Retries, rep.Failovers, rep.LeaderFallbacks,
		rep.HedgesLaunched, rep.BreakerOpens, rep.Bootstraps)

	if cfg.verify {
		switch {
		case wrong > 0:
			return rep, fmt.Errorf("qbench: VERIFY FAILED: %d wrong answers under chaos", wrong)
		case failed > 0:
			return rep, fmt.Errorf("qbench: VERIFY FAILED: %d queries failed under chaos", failed)
		case rep.ServeCrashes == 0:
			return rep, fmt.Errorf("qbench: VERIFY VACUOUS: no injected crash fired (plan mistargeted?)")
		}
		fmt.Fprintf(w, "verify: all %d answers match the leader under chaos (%d crashes masked)\n",
			rep.Succeeded, rep.ServeCrashes)
	}
	return rep, nil
}

// runFlashcrowd stampedes a Zipf hot-key query mix against one server
// while the leader ingests (each batch bumps the cache version, so the
// crowd re-misses together). The resilient arm runs the default
// coalescing + stale-serve ladder; the control arm disables both.
func runFlashcrowd(cfg config, w io.Writer) (flashReport, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	dims := benchSchema().Dimensions
	keys := cfg.hotKeys
	if keys < 1 {
		keys = 1
	}
	pool := make([]op, keys)
	for i := range pool {
		pool[i] = randomOp(rng, dims)
	}
	mix := gen.NewQueryMix(keys, cfg.alpha, cfg.seed)
	stream := make([]int, cfg.queries)
	for i := range stream {
		stream[i] = mix.Key(i)
	}
	clients := cfg.clients
	if clients <= 0 {
		clients = 6 * cfg.workers
	}

	rep := flashReport{HotKeys: keys, Alpha: cfg.alpha, Clients: clients, IngestBatches: cfg.ingBatches}
	run := func(control bool) (flashPoint, error) {
		in, err := buildInput(cfg)
		if err != nil {
			return flashPoint{}, err
		}
		cube, err := rolap.Build(in, rolap.Options{Processors: cfg.leaderP})
		if err != nil {
			return flashPoint{}, fmt.Errorf("qbench: build: %w", err)
		}
		opts := rolap.ServerOptions{Workers: cfg.workers, QueueDepth: cfg.queue, CacheSize: cfg.cache}
		if control {
			opts.NoCoalesce = true
			opts.StaleLimit = -1
		}
		srv, err := cube.NewServer(opts)
		if err != nil {
			return flashPoint{}, err
		}

		// The ingest goroutine bumps the cache version mid-stream, so
		// the hot keys stampede on every batch boundary.
		batches, batchMeas := makeIngestStream(cfg)
		ingDone := make(chan error, 1)
		go func() {
			for b := range batches {
				time.Sleep(10 * time.Millisecond)
				if _, err := cube.Ingest(batches[b], batchMeas[b]); err != nil {
					ingDone <- err
					return
				}
			}
			ingDone <- nil
		}()

		var mu sync.Mutex
		var lat []float64
		jobs := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for qi := range jobs {
					start := time.Now()
					_, err := execOp(context.Background(), srv, pool[qi])
					wall := time.Since(start)
					if err != nil {
						continue // shed; counted by the server
					}
					mu.Lock()
					lat = append(lat, wall.Seconds())
					mu.Unlock()
				}
			}()
		}
		for _, qi := range stream {
			jobs <- qi
		}
		close(jobs)
		wg.Wait()
		if err := <-ingDone; err != nil {
			return flashPoint{}, fmt.Errorf("qbench: concurrent ingest: %w", err)
		}

		st := srv.Stats()
		sort.Float64s(lat)
		pt := flashPoint{
			Served: st.Queries, Rejected: st.Rejected, Expired: st.Expired,
			Coalesced: st.Coalesced, StaleServes: st.StaleServes, StaleWidened: st.StaleWidened,
			QueueFullRejects: st.QueueFullRejects,
			P50Ms:            1e3 * percentile(lat, 0.50),
			P95Ms:            1e3 * percentile(lat, 0.95),
			P99Ms:            1e3 * percentile(lat, 0.99),
		}
		if st.Queries > 0 {
			pt.CacheHitPct = 100 * float64(st.CacheHits) / float64(st.Queries)
		}
		return pt, nil
	}

	var err error
	if rep.Resilient, err = run(false); err != nil {
		return rep, err
	}
	if rep.Control, err = run(true); err != nil {
		return rep, err
	}

	fmt.Fprintf(w, "qbench flashcrowd: %d rows, %d queries over %d hot keys (alpha %.2f), %d clients vs %d workers, %d ingest batches\n",
		cfg.rows, cfg.queries, keys, cfg.alpha, clients, cfg.workers, cfg.ingBatches)
	fmt.Fprintf(w, "%-10s %8s %8s %9s %8s %8s %10s %10s %10s %7s\n",
		"mode", "served", "shed", "coalesce", "stale", "widened", "p50_ms", "p95_ms", "p99_ms", "hit%")
	for _, row := range []struct {
		name string
		pt   flashPoint
	}{{"resilient", rep.Resilient}, {"control", rep.Control}} {
		fmt.Fprintf(w, "%-10s %8d %8d %9d %8d %8d %10.3f %10.3f %10.3f %6.1f%%\n",
			row.name, row.pt.Served, row.pt.Rejected+row.pt.Expired, row.pt.Coalesced,
			row.pt.StaleServes, row.pt.StaleWidened, row.pt.P50Ms, row.pt.P95Ms, row.pt.P99Ms, row.pt.CacheHitPct)
	}
	return rep, nil
}
