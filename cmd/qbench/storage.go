package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	rolap "repro"
	"repro/internal/colstore"
)

// runStorageSmoke is qbench's -storage mode, the CI gate for the
// columnar storage engine's query path: build the same cube with the
// columnar store off (row files) and on (sealed compressed slices),
// replay one deterministic mixed workload against both, and demand
// byte-identical answers — every group-by view row for row, every
// point and range aggregate value for value. Any difference exits
// non-zero.
func runStorageSmoke(cfg config, w io.Writer) error {
	in, err := buildInput(cfg)
	if err != nil {
		return err
	}
	build := func(on bool) (*rolap.Cube, error) {
		prev := colstore.SetEnabled(on)
		defer colstore.SetEnabled(prev)
		return rolap.Build(in, rolap.Options{Processors: cfg.procs[0]})
	}
	rowCube, err := build(false)
	if err != nil {
		return fmt.Errorf("row build: %w", err)
	}
	colCube, err := build(true)
	if err != nil {
		return fmt.Errorf("columnar build: %w", err)
	}

	ops := makeWorkload(cfg, rand.New(rand.NewSource(cfg.seed)))
	start := time.Now()
	mismatches := 0
	for i, o := range ops {
		if o.rangeDims != nil {
			a, err1 := rowCube.RangeAggregate(o.rangeDims, o.lo, o.hi)
			b, err2 := colCube.RangeAggregate(o.rangeDims, o.lo, o.hi)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("op %d range %v: row %v, columnar %v", i, o.rangeDims, err1, err2)
			}
			if a != b {
				mismatches++
				fmt.Fprintf(w, "op %d range %v: row %d != columnar %d\n", i, o.rangeDims, a, b)
			}
			continue
		}
		va, err1 := rowCube.GroupBy(o.group, o.filters)
		vb, err2 := colCube.GroupBy(o.group, o.filters)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("op %d group %v: row %v, columnar %v", i, o.group, err1, err2)
		}
		if !viewsMatch(va, vb) {
			mismatches++
			fmt.Fprintf(w, "op %d group %v filters %v: views differ\n", i, o.group, o.filters)
		}
	}
	fmt.Fprintf(w, "storage smoke: %d queries replayed against row and columnar cubes in %.2fs, %d mismatches\n",
		len(ops), time.Since(start).Seconds(), mismatches)
	if mismatches > 0 {
		return fmt.Errorf("columnar storage changed %d answers", mismatches)
	}
	fmt.Fprintln(w, "storage smoke: answers byte-identical")
	return nil
}

// viewsMatch compares two views row for row.
func viewsMatch(a, b *rolap.View) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ka, ma := a.Row(i)
		kb, mb := b.Row(i)
		if ma != mb || len(ka) != len(kb) {
			return false
		}
		for j := range ka {
			if ka[j] != kb[j] {
				return false
			}
		}
	}
	return true
}
