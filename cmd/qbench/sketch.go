package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	rolap "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/sketch"
)

// runSketch is qbench's -sketch mode: the accuracy and cost experiment
// for the holistic-measure subsystem, in three arms over the same
// generated facts.
//
//  1. Exact oracle: a host-side brute-force group-by over the raw
//     facts (the gather oracle every estimate is judged against).
//  2. Distinct arm: CountDistinct cubes across a sweep of per-group
//     cardinalities, crossing the sketches' exact threshold into the
//     probabilistic FM regime; relative error per cardinality.
//  3. Quantile arm: a Quantile cube over heavy-tailed values, queried
//     at a sweep of percentile ranks; relative error per rank.
//
// The report also measures build-cost overhead (holistic vs Sum build
// of the same facts: simulated time, network bytes, sketch storage)
// and runs the determinism gate: two builds of the same facts, one
// with the packed-key kernels enabled and one without, must produce
// bit-identical sealed sketch blobs row for row. With -smoke the run
// exits non-zero unless every relative error is within the bound and
// the determinism gate passes.
const sketchErrBound = 0.05

// sketchReport is the BENCH_PR10.json payload.
type sketchReport struct {
	Seed       int64                 `json:"seed"`
	Bound      float64               `json:"rel_err_bound"`
	Distinct   []distinctAccuracy    `json:"distinct_by_cardinality"`
	Quantile   []quantileAccuracy    `json:"quantile_by_rank"`
	BuildCost  sketchBuildCost       `json:"build_cost"`
	Determinism sketchDeterminism    `json:"determinism"`
	Pass       bool                  `json:"pass"`
}

type distinctAccuracy struct {
	Cardinality int     `json:"cardinality"`
	Groups      int     `json:"groups"`
	Rows        int     `json:"rows"`
	MaxRelErr   float64 `json:"max_rel_err"`
	MeanRelErr  float64 `json:"mean_rel_err"`
}

type quantileAccuracy struct {
	Rank       float64 `json:"rank"`
	Groups     int     `json:"groups"`
	MaxRelErr  float64 `json:"max_rel_err"`
	MeanRelErr float64 `json:"mean_rel_err"`
}

type sketchBuildCost struct {
	Rows                int     `json:"rows"`
	SumSimSeconds       float64 `json:"sum_sim_seconds"`
	DistinctSimSeconds  float64 `json:"distinct_sim_seconds"`
	QuantileSimSeconds  float64 `json:"quantile_sim_seconds"`
	SumBytesMoved       int64   `json:"sum_bytes_moved"`
	DistinctBytesMoved  int64   `json:"distinct_bytes_moved"`
	QuantileBytesMoved  int64   `json:"quantile_bytes_moved"`
	DistinctSketchBytes int64   `json:"distinct_sketch_bytes"`
	QuantileSketchBytes int64   `json:"quantile_sketch_bytes"`
}

type sketchDeterminism struct {
	BlobsCompared int  `json:"blobs_compared"`
	Identical     bool `json:"identical"`
}

func runSketch(cfg config, w io.Writer) error {
	rep := sketchReport{Seed: cfg.seed, Bound: sketchErrBound, Pass: true}

	// Distinct arm: 4 groups per build, per-group value range swept
	// through the exact threshold (4096) into the FM regime.
	for _, card := range []int{400, 1600, 6400, 25600} {
		acc, err := distinctArm(card, uint64(cfg.seed))
		if err != nil {
			return err
		}
		if acc.MaxRelErr > sketchErrBound {
			rep.Pass = false
		}
		rep.Distinct = append(rep.Distinct, acc)
		fmt.Fprintf(w, "distinct card=%-6d groups=%d rows=%-7d max_rel_err=%.4f mean_rel_err=%.4f\n",
			acc.Cardinality, acc.Groups, acc.Rows, acc.MaxRelErr, acc.MeanRelErr)
	}

	// Quantile arm + build-cost overhead share one fact table.
	quant, cost, err := quantileArm(cfg, uint64(cfg.seed)*3+1)
	if err != nil {
		return err
	}
	for _, qa := range quant {
		if qa.MaxRelErr > sketchErrBound {
			rep.Pass = false
		}
		rep.Quantile = append(rep.Quantile, qa)
		fmt.Fprintf(w, "quantile q=%-5.2f groups=%d max_rel_err=%.4f mean_rel_err=%.4f\n",
			qa.Rank, qa.Groups, qa.MaxRelErr, qa.MeanRelErr)
	}
	rep.BuildCost = cost
	fmt.Fprintf(w, "build cost (%d rows): sum=%.2fs distinct=%.2fs quantile=%.2fs; sketch bytes distinct=%d quantile=%d\n",
		cost.Rows, cost.SumSimSeconds, cost.DistinctSimSeconds, cost.QuantileSimSeconds,
		cost.DistinctSketchBytes, cost.QuantileSketchBytes)

	// Determinism gate: kernels on vs off, bit-identical blobs.
	det, err := determinismArm(uint64(cfg.seed))
	if err != nil {
		return err
	}
	rep.Determinism = det
	if !det.Identical {
		rep.Pass = false
	}
	fmt.Fprintf(w, "determinism: %d blobs compared, identical=%v\n", det.BlobsCompared, det.Identical)

	if cfg.out != "" {
		if err := writeJSON(cfg.out, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.out)
	}
	if !rep.Pass {
		return fmt.Errorf("qbench -sketch: accuracy or determinism gate failed (bound %.2f)", sketchErrBound)
	}
	fmt.Fprintf(w, "sketch gates passed: every estimate within %.0f%%, deterministic blobs\n", sketchErrBound*100)
	return nil
}

// sketchFacts builds facts over one 4-ary grouping dimension with
// measures drawn uniformly from [0, valRange).
func sketchFacts(n, valRange int, seed uint64) ([][]uint32, []int64) {
	x := seed*0x9e3779b97f4a7c15 | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	rows := make([][]uint32, n)
	meas := make([]int64, n)
	for i := 0; i < n; i++ {
		rows[i] = []uint32{uint32(next() % 4)}
		meas[i] = int64(next() % uint64(valRange))
	}
	return rows, meas
}

func sketchInput(rows [][]uint32, meas []int64) (*rolap.Input, error) {
	in, err := rolap.NewInput(rolap.Schema{Dimensions: []rolap.Dimension{{Name: "g", Cardinality: 4}}})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		if err := in.AddRow(rows[i], meas[i]); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// distinctArm builds a CountDistinct cube whose groups draw values
// from [0, card) and scores the estimates against the exact oracle.
func distinctArm(card int, seed uint64) (distinctAccuracy, error) {
	n := 4 * card // ~63% coverage of the range per group; oracle is exact regardless
	rows, meas := sketchFacts(n, card, seed+uint64(card))
	in, err := sketchInput(rows, meas)
	if err != nil {
		return distinctAccuracy{}, err
	}
	cube, err := rolap.Build(in, rolap.Options{Processors: 4, Aggregate: rolap.CountDistinct})
	if err != nil {
		return distinctAccuracy{}, err
	}
	exact := map[uint32]map[int64]bool{}
	for i := range rows {
		g := rows[i][0]
		if exact[g] == nil {
			exact[g] = map[int64]bool{}
		}
		exact[g][meas[i]] = true
	}
	vw, err := cube.GroupBy([]string{"g"}, nil)
	if err != nil {
		return distinctAccuracy{}, err
	}
	acc := distinctAccuracy{Cardinality: card, Groups: vw.Len(), Rows: n}
	var sum float64
	for i := 0; i < vw.Len(); i++ {
		key, got := vw.Row(i)
		want := float64(len(exact[key[0]]))
		rel := math.Abs(float64(got)-want) / want
		sum += rel
		if rel > acc.MaxRelErr {
			acc.MaxRelErr = rel
		}
	}
	acc.MeanRelErr = sum / float64(vw.Len())
	return acc, nil
}

// quantileArm builds Sum, CountDistinct, and Quantile cubes over one
// heavy-tailed fact table: percentile accuracy from the Quantile cube,
// build-cost overhead from all three.
func quantileArm(cfg config, seed uint64) ([]quantileAccuracy, sketchBuildCost, error) {
	n := cfg.rows
	if n < 1000 {
		n = 1000
	}
	x := seed | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	rows := make([][]uint32, n)
	meas := make([]int64, n)
	for i := 0; i < n; i++ {
		rows[i] = []uint32{uint32(next() % 4)}
		// Log-uniform in [1, ~1e6): exercises the full code ladder.
		u := float64(next()%1_000_000) / 1_000_000
		meas[i] = 1 + int64(math.Exp(u*math.Log(1e6)))
	}
	build := func(agg rolap.Aggregate) (*rolap.Cube, rolap.Metrics, error) {
		in, err := sketchInput(rows, meas)
		if err != nil {
			return nil, rolap.Metrics{}, err
		}
		c, err := rolap.Build(in, rolap.Options{Processors: 4, Aggregate: agg})
		if err != nil {
			return nil, rolap.Metrics{}, err
		}
		return c, c.Metrics(), nil
	}
	_, sumMet, err := build(rolap.Sum)
	if err != nil {
		return nil, sketchBuildCost{}, err
	}
	_, distMet, err := build(rolap.CountDistinct)
	if err != nil {
		return nil, sketchBuildCost{}, err
	}
	qcube, quantMet, err := build(rolap.Quantile)
	if err != nil {
		return nil, sketchBuildCost{}, err
	}
	cost := sketchBuildCost{
		Rows:                n,
		SumSimSeconds:       sumMet.SimSeconds,
		DistinctSimSeconds:  distMet.SimSeconds,
		QuantileSimSeconds:  quantMet.SimSeconds,
		SumBytesMoved:       sumMet.BytesMoved,
		DistinctBytesMoved:  distMet.BytesMoved,
		QuantileBytesMoved:  quantMet.BytesMoved,
		DistinctSketchBytes: distMet.SketchBytes,
		QuantileSketchBytes: quantMet.SketchBytes,
	}

	byGroup := map[uint32][]int64{}
	for i := range rows {
		byGroup[rows[i][0]] = append(byGroup[rows[i][0]], meas[i])
	}
	for _, vals := range byGroup {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	}
	var out []quantileAccuracy
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		vw, err := qcube.GroupByPercentile([]string{"g"}, nil, q)
		if err != nil {
			return nil, sketchBuildCost{}, err
		}
		qa := quantileAccuracy{Rank: q, Groups: vw.Len()}
		var sum float64
		for i := 0; i < vw.Len(); i++ {
			key, got := vw.Row(i)
			vals := byGroup[key[0]]
			want := float64(vals[int(q*float64(len(vals)-1))])
			rel := math.Abs(float64(got)-want) / want
			sum += rel
			if rel > qa.MaxRelErr {
				qa.MaxRelErr = rel
			}
		}
		qa.MeanRelErr = sum / float64(vw.Len())
		out = append(out, qa)
	}
	return out, cost, nil
}

// determinismArm builds the same distinct cube twice — packed-key
// kernels enabled, then disabled — and compares every view row's
// sealed sketch blob bit for bit.
func determinismArm(seed uint64) (sketchDeterminism, error) {
	d, p := 2, 3
	raw := record.New(d, 0)
	x := seed*0x2545f4914f6cdd1d | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	row := make([]uint32, d)
	for i := 0; i < 3000; i++ {
		row[0] = uint32(next() % 8)
		row[1] = uint32(next() % 5)
		raw.Append(row, int64(next()%10000))
	}
	build := func(kernels bool) (*cluster.Machine, *sketch.Store, error) {
		prev := record.SetKernelsEnabled(kernels)
		defer record.SetKernelsEnabled(prev)
		st := sketch.NewStore(sketch.Config{Kind: sketch.KindDistinct})
		m := cluster.New(p, costmodel.Default())
		for r := 0; r < p; r++ {
			m.Proc(r).Disk().Put("raw", raw.Sub(r*raw.Len()/p, (r+1)*raw.Len()/p))
		}
		_, err := core.BuildCube(m, "raw", core.Config{D: d, Agg: record.OpDistinct, Sketch: st})
		return m, st, err
	}
	m1, st1, err := build(true)
	if err != nil {
		return sketchDeterminism{}, err
	}
	m2, st2, err := build(false)
	if err != nil {
		return sketchDeterminism{}, err
	}
	det := sketchDeterminism{Identical: true}
	for _, v := range lattice.AllViews(d) {
		for r := 0; r < p; r++ {
			t1, ok1 := m1.Proc(r).Disk().Peek(core.ViewFile(v))
			t2, ok2 := m2.Proc(r).Disk().Peek(core.ViewFile(v))
			if ok1 != ok2 || (ok1 && t1.Len() != t2.Len()) {
				det.Identical = false
				continue
			}
			if !ok1 {
				continue
			}
			for i := 0; i < t1.Len(); i++ {
				b1 := st1.Export([]int64{t1.Meas(i)})[0]
				b2 := st2.Export([]int64{t2.Meas(i)})[0]
				det.BlobsCompared++
				if string(b1) != string(b2) {
					det.Identical = false
				}
			}
		}
	}
	return det, nil
}

// writeJSON writes v to path as indented JSON.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
