package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunChaosVerifySmall(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		rows: 1200, queries: 60, workers: 4, cache: 64, seed: 7,
		leaderP: 2, maxLag: 4, snapEvery: 2,
		chaos: true, verify: true, chaosReplicas: 2,
	}
	rep, err := runChaos(cfg, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if rep.WrongAnswers != 0 || rep.Failed != 0 {
		t.Fatalf("chaos run not clean: %+v", rep)
	}
	if rep.ServeCrashes == 0 {
		t.Fatalf("no crash fired: %+v", rep)
	}
	if rep.GoodputPct < 90 {
		t.Fatalf("goodput %.1f%% < 90%%", rep.GoodputPct)
	}
	if !strings.Contains(sb.String(), "verify: all") {
		t.Fatalf("missing verify banner:\n%s", sb.String())
	}
}

func TestRunFlashcrowdSmall(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		rows: 1200, queries: 80, workers: 2, cache: 64, seed: 7,
		leaderP: 2, ingBatches: 2, ingRows: 40,
		flashcrowd: true, alpha: 1.2, hotKeys: 12, clients: 8,
	}
	rep, err := runFlashcrowd(cfg, &sb)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	issued := int64(cfg.queries)
	if got := rep.Resilient.Served + rep.Resilient.Rejected + rep.Resilient.Expired; got != issued {
		t.Fatalf("resilient arm accounts for %d of %d queries", got, issued)
	}
	if got := rep.Control.Served + rep.Control.Rejected + rep.Control.Expired; got != issued {
		t.Fatalf("control arm accounts for %d of %d queries", got, issued)
	}
	if rep.Control.Coalesced != 0 || rep.Control.StaleServes != 0 {
		t.Fatalf("control arm must not coalesce or stale-serve: %+v", rep.Control)
	}
	if !strings.Contains(sb.String(), "resilient") || !strings.Contains(sb.String(), "control") {
		t.Fatalf("missing comparison rows:\n%s", sb.String())
	}
}

func TestRunResilienceWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var sb strings.Builder
	cfg := config{
		rows: 1000, queries: 40, workers: 4, cache: 64, seed: 7,
		leaderP: 2, maxLag: 4, snapEvery: 2,
		chaos: true, verify: true, chaosReplicas: 2, out: out,
	}
	if err := runResilience(cfg, &sb); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep resilienceReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Bench != "resilience" || rep.Chaos == nil {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if rep.Chaos.WrongAnswers != 0 || !rep.Chaos.Verified {
		t.Fatalf("chaos section not verified-clean: %+v", rep.Chaos)
	}
	if rep.Flashcrowd != nil {
		t.Fatal("flashcrowd section present without -flashcrowd")
	}
}
