package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMakeAdvisorMixDeterministic(t *testing.T) {
	cfg := config{queries: 50, seed: 9}
	pa, ka := makeAdvisorMix(cfg)
	pb, kb := makeAdvisorMix(cfg)
	if len(pa) != len(pb) || len(ka) != 50 {
		t.Fatalf("pool %d/%d, picks %d", len(pa), len(pb), len(ka))
	}
	for i := range pa {
		if strings.Join(pa[i].group, ",") != strings.Join(pb[i].group, ",") {
			t.Fatalf("pool %d differs across identical seeds", i)
		}
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("pick %d differs across identical seeds", i)
		}
	}
	// The mix must actually be skewed: shape 0 dominates.
	counts := map[int]int{}
	for _, k := range ka {
		counts[k]++
	}
	if counts[0] < len(ka)/4 {
		t.Fatalf("head shape drew only %d of %d", counts[0], len(ka))
	}
}

// TestRunAdvisorSmoke runs the full three-arm scenario small, with the
// smoke gate on: the advisor must strictly improve on static-minimal,
// converge under the view cap, and never change an answer.
func TestRunAdvisorSmoke(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var sb strings.Builder
	cfg := config{
		rows:      4000,
		procs:     []int{2},
		queries:   200,
		seed:      42,
		stepEvery: 25,
		smoke:     true,
		out:       outPath,
	}
	if err := runAdvisor(cfg, &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "converged=true") {
		t.Fatalf("did not converge:\n%s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep advisorReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Bench != "advisor-convergence" || !rep.Converged {
		t.Fatalf("report %+v", rep)
	}
	if rep.OracleMismatches != 0 || rep.OracleChecked != 2*cfg.queries {
		t.Fatalf("oracle accounting: %d mismatches of %d checked", rep.OracleMismatches, rep.OracleChecked)
	}
	if len(rep.Trajectory) != cfg.queries/cfg.stepEvery {
		t.Fatalf("trajectory has %d points, want %d", len(rep.Trajectory), cfg.queries/cfg.stepEvery)
	}
	if rep.Advisor.Views <= 1 || rep.ViewFraction > 0.35 {
		t.Fatalf("advisor views %d (fraction %.2f)", rep.Advisor.Views, rep.ViewFraction)
	}
	if rep.FinalP50Ms >= rep.Static.P50Ms {
		t.Fatalf("final p50 %.3f did not beat static %.3f", rep.FinalP50Ms, rep.Static.P50Ms)
	}
}
