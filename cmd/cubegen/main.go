// Command cubegen generates a synthetic data set and builds its
// (partial) data cube on the simulated shared-nothing multiprocessor,
// reporting the paper's metrics: simulated wall-clock time, per-phase
// breakdown, communication volume, merge case mix, and cube size.
//
// Usage:
//
//	cubegen [-n rows] [-d dims] [-cards 256,128,...] [-skew 0,0,...]
//	        [-p procs] [-select pct] [-gamma 0.01] [-merge-gamma 0.03]
//	        [-local-trees] [-fm] [-greedy] [-seed N] [-views]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/partialcube"
)

func main() {
	n := flag.Int("n", 100000, "number of input rows")
	d := flag.Int("d", 8, "dimensions")
	cardsFlag := flag.String("cards", "", "per-dimension cardinalities (default: the paper's 256,128,64,32,16,8,6,6 truncated/extended)")
	skewFlag := flag.String("skew", "", "per-dimension Zipf alphas (default: no skew)")
	p := flag.Int("p", 16, "processors")
	selectPct := flag.Int("select", 100, "percentage of views to materialize (partial cube)")
	gamma := flag.Float64("gamma", 0.01, "sample-sort balance threshold")
	mergeGamma := flag.Float64("merge-gamma", 0.03, "merge case-2/3 threshold")
	localTrees := flag.Bool("local-trees", false, "use per-processor (local) schedule trees")
	fm := flag.Bool("fm", false, "use Flajolet-Martin view-size estimation")
	greedy := flag.Bool("greedy", false, "use the greedy partial-cube planner")
	seed := flag.Int64("seed", 1, "generator seed")
	showViews := flag.Bool("views", false, "print per-view row counts")
	flag.Parse()

	cards, err := parseInts(*cardsFlag, *d, defaultCards(*d))
	if err != nil {
		fatal(err)
	}
	skews, err := parseFloats(*skewFlag, *d)
	if err != nil {
		fatal(err)
	}
	spec := gen.Spec{N: *n, D: *d, Cards: cards, Skews: skews, Seed: *seed}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	cfg := core.Config{D: *d, Gamma: *gamma, MergeGamma: *mergeGamma}
	if *localTrees {
		cfg.Schedule = core.LocalTree
	}
	if *fm {
		cfg.Estimator = core.FMEstimator
	}
	if *greedy {
		cfg.Partial = partialcube.Greedy
	}
	if *selectPct < 100 {
		cfg.Selected = partialcube.SelectPercent(*d, *selectPct, *seed)
	}

	g := gen.New(spec)
	m := cluster.New(*p, costmodel.Default())
	for r := 0; r < *p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, *p))
	}
	met, err := core.BuildCube(m, "raw", cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("input: n=%d d=%d cards=%v skew=%v seed=%d\n", *n, *d, cards, skews, *seed)
	fmt.Printf("machine: p=%d  gamma=%.1f%%  merge-gamma=%.1f%%  trees=%s\n",
		*p, *gamma*100, *mergeGamma*100, cfg.Schedule)
	fmt.Printf("cube: %d views, %d rows, %.2f GB\n",
		len(met.ViewRows), met.OutputRows, float64(met.OutputBytes)/1e9)
	fmt.Printf("simulated wall clock: %.1f s\n", met.SimSeconds)
	var phases []string
	for name := range met.PhaseSeconds {
		phases = append(phases, name)
	}
	sort.Strings(phases)
	for _, name := range phases {
		fmt.Printf("  %-10s %8.1f s   (%6.1f MB moved)\n",
			name, met.PhaseSeconds[name], float64(met.BytesByPhase[name])/1e6)
	}
	fmt.Printf("communication: %.1f MB total, %d supersteps, %d shifts, %d resorts\n",
		float64(met.BytesMoved)/1e6, met.Supersteps, met.Shifts, met.Resorts)
	fmt.Printf("merge cases: %v\n", met.CaseCounts)

	if *showViews {
		views := make([]lattice.ViewID, 0, len(met.ViewRows))
		for v := range met.ViewRows {
			views = append(views, v)
		}
		sort.Slice(views, func(i, j int) bool { return views[i] < views[j] })
		for _, v := range views {
			fmt.Printf("  %-12s %12d rows\n", v, met.ViewRows[v])
		}
	}
}

func defaultCards(d int) []int {
	paper := gen.PaperCards()
	out := make([]int, d)
	for i := range out {
		if i < len(paper) {
			out[i] = paper[i]
		} else {
			out[i] = paper[len(paper)-1]
		}
	}
	return out
}

func parseInts(s string, d int, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("cubegen: %d cardinalities for %d dimensions", len(parts), d)
	}
	out := make([]int, d)
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("cubegen: bad cardinality %q", part)
		}
		out[i] = v
	}
	return out, nil
}

func parseFloats(s string, d int) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("cubegen: %d skews for %d dimensions", len(parts), d)
	}
	out := make([]float64, d)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("cubegen: bad skew %q", part)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
