package main

import "testing"

func TestDefaultCards(t *testing.T) {
	c := defaultCards(10)
	if len(c) != 10 || c[0] != 256 || c[9] != 6 {
		t.Fatalf("defaultCards(10) = %v", c)
	}
	c = defaultCards(3)
	if len(c) != 3 || c[2] != 64 {
		t.Fatalf("defaultCards(3) = %v", c)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("4,3,2", 3, nil)
	if err != nil || got[1] != 3 {
		t.Fatalf("parseInts: %v, %v", got, err)
	}
	if _, err := parseInts("4,3", 3, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := parseInts("a,b,c", 3, nil); err == nil {
		t.Fatal("garbage accepted")
	}
	def := []int{1, 2}
	if got, _ := parseInts("", 2, def); got[1] != 2 {
		t.Fatal("default not used")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0, 1.5", 2)
	if err != nil || got[1] != 1.5 {
		t.Fatalf("parseFloats: %v, %v", got, err)
	}
	if got, err := parseFloats("", 2); err != nil || got != nil {
		t.Fatal("empty should be nil")
	}
	if _, err := parseFloats("1", 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
