// Command experiments regenerates the paper's evaluation (IPDPS'03 §4):
// every figure plus the headline end-to-end claims, printed as text
// tables.
//
// Usage:
//
//	experiments [-fig all|5|6|7|8|9|10|11|headline|overlap|baseline|faults|serve|ingest] [-scale default|paper|<multiplier>] [-procs 1,2,4,8,16] [-seed N]
//
// The default scale shrinks the paper's 1M/2M/10M-row data sets so the
// full suite finishes in minutes; -scale paper runs the original sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: all, 5, 6, 7, 8, 9, 10, 11, headline, overlap, baseline, faults, serve, ingest")
	scaleFlag := flag.String("scale", "default", "workload scale: default, paper, or a multiplier like 4")
	procsFlag := flag.String("procs", "", "comma-separated processor sweep (default 1,2,4,8,16)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	sc, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc.Seed = *seed
	if *procsFlag != "" {
		procs, err := parseProcs(*procsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc.Procs = procs
		sc.MaxP = procs[len(procs)-1]
	}

	w := os.Stdout
	run := func(name string, f func()) {
		if *fig == "all" || *fig == name {
			f()
			fmt.Fprintln(w)
		}
	}
	run("5", func() { experiments.Fig5(sc).Print(w) })
	run("6", func() { experiments.Fig6(sc).Print(w) })
	run("7", func() { experiments.Fig7(sc).Print(w) })
	run("8", func() { experiments.Fig8(sc).Print(w) })
	run("9", func() { experiments.Fig9(sc).Print(w) })
	run("10", func() { experiments.Fig10(sc).Print(w) })
	run("11", func() { experiments.Fig11(sc).Print(w) })
	run("headline", func() { experiments.Headline(sc).Print(w) })
	run("overlap", func() { experiments.Overlap(sc).Print(w) })
	run("baseline", func() { experiments.Baseline(sc).Print(w) })
	run("faults", func() { experiments.Faults(sc).Print(w) })
	run("serve", func() { experiments.Serve(sc).Print(w) })
	run("ingest", func() { experiments.Ingest(sc).Print(w) })
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "default":
		return experiments.DefaultScale(), nil
	case "paper":
		return experiments.PaperScale(), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 {
		return experiments.Scale{}, fmt.Errorf("experiments: bad -scale %q (want default, paper, or a positive multiplier)", s)
	}
	return experiments.Scaled(f), nil
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("experiments: bad -procs entry %q", part)
		}
		if len(out) > 0 && p <= out[len(out)-1] {
			return nil, fmt.Errorf("experiments: -procs must be strictly increasing")
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: empty -procs")
	}
	return out, nil
}
