package main

import "testing"

func TestParseScale(t *testing.T) {
	if sc, err := parseScale("default"); err != nil || sc.N1M != 60_000 {
		t.Fatalf("default: %+v, %v", sc, err)
	}
	if sc, err := parseScale("paper"); err != nil || sc.N1M != 1_000_000 {
		t.Fatalf("paper: %+v, %v", sc, err)
	}
	if sc, err := parseScale("2"); err != nil || sc.N1M != 120_000 {
		t.Fatalf("multiplier: %+v, %v", sc, err)
	}
	for _, bad := range []string{"", "-1", "0", "huge"} {
		if _, err := parseScale(bad); err == nil {
			t.Errorf("parseScale(%q) should fail", bad)
		}
	}
}

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("1, 2,4")
	if err != nil || len(got) != 3 || got[2] != 4 {
		t.Fatalf("parseProcs: %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "4,2", "2,2", "a"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) should fail", bad)
		}
	}
}
