// Command cubeql is an end-to-end ROLAP workbench: ingest a CSV fact
// table, build its (partial) data cube on the simulated shared-nothing
// cluster, optionally snapshot it, and answer group-by queries as CSV.
//
// Build and query in one shot:
//
//	cubeql -csv sales.csv -p 8 -group region,quarter -where product=widget
//
// Materialize only selected views and save a snapshot:
//
//	cubeql -csv sales.csv -select "region,quarter;region;" -save sales.cube
//
// Query a saved snapshot (no rebuild):
//
//	cubeql -snapshot sales.cube -group region
//
// Append a batch of new facts to a built or loaded cube (incremental
// maintenance: the batch is delta-built and merged into the live
// views, no rebuild), then query and optionally re-save:
//
//	cubeql -snapshot sales.cube -ingest new_sales.csv -group region -save sales.cube
//
// Show what the query cost on the simulated cluster (-stats routes the
// query through the serving subsystem and prints per-query metrics to
// stderr):
//
//	cubeql -csv sales.csv -p 8 -group region -where product=widget -stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	rolap "repro"
)

func main() {
	csvPath := flag.String("csv", "", "CSV fact table to ingest")
	measure := flag.String("measure", "measure", "measure column name (absent column = COUNT)")
	procs := flag.Int("p", 4, "processors of the simulated cluster")
	selectFlag := flag.String("select", "", "views to materialize, ';'-separated dimension lists (empty list = grand total); default full cube")
	save := flag.String("save", "", "write a cube snapshot to this file")
	snapshot := flag.String("snapshot", "", "load a cube snapshot instead of building")
	ingestPath := flag.String("ingest", "", "CSV batch of new facts to append to the cube before querying")
	groupFlag := flag.String("group", "", "comma-separated dimensions to group by")
	whereFlag := flag.String("where", "", "comma-separated equality filters, dim=value")
	minSupport := flag.Int64("min-support", 0, "iceberg threshold (keep groups with aggregate >= this)")
	agg := flag.String("agg", "sum", `aggregate: sum, min, max, "count distinct", median, or percentile(p) with p in [0,1]`)
	stats := flag.Bool("stats", false, "print per-query cost metrics and the per-view demand table to stderr")
	advise := flag.Int("advise", 0, "run N workload-driven advisor steps after the query: materialize hot fallback targets, retire cold views")
	flag.Parse()

	if err := run(*csvPath, *measure, *procs, *selectFlag, *save, *snapshot, *ingestPath, *groupFlag, *whereFlag, *minSupport, *agg, *stats, *advise); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(csvPath, measure string, procs int, selectFlag, save, snapshot, ingestPath, groupFlag, whereFlag string, minSupport int64, agg string, stats bool, advise int) error {
	var cube *rolap.Cube
	var in *rolap.Input

	aggOp, pct, err := parseAgg(agg)
	if err != nil {
		return err
	}

	switch {
	case snapshot != "":
		f, err := os.Open(snapshot)
		if err != nil {
			return err
		}
		defer f.Close()
		cube, err = rolap.LoadCube(f)
		if err != nil {
			return err
		}
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in, err = rolap.LoadCSV(f, rolap.CSVOptions{MeasureColumn: measure})
		if err != nil {
			return err
		}
		opts := rolap.Options{Processors: procs, MinSupport: minSupport, Aggregate: aggOp}
		if sel, err := parseSelect(selectFlag); err != nil {
			return err
		} else if sel != nil {
			opts.SelectedViews = sel
		}
		cube, err = rolap.Build(in, opts)
		if err != nil {
			return err
		}
		met := cube.Metrics()
		fmt.Fprintf(os.Stderr, "built %d views, %d rows in %.1f simulated s on %d processors\n",
			len(cube.Views()), met.OutputRows, met.SimSeconds, met.Processors)
	default:
		return fmt.Errorf("cubeql: need -csv or -snapshot")
	}

	if ingestPath != "" {
		f, err := os.Open(ingestPath)
		if err != nil {
			return err
		}
		im, err := cube.IngestCSV(f, rolap.CSVOptions{MeasureColumn: measure})
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ingested %d rows in %.3f simulated s (%.3f s delta merge), %d views updated\n",
			im.Rows, im.SimSeconds, im.DeltaMergeSeconds, len(im.ChangedViews))
	}

	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := cube.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", save)
	}

	if groupFlag == "" {
		return runAdvise(cube, advise)
	}
	dims := splitList(groupFlag)
	// Queries on a snapshot have no *Input dictionaries accessible here;
	// the cube carries them internally, but filters arrive as strings,
	// which we can only resolve with the build-time input. For
	// snapshots, filters use numeric codes.
	filters, err := parseWhere(whereFlag, in)
	if err != nil {
		return err
	}
	var vw *rolap.View
	if pct != defaultPct && cube.Holistic() {
		// Non-median ranks go through the percentile entry point; the
		// serving tier caches per-rank results under distinct keys.
		vw, err = cube.GroupByPercentile(dims, filters, pct)
		if err != nil {
			return err
		}
	}
	if vw == nil && stats {
		if srv, serr := cube.NewServer(rolap.ServerOptions{}); serr == nil {
			var qm rolap.QueryMetrics
			vw, qm, err = srv.GroupBy(context.Background(), dims, filters)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "query: source=[%s] rows_scanned=%d bytes_moved=%d sim_s=%.6f index=%v cache_hit=%v\n",
				strings.Join(qm.SourceView, ","), qm.RowsScanned, qm.BytesMoved, qm.SimSeconds, qm.IndexUsed, qm.CacheHit)
			printViewDemand(srv.Stats())
			printSketchBytes(cube.Metrics())
		} else {
			fmt.Fprintln(os.Stderr, "stats unavailable for snapshot cubes (no simulated cluster); answering directly")
		}
	}
	if vw == nil {
		vw, err = cube.GroupBy(dims, filters)
		if err != nil {
			return err
		}
	}
	if err := runAdvise(cube, advise); err != nil {
		return err
	}
	if in != nil {
		return vw.WriteCSV(os.Stdout, in)
	}
	// Snapshot path: print numeric codes.
	measName := "measure"
	if vw.Estimated {
		measName = "measure_estimate"
	}
	fmt.Println(strings.Join(append(append([]string{}, vw.Attributes...), measName), ","))
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		parts := make([]string, 0, len(key)+1)
		for _, k := range key {
			parts = append(parts, fmt.Sprint(k))
		}
		parts = append(parts, fmt.Sprint(m))
		fmt.Println(strings.Join(parts, ","))
	}
	return nil
}

// printViewDemand renders the serving tier's per-target-view demand
// table — the signal the materialization advisor mines.
func printViewDemand(st rolap.ServerStats) {
	if len(st.Views) == 0 {
		return
	}
	keys := make([]string, 0, len(st.Views))
	for k := range st.Views {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(os.Stderr, "per-view demand:")
	for _, k := range keys {
		vs := st.Views[k]
		name := k
		if name == "" {
			name = "(grand total)"
		}
		fmt.Fprintf(os.Stderr, "  [%s] hits=%d fallbacks=%d cache_hits=%d rows_scanned=%d\n",
			name, vs.Hits, vs.Fallbacks, vs.CacheHits, vs.RowsScanned)
	}
	if st.Replans > 0 {
		fmt.Fprintf(os.Stderr, "replans: %d\n", st.Replans)
	}
}

// runAdvise runs n advisor steps against the live cube, printing each
// executed action.
func runAdvise(cube *rolap.Cube, n int) error {
	if n <= 0 {
		return nil
	}
	adv, err := cube.NewAdvisor(rolap.AdvisorOptions{})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		recs, err := adv.Step()
		if err != nil {
			return err
		}
		for _, r := range recs {
			name := strings.Join(r.View, ",")
			if name == "" {
				name = "(grand total)"
			}
			fmt.Fprintf(os.Stderr, "advise step %d: %s [%s] from [%s] score=%.1f rows=%d\n",
				i+1, r.Action, name, strings.Join(r.From, ","), r.Score, r.EstRows)
		}
	}
	st := adv.Stats()
	fmt.Fprintf(os.Stderr, "advisor: %d steps, %d materialized, %d retired; %d views live, %d bytes\n",
		st.Steps, st.Materialized, st.Retired, st.CurrentViews, st.StorageBytes)
	return nil
}

// defaultPct is the percentile served when the user asks for median
// (or names no rank): rolap's Quantile default.
const defaultPct = 0.5

// parseAgg parses the -agg flag: sum/min/max, the holistic forms
// "count distinct" (aliases: count_distinct, count-distinct, distinct)
// and "percentile(p)" with p in [0,1], and "median" for
// percentile(0.5).
func parseAgg(s string) (rolap.Aggregate, float64, error) {
	norm := strings.ToLower(strings.TrimSpace(s))
	switch strings.ReplaceAll(strings.ReplaceAll(norm, "_", " "), "-", " ") {
	case "sum", "":
		return rolap.Sum, defaultPct, nil
	case "min":
		return rolap.Min, defaultPct, nil
	case "max":
		return rolap.Max, defaultPct, nil
	case "count distinct", "distinct":
		return rolap.CountDistinct, defaultPct, nil
	case "median":
		return rolap.Quantile, defaultPct, nil
	}
	if strings.HasPrefix(norm, "percentile(") && strings.HasSuffix(norm, ")") {
		var pct float64
		arg := norm[len("percentile(") : len(norm)-1]
		if _, err := fmt.Sscanf(arg, "%g", &pct); err != nil || pct < 0 || pct > 1 {
			return 0, 0, fmt.Errorf("cubeql: percentile rank %q must be a number in [0,1]", arg)
		}
		return rolap.Quantile, pct, nil
	}
	return 0, 0, fmt.Errorf("cubeql: unknown aggregate %q", s)
}

// printSketchBytes renders a holistic cube's per-view sketch storage —
// the price of serving distinct counts / percentiles mergeably.
func printSketchBytes(met rolap.Metrics) {
	if met.SketchBytes == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "sketch state: %d bytes total\n", met.SketchBytes)
	keys := make([]string, 0, len(met.ViewSketchBytes))
	for k := range met.ViewSketchBytes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := k
		if name == "" {
			name = "(grand total)"
		}
		fmt.Fprintf(os.Stderr, "  [%s] sketch_bytes=%d\n", name, met.ViewSketchBytes[k])
	}
}

// parseSelect parses "a,b;c;" into view name lists; empty string means
// full cube (nil). A trailing or standalone empty segment is the grand
// total.
func parseSelect(s string) ([][]string, error) {
	if s == "" {
		return nil, nil
	}
	var out [][]string
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			out = append(out, []string{})
			continue
		}
		out = append(out, splitList(part))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cubeql: empty -select")
	}
	return out, nil
}

// parseWhere parses "dim=value,dim2=value2". String values are
// resolved through the input's dictionaries when available; otherwise
// they must be numeric codes.
func parseWhere(s string, in *rolap.Input) (map[string]uint32, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]uint32{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("cubeql: bad filter %q (want dim=value)", part)
		}
		dim, val := kv[0], kv[1]
		if in != nil {
			if code, ok := in.CodeOf(dim, val); ok {
				out[dim] = code
				continue
			}
		}
		var code uint32
		if _, err := fmt.Sscanf(val, "%d", &code); err != nil {
			return nil, fmt.Errorf("cubeql: filter value %q is neither a known dictionary value nor a code", val)
		}
		out[dim] = code
	}
	return out, nil
}

// splitList splits a comma-separated list, trimming whitespace.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
