package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	rolap "repro"
)

func TestParseSelect(t *testing.T) {
	got, err := parseSelect("a,b; c ;")
	if err != nil || len(got) != 3 {
		t.Fatalf("parseSelect: %v, %v", got, err)
	}
	if len(got[0]) != 2 || got[1][0] != "c" || len(got[2]) != 0 {
		t.Fatalf("parseSelect contents: %v", got)
	}
	if got, _ := parseSelect(""); got != nil {
		t.Fatal("empty should be nil (full cube)")
	}
}

func TestParseWhere(t *testing.T) {
	in, err := rolap.LoadCSV(strings.NewReader("city,measure\nparis,1\nlyon,2\n"), rolap.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseWhere("city=lyon", in)
	if err != nil || len(got) != 1 {
		t.Fatalf("parseWhere: %v, %v", got, err)
	}
	if code, _ := in.CodeOf("city", "lyon"); got["city"] != code {
		t.Fatalf("wrong code: %v", got)
	}
	// Numeric fallback without dictionaries.
	got, err = parseWhere("x=3", nil)
	if err != nil || got["x"] != 3 {
		t.Fatalf("numeric filter: %v, %v", got, err)
	}
	for _, bad := range []string{"nov", "=3", "x=notanumber"} {
		if _, err := parseWhere(bad, nil); err == nil {
			t.Errorf("parseWhere(%q) should fail", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "facts.csv")
	snapPath := filepath.Join(dir, "cube.bin")
	facts := "region,product,measure\neast,widget,10\neast,nut,5\nwest,widget,7\n"
	if err := os.WriteFile(csvPath, []byte(facts), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build + save + query.
	if err := run(csvPath, "measure", 2, "", snapPath, "", "", "region", "", 0, "sum", false, 0); err != nil {
		t.Fatal(err)
	}
	// Query the snapshot.
	if err := run("", "measure", 2, "", "", snapPath, "", "region", "", 0, "sum", false, 0); err != nil {
		t.Fatal(err)
	}
	// Error paths.
	if err := run("", "measure", 2, "", "", "", "", "", "", 0, "sum", false, 0); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if err := run(csvPath, "measure", 2, "", "", "", "", "", "", 0, "bogus", false, 0); err == nil {
		t.Fatal("bad aggregate accepted")
	}
}

func TestRunWithStats(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "facts.csv")
	snapPath := filepath.Join(dir, "cube.bin")
	facts := "region,product,measure\neast,widget,10\neast,nut,5\nwest,widget,7\n"
	if err := os.WriteFile(csvPath, []byte(facts), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stats route through the query server on a built cube.
	if err := run(csvPath, "measure", 2, "", snapPath, "", "", "region", "product=widget", 0, "sum", true, 0); err != nil {
		t.Fatal(err)
	}
	// On a snapshot there is no cluster: stats degrade gracefully.
	if err := run("", "measure", 2, "", "", snapPath, "", "region", "", 0, "sum", true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAdvise(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "facts.csv")
	facts := "region,product,measure\neast,widget,10\neast,nut,5\nwest,widget,7\n"
	if err := os.WriteFile(csvPath, []byte(facts), 0o644); err != nil {
		t.Fatal(err)
	}
	// Minimal cube + a query + advisor steps: the demand mined from the
	// query drives the steps; on this tiny input they may or may not
	// act, but the path must run cleanly.
	if err := run(csvPath, "measure", 2, "region,product", "", "", "", "region", "", 0, "sum", true, 2); err != nil {
		t.Fatal(err)
	}
	// Advise without a query (no demand): steps are no-ops but legal.
	if err := run(csvPath, "measure", 2, "", "", "", "", "", "", 0, "sum", false, 1); err != nil {
		t.Fatal(err)
	}
	// Snapshot loads rebuild the simulated machine, so advising a
	// reloaded cube works too.
	snapPath := filepath.Join(dir, "cube.bin")
	if err := run(csvPath, "measure", 2, "", snapPath, "", "", "", "", 0, "sum", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("", "measure", 2, "", "", snapPath, "", "", "", 0, "sum", false, 1); err != nil {
		t.Fatalf("advise on a reloaded cube: %v", err)
	}
}

func TestRunIngestFlag(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "facts.csv")
	snapPath := filepath.Join(dir, "cube.bin")
	batchPath := filepath.Join(dir, "batch.csv")
	facts := "region,product,measure\neast,widget,10\neast,nut,5\nwest,widget,7\n"
	// The batch permutes columns and reuses known dictionary values.
	batch := "product,measure,region\nwidget,70,west\nnut,30,east\n"
	if err := os.WriteFile(csvPath, []byte(facts), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(batchPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build + ingest in one shot, saving the maintained cube.
	if err := run(csvPath, "measure", 2, "", snapPath, "", batchPath, "region", "", 0, "sum", false, 0); err != nil {
		t.Fatal(err)
	}
	// The saved snapshot reflects the batch: ingest again on load.
	if err := run("", "measure", 2, "", "", snapPath, batchPath, "region", "", 0, "sum", false, 0); err != nil {
		t.Fatal(err)
	}
	// A batch naming an unknown dictionary value is rejected.
	badPath := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(badPath, []byte("region,product,measure\nnorth,widget,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "measure", 2, "", "", snapPath, badPath, "", "", 0, "sum", false, 0); err == nil {
		t.Fatal("unknown dictionary value accepted")
	}
}

func TestParseAgg(t *testing.T) {
	cases := []struct {
		s   string
		agg rolap.Aggregate
		pct float64
	}{
		{"sum", rolap.Sum, 0.5},
		{"min", rolap.Min, 0.5},
		{"COUNT DISTINCT", rolap.CountDistinct, 0.5},
		{"count_distinct", rolap.CountDistinct, 0.5},
		{"distinct", rolap.CountDistinct, 0.5},
		{"median", rolap.Quantile, 0.5},
		{"percentile(0.9)", rolap.Quantile, 0.9},
		{"PERCENTILE(0.25)", rolap.Quantile, 0.25},
	}
	for _, c := range cases {
		agg, pct, err := parseAgg(c.s)
		if err != nil || agg != c.agg || pct != c.pct {
			t.Errorf("parseAgg(%q) = %v, %v, %v; want %v, %v", c.s, agg, pct, err, c.agg, c.pct)
		}
	}
	for _, bad := range []string{"bogus", "percentile(1.5)", "percentile(x)", "percentile(-0.1)"} {
		if _, _, err := parseAgg(bad); err == nil {
			t.Errorf("parseAgg(%q) should fail", bad)
		}
	}
}

// TestRunHolistic drives the CSV-to-CSV path with the holistic query
// forms: COUNT DISTINCT and PERCENTILE(p) build sketch-backed cubes,
// the output header labels estimates, and -stats reports sketch bytes.
func TestRunHolistic(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "facts.csv")
	snapPath := filepath.Join(dir, "cube.bin")
	facts := "region,product,measure\n" +
		"east,widget,10\neast,widget,10\neast,widget,30\n" +
		"east,nut,5\nwest,widget,7\nwest,nut,7\nwest,nut,9\n"
	if err := os.WriteFile(csvPath, []byte(facts), 0o644); err != nil {
		t.Fatal(err)
	}
	capture := func(f func() error) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		errRun := f()
		w.Close()
		os.Stdout = old
		out := make([]byte, 1<<16)
		n, _ := r.Read(out)
		r.Close()
		if errRun != nil {
			t.Fatal(errRun)
		}
		return string(out[:n])
	}

	// COUNT DISTINCT: east sells measures {10,30,5} -> 3 distinct.
	out := capture(func() error {
		return run(csvPath, "measure", 2, "", snapPath, "", "", "region", "", 0, "count distinct", true, 0)
	})
	if !strings.Contains(out, "measure_estimate") {
		t.Fatalf("distinct output not labeled as estimate:\n%s", out)
	}
	if !strings.Contains(out, "east,3") || !strings.Contains(out, "west,2") {
		t.Fatalf("wrong distinct counts:\n%s", out)
	}

	// The saved snapshot serves the same estimates after reload.
	out = capture(func() error {
		return run("", "measure", 2, "", "", snapPath, "", "region", "", 0, "count distinct", false, 0)
	})
	if !strings.Contains(out, "measure_estimate") {
		t.Fatalf("snapshot output not labeled:\n%s", out)
	}

	// PERCENTILE: east values sorted {5,10,10,30}; p=1 -> 30, median -> 10.
	out = capture(func() error {
		return run(csvPath, "measure", 2, "", "", "", "", "region", "", 0, "percentile(1)", false, 0)
	})
	if !strings.Contains(out, "east,30") {
		t.Fatalf("wrong max percentile:\n%s", out)
	}
	out = capture(func() error {
		return run(csvPath, "measure", 2, "", "", "", "", "region", "", 0, "median", false, 0)
	})
	if !strings.Contains(out, "east,10") {
		t.Fatalf("wrong median:\n%s", out)
	}
}
