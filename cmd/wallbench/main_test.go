package main

import (
	"testing"

	"repro/internal/record"
)

// TestMeasureAndPair smoke-tests the harness plumbing on a tiny
// workload: both kernel variants run, the timer numbers are positive,
// and the kernel switch is restored afterwards.
func TestMeasureAndPair(t *testing.T) {
	before := record.KernelsEnabled()
	src := randomTable(1, 2000, 4, 50)
	p := pair("smoke_sort", src.Len(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := src.Clone()
			b.StartTimer()
			c.Sort()
		}
	})
	if p.On.NsPerOp <= 0 || p.Off.NsPerOp <= 0 {
		t.Fatalf("non-positive timings: %+v", p)
	}
	if !p.On.KernelsOn || p.Off.KernelsOn {
		t.Fatalf("kernel flags mislabelled: %+v", p)
	}
	if p.Speedup <= 0 {
		t.Fatalf("speedup %v", p.Speedup)
	}
	if record.KernelsEnabled() != before {
		t.Fatal("kernel switch not restored")
	}
}
