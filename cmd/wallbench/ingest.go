package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/lattice"
	"repro/internal/record"
)

// IngestResult is one wall-clock measurement of an applied batch.
type IngestResult struct {
	KernelsOn    bool    `json:"kernels_on"`
	BatchRows    int     `json:"batch_rows"`
	WallSeconds  float64 `json:"wall_seconds"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	MergedRows   int64   `json:"merged_rows"` // output rows rewritten by the delta merge
	MergedPerSec float64 `json:"merged_rows_per_sec"`
}

// IngestReport is the BENCH_PR5.json schema: the amortized cost of
// incremental maintenance versus a full rebuild, simulated and
// wall-clock, plus the two-batch equivalence check.
type IngestReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Smoke     bool   `json:"smoke"`
	Seed      int64  `json:"seed"`

	P         int `json:"p"`
	D         int `json:"d"`
	BaseRows  int `json:"base_rows"`
	BatchRows int `json:"batch_rows"`

	// Simulated seconds on the BSP cost model (path-independent of the
	// host kernels): one 1% batch versus rebuilding everything.
	RebuildSimSeconds float64 `json:"rebuild_sim_seconds"`
	IngestSimSeconds  float64 `json:"ingest_sim_seconds"`
	// SimCostRatio = ingest/rebuild. The acceptance bar (< RatioBar) is
	// enforced on full-size runs only: at smoke sizes every file
	// operation is dominated by the modelled 2 ms access latency and
	// 64 KB block quantization, so the ratio measures fixed overheads,
	// not the data-volume economics the bar is about.
	SimCostRatio float64 `json:"sim_cost_ratio"`
	RatioBar     float64 `json:"ratio_bar"`

	// Wall-clock ingest throughput with the packed-key kernels off/on.
	Off     IngestResult `json:"off"`
	On      IngestResult `json:"on"`
	Speedup float64      `json:"speedup"`

	// EquivalenceOK: ingesting two batches produced views identical to
	// a scratch rebuild on all the rows (the CI smoke gate).
	EquivalenceOK bool `json:"equivalence_ok"`
}

// buildBase generates rows [0, base) of the spec, builds the cube on a
// fresh p-proc machine, and returns the machine plus build metrics.
func buildBase(spec gen.Spec, base, p int) (*cluster.Machine, core.Metrics, error) {
	g := gen.New(spec)
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Table(r*base/p, (r+1)*base/p))
	}
	met, err := core.BuildCube(m, "raw", core.Config{D: spec.D})
	return m, met, err
}

func ingestConfig(d int, met core.Metrics) ingest.Config {
	return ingest.Config{D: d, Orders: met.ViewOrders, Trees: met.SchedTrees, Agg: record.OpSum}
}

// timeIngest builds a fresh base and applies one batch, returning the
// batch result and the wall-clock time of the apply alone.
func timeIngest(spec gen.Spec, base, p int, batch *record.Table) (ingest.Result, float64, error) {
	m, met, err := buildBase(spec, base, p)
	if err != nil {
		return ingest.Result{}, 0, err
	}
	start := time.Now()
	res, err := ingest.IngestBatch(m, batch, ingestConfig(spec.D, met))
	return res, time.Since(start).Seconds(), err
}

// runIngest is wallbench's -ingest mode: measure incremental
// maintenance against full rebuild and gate on the two-batch
// equivalence check. A failed check exits non-zero, so the smoke run
// doubles as the CI gate.
func runIngest(out string, smoke bool, seed int64) error {
	p := 8
	d := 6
	base := 240_000
	if smoke {
		base = 8_000
	}
	batchN := base / 100 // a 1% batch
	spec := gen.Spec{N: base + 3*batchN, D: d, Cards: gen.PaperCards()[:d], Seed: seed}
	g := gen.New(spec)

	rep := IngestReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Smoke:     smoke,
		Seed:      seed,
		P:         p,
		D:         d,
		BaseRows:  base,
		BatchRows: batchN,
	}

	// Simulated economics: the same 1% batch, applied incrementally
	// versus rebuilding base+batch from raw. Simulated charges are
	// independent of the host kernels, so one run of each suffices.
	batch := g.Table(base, base+batchN)
	res, _, err := timeIngest(spec, base, p, batch)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	rebuildM := cluster.New(p, costmodel.Default())
	total := base + batchN
	for r := 0; r < p; r++ {
		rebuildM.Proc(r).Disk().Put("raw", g.Table(r*total/p, (r+1)*total/p))
	}
	rebuildMet, err := core.BuildCube(rebuildM, "raw", core.Config{D: d})
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	rep.IngestSimSeconds = res.SimSeconds
	rep.RebuildSimSeconds = rebuildMet.SimSeconds
	rep.SimCostRatio = res.SimSeconds / rebuildMet.SimSeconds
	rep.RatioBar = 0.25

	// Wall-clock throughput, kernels off then on. Each run applies the
	// batch to a freshly built base; the timer covers the apply only.
	var merged int64
	for v, n := range res.ViewRows {
		if res.Changed[v] {
			merged += n
		}
	}
	measureWall := func(on bool) (IngestResult, error) {
		prev := record.SetKernelsEnabled(on)
		defer record.SetKernelsEnabled(prev)
		best := -1.0
		runs := 2
		if smoke {
			runs = 1
		}
		for i := 0; i < runs; i++ {
			_, wall, err := timeIngest(spec, base, p, batch)
			if err != nil {
				return IngestResult{}, err
			}
			if best < 0 || wall < best {
				best = wall
			}
		}
		return IngestResult{
			KernelsOn:    on,
			BatchRows:    batchN,
			WallSeconds:  best,
			RowsPerSec:   float64(batchN) / best,
			MergedRows:   merged,
			MergedPerSec: float64(merged) / best,
		}, nil
	}
	if rep.Off, err = measureWall(false); err != nil {
		return err
	}
	if rep.On, err = measureWall(true); err != nil {
		return err
	}
	rep.Speedup = rep.Off.WallSeconds / rep.On.WallSeconds

	// Equivalence gate: base + two batches ingested must match a
	// scratch rebuild on all the rows, view by view.
	m2, met2, err := buildBase(spec, base, p)
	if err != nil {
		return err
	}
	for _, rng := range [][2]int{{base, base + batchN}, {base + batchN, base + 3*batchN}} {
		if _, err := ingest.IngestBatch(m2, g.Table(rng[0], rng[1]), ingestConfig(d, met2)); err != nil {
			return fmt.Errorf("equivalence ingest: %w", err)
		}
	}
	freshM := cluster.New(p, costmodel.Default())
	n := base + 3*batchN
	for r := 0; r < p; r++ {
		freshM.Proc(r).Disk().Put("raw", g.Table(r*n/p, (r+1)*n/p))
	}
	if _, err := core.BuildCube(freshM, "raw", core.Config{D: d}); err != nil {
		return err
	}
	rep.EquivalenceOK = true
	for _, v := range lattice.AllViews(d) {
		if !record.Equal(gatherView(m2, v), gatherView(freshM, v)) {
			rep.EquivalenceOK = false
			fmt.Fprintf(os.Stderr, "equivalence FAILED for view %v\n", v)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingest 1%% batch: %.3f sim s vs rebuild %.3f sim s — ratio %.3f (bar < %.2f)\n",
		rep.IngestSimSeconds, rep.RebuildSimSeconds, rep.SimCostRatio, rep.RatioBar)
	fmt.Printf("wall-clock: off %.0f rows/s, on %.0f rows/s (%.2fx); %.2e merged rows/s on\n",
		rep.Off.RowsPerSec, rep.On.RowsPerSec, rep.Speedup, rep.On.MergedPerSec)
	fmt.Println("equivalence:", map[bool]string{true: "ok", false: "FAILED"}[rep.EquivalenceOK])
	fmt.Println("wrote", out)
	if !rep.EquivalenceOK {
		return fmt.Errorf("ingested cube differs from rebuild")
	}
	if smoke {
		fmt.Println("smoke sizes are access-latency bound; the ratio bar is enforced on full runs")
		return nil
	}
	if rep.SimCostRatio >= rep.RatioBar {
		return fmt.Errorf("sim cost ratio %.3f exceeds the %.2f acceptance bar", rep.SimCostRatio, rep.RatioBar)
	}
	return nil
}

// gatherView concatenates a view's per-rank slices in rank order (the
// canonical global sequence).
func gatherView(m *cluster.Machine, v lattice.ViewID) *record.Table {
	var out *record.Table
	for r := 0; r < m.P(); r++ {
		if t, ok := m.Proc(r).Disk().Get(core.ViewFile(v)); ok {
			if out == nil {
				out = record.New(t.D, 0)
			}
			out.AppendTable(t)
		}
	}
	if out == nil {
		out = record.New(v.Count(), 0)
	}
	return out
}
