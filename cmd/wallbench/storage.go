package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	rolap "repro"
	"repro/internal/colstore"
	"repro/internal/record"
)

// StorageReport is the BENCH_PR9.json schema: what the columnar
// compressed storage with attribute-value reordering buys, end to end.
type StorageReport struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Smoke     bool   `json:"smoke"`
	Seed      int64  `json:"seed"`

	P    int `json:"p"`
	D    int `json:"d"`
	Rows int `json:"rows"`

	// Slice-level bytes/row on the d=8 reference shape: the fixed row
	// format, the columnar encoding of the as-loaded (scattered,
	// first-appearance) codes, and the columnar encoding after the
	// frequency remap.
	RowBytesPerRow               float64 `json:"row_bytes_per_row"`
	ColumnarBytesPerRowUnordered float64 `json:"columnar_bytes_per_row_unordered"`
	ColumnarBytesPerRowReordered float64 `json:"columnar_bytes_per_row_reordered"`
	// CompressionVsRow = row / reordered-columnar (the >=2x acceptance
	// bar); ReorderGain = unordered / reordered columnar.
	CompressionVsRow float64 `json:"compression_vs_row"`
	CompressionBar   float64 `json:"compression_bar"`
	ReorderGain      float64 `json:"reorder_gain"`

	// Whole-cube modelled footprint from the build metrics: every
	// materialized view, row form vs sealed columnar form.
	CubeOutputBytes int64   `json:"cube_output_bytes"`
	CubeStoredBytes int64   `json:"cube_stored_bytes"`
	CubeCompression float64 `json:"cube_compression"`

	// End-to-end build wall-clock (real elapsed), columnar store off/on.
	BuildWallOffSeconds float64 `json:"build_wall_off_seconds"`
	BuildWallOnSeconds  float64 `json:"build_wall_on_seconds"`

	// Snapshot size and cold-load-to-first-query (Save -> LoadCube ->
	// first Aggregate, real elapsed), v2 row path vs v3 columnar path.
	SnapshotV2Bytes   int     `json:"snapshot_v2_bytes"`
	SnapshotV3Bytes   int     `json:"snapshot_v3_bytes"`
	ColdLoadV2Seconds float64 `json:"cold_load_v2_seconds"`
	ColdLoadV3Seconds float64 `json:"cold_load_v3_seconds"`

	// Modelled snapshot bytes shipped bootstrapping a replica tier.
	ReplicaCount       int   `json:"replica_count"`
	ReplicaShipV2Bytes int64 `json:"replica_ship_v2_bytes"`
	ReplicaShipV3Bytes int64 `json:"replica_ship_v3_bytes"`

	// Simulated query latency over the same sweep, row vs columnar
	// storage, and the <=1.05x regression gate.
	QuerySimRowSeconds float64 `json:"query_sim_row_seconds"`
	QuerySimColSeconds float64 `json:"query_sim_col_seconds"`
	QueryLatencyRatio  float64 `json:"query_latency_ratio"`
	QueryGateBar       float64 `json:"query_gate_bar"`

	// Every query answer and every gathered view identical between the
	// row and columnar cubes (the CI smoke gate).
	AnswersIdentical bool `json:"answers_identical"`
}

// skewedTable generates the reference shape for the slice-level
// measurement: d dimensions whose codes are scattered across a wide
// declared domain (as first-appearance dictionary codes are) with a
// Zipf-ish frequency skew, so the frequency remap has something to
// win.
func skewedTable(seed int64, n, d int) *record.Table {
	rng := rand.New(rand.NewSource(seed))
	const distinct = 48
	domain := make([][]uint32, d)
	for j := range domain {
		seen := map[uint32]bool{}
		for len(domain[j]) < distinct {
			v := uint32(rng.Intn(1 << 16))
			if !seen[v] {
				seen[v] = true
				domain[j] = append(domain[j], v)
			}
		}
	}
	zipf := rand.NewZipf(rng, 1.3, 1, distinct-1)
	t := record.New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = domain[j][zipf.Uint64()]
		}
		t.Append(row, int64(rng.Intn(100)))
	}
	return t
}

// storageInput builds the cube-level workload: a d=8 paper-cards
// schema with Zipf-skewed codes.
func storageInput(seed int64, n int) (*rolap.Input, error) {
	cards := []int{256, 128, 64, 32, 16, 8, 6, 6}
	schema := rolap.Schema{}
	for j, c := range cards {
		schema.Dimensions = append(schema.Dimensions, rolap.Dimension{
			Name:        fmt.Sprintf("d%d", j),
			Cardinality: c,
		})
	}
	in, err := rolap.NewInput(schema)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	zipfs := make([]*rand.Zipf, len(cards))
	for j, c := range cards {
		zipfs[j] = rand.NewZipf(rng, 1.2, 1, uint64(c-1))
	}
	row := make([]uint32, len(cards))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = uint32(zipfs[j].Uint64())
		}
		if err := in.AddRow(row, int64(rng.Intn(100))); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// storageQuery is one entry of the deterministic query sweep.
type storageQuery struct {
	dims []string
	key  []uint32
}

func storageQueries(in *rolap.Input, seed int64, count int) []storageQuery {
	rng := rand.New(rand.NewSource(seed + 1000))
	schema := in.Schema()
	var qs []storageQuery
	for len(qs) < count {
		k := 1 + rng.Intn(3)
		picked := rng.Perm(len(schema.Dimensions))[:k]
		var dims []string
		var key []uint32
		for _, j := range picked {
			dims = append(dims, schema.Dimensions[j].Name)
			key = append(key, uint32(rng.Intn(schema.Dimensions[j].Cardinality)))
		}
		qs = append(qs, storageQuery{dims: dims, key: key})
	}
	// The grand total exercises the empty view.
	qs = append(qs, storageQuery{})
	return qs
}

// sweep runs the query list against a cube's server with caching off,
// returning the answers and the total simulated latency.
func sweep(c *rolap.Cube, qs []storageQuery) ([]int64, float64, error) {
	s, err := c.NewServer(rolap.ServerOptions{Workers: 1, CacheSize: -1})
	if err != nil {
		return nil, 0, err
	}
	ctx := context.Background()
	answers := make([]int64, 0, len(qs))
	var sim float64
	for _, q := range qs {
		got, qm, err := s.Aggregate(ctx, q.dims, q.key)
		if err != nil {
			return nil, 0, fmt.Errorf("query %v: %w", q.dims, err)
		}
		answers = append(answers, got)
		sim += qm.SimSeconds
	}
	return answers, sim, nil
}

// viewsEqual gathers every materialized view from both cubes and
// compares them row by row.
func viewsEqual(a, b *rolap.Cube) (bool, error) {
	for _, dims := range a.Views() {
		va, err := a.View(dims)
		if err != nil {
			return false, err
		}
		vb, err := b.View(dims)
		if err != nil {
			return false, err
		}
		if va.Len() != vb.Len() {
			return false, nil
		}
		for i := 0; i < va.Len(); i++ {
			ka, ma := va.Row(i)
			kb, mb := vb.Row(i)
			if ma != mb {
				return false, nil
			}
			for j := range ka {
				if ka[j] != kb[j] {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// runStorage is wallbench's -storage mode: measure the columnar
// compressed storage end to end and gate on the acceptance bars. Gate
// failures exit non-zero, so the smoke run doubles as a CI gate.
func runStorage(out string, smoke bool, seed int64) error {
	p := 4
	d := 8
	n := 60_000
	if smoke {
		n = 6_000
	}
	rep := StorageReport{
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		Smoke:          smoke,
		Seed:           seed,
		P:              p,
		D:              d,
		Rows:           n,
		CompressionBar: 2,
		QueryGateBar:   1.05,
		ReplicaCount:   4,
	}

	// Slice-level bytes/row on the reference shape.
	ref := skewedTable(seed, n, d)
	rep.RowBytesPerRow = float64(record.RowBytes(d))
	unord := ref.Clone()
	unord.Sort()
	rep.ColumnarBytesPerRowUnordered = float64(colstore.Encode(unord).Bytes()) / float64(n)
	re := ref.Clone()
	colstore.ApplyRemaps(re, colstore.FrequencyRemaps(re))
	re.Sort()
	rep.ColumnarBytesPerRowReordered = float64(colstore.Encode(re).Bytes()) / float64(n)
	rep.CompressionVsRow = rep.RowBytesPerRow / rep.ColumnarBytesPerRowReordered
	rep.ReorderGain = rep.ColumnarBytesPerRowUnordered / rep.ColumnarBytesPerRowReordered

	// Cube-level: the same input built with the columnar store off/on.
	in, err := storageInput(seed, n)
	if err != nil {
		return err
	}
	build := func(on bool) (*rolap.Cube, float64, error) {
		prev := colstore.SetEnabled(on)
		defer colstore.SetEnabled(prev)
		start := time.Now()
		c, err := rolap.Build(in, rolap.Options{Processors: p})
		return c, time.Since(start).Seconds(), err
	}
	rowCube, wallOff, err := build(false)
	if err != nil {
		return fmt.Errorf("row build: %w", err)
	}
	colCube, wallOn, err := build(true)
	if err != nil {
		return fmt.Errorf("columnar build: %w", err)
	}
	rep.BuildWallOffSeconds = wallOff
	rep.BuildWallOnSeconds = wallOn
	met := colCube.Metrics()
	rep.CubeOutputBytes = met.OutputBytes
	rep.CubeStoredBytes = met.OutputBytesStored
	if met.OutputBytesStored > 0 {
		rep.CubeCompression = float64(met.OutputBytes) / float64(met.OutputBytesStored)
	}

	// Query sweep: byte-identical answers and the sim-latency gate.
	qs := storageQueries(in, seed, map[bool]int{true: 30, false: 60}[smoke])
	rowAns, simRow, err := sweep(rowCube, qs)
	if err != nil {
		return fmt.Errorf("row sweep: %w", err)
	}
	colAns, simCol, err := sweep(colCube, qs)
	if err != nil {
		return fmt.Errorf("columnar sweep: %w", err)
	}
	rep.QuerySimRowSeconds = simRow
	rep.QuerySimColSeconds = simCol
	rep.QueryLatencyRatio = simCol / simRow
	rep.AnswersIdentical = true
	for i := range rowAns {
		if rowAns[i] != colAns[i] {
			rep.AnswersIdentical = false
			fmt.Fprintf(os.Stderr, "answer mismatch on query %v: row %d, columnar %d\n", qs[i].dims, rowAns[i], colAns[i])
		}
	}
	if rep.AnswersIdentical {
		same, err := viewsEqual(rowCube, colCube)
		if err != nil {
			return err
		}
		rep.AnswersIdentical = same
	}

	// Snapshot size + cold-load-to-first-query, v2 vs v3.
	snapshot := func(c *rolap.Cube, on bool) ([]byte, error) {
		prev := colstore.SetEnabled(on)
		defer colstore.SetEnabled(prev)
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	coldLoad := func(snap []byte) (float64, error) {
		start := time.Now()
		c, err := rolap.LoadCube(bytes.NewReader(snap))
		if err != nil {
			return 0, err
		}
		if _, err := c.Aggregate(nil, nil); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	v2snap, err := snapshot(colCube, false)
	if err != nil {
		return err
	}
	v3snap, err := snapshot(colCube, true)
	if err != nil {
		return err
	}
	rep.SnapshotV2Bytes = len(v2snap)
	rep.SnapshotV3Bytes = len(v3snap)
	if rep.ColdLoadV2Seconds, err = coldLoad(v2snap); err != nil {
		return fmt.Errorf("v2 cold load: %w", err)
	}
	if rep.ColdLoadV3Seconds, err = coldLoad(v3snap); err != nil {
		return fmt.Errorf("v3 cold load: %w", err)
	}

	// Snapshot-ship bytes bootstrapping 4 replicas, v2 vs v3 snapshots.
	shipBytes := func(c *rolap.Cube, on bool) (int64, error) {
		prev := colstore.SetEnabled(on)
		defer colstore.SetEnabled(prev)
		rs, err := c.NewReplicaSet(rolap.ReplicaOptions{Replicas: rep.ReplicaCount})
		if err != nil {
			return 0, err
		}
		defer rs.Close()
		return rs.Stats().SnapshotShipBytes, nil
	}
	if rep.ReplicaShipV2Bytes, err = shipBytes(rowCube, false); err != nil {
		return fmt.Errorf("v2 replica bootstrap: %w", err)
	}
	if rep.ReplicaShipV3Bytes, err = shipBytes(colCube, true); err != nil {
		return fmt.Errorf("v3 replica bootstrap: %w", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("bytes/row: row %.1f, columnar %.2f unordered, %.2f reordered — %.1fx vs row (bar >= %.0fx), reorder gain %.2fx\n",
		rep.RowBytesPerRow, rep.ColumnarBytesPerRowUnordered, rep.ColumnarBytesPerRowReordered,
		rep.CompressionVsRow, rep.CompressionBar, rep.ReorderGain)
	fmt.Printf("cube footprint: %d row bytes -> %d stored bytes (%.1fx)\n",
		rep.CubeOutputBytes, rep.CubeStoredBytes, rep.CubeCompression)
	fmt.Printf("build wall-clock: off %.3fs, on %.3fs\n", rep.BuildWallOffSeconds, rep.BuildWallOnSeconds)
	fmt.Printf("snapshot: v2 %d B, v3 %d B; cold-load-to-first-query: v2 %.4fs, v3 %.4fs\n",
		rep.SnapshotV2Bytes, rep.SnapshotV3Bytes, rep.ColdLoadV2Seconds, rep.ColdLoadV3Seconds)
	fmt.Printf("replica bootstrap (%d replicas): v2 ships %d B, v3 ships %d B\n",
		rep.ReplicaCount, rep.ReplicaShipV2Bytes, rep.ReplicaShipV3Bytes)
	fmt.Printf("query sim latency: row %.4fs, columnar %.4fs — ratio %.3f (bar <= %.2f)\n",
		rep.QuerySimRowSeconds, rep.QuerySimColSeconds, rep.QueryLatencyRatio, rep.QueryGateBar)
	fmt.Println("answers identical:", rep.AnswersIdentical)
	fmt.Println("wrote", out)

	if !rep.AnswersIdentical {
		return fmt.Errorf("row and columnar cubes disagree")
	}
	if rep.CompressionVsRow < rep.CompressionBar {
		return fmt.Errorf("compression %.2fx below the %.0fx bar", rep.CompressionVsRow, rep.CompressionBar)
	}
	if rep.QueryLatencyRatio > rep.QueryGateBar {
		return fmt.Errorf("query latency ratio %.3f exceeds the %.2f bar", rep.QueryLatencyRatio, rep.QueryGateBar)
	}
	return nil
}
