// Command wallbench measures the wall-clock effect of the packed-key
// radix/merge kernels (internal/record) and writes a machine-readable
// JSON report. It benchmarks each kernel hot path with kernels enabled
// and disabled (record.SetKernelsEnabled), plus an end-to-end
// shared-nothing cube build, and reports ns/op, rows/sec, allocs/op
// and the on/off speedup.
//
// The simulated BSP cost model is untouched by the kernel switch — the
// determinism tests assert bit-identical cubes and Metrics either way —
// so everything here is real elapsed time on the host.
//
// Usage:
//
//	go run ./cmd/wallbench -out BENCH_PR4.json          # full run
//	go run ./cmd/wallbench -smoke -out BENCH_PR4.json   # CI smoke (small sizes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/record"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	KernelsOn   bool    `json:"kernels_on"`
	Rows        int     `json:"rows"`
	NsPerOp     float64 `json:"ns_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Pair summarizes an on/off comparison of the same workload.
type Pair struct {
	Name    string  `json:"name"`
	Off     Result  `json:"off"`
	On      Result  `json:"on"`
	Speedup float64 `json:"speedup"`
}

// Report is the BENCH_PR4.json schema.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Smoke     bool     `json:"smoke"`
	Seed      int64    `json:"seed"`
	Pairs     []Pair   `json:"pairs"`
	Singles   []Result `json:"singles"`
}

func randomTable(seed int64, n, d, card int) *record.Table {
	rng := rand.New(rand.NewSource(seed))
	t := record.New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = uint32(rng.Intn(card))
		}
		t.Append(row, int64(rng.Intn(100)))
	}
	return t
}

func measure(name string, rows int, on bool, f func(b *testing.B)) Result {
	prev := record.SetKernelsEnabled(on)
	defer record.SetKernelsEnabled(prev)
	r := testing.Benchmark(f)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Result{
		Name:        name,
		KernelsOn:   on,
		Rows:        rows,
		NsPerOp:     ns,
		RowsPerSec:  float64(rows) / (ns / 1e9),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func pair(name string, rows int, f func(b *testing.B)) Pair {
	off := measure(name, rows, false, f)
	on := measure(name, rows, true, f)
	return Pair{Name: name, Off: off, On: on, Speedup: off.NsPerOp / on.NsPerOp}
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "output JSON path")
	rows := flag.Int("rows", 200_000, "row count for kernel benchmarks")
	seed := flag.Int64("seed", 1, "data seed")
	smoke := flag.Bool("smoke", false, "tiny sizes for CI smoke runs")
	ingestMode := flag.Bool("ingest", false, "benchmark incremental ingest vs full rebuild (writes the BENCH_PR5 schema)")
	storageMode := flag.Bool("storage", false, "benchmark columnar compressed storage vs row storage (writes the BENCH_PR9 schema)")
	flag.Parse()

	if *ingestMode {
		if err := runIngest(*out, *smoke, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *storageMode {
		if err := runStorage(*out, *smoke, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	n := *rows
	buildN := 60_000
	buildP := 4
	if *smoke {
		n = 5_000
		buildN = 4_000
	}

	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH
	rep.NumCPU = runtime.NumCPU()
	rep.Smoke = *smoke
	rep.Seed = *seed

	// Table.Sort on a d=8 table with paper-like cardinalities: the
	// tentpole target (>=2x with kernels on).
	sortSrc := randomTable(*seed, n, 8, 64)
	rep.Pairs = append(rep.Pairs, pair("table_sort_d8", n, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := sortSrc.Clone()
			b.StartTimer()
			t.Sort()
		}
	}))

	sortSrc4 := randomTable(*seed+1, n, 4, 1000)
	rep.Pairs = append(rep.Pairs, pair("table_sort_d4", n, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := sortSrc4.Clone()
			b.StartTimer()
			t.Sort()
		}
	}))

	// k-way merge with aggregation: loser tree vs container/heap.
	k := 8
	mergeIn := make([]*record.Table, k)
	for i := range mergeIn {
		mergeIn[i] = randomTable(*seed+int64(10+i), n/k, 4, 1000)
		mergeIn[i].Sort()
	}
	rep.Pairs = append(rep.Pairs, pair("merge_k8_aggregate", n, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			record.MergeSortedAggregate(mergeIn)
		}
	}))

	// End-to-end shared-nothing cube build (simulated cluster, real
	// wall-clock): the whole pipeline with kernels on vs off.
	spec := gen.Spec{N: buildN, D: 8, Cards: gen.PaperCards(), Seed: *seed}
	rep.Pairs = append(rep.Pairs, pair("build_cube_d8", buildN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g := gen.New(spec)
			m := cluster.New(buildP, costmodel.Default())
			for r := 0; r < buildP; r++ {
				m.Proc(r).Disk().Put("raw", g.Slice(r, buildP))
			}
			b.StartTimer()
			if _, err := core.BuildCube(m, "raw", core.Config{D: spec.D}); err != nil {
				fmt.Fprintln(os.Stderr, "build failed:", err)
				os.Exit(1)
			}
		}
	}))

	// Kernel primitives (no off-variant: these are new code paths).
	packSrc := randomTable(*seed+2, n, 8, 64)
	kp := record.MeasureKeyPlan(packSrc)
	lo := make([]uint64, packSrc.Len())
	var hi []uint64
	if kp.Wide() {
		hi = make([]uint64, packSrc.Len())
	}
	rep.Singles = append(rep.Singles, measure("pack_keys_d8", n, true, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kp.PackKeys(packSrc, hi, lo)
		}
	}))

	perm := rand.New(rand.NewSource(*seed + 3)).Perm(packSrc.Len())
	perm32 := make([]uint32, len(perm))
	for i, p := range perm {
		perm32[i] = uint32(p)
	}
	rep.Singles = append(rep.Singles, measure("apply_permutation_d8", n, true, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t := packSrc.Clone()
			b.StartTimer()
			record.ApplyPermutation(t, perm32)
		}
	}))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}

	for _, p := range rep.Pairs {
		fmt.Printf("%-20s off %12.0f ns/op   on %12.0f ns/op   speedup %.2fx\n",
			p.Name, p.Off.NsPerOp, p.On.NsPerOp, p.Speedup)
	}
	for _, s := range rep.Singles {
		fmt.Printf("%-20s %14.0f ns/op   %.1f Mrows/s   %d allocs/op\n",
			s.Name, s.NsPerOp, s.RowsPerSec/1e6, s.AllocsPerOp)
	}
	fmt.Println("wrote", *out)
}
