package rolap

import (
	"fmt"

	"repro/internal/faults"
)

// FaultPlan is a deterministic, seeded fault-injection plan for a
// build (Options.Faults). It models the failures a shared-nothing
// cluster actually sees: processor crashes, h-relation payloads lost
// or corrupted in transit (detected by a wire-image checksum and
// repaired by charged, exponentially backed-off retransmissions), and
// straggling nodes. Two builds of the same input with the same plan
// produce byte-identical cubes and identical metrics.
//
// Processors are addressed by their rank in the machine as built; a
// plan outlives recovery-driven shrinking, still addressing original
// ranks.
type FaultPlan struct {
	// Seed drives the deterministic corruption bit patterns.
	Seed int64
	// Crashes kill processors at chosen execution points.
	Crashes []Crash
	// Drops lose h-relation payloads in transit.
	Drops []PayloadFault
	// Corruptions flip bits in h-relation payloads in transit.
	Corruptions []PayloadFault
	// Stragglers slow processors' local CPU and disk work.
	Stragglers []Straggler
	// RetryBackoff overrides the base retransmission backoff in
	// seconds (default 0.05; attempt k waits RetryBackoff * 2^(k-1)).
	RetryBackoff float64
}

// Crash kills one processor at a chosen execution point: either its
// Superstep-th collective superstep (when Superstep > 0), or on
// entering Phase of the Dimension-th dimension iteration of the build
// (0-based, in the library's internal decreasing-cardinality order),
// where Phase "" means the dimension boundary itself and Dimension -1
// matches any dimension.
type Crash struct {
	Processor int
	Dimension int
	Phase     string
	Superstep int64
}

// PayloadFault damages the payload processor From addresses to
// processor To in From's Exchange-th bulk table exchange. Times is the
// number of consecutive delivery attempts that fail before the retry
// succeeds (default 1).
type PayloadFault struct {
	From, To int
	Exchange int64
	Times    int
}

// Straggler slows one processor's local CPU and disk work by Factor
// (>= 1); communication is unaffected.
type Straggler struct {
	Processor int
	Factor    float64
}

// Checkpoint configures per-dimension checkpointing and crash
// recovery (Options.Checkpoint). When enabled, each processor
// replicates its raw share up front and its completed view slices
// every Interval dimension iterations to its ring neighbor's disk
// (charged on the simulated clock). A crashed build then continues
// degraded on p-1 processors from the last checkpointed boundary;
// without checkpointing a crash fails the build with a
// *FailedBuildError.
type Checkpoint struct {
	// Enabled turns checkpointing on.
	Enabled bool
	// Interval is the number of dimension iterations per checkpoint
	// (default 1).
	Interval int
	// DetectSeconds is the failure-detection timeout charged before
	// recovery begins (default 0.25s).
	DetectSeconds float64
}

// internal converts the public plan to the internal representation.
func (f *FaultPlan) internal() *faults.Plan {
	if f == nil {
		return nil
	}
	p := &faults.Plan{Seed: f.Seed, RetryBackoff: f.RetryBackoff}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, faults.Crash{
			Rank: c.Processor, Dimension: c.Dimension, Phase: c.Phase, Superstep: c.Superstep,
		})
	}
	for _, d := range f.Drops {
		p.Drops = append(p.Drops, faults.PayloadFault{Src: d.From, Dst: d.To, Exchange: d.Exchange, Times: d.Times})
	}
	for _, c := range f.Corruptions {
		p.Corruptions = append(p.Corruptions, faults.PayloadFault{Src: c.From, Dst: c.To, Exchange: c.Exchange, Times: c.Times})
	}
	for _, s := range f.Stragglers {
		p.Stragglers = append(p.Stragglers, faults.Straggler{Rank: s.Processor, Factor: s.Factor})
	}
	return p
}

// ServeFaultPlan is a deterministic fault-injection plan for the
// serving tier's read path (ReplicaOptions.ServeFaults), the
// query-time counterpart of FaultPlan. Replicas are addressed by
// index; execution points by per-replica ordinals — a replica's
// Query-th routed read, or the delta batch with a given commit
// sequence — so the same plan against the same workload fires at the
// same points on every run. Faults change when and where queries
// execute, never what they compute: a run under any plan, with
// failover enabled, returns the same answers as a fault-free run.
type ServeFaultPlan struct {
	// Crashes kill replicas at chosen points of the serving timeline;
	// the hit query fails over and the replica re-bootstraps.
	Crashes []ServeCrash
	// Stragglers delay replicas' query executions (wall clock), the
	// trigger for hedged requests.
	Stragglers []ServeStraggler
	// Stalls delay replicas' delta-batch applications (wall clock),
	// spiking their lag so bounded-staleness routing steers around them.
	Stalls []ShipStall
}

// ServeCrash kills one replica just as its Query-th routed read (a
// 1-based per-replica ordinal, counted across re-bootstraps) is being
// dispatched. Each crash fires at most once per replica set.
type ServeCrash struct {
	Replica int
	Query   uint64
}

// ServeStraggler delays one replica's query executions by DelaySeconds
// of wall clock for every routed read whose per-replica ordinal falls
// in [FromQuery, ToQuery] (1-based, inclusive; ToQuery 0 means
// FromQuery alone). Delays are capped at 10s.
type ServeStraggler struct {
	Replica            int
	FromQuery, ToQuery uint64
	DelaySeconds       float64
}

// ShipStall delays one replica's application of the delta batch with
// commit sequence Batch by DelaySeconds of wall clock (capped at 10s).
type ShipStall struct {
	Replica      int
	Batch        uint64
	DelaySeconds float64
}

// ServeCrashLoop builds a crash-looping replica: it dies at its
// first-th routed read and again every `every` reads thereafter, n
// times in total.
func ServeCrashLoop(replica int, first, every uint64, n int) []ServeCrash {
	crashes := make([]ServeCrash, 0, n)
	for _, c := range faults.CrashLoop(replica, first, every, n) {
		crashes = append(crashes, ServeCrash{Replica: c.Replica, Query: c.Query})
	}
	return crashes
}

// internal converts the public serving-fault plan to the internal
// representation.
func (f *ServeFaultPlan) internal() *faults.ServePlan {
	if f == nil {
		return nil
	}
	p := &faults.ServePlan{}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, faults.ServeCrash{Replica: c.Replica, Query: c.Query})
	}
	for _, s := range f.Stragglers {
		p.Stragglers = append(p.Stragglers, faults.ServeStraggler{
			Replica: s.Replica, FromQuery: s.FromQuery, ToQuery: s.ToQuery, DelaySeconds: s.DelaySeconds,
		})
	}
	for _, s := range f.Stalls {
		p.Stalls = append(p.Stalls, faults.ShipStall{Replica: s.Replica, Batch: s.Batch, DelaySeconds: s.DelaySeconds})
	}
	return p
}

// FailedBuildError reports a build killed by a processor crash that
// could not be recovered (no checkpointing enabled, a single-processor
// machine, or a crash outside the recoverable region). It names where
// in the algorithm the processor died.
type FailedBuildError struct {
	// Processor is the crashed processor's original rank.
	Processor int
	// Dimension is the dimension iteration at the crash point (-1
	// before the first).
	Dimension int
	// Phase is the algorithm phase at the crash point ("partition",
	// "plan", "build", "merge", "checkpoint", "recover"; "" at a
	// dimension boundary).
	Phase string
	// Superstep is the processor's collective superstep count at the
	// crash point.
	Superstep int64
}

func (e *FailedBuildError) Error() string {
	where := fmt.Sprintf("dimension %d", e.Dimension)
	if e.Phase != "" {
		where += ", phase " + e.Phase
	}
	return fmt.Sprintf("rolap: build failed: processor %d crashed (%s, superstep %d)", e.Processor, where, e.Superstep)
}
