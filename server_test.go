package rolap

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/record"
)

func buildServedCube(t *testing.T, n int, p int) (*Cube, func(dims []string, key []uint32) int64) {
	t.Helper()
	in, oracle := loadRandom(t, n, 31)
	cube, err := Build(in, Options{Processors: p})
	if err != nil {
		t.Fatal(err)
	}
	return cube, oracle
}

func TestServerGroupByAndCacheHit(t *testing.T) {
	cube, oracle := buildServedCube(t, 600, 3)
	s, err := cube.NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	vw, qm, err := s.GroupBy(ctx, []string{"store", "month"}, map[string]uint32{"channel": 1})
	if err != nil {
		t.Fatal(err)
	}
	if qm.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	if qm.SimSeconds <= 0 || qm.RowsScanned <= 0 {
		t.Fatalf("first query charged nothing: %+v", qm)
	}
	if len(qm.SourceView) == 0 {
		t.Fatalf("no source view reported: %+v", qm)
	}
	// Spot-check one group against the brute-force oracle.
	for i := 0; i < vw.Len(); i++ {
		key, meas := vw.Row(i)
		if want := oracle([]string{"store", "month", "channel"}, []uint32{key[0], key[1], 1}); meas != want {
			t.Fatalf("group %v = %d, oracle %d", key, meas, want)
		}
	}

	vw2, qm2, err := s.GroupBy(ctx, []string{"store", "month"}, map[string]uint32{"channel": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !qm2.CacheHit {
		t.Fatal("identical repeat was not a cache hit")
	}
	if qm2.SimSeconds != 0 || qm2.RowsScanned != 0 || qm2.BytesMoved != 0 {
		t.Fatalf("cache hit charged work: %+v", qm2)
	}
	if !record.Equal(vw.rows, vw2.rows) {
		t.Fatal("cache hit returned different rows")
	}

	st := s.Stats()
	if st.Queries != 2 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 2 queries / 1 hit", st)
	}
	if st.SimSeconds <= 0 || st.RowsScanned <= 0 {
		t.Fatalf("stats missing cost totals: %+v", st)
	}
}

func TestServerAggregateAndRange(t *testing.T) {
	cube, oracle := buildServedCube(t, 500, 2)
	s, err := cube.NewServer(ServerOptions{CacheSize: -1}) // caching off
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	got, _, err := s.Aggregate(ctx, []string{"month", "channel"}, []uint32{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle([]string{"month", "channel"}, []uint32{3, 1}); got != want {
		t.Fatalf("aggregate = %d, oracle %d", got, want)
	}

	// Range over all months of one channel == channel total.
	got, _, err = s.RangeAggregate(ctx, []string{"month", "channel"}, []uint32{0, 2}, []uint32{11, 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle([]string{"channel"}, []uint32{2}); got != want {
		t.Fatalf("range aggregate = %d, oracle %d", got, want)
	}
}

func TestServerAdmissionControl(t *testing.T) {
	cube, _ := buildServedCube(t, 200, 2)
	s, err := cube.NewServer(ServerOptions{Workers: 1, QueueDepth: -1}) // no queue
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the only worker slot directly, then any arrival must be
	// rejected rather than queued.
	s.sem <- struct{}{}
	_, _, err = s.GroupBy(context.Background(), []string{"month"}, nil)
	if !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("err = %v, want ErrServerOverloaded", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}
	<-s.sem
}

func TestServerDeadline(t *testing.T) {
	cube, _ := buildServedCube(t, 200, 2)
	s, err := cube.NewServer(ServerOptions{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.sem <- struct{}{} // wedge the worker so the query has to queue
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err = s.GroupBy(ctx, []string{"month"}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if s.Stats().Expired != 1 {
		t.Fatalf("expired = %d, want 1", s.Stats().Expired)
	}
	<-s.sem

	// With the worker free again the same query succeeds.
	if _, _, err := s.GroupBy(context.Background(), []string{"month"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentCorrectness(t *testing.T) {
	cube, oracle := buildServedCube(t, 800, 4)
	s, err := cube.NewServer(ServerOptions{Workers: 4, QueueDepth: 100})
	if err != nil {
		t.Fatal(err)
	}
	dims := []string{"month", "store", "product", "channel"}
	cards := []uint32{12, 40, 25, 3}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for w := 0; w < 20; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := dims[w%4]
			val := uint32(w) % cards[(w+1)%4]
			got, _, err := s.Aggregate(context.Background(), []string{d, dims[(w+1)%4]}, []uint32{uint32(w) % cards[w%4], val})
			if err != nil {
				errs <- err
				return
			}
			want := oracle([]string{d, dims[(w+1)%4]}, []uint32{uint32(w) % cards[w%4], val})
			if got != want {
				errs <- errors.New("concurrent aggregate mismatch")
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Queries != 20 {
		t.Fatalf("served %d queries, want 20", st.Queries)
	}
}

// TestServerCacheVersionValidation pins the execution-time version
// stamp: a result cached before an ingest batch must not be served
// after the batch replaces its source view, and the refreshed entry
// must carry the post-batch version (a stale plan-time stamp would
// permanently poison the key).
func TestServerCacheVersionValidation(t *testing.T) {
	rows, meas := randomFacts(500, 419)
	base := 400
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
	s, err := cube.NewServer(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var want int64
	for _, m := range meas[:base] {
		want += m
	}
	got, qm, err := s.Aggregate(ctx, nil, nil)
	if err != nil || got != want {
		t.Fatalf("pre-batch total %d (%v), want %d", got, err, want)
	}
	if qm.CacheHit {
		t.Fatal("first query hit an empty cache")
	}
	if _, qm, err = s.Aggregate(ctx, nil, nil); err != nil || !qm.CacheHit {
		t.Fatalf("repeat before the batch: hit=%v err=%v", qm.CacheHit, err)
	}

	// The batch bumps the grand-total view's version: the cached entry
	// is stale and must fall through to execution, not serve the
	// pre-batch value.
	if _, err := cube.Ingest(rows[base:], meas[base:]); err != nil {
		t.Fatal(err)
	}
	for _, m := range meas[base:] {
		want += m
	}
	got, qm, err = s.Aggregate(ctx, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qm.CacheHit {
		t.Fatal("stale cache entry served after the batch")
	}
	if got != want {
		t.Fatalf("post-batch total %d, want %d", got, want)
	}
	// The refreshed entry is valid at the new version.
	got, qm, err = s.Aggregate(ctx, nil, nil)
	if err != nil || !qm.CacheHit || got != want {
		t.Fatalf("repeat after refresh: total %d hit=%v err=%v, want %d hit", got, qm.CacheHit, err, want)
	}
}

// TestServerCacheVersionUnderConcurrentIngest hammers the plan/execute
// window the version stamp closes: queries race ingest batches, and
// every served total must be a committed boundary value — a cache entry
// filed under a stale version would replay an old total after newer
// batches landed.
func TestServerCacheVersionUnderConcurrentIngest(t *testing.T) {
	rows, meas := randomFacts(900, 421)
	base := 300
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})
	s, err := cube.NewServer(ServerOptions{Workers: 4, QueueDepth: 100})
	if err != nil {
		t.Fatal(err)
	}

	allowed := map[int64]bool{}
	var total int64
	for _, m := range meas[:base] {
		total += m
	}
	allowed[total] = true
	lowWater := total
	const batch = 60
	for lo := base; lo < len(rows); lo += batch {
		for _, m := range meas[lo : lo+batch] {
			total += m
		}
		allowed[total] = true
	}

	done := make(chan error, 1)
	go func() {
		for lo := base; lo < len(rows); lo += batch {
			if _, err := cube.Ingest(rows[lo:lo+batch], meas[lo:lo+batch]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	ctx := context.Background()
	ingesting := true
	for ingesting {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			ingesting = false
		default:
		}
		got, _, err := s.Aggregate(ctx, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !allowed[got] {
			t.Fatalf("served total %d is not any committed boundary", got)
		}
		// Once a total is observed, nothing older may be served again:
		// measures are non-negative, so boundaries increase with commit
		// order, and a served regression means a stale cache replay.
		if got < lowWater {
			t.Fatalf("served total regressed from %d to %d — stale cache entry replayed", lowWater, got)
		}
		lowWater = got
	}
	got, _, err := s.Aggregate(ctx, nil, nil)
	if err != nil || got != total {
		t.Fatalf("final total %d (%v), want %d", got, err, total)
	}
}

func TestServerRequiresCluster(t *testing.T) {
	cube, _ := buildServedCube(t, 100, 2)
	cube.engine = nil // simulate a snapshot-loaded cube
	if _, err := cube.NewServer(ServerOptions{}); err == nil {
		t.Fatal("snapshot cube accepted by NewServer")
	}
}
