package ingest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/record"
)

// TestMaterializeMatchesBuild retires a view from a fully built cube
// and rebuilds it online from an ancestor; the result must be
// byte-identical to the build-time slice sequence.
func TestMaterializeMatchesBuild(t *testing.T) {
	spec := gen.Spec{N: 4200, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 31}
	full := lattice.ViewID(1<<4 - 1)
	targets := []lattice.ViewID{
		lattice.Root(0, 4).Remove(1), // non-prefix subset
		lattice.Root(2, 4),           // a root from another partition
		lattice.Empty,                // grand total
	}
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			g := gen.New(spec)
			m, met := buildBase(t, g, spec.N, p, core.Config{D: 4})
			for _, v := range targets {
				want := gatherView(m, v)
				RetireView(m, v)
				for r := 0; r < p; r++ {
					if m.Proc(r).Disk().Has(core.ViewFile(v)) {
						t.Fatalf("view %v still on rank %d after retire", v, r)
					}
				}
				res, err := MaterializeView(m, MaterializeOptions{
					Src:      full,
					SrcOrder: met.ViewOrders[full],
					View:     v,
					Order:    met.ViewOrders[v],
				})
				if err != nil {
					t.Fatalf("materialize %v: %v", v, err)
				}
				got := gatherView(m, v)
				if !record.Equal(got, want) {
					t.Fatalf("view %v: online build differs from build-time (%d rows vs %d)",
						v, got.Len(), want.Len())
				}
				if res.Rows != int64(want.Len()) {
					t.Fatalf("view %v: result says %d rows, cube has %d", v, res.Rows, want.Len())
				}
				if res.SrcRows != core.ViewGlobalRows(m, full) {
					t.Fatalf("view %v: scanned %d source rows, ancestor has %d",
						v, res.SrcRows, core.ViewGlobalRows(m, full))
				}
				if res.SimSeconds <= 0 {
					t.Fatalf("view %v: no simulated time charged", v)
				}
				if p > 1 && res.BytesMoved <= 0 {
					t.Fatalf("view %v: no communication charged at p=%d", v, p)
				}
			}
		})
	}
}

// TestMaterializeFromNonFullAncestor builds a sub-view from an
// intermediate ancestor rather than the full view — the advisor's
// smallest-ancestor path.
func TestMaterializeFromNonFullAncestor(t *testing.T) {
	spec := gen.Spec{N: 3600, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 37}
	g := gen.New(spec)
	m, met := buildBase(t, g, spec.N, 2, core.Config{D: 4})
	src := lattice.Root(0, 4).Remove(3) // 3-dim ancestor
	v := src.Remove(2)                  // 2-dim target under it
	want := gatherView(m, v)
	RetireView(m, v)
	if _, err := MaterializeView(m, MaterializeOptions{
		Src: src, SrcOrder: met.ViewOrders[src],
		View: v, Order: met.ViewOrders[v],
	}); err != nil {
		t.Fatal(err)
	}
	if got := gatherView(m, v); !record.Equal(got, want) {
		t.Fatalf("view %v from ancestor %v differs from build-time (%d rows vs %d)",
			v, src, got.Len(), want.Len())
	}
}

func TestMaterializeValidation(t *testing.T) {
	spec := gen.Spec{N: 1000, D: 3, Cards: []int{8, 5, 3}, Seed: 41}
	g := gen.New(spec)
	m, met := buildBase(t, g, spec.N, 2, core.Config{D: 3})
	full := lattice.ViewID(1<<3 - 1)
	v := lattice.Root(0, 3).Remove(1)
	good := MaterializeOptions{
		Src: full, SrcOrder: met.ViewOrders[full],
		View: v, Order: met.ViewOrders[v],
	}

	bad := good
	bad.MergeGamma = 2
	if _, err := MaterializeView(m, bad); err == nil {
		t.Fatal("bad gamma accepted")
	}
	bad = good
	bad.Order = met.ViewOrders[full] // order covers the wrong view
	if _, err := MaterializeView(m, bad); err == nil {
		t.Fatal("order/view mismatch accepted")
	}
	bad = good
	bad.SrcOrder = met.ViewOrders[v]
	if _, err := MaterializeView(m, bad); err == nil {
		t.Fatal("source order mismatch accepted")
	}
	bad = good
	bad.View = full // not a strict subset
	bad.Order = met.ViewOrders[full]
	if _, err := MaterializeView(m, bad); err == nil {
		t.Fatal("non-subset target accepted")
	}
	checkNoBatchState(t, m) // validation must not leave stage files

	// The live cube is untouched by the failed attempts.
	if !m.Proc(0).Disk().Has(core.ViewFile(v)) {
		t.Fatalf("failed materializations damaged live view %v", v)
	}
}

func TestRetireViewRemovesAllSlices(t *testing.T) {
	spec := gen.Spec{N: 1200, D: 3, Cards: []int{8, 5, 3}, Seed: 43}
	g := gen.New(spec)
	m, _ := buildBase(t, g, spec.N, 3, core.Config{D: 3})
	v := lattice.Root(0, 3).Remove(2)
	other := lattice.Root(0, 3)
	before := gatherView(m, other)
	RetireView(m, v)
	for r := 0; r < 3; r++ {
		if m.Proc(r).Disk().Has(core.ViewFile(v)) {
			t.Fatalf("rank %d still holds retired view %v", r, v)
		}
	}
	if !record.Equal(gatherView(m, other), before) {
		t.Fatalf("retiring %v modified sibling view %v", v, other)
	}
}
