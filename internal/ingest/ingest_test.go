package ingest

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/record"
)

// buildBase builds a live cube from rows [0, base) of the generated
// data set, returning the machine and build metrics.
func buildBase(t *testing.T, g *gen.Generator, base, p int, cfg core.Config) (*cluster.Machine, core.Metrics) {
	t.Helper()
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Table(r*base/p, (r+1)*base/p))
	}
	met, err := core.BuildCube(m, "raw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, met
}

// rebuild builds a from-scratch cube on rows [0, n) — the oracle the
// incremental path must match.
func rebuild(t *testing.T, g *gen.Generator, n, p int, cfg core.Config) *cluster.Machine {
	t.Helper()
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Table(r*n/p, (r+1)*n/p))
	}
	if _, err := core.BuildCube(m, "raw", cfg); err != nil {
		t.Fatal(err)
	}
	return m
}

// gatherView concatenates a view's slices in rank order — the global
// sorted sequence, which is canonical regardless of where slice
// boundaries fall.
func gatherView(m *cluster.Machine, v lattice.ViewID) *record.Table {
	out := record.New(v.Count(), 0)
	for r := 0; r < m.P(); r++ {
		if tb, ok := m.Proc(r).Disk().Get(core.ViewFile(v)); ok {
			out.AppendTable(tb)
		}
	}
	return out
}

func ingestConfig(cfg core.Config, met core.Metrics) Config {
	return Config{
		D:           cfg.D,
		Selected:    cfg.Selected,
		Orders:      met.ViewOrders,
		Trees:       met.SchedTrees,
		Agg:         cfg.Agg,
		OverlapComm: cfg.OverlapComm,
	}
}

func selectedViews(cfg core.Config) []lattice.ViewID {
	if cfg.Selected != nil {
		return cfg.Selected
	}
	return lattice.AllViews(cfg.D)
}

// checkMatchesRebuild ingests the tail of the data set in the given
// batch splits and asserts every view is byte-identical to a
// from-scratch build on the full data.
func checkMatchesRebuild(t *testing.T, spec gen.Spec, p, base int, splits []int, cfg core.Config) []Result {
	t.Helper()
	g := gen.New(spec)
	m, met := buildBase(t, g, base, p, cfg)
	icfg := ingestConfig(cfg, met)
	var results []Result
	lo := base
	for _, b := range splits {
		res, err := IngestBatch(m, g.Table(lo, lo+b), icfg)
		if err != nil {
			t.Fatal(err)
		}
		res.AddTo(&met)
		results = append(results, res)
		lo += b
	}
	oracle := rebuild(t, g, lo, p, cfg)
	for _, v := range selectedViews(cfg) {
		got, want := gatherView(m, v), gatherView(oracle, v)
		if !record.Equal(got, want) {
			t.Fatalf("view %v: incremental result differs from rebuild (%d rows vs %d)", v, got.Len(), want.Len())
		}
		if met.ViewRows[v] != int64(want.Len()) {
			t.Fatalf("view %v: metrics say %d rows, rebuild has %d", v, met.ViewRows[v], want.Len())
		}
	}
	if met.IngestedRows != int64(lo-base) {
		t.Fatalf("IngestedRows = %d, want %d", met.IngestedRows, lo-base)
	}
	if met.IngestBatches != int64(len(splits)) {
		t.Fatalf("IngestBatches = %d, want %d", met.IngestBatches, len(splits))
	}
	return results
}

func TestIngestMatchesRebuild(t *testing.T) {
	spec4 := gen.Spec{N: 4200, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 11}
	cases := []struct {
		name   string
		spec   gen.Spec
		p      int
		base   int
		splits []int
		cfg    core.Config
	}{
		{"p1", spec4, 1, 3600, []int{400, 200}, core.Config{D: 4}},
		{"p2", spec4, 2, 3600, []int{400, 200}, core.Config{D: 4}},
		{"p4", spec4, 4, 3600, []int{300, 300}, core.Config{D: 4}},
		{"uneven-splits", spec4, 3, 3600, []int{17, 583}, core.Config{D: 4}},
		{"skewed", gen.Spec{N: 4000, D: 3, Cards: []int{16, 9, 4}, Skews: []float64{1.4, 1.4, 1.4}, Seed: 5},
			3, 3400, []int{300, 300}, core.Config{D: 3}},
		{"overlap-comm", spec4, 4, 3600, []int{400, 200}, core.Config{D: 4, OverlapComm: true}},
		{"local-trees", gen.Spec{N: 3000, D: 3, Cards: []int{10, 7, 4}, Seed: 9},
			2, 2500, []int{250, 250}, core.Config{D: 3, Schedule: core.LocalTree}},
		{"op-max", gen.Spec{N: 3000, D: 3, Cards: []int{10, 7, 4}, Seed: 13},
			2, 2500, []int{500}, core.Config{D: 3, Agg: record.OpMax}},
		{"partial-cube", spec4, 3, 3600, []int{400, 200}, core.Config{D: 4,
			Selected: []lattice.ViewID{
				lattice.Root(0, 4),           // a root (prefix merge)
				lattice.Root(0, 4).Remove(3), // prefix of that root
				lattice.Root(0, 4).Remove(1), // non-prefix
				lattice.Root(2, 4),           // second partition
				lattice.ViewID(0),            // grand total
			}}},
		{"partial-no-root", spec4, 2, 3600, []int{300}, core.Config{D: 4,
			Selected: []lattice.ViewID{
				lattice.Root(0, 4).Remove(3),
				lattice.Root(0, 4).Remove(1),
			}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results := checkMatchesRebuild(t, tc.spec, tc.p, tc.base, tc.splits, tc.cfg)
			for k, res := range results {
				if res.SimSeconds <= 0 {
					t.Fatalf("batch %d: no simulated time charged", k)
				}
				if res.DeltaMergeSeconds <= 0 {
					t.Fatalf("batch %d: delta merge not charged", k)
				}
				if len(res.Changed) == 0 {
					t.Fatalf("batch %d: no views marked changed", k)
				}
				if tc.p > 1 && res.BytesMoved <= 0 {
					t.Fatalf("batch %d: no communication charged at p=%d", k, tc.p)
				}
			}
		})
	}
}

func TestIngestCaseCoverage(t *testing.T) {
	// A full cube at p=4 must exercise the Case 1 prefix merge (the
	// roots and their scan chains) and the Case 2 overlap exchange
	// (non-prefix views) in the same batch.
	spec := gen.Spec{N: 4200, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 21}
	results := checkMatchesRebuild(t, spec, 4, 3800, []int{400}, core.Config{D: 4})
	cc := results[0].CaseCounts
	if cc[mergepart.CasePrefix] == 0 {
		t.Fatalf("no Case 1 prefix merges: %v", cc)
	}
	if cc[mergepart.CaseOverlap]+cc[mergepart.CaseGlobalSort] == 0 {
		t.Fatalf("no Case 2/3 merges: %v", cc)
	}
	total := 0
	for _, n := range cc {
		total += n
	}
	if total != len(lattice.AllViews(4)) {
		t.Fatalf("merged %d views, want %d: %v", total, len(lattice.AllViews(4)), cc)
	}
}

func TestIngestEmptyBatch(t *testing.T) {
	g := gen.New(gen.Spec{N: 2000, D: 3, Cards: []int{8, 5, 3}, Seed: 3})
	cfg := core.Config{D: 3}
	m, met := buildBase(t, g, 2000, 2, cfg)
	before := map[lattice.ViewID]*record.Table{}
	for _, v := range lattice.AllViews(3) {
		before[v] = gatherView(m, v)
	}
	res, err := IngestBatch(m, record.New(3, 0), ingestConfig(cfg, met))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Fatalf("empty batch changed views: %v", res.Changed)
	}
	for _, v := range lattice.AllViews(3) {
		if !record.Equal(gatherView(m, v), before[v]) {
			t.Fatalf("empty batch modified view %v", v)
		}
	}
	checkNoBatchState(t, m)
}

// checkNoBatchState asserts no in-flight ingest files remain.
func checkNoBatchState(t *testing.T, m *cluster.Machine) {
	t.Helper()
	for r := 0; r < m.P(); r++ {
		for _, f := range m.Proc(r).Disk().Files() {
			if len(f) >= 7 && f[:7] == "ingest." {
				t.Fatalf("rank %d: leftover batch state %q", r, f)
			}
		}
	}
}

// TestIngestDeterminism asserts the PR 2/4 contract for the new
// subsystem: the same batches applied with kernels on and off produce
// byte-identical views and identical simulated Results.
func TestIngestDeterminism(t *testing.T) {
	spec := gen.Spec{N: 3600, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 17}
	cfg := core.Config{D: 4}
	run := func(kernels bool) ([]Result, map[lattice.ViewID]*record.Table, float64) {
		record.SetKernelsEnabled(kernels)
		defer record.SetKernelsEnabled(true)
		g := gen.New(spec)
		m, met := buildBase(t, g, 3000, 3, cfg)
		icfg := ingestConfig(cfg, met)
		var results []Result
		for _, span := range [][2]int{{3000, 3400}, {3400, 3600}} {
			res, err := IngestBatch(m, g.Table(span[0], span[1]), icfg)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		views := map[lattice.ViewID]*record.Table{}
		for _, v := range lattice.AllViews(4) {
			views[v] = gatherView(m, v)
		}
		return results, views, m.SimSeconds()
	}
	onRes, onViews, onSim := run(true)
	offRes, offViews, offSim := run(false)
	if !reflect.DeepEqual(onRes, offRes) {
		t.Fatalf("Results differ kernels on/off:\non:  %+v\noff: %+v", onRes, offRes)
	}
	if onSim != offSim {
		t.Fatalf("SimSeconds differ kernels on/off: %v vs %v", onSim, offSim)
	}
	for v, tb := range onViews {
		if !record.Equal(tb, offViews[v]) {
			t.Fatalf("view %v bytes differ kernels on/off", v)
		}
	}
}

// TestIngestCrashRecoversPreBatch injects a crash in the middle of a
// delta merge and asserts the cube recovers to its exact pre-batch
// contents, then accepts the same batch cleanly.
func TestIngestCrashRecoversPreBatch(t *testing.T) {
	g := gen.New(gen.Spec{N: 3400, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 23})
	cfg := core.Config{D: 4}
	m, met := buildBase(t, g, 3000, 3, cfg)
	before := map[lattice.ViewID]*record.Table{}
	for _, v := range lattice.AllViews(4) {
		before[v] = gatherView(m, v)
	}
	icfg := ingestConfig(cfg, met)
	icfg.Faults = &faults.Plan{Crashes: []faults.Crash{
		{Rank: 1, Dimension: 2, Phase: PhaseDeltaMerge},
	}}
	_, err := IngestBatch(m, g.Table(3000, 3400), icfg)
	var crash *faults.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want *faults.CrashError, got %v", err)
	}
	if crash.Phase != PhaseDeltaMerge || crash.Rank != 1 {
		t.Fatalf("crash fired at the wrong point: %+v", crash)
	}
	for _, v := range lattice.AllViews(4) {
		if !record.Equal(gatherView(m, v), before[v]) {
			t.Fatalf("view %v is not at its pre-batch contents after crash", v)
		}
	}
	checkNoBatchState(t, m)

	// The machine stays usable: the same batch applies cleanly once the
	// fault plan is gone, and matches the rebuild oracle.
	icfg.Faults = nil
	if _, err := IngestBatch(m, g.Table(3000, 3400), icfg); err != nil {
		t.Fatal(err)
	}
	oracle := rebuild(t, g, 3400, 3, cfg)
	for _, v := range lattice.AllViews(4) {
		if !record.Equal(gatherView(m, v), gatherView(oracle, v)) {
			t.Fatalf("view %v differs from rebuild after crash + retry", v)
		}
	}
}

// TestIngestCrashAtCommitBarrier crashes at the final deltamerge
// supersteps (the commit barrier region) and asserts atomicity: either
// nothing changed or — past the barrier — everything committed. Before
// the barrier no rename may have happened.
func TestIngestCrashAtCommitBarrier(t *testing.T) {
	g := gen.New(gen.Spec{N: 2300, D: 3, Cards: []int{8, 5, 3}, Seed: 29})
	cfg := core.Config{D: 3}
	m, met := buildBase(t, g, 2000, 2, cfg)
	before := map[lattice.ViewID]*record.Table{}
	for _, v := range lattice.AllViews(3) {
		before[v] = gatherView(m, v)
	}
	// Last dimension, deltamerge phase: the nearest injection point to
	// the commit barrier a plan can name.
	icfg := ingestConfig(cfg, met)
	icfg.Faults = &faults.Plan{Crashes: []faults.Crash{
		{Rank: 0, Dimension: 2, Phase: PhaseDeltaMerge},
	}}
	_, err := IngestBatch(m, g.Table(2000, 2300), icfg)
	var crash *faults.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want *faults.CrashError, got %v", err)
	}
	for _, v := range lattice.AllViews(3) {
		if !record.Equal(gatherView(m, v), before[v]) {
			t.Fatalf("crash before commit leaked into view %v", v)
		}
	}
	checkNoBatchState(t, m)
}

func TestIngestValidation(t *testing.T) {
	g := gen.New(gen.Spec{N: 1000, D: 3, Cards: []int{8, 5, 3}, Seed: 1})
	cfg := core.Config{D: 3}
	m, met := buildBase(t, g, 1000, 2, cfg)
	good := ingestConfig(cfg, met)

	if _, err := IngestBatch(m, nil, good); err == nil {
		t.Fatal("nil batch accepted")
	}
	if _, err := IngestBatch(m, record.New(2, 0), good); err == nil {
		t.Fatal("wrong batch arity accepted")
	}
	bad := good
	bad.Orders = map[lattice.ViewID]lattice.Order{}
	if _, err := IngestBatch(m, record.New(3, 0), bad); err == nil {
		t.Fatal("missing orders accepted")
	}
	bad = good
	bad.Gamma = 2
	if _, err := IngestBatch(m, record.New(3, 0), bad); err == nil {
		t.Fatal("bad gamma accepted")
	}
	bad = good
	bad.Faults = &faults.Plan{Crashes: []faults.Crash{{Rank: 99, Dimension: -1}}}
	if _, err := IngestBatch(m, record.New(3, 0), bad); err == nil {
		t.Fatal("fault plan for the wrong machine size accepted")
	}
}

func TestDeltaTreeValidates(t *testing.T) {
	// The fallback schedule tree must validate for full partitions and
	// assorted partial selections, with canonical orders standing in
	// for the live cube's.
	for _, d := range []int{2, 3, 4, 6} {
		orders := map[lattice.ViewID]lattice.Order{}
		for _, v := range lattice.AllViews(d) {
			orders[v] = lattice.Canonical(v)
		}
		for i := 0; i < d; i++ {
			full := lattice.PartitionSubset(i, d, lattice.AllViews(d))
			if len(full) == 0 {
				continue
			}
			tr := deltaTree(d, i, full, orders)
			if err := tr.Validate(); err != nil {
				t.Fatalf("d=%d i=%d full partition: %v", d, i, err)
			}
			// Every partition view must be materializable from the tree
			// in its agreed order.
			for _, v := range full {
				n := tr.Node(v)
				if n == nil {
					t.Fatalf("d=%d i=%d: view %v missing from tree", d, i, v)
				}
				if !n.Order.Equal(orders[v]) {
					t.Fatalf("d=%d i=%d view %v: tree order %v, live order %v", d, i, v, n.Order, orders[v])
				}
			}
			// A sparse selection (every other view) must also validate.
			var sparse []lattice.ViewID
			for k, v := range full {
				if k%2 == 0 {
					sparse = append(sparse, v)
				}
			}
			tr = deltaTree(d, i, sparse, orders)
			if err := tr.Validate(); err != nil {
				t.Fatalf("d=%d i=%d sparse partition: %v", d, i, err)
			}
		}
	}
}

func TestResultAddTo(t *testing.T) {
	met := core.Metrics{
		PhaseSeconds: map[string]float64{},
		BytesByPhase: map[string]int64{},
		CaseCounts:   map[mergepart.Case]int{},
		ViewRows:     map[lattice.ViewID]int64{3: 10},
	}
	res := Result{
		Rows:              100,
		SimSeconds:        2,
		PhaseSeconds:      map[string]float64{PhaseIngest: 1.5, PhaseDeltaMerge: 0.5},
		BytesMoved:        800,
		Supersteps:        6,
		DeltaMergeBytes:   300,
		DeltaMergeSeconds: 0.5,
		CaseCounts:        map[mergepart.Case]int{mergepart.CasePrefix: 2},
		ViewRows:          map[lattice.ViewID]int64{3: 12, 1: 4},
	}
	res.AddTo(&met)
	res.AddTo(&met)
	if met.IngestedRows != 200 || met.IngestBatches != 2 {
		t.Fatalf("ingest counters wrong: %+v", met)
	}
	if met.IngestSeconds != 3 || met.DeltaMergeSeconds != 1 {
		t.Fatalf("ingest seconds wrong: %+v", met)
	}
	if met.DeltaMergeBytes != 600 || met.BytesMoved != 1600 {
		t.Fatalf("ingest bytes wrong: %+v", met)
	}
	if met.ViewRows[3] != 12 || met.ViewRows[1] != 4 {
		t.Fatalf("view rows not refreshed: %+v", met.ViewRows)
	}
	wantRows := int64(16)
	if met.OutputRows != wantRows {
		t.Fatalf("OutputRows = %d, want %d", met.OutputRows, wantRows)
	}
	if met.CaseCounts[mergepart.CasePrefix] != 4 {
		t.Fatalf("case counts not accumulated: %+v", met.CaseCounts)
	}
}
