// Package ingest implements incremental cube maintenance on the
// shared-nothing machine: new fact rows arrive in batches, each batch
// is built into a sorted delta cube with the same pipeline as the
// initial build (local aggregate, Adaptive–Sample–Sort, Pipesort over
// the retained schedule trees), and the per-view deltas are merged
// into the live views with the paper's Procedure 3 case machinery:
//
//   - The delta root of each dimension partition is routed against the
//     *existing* live root slice boundaries (the gathered last keys
//     stand in for sampled pivots), so delta slices align with live
//     slices instead of being re-partitioned from scratch.
//   - Prefix views then merge with a local two-way sorted merge
//     followed by the Case 1 boundary-row exchange: alignment
//     guarantees the merged concatenation is globally sorted, with at
//     most equal keys facing each other across neighbor boundaries.
//   - Non-prefix views (and all views when the live root is not
//     materialized) reuse the Case 2 overlap-run exchange: delta runs
//     travel to the owner of their live key range and two-way merge
//     with the local live slice. If the merged view drifts past the
//     balance threshold the Case 3 full sample sort redistributes it.
//
// Crash atomicity: every merged view is written to a staging file;
// live views are swapped in only after a commit barrier that every
// processor must pass. Injected crashes fire at superstep entry (and
// phase/epoch boundaries), so a crash anywhere in the batch aborts all
// processors before any live file is touched — the cube recovers to
// its exact pre-batch state by discarding the staging files.
package ingest

import (
	"fmt"
	"strings"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/samplesort"
	"repro/internal/sketch"
)

// Phase names of the incremental pipeline, charged on the simulated
// clock exactly like the build phases ("partition", "plan", ...).
const (
	// PhaseIngest covers batch staging and delta-cube construction.
	PhaseIngest = "ingest"
	// PhaseDeltaMerge covers merging delta slices into live views and
	// the commit barrier.
	PhaseDeltaMerge = "deltamerge"
)

// BatchFile names the staged batch share on each processor's disk.
const BatchFile = "ingest.batch"

// deltaFile names a view's delta slice while a batch is in flight.
func deltaFile(v lattice.ViewID) string { return "ingest.delta." + v.String() }

// stageFile names a view's merged-but-uncommitted slice.
func stageFile(v lattice.ViewID) string { return "ingest.stage." + v.String() }

// Config parameterizes an incremental batch. Orders is required: it is
// the live cube's materialized attribute orders (core
// Metrics.ViewOrders), which fix both the delta build orders and the
// merge targets. Trees optionally carries the retained build schedule
// trees (core Metrics.SchedTrees); dimensions without one fall back to
// a deterministic schedule derived from Orders, so local-tree builds
// and reloaded snapshots remain ingestable.
type Config struct {
	// D is the data dimensionality.
	D int
	// Selected lists the materialized views; nil means the full cube.
	Selected []lattice.ViewID
	// Orders maps every selected view to its live attribute order.
	Orders map[lattice.ViewID]lattice.Order
	// Trees maps dimension index to the retained build schedule tree.
	Trees map[int]*lattice.Tree
	// Gamma is the Adaptive–Sample–Sort shift threshold (default 1%).
	Gamma float64
	// MergeGamma is the delta-merge rebalance threshold (default 3%).
	MergeGamma float64
	// SampleCap overrides the spaced-sample size (default 100p).
	SampleCap int
	// Agg is the aggregate operator (default record.OpSum).
	Agg record.AggOp
	// Sketch is the shared sketch store backing holistic operators
	// (required when Agg is holistic; must be the same store the cube
	// was built against so live handles resolve).
	Sketch *sketch.Store
	// Cards optionally carries the per-dimension effective
	// cardinalities (core Config.Cards): delta external sorts then run
	// with caller-supplied key plans instead of measuring per run.
	Cards []int
	// OverlapComm runs the delta h-relations on the overlap lane.
	OverlapComm bool
	// Faults, when non-nil, installs a fault-injection plan for the
	// duration of the batch (uninstalled afterwards).
	Faults *faults.Plan
}

func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = 0.01
	}
	if c.MergeGamma == 0 {
		c.MergeGamma = 0.03
	}
	return c
}

func (c Config) validate(m *cluster.Machine, batch *record.Table, sel []lattice.ViewID) error {
	if c.D < 1 || c.D > lattice.MaxDims {
		return fmt.Errorf("ingest: bad dimensionality %d (want 1..%d)", c.D, lattice.MaxDims)
	}
	if batch == nil {
		return fmt.Errorf("ingest: nil batch")
	}
	if batch.D != c.D {
		return fmt.Errorf("ingest: batch has %d columns, config says %d", batch.D, c.D)
	}
	if c.Gamma <= 0 || c.Gamma >= 1 {
		return fmt.Errorf("ingest: gamma %v out of range (0,1)", c.Gamma)
	}
	if c.MergeGamma <= 0 || c.MergeGamma >= 1 {
		return fmt.Errorf("ingest: merge gamma %v out of range (0,1)", c.MergeGamma)
	}
	if c.SampleCap < 0 {
		return fmt.Errorf("ingest: negative sample cap %d", c.SampleCap)
	}
	if c.Agg.Holistic() && c.Sketch == nil {
		return fmt.Errorf("ingest: holistic aggregate %v requires a sketch store", c.Agg)
	}
	full := lattice.Full(c.D)
	for _, v := range sel {
		if !v.SubsetOf(full) {
			return fmt.Errorf("ingest: selected view %#x outside the %d-dimensional lattice", uint32(v), c.D)
		}
		o, ok := c.Orders[v]
		if !ok {
			return fmt.Errorf("ingest: no materialized order for view %v", v)
		}
		if o.View() != v {
			return fmt.Errorf("ingest: order %v does not cover view %v", o, v)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(m.P()); err != nil {
			return err
		}
	}
	return nil
}

// Result reports what one batch did.
type Result struct {
	P int
	// Rows is the number of facts in the batch.
	Rows int64
	// SimSeconds is the simulated makespan added by the batch.
	SimSeconds float64
	// PhaseSeconds is the per-phase makespan contribution: "ingest"
	// (delta build) and "deltamerge" (merge into live views).
	PhaseSeconds map[string]float64
	// BytesMoved and Supersteps are the communication added by the
	// batch; DeltaMergeBytes is the "deltamerge" share of BytesMoved.
	BytesMoved      int64
	Supersteps      int64
	DeltaMergeBytes int64
	// DeltaMergeSeconds is PhaseSeconds["deltamerge"].
	DeltaMergeSeconds float64
	// CaseCounts tallies the merge case applied per touched view.
	CaseCounts map[mergepart.Case]int
	// Changed marks the views whose live slices were replaced. Views
	// with no delta rows anywhere are skipped and keep their slices
	// (and any query-side indexes) byte-for-byte.
	Changed map[lattice.ViewID]bool
	// ViewRows is the post-merge global row count of every selected
	// view.
	ViewRows map[lattice.ViewID]int64
	// ViewBytesStored is the post-merge modelled on-disk size of every
	// selected view, as the storage layer reports it (compressed for
	// sealed slices).
	ViewBytesStored map[lattice.ViewID]int64
}

// AddTo folds the batch into build metrics, maintaining the
// core-level ingest counters and refreshing the per-view row counts.
func (r Result) AddTo(met *core.Metrics) {
	met.IngestedRows += r.Rows
	met.IngestBatches++
	met.IngestSeconds += r.PhaseSeconds[PhaseIngest]
	met.DeltaMergeSeconds += r.DeltaMergeSeconds
	met.DeltaMergeBytes += r.DeltaMergeBytes
	met.SimSeconds += r.SimSeconds
	met.BytesMoved += r.BytesMoved
	met.Supersteps += r.Supersteps
	if met.PhaseSeconds != nil {
		for name, sec := range r.PhaseSeconds {
			met.PhaseSeconds[name] += sec
		}
	}
	if met.BytesByPhase != nil {
		met.BytesByPhase[PhaseDeltaMerge] += r.DeltaMergeBytes
		met.BytesByPhase[PhaseIngest] += r.BytesMoved - r.DeltaMergeBytes
	}
	if met.CaseCounts != nil {
		for c, n := range r.CaseCounts {
			met.CaseCounts[c] += n
		}
	}
	met.OutputRows = 0
	met.OutputBytes = 0
	for v, rows := range r.ViewRows {
		met.ViewRows[v] = rows
	}
	for v, rows := range met.ViewRows {
		met.OutputRows += rows
		met.OutputBytes += rows * int64(record.RowBytes(v.Count()))
	}
	if met.ViewBytesStored == nil {
		met.ViewBytesStored = map[lattice.ViewID]int64{}
	}
	for v, b := range r.ViewBytesStored {
		met.ViewBytesStored[v] = b
	}
	met.OutputBytesStored = 0
	for _, b := range met.ViewBytesStored {
		met.OutputBytesStored += b
	}
}

// procOut captures per-processor observations during the SPMD run.
type procOut struct {
	phase   map[string]float64
	cases   map[mergepart.Case]int
	changed map[lattice.ViewID]bool
}

func newProcOut() *procOut {
	return &procOut{
		phase:   map[string]float64{},
		cases:   map[mergepart.Case]int{},
		changed: map[lattice.ViewID]bool{},
	}
}

// IngestBatch applies one batch of fact rows (D dimension columns in
// canonical order, plus measures) to the live cube on the machine.
// On success every selected view's slices hold the merged result; on
// error — an injected crash surfaces as a *faults.CrashError — the
// live views are untouched and all in-flight batch state is discarded,
// so the cube remains queryable at its pre-batch contents.
func IngestBatch(m *cluster.Machine, batch *record.Table, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	sel := cfg.Selected
	if sel == nil {
		sel = lattice.AllViews(cfg.D)
	}
	if err := cfg.validate(m, batch, sel); err != nil {
		return Result{}, err
	}
	if err := m.SetFaults(cfg.Faults); err != nil {
		return Result{}, err
	}
	defer m.SetFaults(nil)
	if cfg.Sketch != nil && cfg.Agg.Holistic() {
		// Sketch payloads ride the delta h-relations with their handles.
		sz := rankAgg(cfg, 0)
		m.SetTableSizer(func(t *record.Table) int { return sz.TableStateBytes(t) })
	}

	np := m.P()
	before := make([]map[string]bool, np)
	for r := 0; r < np; r++ {
		before[r] = map[string]bool{}
		for _, f := range m.Proc(r).Disk().Files() {
			before[r][f] = true
		}
	}
	outs := make([]*procOut, np)
	for i := range outs {
		outs[i] = newProcOut()
	}
	st0 := m.Stats()
	t0 := m.SimSeconds()

	err := m.Run(func(p *cluster.Proc) {
		ingestOnProc(p, batch, cfg, sel, outs[p.Rank()])
	})
	if err != nil {
		// Recover to the pre-batch cube: live views were never touched
		// (the commit barrier gates every rename); drop whatever batch
		// state the aborted processors left behind. Metadata-only, so
		// recovery adds no simulated cost beyond what the aborted
		// supersteps already charged.
		for r := 0; r < m.P(); r++ {
			disk := m.Proc(r).Disk()
			for _, f := range disk.Files() {
				if !before[r][f] && (strings.HasPrefix(f, "ingest.") || strings.HasPrefix(f, "tmp.")) {
					disk.Remove(f)
				}
			}
		}
		return Result{}, err
	}

	st1 := m.Stats()
	res := Result{
		P:               np,
		Rows:            int64(batch.Len()),
		SimSeconds:      m.SimSeconds() - t0,
		PhaseSeconds:    map[string]float64{},
		BytesMoved:      st1.BytesMoved - st0.BytesMoved,
		Supersteps:      st1.Supersteps - st0.Supersteps,
		DeltaMergeBytes: st1.ByPhase[PhaseDeltaMerge] - st0.ByPhase[PhaseDeltaMerge],
		CaseCounts:      map[mergepart.Case]int{},
		Changed:         map[lattice.ViewID]bool{},
		ViewRows:        map[lattice.ViewID]int64{},
		ViewBytesStored: map[lattice.ViewID]int64{},
	}
	for _, out := range outs {
		for name, sec := range out.phase {
			if sec > res.PhaseSeconds[name] {
				res.PhaseSeconds[name] = sec
			}
		}
		for v := range out.changed {
			res.Changed[v] = true
		}
	}
	// Case decisions are collective (identical on every processor).
	for c, n := range outs[0].cases {
		res.CaseCounts[c] = n
	}
	res.DeltaMergeSeconds = res.PhaseSeconds[PhaseDeltaMerge]
	for _, v := range sel {
		res.ViewRows[v] = core.ViewGlobalRows(m, v)
		var stored int64
		for r := 0; r < m.P(); r++ {
			if b := m.Proc(r).Disk().StoredBytes(core.ViewFile(v)); b > 0 {
				stored += int64(b)
			}
		}
		res.ViewBytesStored[v] = stored
	}
	return res, nil
}

// rankAgg builds the aggregate descriptor a processor applies to
// measures: the configured operator plus, for holistic operators, this
// rank's combiner into the shared sketch store.
func rankAgg(cfg Config, rank int) record.Agg {
	agg := record.Agg{Op: cfg.Agg}
	if cfg.Sketch != nil && cfg.Agg.Holistic() {
		agg.State = cfg.Sketch.Rank(rank)
	}
	return agg
}

// ingestOnProc is the SPMD body of one batch.
func ingestOnProc(p *cluster.Proc, batch *record.Table, cfg Config, sel []lattice.ViewID, out *procOut) {
	d := cfg.D
	clk := p.Clock()
	disk := p.Disk()
	p.SetOverlap(cfg.OverlapComm)
	phase := func(name string) func() {
		p.SetPhase(name)
		start := clk.Seconds()
		return func() {
			clk.SettleComm()
			out.phase[name] += clk.Seconds() - start
		}
	}

	// Stage this processor's contiguous share of the batch.
	done := phase(PhaseIngest)
	n := batch.Len()
	lo, hi := p.Rank()*n/p.P(), (p.Rank()+1)*n/p.P()
	disk.Put(BatchFile, batch.Sub(lo, hi))
	done()

	for i := 0; i < d; i++ {
		p.SetEpoch(i)
		partSel := lattice.PartitionSubset(i, d, sel)
		if len(partSel) == 0 {
			continue
		}
		done = phase(PhaseIngest)
		aligned, rootOrder := deltaBuildDim(p, cfg, i, partSel)
		done()

		done = phase(PhaseDeltaMerge)
		for _, v := range partSel {
			mergeDelta(p, cfg, v, aligned, rootOrder, out)
		}
		done()
	}

	// Commit: all processors synchronize, then swap staged slices in.
	// Injected crashes fire at superstep entry and phase/epoch
	// boundaries, so a crash anywhere in the batch aborts every
	// processor at or before this barrier — no live file is renamed
	// until the whole machine has finished merging. The swap itself is
	// metadata-only (uncharged), like the build's cleanup renames.
	p.SetPhase(PhaseDeltaMerge)
	cluster.Barrier(p)
	for _, v := range sel {
		if sf := stageFile(v); disk.Has(sf) {
			disk.Remove(core.ViewFile(v))
			disk.Rename(sf, core.ViewFile(v))
			// Staged slices are row-form; re-seal the replaced view so the
			// live cube stays columnar (local charge only, no collective).
			disk.Seal(core.ViewFile(v))
		}
	}
	disk.Remove(BatchFile)
}

// deltaBuildDim builds dimension i's sorted delta views from the local
// batch share: project + sort + aggregate the delta root, align it
// with the live root's slice boundaries, then run Pipesort over the
// retained (or derived) schedule tree. Returns whether alignment
// succeeded — i.e. the live root is materialized and non-empty — and
// the root order; aligned deltas let prefix views take the Case 1
// boundary merge.
func deltaBuildDim(p *cluster.Proc, cfg Config, i int, partSel []lattice.ViewID) (bool, lattice.Order) {
	d := cfg.D
	disk := p.Disk()
	clk := p.Clock()
	root := lattice.Root(i, d)
	rootOrder := lattice.Canonical(root)
	rootDelta := deltaFile(root)
	agg := rankAgg(cfg, p.Rank())

	// Local delta root: sort + scan of the local batch share (the
	// ingest analogue of build Step 1a).
	b := disk.MustGet(BatchFile)
	clk.AddCompute(costmodel.ScanOps(b.Len()))
	disk.Put(rootDelta, b.Project([]int(rootOrder)))
	if len(cfg.Cards) == d {
		pc := make([]int, len(rootOrder))
		for j, col := range rootOrder {
			pc[j] = cfg.Cards[col]
		}
		extsort.SortPlan(disk, rootDelta, record.PlanKeyFromCards(pc))
	} else {
		extsort.Sort(disk, rootDelta)
	}
	localAggregate(p, rootDelta, agg)

	// Boundary-aligned Adaptive–Sample–Sort: the live root's gathered
	// last keys stand in for sampled pivots, so every delta row lands
	// on the processor whose live slice covers its key range.
	var last []uint32
	if disk.Has(core.ViewFile(root)) {
		last = mergepart.LastKey(p, core.ViewFile(root))
	}
	lasts := cluster.AllGather(p, last, record.DimBytes*len(rootOrder))
	ranges := mergepart.KeyRanges(lasts)
	aligned := false
	for _, r := range ranges {
		if r.Owner {
			aligned = true
			break
		}
	}
	if aligned && p.P() > 1 {
		mergepart.RouteMergeAgg(p, rootDelta, ranges, agg)
	}

	// Pipesort over the build's schedule tree (reused, not re-planned);
	// snapshots and local-tree builds derive an equivalent tree from
	// the agreed materialization orders.
	tree := cfg.Trees[i]
	if tree == nil {
		tree = deltaTree(d, i, partSel, cfg.Orders)
	}
	sampleCap := cfg.SampleCap
	if sampleCap == 0 {
		sampleCap = 100 * p.P()
	}
	pipesort.ExecuteOpts(disk, tree, deltaFile, pipesort.Options{SampleCap: sampleCap, Op: cfg.Agg, State: agg.State})

	// Drop delta intermediates the plan materialized but nobody merges.
	selSet := map[lattice.ViewID]bool{}
	for _, v := range partSel {
		selSet[v] = true
	}
	tree.Walk(func(n *lattice.Node) {
		if !selSet[n.View] {
			disk.Remove(deltaFile(n.View))
		}
	})
	return aligned, rootOrder
}

// mergeDelta merges view v's delta slice into its live slice, writing
// the result to the view's staging file. Views with no delta rows
// anywhere are skipped — their live slices (and any query-side
// indexes) stay untouched.
func mergeDelta(p *cluster.Proc, cfg Config, v lattice.ViewID, aligned bool, rootOrder lattice.Order, out *procOut) {
	disk := p.Disk()
	clk := p.Clock()
	agg := rankAgg(cfg, p.Rank())
	order := cfg.Orders[v]
	df := deltaFile(v)
	lf := core.ViewFile(v)
	sf := stageFile(v)

	dn := disk.Len(df)
	if dn < 0 {
		dn = 0
	}
	total := cluster.AllReduce(p, dn, 8, func(a, b int) int { return a + b })
	if total == 0 {
		disk.Remove(df)
		return
	}
	out.changed[v] = true

	live, ok := disk.Get(lf) // charged: the live slice is merge input
	if !ok {
		live = record.New(len(order), 0)
	}

	if aligned && order.IsPrefixOf(rootOrder) {
		// Case 1: alignment makes the concatenation of the locally
		// merged slices globally sorted; only equal keys can face each
		// other across neighbor boundaries, and the boundary-row
		// exchange agglomerates them.
		delta := disk.MustTake(df)
		clk.AddCompute(costmodel.MergeOps(delta.Len()+live.Len(), 2))
		disk.Put(sf, record.MergeSortedAggregateAgg([]*record.Table{live, delta}, agg))
		mergepart.BoundaryAgglomerateAgg(p, sf, agg)
		out.cases[mergepart.CasePrefix]++
		return
	}

	// Case 2/3: route delta overlap runs to the owner of their live
	// key range, then two-way merge with the local live slice.
	var last []uint32
	if live.Len() > 0 {
		last = live.RowCopy(live.Len() - 1)
	}
	lasts := cluster.AllGather(p, last, record.DimBytes*len(order))
	ranges := mergepart.KeyRanges(lasts)
	owners := 0
	for _, r := range ranges {
		if r.Owner {
			owners++
		}
	}

	if owners == 0 {
		// Live view globally empty: the delta is the view. Distribute
		// it with the full sample sort (Case 3 machinery).
		disk.Put(sf, disk.MustTake(df))
		if p.P() > 1 {
			samplesort.SortPresortedAgg(p, sf, cfg.MergeGamma, agg)
			mergepart.BoundaryAgglomerateAgg(p, sf, agg)
		}
		out.cases[mergepart.CaseGlobalSort]++
		return
	}

	mergepart.RouteMergeAgg(p, df, ranges, agg)
	delta := disk.MustTake(df)
	clk.AddCompute(costmodel.MergeOps(delta.Len()+live.Len(), 2))
	merged := record.MergeSortedAggregateAgg([]*record.Table{live, delta}, agg)
	disk.Put(sf, merged)

	// Case 2 keeps the live partitioning, so key ranges stay disjoint
	// across processors and no boundary exchange is needed. If the
	// merged view drifted past the balance threshold, redistribute
	// (Case 3).
	sizes := cluster.AllGather(p, merged.Len(), 8)
	if p.P() > 1 && balance.Imbalance(sizes) > cfg.MergeGamma {
		samplesort.SortPresortedAgg(p, sf, cfg.MergeGamma, agg)
		mergepart.BoundaryAgglomerateAgg(p, sf, agg)
		out.cases[mergepart.CaseGlobalSort]++
		return
	}
	out.cases[mergepart.CaseOverlap]++
}

// localAggregate rewrites a sorted file with adjacent duplicate keys
// collapsed (the same sequential scan as build Step 1a).
func localAggregate(p *cluster.Proc, file string, agg record.Agg) {
	disk := p.Disk()
	t := disk.MustTake(file)
	p.Clock().AddCompute(costmodel.ScanOps(t.Len()))
	disk.Put(file, record.AggregateSortedAgg(t, t.D, agg))
}

// deltaTree derives a schedule tree for dimension i from the agreed
// materialization orders when no build tree was retained (local-tree
// builds, reloaded snapshots). Views whose order is a prefix of the
// root order form the root's scan chain (longest prefix first); every
// other view hangs off the root as a sort edge in its live order. The
// result is deterministic and materializes each delta view in exactly
// its live order, which is all the merge needs.
func deltaTree(d, i int, partSel []lattice.ViewID, orders map[lattice.ViewID]lattice.Order) *lattice.Tree {
	root := lattice.Root(i, d)
	rootOrder := lattice.Canonical(root)
	tr := lattice.NewTree(d, root, rootOrder)
	var chain, sorts []lattice.ViewID
	for _, v := range partSel {
		if v == root {
			continue
		}
		if orders[v].IsPrefixOf(rootOrder) {
			chain = append(chain, v)
		} else {
			sorts = append(sorts, v)
		}
	}
	// Distinct prefix views have distinct lengths, so sorting by
	// descending length nests them into a single scan chain.
	for a := 1; a < len(chain); a++ {
		for b := a; b > 0 && len(orders[chain[b]]) > len(orders[chain[b-1]]); b-- {
			chain[b], chain[b-1] = chain[b-1], chain[b]
		}
	}
	parent := root
	for _, v := range chain {
		tr.AddChild(parent, v, orders[v], lattice.EdgeScan)
		parent = v
	}
	for _, v := range sorts {
		tr.AddChild(root, v, orders[v], lattice.EdgeSort)
	}
	return tr
}
