package ingest

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/record"
	"repro/internal/samplesort"
	"repro/internal/sketch"
)

// PhaseAdvise covers online view materialization and retirement (the
// advisor's build/drop work), so its simulated cost is separable from
// builds, ingest batches, and queries in the phase accounting.
const PhaseAdvise = "advise"

// MaterializeOptions parameterizes one online view build.
type MaterializeOptions struct {
	// Src is the materialized ancestor to aggregate from (a strict
	// superset of the target view, normally the smallest one) and
	// SrcOrder its live attribute order.
	Src      lattice.ViewID
	SrcOrder lattice.Order
	// View is the target and Order the attribute order to materialize
	// it in (Order.View() must equal View).
	View  lattice.ViewID
	Order lattice.Order
	// MergeGamma is the sample-sort rebalance threshold (default 3%).
	MergeGamma float64
	// Agg is the aggregate operator (default record.OpSum).
	Agg record.AggOp
	// Sketch is the shared sketch store backing holistic operators
	// (required when Agg is holistic).
	Sketch *sketch.Store
}

// MaterializeResult reports what one online materialization cost.
type MaterializeResult struct {
	// Rows is the new view's global row count.
	Rows int64
	// SrcRows is the number of ancestor rows scanned (globally).
	SrcRows int64
	// SimSeconds is the simulated makespan added, all under the
	// "advise" phase; BytesMoved is the redistribution volume.
	SimSeconds float64
	BytesMoved int64
}

// MaterializeView builds one view online from a materialized ancestor,
// without touching the raw fact table or any other view: every
// processor scans its local slice of the ancestor, projects it onto
// the target's attribute order, sorts and partially aggregates, then a
// presorted sample sort redistributes so the new view is globally
// sorted and range-partitioned like every build-time view (p = 1
// skips the exchange). The slices land under a stage name and are
// renamed to the live view file only after a commit barrier, so an
// error leaves the cube untouched. Call it under the engine's
// Maintain drain barrier; it runs supersteps on the machine.
func MaterializeView(m *cluster.Machine, opts MaterializeOptions) (MaterializeResult, error) {
	if opts.MergeGamma == 0 {
		opts.MergeGamma = 0.03
	}
	if opts.MergeGamma <= 0 || opts.MergeGamma >= 1 {
		return MaterializeResult{}, fmt.Errorf("ingest: merge gamma %v out of range (0,1)", opts.MergeGamma)
	}
	if opts.Order.View() != opts.View {
		return MaterializeResult{}, fmt.Errorf("ingest: order %v does not cover view %v", opts.Order, opts.View)
	}
	if opts.SrcOrder.View() != opts.Src {
		return MaterializeResult{}, fmt.Errorf("ingest: source order %v does not cover view %v", opts.SrcOrder, opts.Src)
	}
	if !opts.View.SubsetOf(opts.Src) || opts.View == opts.Src {
		return MaterializeResult{}, fmt.Errorf("ingest: view %v is not a strict subset of source %v", opts.View, opts.Src)
	}
	if opts.Agg.Holistic() && opts.Sketch == nil {
		return MaterializeResult{}, fmt.Errorf("ingest: holistic aggregate %v requires a sketch store", opts.Agg)
	}

	// Column of each source dimension in the ancestor's layout.
	col := make(map[int]int, len(opts.SrcOrder))
	for c, dim := range opts.SrcOrder {
		col[dim] = c
	}
	proj := make([]int, len(opts.Order))
	for j, dim := range opts.Order {
		c, ok := col[dim]
		if !ok {
			return MaterializeResult{}, fmt.Errorf("ingest: source %v lacks dimension %d", opts.Src, dim)
		}
		proj[j] = c
	}

	sf := stageFile(opts.View)
	srcFile := core.ViewFile(opts.Src)
	np := m.P()
	srcRows := make([]int64, np)
	t0 := m.SimSeconds()
	bytes0 := m.Stats().BytesMoved
	err := m.Run(func(p *cluster.Proc) {
		p.SetPhase(PhaseAdvise)
		disk := p.Disk()
		clk := p.Clock()
		agg := record.Agg{Op: opts.Agg}
		if opts.Sketch != nil && opts.Agg.Holistic() {
			agg.State = opts.Sketch.Rank(p.Rank())
		}
		var local *record.Table
		if disk.Len(srcFile) > 0 {
			local = disk.MustGet(srcFile) // charged read
		} else {
			local = record.New(len(opts.SrcOrder), 0)
		}
		srcRows[p.Rank()] = int64(local.Len())
		clk.AddCompute(costmodel.ScanOps(local.Len()))
		disk.Put(sf, local.Project(proj))
		// Local sort + adjacent aggregation; the ancestor slice is
		// sorted in SrcOrder, which need not sort the projection.
		extsort.Sort(disk, sf)
		localAggregate(p, sf, agg)
		if np > 1 {
			// Redistribute to the global order; equal keys arriving
			// from different processors collapse during the merge and
			// at the boundaries.
			samplesort.SortPresortedAgg(p, sf, opts.MergeGamma, agg)
			mergepart.BoundaryAgglomerateAgg(p, sf, agg)
		}
		cluster.Barrier(p) // commit: every slice staged successfully
		disk.Remove(core.ViewFile(opts.View))
		disk.Rename(sf, core.ViewFile(opts.View))
	})
	if err != nil {
		for r := 0; r < np; r++ {
			m.Proc(r).Disk().Remove(sf)
		}
		return MaterializeResult{}, err
	}
	res := MaterializeResult{
		Rows:       core.ViewGlobalRows(m, opts.View),
		SimSeconds: m.SimSeconds() - t0,
		BytesMoved: m.Stats().BytesMoved - bytes0,
	}
	for _, n := range srcRows {
		res.SrcRows += n
	}
	return res, nil
}

// RetireView deletes a view's slices on every processor. It is
// metadata-only (simulated deletes are free, like every Remove in the
// build) and must run under the engine's Maintain drain barrier after
// the view is removed from planning, so no in-flight query holds it.
func RetireView(m *cluster.Machine, v lattice.ViewID) {
	file := core.ViewFile(v)
	for r := 0; r < m.P(); r++ {
		m.Proc(r).Disk().Remove(file)
	}
}
