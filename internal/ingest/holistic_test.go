package ingest

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/sketch"
)

// holisticRows builds a deterministic fact table with value measures
// (below 128, where the quantile sketch's codes are exact).
func holisticRows(n, d int, cards []int, salt uint64) *record.Table {
	t := record.New(d, n)
	row := make([]uint32, d)
	x := salt | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = uint32(next() % uint64(cards[j]))
		}
		t.Append(row, int64(next()%100))
	}
	return t
}

// TestIngestHolisticMatchesOracle builds a distinct-count cube, ingests
// two batches, and checks every group's estimate against a brute-force
// group-by over base+batches. Group cardinalities stay below the exact
// threshold, so estimates must be exact.
func TestIngestHolisticMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		op   record.AggOp
		kind sketch.Kind
	}{
		{record.OpDistinct, sketch.KindDistinct},
		{record.OpQuantile, sketch.KindQuantile},
	} {
		d, p := 3, 4
		cards := []int{6, 4, 3}
		base := holisticRows(800, d, cards, 7)
		st := sketch.NewStore(sketch.Config{Kind: tc.kind})
		m := cluster.New(p, costmodel.Default())
		n := base.Len()
		for r := 0; r < p; r++ {
			m.Proc(r).Disk().Put("raw", base.Sub(r*n/p, (r+1)*n/p))
		}
		ccfg := core.Config{D: d, Agg: tc.op, Sketch: st}
		met, err := core.BuildCube(m, "raw", ccfg)
		if err != nil {
			t.Fatal(err)
		}
		icfg := ingestConfig(ccfg, met)
		icfg.Sketch = st

		all := record.New(d, 0)
		all.AppendTable(base)
		for _, bn := range []int{300, 150} {
			batch := holisticRows(bn, d, cards, uint64(bn)*13)
			if _, err := IngestBatch(m, batch, icfg); err != nil {
				t.Fatal(err)
			}
			all.AppendTable(batch)
		}

		for _, v := range lattice.AllViews(d) {
			oracle := map[string][]int64{}
			dims := v.Dims()
			for i := 0; i < all.Len(); i++ {
				key := ""
				for _, dim := range dims {
					key += fmt.Sprintf("%d,", all.Dim(i, dim))
				}
				oracle[key] = append(oracle[key], all.Meas(i))
			}
			order := met.ViewOrders[v]
			seen := 0
			for r := 0; r < p; r++ {
				tb, ok := m.Proc(r).Disk().Peek(core.ViewFile(v))
				if !ok {
					continue
				}
				for i := 0; i < tb.Len(); i++ {
					key := canonicalKey(tb, i, order)
					vals, hit := oracle[key]
					if !hit {
						t.Fatalf("%v view %v key %q not in oracle", tc.op, v, key)
					}
					seen++
					switch tc.op {
					case record.OpDistinct:
						set := map[int64]bool{}
						for _, x := range vals {
							set[x] = true
						}
						if got := st.Estimate(tb.Meas(i), 0); got != float64(len(set)) {
							t.Fatalf("%v view %v key %q got %v, want %d", tc.op, v, key, got, len(set))
						}
					case record.OpQuantile:
						s := append([]int64(nil), vals...)
						sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
						want := float64(s[int(0.5*float64(len(s)-1))])
						if got := st.Estimate(tb.Meas(i), 0.5); got != want {
							t.Fatalf("%v view %v key %q median got %v, want %v", tc.op, v, key, got, want)
						}
					}
				}
			}
			if seen != len(oracle) {
				t.Fatalf("%v view %v has %d groups, oracle %d", tc.op, v, seen, len(oracle))
			}
		}
	}
}

// canonicalKey renders row i's group key in ascending dimension order
// regardless of the view's materialized column order.
func canonicalKey(tb *record.Table, i int, ord lattice.Order) string {
	type dv struct{ dim, val int }
	pairs := make([]dv, len(ord))
	for c, dim := range ord {
		pairs[c] = dv{dim, int(tb.Dim(i, c))}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].dim < pairs[b].dim })
	key := ""
	for _, p := range pairs {
		key += fmt.Sprintf("%d,", p.val)
	}
	return key
}
