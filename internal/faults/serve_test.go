package faults

import "testing"

func TestServePlanMatching(t *testing.T) {
	p := &ServePlan{
		Crashes: []ServeCrash{{Replica: 1, Query: 3}, {Replica: 1, Query: 3}},
		Stragglers: []ServeStraggler{
			{Replica: 0, FromQuery: 2, ToQuery: 4, DelaySeconds: 0.5},
			{Replica: 0, FromQuery: 3, DelaySeconds: 0.25}, // ToQuery 0 = FromQuery alone
		},
		Stalls: []ShipStall{{Replica: 2, Batch: 5, DelaySeconds: 1}},
	}
	fired := make([]bool, len(p.Crashes))

	if got := p.CrashIndex(1, 2, fired); got != -1 {
		t.Fatalf("CrashIndex(1,2) = %d, want -1", got)
	}
	if got := p.CrashIndex(0, 3, fired); got != -1 {
		t.Fatalf("crash leaked onto replica 0: index %d", got)
	}
	// Two identical crashes fire in plan order, each once.
	if got := p.CrashIndex(1, 3, fired); got != 0 {
		t.Fatalf("CrashIndex(1,3) = %d, want 0", got)
	}
	fired[0] = true
	if got := p.CrashIndex(1, 3, fired); got != 1 {
		t.Fatalf("CrashIndex(1,3) after firing 0 = %d, want 1", got)
	}
	fired[1] = true
	if got := p.CrashIndex(1, 3, fired); got != -1 {
		t.Fatalf("fired crash re-matched: index %d", got)
	}

	// Straggler delays combine over overlapping ranges.
	if d := p.StragglerDelay(0, 1); d != 0 {
		t.Fatalf("StragglerDelay(0,1) = %v, want 0", d)
	}
	if d := p.StragglerDelay(0, 2); d != 0.5 {
		t.Fatalf("StragglerDelay(0,2) = %v, want 0.5", d)
	}
	if d := p.StragglerDelay(0, 3); d != 0.75 {
		t.Fatalf("StragglerDelay(0,3) = %v, want 0.75", d)
	}
	if d := p.StragglerDelay(1, 3); d != 0 {
		t.Fatalf("straggler leaked onto replica 1: %v", d)
	}

	if d := p.StallDelay(2, 5); d != 1 {
		t.Fatalf("StallDelay(2,5) = %v, want 1", d)
	}
	if d := p.StallDelay(2, 4); d != 0 {
		t.Fatalf("StallDelay(2,4) = %v, want 0", d)
	}
}

func TestServePlanValidate(t *testing.T) {
	ok := &ServePlan{
		Crashes:    []ServeCrash{{Replica: 0, Query: 1}},
		Stragglers: []ServeStraggler{{Replica: 1, FromQuery: 1, ToQuery: 8, DelaySeconds: 2}},
		Stalls:     []ShipStall{{Replica: 1, Batch: 1, DelaySeconds: 0.1}},
	}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []*ServePlan{
		{Crashes: []ServeCrash{{Replica: 2, Query: 1}}},                                      // replica out of range
		{Crashes: []ServeCrash{{Replica: 0, Query: 0}}},                                      // ordinal < 1
		{Stragglers: []ServeStraggler{{Replica: 0, FromQuery: 0, DelaySeconds: 1}}},          // from-query < 1
		{Stragglers: []ServeStraggler{{Replica: 0, FromQuery: 5, ToQuery: 2}}},               // inverted range
		{Stragglers: []ServeStraggler{{Replica: 0, FromQuery: 1, DelaySeconds: -1}}},         // negative delay
		{Stragglers: []ServeStraggler{{Replica: 0, FromQuery: 1, DelaySeconds: 60}}},         // delay over cap
		{Stalls: []ShipStall{{Replica: 0, Batch: 0, DelaySeconds: 1}}},                       // batch < 1
		{Stalls: []ShipStall{{Replica: 0, Batch: 1, DelaySeconds: MaxServeDelaySeconds + 1}}}, // delay over cap
	}
	for i, p := range bad {
		if err := p.Validate(2); err == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
}

func TestCrashLoop(t *testing.T) {
	got := CrashLoop(3, 2, 5, 3)
	want := []ServeCrash{{Replica: 3, Query: 2}, {Replica: 3, Query: 7}, {Replica: 3, Query: 12}}
	if len(got) != len(want) {
		t.Fatalf("CrashLoop produced %d crashes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CrashLoop[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
