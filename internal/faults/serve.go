package faults

import "fmt"

// MaxServeDelaySeconds bounds injected serving-time delays (stragglers
// and delta-ship stalls). Serving-time faults run on the wall clock —
// they exist to provoke the hedging and routing machinery, not to model
// simulated cost — so an unbounded delay would hang a test or a CI
// smoke run forever.
const MaxServeDelaySeconds = 10

// ServePlan is a deterministic fault-injection plan for the serving
// tier's read path, the query-time counterpart of the build-time Plan.
// Replicas are addressed by index; execution points are addressed by
// per-replica ordinals — a replica's Query-th routed read, or the
// delta batch with a given commit sequence — so the same plan against
// the same workload fires at the same points on every run. Faults
// change *when and where* queries execute, never *what* they compute:
// a run under any ServePlan, with failover enabled, returns the same
// answers as a fault-free run.
type ServePlan struct {
	// Crashes kill replicas at chosen points of the serving timeline.
	Crashes []ServeCrash
	// Stragglers delay replicas' query executions (wall clock), the
	// trigger for hedged requests.
	Stragglers []ServeStraggler
	// Stalls delay replicas' delta-batch applications (wall clock),
	// spiking their lag so bounded-staleness routing steers around them.
	Stalls []ShipStall
}

// ServeCrash kills one replica just as its Query-th routed read is
// being dispatched: the read fails over to another replica and the
// crashed replica re-bootstraps from the latest snapshot. Each crash
// fires at most once per group.
type ServeCrash struct {
	// Replica is the replica index to kill.
	Replica int
	// Query is the 1-based ordinal of the replica's routed reads at
	// which it dies (its Query-th read, counted across re-bootstraps).
	Query uint64
}

// Matches reports whether the crash triggers for a replica dispatching
// its q-th routed read.
func (c ServeCrash) Matches(replica int, q uint64) bool {
	return c.Replica == replica && c.Query == q
}

// ServeStraggler delays one replica's query executions by DelaySeconds
// of wall clock for every routed read whose per-replica ordinal falls
// in [FromQuery, ToQuery] (1-based, inclusive; ToQuery 0 means
// FromQuery alone) — a degraded node that answers slowly without
// failing, exactly what hedged requests exist to mask.
type ServeStraggler struct {
	Replica            int
	FromQuery, ToQuery uint64
	DelaySeconds       float64
}

// ShipStall delays one replica's application of the delta batch with
// commit sequence Batch by DelaySeconds of wall clock — a slow
// replication link. The replica's lag spikes past the staleness bound
// and routing avoids it until the batch lands.
type ShipStall struct {
	Replica      int
	Batch        uint64
	DelaySeconds float64
}

// CrashIndex returns the index of the first unfired crash matching a
// replica's q-th routed read, or -1. The caller owns the fired set
// (one bool per plan crash), so one immutable plan can drive any
// number of groups.
func (p *ServePlan) CrashIndex(replica int, q uint64, fired []bool) int {
	for k, c := range p.Crashes {
		if k < len(fired) && fired[k] {
			continue
		}
		if c.Matches(replica, q) {
			return k
		}
	}
	return -1
}

// StragglerDelay returns the combined injected delay, in wall-clock
// seconds, for a replica's q-th routed read (0 when none applies).
func (p *ServePlan) StragglerDelay(replica int, q uint64) float64 {
	d := 0.0
	for _, s := range p.Stragglers {
		if s.Replica != replica {
			continue
		}
		to := s.ToQuery
		if to == 0 {
			to = s.FromQuery
		}
		if q >= s.FromQuery && q <= to {
			d += s.DelaySeconds
		}
	}
	return d
}

// StallDelay returns the combined injected delay, in wall-clock
// seconds, before a replica applies the delta batch with commit
// sequence seq (0 when none applies).
func (p *ServePlan) StallDelay(replica int, seq uint64) float64 {
	d := 0.0
	for _, s := range p.Stalls {
		if s.Replica == replica && s.Batch == seq {
			d += s.DelaySeconds
		}
	}
	return d
}

// Validate checks the plan against a replica count.
func (p *ServePlan) Validate(replicas int) error {
	rank := func(kind string, r int) error {
		if r < 0 || r >= replicas {
			return fmt.Errorf("faults: %s replica %d out of range 0..%d", kind, r, replicas-1)
		}
		return nil
	}
	delay := func(kind string, d float64) error {
		if d < 0 || d > MaxServeDelaySeconds {
			return fmt.Errorf("faults: %s delay %vs (want 0..%ds)", kind, d, MaxServeDelaySeconds)
		}
		return nil
	}
	for _, c := range p.Crashes {
		if err := rank("serve-crash", c.Replica); err != nil {
			return err
		}
		if c.Query < 1 {
			return fmt.Errorf("faults: serve-crash query ordinal %d (want >= 1)", c.Query)
		}
	}
	for _, s := range p.Stragglers {
		if err := rank("serve-straggler", s.Replica); err != nil {
			return err
		}
		if s.FromQuery < 1 {
			return fmt.Errorf("faults: serve-straggler from-query %d (want >= 1)", s.FromQuery)
		}
		if s.ToQuery != 0 && s.ToQuery < s.FromQuery {
			return fmt.Errorf("faults: serve-straggler query range %d..%d inverted", s.FromQuery, s.ToQuery)
		}
		if err := delay("serve-straggler", s.DelaySeconds); err != nil {
			return err
		}
	}
	for _, s := range p.Stalls {
		if err := rank("ship-stall", s.Replica); err != nil {
			return err
		}
		if s.Batch < 1 {
			return fmt.Errorf("faults: ship-stall batch %d (want >= 1)", s.Batch)
		}
		if err := delay("ship-stall", s.DelaySeconds); err != nil {
			return err
		}
	}
	return nil
}

// CrashLoop builds the crash-looping-replica scenario of the chaos
// harness: replica dies at its first-th routed read and again every
// `every` reads thereafter, n times in total.
func CrashLoop(replica int, first, every uint64, n int) []ServeCrash {
	crashes := make([]ServeCrash, 0, n)
	q := first
	for k := 0; k < n; k++ {
		crashes = append(crashes, ServeCrash{Replica: replica, Query: q})
		q += every
	}
	return crashes
}
