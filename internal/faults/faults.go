// Package faults provides deterministic fault injection for the
// simulated shared-nothing machine. The paper assumes a failure-free
// cluster; this package supplies the failure model the reproduction
// adds on top of Procedure 1: processor crashes at chosen execution
// points, dropped or corrupted h-relation payloads (detected by a
// checksum over the record.Table wire image and repaired by a charged
// retransmission with exponential backoff), and stragglers that slow a
// processor's local work by a constant factor.
//
// A Plan is immutable and seeded: installing the same plan on two
// identical machines yields byte-identical builds and identical
// metrics, which keeps fault experiments reproducible. All runtime
// state (which crashes have fired, per-processor exchange ordinals)
// lives in the cluster package, so one Plan value can drive any number
// of builds.
//
// Processor identity is by original rank: after a crash shrinks the
// machine to p-1 processors, plan entries keep referring to the ranks
// of the machine as it was built.
package faults

import "fmt"

// MaxRetries bounds the injected failed delivery attempts of one
// payload. The repaired-retry model retransmits until delivery
// succeeds; the bound keeps the charged backoff finite and the plan
// honest about what a real transport's retry budget would be.
const MaxRetries = 8

// DefaultRetryBackoff is the base retransmission backoff in seconds
// (doubled per failed attempt), modelled on MPI-era TCP retry timers.
const DefaultRetryBackoff = 0.05

// Plan is a deterministic fault-injection plan for one machine size.
type Plan struct {
	// Seed drives the deterministic corruption patterns. Two builds
	// with the same plan (and workload) are byte-identical.
	Seed int64
	// Crashes kills processors at chosen execution points.
	Crashes []Crash
	// Drops lose h-relation payloads in transit (detected by the
	// receiver's delivery timeout, repaired by charged retries).
	Drops []PayloadFault
	// Corruptions flip bits in h-relation payloads in transit
	// (detected by the wire-image checksum, repaired by charged
	// retries).
	Corruptions []PayloadFault
	// Stragglers slow processors' local CPU and disk work.
	Stragglers []Straggler
	// RetryBackoff overrides the base retransmission backoff in
	// seconds (default DefaultRetryBackoff); attempt k waits
	// RetryBackoff * 2^(k-1).
	RetryBackoff float64
}

// Crash kills one processor at a chosen execution point. The trigger
// is, in priority order:
//
//   - Superstep > 0: the processor's Superstep-th collective superstep
//     (a global execution point independent of the algorithm's phases);
//   - otherwise (Dimension, Phase): entering the named phase of the
//     given dimension iteration, with Phase == "" meaning the moment
//     the dimension iteration begins — the paper's Di boundary.
//
// Each crash fires at most once per machine.
type Crash struct {
	// Rank is the original rank of the processor to kill.
	Rank int
	// Dimension is the dimension iteration index (0-based, the build's
	// decreasing-cardinality order); -1 matches any dimension.
	Dimension int
	// Phase is the phase label ("partition", "plan", "build", "merge",
	// "checkpoint"); "" fires at the dimension boundary.
	Phase string
	// Superstep, when > 0, fires at the processor's Superstep-th
	// collective superstep instead, ignoring Dimension and Phase.
	Superstep int64
}

// Matches reports whether the crash triggers for a processor at the
// given execution point.
func (c Crash) Matches(rank, dim int, phase string, step int64) bool {
	if c.Rank != rank {
		return false
	}
	if c.Superstep > 0 {
		return step == c.Superstep
	}
	if c.Dimension >= 0 && c.Dimension != dim {
		return false
	}
	return c.Phase == phase
}

// PayloadFault damages the payload one processor addresses to another
// in one bulk table exchange (AllToAllTables h-relation).
type PayloadFault struct {
	// Src and Dst are original ranks.
	Src, Dst int
	// Exchange is the 0-based ordinal of the bulk table exchange as
	// counted at Src (each AllToAllTables call is one exchange).
	Exchange int64
	// Times is the number of consecutive delivery attempts that fail
	// before the retry succeeds (default 1, capped at MaxRetries).
	Times int
}

func (f PayloadFault) times() int {
	if f.Times < 1 {
		return 1
	}
	if f.Times > MaxRetries {
		return MaxRetries
	}
	return f.Times
}

// Straggler slows one processor's local CPU and disk work by a
// constant factor >= 1 (the shared-nothing analogue of a degraded
// node: overheating, a failing disk, a noisy neighbor VM).
type Straggler struct {
	Rank   int
	Factor float64
}

// CrashError is the structured failure a crashed build reports: which
// processor died, and where in Procedure 1 it was.
type CrashError struct {
	// Rank is the crashed processor's original rank.
	Rank int
	// Dimension is the dimension iteration at the crash point (-1
	// before the first iteration).
	Dimension int
	// Phase is the phase label at the crash point ("" at a dimension
	// boundary).
	Phase string
	// Superstep is the processor's superstep count at the crash point.
	Superstep int64
}

func (e *CrashError) Error() string {
	where := fmt.Sprintf("dimension %d", e.Dimension)
	if e.Phase != "" {
		where += ", phase " + e.Phase
	}
	return fmt.Sprintf("faults: processor %d crashed (%s, superstep %d)", e.Rank, where, e.Superstep)
}

// Backoff returns the base retransmission backoff in seconds.
func (p *Plan) Backoff() float64 {
	if p.RetryBackoff > 0 {
		return p.RetryBackoff
	}
	return DefaultRetryBackoff
}

// SlowdownFor returns the combined straggler factor for a processor
// (1 when none applies).
func (p *Plan) SlowdownFor(rank int) float64 {
	f := 1.0
	for _, s := range p.Stragglers {
		if s.Rank == rank && s.Factor > 1 {
			f *= s.Factor
		}
	}
	return f
}

// FailuresFor returns how many delivery attempts of the payload from
// src to dst in src's exchange-th bulk table exchange are dropped and
// corrupted, respectively.
func (p *Plan) FailuresFor(src, dst int, exchange int64) (drops, corruptions int) {
	for _, f := range p.Drops {
		if f.Src == src && f.Dst == dst && f.Exchange == exchange {
			drops += f.times()
		}
	}
	for _, f := range p.Corruptions {
		if f.Src == src && f.Dst == dst && f.Exchange == exchange {
			corruptions += f.times()
		}
	}
	if drops+corruptions > MaxRetries {
		over := drops + corruptions - MaxRetries
		if over > corruptions {
			over = corruptions
		}
		corruptions -= over
		if drops+corruptions > MaxRetries {
			drops = MaxRetries - corruptions
		}
	}
	return drops, corruptions
}

// Validate checks the plan against a machine size p.
func (p *Plan) Validate(procs int) error {
	rank := func(kind string, r int) error {
		if r < 0 || r >= procs {
			return fmt.Errorf("faults: %s rank %d out of range 0..%d", kind, r, procs-1)
		}
		return nil
	}
	for _, c := range p.Crashes {
		if err := rank("crash", c.Rank); err != nil {
			return err
		}
		if c.Dimension < -1 {
			return fmt.Errorf("faults: crash dimension %d (want >= -1)", c.Dimension)
		}
		if c.Superstep < 0 {
			return fmt.Errorf("faults: crash superstep %d (want >= 0)", c.Superstep)
		}
	}
	for _, f := range append(append([]PayloadFault(nil), p.Drops...), p.Corruptions...) {
		if err := rank("payload-fault src", f.Src); err != nil {
			return err
		}
		if err := rank("payload-fault dst", f.Dst); err != nil {
			return err
		}
		if f.Src == f.Dst {
			return fmt.Errorf("faults: payload fault %d->%d targets local delivery, which moves no data", f.Src, f.Dst)
		}
		if f.Exchange < 0 {
			return fmt.Errorf("faults: payload fault exchange %d (want >= 0)", f.Exchange)
		}
		if f.Times < 0 || f.Times > MaxRetries {
			return fmt.Errorf("faults: payload fault times %d (want 0..%d)", f.Times, MaxRetries)
		}
	}
	for _, s := range p.Stragglers {
		if err := rank("straggler", s.Rank); err != nil {
			return err
		}
		if s.Factor < 1 {
			return fmt.Errorf("faults: straggler factor %v (want >= 1)", s.Factor)
		}
	}
	if p.RetryBackoff < 0 {
		return fmt.Errorf("faults: negative retry backoff %v", p.RetryBackoff)
	}
	return nil
}

// CorruptionMask derives the deterministic bit pattern injected into a
// corrupted payload, from the plan seed and the payload's coordinates.
// It is never zero, so a corrupted value always differs.
func (p *Plan) CorruptionMask(src, dst int, exchange int64, attempt int) uint32 {
	x := uint64(p.Seed)
	x ^= uint64(src)<<1 ^ uint64(dst)<<17 ^ uint64(exchange)<<33 ^ uint64(attempt)<<49
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	m := uint32(x)
	if m == 0 {
		m = 1
	}
	return m
}
