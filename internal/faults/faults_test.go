package faults

import (
	"strings"
	"testing"
)

func TestCrashMatches(t *testing.T) {
	cases := []struct {
		name  string
		c     Crash
		rank  int
		dim   int
		phase string
		step  int64
		want  bool
	}{
		{"boundary", Crash{Rank: 2, Dimension: 3}, 2, 3, "", 17, true},
		{"boundary wrong dim", Crash{Rank: 2, Dimension: 3}, 2, 4, "", 17, false},
		{"boundary wrong rank", Crash{Rank: 2, Dimension: 3}, 1, 3, "", 17, false},
		{"phase", Crash{Rank: 0, Dimension: 1, Phase: "merge"}, 0, 1, "merge", 5, true},
		{"phase at boundary point", Crash{Rank: 0, Dimension: 1, Phase: "merge"}, 0, 1, "", 5, false},
		{"any dimension", Crash{Rank: 1, Dimension: -1, Phase: "build"}, 1, 6, "build", 9, true},
		{"superstep", Crash{Rank: 3, Superstep: 40}, 3, 2, "partition", 40, true},
		{"superstep ignores phase", Crash{Rank: 3, Dimension: 9, Phase: "x", Superstep: 40}, 3, 2, "partition", 40, true},
		{"superstep miss", Crash{Rank: 3, Superstep: 40}, 3, 2, "partition", 41, false},
	}
	for _, tc := range cases {
		if got := tc.c.Matches(tc.rank, tc.dim, tc.phase, tc.step); got != tc.want {
			t.Errorf("%s: Matches = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFailuresFor(t *testing.T) {
	p := &Plan{
		Drops:       []PayloadFault{{Src: 0, Dst: 1, Exchange: 2}, {Src: 0, Dst: 1, Exchange: 2, Times: 2}},
		Corruptions: []PayloadFault{{Src: 0, Dst: 1, Exchange: 2, Times: 3}, {Src: 1, Dst: 0, Exchange: 2}},
	}
	d, c := p.FailuresFor(0, 1, 2)
	if d != 3 || c != 3 {
		t.Fatalf("FailuresFor(0,1,2) = %d,%d, want 3,3", d, c)
	}
	d, c = p.FailuresFor(1, 0, 2)
	if d != 0 || c != 1 {
		t.Fatalf("FailuresFor(1,0,2) = %d,%d, want 0,1", d, c)
	}
	d, c = p.FailuresFor(0, 1, 3)
	if d != 0 || c != 0 {
		t.Fatalf("FailuresFor(0,1,3) = %d,%d, want 0,0", d, c)
	}
}

func TestFailuresForCapped(t *testing.T) {
	p := &Plan{
		Drops:       []PayloadFault{{Src: 0, Dst: 1, Times: 8}},
		Corruptions: []PayloadFault{{Src: 0, Dst: 1, Times: 8}},
	}
	d, c := p.FailuresFor(0, 1, 0)
	if d+c > MaxRetries {
		t.Fatalf("FailuresFor total %d exceeds MaxRetries %d", d+c, MaxRetries)
	}
	if d+c != MaxRetries {
		t.Fatalf("FailuresFor total %d, want the cap %d", d+c, MaxRetries)
	}
}

func TestSlowdownFor(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{{Rank: 1, Factor: 2}, {Rank: 1, Factor: 3}, {Rank: 2, Factor: 1.5}}}
	if got := p.SlowdownFor(1); got != 6 {
		t.Errorf("SlowdownFor(1) = %v, want 6", got)
	}
	if got := p.SlowdownFor(0); got != 1 {
		t.Errorf("SlowdownFor(0) = %v, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	good := &Plan{
		Crashes:     []Crash{{Rank: 3, Dimension: 2, Phase: "merge"}},
		Drops:       []PayloadFault{{Src: 0, Dst: 1, Exchange: 4}},
		Corruptions: []PayloadFault{{Src: 1, Dst: 0, Times: 2}},
		Stragglers:  []Straggler{{Rank: 2, Factor: 2}},
	}
	if err := good.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []struct {
		name string
		p    Plan
	}{
		{"crash rank", Plan{Crashes: []Crash{{Rank: 4}}}},
		{"crash dim", Plan{Crashes: []Crash{{Rank: 0, Dimension: -2}}}},
		{"drop src", Plan{Drops: []PayloadFault{{Src: -1, Dst: 0}}}},
		{"drop self", Plan{Drops: []PayloadFault{{Src: 1, Dst: 1}}}},
		{"corrupt times", Plan{Corruptions: []PayloadFault{{Src: 0, Dst: 1, Times: 9}}}},
		{"straggler factor", Plan{Stragglers: []Straggler{{Rank: 0, Factor: 0.5}}}},
		{"backoff", Plan{RetryBackoff: -1}},
	}
	for _, tc := range bad {
		if err := tc.p.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted invalid plan", tc.name)
		}
	}
}

func TestCrashErrorString(t *testing.T) {
	e := &CrashError{Rank: 2, Dimension: 3, Phase: "merge", Superstep: 41}
	s := e.Error()
	for _, want := range []string{"processor 2", "dimension 3", "merge", "superstep 41"} {
		if !strings.Contains(s, want) {
			t.Errorf("CrashError %q missing %q", s, want)
		}
	}
}

func TestCorruptionMaskDeterministicAndNonzero(t *testing.T) {
	p1 := &Plan{Seed: 7}
	p2 := &Plan{Seed: 7}
	p3 := &Plan{Seed: 8}
	a := p1.CorruptionMask(0, 1, 2, 1)
	if a == 0 {
		t.Fatal("mask is zero")
	}
	if b := p2.CorruptionMask(0, 1, 2, 1); b != a {
		t.Fatalf("same seed, different masks: %x vs %x", a, b)
	}
	if c := p3.CorruptionMask(0, 1, 2, 1); c == a {
		t.Fatalf("different seeds, same mask %x", a)
	}
	if d := p1.CorruptionMask(0, 1, 2, 2); d == a {
		t.Fatalf("different attempts, same mask %x", a)
	}
}

func TestBackoffDefault(t *testing.T) {
	if got := (&Plan{}).Backoff(); got != DefaultRetryBackoff {
		t.Errorf("Backoff = %v, want default %v", got, DefaultRetryBackoff)
	}
	if got := (&Plan{RetryBackoff: 0.2}).Backoff(); got != 0.2 {
		t.Errorf("Backoff = %v, want 0.2", got)
	}
}
