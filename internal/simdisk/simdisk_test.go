package simdisk

import (
	"testing"

	"repro/internal/colstore"
	"repro/internal/costmodel"
	"repro/internal/record"
)

func newDisk() *Disk { return New(costmodel.NewClock(costmodel.Default())) }

func table(n int) *record.Table {
	t := record.New(2, n)
	for i := 0; i < n; i++ {
		t.Append([]uint32{uint32(i), uint32(i * 2)}, int64(i))
	}
	return t
}

func TestPutTakeRoundTrip(t *testing.T) {
	d := newDisk()
	in := table(10)
	want := in.Clone()
	d.Put("f", in)
	if !d.Has("f") || d.Len("f") != 10 || d.Cols("f") != 2 {
		t.Fatal("metadata wrong after Put")
	}
	got, ok := d.Take("f")
	if !ok || !record.Equal(got, want) {
		t.Fatal("Take returned wrong table")
	}
	if d.Has("f") {
		t.Fatal("Take did not remove file")
	}
	if _, ok := d.Take("f"); ok {
		t.Fatal("Take of missing file succeeded")
	}
}

func TestGetDoesNotRemove(t *testing.T) {
	d := newDisk()
	d.Put("f", table(5))
	if _, ok := d.Get("f"); !ok {
		t.Fatal("Get failed")
	}
	if !d.Has("f") {
		t.Fatal("Get removed the file")
	}
}

func TestAppendCreatesAndExtends(t *testing.T) {
	d := newDisk()
	d.Append("f", table(3))
	d.Append("f", table(2))
	if d.Len("f") != 5 {
		t.Fatalf("Len = %d, want 5", d.Len("f"))
	}
}

func TestAppendClonesOnCreate(t *testing.T) {
	d := newDisk()
	src := table(3)
	d.Append("f", src)
	src.SetMeas(0, 999)
	got := d.MustGet("f")
	if got.Meas(0) == 999 {
		t.Fatal("Append aliased caller's table on create")
	}
}

func TestReadRange(t *testing.T) {
	d := newDisk()
	d.Put("f", table(10))
	sub := d.ReadRange("f", 3, 6)
	if sub.Len() != 3 || sub.Dim(0, 0) != 3 {
		t.Fatalf("ReadRange wrong: %v", sub)
	}
	// Charged only the range, not the file.
	st := d.Stats()
	if st.BytesRead != int64(3*record.RowBytes(2)) {
		t.Fatalf("BytesRead = %d, want %d", st.BytesRead, 3*record.RowBytes(2))
	}
}

func TestReadRangePanicsOutOfBounds(t *testing.T) {
	d := newDisk()
	d.Put("f", table(5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.ReadRange("f", 2, 9)
}

func TestRenameAndRemove(t *testing.T) {
	d := newDisk()
	d.Put("a", table(4))
	d.Rename("a", "b")
	if d.Has("a") || !d.Has("b") {
		t.Fatal("Rename failed")
	}
	if !d.Remove("b") || d.Remove("b") {
		t.Fatal("Remove semantics wrong")
	}
}

func TestStatsAndClockCharging(t *testing.T) {
	clk := costmodel.NewClock(costmodel.Default())
	d := New(clk)
	tb := table(100)
	bytes := tb.Bytes()
	d.Put("f", tb)
	st := d.Stats()
	if st.Writes != 1 || st.BytesWritten != int64(bytes) {
		t.Fatalf("write stats wrong: %+v", st)
	}
	if clk.DiskSeconds() <= 0 {
		t.Fatal("Put did not charge disk time")
	}
	before := clk.DiskSeconds()
	d.MustGet("f")
	if clk.DiskSeconds() <= before {
		t.Fatal("Get did not charge disk time")
	}
	st = d.Stats()
	if st.Reads != 1 || st.BytesRead != int64(bytes) {
		t.Fatalf("read stats wrong: %+v", st)
	}
	if st.BlockTransfers(64<<10) < 2 {
		t.Fatalf("BlockTransfers = %d, want >= 2", st.BlockTransfers(64<<10))
	}
}

func TestMetadataOpsAreFree(t *testing.T) {
	clk := costmodel.NewClock(costmodel.Default())
	d := New(clk)
	d.Put("f", table(10))
	before := clk.Seconds()
	d.Has("f")
	d.Len("f")
	d.Cols("f")
	d.Files()
	d.Rename("f", "g")
	d.Remove("g")
	if clk.Seconds() != before {
		t.Fatal("metadata operations charged I/O time")
	}
}

func TestFilesSortedAndTotalBytes(t *testing.T) {
	d := newDisk()
	d.Put("b", table(2))
	d.Put("a", table(3))
	fs := d.Files()
	if len(fs) != 2 || fs[0] != "a" || fs[1] != "b" {
		t.Fatalf("Files = %v", fs)
	}
	if d.TotalBytes() != int64(5*record.RowBytes(2)) {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

func TestMustTakePanicsOnMissing(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MustTake("nope")
}

func TestMutateChargesDeclaredBytes(t *testing.T) {
	clk := costmodel.NewClock(costmodel.Default())
	d := New(clk)
	d.Put("f", table(100))
	before := d.Stats()
	d.Mutate("f", 36, func(tb *record.Table) *record.Table {
		tb.AddMeas(0, 5)
		return tb
	})
	st := d.Stats()
	if st.BytesWritten-before.BytesWritten != 36 {
		t.Fatalf("Mutate charged %d bytes, want 36", st.BytesWritten-before.BytesWritten)
	}
	if d.MustGet("f").Meas(0) != 5 {
		t.Fatal("mutation lost")
	}
}

func TestMutateReplacement(t *testing.T) {
	d := newDisk()
	d.Put("f", table(10))
	d.SetMeta("f", "sample")
	d.Mutate("f", 1, func(tb *record.Table) *record.Table {
		return tb.Sub(5, 10)
	})
	if d.Len("f") != 5 {
		t.Fatalf("Len = %d after replacing mutation", d.Len("f"))
	}
	if d.Meta("f") != "sample" {
		t.Fatal("Mutate dropped metadata")
	}
}

func TestMutateMissingPanics(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Mutate("nope", 1, func(tb *record.Table) *record.Table { return tb })
}

func TestMetaLifecycle(t *testing.T) {
	d := newDisk()
	d.Put("f", table(3))
	if d.Meta("f") != nil {
		t.Fatal("fresh file has metadata")
	}
	d.SetMeta("f", 42)
	if d.Meta("f") != 42 {
		t.Fatal("SetMeta lost")
	}
	// Metadata follows renames...
	d.Rename("f", "g")
	if d.Meta("g") != 42 {
		t.Fatal("metadata lost on rename")
	}
	// ...but not replacement.
	d.Put("g", table(3))
	if d.Meta("g") != nil {
		t.Fatal("metadata survived Put")
	}
	if d.Meta("missing") != nil {
		t.Fatal("missing file has metadata")
	}
}

func TestSetMetaMissingPanics(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SetMeta("nope", 1)
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MustGet("nope")
}

func TestRenamePanicsOnMissing(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Rename("a", "b")
}

func TestLenColsOnMissing(t *testing.T) {
	d := newDisk()
	if d.Len("x") != -1 || d.Cols("x") != -1 {
		t.Fatal("missing file metadata should be -1")
	}
}

// sortedTable builds a sorted, aggregated table so sealing compresses.
func sortedTable(n int) *record.Table {
	t := record.New(3, n)
	for i := 0; i < n; i++ {
		t.Append([]uint32{uint32(i / 100), uint32(i / 10 % 10), uint32(i % 10)}, int64(i))
	}
	t.Sort()
	return record.AggregateSortedOp(t, t.D, record.OpSum)
}

func TestSealCompressesAndRoundTrips(t *testing.T) {
	d := newDisk()
	src := sortedTable(2000)
	want := src.Clone()
	d.Put("f", src)
	rowBytes := d.StoredBytes("f")
	if d.Sealed("f") {
		t.Fatal("fresh Put reported sealed")
	}
	if !d.Seal("f") {
		t.Fatal("Seal failed with colstore enabled")
	}
	if !d.Sealed("f") {
		t.Fatal("Sealed false after Seal")
	}
	if d.StoredBytes("f") >= rowBytes {
		t.Fatalf("sealed %d bytes >= row %d bytes", d.StoredBytes("f"), rowBytes)
	}
	if got := d.MustGet("f"); !record.Equal(got, want) {
		t.Fatal("Get after Seal mismatch")
	}
	if d.Len("f") != want.Len() || d.Cols("f") != want.D {
		t.Fatal("metadata wrong on sealed file")
	}
	got := d.MustTake("f")
	if !record.Equal(got, want) {
		t.Fatal("Take after Seal mismatch")
	}
}

func TestSealedReadsChargeCompressedBytes(t *testing.T) {
	d := newDisk()
	d.Put("f", sortedTable(2000))
	d.Seal("f")
	cb := d.StoredBytes("f")
	before := d.Stats()
	d.MustGet("f")
	st := d.Stats()
	if got := st.BytesRead - before.BytesRead; got != int64(cb) {
		t.Fatalf("sealed Get charged %d bytes, want compressed %d", got, cb)
	}
	s, ok := d.GetSlice("f")
	if !ok || s.Bytes() != cb {
		t.Fatal("GetSlice broken on sealed file")
	}
	before = d.Stats()
	if _, ok := d.GetForIndex("f"); !ok {
		t.Fatal("GetForIndex failed on sealed file")
	}
	st = d.Stats()
	idx := st.BytesRead - before.BytesRead
	if idx <= 0 || idx >= int64(cb) {
		t.Fatalf("GetForIndex charged %d bytes, want in (0,%d)", idx, cb)
	}
	before = d.Stats()
	sub := d.ReadRange("f", 10, 20)
	if sub.Len() != 10 {
		t.Fatal("sealed ReadRange wrong length")
	}
	st = d.Stats()
	rb := st.BytesRead - before.BytesRead
	if rb <= 0 || rb > int64(cb)+int64(colstore.SliceHeaderBytes) {
		t.Fatalf("sealed ReadRange charged %d bytes", rb)
	}
}

func TestGetSliceOnRowFile(t *testing.T) {
	d := newDisk()
	d.Put("f", table(5))
	if _, ok := d.GetSlice("f"); ok {
		t.Fatal("GetSlice succeeded on row file")
	}
	if _, ok := d.GetForIndex("f"); ok {
		t.Fatal("GetForIndex succeeded on row file")
	}
	if _, ok := d.GetSlice("missing"); ok {
		t.Fatal("GetSlice succeeded on missing file")
	}
}

func TestAppendAndMutateMaterializeSealed(t *testing.T) {
	d := newDisk()
	d.Put("f", sortedTable(500))
	d.Seal("f")
	d.Append("f", sortedTable(500).Sub(0, 10))
	if d.Sealed("f") {
		t.Fatal("Append left the file sealed")
	}
	if d.Len("f") != sortedTable(500).Len()+10 {
		t.Fatal("Append lost rows on sealed file")
	}
	d.Seal("f")
	d.Mutate("f", 8, func(tb *record.Table) *record.Table {
		tb.SetMeas(0, -99)
		return tb
	})
	if d.Sealed("f") {
		t.Fatal("Mutate left the file sealed")
	}
	if d.MustGet("f").Meas(0) != -99 {
		t.Fatal("Mutate lost on sealed file")
	}
}

func TestTakeSealedReturnsFreshDecode(t *testing.T) {
	d := newDisk()
	d.Put("f", sortedTable(300))
	d.Seal("f")
	shared := d.MustGet("f")
	taken := d.MustTake("f")
	if taken == shared {
		t.Fatal("Take returned the shared cached decode")
	}
	taken.SetMeas(0, 12345)
	if shared.Meas(0) == 12345 {
		t.Fatal("Take aliased the shared cache")
	}
}

func TestSealDisabledIsNoOp(t *testing.T) {
	prev := colstore.SetEnabled(false)
	defer colstore.SetEnabled(prev)
	d := newDisk()
	d.Put("f", sortedTable(200))
	if d.Seal("f") {
		t.Fatal("Seal sealed with colstore disabled")
	}
	if d.Sealed("f") {
		t.Fatal("file sealed with colstore disabled")
	}
}

func TestPutSlice(t *testing.T) {
	d := newDisk()
	src := sortedTable(400)
	s := colstore.Encode(src)
	d.PutSlice("f", s)
	if !d.Sealed("f") || d.StoredBytes("f") != s.Bytes() {
		t.Fatal("PutSlice metadata wrong")
	}
	st := d.Stats()
	if st.BytesWritten != int64(s.Bytes()) {
		t.Fatalf("PutSlice charged %d bytes, want %d", st.BytesWritten, s.Bytes())
	}
	if !record.Equal(d.MustGet("f"), src) {
		t.Fatal("PutSlice content mismatch")
	}
}

func TestSealIdempotent(t *testing.T) {
	d := newDisk()
	d.Put("f", sortedTable(200))
	d.Seal("f")
	before := d.Stats()
	if !d.Seal("f") {
		t.Fatal("second Seal returned false")
	}
	if d.Stats() != before {
		t.Fatal("second Seal charged I/O")
	}
}
