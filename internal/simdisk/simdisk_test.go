package simdisk

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/record"
)

func newDisk() *Disk { return New(costmodel.NewClock(costmodel.Default())) }

func table(n int) *record.Table {
	t := record.New(2, n)
	for i := 0; i < n; i++ {
		t.Append([]uint32{uint32(i), uint32(i * 2)}, int64(i))
	}
	return t
}

func TestPutTakeRoundTrip(t *testing.T) {
	d := newDisk()
	in := table(10)
	want := in.Clone()
	d.Put("f", in)
	if !d.Has("f") || d.Len("f") != 10 || d.Cols("f") != 2 {
		t.Fatal("metadata wrong after Put")
	}
	got, ok := d.Take("f")
	if !ok || !record.Equal(got, want) {
		t.Fatal("Take returned wrong table")
	}
	if d.Has("f") {
		t.Fatal("Take did not remove file")
	}
	if _, ok := d.Take("f"); ok {
		t.Fatal("Take of missing file succeeded")
	}
}

func TestGetDoesNotRemove(t *testing.T) {
	d := newDisk()
	d.Put("f", table(5))
	if _, ok := d.Get("f"); !ok {
		t.Fatal("Get failed")
	}
	if !d.Has("f") {
		t.Fatal("Get removed the file")
	}
}

func TestAppendCreatesAndExtends(t *testing.T) {
	d := newDisk()
	d.Append("f", table(3))
	d.Append("f", table(2))
	if d.Len("f") != 5 {
		t.Fatalf("Len = %d, want 5", d.Len("f"))
	}
}

func TestAppendClonesOnCreate(t *testing.T) {
	d := newDisk()
	src := table(3)
	d.Append("f", src)
	src.SetMeas(0, 999)
	got := d.MustGet("f")
	if got.Meas(0) == 999 {
		t.Fatal("Append aliased caller's table on create")
	}
}

func TestReadRange(t *testing.T) {
	d := newDisk()
	d.Put("f", table(10))
	sub := d.ReadRange("f", 3, 6)
	if sub.Len() != 3 || sub.Dim(0, 0) != 3 {
		t.Fatalf("ReadRange wrong: %v", sub)
	}
	// Charged only the range, not the file.
	st := d.Stats()
	if st.BytesRead != int64(3*record.RowBytes(2)) {
		t.Fatalf("BytesRead = %d, want %d", st.BytesRead, 3*record.RowBytes(2))
	}
}

func TestReadRangePanicsOutOfBounds(t *testing.T) {
	d := newDisk()
	d.Put("f", table(5))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.ReadRange("f", 2, 9)
}

func TestRenameAndRemove(t *testing.T) {
	d := newDisk()
	d.Put("a", table(4))
	d.Rename("a", "b")
	if d.Has("a") || !d.Has("b") {
		t.Fatal("Rename failed")
	}
	if !d.Remove("b") || d.Remove("b") {
		t.Fatal("Remove semantics wrong")
	}
}

func TestStatsAndClockCharging(t *testing.T) {
	clk := costmodel.NewClock(costmodel.Default())
	d := New(clk)
	tb := table(100)
	bytes := tb.Bytes()
	d.Put("f", tb)
	st := d.Stats()
	if st.Writes != 1 || st.BytesWritten != int64(bytes) {
		t.Fatalf("write stats wrong: %+v", st)
	}
	if clk.DiskSeconds() <= 0 {
		t.Fatal("Put did not charge disk time")
	}
	before := clk.DiskSeconds()
	d.MustGet("f")
	if clk.DiskSeconds() <= before {
		t.Fatal("Get did not charge disk time")
	}
	st = d.Stats()
	if st.Reads != 1 || st.BytesRead != int64(bytes) {
		t.Fatalf("read stats wrong: %+v", st)
	}
	if st.BlockTransfers(64<<10) < 2 {
		t.Fatalf("BlockTransfers = %d, want >= 2", st.BlockTransfers(64<<10))
	}
}

func TestMetadataOpsAreFree(t *testing.T) {
	clk := costmodel.NewClock(costmodel.Default())
	d := New(clk)
	d.Put("f", table(10))
	before := clk.Seconds()
	d.Has("f")
	d.Len("f")
	d.Cols("f")
	d.Files()
	d.Rename("f", "g")
	d.Remove("g")
	if clk.Seconds() != before {
		t.Fatal("metadata operations charged I/O time")
	}
}

func TestFilesSortedAndTotalBytes(t *testing.T) {
	d := newDisk()
	d.Put("b", table(2))
	d.Put("a", table(3))
	fs := d.Files()
	if len(fs) != 2 || fs[0] != "a" || fs[1] != "b" {
		t.Fatalf("Files = %v", fs)
	}
	if d.TotalBytes() != int64(5*record.RowBytes(2)) {
		t.Fatalf("TotalBytes = %d", d.TotalBytes())
	}
}

func TestMustTakePanicsOnMissing(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MustTake("nope")
}

func TestMutateChargesDeclaredBytes(t *testing.T) {
	clk := costmodel.NewClock(costmodel.Default())
	d := New(clk)
	d.Put("f", table(100))
	before := d.Stats()
	d.Mutate("f", 36, func(tb *record.Table) *record.Table {
		tb.AddMeas(0, 5)
		return tb
	})
	st := d.Stats()
	if st.BytesWritten-before.BytesWritten != 36 {
		t.Fatalf("Mutate charged %d bytes, want 36", st.BytesWritten-before.BytesWritten)
	}
	if d.MustGet("f").Meas(0) != 5 {
		t.Fatal("mutation lost")
	}
}

func TestMutateReplacement(t *testing.T) {
	d := newDisk()
	d.Put("f", table(10))
	d.SetMeta("f", "sample")
	d.Mutate("f", 1, func(tb *record.Table) *record.Table {
		return tb.Sub(5, 10)
	})
	if d.Len("f") != 5 {
		t.Fatalf("Len = %d after replacing mutation", d.Len("f"))
	}
	if d.Meta("f") != "sample" {
		t.Fatal("Mutate dropped metadata")
	}
}

func TestMutateMissingPanics(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Mutate("nope", 1, func(tb *record.Table) *record.Table { return tb })
}

func TestMetaLifecycle(t *testing.T) {
	d := newDisk()
	d.Put("f", table(3))
	if d.Meta("f") != nil {
		t.Fatal("fresh file has metadata")
	}
	d.SetMeta("f", 42)
	if d.Meta("f") != 42 {
		t.Fatal("SetMeta lost")
	}
	// Metadata follows renames...
	d.Rename("f", "g")
	if d.Meta("g") != 42 {
		t.Fatal("metadata lost on rename")
	}
	// ...but not replacement.
	d.Put("g", table(3))
	if d.Meta("g") != nil {
		t.Fatal("metadata survived Put")
	}
	if d.Meta("missing") != nil {
		t.Fatal("missing file has metadata")
	}
}

func TestSetMetaMissingPanics(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SetMeta("nope", 1)
}

func TestMustGetPanicsOnMissing(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MustGet("nope")
}

func TestRenamePanicsOnMissing(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Rename("a", "b")
}

func TestLenColsOnMissing(t *testing.T) {
	d := newDisk()
	if d.Len("x") != -1 || d.Cols("x") != -1 {
		t.Fatal("missing file metadata should be -1")
	}
}
