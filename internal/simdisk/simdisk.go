// Package simdisk models the private local disk of one shared-nothing
// processor. The paper's algorithm is an external-memory algorithm:
// every view is read from and written to local disk, and the two basic
// disk operations are the linear scan and the external-memory sort
// (Vitter [22]). This package provides the storage substrate with
// block-granular transfer accounting; package extsort builds the
// external sort on top of it.
//
// A Disk owns the tables stored on it. Take transfers ownership out
// (removing the file); Put transfers ownership in. Get grants shared
// read-only access: callers must not mutate a table obtained from Get.
// All data-moving operations charge the owning processor's simulated
// clock with access latency plus block-rounded transfer time, and are
// tallied in Stats.
package simdisk

import (
	"fmt"
	"sort"

	"repro/internal/colstore"
	"repro/internal/costmodel"
	"repro/internal/record"
)

// Stats aggregates the I/O activity of one disk.
type Stats struct {
	Reads        int // file-level read operations
	Writes       int // file-level write/append operations
	BytesRead    int64
	BytesWritten int64
}

// BlockTransfers returns the total number of block transfers implied by
// the byte counts, using block size b.
func (s Stats) BlockTransfers(b int) int64 {
	return (s.BytesRead+int64(b)-1)/int64(b) + (s.BytesWritten+int64(b)-1)/int64(b)
}

// file is one stored view slice plus its uncharged metadata (e.g. the
// online spaced sample captured while the file was written, §2.4). The
// payload sits behind colstore.Store: freshly written files are
// row-oriented (TableStore); sealed files hold the columnar compressed
// image (*colstore.Slice) and charge I/O at compressed sizes.
type file struct {
	st   colstore.Store
	meta any
}

// slice returns the columnar image if the file is sealed, nil if it is
// row-oriented.
func (f *file) slice() *colstore.Slice {
	s, _ := f.st.(*colstore.Slice)
	return s
}

// Disk is the private simulated disk of one processor.
type Disk struct {
	clock *costmodel.Clock
	files map[string]*file
	stats Stats
}

// New returns an empty disk charging the given clock.
func New(clock *costmodel.Clock) *Disk {
	return &Disk{clock: clock, files: make(map[string]*file)}
}

// Clock returns the clock this disk charges.
func (d *Disk) Clock() *costmodel.Clock { return d.clock }

// Stats returns a copy of the accumulated I/O statistics.
func (d *Disk) Stats() Stats { return d.stats }

func (d *Disk) chargeRead(bytes int) {
	d.clock.AddDisk(bytes)
	d.stats.Reads++
	d.stats.BytesRead += int64(bytes)
}

func (d *Disk) chargeWrite(bytes int) {
	d.clock.AddDisk(bytes)
	d.stats.Writes++
	d.stats.BytesWritten += int64(bytes)
}

// Put stores t under name, replacing any existing file, and charges a
// sequential write of the table. The disk takes ownership of t. The
// file is row-oriented; Seal converts it to the columnar layout.
func (d *Disk) Put(name string, t *record.Table) {
	d.chargeWrite(t.Bytes())
	d.files[name] = &file{st: colstore.TableStore{T: t}}
}

// PutSlice stores an already-encoded columnar slice under name,
// charging a sequential write of the compressed image. The disk takes
// ownership of s. It is how persist v3 and compressed replication land
// shipped slices without a decode/re-encode round trip.
func (d *Disk) PutSlice(name string, s *colstore.Slice) {
	d.chargeWrite(s.Bytes())
	d.files[name] = &file{st: s}
}

// Seal rewrites the named row-oriented file in the columnar compressed
// layout. Real systems fold the encode into the write that produced
// the file, paying compressed bytes instead of row bytes; our producer
// already charged the (larger) row-format write, so sealing charges
// only the encode's compute scan — a conservative upper bound on total
// I/O — and every subsequent read of the file pays compressed bytes.
// It reports whether the file is sealed afterwards: a no-op returning
// false when the columnar store is disabled, true without charge if
// already sealed. Panics if the file does not exist.
func (d *Disk) Seal(name string) bool {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	if !colstore.Enabled() {
		return f.slice() != nil
	}
	if f.slice() != nil {
		return true
	}
	s := colstore.Encode(f.st.Table())
	d.clock.AddCompute(costmodel.ScanOps(s.Len()))
	f.st = s
	return true
}

// Sealed reports whether the named file is stored columnar. Missing
// files report false.
func (d *Disk) Sealed(name string) bool {
	f, ok := d.files[name]
	return ok && f.slice() != nil
}

// GetSlice returns shared read-only access to the columnar image of a
// sealed file, charging a sequential read of the compressed bytes. It
// returns false if the file is absent or row-oriented. Callers must
// not mutate the returned slice.
func (d *Disk) GetSlice(name string) (*colstore.Slice, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	s := f.slice()
	if s == nil {
		return nil, false
	}
	d.chargeRead(s.Bytes())
	return s, true
}

// GetForIndex returns the columnar image of a sealed file charging
// only a read of its leading column — the prefix-index build path,
// which needs the sort-prefix run directory but no other columns.
// Returns false if the file is absent or row-oriented.
func (d *Disk) GetForIndex(name string) (*colstore.Slice, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	s := f.slice()
	if s == nil {
		return nil, false
	}
	d.chargeRead(colstore.SliceHeaderBytes + s.ColumnBytes(0))
	return s, true
}

// Append appends the rows of t to the named file, creating it if
// absent, and charges a sequential write of the appended rows. The
// existing file's column count must match. Appending to a sealed file
// first materializes it back to row form, charging a sequential read
// of the compressed image.
func (d *Disk) Append(name string, t *record.Table) {
	d.chargeWrite(t.Bytes())
	if f, ok := d.files[name]; ok {
		d.materialize(f)
		f.st.Table().AppendTable(t)
		return
	}
	d.files[name] = &file{st: colstore.TableStore{T: t.Clone()}}
}

// materialize converts a sealed file back to row form in place,
// charging a read of the compressed image. Row files are untouched.
func (d *Disk) materialize(f *file) {
	if s := f.slice(); s != nil {
		d.chargeRead(s.Bytes())
		f.st = colstore.TableStore{T: s.Decode()}
	}
}

// Take removes the named file and returns its table, charging a full
// sequential read (at the compressed size if sealed). Ownership
// transfers to the caller: for sealed files the returned table is a
// fresh decode, never the shared cache Get hands out.
func (d *Disk) Take(name string) (*record.Table, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	d.chargeRead(f.st.Bytes())
	delete(d.files, name)
	if s := f.slice(); s != nil {
		return s.Decode(), true
	}
	return f.st.Table(), true
}

// MustTake is Take but panics if the file does not exist. It is used
// where a missing file indicates a bug in the algorithm's phase
// sequencing rather than a recoverable condition.
func (d *Disk) MustTake(name string) *record.Table {
	t, ok := d.Take(name)
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	return t
}

// Get returns shared read-only access to the named file, charging a
// full sequential read (at the compressed size if sealed). The caller
// must not mutate the returned table; sealed files hand out a shared
// cached decode.
func (d *Disk) Get(name string) (*record.Table, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	d.chargeRead(f.st.Bytes())
	return f.st.Table(), true
}

// Peek returns shared read-only access to the named file without
// charging the clock. It is host-side introspection for post-run
// metrics collection (like Len and StoredBytes), not a primitive the
// simulated algorithm may use: algorithm reads go through Get/Take and
// pay for their bytes.
func (d *Disk) Peek(name string) (*record.Table, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	return f.st.Table(), true
}

// MustGet is Get but panics if the file does not exist.
func (d *Disk) MustGet(name string) *record.Table {
	t, ok := d.Get(name)
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	return t
}

// ReadRange returns a copy of rows [lo,hi) of the named file, charging
// a read of just those rows (one access plus their bytes). It is the
// block-granular read primitive used by the external sort.
func (d *Disk) ReadRange(name string, lo, hi int) *record.Table {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	if lo < 0 || hi > f.st.Len() || lo > hi {
		panic(fmt.Sprintf("simdisk: range [%d,%d) out of bounds for %q (%d rows)", lo, hi, name, f.st.Len()))
	}
	if s := f.slice(); s != nil {
		d.chargeRead(s.RangeBytes(lo, hi))
		return s.DecodeRange(lo, hi)
	}
	d.chargeRead((hi - lo) * record.RowBytes(f.st.D()))
	return f.st.Table().Sub(lo, hi)
}

// Has reports whether the named file exists.
func (d *Disk) Has(name string) bool {
	_, ok := d.files[name]
	return ok
}

// Len returns the row count of the named file without charging I/O
// (metadata access), or -1 if it does not exist.
func (d *Disk) Len(name string) int {
	f, ok := d.files[name]
	if !ok {
		return -1
	}
	return f.st.Len()
}

// StoredBytes returns the modelled on-disk size of the named file
// (compressed if sealed) without charging I/O, or -1 if absent.
func (d *Disk) StoredBytes(name string) int {
	f, ok := d.files[name]
	if !ok {
		return -1
	}
	return f.st.Bytes()
}

// Cols returns the column count of the named file without charging I/O
// (metadata access), or -1 if it does not exist.
func (d *Disk) Cols(name string) int {
	f, ok := d.files[name]
	if !ok {
		return -1
	}
	return f.st.D()
}

// Rename renames a file without charging I/O (metadata operation),
// replacing any existing file of the new name. It panics if the source
// does not exist.
func (d *Disk) Rename(from, to string) {
	f, ok := d.files[from]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", from))
	}
	delete(d.files, from)
	d.files[to] = f
}

// Mutate applies fn to the named file's table in place, charging
// touchedBytes of I/O (an in-place update of a few records, e.g. the
// boundary-item agglomeration of Merge–Partitions, rather than a full
// rewrite). fn may return the same table or a replacement; metadata is
// preserved. Mutating a sealed file first materializes it back to row
// form, charging a sequential read of the compressed image.
func (d *Disk) Mutate(name string, touchedBytes int, fn func(*record.Table) *record.Table) {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	d.materialize(f)
	d.chargeWrite(touchedBytes)
	f.st = colstore.TableStore{T: fn(f.st.Table())}
}

// SetMeta attaches uncharged metadata to an existing file (for
// example, the online spaced sample built while the file was written).
// Metadata is discarded when the file is replaced, taken, or removed.
func (d *Disk) SetMeta(name string, v any) {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	f.meta = v
}

// Meta returns the metadata attached to the named file, or nil.
func (d *Disk) Meta(name string) any {
	f, ok := d.files[name]
	if !ok {
		return nil
	}
	return f.meta
}

// Remove deletes the named file without charging I/O (metadata
// operation). It reports whether the file existed.
func (d *Disk) Remove(name string) bool {
	_, ok := d.files[name]
	delete(d.files, name)
	return ok
}

// Files returns the sorted list of file names on the disk.
func (d *Disk) Files() []string {
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the total modelled size of all files on the disk,
// counting sealed files at their compressed size.
func (d *Disk) TotalBytes() int64 {
	var s int64
	for _, f := range d.files {
		s += int64(f.st.Bytes())
	}
	return s
}
