// Package simdisk models the private local disk of one shared-nothing
// processor. The paper's algorithm is an external-memory algorithm:
// every view is read from and written to local disk, and the two basic
// disk operations are the linear scan and the external-memory sort
// (Vitter [22]). This package provides the storage substrate with
// block-granular transfer accounting; package extsort builds the
// external sort on top of it.
//
// A Disk owns the tables stored on it. Take transfers ownership out
// (removing the file); Put transfers ownership in. Get grants shared
// read-only access: callers must not mutate a table obtained from Get.
// All data-moving operations charge the owning processor's simulated
// clock with access latency plus block-rounded transfer time, and are
// tallied in Stats.
package simdisk

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/record"
)

// Stats aggregates the I/O activity of one disk.
type Stats struct {
	Reads        int // file-level read operations
	Writes       int // file-level write/append operations
	BytesRead    int64
	BytesWritten int64
}

// BlockTransfers returns the total number of block transfers implied by
// the byte counts, using block size b.
func (s Stats) BlockTransfers(b int) int64 {
	return (s.BytesRead+int64(b)-1)/int64(b) + (s.BytesWritten+int64(b)-1)/int64(b)
}

// file is one stored table plus its uncharged metadata (e.g. the
// online spaced sample captured while the file was written, §2.4).
type file struct {
	t    *record.Table
	meta any
}

// Disk is the private simulated disk of one processor.
type Disk struct {
	clock *costmodel.Clock
	files map[string]*file
	stats Stats
}

// New returns an empty disk charging the given clock.
func New(clock *costmodel.Clock) *Disk {
	return &Disk{clock: clock, files: make(map[string]*file)}
}

// Clock returns the clock this disk charges.
func (d *Disk) Clock() *costmodel.Clock { return d.clock }

// Stats returns a copy of the accumulated I/O statistics.
func (d *Disk) Stats() Stats { return d.stats }

func (d *Disk) chargeRead(bytes int) {
	d.clock.AddDisk(bytes)
	d.stats.Reads++
	d.stats.BytesRead += int64(bytes)
}

func (d *Disk) chargeWrite(bytes int) {
	d.clock.AddDisk(bytes)
	d.stats.Writes++
	d.stats.BytesWritten += int64(bytes)
}

// Put stores t under name, replacing any existing file, and charges a
// sequential write of the table. The disk takes ownership of t.
func (d *Disk) Put(name string, t *record.Table) {
	d.chargeWrite(t.Bytes())
	d.files[name] = &file{t: t}
}

// Append appends the rows of t to the named file, creating it if
// absent, and charges a sequential write of the appended rows. The
// existing file's column count must match.
func (d *Disk) Append(name string, t *record.Table) {
	d.chargeWrite(t.Bytes())
	if f, ok := d.files[name]; ok {
		f.t.AppendTable(t)
		return
	}
	d.files[name] = &file{t: t.Clone()}
}

// Take removes the named file and returns its table, charging a full
// sequential read. Ownership transfers to the caller.
func (d *Disk) Take(name string) (*record.Table, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	d.chargeRead(f.t.Bytes())
	delete(d.files, name)
	return f.t, true
}

// MustTake is Take but panics if the file does not exist. It is used
// where a missing file indicates a bug in the algorithm's phase
// sequencing rather than a recoverable condition.
func (d *Disk) MustTake(name string) *record.Table {
	t, ok := d.Take(name)
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	return t
}

// Get returns shared read-only access to the named file, charging a
// full sequential read. The caller must not mutate the returned table.
func (d *Disk) Get(name string) (*record.Table, bool) {
	f, ok := d.files[name]
	if !ok {
		return nil, false
	}
	d.chargeRead(f.t.Bytes())
	return f.t, true
}

// MustGet is Get but panics if the file does not exist.
func (d *Disk) MustGet(name string) *record.Table {
	t, ok := d.Get(name)
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	return t
}

// ReadRange returns a copy of rows [lo,hi) of the named file, charging
// a read of just those rows (one access plus their bytes). It is the
// block-granular read primitive used by the external sort.
func (d *Disk) ReadRange(name string, lo, hi int) *record.Table {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	if lo < 0 || hi > f.t.Len() || lo > hi {
		panic(fmt.Sprintf("simdisk: range [%d,%d) out of bounds for %q (%d rows)", lo, hi, name, f.t.Len()))
	}
	d.chargeRead((hi - lo) * record.RowBytes(f.t.D))
	return f.t.Sub(lo, hi)
}

// Has reports whether the named file exists.
func (d *Disk) Has(name string) bool {
	_, ok := d.files[name]
	return ok
}

// Len returns the row count of the named file without charging I/O
// (metadata access), or -1 if it does not exist.
func (d *Disk) Len(name string) int {
	f, ok := d.files[name]
	if !ok {
		return -1
	}
	return f.t.Len()
}

// Cols returns the column count of the named file without charging I/O
// (metadata access), or -1 if it does not exist.
func (d *Disk) Cols(name string) int {
	f, ok := d.files[name]
	if !ok {
		return -1
	}
	return f.t.D
}

// Rename renames a file without charging I/O (metadata operation),
// replacing any existing file of the new name. It panics if the source
// does not exist.
func (d *Disk) Rename(from, to string) {
	f, ok := d.files[from]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", from))
	}
	delete(d.files, from)
	d.files[to] = f
}

// Mutate applies fn to the named file's table in place, charging
// touchedBytes of I/O (an in-place update of a few records, e.g. the
// boundary-item agglomeration of Merge–Partitions, rather than a full
// rewrite). fn may return the same table or a replacement; metadata is
// preserved.
func (d *Disk) Mutate(name string, touchedBytes int, fn func(*record.Table) *record.Table) {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	d.chargeWrite(touchedBytes)
	f.t = fn(f.t)
}

// SetMeta attaches uncharged metadata to an existing file (for
// example, the online spaced sample built while the file was written).
// Metadata is discarded when the file is replaced, taken, or removed.
func (d *Disk) SetMeta(name string, v any) {
	f, ok := d.files[name]
	if !ok {
		panic(fmt.Sprintf("simdisk: file %q does not exist", name))
	}
	f.meta = v
}

// Meta returns the metadata attached to the named file, or nil.
func (d *Disk) Meta(name string) any {
	f, ok := d.files[name]
	if !ok {
		return nil
	}
	return f.meta
}

// Remove deletes the named file without charging I/O (metadata
// operation). It reports whether the file existed.
func (d *Disk) Remove(name string) bool {
	_, ok := d.files[name]
	delete(d.files, name)
	return ok
}

// Files returns the sorted list of file names on the disk.
func (d *Disk) Files() []string {
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the total modelled size of all files on the disk.
func (d *Disk) TotalBytes() int64 {
	var s int64
	for _, f := range d.files {
		s += int64(f.t.Bytes())
	}
	return s
}
