package extsort

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/record"
	"repro/internal/simdisk"
)

func BenchmarkExternalSort(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := simdisk.New(costmodel.NewClock(costmodel.Default()))
				d.Put("f", randomTable(int64(i), n, 4, 1000))
				rowBytes := record.RowBytes(4)
				b.StartTimer()
				SortBudget(d, "f", 1000*rowBytes, 100*rowBytes)
			}
			b.ReportMetric(float64(n), "rows")
		})
	}
}

func sizeName(n int) string {
	if n >= 1000 {
		return itoa(n/1000) + "k"
	}
	return itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
