// Package extsort implements the external-memory sort used by every
// processor of the shared-nothing machine (the paper's second basic
// local disk operation, per Vitter [22]): sorted runs are formed under
// the memory budget m, then merged with a multi-way merge whose fan-in
// is bounded by m/B, giving the O((n/B) log_{m/B} (n/B)) block-transfer
// behaviour the paper cites.
//
// The sort operates on files of a simdisk.Disk and charges the owning
// processor's clock for both the block transfers (via the disk) and the
// comparison work (via costmodel.SortOps / MergeOps).
//
// Run formation sorts with record's packed-key radix kernel, and the
// multi-way merge is a loser tree on packed keys (record.LoserTree):
// per-column key widths are measured once during run formation and the
// resulting plan drives every merge pass. Unpackable keys (or kernels
// disabled via record.SetKernelsEnabled) fall back to the
// comparison-based container/heap merge. Either way the simulated
// charges — block transfers and MergeOps — are identical; only
// wall-clock time differs.
package extsort

import (
	"container/heap"
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/record"
	"repro/internal/simdisk"
)

// Sort sorts the named file on disk d lexicographically over all its
// columns, replacing its contents, using at most the clock's configured
// memory budget for run formation and merge fan-in. It returns the
// number of merge passes performed (0 when the file fits in memory).
func Sort(d *simdisk.Disk, name string) int {
	return SortBudget(d, name, d.Clock().Params().MemoryBytes, d.Clock().Params().BlockSize)
}

// SortPlan is Sort with a caller-supplied key plan, typically built
// from the schema's (reordered) cardinalities with PlanKeyFromCards.
// A usable plan (packable, matching column count) lets run formation
// skip the per-run width measurement scan and guarantees the packed
// merge path; an unusable plan falls back to Sort's measured behaviour.
// Simulated charges are identical either way.
func SortPlan(d *simdisk.Disk, name string, kp record.KeyPlan) int {
	return sortBudget(d, name, d.Clock().Params().MemoryBytes, d.Clock().Params().BlockSize, kp, true)
}

// SortBudget is Sort with an explicit memory budget and block size in
// bytes, for tests and ablations.
func SortBudget(d *simdisk.Disk, name string, memBytes, blockBytes int) int {
	return sortBudget(d, name, memBytes, blockBytes, record.KeyPlan{}, false)
}

func sortBudget(d *simdisk.Disk, name string, memBytes, blockBytes int, callerPlan record.KeyPlan, haveCaller bool) int {
	n := d.Len(name)
	if n < 0 {
		panic(fmt.Sprintf("extsort: file %q does not exist", name))
	}
	if n <= 1 {
		return 0
	}
	cols := d.Cols(name)
	rowBytes := record.RowBytes(cols)
	memRows := memBytes / rowBytes
	if memRows < 2 {
		memRows = 2
	}
	blockRows := blockBytes / rowBytes
	if blockRows < 1 {
		blockRows = 1
	}
	clk := d.Clock()
	// A caller plan is usable when it can drive the radix/packed path
	// outright; otherwise behave exactly like the measured variant.
	useCaller := haveCaller && record.KernelsEnabled() && callerPlan.Cols() == cols && callerPlan.Packable()

	if n <= memRows {
		// Fits in memory: one read, in-memory sort, one write.
		t := d.ReadRange(name, 0, n)
		clk.AddCompute(costmodel.SortOps(n))
		t.SortWithPlan(callerPlan, useCaller)
		d.Remove(name)
		d.Put(name, t)
		return 0
	}

	// Run formation. Each run's key widths are measured while it is in
	// memory — unless the caller supplied a usable plan, which skips
	// the measurement scan; the resulting plan is valid for every row
	// of the file and drives the packed-key merge passes below.
	var runs []string
	var plan record.KeyPlan
	havePlan := false
	if useCaller {
		plan, havePlan = callerPlan, true
	}
	for lo, i := 0, 0; lo < n; lo, i = lo+memRows, i+1 {
		hi := lo + memRows
		if hi > n {
			hi = n
		}
		run := d.ReadRange(name, lo, hi)
		clk.AddCompute(costmodel.SortOps(run.Len()))
		run.SortWithPlan(callerPlan, useCaller)
		if !useCaller && record.KernelsEnabled() {
			p := record.MeasureKeyPlan(run)
			if !havePlan {
				plan, havePlan = p, true
			} else {
				plan = plan.Union(p)
			}
		}
		rn := fmt.Sprintf("%s.run%d", name, i)
		d.Put(rn, run)
		runs = append(runs, rn)
	}
	d.Remove(name)
	usePlan := havePlan && plan.Packable() && record.KernelsEnabled()

	// Multi-way merge passes. Fan-in is bounded by the number of block
	// buffers that fit in memory, reserving one buffer for output.
	fanIn := memBytes/blockBytes - 1
	if fanIn < 2 {
		fanIn = 2
	}
	passes := 0
	gen := 0
	for len(runs) > 1 {
		passes++
		var next []string
		for g := 0; g*fanIn < len(runs); g++ {
			lo := g * fanIn
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			out := fmt.Sprintf("%s.merge%d.%d", name, gen, g)
			mergeRuns(d, runs[lo:hi], out, blockRows, plan, usePlan)
			next = append(next, out)
		}
		runs = next
		gen++
	}
	d.Rename(runs[0], name)
	return passes
}

// cursor streams one sorted run from disk, blockRows rows at a time.
// With a key plan installed, each refilled block's packed keys are
// bulk-extracted into the reusable key buffers.
type cursor struct {
	d         *simdisk.Disk
	name      string
	pos, end  int
	buf       *record.Table
	bufPos    int
	blockRows int
	src       int

	plan         *record.KeyPlan
	keyHi, keyLo []uint64
}

func newCursor(d *simdisk.Disk, name string, blockRows, src int, plan *record.KeyPlan) *cursor {
	c := &cursor{d: d, name: name, end: d.Len(name), blockRows: blockRows, src: src, plan: plan}
	c.fill()
	return c
}

func (c *cursor) fill() {
	if c.pos >= c.end {
		c.buf = nil
		return
	}
	hi := c.pos + c.blockRows
	if hi > c.end {
		hi = c.end
	}
	c.buf = c.d.ReadRange(c.name, c.pos, hi)
	c.bufPos = 0
	c.pos = hi
	if c.plan != nil {
		n := c.buf.Len()
		if cap(c.keyLo) < n {
			c.keyLo = make([]uint64, n)
			if c.plan.Wide() {
				c.keyHi = make([]uint64, n)
			}
		}
		c.keyLo = c.keyLo[:n]
		if c.plan.Wide() {
			c.keyHi = c.keyHi[:n]
			c.plan.PackKeys(c.buf, c.keyHi, c.keyLo)
		} else {
			c.plan.PackKeys(c.buf, nil, c.keyLo)
		}
	}
}

func (c *cursor) exhausted() bool { return c.buf == nil }

// key returns the packed key of the cursor's current row.
func (c *cursor) key() (hi, lo uint64) {
	if c.plan.Wide() {
		hi = c.keyHi[c.bufPos]
	}
	return hi, c.keyLo[c.bufPos]
}

// advance moves past the current row, refilling the buffer as needed.
func (c *cursor) advance() {
	c.bufPos++
	if c.bufPos >= c.buf.Len() {
		c.fill()
	}
}

type cursorHeap []*cursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	c := record.CompareTables(h[i].buf, h[i].bufPos, h[j].buf, h[j].bufPos, h[i].buf.D)
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*cursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRuns merges the sorted run files into out, deleting the runs.
// With usePlan it runs the packed-key loser tree; otherwise the
// comparison heap. Both orders are identical (ties break by run
// index), as is every simulated charge.
func mergeRuns(d *simdisk.Disk, runs []string, out string, blockRows int, plan record.KeyPlan, usePlan bool) {
	cols := d.Cols(runs[0])
	clk := d.Clock()
	total := 0
	for _, r := range runs {
		total += d.Len(r)
	}
	clk.AddCompute(costmodel.MergeOps(total, len(runs)))

	outBuf := record.New(cols, blockRows)
	d.Put(out, record.New(cols, 0))
	flush := func() {
		if outBuf.Len() > 0 {
			d.Append(out, outBuf)
			outBuf = record.New(cols, blockRows)
		}
	}

	if usePlan {
		cursors := make([]*cursor, len(runs))
		lt := record.NewLoserTree(len(runs))
		for i, r := range runs {
			cursors[i] = newCursor(d, r, blockRows, i, &plan)
			if !cursors[i].exhausted() {
				hi, lo := cursors[i].key()
				lt.SetKey(i, hi, lo)
			}
		}
		lt.Init()
		for {
			w := lt.Winner()
			if w < 0 {
				break
			}
			c := cursors[w]
			outBuf.AppendFrom(c.buf, c.bufPos)
			if outBuf.Len() >= blockRows {
				flush()
			}
			c.advance()
			if c.exhausted() {
				lt.Close(w)
			} else {
				hi, lo := c.key()
				lt.SetKey(w, hi, lo)
			}
			lt.Fix()
		}
	} else {
		h := make(cursorHeap, 0, len(runs))
		for i, r := range runs {
			c := newCursor(d, r, blockRows, i, nil)
			if !c.exhausted() {
				h = append(h, c)
			}
		}
		heap.Init(&h)
		for len(h) > 0 {
			c := h[0]
			outBuf.AppendFrom(c.buf, c.bufPos)
			if outBuf.Len() >= blockRows {
				flush()
			}
			c.advance()
			if c.exhausted() {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
	}
	flush()
	for _, r := range runs {
		d.Remove(r)
	}
}
