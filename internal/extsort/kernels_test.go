package extsort

import (
	"math/rand"
	"testing"

	"repro/internal/record"
)

// TestExternalSortKernelsToggleSameCharges asserts the kernel and
// fallback paths of the external sort charge identical simulated time
// and I/O — the two-clock discipline: kernels change wall-clock only.
func TestExternalSortKernelsToggleSameCharges(t *testing.T) {
	run := func(on bool) (float64, int64, int, *record.Table) {
		prev := record.SetKernelsEnabled(on)
		defer record.SetKernelsEnabled(prev)
		d := newDisk()
		d.Put("f", randomTable(42, 5000, 4, 50))
		rowBytes := record.RowBytes(4)
		passes := SortBudget(d, "f", 200*rowBytes, 25*rowBytes)
		st := d.Stats()
		return d.Clock().Seconds(), st.BytesRead + st.BytesWritten, passes, d.MustGet("f")
	}
	onSec, onIO, onPasses, onOut := run(true)
	offSec, offIO, offPasses, offOut := run(false)
	if onSec != offSec {
		t.Fatalf("simulated seconds differ: kernels on %v, off %v", onSec, offSec)
	}
	if onIO != offIO {
		t.Fatalf("I/O bytes differ: kernels on %d, off %d", onIO, offIO)
	}
	if onPasses != offPasses {
		t.Fatalf("merge passes differ: %d vs %d", onPasses, offPasses)
	}
	// The sorted dims must agree row for row; measures within equal-key
	// runs may be permuted (the radix path is stable, sort.Sort is not).
	if !onOut.IsSorted() || !offOut.IsSorted() || !sameSortedRows(onOut, offOut) {
		t.Fatal("kernel and fallback sorts disagree on row order")
	}
	if onOut.TotalMeasure() != offOut.TotalMeasure() {
		t.Fatal("kernel and fallback sorts disagree on measure mass")
	}
}

// TestMergeRunsLoserTreeMatchesHeap drives mergeRuns directly on the
// same pre-sorted runs through both paths and requires bit-identical
// output — the loser tree replaces the heap exactly, ties included.
func TestMergeRunsLoserTreeMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(7) + 2
		cols := rng.Intn(3) + 1
		card := []int{3, 100, 1 << 16}[rng.Intn(3)]
		dTree, dHeap := newDisk(), newDisk()
		var runs []string
		plan := record.KeyPlan{}
		havePlan := false
		for i := 0; i < k; i++ {
			run := randomTable(rng.Int63(), rng.Intn(300)+1, cols, card)
			run.Sort()
			p := record.MeasureKeyPlan(run)
			if !havePlan {
				plan, havePlan = p, true
			} else {
				plan = plan.Union(p)
			}
			name := "run" + string(rune('a'+i))
			dTree.Put(name, run.Clone())
			dHeap.Put(name, run)
			runs = append(runs, name)
		}
		mergeRuns(dTree, runs, "out", 16, plan, true)
		mergeRuns(dHeap, runs, "out", 16, record.KeyPlan{}, false)
		got, want := dTree.MustGet("out"), dHeap.MustGet("out")
		if !record.Equal(got, want) {
			t.Fatalf("trial %d (k=%d cols=%d card=%d): loser-tree merge differs from heap",
				trial, k, cols, card)
		}
	}
}

// TestExternalSortUnpackableKeys forces the heap fallback inside a
// multi-pass external sort (6 full-width columns exceed 128 key bits)
// and verifies the result is still a correct sort.
func TestExternalSortUnpackableKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 1200
	tb := record.New(6, n)
	row := make([]uint32, 6)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Uint32() | 1<<31
		}
		tb.Append(row, int64(rng.Intn(10)))
	}
	if record.MeasureKeyPlan(tb).Packable() {
		t.Fatal("test premise broken: keys should not pack")
	}
	want := tb.Clone()
	want.Sort()
	d := newDisk()
	d.Put("f", tb)
	rowBytes := record.RowBytes(6)
	passes := SortBudget(d, "f", 100*rowBytes, 20*rowBytes)
	if passes < 1 {
		t.Fatalf("expected external passes, got %d", passes)
	}
	got := d.MustGet("f")
	if !got.IsSorted() || !sameSortedRows(got, want) || got.TotalMeasure() != want.TotalMeasure() {
		t.Fatal("unpackable-key external sort incorrect")
	}
}
