package extsort

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/record"
	"repro/internal/simdisk"
)

func randomTable(seed int64, n, d, card int) *record.Table {
	rng := rand.New(rand.NewSource(seed))
	t := record.New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = uint32(rng.Intn(card))
		}
		t.Append(row, int64(rng.Intn(100)))
	}
	return t
}

func newDisk() *simdisk.Disk { return simdisk.New(costmodel.NewClock(costmodel.Default())) }

func TestSortInMemoryPath(t *testing.T) {
	d := newDisk()
	tb := randomTable(1, 100, 3, 10)
	want := tb.Clone()
	want.Sort()
	d.Put("f", tb)
	passes := Sort(d, "f")
	if passes != 0 {
		t.Fatalf("passes = %d, want 0 for in-memory sort", passes)
	}
	got := d.MustGet("f")
	if !record.Equal(got, want) {
		t.Fatal("in-memory path sorted incorrectly")
	}
}

func TestSortExternalSinglePass(t *testing.T) {
	d := newDisk()
	n := 1000
	tb := randomTable(2, n, 2, 50)
	want := tb.Clone()
	want.Sort()
	d.Put("f", tb)
	// Budget forces 10 runs of ~100 rows; fan-in 11 merges them in one pass.
	rowBytes := record.RowBytes(2)
	passes := SortBudget(d, "f", 96*rowBytes, 8*rowBytes)
	if passes != 1 {
		t.Fatalf("passes = %d, want 1", passes)
	}
	got := d.MustGet("f")
	if !got.IsSorted() || !sameSortedRows(got, want) || got.TotalMeasure() != want.TotalMeasure() {
		t.Fatal("external sort produced wrong order")
	}
}

func TestSortExternalMultiPass(t *testing.T) {
	d := newDisk()
	n := 2000
	tb := randomTable(3, n, 2, 7)
	want := tb.Clone()
	want.Sort()
	d.Put("f", tb)
	// Tiny memory: runs of ~40 rows (50 runs), fan-in 3 => several passes.
	rowBytes := record.RowBytes(2)
	mem := 40 * rowBytes
	block := mem / 4
	passes := SortBudget(d, "f", mem, block)
	if passes < 2 {
		t.Fatalf("passes = %d, want >= 2 with tiny fan-in", passes)
	}
	got := d.MustGet("f")
	if !got.IsSorted() || !sameSortedRows(got, want) || got.TotalMeasure() != want.TotalMeasure() {
		t.Fatal("multi-pass external sort produced wrong order")
	}
	// No leftover run files.
	if fs := d.Files(); len(fs) != 1 || fs[0] != "f" {
		t.Fatalf("leftover files: %v", fs)
	}
}

func TestSortEmptyAndSingleton(t *testing.T) {
	d := newDisk()
	d.Put("e", record.New(3, 0))
	if Sort(d, "e") != 0 {
		t.Fatal("empty sort should be 0 passes")
	}
	one := record.New(1, 0)
	one.Append([]uint32{5}, 1)
	d.Put("s", one)
	Sort(d, "s")
	if d.Len("s") != 1 {
		t.Fatal("singleton lost")
	}
}

func TestSortMissingFilePanics(t *testing.T) {
	d := newDisk()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sort(d, "missing")
}

func TestSortChargesMoreIOWhenExternal(t *testing.T) {
	mk := func() (*simdisk.Disk, *costmodel.Clock) {
		clk := costmodel.NewClock(costmodel.Default())
		return simdisk.New(clk), clk
	}
	n := 3000
	rowBytes := record.RowBytes(2)

	dMem, _ := mk()
	dMem.Put("f", randomTable(7, n, 2, 100))
	SortBudget(dMem, "f", n*rowBytes*2, 64<<10)
	memIO := dMem.Stats().BytesRead + dMem.Stats().BytesWritten

	dExt, _ := mk()
	dExt.Put("f", randomTable(7, n, 2, 100))
	SortBudget(dExt, "f", 50*rowBytes, 10*rowBytes)
	extIO := dExt.Stats().BytesRead + dExt.Stats().BytesWritten

	if extIO <= memIO {
		t.Fatalf("external sort I/O (%d) not larger than in-memory (%d)", extIO, memIO)
	}
}

func TestSortIOWithinEnvelope(t *testing.T) {
	// I/O volume of an external sort must stay within a small constant of
	// (passes+2) full scans of the file (read+write per pass, plus the
	// initial run formation read/write).
	clk := costmodel.NewClock(costmodel.Default())
	d := simdisk.New(clk)
	n := 5000
	tb := randomTable(11, n, 2, 31)
	fileBytes := int64(tb.Bytes())
	d.Put("f", tb)
	base := d.Stats()
	rowBytes := record.RowBytes(2)
	passes := SortBudget(d, "f", 100*rowBytes, 20*rowBytes)
	st := d.Stats()
	moved := (st.BytesRead - base.BytesRead) + (st.BytesWritten - base.BytesWritten)
	limit := int64(2*(passes+1)+1) * fileBytes
	if moved > limit {
		t.Fatalf("moved %d bytes over %d passes, exceeds envelope %d", moved, passes, limit)
	}
}

func TestQuickSortEqualsInMemory(t *testing.T) {
	f := func(seed int64, nRaw uint16, memRaw uint8) bool {
		n := int(nRaw%3000) + 2
		d := newDisk()
		tb := randomTable(seed, n, 3, 9)
		want := tb.Clone()
		want.Sort()
		d.Put("f", tb)
		rowBytes := record.RowBytes(3)
		mem := (int(memRaw%100) + 8) * rowBytes
		SortBudget(d, "f", mem, mem/4)
		got := d.MustGet("f")
		if got.Len() != n {
			return false
		}
		// Equal multisets: compare sorted contents and measure mass.
		return got.IsSorted() && got.TotalMeasure() == want.TotalMeasure() &&
			sameSortedRows(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// sameSortedRows checks both sorted tables have identical dimension rows
// (measures may be permuted within equal-key runs by unstable sorting).
func sameSortedRows(a, b *record.Table) bool {
	if a.Len() != b.Len() || a.D != b.D {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if record.CompareTables(a, i, b, i, a.D) != 0 {
			return false
		}
	}
	return true
}

func TestPassCountMatchesTheory(t *testing.T) {
	// With r runs and fan-in f, passes should be ceil(log_f r).
	d := newDisk()
	n := 4096
	rowBytes := record.RowBytes(2)
	memRows := 64
	mem := memRows * rowBytes
	block := mem / 8 // fan-in = 8-1 = 7
	d.Put("f", randomTable(5, n, 2, 1000))
	passes := SortBudget(d, "f", mem, block)
	runs := (n + memRows - 1) / memRows // 64 runs
	fanIn := mem/block - 1
	want := int(math.Ceil(math.Log(float64(runs)) / math.Log(float64(fanIn))))
	if passes != want {
		t.Fatalf("passes = %d, want %d (runs=%d fanIn=%d)", passes, want, runs, fanIn)
	}
}
