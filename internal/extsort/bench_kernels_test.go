package extsort

import (
	"testing"

	"repro/internal/record"
)

func benchExternalSort(b *testing.B, on bool) {
	b.Helper()
	prev := record.SetKernelsEnabled(on)
	defer record.SetKernelsEnabled(prev)
	n := 50_000
	src := randomTable(17, n, 4, 1000)
	rowBytes := record.RowBytes(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := newDisk()
		d.Put("f", src.Clone())
		b.StartTimer()
		SortBudget(d, "f", 4096*rowBytes, 256*rowBytes)
	}
	b.SetBytes(int64(n * rowBytes))
}

func BenchmarkExternalSortKernels(b *testing.B) { benchExternalSort(b, true) }
func BenchmarkExternalSortHeap(b *testing.B)    { benchExternalSort(b, false) }
