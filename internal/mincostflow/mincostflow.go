// Package mincostflow implements minimum-cost maximum-flow via
// successive shortest augmenting paths. It stands in for the LEDA graph
// and matching routines the paper's implementation used [13]: Pipesort's
// per-level schedule construction reduces to a minimum-cost bipartite
// assignment, which package pipesort expresses as a flow network over
// this package.
//
// Capacities are integers; costs are non-negative float64 per unit of
// flow. Graph sizes here are small (lattice levels have at most a few
// hundred views), so the simple SPFA-based search is more than fast
// enough and exact.
package mincostflow

import (
	"fmt"
	"math"
)

// Graph is a flow network under construction. Nodes are dense integers
// [0, n).
type Graph struct {
	n     int
	head  []int // head[v] = first edge index of v's adjacency list, -1 if none
	next  []int // next[e] = next edge in the same list
	to    []int
	cap   []int
	cost  []float64
	flows []int
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("mincostflow: negative node count %d", n))
	}
	head := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{n: n, head: head}
}

// AddEdge adds a directed edge from->to with the given capacity and
// per-unit cost, returning an edge handle usable with Flow after
// solving. The reverse (residual) edge is added automatically.
func (g *Graph) AddEdge(from, to, capacity int, cost float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("mincostflow: edge %d->%d out of range (n=%d)", from, to, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("mincostflow: negative capacity %d", capacity))
	}
	if cost < 0 {
		panic(fmt.Sprintf("mincostflow: negative cost %v", cost))
	}
	id := len(g.to)
	g.addHalf(from, to, capacity, cost)
	g.addHalf(to, from, 0, -cost)
	return id
}

func (g *Graph) addHalf(from, to, capacity int, cost float64) {
	g.to = append(g.to, to)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
	g.flows = append(g.flows, 0)
	g.next = append(g.next, g.head[from])
	g.head[from] = len(g.to) - 1
}

// Flow returns the flow pushed through the edge with the given handle.
func (g *Graph) Flow(edge int) int { return g.flows[edge] }

// Solve computes a minimum-cost maximum flow from s to t and returns
// the total flow and its total cost.
func (g *Graph) Solve(s, t int) (flow int, cost float64) {
	if s == t {
		panic("mincostflow: source equals sink")
	}
	dist := make([]float64, g.n)
	inQueue := make([]bool, g.n)
	prevEdge := make([]int, g.n)
	for {
		// SPFA shortest path on residual costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for e := g.head[u]; e != -1; e = g.next[e] {
				if g.cap[e] <= 0 {
					continue
				}
				v := g.to[e]
				if nd := dist[u] + g.cost[e]; nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						queue = append(queue, v)
						inQueue[v] = true
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return flow, cost
		}
		// Bottleneck along the path.
		push := math.MaxInt
		for v := t; v != s; {
			e := prevEdge[v]
			if g.cap[e] < push {
				push = g.cap[e]
			}
			v = g.to[e^1]
		}
		// Augment.
		for v := t; v != s; {
			e := prevEdge[v]
			g.cap[e] -= push
			g.cap[e^1] += push
			g.flows[e] += push
			g.flows[e^1] -= push
			v = g.to[e^1]
		}
		flow += push
		cost += float64(push) * dist[t]
	}
}

// AssignmentEdge describes one admissible (agent, task) pair for
// Assignment; each edge can carry one task.
type AssignmentEdge struct {
	Agent, Task int
	Cost        float64
}

// Assignment solves a min-cost assignment of tasks to agents: every
// task (0..len per agentCaps semantics) must be matched through exactly
// one admissible edge. agentCaps[a] bounds how many tasks agent a may
// take in total (0 or negative means unlimited). Pipesort uses one
// capacity-1 "scan" agent and one unlimited "sort" agent per parent
// view. It returns, for each task, the index into edges of the edge
// that carried it, or an error if some task cannot be assigned.
func Assignment(agentCaps []int, tasks int, edges []AssignmentEdge) ([]int, float64, error) {
	agents := len(agentCaps)
	// Node layout: 0 = source, 1..agents = agent nodes,
	// agents+1..agents+tasks = task nodes, last = sink.
	src := 0
	sink := agents + tasks + 1
	g := New(agents + tasks + 2)
	handles := make([]int, len(edges))
	demand := make([]int, agents) // number of admissible edges per agent
	for i, e := range edges {
		if e.Agent < 0 || e.Agent >= agents || e.Task < 0 || e.Task >= tasks {
			return nil, 0, fmt.Errorf("mincostflow: edge %d out of range", i)
		}
		handles[i] = g.AddEdge(1+e.Agent, 1+agents+e.Task, 1, e.Cost)
		demand[e.Agent]++
	}
	for a := 0; a < agents; a++ {
		c := agentCaps[a]
		if c <= 0 || c > demand[a] {
			c = demand[a]
		}
		if c > 0 {
			g.AddEdge(src, 1+a, c, 0)
		}
	}
	for t := 0; t < tasks; t++ {
		g.AddEdge(1+agents+t, sink, 1, 0)
	}
	flow, cost := g.Solve(src, sink)
	if flow != tasks {
		return nil, 0, fmt.Errorf("mincostflow: only %d of %d tasks assignable", flow, tasks)
	}
	pick := make([]int, tasks)
	for i := range pick {
		pick[i] = -1
	}
	for i := range edges {
		if g.Flow(handles[i]) > 0 {
			pick[edges[i].Task] = i
		}
	}
	for t, p := range pick {
		if p == -1 {
			return nil, 0, fmt.Errorf("mincostflow: task %d unassigned despite full flow", t)
		}
	}
	return pick, cost, nil
}
