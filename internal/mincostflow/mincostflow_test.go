package mincostflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleMaxFlow(t *testing.T) {
	// Classic diamond: s=0, t=3.
	g := New(4)
	g.AddEdge(0, 1, 10, 0)
	g.AddEdge(0, 2, 10, 0)
	g.AddEdge(1, 3, 10, 0)
	g.AddEdge(2, 3, 10, 0)
	g.AddEdge(1, 2, 5, 0)
	flow, cost := g.Solve(0, 3)
	if flow != 20 || cost != 0 {
		t.Fatalf("flow=%d cost=%v, want 20, 0", flow, cost)
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two parallel paths, one cheap with limited capacity.
	g := New(4)
	cheap := g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 0)
	expensive := g.AddEdge(0, 2, 5, 10)
	g.AddEdge(2, 3, 5, 0)
	flow, cost := g.Solve(0, 3)
	if flow != 6 {
		t.Fatalf("flow = %d, want 6", flow)
	}
	if cost != 1*1+5*10 {
		t.Fatalf("cost = %v, want 51", cost)
	}
	if g.Flow(cheap) != 1 || g.Flow(expensive) != 5 {
		t.Fatalf("edge flows %d/%d", g.Flow(cheap), g.Flow(expensive))
	}
}

func TestNegativeResidualRerouting(t *testing.T) {
	// Requires flow cancellation: the naive greedy path is suboptimal.
	//   0->1 (1, $1), 0->2 (1, $2), 1->3 (1, $2), 2->3 (1, $1), 1->2 (1, $0)
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 2)
	g.AddEdge(1, 3, 1, 2)
	g.AddEdge(2, 3, 1, 1)
	g.AddEdge(1, 2, 1, 0)
	flow, cost := g.Solve(0, 3)
	if flow != 2 {
		t.Fatalf("flow = %d, want 2", flow)
	}
	// Optimal: 0->1->2->3 ($2) + 0->2..? capacity forces 0->1->3 and
	// 0->2->3 = $3+$3=$6? Min over routings of 2 units: $2 (0-1-2-3) +
	// $4 (0-2 full? no cap). Enumerate: units must use 0->1 and 0->2.
	// unit A: 0->1->3 ($3) or 0->1->2->3 ($2); unit B: 0->2->3 ($3).
	// If A takes 1->2 then B cannot (2->3 cap 1). So min = $3 + $3 = 6?
	// A=0->1->2->3 ($2) blocks 2->3, forcing B=0->2->? stuck. So both
	// 2-unit solutions cost 3+3=6.
	if cost != 6 {
		t.Fatalf("cost = %v, want 6", cost)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5, 1)
	flow, cost := g.Solve(0, 2)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%d cost=%v, want 0,0", flow, cost)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.AddEdge(-1, 0, 1, 0) },
		func() { g.AddEdge(0, 2, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
		func() { g.AddEdge(0, 1, 1, -2) },
		func() { g.Solve(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAssignmentBasic(t *testing.T) {
	// 2 agents, 3 tasks. Agent 0 cheap but capacity 1; agent 1 unlimited.
	caps := []int{1, 0}
	edges := []AssignmentEdge{
		{Agent: 0, Task: 0, Cost: 1},
		{Agent: 0, Task: 1, Cost: 1},
		{Agent: 0, Task: 2, Cost: 1},
		{Agent: 1, Task: 0, Cost: 5},
		{Agent: 1, Task: 1, Cost: 5},
		{Agent: 1, Task: 2, Cost: 5},
	}
	pick, cost, err := Assignment(caps, 3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1+5+5 {
		t.Fatalf("cost = %v, want 11", cost)
	}
	fromAgent0 := 0
	for task, e := range pick {
		if edges[e].Task != task {
			t.Fatalf("task %d got edge %d for task %d", task, e, edges[e].Task)
		}
		if edges[e].Agent == 0 {
			fromAgent0++
		}
	}
	if fromAgent0 != 1 {
		t.Fatalf("agent 0 used %d times, capacity 1", fromAgent0)
	}
}

func TestAssignmentInfeasible(t *testing.T) {
	_, _, err := Assignment([]int{1}, 2, []AssignmentEdge{{Agent: 0, Task: 0, Cost: 1}})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestAssignmentRejectsBadEdges(t *testing.T) {
	_, _, err := Assignment([]int{1}, 1, []AssignmentEdge{{Agent: 2, Task: 0}})
	if err == nil {
		t.Fatal("expected range error")
	}
}

// bruteAssignment enumerates all assignments for tiny instances.
func bruteAssignment(caps []int, tasks int, edges []AssignmentEdge) float64 {
	best := math.Inf(1)
	used := make([]int, len(caps))
	var rec func(task int, cost float64)
	rec = func(task int, cost float64) {
		if cost >= best {
			return
		}
		if task == tasks {
			best = cost
			return
		}
		for _, e := range edges {
			if e.Task != task {
				continue
			}
			if caps[e.Agent] > 0 && used[e.Agent] >= caps[e.Agent] {
				continue
			}
			used[e.Agent]++
			rec(task+1, cost+e.Cost)
			used[e.Agent]--
		}
	}
	rec(0, 0)
	return best
}

func TestQuickAssignmentOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		agents := rng.Intn(3) + 2
		tasks := rng.Intn(4) + 1
		caps := make([]int, agents)
		for i := range caps {
			caps[i] = rng.Intn(3) // 0 = unlimited
		}
		var edges []AssignmentEdge
		for a := 0; a < agents; a++ {
			for tk := 0; tk < tasks; tk++ {
				if rng.Intn(4) > 0 {
					edges = append(edges, AssignmentEdge{Agent: a, Task: tk, Cost: float64(rng.Intn(20))})
				}
			}
		}
		want := bruteAssignment(caps, tasks, edges)
		pick, got, err := Assignment(caps, tasks, edges)
		if math.IsInf(want, 1) {
			return err != nil
		}
		if err != nil {
			return false
		}
		// Verify pick consistency and capacity respect.
		used := make([]int, agents)
		var sum float64
		for task, e := range pick {
			if edges[e].Task != task {
				return false
			}
			used[edges[e].Agent]++
			sum += edges[e].Cost
		}
		for a, u := range used {
			if caps[a] > 0 && u > caps[a] {
				return false
			}
		}
		return math.Abs(got-want) < 1e-9 && math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		g := New(n)
		var handles []int
		type edge struct{ from, to int }
		var meta []edge
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			handles = append(handles, g.AddEdge(a, b, rng.Intn(5), float64(rng.Intn(10))))
			meta = append(meta, edge{a, b})
		}
		flow, _ := g.Solve(0, n-1)
		// Conservation at internal nodes.
		net := make([]int, n)
		for i, h := range handles {
			f := g.Flow(h)
			if f < 0 {
				return false
			}
			net[meta[i].from] -= f
			net[meta[i].to] += f
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				return false
			}
		}
		return net[n-1] == flow && net[0] == -flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
