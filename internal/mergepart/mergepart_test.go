package mergepart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/record"
)

// runMergeView distributes parts (already in each processor's
// localOrder layout, locally sorted and duplicate-free), merges, and
// returns the final parts plus per-processor results.
func runMergeView(t *testing.T, parts []*record.Table, view lattice.ViewID, localOrders []lattice.Order, targetOrder, globalOrder lattice.Order, gamma float64) ([]*record.Table, []ViewResult) {
	t.Helper()
	p := len(parts)
	m := cluster.New(p, costmodel.Default())
	results := make([]ViewResult, p)
	for i, tb := range parts {
		m.Proc(i).Disk().Put("v", tb)
	}
	m.Run(func(pr *cluster.Proc) {
		results[pr.Rank()] = MergeView(pr, "v", view, localOrders[pr.Rank()], targetOrder, globalOrder, gamma)
	})
	out := make([]*record.Table, p)
	for i := 0; i < p; i++ {
		out[i] = m.Proc(i).Disk().MustGet("v")
	}
	return out, results
}

// checkMerged verifies the merged distribution against the aggregated
// union of the inputs (all expressed in target layout).
func checkMerged(t *testing.T, out []*record.Table, inputsInTarget []*record.Table) {
	t.Helper()
	union := record.New(inputsInTarget[0].D, 0)
	for _, tb := range inputsInTarget {
		union.AppendTable(tb)
	}
	want := record.SortAggregate(union)
	concat := record.New(want.D, 0)
	for i, tb := range out {
		if !tb.IsSorted() {
			t.Fatalf("part %d not sorted", i)
		}
		for r := 1; r < tb.Len(); r++ {
			if tb.Compare(r-1, r, tb.D) == 0 {
				t.Fatalf("part %d has local duplicates", i)
			}
		}
		if i > 0 && out[i-1].Len() > 0 && tb.Len() > 0 {
			c := record.CompareTables(out[i-1], out[i-1].Len()-1, tb, 0, tb.D)
			if c >= 0 {
				t.Fatalf("parts %d/%d overlap or out of order", i-1, i)
			}
		}
		concat.AppendTable(tb)
	}
	if !record.Equal(concat, want) {
		t.Fatalf("merged rows differ from ground truth:\ngot  %v\nwant %v", concat, want)
	}
}

func mustParse(s string) lattice.ViewID {
	v, err := lattice.ParseView(s)
	if err != nil {
		panic(err)
	}
	return v
}

func sameOrders(p int, o lattice.Order) []lattice.Order {
	out := make([]lattice.Order, p)
	for i := range out {
		out[i] = o
	}
	return out
}

func TestCase1PrefixBoundaryMerge(t *testing.T) {
	// Global order ABC; view AB is a prefix view. Keys globally sorted
	// across 3 processors with a duplicate key at each boundary.
	ab := mustParse("AB")
	order := lattice.Order{0, 1}
	global := lattice.Order{0, 1, 2}
	parts := []*record.Table{
		record.FromRows(2, [][]uint32{{1, 1}, {2, 2}}, []int64{5, 7}),
		record.FromRows(2, [][]uint32{{2, 2}, {3, 3}}, []int64{1, 2}),
		record.FromRows(2, [][]uint32{{3, 3}, {4, 4}}, []int64{3, 4}),
	}
	inputs := []*record.Table{parts[0].Clone(), parts[1].Clone(), parts[2].Clone()}
	out, res := runMergeView(t, parts, ab, sameOrders(3, order), order, global, 0.03)
	for _, r := range res {
		if r.Case != CasePrefix {
			t.Fatalf("case = %v, want prefix", r.Case)
		}
		if r.Resorted {
			t.Fatal("no resort expected")
		}
	}
	checkMerged(t, out, inputs)
	// Boundary sums: key (2,2) = 8, key (3,3) = 5.
	if out[0].Len() != 2 || out[0].Meas(1) != 8 {
		t.Fatalf("boundary merge wrong: %v", out[0])
	}
}

func TestCase1KeySpanningManyProcessors(t *testing.T) {
	// One key occupies four consecutive processors; the cascade must
	// collapse it fully (the literal one-shot exchange of the paper's
	// prose would leave residue).
	v := mustParse("A")
	order := lattice.Order{0}
	global := lattice.Order{0, 1}
	parts := []*record.Table{
		record.FromRows(1, [][]uint32{{5}}, []int64{1}),
		record.FromRows(1, [][]uint32{{5}}, []int64{2}),
		record.FromRows(1, [][]uint32{{5}}, []int64{3}),
		record.FromRows(1, [][]uint32{{5}, {6}}, []int64{4, 9}),
	}
	inputs := make([]*record.Table, len(parts))
	for i, p := range parts {
		inputs[i] = p.Clone()
	}
	out, _ := runMergeView(t, parts, v, sameOrders(4, order), order, global, 0.03)
	checkMerged(t, out, inputs)
	total := 0
	for _, tb := range out {
		total += tb.Len()
	}
	if total != 2 {
		t.Fatalf("distinct keys after merge = %d, want 2", total)
	}
}

func TestCase1AllView(t *testing.T) {
	// The "all" view: one empty-key row per processor must collapse to
	// a single row holding the grand total.
	parts := []*record.Table{}
	var want int64
	for i := 0; i < 5; i++ {
		tb := record.New(0, 1)
		tb.Append(nil, int64(i+1))
		parts = append(parts, tb)
		want += int64(i + 1)
	}
	out, res := runMergeView(t, parts, lattice.Empty, sameOrders(5, lattice.Order{}), lattice.Order{}, lattice.Order{0, 1, 2}, 0.03)
	rows := 0
	var got int64
	for _, tb := range out {
		rows += tb.Len()
		if tb.Len() > 0 {
			got = tb.Meas(0)
		}
	}
	if rows != 1 || got != want {
		t.Fatalf("all view: rows=%d total=%d, want 1 row of %d", rows, got, want)
	}
	if res[0].Case != CasePrefix {
		t.Fatalf("all view should be a prefix view, got %v", res[0].Case)
	}
}

func TestCase2OverlapMerge(t *testing.T) {
	// Non-prefix view (order BA against global AB...): parts are mostly
	// range-aligned in the target order with a small spill into the
	// next processor's range — the paper's Figure 4 Case 2 picture.
	v := mustParse("AB")
	order := lattice.Order{1, 0} // BA: not a prefix of the global order
	global := lattice.Order{0, 1, 2}
	rng := rand.New(rand.NewSource(4))
	parts := make([]*record.Table, 4)
	inputs := make([]*record.Table, 4)
	for j := range parts {
		tb := record.New(2, 0)
		seen := map[[2]uint32]bool{}
		for len(seen) < 50 {
			// First (B) column concentrated in this processor's band,
			// with ~10% spilling into the next band.
			b := uint32(10*j + rng.Intn(10))
			if rng.Intn(10) == 0 {
				b = uint32(10*j + 10 + rng.Intn(3))
			}
			k := [2]uint32{b, uint32(rng.Intn(40))}
			if !seen[k] {
				seen[k] = true
				tb.Append(k[:], int64(rng.Intn(5)+1))
			}
		}
		tb.Sort()
		parts[j] = tb
		inputs[j] = tb.Clone()
	}
	out, res := runMergeView(t, parts, v, sameOrders(4, order), order, global, 0.5)
	for _, r := range res {
		if r.Case != CaseOverlap {
			t.Fatalf("case = %v (imbalance %v), want overlap", r.Case, r.Imbalance)
		}
	}
	checkMerged(t, out, inputs)
}

func TestCase3GlobalSortOnImbalance(t *testing.T) {
	// All data on one processor: estimated |v'| is maximally imbalanced,
	// forcing the global sort path.
	v := mustParse("AB")
	order := lattice.Order{1, 0}
	global := lattice.Order{0, 1, 2}
	big := record.New(2, 0)
	for i := 0; i < 400; i++ {
		big.Append([]uint32{uint32(i % 20), uint32(i / 20)}, 1)
	}
	big.Sort()
	parts := []*record.Table{big, record.New(2, 0), record.New(2, 0), record.New(2, 0)}
	inputs := []*record.Table{big.Clone(), record.New(2, 0), record.New(2, 0), record.New(2, 0)}
	out, res := runMergeView(t, parts, v, sameOrders(4, order), order, global, 0.03)
	for _, r := range res {
		if r.Case != CaseGlobalSort {
			t.Fatalf("case = %v, want global sort", r.Case)
		}
	}
	checkMerged(t, out, inputs)
	// The sample sort must have rebalanced.
	sizes := make([]int, 4)
	for i, tb := range out {
		sizes[i] = tb.Len()
	}
	for _, s := range sizes {
		if s < 80 || s > 120 {
			t.Fatalf("post-case-3 sizes %v not balanced", sizes)
		}
	}
}

func TestResortInLocalTreeMode(t *testing.T) {
	// Processor 1 materialized the view as AB while the agreed target
	// is BA; it must re-sort before merging.
	v := mustParse("AB")
	target := lattice.Order{1, 0}
	global := lattice.Order{0, 1, 2}
	// Part 0 in BA layout already.
	p0 := record.FromRows(2, [][]uint32{{1, 3}, {2, 1}}, []int64{1, 2}) // (B,A) rows
	// Part 1 in AB layout: rows (A,B) = (3,5), (9,0).
	p1 := record.FromRows(2, [][]uint32{{3, 5}, {9, 0}}, []int64{3, 4})
	orders := []lattice.Order{{1, 0}, {0, 1}}
	// Inputs in target layout: p1's rows become (B,A) = (5,3), (0,9).
	in1 := record.FromRows(2, [][]uint32{{5, 3}, {0, 9}}, []int64{3, 4})
	in1.Sort()
	out, res := runMergeView(t, []*record.Table{p0, p1}, v, orders, target, global, 0.9)
	if res[0].Resorted || !res[1].Resorted {
		t.Fatalf("resort flags wrong: %v %v", res[0].Resorted, res[1].Resorted)
	}
	checkMerged(t, out, []*record.Table{p0.Clone(), in1})
}

func TestSingleProcessorNoOp(t *testing.T) {
	v := mustParse("AB")
	order := lattice.Order{1, 0}
	tb := record.FromRows(2, [][]uint32{{1, 1}, {2, 2}}, []int64{1, 2})
	inputs := []*record.Table{tb.Clone()}
	out, res := runMergeView(t, []*record.Table{tb}, v, sameOrders(1, order), order, lattice.Order{0, 1, 2}, 0.03)
	checkMerged(t, out, inputs)
	if res[0].Rows != 2 {
		t.Fatalf("rows = %d", res[0].Rows)
	}
}

func TestAllEmpty(t *testing.T) {
	v := mustParse("AB")
	order := lattice.Order{1, 0}
	parts := []*record.Table{record.New(2, 0), record.New(2, 0), record.New(2, 0)}
	out, _ := runMergeView(t, parts, v, sameOrders(3, order), order, lattice.Order{0, 1, 2}, 0.03)
	for _, tb := range out {
		if tb.Len() != 0 {
			t.Fatal("empty merge produced rows")
		}
	}
}

func TestQuickMergeRandomDistributions(t *testing.T) {
	// Random local aggregates of a shared underlying data set, random
	// placement; any gamma. The merged result must always equal the
	// group-by of the union.
	f := func(seed int64, pRaw, gammaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := int(pRaw%5) + 1
		gamma := float64(gammaRaw%50) / 100
		order := lattice.Order{1, 0}
		global := lattice.Order{0, 1, 2}
		parts := make([]*record.Table, p)
		inputs := make([]*record.Table, p)
		for j := 0; j < p; j++ {
			tb := record.New(2, 0)
			used := map[[2]uint32]bool{}
			rows := rng.Intn(60)
			for len(used) < rows {
				k := [2]uint32{uint32(rng.Intn(10)), uint32(rng.Intn(10))}
				if !used[k] {
					used[k] = true
					tb.Append(k[:], int64(rng.Intn(9)+1))
				}
			}
			tb.Sort()
			parts[j] = tb
			inputs[j] = tb.Clone()
		}
		m := cluster.New(p, costmodel.Default())
		for i, tb := range parts {
			m.Proc(i).Disk().Put("v", tb)
		}
		m.Run(func(pr *cluster.Proc) {
			MergeView(pr, "v", mustParse("AB"), order, order, global, gamma)
		})
		union := record.New(2, 0)
		concat := record.New(2, 0)
		prevLast := -1
		for i := 0; i < p; i++ {
			union.AppendTable(inputs[i])
			tb := m.Proc(i).Disk().MustGet("v")
			if !tb.IsSorted() {
				return false
			}
			if tb.Len() > 0 && prevLast >= 0 {
				if record.CompareTables(concat, prevLast, tb, 0, 2) >= 0 {
					return false
				}
			}
			concat.AppendTable(tb)
			if tb.Len() > 0 {
				prevLast = concat.Len() - 1
			}
		}
		want := record.SortAggregate(union)
		return record.Equal(concat, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceEstimateAccuracy(t *testing.T) {
	// Perfectly range-partitioned parts of equal size: the sampled |v'|
	// totals must report (near) zero imbalance and take Case 2. The
	// paper's argument: a 100p-element spaced sample gives ~1/p%
	// accuracy on each |v'j|, plenty for a percent-level test.
	v := mustParse("AB")
	order := lattice.Order{1, 0}
	global := lattice.Order{0, 1, 2}
	p := 4
	parts := make([]*record.Table, p)
	inputs := make([]*record.Table, p)
	for j := 0; j < p; j++ {
		tb := record.New(2, 0)
		for b := 10 * j; b < 10*(j+1); b++ {
			for a := 0; a < 20; a++ {
				tb.Append([]uint32{uint32(b), uint32(a)}, 1)
			}
		}
		tb.Sort()
		parts[j] = tb
		inputs[j] = tb.Clone()
	}
	out, res := runMergeView(t, parts, v, sameOrders(p, order), order, global, 0.05)
	for _, r := range res {
		if r.Case != CaseOverlap {
			t.Fatalf("case = %v (I=%v), want overlap", r.Case, r.Imbalance)
		}
		if r.Imbalance > 0.05 {
			t.Fatalf("estimated imbalance %v too high for perfectly partitioned data", r.Imbalance)
		}
	}
	checkMerged(t, out, inputs)
	// Nothing should have moved: each processor keeps its own band.
	for j, tb := range out {
		if tb.Len() != 200 {
			t.Fatalf("processor %d holds %d rows, want 200", j, tb.Len())
		}
	}
}
