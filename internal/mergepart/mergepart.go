// Package mergepart implements Procedure 3 of the paper,
// Merge–Partitions: after every processor has built its local
// Di-partition, the p copies of each view are merged into one view
// evenly distributed over the processors. Three cases (Figure 4):
//
//   - Case 1 (prefix views): the view's materialization order is a
//     prefix of the global sort order, so the concatenation across
//     processors is already globally sorted; only boundary rows can
//     share keys, and a one-row boundary exchange agglomerates them.
//   - Case 2 (non-prefix, balanced): processors exchange the "overlap"
//     runs falling into each other's key ranges, then merge and
//     agglomerate locally. The key ranges come from each processor's
//     last key; overlap sizes are estimated with the online spaced
//     samples of §2.4 so no view is re-scanned.
//   - Case 3 (non-prefix, imbalance > γ): the view is redistributed
//     with a full Adaptive–Sample–Sort (Procedure 2, γ = 3%), locally
//     agglomerated, and boundary-merged.
//
// In local-schedule-tree mode (§2.3/§4.2), processors may have
// materialized a view in different attribute orders; MergeView first
// re-sorts any local copy whose order differs from the agreed target
// order — the expensive step that makes local trees lose to global
// trees.
package mergepart

import (
	"fmt"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/sample"
	"repro/internal/samplesort"
)

// Case identifies the merge strategy applied to a view.
type Case int

const (
	// CasePrefix is Case 1: boundary agglomeration only.
	CasePrefix Case = iota + 1
	// CaseOverlap is Case 2: overlap routing plus local merges.
	CaseOverlap
	// CaseGlobalSort is Case 3: full adaptive sample sort.
	CaseGlobalSort
)

func (c Case) String() string {
	switch c {
	case CasePrefix:
		return "case1-prefix"
	case CaseOverlap:
		return "case2-overlap"
	case CaseGlobalSort:
		return "case3-globalsort"
	}
	return fmt.Sprintf("Case(%d)", int(c))
}

// ViewResult reports how one view was merged on this processor.
type ViewResult struct {
	View      lattice.ViewID
	Case      Case
	Resorted  bool    // true if the local copy had to be re-sorted first
	Rows      int     // final local row count
	Imbalance float64 // estimated I(|v'0..v'p-1|) behind the 2/3 decision
}

// MergeView merges one view across all processors (SPMD: every
// processor calls it with the same view, targetOrder, globalOrder and
// gamma). file names the local copy on each disk, sorted in
// localOrder with locally distinct keys. After return, file holds this
// processor's slice of the merged view, sorted in targetOrder, with
// globally distinct keys across processors.
func MergeView(p *cluster.Proc, file string, view lattice.ViewID, localOrder, targetOrder, globalOrder lattice.Order, gamma float64) ViewResult {
	return MergeViewOp(p, file, view, localOrder, targetOrder, globalOrder, gamma, record.OpSum)
}

// MergeViewOp is MergeView with an explicit aggregate operator.
func MergeViewOp(p *cluster.Proc, file string, view lattice.ViewID, localOrder, targetOrder, globalOrder lattice.Order, gamma float64, op record.AggOp) ViewResult {
	return MergeViewAgg(p, file, view, localOrder, targetOrder, globalOrder, gamma, record.Agg{Op: op})
}

// MergeViewAgg is MergeView with sketch state for holistic operators:
// every cross-processor agglomeration combines sketches through this
// processor's combiner and seals before rows ship or land on disk.
func MergeViewAgg(p *cluster.Proc, file string, view lattice.ViewID, localOrder, targetOrder, globalOrder lattice.Order, gamma float64, agg record.Agg) ViewResult {
	res := ViewResult{View: view}
	if !localOrder.Equal(targetOrder) {
		resortLocal(p, file, localOrder, targetOrder)
		res.Resorted = true
	}

	if p.P() == 1 {
		// Nothing to merge: the local copy is the global view.
		if targetOrder.IsPrefixOf(globalOrder) {
			res.Case = CasePrefix
		} else {
			res.Case = CaseOverlap
		}
		res.Rows = p.Disk().Len(file)
		return res
	}

	if targetOrder.IsPrefixOf(globalOrder) {
		res.Case = CasePrefix
		res.Rows = BoundaryAgglomerateAgg(p, file, agg)
		return res
	}

	// Non-prefix: estimate the per-range totals |v'j| from samples.
	last := LastKey(p, file)
	lasts := cluster.AllGather(p, last, record.DimBytes*len(targetOrder))
	ranges := KeyRanges(lasts)
	est := estimateContributions(p, file, ranges)
	totals := cluster.AllReduce(p, est, 8*p.P(), addVectors)
	res.Imbalance = balance.Imbalance(totals)

	if res.Imbalance <= gamma {
		res.Case = CaseOverlap
		res.Rows = overlapMerge(p, file, ranges, agg)
		return res
	}

	res.Case = CaseGlobalSort
	samplesort.SortPresortedAgg(p, file, gamma, agg)
	res.Rows = BoundaryAgglomerateAgg(p, file, agg)
	return res
}

// resortLocal rewrites the local view copy from localOrder into
// targetOrder (projection + external sort), refreshing the sample.
func resortLocal(p *cluster.Proc, file string, localOrder, targetOrder lattice.Order) {
	disk := p.Disk()
	t := disk.MustTake(file)
	cols := targetOrder.ProjectionFrom(localOrder)
	p.Clock().AddCompute(costmodel.ScanOps(t.Len()))
	disk.Put(file, t.Project(cols))
	extsort.Sort(disk, file)
	refreshSample(p, file)
}

// refreshSample rebuilds the file's spaced sample from its current
// contents (used after rewrites; the read is charged).
func refreshSample(p *cluster.Proc, file string) {
	disk := p.Disk()
	t := disk.MustGet(file)
	sm := sample.NewOnline(sampleCap(p))
	sm.AddTable(t)
	disk.SetMeta(file, sm)
}

// sampleCap is the paper's a = 100p, with a small floor.
func sampleCap(p *cluster.Proc) int {
	a := 100 * p.P()
	if a < 16 {
		a = 16
	}
	return a
}

// LastKey reads this processor's final row key, or nil for an empty
// view copy. Exported for the incremental-ingest subsystem, which
// aligns delta slices against the live view's existing boundaries.
func LastKey(p *cluster.Proc, file string) []uint32 {
	disk := p.Disk()
	n := disk.Len(file)
	if n <= 0 {
		return nil
	}
	t := disk.ReadRange(file, n-1, n)
	return t.RowCopy(0)
}

// KeyRange is one processor's merge range (Lo exclusive, Hi inclusive;
// nil bounds are infinite). Empty owners have Owner == false.
type KeyRange struct {
	Owner  bool
	Lo, Hi []uint32
}

// KeyRanges derives the per-processor ranges from the gathered last
// keys: processor j owns (last of previous non-empty, last of j], with
// the final non-empty processor's range extended to +inf.
func KeyRanges(lasts [][]uint32) []KeyRange {
	p := len(lasts)
	ranges := make([]KeyRange, p)
	var prev []uint32
	lastOwner := -1
	for j := 0; j < p; j++ {
		if lasts[j] == nil {
			continue
		}
		ranges[j] = KeyRange{Owner: true, Lo: prev, Hi: lasts[j]}
		prev = lasts[j]
		lastOwner = j
	}
	if lastOwner >= 0 {
		ranges[lastOwner].Hi = nil // extend to +inf
	}
	return ranges
}

// estimateContributions estimates, from this processor's spaced
// sample, how many of its rows fall into each processor's range.
func estimateContributions(p *cluster.Proc, file string, ranges []KeyRange) []int {
	disk := p.Disk()
	est := make([]int, p.P())
	n := disk.Len(file)
	if n <= 0 {
		return est
	}
	sm, ok := disk.Meta(file).(*sample.Online)
	if !ok {
		// No sample captured (e.g. a hand-placed file in tests): build
		// one now; the full read is charged, which is exactly the cost
		// the paper's online sampling avoids.
		refreshSample(p, file)
		sm = disk.Meta(file).(*sample.Online)
	}
	for j, r := range ranges {
		if r.Owner {
			est[j] = sm.EstimateRange(r.Lo, r.Hi)
		}
	}
	return est
}

func addVectors(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// RouteMerge routes every local row of file to its key-range owner
// and merges the received sorted runs — the Case 2 overlap exchange,
// separated from MergeView's case selection. Exported for incremental
// ingest, which reuses it both to align delta roots with the live
// root's slice boundaries and to exchange delta overlap runs before
// two-way merging into non-prefix views.
func RouteMerge(p *cluster.Proc, file string, ranges []KeyRange, op record.AggOp) int {
	return overlapMerge(p, file, ranges, record.Agg{Op: op})
}

// RouteMergeAgg is RouteMerge with sketch state for holistic
// operators.
func RouteMergeAgg(p *cluster.Proc, file string, ranges []KeyRange, agg record.Agg) int {
	return overlapMerge(p, file, ranges, agg)
}

// overlapMerge is Case 2: route every local row to its range owner,
// then merge and agglomerate the received sorted runs. When no rows
// cross processor boundaries the file is left untouched (no rewrite).
func overlapMerge(p *cluster.Proc, file string, ranges []KeyRange, agg record.Agg) int {
	disk := p.Disk()
	t := disk.MustGet(file) // read to route; not yet rewritten
	np := p.P()
	me := p.Rank()
	out := make([]*record.Table, np)
	var kept *record.Table
	lo := 0
	sent := 0
	for j := 0; j < np; j++ {
		if !ranges[j].Owner {
			continue
		}
		hi := t.Len()
		if ranges[j].Hi != nil {
			hi = record.UpperBound(t, ranges[j].Hi)
		}
		if hi < lo {
			hi = lo
		}
		if j == me {
			kept = t.Sub(lo, hi)
		} else if hi > lo {
			out[j] = t.Sub(lo, hi)
			sent += hi - lo
		}
		lo = hi
	}
	in := cluster.AllToAllTables(p, out)
	received := 0
	for j, tb := range in {
		if j != me && tb != nil {
			received += tb.Len()
		}
	}
	if sent == 0 && received == 0 {
		// All rows already in place; the on-disk copy is final.
		return t.Len()
	}
	if kept == nil {
		kept = record.New(t.D, 0)
	}
	in[me] = kept
	total := received + kept.Len()
	p.Clock().AddCompute(costmodel.MergeOps(total, np))
	merged := record.MergeSortedAggregateAgg(in, agg)
	disk.Remove(file)
	disk.Put(file, merged)
	return merged.Len()
}

// boundaryInfo is the per-processor digest exchanged by the boundary
// cascade.
type boundaryInfo struct {
	Len       int
	First     []uint32
	Last      []uint32
	FirstMeas int64
}

// BoundaryAgglomerate merges equal keys across processor boundaries
// for a view whose cross-processor concatenation is globally sorted
// and whose local copies are duplicate-free. It iterates the paper's
// first-item exchange until a fixpoint, which also handles the corner
// case of a single key spanning more than two processors. Only
// boundary rows are read and touched: Case 1 costs point I/O, not a
// view rewrite. Returns the final local row count. Exported for the
// incremental-ingest delta merge, which reuses the same cascade after
// merging delta slices into prefix views.
func BoundaryAgglomerate(p *cluster.Proc, file string, op record.AggOp) int {
	return BoundaryAgglomerateAgg(p, file, record.Agg{Op: op})
}

// BoundaryAgglomerateAgg is BoundaryAgglomerate with sketch state for
// holistic operators. Every measure the cascade combines is sealed
// before it ships in a boundary digest or lands in the view file, and
// digests carrying sketch handles charge the sketch payload bytes.
func BoundaryAgglomerateAgg(p *cluster.Proc, file string, agg record.Agg) int {
	disk := p.Disk()
	np := p.P()
	n := disk.Len(file)
	cols := disk.Cols(file)
	if np == 1 {
		return n
	}
	front := 0
	var firstKey, lastKey []uint32
	var firstMeas, pending int64
	hasPending := false
	readFront := func() {
		if front < n {
			row := disk.ReadRange(file, front, front+1)
			firstKey = row.RowCopy(0)
			firstMeas = row.Meas(0)
		} else {
			firstKey = nil
		}
	}
	if n > 0 {
		readFront()
		row := disk.ReadRange(file, n-1, n)
		lastKey = row.RowCopy(0)
	}
	infoBytes := 8 + 8 + 2*record.DimBytes*cols
	for {
		my := boundaryInfo{Len: n - front}
		if my.Len > 0 {
			my.First = firstKey
			my.Last = lastKey
			my.FirstMeas = firstMeas
			if front == n-1 && hasPending {
				// Single remaining row: any measure absorbed from the
				// right lives in this row and must travel with it. The
				// combine lands only in the shipped digest — local
				// pending state is untouched in case the row stays.
				my.FirstMeas = agg.Seal(agg.Combine(my.FirstMeas, pending))
			}
		}
		// Sketch-backed measures ship their serialized state with the
		// digest; charge it on top of the fixed digest layout.
		infos := cluster.AllGather(p, my, infoBytes+agg.StateBytes(my.FirstMeas))

		// Deterministic matching, identical on every processor: each
		// non-empty processor j whose first key equals the last key of
		// its nearest non-empty predecessor i sends that first item
		// left; i absorbs its measure. A predecessor that is itself
		// dropping its only row cannot absorb this round.
		dropFirst := make([]bool, np)
		absorb := make([]int64, np)
		hasAbsorb := make([]bool, np)
		any := false
		for j := 1; j < np; j++ {
			if infos[j].Len == 0 {
				continue
			}
			i := j - 1
			for i >= 0 && infos[i].Len == 0 {
				i--
			}
			if i < 0 {
				continue
			}
			if record.CompareKeys(infos[i].Last, infos[j].First) != 0 {
				continue
			}
			if dropFirst[i] && infos[i].Len == 1 {
				continue
			}
			dropFirst[j] = true
			// At most one j absorbs into a given i per round (the next
			// candidate's nearest non-empty predecessor is j itself).
			absorb[i] = infos[j].FirstMeas
			hasAbsorb[i] = true
			any = true
		}
		if !any {
			break
		}
		me := p.Rank()
		if hasAbsorb[me] {
			if hasPending {
				pending = agg.Seal(agg.Combine(pending, absorb[me]))
			} else {
				pending = absorb[me]
				hasPending = true
			}
		}
		if dropFirst[me] {
			front++
			readFront()
		}
	}
	if front > 0 || hasPending {
		f, d, hp := front, pending, hasPending
		disk.Mutate(file, record.RowBytes(cols), func(t *record.Table) *record.Table {
			if hp {
				last := t.Len() - 1
				t.SetMeas(last, agg.Seal(agg.Combine(t.Meas(last), d)))
			}
			if f > 0 {
				t = t.Sub(f, t.Len())
			}
			return t
		})
	}
	return n - front
}
