// Package estimate provides the view-size estimators that drive
// schedule-tree construction. Pipesort labels every lattice edge with
// costs derived from estimated view sizes (the paper cites Shukla et
// al. [21] for the analytic approach and Flajolet–Martin [6] for
// probabilistic counting); this package implements both:
//
//   - Cardenas: the classic balls-in-cells formula. The expected number
//     of distinct groups when n rows fall uniformly into C possible
//     attribute combinations is C * (1 - (1 - 1/C)^n).
//   - FM: Flajolet–Martin probabilistic counting (PCSA) sketches built
//     by scanning the actual data, robust to skew and correlation.
//
// Both implement Sizer, keyed by lattice.ViewID.
package estimate

import (
	"math"

	"repro/internal/lattice"
	"repro/internal/record"
)

// Sizer estimates the number of rows (distinct attribute combinations)
// of a view.
type Sizer interface {
	EstimateView(v lattice.ViewID) float64
}

// Cardenas returns the expected number of occupied cells when n items
// are placed uniformly at random into cells cells.
func Cardenas(n int64, cells float64) float64 {
	if n <= 0 || cells <= 0 {
		return 0
	}
	if cells == 1 {
		return 1
	}
	// cells * (1 - (1-1/cells)^n), computed stably in log space.
	exponent := float64(n) * math.Log1p(-1/cells)
	est := cells * -math.Expm1(exponent)
	if est > float64(n) {
		est = float64(n)
	}
	if est < 1 {
		est = 1
	}
	return est
}

// CardenasSizer estimates view sizes analytically from per-dimension
// cardinalities and the input row count.
type CardenasSizer struct {
	n     int64
	cards []float64 // cards[i] = |Di|
}

// NewCardenas builds a sizer for n input rows with the given
// per-dimension cardinalities (indexed by dimension).
func NewCardenas(n int64, cards []int) *CardenasSizer {
	cs := &CardenasSizer{n: n, cards: make([]float64, len(cards))}
	for i, c := range cards {
		if c < 1 {
			c = 1
		}
		cs.cards[i] = float64(c)
	}
	return cs
}

// EstimateView implements Sizer.
func (cs *CardenasSizer) EstimateView(v lattice.ViewID) float64 {
	if v == lattice.Empty {
		return 1
	}
	cells := 1.0
	for _, i := range v.Dims() {
		if i >= len(cs.cards) {
			// Unknown dimension: be conservative, assume no reduction.
			return float64(cs.n)
		}
		cells *= cs.cards[i]
		if cells > 1e18 {
			// Combination space vastly exceeds any input; size = n.
			return float64(cs.n)
		}
	}
	return Cardenas(cs.n, cells)
}

// MeasureCardinalities returns the exact per-dimension distinct counts
// of a table whose columns follow the given order; result is indexed by
// dimension. It is a single scan with hashing, the cheap statistics
// pass a planner performs on its local data.
func MeasureCardinalities(t *record.Table, order lattice.Order) []int {
	maxDim := -1
	for _, d := range order {
		if d > maxDim {
			maxDim = d
		}
	}
	out := make([]int, maxDim+1)
	for c, d := range order {
		seen := make(map[uint32]struct{})
		n := t.Len()
		for i := 0; i < n; i++ {
			seen[t.Dim(i, c)] = struct{}{}
		}
		out[d] = len(seen)
	}
	return out
}
