package estimate

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// fmOf sketches the hashes of n seeded pseudo-random items.
func fmOf(m int, seed int64, n int) *FMSketch {
	rng := rand.New(rand.NewSource(seed))
	s := NewFMSketch(m)
	for i := 0; i < n; i++ {
		s.Add(Hash64(rng.Uint64()))
	}
	return s
}

// TestFMMergeCommutativeAssociative: union semantics make merge order
// irrelevant — A∪B = B∪A and (A∪B)∪C = A∪(B∪C), bit for bit.
func TestFMMergeCommutativeAssociative(t *testing.T) {
	const m = 64
	a := fmOf(m, 1, 500)
	b := fmOf(m, 2, 2000)
	c := fmOf(m, 3, 50)

	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !bytes.Equal(ab.AppendBinary(nil), ba.AppendBinary(nil)) {
		t.Fatal("merge is not commutative")
	}

	abc := ab.Clone()
	abc.Merge(c)
	bc := b.Clone()
	bc.Merge(c)
	aBC := a.Clone()
	aBC.Merge(bc)
	if !bytes.Equal(abc.AppendBinary(nil), aBC.AppendBinary(nil)) {
		t.Fatal("merge is not associative")
	}

	// Idempotence: merging a sketch with itself changes nothing.
	aa := a.Clone()
	aa.Merge(a)
	if !bytes.Equal(aa.AppendBinary(nil), a.AppendBinary(nil)) {
		t.Fatal("merge is not idempotent")
	}
}

func TestFMSerializationRoundTrip(t *testing.T) {
	for _, m := range []int{1, 8, 256} {
		s := fmOf(m, 42, 1000)
		b := s.AppendBinary(nil)
		if len(b) != s.Bytes() {
			t.Fatalf("m=%d: serialized %d bytes, Bytes() says %d", m, len(b), s.Bytes())
		}
		back, err := FMFromBinary(b)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !bytes.Equal(back.AppendBinary(nil), b) {
			t.Fatalf("m=%d: round-trip blob differs", m)
		}
		if back.Estimate() != s.Estimate() {
			t.Fatalf("m=%d: round-trip estimate differs", m)
		}
	}

	for _, bad := range [][]byte{nil, make([]byte, 7), make([]byte, 24)} {
		if _, err := FMFromBinary(bad); err == nil {
			t.Fatalf("blob of %d bytes accepted", len(bad))
		}
	}
}

// TestFMErrorBoundByCardinality checks the estimate at several true
// cardinalities against the PCSA standard error (~0.78/sqrt(m), 2.4%
// at m=1024), from the corrected small range (n ≈ 4m) up. Seeds are
// fixed, so this pins actual behavior; the 10% tolerance is ~4
// standard errors.
func TestFMErrorBoundByCardinality(t *testing.T) {
	const m = 1024
	for _, n := range []int{4096, 20000, 100000, 500000} {
		s := fmOf(m, int64(n), n)
		est := s.Estimate()
		rel := math.Abs(est-float64(n)) / float64(n)
		if rel > 0.10 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f > 0.10)", n, est, rel)
		}
	}
}

// TestHash64Distributes sanity-checks the scalar hash: distinct inputs
// rarely collide and low bits are usable for bucket selection.
func TestHash64Distributes(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	var buckets [16]int
	for i := uint64(0); i < 10000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
		buckets[h&15]++
	}
	for b, n := range buckets {
		if n < 400 || n > 850 { // ~625 expected
			t.Fatalf("bucket %d has %d of 10000 (poorly mixed low bits)", b, n)
		}
	}
}
