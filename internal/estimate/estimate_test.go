package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/record"
)

func TestCardenasBasics(t *testing.T) {
	if got := Cardenas(0, 100); got != 0 {
		t.Fatalf("Cardenas(0,100) = %v", got)
	}
	if got := Cardenas(100, 1); got != 1 {
		t.Fatalf("Cardenas(100,1) = %v", got)
	}
	// n >> cells: essentially all cells occupied.
	if got := Cardenas(1e6, 100); math.Abs(got-100) > 1e-6 {
		t.Fatalf("Cardenas(1e6,100) = %v, want ~100", got)
	}
	// cells >> n: essentially all rows distinct.
	if got := Cardenas(100, 1e12); math.Abs(got-100) > 0.01 {
		t.Fatalf("Cardenas(100,1e12) = %v, want ~100", got)
	}
	// Never exceeds n.
	if got := Cardenas(10, 1e18); got > 10 {
		t.Fatalf("Cardenas exceeded n: %v", got)
	}
}

func TestCardenasMonotone(t *testing.T) {
	f := func(nRaw uint16, cRaw uint16) bool {
		n := int64(nRaw) + 1
		c := float64(cRaw) + 1
		v := Cardenas(n, c)
		return v >= Cardenas(n-1, c)-1e-9 && v <= Cardenas(n, c+1)+c*1e-9 && v <= float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCardenasSizer(t *testing.T) {
	// d=3, cards 10, 5, 2; n = 10000 (saturating every view).
	cs := NewCardenas(10000, []int{10, 5, 2})
	abc := lattice.Full(3)
	if got := cs.EstimateView(abc); math.Abs(got-100) > 1 {
		t.Fatalf("ABC estimate %v, want ~100", got)
	}
	a := lattice.Empty.Add(0)
	if got := cs.EstimateView(a); math.Abs(got-10) > 0.1 {
		t.Fatalf("A estimate %v, want ~10", got)
	}
	if got := cs.EstimateView(lattice.Empty); got != 1 {
		t.Fatalf("all estimate %v, want 1", got)
	}
	// Estimates must be monotone in the subset order (supersets are
	// at least as large for saturated uniform data).
	ab := a.Add(1)
	if cs.EstimateView(ab) < cs.EstimateView(a) {
		t.Fatal("superset view estimated smaller")
	}
}

func TestCardenasSizerSmallN(t *testing.T) {
	// Tiny n: view sizes capped by n.
	cs := NewCardenas(10, []int{1000, 1000})
	if got := cs.EstimateView(lattice.Full(2)); got > 10 {
		t.Fatalf("estimate %v exceeds n", got)
	}
}

func TestMeasureCardinalities(t *testing.T) {
	tb := record.FromRows(2, [][]uint32{{1, 7}, {2, 7}, {1, 8}, {3, 7}}, nil)
	// Columns follow order CA (dims 2 and 0).
	cards := MeasureCardinalities(tb, lattice.Order{2, 0})
	if cards[2] != 3 || cards[0] != 2 {
		t.Fatalf("cards = %v, want card(D2)=3 card(D0)=2", cards)
	}
}

func TestFMSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, distinct := range []int{100, 1000, 20000} {
		sk := NewFMSketch(64)
		for i := 0; i < distinct; i++ {
			h := rng.Uint64()
			// Add duplicates too; they must not affect the estimate.
			sk.Add(h)
			sk.Add(h)
		}
		est := sk.Estimate()
		ratio := est / float64(distinct)
		if ratio < 0.6 || ratio > 1.6 {
			t.Fatalf("FM estimate %v for %d distinct (ratio %.2f)", est, distinct, ratio)
		}
	}
}

func TestFMSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := NewFMSketch(64), NewFMSketch(64)
	hs := make([]uint64, 5000)
	for i := range hs {
		hs[i] = rng.Uint64()
	}
	for i, h := range hs {
		if i%2 == 0 {
			a.Add(h)
		} else {
			b.Add(h)
		}
	}
	union := NewFMSketch(64)
	for _, h := range hs {
		union.Add(h)
	}
	a.Merge(b)
	if a.Estimate() != union.Estimate() {
		t.Fatalf("merged estimate %v != union estimate %v", a.Estimate(), union.Estimate())
	}
}

func TestFMSketchValidation(t *testing.T) {
	for _, m := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFMSketch(%d) should panic", m)
				}
			}()
			NewFMSketch(m)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Merge of mismatched sketches should panic")
		}
	}()
	NewFMSketch(8).Merge(NewFMSketch(16))
}

func TestFMSizerAgainstTruth(t *testing.T) {
	// Data over 3 dims with known distinct structure.
	rng := rand.New(rand.NewSource(3))
	n := 20000
	tb := record.New(3, n)
	type key2 struct{ a, b uint32 }
	truthAB := map[key2]struct{}{}
	truthA := map[uint32]struct{}{}
	for i := 0; i < n; i++ {
		a, b, c := uint32(rng.Intn(50)), uint32(rng.Intn(40)), uint32(rng.Intn(30))
		tb.Append([]uint32{a, b, c}, 1)
		truthAB[key2{a, b}] = struct{}{}
		truthA[a] = struct{}{}
	}
	// Table columns follow canonical order ABC.
	f := NewFM(tb, lattice.Order{0, 1, 2}, 64)
	ab := lattice.Empty.Add(0).Add(1)
	est := f.EstimateView(ab)
	if r := est / float64(len(truthAB)); r < 0.5 || r > 2.0 {
		t.Fatalf("AB estimate %v vs truth %d", est, len(truthAB))
	}
	a := lattice.Empty.Add(0)
	est = f.EstimateView(a)
	if r := est / float64(len(truthA)); r < 0.4 || r > 2.5 {
		t.Fatalf("A estimate %v vs truth %d", est, len(truthA))
	}
	if f.EstimateView(lattice.Empty) != 1 {
		t.Fatal("empty view must estimate 1")
	}
	// Cache: second call must not add scan work.
	ops := f.ScanOps
	f.EstimateView(ab)
	if f.ScanOps != ops {
		t.Fatal("cached estimate re-scanned")
	}
}

func TestHashRowRespectsProjection(t *testing.T) {
	tb := record.FromRows(3, [][]uint32{{1, 2, 3}, {1, 9, 3}}, nil)
	// Projected on columns {0,2}, the two rows are identical.
	if HashRow(tb, 0, []int{0, 2}) != HashRow(tb, 1, []int{0, 2}) {
		t.Fatal("equal projections hash differently")
	}
	if HashRow(tb, 0, []int{0, 1}) == HashRow(tb, 1, []int{0, 1}) {
		t.Fatal("different projections collide (astronomically unlikely)")
	}
}
