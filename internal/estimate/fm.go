package estimate

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/lattice"
	"repro/internal/record"
)

// fmPhi is the Flajolet–Martin magic constant correcting the bias of
// the first-zero-bit observable.
const fmPhi = 0.77351

// FMSketch is a Flajolet–Martin PCSA (probabilistic counting with
// stochastic averaging) distinct-count sketch with m bitmaps.
type FMSketch struct {
	maps []uint64
}

// NewFMSketch returns a sketch with m bitmaps; m must be a power of
// two. Larger m reduces variance (standard error ~ 0.78/sqrt(m)).
func NewFMSketch(m int) *FMSketch {
	if m < 1 || m&(m-1) != 0 {
		panic("estimate: FM bitmap count must be a power of two")
	}
	return &FMSketch{maps: make([]uint64, m)}
}

// Add records a hashed item.
func (s *FMSketch) Add(h uint64) {
	m := uint64(len(s.maps))
	idx := h & (m - 1)
	rest := h >> bits.Len64(m-1)
	// rho = position of the lowest set bit of the remaining hash.
	rho := bits.TrailingZeros64(rest | 1<<63)
	s.maps[idx] |= 1 << uint(rho)
}

// fmKappa is the small-range correction exponent (Scheuermann &
// Mauve): the raw PCSA estimator m/phi*2^mean overshoots badly when
// fewer than ~8m items have been added; subtracting 2^(-kappa*mean)
// cancels most of that bias while vanishing for large counts.
const fmKappa = 1.75

// Estimate returns the approximate number of distinct items added.
func (s *FMSketch) Estimate() float64 {
	m := len(s.maps)
	sum := 0
	for _, bm := range s.maps {
		// R = index of lowest zero bit.
		sum += bits.TrailingZeros64(^bm)
	}
	mean := float64(sum) / float64(m)
	return float64(m) / fmPhi * (math.Pow(2, mean) - math.Pow(2, -fmKappa*mean))
}

// Merge unions another sketch of identical shape into s, yielding the
// sketch of the union of the two item sets.
func (s *FMSketch) Merge(o *FMSketch) {
	if len(s.maps) != len(o.maps) {
		panic("estimate: merging FM sketches of different sizes")
	}
	for i := range s.maps {
		s.maps[i] |= o.maps[i]
	}
}

// Bytes returns the modelled wire size of the sketch.
func (s *FMSketch) Bytes() int { return len(s.maps) * 8 }

// Clone returns an independent copy of the sketch.
func (s *FMSketch) Clone() *FMSketch {
	return &FMSketch{maps: append([]uint64(nil), s.maps...)}
}

// AppendBinary appends the sketch's canonical serialized form to dst:
// each bitmap as 8 little-endian bytes. Two sketches that absorbed the
// same item set serialize identically regardless of insertion or merge
// order — the bitmaps are pure unions.
func (s *FMSketch) AppendBinary(dst []byte) []byte {
	for _, bm := range s.maps {
		dst = append(dst,
			byte(bm), byte(bm>>8), byte(bm>>16), byte(bm>>24),
			byte(bm>>32), byte(bm>>40), byte(bm>>48), byte(bm>>56))
	}
	return dst
}

// FMFromBinary reconstructs a sketch from AppendBinary's output.
func FMFromBinary(data []byte) (*FMSketch, error) {
	if len(data) == 0 || len(data)%8 != 0 {
		return nil, fmt.Errorf("estimate: FM sketch blob of %d bytes is not a bitmap array", len(data))
	}
	m := len(data) / 8
	if m&(m-1) != 0 {
		return nil, fmt.Errorf("estimate: FM sketch blob holds %d bitmaps (want a power of two)", m)
	}
	s := &FMSketch{maps: make([]uint64, m)}
	for i := range s.maps {
		b := data[i*8:]
		s.maps[i] = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	}
	return s, nil
}

// Hash64 mixes a single 64-bit value with the splitmix64 finalizer —
// the scalar analogue of HashRow, used to hash raw measure values into
// distinct-count sketches.
func Hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// FMSizer estimates view sizes by scanning a table and sketching each
// requested view's projection. Sketches are built lazily and cached,
// so only views the planner actually asks about cost a scan.
type FMSizer struct {
	t      *record.Table
	order  lattice.Order
	m      int
	cache  map[lattice.ViewID]float64
	colsOf map[lattice.ViewID][]int
	// ScanOps tallies the data passes performed, letting planners
	// charge simulated CPU time for estimation work.
	ScanOps float64
}

// NewFM builds a sizer over a table whose columns follow the given
// attribute order, using sketches of m bitmaps each.
func NewFM(t *record.Table, order lattice.Order, m int) *FMSizer {
	return &FMSizer{
		t: t, order: order, m: m,
		cache:  make(map[lattice.ViewID]float64),
		colsOf: make(map[lattice.ViewID][]int),
	}
}

// EstimateView implements Sizer.
func (f *FMSizer) EstimateView(v lattice.ViewID) float64 {
	if v == lattice.Empty {
		return 1
	}
	if est, ok := f.cache[v]; ok {
		return est
	}
	cols := lattice.Canonical(v).ProjectionFrom(f.order)
	sk := NewFMSketch(f.m)
	n := f.t.Len()
	for i := 0; i < n; i++ {
		sk.Add(HashRow(f.t, i, cols))
	}
	f.ScanOps += float64(n)
	est := sk.Estimate()
	if est > float64(n) {
		est = float64(n)
	}
	if est < 1 {
		est = 1
	}
	f.cache[v] = est
	return est
}

// HashRow hashes the projection of row i of t onto the given columns
// with a 64-bit FNV-1a-style mix followed by an avalanche finalizer.
func HashRow(t *record.Table, i int, cols []int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range cols {
		v := t.Dim(i, c)
		h = (h ^ uint64(v&0xff)) * prime
		h = (h ^ uint64((v>>8)&0xff)) * prime
		h = (h ^ uint64((v>>16)&0xff)) * prime
		h = (h ^ uint64(v>>24)) * prime
	}
	// Final avalanche (splitmix64 tail) so low bits are well mixed for
	// the sketch's bucket selection.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
