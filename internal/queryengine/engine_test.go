package queryengine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/record"
)

// buildTestCube builds a small full cube on p processors and returns
// the machine, the build metrics, and the generator's flat data for
// oracle checks.
func buildTestCube(t *testing.T, n, d, p int, cards []int) (*cluster.Machine, core.Metrics, *record.Table) {
	t.Helper()
	spec := gen.Spec{N: n, D: d, Cards: cards, Seed: 7}
	g := gen.New(spec)
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	met, err := core.BuildCube(m, "raw", core.Config{D: d})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m, met, g.All()
}

// oracle computes the query result by brute force over the raw data.
func oracle(raw *record.Table, q Query, order lattice.Order, op record.AggOp) *record.Table {
	// Map source columns back to raw columns: source col c holds
	// dimension order[c], which is raw column order[c] (raw is in
	// canonical dimension order).
	proj := record.New(len(q.OutCols), 0)
	key := make([]uint32, len(q.OutCols))
	for i := 0; i < raw.Len(); i++ {
		keep := true
		for _, b := range q.Bounds {
			if v := raw.Dim(i, order[b.Col]); v < b.Lo || v > b.Hi {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		for k, c := range q.OutCols {
			key[k] = raw.Dim(i, order[c])
		}
		proj.Append(key, raw.Meas(i))
	}
	return record.SortAggregateOp(proj, op)
}

func TestExecuteMatchesOracle(t *testing.T) {
	m, met, raw := buildTestCube(t, 3000, 4, 3, []int{16, 8, 6, 4})
	e := New(m, met.ViewOrders, met.ViewRows, record.OpSum)

	cases := []struct {
		group  []int
		bounds map[int][2]uint32
	}{
		{group: []int{1}, bounds: nil},
		{group: []int{2, 0}, bounds: map[int][2]uint32{1: {3, 3}}},
		{group: []int{3}, bounds: map[int][2]uint32{0: {2, 9}, 1: {1, 4}}},
		{group: nil, bounds: map[int][2]uint32{0: {5, 5}}},
		{group: nil, bounds: nil}, // grand total
		{group: []int{0, 1, 2, 3}, bounds: nil},
	}
	for i, tc := range cases {
		q, err := e.NewQuery(tc.group, tc.bounds)
		if err != nil {
			t.Fatalf("case %d: plan: %v", i, err)
		}
		got, qm, err := e.Execute(q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := oracle(raw, q, met.ViewOrders[q.View], record.OpSum)
		if !record.Equal(got, want) {
			t.Fatalf("case %d: result mismatch\ngot  %v\nwant %v", i, got, want)
		}
		if qm.SimSeconds <= 0 {
			t.Fatalf("case %d: no simulated time charged", i)
		}
		if qm.Source != q.View {
			t.Fatalf("case %d: metrics source %v, query view %v", i, qm.Source, q.View)
		}
	}
}

func TestIndexScansStrictlyFewerRows(t *testing.T) {
	m, met, _ := buildTestCube(t, 4000, 4, 2, []int{16, 8, 6, 4})
	e := New(m, met.ViewOrders, met.ViewRows, record.OpSum)

	// Equality on the leading sort-order dimension of the full view, so
	// the prefix index applies.
	full := lattice.Full(4)
	order := met.ViewOrders[full]
	q := Query{View: full, Bounds: []Bound{{Col: 0, Lo: 3, Hi: 3}}, OutCols: []int{1}}

	indexed, im, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	qs := q
	qs.NoIndex = true
	scanned, sm, err := e.Execute(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equal(indexed, scanned) {
		t.Fatalf("indexed and scanned results differ (order %v)", order)
	}
	if !im.IndexUsed || sm.IndexUsed {
		t.Fatalf("IndexUsed flags: indexed=%v scanned=%v", im.IndexUsed, sm.IndexUsed)
	}
	if im.RowsScanned >= sm.RowsScanned {
		t.Fatalf("indexed query scanned %d rows, full scan %d — want strictly fewer", im.RowsScanned, sm.RowsScanned)
	}
	if sm.RowsScanned != met.ViewRows[full] {
		t.Fatalf("full scan touched %d rows, view has %d", sm.RowsScanned, met.ViewRows[full])
	}
}

func TestIndexRangeAndMissingValue(t *testing.T) {
	m, met, raw := buildTestCube(t, 2000, 3, 2, []int{10, 6, 4})
	e := New(m, met.ViewOrders, met.ViewRows, record.OpSum)
	full := lattice.Full(3)
	leadDim := met.ViewOrders[full][0]

	// Range on the leading column: index brackets the runs.
	q := Query{View: full, Bounds: []Bound{{Col: 0, Lo: 2, Hi: 5}}, OutCols: []int{1, 2}}
	got, qm, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !qm.IndexUsed {
		t.Fatal("range on leading column did not use the index")
	}
	want := oracle(raw, q, met.ViewOrders[full], record.OpSum)
	if !record.Equal(got, want) {
		t.Fatalf("range result mismatch (lead dim %d)", leadDim)
	}

	// Equality on a value outside the slice: empty result, near-zero scan.
	q = Query{View: full, Bounds: []Bound{{Col: 0, Lo: 999, Hi: 999}}, OutCols: []int{1}}
	got, qm, err = e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("missing value matched %d groups", got.Len())
	}
	if qm.RowsScanned != 0 {
		t.Fatalf("missing value scanned %d rows", qm.RowsScanned)
	}
}

func TestPickSourceDeterministicTieBreak(t *testing.T) {
	// Two candidate views with identical row counts: the smaller ViewID
	// must win, every time.
	orders := map[lattice.ViewID]lattice.Order{
		0b011: {0, 1},
		0b101: {0, 2},
	}
	rows := map[lattice.ViewID]int64{0b011: 42, 0b101: 42}
	e := &Engine{orders: orders, rows: rows}
	for i := 0; i < 50; i++ {
		v, err := e.PickSource(0b001)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0b011 {
			t.Fatalf("iteration %d: picked %v, want %v", i, v, lattice.ViewID(0b011))
		}
	}
	// Fewer rows still beats a smaller ID.
	rows[0b101] = 10
	if v, _ := e.PickSource(0b001); v != 0b101 {
		t.Fatalf("picked %v over the smaller view", v)
	}
	if _, err := e.PickSource(0b1000); err == nil {
		t.Fatal("uncovered dimension did not error")
	}
}

func TestNewQueryValidation(t *testing.T) {
	m, met, _ := buildTestCube(t, 500, 3, 2, []int{8, 4, 3})
	e := New(m, met.ViewOrders, met.ViewRows, record.OpSum)
	if _, err := e.NewQuery([]int{0, 0}, nil); err == nil {
		t.Fatal("repeated group dimension accepted")
	}
	// A bound on a grouped dimension is valid: it restricts which
	// groups survive ("group by d0 where d0 = 1").
	q, err := e.NewQuery([]int{0}, map[int][2]uint32{0: {1, 1}})
	if err != nil {
		t.Fatalf("grouped+filtered dimension rejected: %v", err)
	}
	got, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.Len(); i++ {
		if got.Dim(i, 0) != 1 {
			t.Fatalf("row %d has group key %d, want only 1", i, got.Dim(i, 0))
		}
	}
	if got.Len() != 1 {
		t.Fatalf("grouped+filtered returned %d groups, want 1", got.Len())
	}
	if _, err := e.NewQuery([]int{1}, map[int][2]uint32{2: {5, 2}}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestExecuteConcurrentCallers(t *testing.T) {
	m, met, raw := buildTestCube(t, 1500, 3, 2, []int{10, 6, 4})
	e := New(m, met.ViewOrders, met.ViewRows, record.OpSum)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q, err := e.NewQuery([]int{w % 3}, map[int][2]uint32{(w + 1) % 3: {0, uint32(i)}})
				if err != nil {
					errs <- err
					return
				}
				got, _, err := e.Execute(q)
				if err != nil {
					errs <- err
					return
				}
				want := oracle(raw, q, met.ViewOrders[q.View], record.OpSum)
				if !record.Equal(got, want) {
					errs <- fmt.Errorf("worker %d query %d: mismatch", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
