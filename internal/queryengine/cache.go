package queryengine

import (
	"container/list"
	"sync"
)

// Cache is a concurrency-safe LRU result cache keyed by canonicalized
// query keys (Query.Key). The cube is immutable once built, so cached
// results never need invalidation — entries only leave by LRU
// eviction. Values are opaque to the cache; callers store whatever a
// query produced (a merged table, a wrapped view, a scalar).
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns an LRU cache holding up to capacity entries.
// Capacity must be positive.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		panic("queryengine: cache capacity must be positive")
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes its value
// and recency.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
