package queryengine

import (
	"testing"

	"repro/internal/record"
)

// sortedTable builds a sorted 3-column table from explicit rows.
func sortedTable(rows [][]uint32) *record.Table {
	t := record.FromRows(3, rows, nil)
	t.Sort()
	return t
}

func TestIndexEqualityRun(t *testing.T) {
	tab := sortedTable([][]uint32{
		{0, 1, 0}, {0, 2, 1}, {1, 0, 0}, {1, 0, 2}, {1, 3, 1}, {3, 0, 0},
	})
	ix := BuildIndex(tab)
	if ix.Runs() != 3 {
		t.Fatalf("runs = %d, want 3", ix.Runs())
	}
	lo, hi, ops := ix.Lookup([]uint32{1}, nil)
	if lo != 2 || hi != 5 {
		t.Fatalf("run of 1 = [%d,%d), want [2,5)", lo, hi)
	}
	if ops <= 0 {
		t.Fatal("no search ops charged")
	}
	// Deeper equality prefix narrows inside the run.
	lo, hi, _ = ix.Lookup([]uint32{1, 0}, nil)
	if lo != 2 || hi != 4 {
		t.Fatalf("run of (1,0) = [%d,%d), want [2,4)", lo, hi)
	}
	// Missing leading value: empty.
	if lo, hi, _ = ix.Lookup([]uint32{2}, nil); lo != hi {
		t.Fatalf("missing value matched [%d,%d)", lo, hi)
	}
}

func TestIndexRangeLookup(t *testing.T) {
	tab := sortedTable([][]uint32{
		{0, 0, 0}, {2, 0, 0}, {2, 5, 0}, {4, 0, 0}, {7, 0, 0},
	})
	ix := BuildIndex(tab)
	// Range over the leading column.
	lo, hi, _ := ix.Lookup(nil, &[2]uint32{1, 4})
	if lo != 1 || hi != 4 {
		t.Fatalf("range 1..4 = [%d,%d), want [1,4)", lo, hi)
	}
	// Equality then range on the second column.
	lo, hi, _ = ix.Lookup([]uint32{2}, &[2]uint32{1, 9})
	if lo != 2 || hi != 3 {
		t.Fatalf("eq 2, range 1..9 = [%d,%d), want [2,3)", lo, hi)
	}
	// Range matching nothing.
	if lo, hi, _ = ix.Lookup(nil, &[2]uint32{8, 9}); lo != hi {
		t.Fatalf("empty range matched [%d,%d)", lo, hi)
	}
}

func TestIndexZeroDimensionSlice(t *testing.T) {
	ix := BuildIndex(record.New(0, 0))
	if lo, hi, _ := ix.Lookup([]uint32{1}, nil); lo != 0 || hi != 0 {
		t.Fatalf("zero-dim lookup = [%d,%d)", lo, hi)
	}
}

func TestCacheLRUAndStats(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
	// Refreshing an existing key keeps a single entry.
	c.Put("a", 9)
	if v, _ := c.Get("a"); v.(int) != 9 {
		t.Fatalf("refresh lost: %v", v)
	}
	if c.Len() != 2 {
		t.Fatalf("len after refresh = %d", c.Len())
	}
}

func TestQueryKeyCanonical(t *testing.T) {
	a := Query{View: 7, Bounds: []Bound{{Col: 1, Lo: 2, Hi: 2}, {Col: 3, Lo: 0, Hi: 9}}, OutCols: []int{0, 2}}
	b := Query{View: 7, Bounds: []Bound{{Col: 1, Lo: 2, Hi: 2}, {Col: 3, Lo: 0, Hi: 9}}, OutCols: []int{0, 2}}
	if a.Key() != b.Key() {
		t.Fatalf("identical queries, different keys:\n%s\n%s", a.Key(), b.Key())
	}
	c := a
	c.OutCols = []int{2, 0}
	if a.Key() == c.Key() {
		t.Fatal("different output order, same key")
	}
	d := a
	d.NoIndex = true
	if a.Key() == d.Key() {
		t.Fatal("NoIndex not part of the key")
	}
}
