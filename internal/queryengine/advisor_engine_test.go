package queryengine

import (
	"errors"
	"testing"

	"repro/internal/lattice"
	"repro/internal/record"
)

// partialEngine builds a full cube but registers only the given views
// with the engine, so the others exist on disk yet are invisible to
// planning — the partial-cube serving setup the advisor mutates.
func partialEngine(t *testing.T, views []lattice.ViewID) (*Engine, map[lattice.ViewID]lattice.Order) {
	t.Helper()
	m, met, _ := buildTestCube(t, 3000, 4, 2, []int{16, 8, 6, 4})
	orders := map[lattice.ViewID]lattice.Order{}
	rows := map[lattice.ViewID]int64{}
	for _, v := range views {
		orders[v] = met.ViewOrders[v]
		rows[v] = met.ViewRows[v]
	}
	return New(m, orders, rows, record.OpSum), met.ViewOrders
}

func TestDemandCounters(t *testing.T) {
	full := lattice.Full(4)
	sub := lattice.Full(4).Remove(3)
	e, _ := partialEngine(t, []lattice.ViewID{full, sub})

	run := func(group []int) {
		q, err := e.NewQuery(group, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	run([]int{0, 1, 2})    // exact hit on sub
	run([]int{0, 1, 2})    // again
	run([]int{0, 1, 2, 3}) // exact hit on full
	run([]int{0})          // fallback: {0} not materialized
	run([]int{0})          // fallback again

	d := e.DemandSnapshot()
	if got := d[sub]; got.Hits != 2 || got.Fallbacks != 0 {
		t.Fatalf("sub demand %+v, want 2 hits", got)
	}
	if got := d[full]; got.Hits != 1 {
		t.Fatalf("full demand %+v, want 1 hit", got)
	}
	want := lattice.Empty.Add(0)
	got := d[want]
	if got.Hits != 0 || got.Fallbacks != 2 {
		t.Fatalf("fallback target demand %+v, want 2 fallbacks", got)
	}
	if got.FallbackRows <= 0 {
		t.Fatalf("fallback target scanned no rows: %+v", got)
	}
	// Source-side attribution: sub served its own 2 hits plus the 2
	// fallbacks (it is the smallest superset of {0}); full served 1.
	if d[sub].SourceQueries != 4 {
		t.Fatalf("sub SourceQueries = %d, want 4", d[sub].SourceQueries)
	}
	if d[full].SourceQueries != 1 {
		t.Fatalf("full SourceQueries = %d, want 1", d[full].SourceQueries)
	}

	// Snapshots are copies: mutating one must not leak into the engine.
	d[sub] = ViewDemand{Hits: 999}
	if e.DemandSnapshot()[sub].Hits != 2 {
		t.Fatal("DemandSnapshot aliases engine state")
	}
}

func TestAddRemoveViewChangesPlanning(t *testing.T) {
	full := lattice.Full(4)
	sub := full.Remove(3)
	e, orders := partialEngine(t, []lattice.ViewID{full})

	q1, err := e.NewQuery([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q1.View != full {
		t.Fatalf("planned against %v before AddView, want %v", q1.View, full)
	}
	want1, _, err := e.Execute(q1)
	if err != nil {
		t.Fatal(err)
	}

	// Register the sub-view (its slices already exist from the build);
	// the same logical query now plans against it and agrees.
	e.AddView(sub, orders[sub], e.Rows(full)) // row count only guides planning
	q2, err := e.NewQuery([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q2.View != sub {
		t.Fatalf("planned against %v after AddView, want %v", q2.View, sub)
	}
	got, _, err := e.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !record.Equal(got, want1) {
		t.Fatal("answer changed after AddView")
	}

	// Removing it sends planning back to the full view.
	e.RemoveView(sub)
	q3, err := e.NewQuery([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q3.View != full {
		t.Fatalf("planned against %v after RemoveView, want %v", q3.View, full)
	}
	if vs := e.Views(); len(vs) != 1 || vs[0] != full {
		t.Fatalf("Views() = %v after remove", vs)
	}
}

func TestExecuteStalePlan(t *testing.T) {
	full := lattice.Full(4)
	sub := full.Remove(3)
	e, orders := partialEngine(t, []lattice.ViewID{full, sub})

	// Plan against sub, retire it, then execute: the plan is stale.
	q, err := e.NewQuery([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.View != sub {
		t.Fatalf("planned against %v, want %v", q.View, sub)
	}
	e.RemoveView(sub)
	if _, _, err := e.Execute(q); !errors.Is(err, ErrStalePlan) {
		t.Fatalf("executing against retired view: %v, want ErrStalePlan", err)
	}

	// Re-adding with a different attribute order is also stale: the
	// plan's column references no longer describe the slices.
	reord := append(lattice.Order{}, orders[sub]...)
	reord[0], reord[1] = reord[1], reord[0]
	e.AddView(sub, reord, 100)
	if _, _, err := e.Execute(q); !errors.Is(err, ErrStalePlan) {
		t.Fatalf("executing against re-ordered view: %v, want ErrStalePlan", err)
	}

	// A replan against the current topology succeeds.
	q2, err := e.NewQuery([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(q2); err != nil {
		t.Fatal(err)
	}
}
