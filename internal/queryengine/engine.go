// Package queryengine answers OLAP queries against the cube where it
// lives: distributed over the local disks of the shared-nothing
// machine that built it. Instead of gathering a source view onto one
// rank and scanning it serially, a query runs scatter–gather: the
// planner picks the smallest materialized superset view, every
// processor filters, projects, and partially aggregates its own local
// slice, and the partial aggregates are merged at the root with a
// k-way aggregating merge (record's packed-key loser tree, falling
// back to the comparison heap when keys don't pack) — the
// cluster-resident serving architecture of Hespe et al. (local scans +
// partial-aggregate merge) applied to the paper's partitioned cube.
//
// Because every view slice is stored globally sorted in its attribute
// order, equality filters on a prefix of that order do not scan: a
// per-slice sorted-prefix Index binary-searches to the matching run
// and only the run's rows are read and charged. All query work — disk
// reads, scan/sort/merge compute, and the gather h-relation — is
// charged on the machine's simulated cost model under a dedicated
// "query" phase, and reported per query as Metrics.
package queryengine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/sketch"
)

// ErrStalePlan reports that a query was planned against a view set
// that has since changed: the source view was retired, or it was
// rebuilt under a different attribute order, so the planned column
// indices no longer mean what they meant. Callers replan and retry —
// the materialization advisor mutates the view set online, so any
// plan can go stale between planning and execution.
var ErrStalePlan = errors.New("queryengine: plan is stale (materialized view set changed)")

// Engine executes queries against a built cube's machine. Queries
// reuse the machine's SPMD supersteps, whose exchange state admits one
// collective at a time, so executions are serialized internally; the
// concurrent front end (admission control, caching) layers above.
type Engine struct {
	m  *cluster.Machine
	op record.AggOp
	// sk backs holistic operators: view measures are handles into it,
	// query-time merges run in scratch shards released per query, and
	// results carry resolved estimates instead of handles. Nil for
	// algebraic operators.
	sk *sketch.Store

	mu sync.Mutex // serializes machine access across Execute/Maintain

	// stateMu guards the mutable query-side state: the materialized
	// view set and its orders (the advisor adds and retires views
	// online), planning row counts, per-view version counters, the
	// lazily built slice indexes, and the per-view demand counters.
	// Incremental ingest rewrites view slices, so this state must be
	// readable concurrently with queries and invalidatable per view.
	stateMu  sync.Mutex
	orders   map[lattice.ViewID]lattice.Order
	rows     map[lattice.ViewID]int64
	versions map[lattice.ViewID]uint64
	indexes  map[idxKey]*Index
	demand   map[lattice.ViewID]*ViewDemand
}

// ViewDemand accumulates traffic evidence for one *target* view (the
// exact set of dimensions a query needed, before superset rewrite) —
// the advisor's raw input. SourceQueries is the flip side: how often
// the view served as the *source* of some query, which is what a
// retirement decision must consult (a view can have zero direct
// demand yet carry heavy fallback traffic for its subsets).
type ViewDemand struct {
	// Hits counts queries whose needed view was materialized exactly.
	Hits int64
	// Fallbacks counts queries for this target that were rewritten to
	// a strict-superset scan, and FallbackRows the source rows those
	// scans read — the scan cost a materialization would eliminate.
	Fallbacks    int64
	FallbackRows int64
	// SourceQueries counts queries (of any target) answered *from*
	// this view.
	SourceQueries int64
}

type idxKey struct {
	view lattice.ViewID
	rank int
}

// New returns an engine over the machine's materialized views. orders
// maps each view to its materialized attribute order (the build's
// ViewOrders); rows maps each view to its global row count for
// planning — pass nil to derive the counts from the per-rank slices on
// disk (core.ViewSliceLens).
func New(m *cluster.Machine, orders map[lattice.ViewID]lattice.Order, rows map[lattice.ViewID]int64, op record.AggOp) *Engine {
	if rows == nil {
		rows = make(map[lattice.ViewID]int64, len(orders))
		for v := range orders {
			rows[v] = core.ViewGlobalRows(m, v)
		}
	}
	// Copy both maps: the engine's view set mutates online (AddView /
	// RemoveView) under its own lock, so it must not alias the
	// caller's maps.
	os := make(map[lattice.ViewID]lattice.Order, len(orders))
	for v, o := range orders {
		os[v] = append(lattice.Order(nil), o...)
	}
	rs := make(map[lattice.ViewID]int64, len(rows))
	for v, n := range rows {
		rs[v] = n
	}
	return &Engine{
		m:        m,
		op:       op,
		orders:   os,
		rows:     rs,
		versions: make(map[lattice.ViewID]uint64, len(orders)),
		indexes:  make(map[idxKey]*Index),
		demand:   make(map[lattice.ViewID]*ViewDemand),
	}
}

// SetSketch attaches the sketch store backing a holistic operator.
// Call it once, before any query executes; Execute panics on a
// holistic engine without a store.
func (e *Engine) SetSketch(st *sketch.Store) { e.sk = st }

// Sketch returns the attached sketch store (nil for algebraic
// operators).
func (e *Engine) Sketch() *sketch.Store { return e.sk }

// Holistic reports whether the engine's operator aggregates through
// sketch state, i.e. query results are estimates.
func (e *Engine) Holistic() bool { return e.op.Holistic() }

// ViewVersion returns view v's version counter. It starts at 0 and is
// bumped by InvalidateView whenever an ingest batch replaces the
// view's slices, so any cache keyed on (version, query) misses
// naturally after the underlying data changes.
func (e *Engine) ViewVersion(v lattice.ViewID) uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.versions[v]
}

// Versions snapshots all view version counters (for persistence).
func (e *Engine) Versions() map[lattice.ViewID]uint64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	out := make(map[lattice.ViewID]uint64, len(e.versions))
	for v, ver := range e.versions {
		out[v] = ver
	}
	return out
}

// RestoreVersions seeds the version counters (loading a snapshot).
func (e *Engine) RestoreVersions(versions map[lattice.ViewID]uint64) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	for v, ver := range versions {
		e.versions[v] = ver
	}
}

// InvalidateView records that view v's slices were replaced: the
// version counter is bumped, every rank's prefix index for the view is
// dropped (it is rebuilt lazily from the new slices on next use), and
// the planning row count is refreshed. Views an ingest batch did not
// touch keep their indexes and version.
func (e *Engine) InvalidateView(v lattice.ViewID, rows int64) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	e.versions[v]++
	e.rows[v] = rows
	for r := 0; r < e.m.P(); r++ {
		delete(e.indexes, idxKey{view: v, rank: r})
	}
}

// Maintain runs fn while holding the machine exclusively, blocking
// Execute for the duration — the hook incremental ingest uses to run
// its delta supersteps without interleaving with query supersteps,
// and the drain barrier the advisor retires views behind (in-flight
// executions finish before fn runs).
func (e *Engine) Maintain(fn func() error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fn()
}

// P returns the machine size queries execute on.
func (e *Engine) P() int { return e.m.P() }

// Order returns the materialized attribute order of view v.
func (e *Engine) Order(v lattice.ViewID) (lattice.Order, bool) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	o, ok := e.orders[v]
	return o, ok
}

// Views returns the materialized view set, sorted by ViewID.
func (e *Engine) Views() []lattice.ViewID {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	out := make([]lattice.ViewID, 0, len(e.orders))
	for v := range e.orders {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rows returns view v's global planning row count (0 if not
// materialized).
func (e *Engine) Rows(v lattice.ViewID) int64 {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.rows[v]
}

// AddView registers a newly materialized view: its attribute order,
// its planning row count, and a version bump so any result-cache
// entries from a previous incarnation of the view (retired and
// rebuilt, possibly under a different order) miss. Call under
// Maintain, after the view's slices are committed on disk.
func (e *Engine) AddView(v lattice.ViewID, order lattice.Order, rows int64) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	e.orders[v] = append(lattice.Order(nil), order...)
	e.rows[v] = rows
	e.versions[v]++
	for r := 0; r < e.m.P(); r++ {
		delete(e.indexes, idxKey{view: v, rank: r})
	}
}

// RemoveView retires view v from planning: plans already holding it
// fail with ErrStalePlan and replan, per-rank prefix indexes are
// dropped, and the version counter is bumped so cached results for
// the view miss. Call under Maintain (the drain barrier), before or
// after deleting the slices on disk.
func (e *Engine) RemoveView(v lattice.ViewID) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	delete(e.orders, v)
	delete(e.rows, v)
	e.versions[v]++
	for r := 0; r < e.m.P(); r++ {
		delete(e.indexes, idxKey{view: v, rank: r})
	}
}

// DemandSnapshot copies the cumulative per-view demand counters. The
// counters only grow; consumers (the advisor's decayed window) diff
// successive snapshots.
func (e *Engine) DemandSnapshot() map[lattice.ViewID]ViewDemand {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	out := make(map[lattice.ViewID]ViewDemand, len(e.demand))
	for v, d := range e.demand {
		out[v] = *d
	}
	return out
}

// noteDemand records one executed query: need is the exact target
// view, src the view it was answered from, scanned the source rows
// read.
func (e *Engine) noteDemand(need, src lattice.ViewID, scanned int64) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	nd := e.demand[need]
	if nd == nil {
		nd = &ViewDemand{}
		e.demand[need] = nd
	}
	if need == src {
		nd.Hits++
	} else {
		nd.Fallbacks++
		nd.FallbackRows += scanned
	}
	sd := e.demand[src]
	if sd == nil {
		sd = &ViewDemand{}
		e.demand[src] = sd
	}
	sd.SourceQueries++
}

// PickSource returns the materialized view with the fewest global rows
// containing all of need's dimensions — the standard ROLAP rewrite.
// Ties on row count break to the smaller ViewID, so planning is
// deterministic regardless of map iteration order.
func (e *Engine) PickSource(need lattice.ViewID) (lattice.ViewID, error) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	best := lattice.ViewID(0)
	bestRows := int64(-1)
	for v := range e.orders {
		if !need.SubsetOf(v) {
			continue
		}
		rows := e.rows[v]
		if bestRows == -1 || rows < bestRows || (rows == bestRows && v < best) {
			best, bestRows = v, rows
		}
	}
	if bestRows == -1 {
		return 0, fmt.Errorf("queryengine: no materialized view covers %v", need)
	}
	return best, nil
}

// Bound restricts source rows: column Col (in the source view's
// layout) must hold a value in [Lo, Hi] inclusive. An equality filter
// is Lo == Hi.
type Bound struct {
	Col    int
	Lo, Hi uint32
}

// Query is one executable scatter–gather request: scan view View's
// slices, keep rows satisfying every Bound, project the kept rows onto
// OutCols (source column indices, in result order), and aggregate
// equal keys with the engine's operator. Empty OutCols collapses the
// selection to a single zero-dimension group (a scalar aggregate).
type Query struct {
	View    lattice.ViewID
	Bounds  []Bound // sorted by Col (NewQuery guarantees this)
	OutCols []int
	// NoIndex forces full scans even when the bounds cover a prefix of
	// the view's sort order (for the indexed-vs-scan comparison).
	NoIndex bool
	// Percentile is the rank (in [0,1]) a quantile-operator engine
	// resolves each group's sketch at; ignored for every other
	// operator.
	Percentile float64
	// Need is the exact target view (every grouped or bounded
	// dimension); when Need != View the query is a superset fallback.
	// NewQuery sets it; it feeds the per-view demand counters, not the
	// execution plan, so it is not part of Key.
	Need lattice.ViewID
	// Order is the source view's attribute order the plan's column
	// indices were resolved against. Execute rejects the query with
	// ErrStalePlan if the view's current order differs (retired, or
	// retired and rebuilt under another order) — without this check a
	// stale plan could silently aggregate the wrong columns. Nil skips
	// the check (hand-built queries in tests).
	Order lattice.Order
}

// Key canonicalizes the query for result caching. Bounds are kept
// sorted by column, so queries that differ only in filter-map
// iteration order share a key; OutCols order is part of the key
// because it fixes the result's column order.
func (q Query) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d|o", uint32(q.View))
	for _, c := range q.OutCols {
		fmt.Fprintf(&sb, ",%d", c)
	}
	sb.WriteString("|b")
	for _, b := range q.Bounds {
		fmt.Fprintf(&sb, ",%d:%d-%d", b.Col, b.Lo, b.Hi)
	}
	if q.NoIndex {
		sb.WriteString("|noidx")
	}
	if q.Percentile != 0 {
		fmt.Fprintf(&sb, "|p%g", q.Percentile)
	}
	return sb.String()
}

// NewQuery plans a request: group lists the internal dimensions of the
// result key (in result order), bounds the per-dimension row
// restrictions. The source view is the smallest materialized superset
// of everything referenced; columns are resolved against its
// materialized order. A dimension may be both grouped and bounded —
// the bound then restricts which groups survive ("group by store
// where store = 3"), matching the gather-and-scan oracle.
func (e *Engine) NewQuery(group []int, bounds map[int][2]uint32) (Query, error) {
	need := lattice.Empty
	for _, dim := range group {
		if need.Has(dim) {
			return Query{}, fmt.Errorf("queryengine: dimension %d repeated in group", dim)
		}
		need = need.Add(dim)
	}
	for dim := range bounds {
		need = need.Add(dim)
	}
	src, err := e.PickSource(need)
	if err != nil {
		return Query{}, err
	}
	order, ok := e.Order(src)
	if !ok {
		// The view set changed between PickSource and the order read;
		// callers treat this like any other stale plan and replan.
		return Query{}, fmt.Errorf("%w: view %v retired during planning", ErrStalePlan, src)
	}
	col := make(map[int]int, len(order)) // dimension -> source column
	for c, dim := range order {
		col[dim] = c
	}
	q := Query{View: src, OutCols: make([]int, len(group)), Need: need, Order: order}
	for k, dim := range group {
		q.OutCols[k] = col[dim]
	}
	for dim, b := range bounds {
		if b[0] > b[1] {
			return Query{}, fmt.Errorf("queryengine: empty range %d..%d on dimension %d", b[0], b[1], dim)
		}
		q.Bounds = append(q.Bounds, Bound{Col: col[dim], Lo: b[0], Hi: b[1]})
	}
	sort.Slice(q.Bounds, func(i, j int) bool { return q.Bounds[i].Col < q.Bounds[j].Col })
	return q, nil
}

// Metrics reports what one query cost on the simulated machine.
type Metrics struct {
	// Source is the view the query executed against.
	Source lattice.ViewID
	// Version is the source view's version counter at execution time.
	// Execution holds the machine lock, which maintenance (the only
	// version writer) also holds, so the result is guaranteed to be
	// computed from exactly this version of the view's slices — cache
	// entries must be stamped with it, not with a version read at plan
	// time (a concurrent ingest between plan and execution would
	// otherwise file a post-batch result under the pre-batch key).
	Version uint64
	// RowsScanned counts source rows read and tested across all
	// processors (after index narrowing).
	RowsScanned int64
	// BytesMoved is the query's network volume (the partial-aggregate
	// gather).
	BytesMoved int64
	// SimSeconds is the query's simulated makespan contribution.
	SimSeconds float64
	// IndexUsed reports whether the prefix index narrowed any slice.
	IndexUsed bool
}

// Execute runs the query's scatter–gather superstep plan on the
// machine and returns the merged result: a table with len(OutCols)
// columns, globally aggregated and sorted in OutCols order. All work
// is charged on the simulated clocks under the "query" phase.
func (e *Engine) Execute(q Query) (*record.Table, Metrics, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Validate under e.mu: the view set only changes under Maintain,
	// which holds e.mu, so a plan that passes here stays valid for the
	// whole execution.
	e.stateMu.Lock()
	order, ok := e.orders[q.View]
	ver := e.versions[q.View]
	e.stateMu.Unlock()
	if !ok {
		return nil, Metrics{}, fmt.Errorf("%w: view %v not materialized", ErrStalePlan, q.View)
	}
	if q.Order != nil && !orderEqual(q.Order, order) {
		return nil, Metrics{}, fmt.Errorf("%w: view %v order changed since planning", ErrStalePlan, q.View)
	}
	for _, c := range q.OutCols {
		if c < 0 || c >= len(order) {
			return nil, Metrics{}, fmt.Errorf("queryengine: output column %d out of range for view %v", c, q.View)
		}
	}
	for _, b := range q.Bounds {
		if b.Col < 0 || b.Col >= len(order) {
			return nil, Metrics{}, fmt.Errorf("queryengine: bound column %d out of range for view %v", b.Col, q.View)
		}
	}
	t0 := e.m.SimSeconds()
	bytes0 := e.m.Stats().BytesMoved

	p := e.m.P()
	if e.op.Holistic() && e.sk == nil {
		panic("queryengine: holistic operator without a sketch store (call SetSketch)")
	}
	// Holistic queries combine group state in per-rank scratch shards,
	// resolved to estimates at the root and released before returning —
	// the store's rank shards (the live cube's state) are never touched.
	var scratch []*sketch.Combiner
	if e.op.Holistic() {
		scratch = make([]*sketch.Combiner, p)
		for r := 0; r < p; r++ {
			scratch[r] = e.sk.Scratch()
		}
		defer func() {
			for _, c := range scratch {
				e.sk.ReleaseScratch(c)
			}
		}()
	}
	scanned := make([]int64, p)
	idxUsed := make([]bool, p)
	var out *record.Table
	err := e.m.Run(func(pr *cluster.Proc) {
		pr.SetPhase("query")
		agg := record.Agg{Op: e.op}
		if scratch != nil {
			agg.State = scratch[pr.Rank()]
		}
		part, n, used := e.scanLocal(pr, q, agg)
		scanned[pr.Rank()] = n
		idxUsed[pr.Rank()] = used
		// Sketch payloads travel with their handles: the gather charge
		// includes the serialized state of every shipped group.
		parts := cluster.Gather(pr, 0, part, part.Bytes()+agg.TableStateBytes(part))
		if pr.Rank() == 0 {
			total, streams := 0, 0
			for _, t := range parts {
				if t.Len() > 0 {
					total += t.Len()
					streams++
				}
			}
			// Loser-tree k-way merge on packed keys (heap fallback for
			// unpackable keys); the MergeOps charge is path-independent.
			pr.Clock().AddCompute(costmodel.MergeOps(total, streams))
			out = record.MergeSortedAggregateAgg(parts, agg)
			if scratch != nil {
				// Resolve handles to estimates in place: the result the
				// caller sees carries plain values, never handles into
				// scratch shards about to be released.
				pr.Clock().AddCompute(costmodel.ScanOps(out.Len()))
				for i := 0; i < out.Len(); i++ {
					out.SetMeas(i, e.sk.EstimateMeasure(out.Meas(i), q.Percentile))
				}
			}
		}
	})
	if err != nil {
		return nil, Metrics{}, err
	}

	met := Metrics{
		Source:     q.View,
		Version:    ver,
		SimSeconds: e.m.SimSeconds() - t0,
		BytesMoved: e.m.Stats().BytesMoved - bytes0,
	}
	for r := 0; r < p; r++ {
		met.RowsScanned += scanned[r]
		met.IndexUsed = met.IndexUsed || idxUsed[r]
	}
	if out == nil { // defensive: rank 0 always produces a table
		out = record.New(len(q.OutCols), 0)
	}
	e.noteDemand(q.Need, q.View, met.RowsScanned)
	return out, met, nil
}

func orderEqual(a, b lattice.Order) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scanLocal runs the query's local half on one processor: narrow the
// slice with the prefix index when the bounds allow it, scan the
// remaining rows applying residual bounds, project onto OutCols, and
// partially aggregate. Returns the sorted partial aggregate, the
// number of source rows scanned, and whether the index was used.
func (e *Engine) scanLocal(pr *cluster.Proc, q Query, agg record.Agg) (*record.Table, int64, bool) {
	disk := pr.Disk()
	clk := pr.Clock()
	file := core.ViewFile(q.View)
	empty := record.New(len(q.OutCols), 0)
	if disk.Len(file) <= 0 {
		return empty, 0, false
	}

	boundAt := make(map[int]Bound, len(q.Bounds))
	for _, b := range q.Bounds {
		boundAt[b.Col] = b
	}
	// Longest equality prefix of the sort order, plus an optional range
	// on the next column — the part of the predicate the index resolves.
	var eq []uint32
	for {
		b, ok := boundAt[len(eq)]
		if !ok || b.Lo != b.Hi {
			break
		}
		eq = append(eq, b.Lo)
	}
	var rng *[2]uint32
	if b, ok := boundAt[len(eq)]; ok {
		rng = &[2]uint32{b.Lo, b.Hi}
	}

	var rows *record.Table
	var residual []Bound
	indexed := false
	if !q.NoIndex && (len(eq) > 0 || rng != nil) {
		ix := e.sliceIndex(pr, q.View, file)
		lo, hi, ops := ix.Lookup(eq, rng)
		clk.AddCompute(ops)
		rows = disk.ReadRange(file, lo, hi)
		prefix := len(eq)
		if rng != nil {
			prefix++
		}
		for _, b := range q.Bounds {
			if b.Col >= prefix {
				residual = append(residual, b)
			}
		}
		indexed = true
	} else {
		rows = disk.MustGet(file)
		residual = q.Bounds
	}

	n := rows.Len()
	clk.AddCompute(costmodel.ScanOps(n))
	proj := record.New(len(q.OutCols), 0)
	key := make([]uint32, len(q.OutCols))
	for i := 0; i < n; i++ {
		keep := true
		for _, b := range residual {
			if v := rows.Dim(i, b.Col); v < b.Lo || v > b.Hi {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		for k, c := range q.OutCols {
			key[k] = rows.Dim(i, c)
		}
		proj.Append(key, rows.Meas(i))
	}
	clk.AddCompute(costmodel.SortOps(proj.Len()) + costmodel.ScanOps(proj.Len()))
	return record.SortAggregateAgg(proj, agg), int64(n), indexed
}

// sliceIndex returns this processor's prefix index of the view,
// building it on first use (one charged scan of the slice; the
// directory is retained in memory, like any database's block index).
func (e *Engine) sliceIndex(pr *cluster.Proc, v lattice.ViewID, file string) *Index {
	key := idxKey{view: v, rank: pr.Rank()}
	e.stateMu.Lock()
	ix := e.indexes[key]
	e.stateMu.Unlock()
	if ix != nil {
		return ix
	}
	if s, ok := pr.Disk().GetForIndex(file); ok {
		// Sealed slice: the index is the leading column's run directory,
		// read directly — GetForIndex charged just that column.
		ix = BuildIndexSlice(s)
		pr.Clock().AddCompute(costmodel.ScanOps(ix.Runs()))
	} else {
		t := pr.Disk().MustGet(file) // charged full read
		pr.Clock().AddCompute(costmodel.ScanOps(t.Len()))
		ix = BuildIndex(t)
	}
	e.stateMu.Lock()
	e.indexes[key] = ix
	e.stateMu.Unlock()
	return ix
}
