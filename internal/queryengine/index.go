package queryengine

import (
	"sort"

	"repro/internal/colstore"
	"repro/internal/costmodel"
	"repro/internal/record"
)

// rowsAccessor is the random-access row view an Index resolves deep
// prefix columns against: satisfied by *record.Table and by
// *colstore.Slice, so an index over a sealed slice never needs the
// full decode.
type rowsAccessor interface {
	Len() int
	Dim(i, j int) uint32
}

// compareRowKey compares row i's leading columns against key,
// lexicographically (record.CompareRowKey over the accessor).
func compareRowKey(r rowsAccessor, i int, key []uint32) int {
	for j, k := range key {
		if v := r.Dim(i, j); v != k {
			if v < k {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Index is the sorted-prefix index of one processor's local slice of
// one materialized view. The slice is stored globally sorted in the
// view's attribute order, so an equality filter on a prefix of that
// order selects one contiguous run of rows. The index records the
// distinct values of the leading sort column with their row offsets (a
// sparse run directory); deeper prefix columns are resolved by binary
// search inside the run. Lookups return the run's row range so the
// executor reads and scans only those rows instead of the whole slice.
//
// Views are immutable once built, so an Index never invalidates. The
// table reference is shared read-only with the owning disk.
type Index struct {
	rows rowsAccessor
	d    int
	// vals[i] is the i-th distinct value of the leading sort column;
	// starts[i] is its first row. starts has one extra element, the
	// slice length, so run i spans rows [starts[i], starts[i+1]).
	vals   []uint32
	starts []int
}

// BuildIndex scans a sorted slice once and returns its prefix index.
// The caller is responsible for charging the scan. Slices of the
// zero-dimension (grand total) view have no sort column and get an
// index that never matches.
func BuildIndex(t *record.Table) *Index {
	ix := &Index{rows: t, d: t.D}
	if t.D == 0 {
		return ix
	}
	n := t.Len()
	for i := 0; i < n; i++ {
		v := t.Dim(i, 0)
		if len(ix.vals) == 0 || ix.vals[len(ix.vals)-1] != v {
			ix.vals = append(ix.vals, v)
			ix.starts = append(ix.starts, i)
		}
	}
	ix.starts = append(ix.starts, n)
	return ix
}

// BuildIndexSlice builds the prefix index of a sealed columnar slice
// straight from its leading column's run directory — no decode, no
// full scan; the caller charges only the leading-column read. Deep
// prefix lookups binary-search the slice's columns in place.
func BuildIndexSlice(s *colstore.Slice) *Index {
	ix := &Index{rows: s, d: s.D()}
	if s.D() == 0 {
		return ix
	}
	ix.vals, ix.starts = s.LeadingRuns()
	return ix
}

// Len returns the indexed slice's row count.
func (ix *Index) Len() int { return ix.rows.Len() }

// Runs returns the number of distinct leading-column values.
func (ix *Index) Runs() int { return len(ix.vals) }

// Lookup returns the row range [lo, hi) of slice rows matching the
// equality values eq on sort-order columns 0..len(eq)-1 and, when rng
// is non-nil, the inclusive range rng[0]..rng[1] on column len(eq).
// ops is the modelled comparison count of the binary searches, for the
// caller to charge on the simulated clock. At least one of eq and rng
// must be non-empty; a slice with no sort column matches nothing.
func (ix *Index) Lookup(eq []uint32, rng *[2]uint32) (lo, hi int, ops float64) {
	if ix.d == 0 || len(ix.vals) == 0 {
		return 0, 0, 0
	}
	if len(eq) == 0 {
		// Pure range on the leading column: bracket it in the run
		// directory.
		ops = 2 * costmodel.SearchOps(len(ix.vals))
		a := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] >= rng[0] })
		b := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] > rng[1] })
		return ix.starts[a], ix.starts[b], ops
	}
	// Equality prefix: locate the leading value's run, then binary
	// search the deeper prefix columns (and an optional trailing range)
	// inside it.
	ops = costmodel.SearchOps(len(ix.vals))
	r := sort.Search(len(ix.vals), func(i int) bool { return ix.vals[i] >= eq[0] })
	if r == len(ix.vals) || ix.vals[r] != eq[0] {
		return 0, 0, ops
	}
	runLo, runHi := ix.starts[r], ix.starts[r+1]
	if len(eq) == 1 && rng == nil {
		return runLo, runHi, ops
	}
	loKey := append([]uint32(nil), eq...)
	hiKey := append([]uint32(nil), eq...)
	if rng != nil {
		loKey = append(loKey, rng[0])
		hiKey = append(hiKey, rng[1])
	}
	n := runHi - runLo
	ops += 2 * costmodel.SearchOps(n)
	lo = runLo + sort.Search(n, func(i int) bool {
		return compareRowKey(ix.rows, runLo+i, loKey) >= 0
	})
	hi = runLo + sort.Search(n, func(i int) bool {
		return compareRowKey(ix.rows, runLo+i, hiKey) > 0
	})
	return lo, hi, ops
}
