package pipesort

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/sample"
	"repro/internal/simdisk"
)

// Options configures execution.
type Options struct {
	// SampleCap, when >= 2, attaches an online spaced sample (§2.4,
	// a = 100p in the paper) to every materialized view file as disk
	// metadata, built while the view is written. Merge–Partitions uses
	// it to estimate overlap sizes without re-scanning views.
	SampleCap int
	// Op is the aggregate operator (default record.OpSum).
	Op record.AggOp
	// State is this processor's sketch-state combiner, required when Op
	// is holistic: group accumulators then live in the sketch store and
	// flushed rows carry sealed handles.
	State record.StateCombiner
}

// Stats summarizes one execution of a schedule tree.
type Stats struct {
	Sorts       int   // sort edges executed (each an external sort)
	Pipelines   int   // pipelined aggregation passes
	RowsRead    int64 // rows streamed through pipelines
	RowsEmitted int64 // rows written across all materialized views
}

// Execute materializes every view of the schedule tree on disk.
//
// The root's data must already be stored under fileOf(root view),
// sorted in the root's attribute order and duplicate-free (the
// Di-root||j produced by Procedure 1 Step 1c, or the aggregated raw
// data for the sequential baseline). Each remaining view v of the tree
// is written to fileOf(v), sorted in v's attribute order with columns
// following that order.
func Execute(disk *simdisk.Disk, tree *lattice.Tree, fileOf func(lattice.ViewID) string) Stats {
	return ExecuteOpts(disk, tree, fileOf, Options{})
}

// ExecuteOpts is Execute with explicit options.
func ExecuteOpts(disk *simdisk.Disk, tree *lattice.Tree, fileOf func(lattice.ViewID) string, opts Options) Stats {
	if !disk.Has(fileOf(tree.Root.View)) {
		panic(fmt.Sprintf("pipesort: root input %q missing", fileOf(tree.Root.View)))
	}
	var st Stats

	// The root's scan chain is aggregated in one pass over the root
	// file; every sort edge projects + externally sorts its parent's
	// file and aggregates that pass into the child's whole scan chain.
	var handleSortDescendants func(head *lattice.Node)
	handleSortDescendants = func(head *lattice.Node) {
		for _, m := range lattice.ScanChain(head) {
			for _, w := range m.Children {
				if w.Edge != lattice.EdgeSort {
					continue
				}
				src := disk.MustGet(fileOf(m.View))
				cols := w.Order.ProjectionFrom(m.Order)
				disk.Clock().AddCompute(costmodel.ScanOps(src.Len()))
				proj := src.Project(cols)
				tmp := fmt.Sprintf("tmp.sort.%s", w.View)
				disk.Put(tmp, proj)
				extsort.Sort(disk, tmp)
				sorted := disk.MustTake(tmp)
				st.Sorts++
				emitChain(disk, sorted, lattice.ScanChain(w), true, fileOf, opts, &st)
				handleSortDescendants(w)
			}
		}
	}

	rootChain := lattice.ScanChain(tree.Root)
	if len(rootChain) > 1 {
		src := disk.MustGet(fileOf(tree.Root.View))
		emitChain(disk, src, rootChain, false, fileOf, opts, &st)
	}
	handleSortDescendants(tree.Root)
	return st
}

// emitChain performs one pipelined aggregation pass over src (sorted by
// chain[0].Order; its columns are exactly chain[0].Order) and writes
// the resulting view files. When includeHead is true the head view
// itself is also aggregated and written (src may then contain duplicate
// keys, as it is a freshly sorted projection); otherwise only
// chain[1:] are produced.
func emitChain(disk *simdisk.Disk, src *record.Table, chain []*lattice.Node, includeHead bool, fileOf func(lattice.ViewID) string, opts Options, st *Stats) {
	members := chain
	if !includeHead {
		members = chain[1:]
	}
	if len(members) == 0 {
		return
	}
	st.Pipelines++
	st.RowsRead += int64(src.Len())

	lens := make([]int, len(members))
	outs := make([]*record.Table, len(members))
	for i, m := range members {
		lens[i] = len(m.Order)
		outs[i] = record.New(lens[i], 0)
	}
	pipelineAggregate(src, lens, outs, record.Agg{Op: opts.Op, State: opts.State})

	emitted := 0
	for i, m := range members {
		emitted += outs[i].Len()
		disk.Put(fileOf(m.View), outs[i])
		if opts.SampleCap >= 2 {
			// The paper builds this sample in the array A[1..a] while
			// the view streams to disk; building it from the in-memory
			// buffer here is the same work at the same point in time.
			sm := sample.NewOnline(opts.SampleCap)
			sm.AddTable(outs[i])
			disk.SetMeta(fileOf(m.View), sm)
		}
	}
	st.RowsEmitted += int64(emitted)
	disk.Clock().AddCompute(costmodel.ScanOps(src.Len()) + costmodel.ScanOps(emitted))
}

// pipelineAggregate streams src (sorted lexicographically over all its
// columns) once, simultaneously aggregating at every prefix length in
// lens (each <= src.D), appending results to the corresponding outs
// table. This is the Pipesort pipeline: one scan computes every view
// in a scan chain.
func pipelineAggregate(src *record.Table, lens []int, outs []*record.Table, agg record.Agg) {
	n := src.Len()
	if n == 0 {
		return
	}
	k := len(lens)
	groupStart := make([]int, k)
	accs := make([]int64, k)
	fresh := make([]bool, k)
	combined := make([]bool, k)
	for i := 0; i < k; i++ {
		accs[i] = src.Meas(0)
	}
	maxLen := 0
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
	}
	flush := func(i, row int) {
		gs := groupStart[i]
		if combined[i] {
			// Seal combined accumulators on emit: flushed rows may be
			// stored, shipped, or merged downstream.
			accs[i] = agg.Seal(accs[i])
			combined[i] = false
		}
		outs[i].Append(src.Row(gs)[:lens[i]], accs[i])
		groupStart[i] = row
		fresh[i] = true
	}
	for r := 1; r < n; r++ {
		// First column (within the deepest prefix) where row r differs
		// from row r-1; levels whose prefix includes that column close
		// their group.
		diff := maxLen
		for c := 0; c < maxLen; c++ {
			if src.Dim(r-1, c) != src.Dim(r, c) {
				diff = c
				break
			}
		}
		m := src.Meas(r)
		for i := 0; i < k; i++ {
			if lens[i] > diff {
				flush(i, r)
			}
			if fresh[i] {
				accs[i] = m
				fresh[i] = false
			} else {
				accs[i] = agg.Combine(accs[i], m)
				combined[i] = true
			}
		}
	}
	for i := 0; i < k; i++ {
		flush(i, n)
	}
}
