package pipesort

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/simdisk"
)

func BenchmarkPlanFullLattice(b *testing.B) {
	for _, d := range []int{8, 10} {
		b.Run("d"+string(rune('0'+d/10))+string(rune('0'+d%10)), func(b *testing.B) {
			cards := make([]int, d)
			for i := range cards {
				cards[i] = 256 >> uint(i%4)
			}
			sizer := estimate.NewCardenas(1_000_000, cards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree := Plan(d, lattice.Full(d), nil, lattice.AllViews(d), sizer)
				if tree.Len() != 1<<uint(d) {
					b.Fatal("bad tree")
				}
			}
		})
	}
}

func BenchmarkExecutePartition(b *testing.B) {
	d := 8
	cards := []int{64, 32, 16, 8, 8, 6, 6, 4}
	raw := randomRaw(1, 50_000, d, cards)
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	tree := PlanPartition(0, d, sizer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
		prepRoot(disk, raw, tree.Root.Order)
		b.StartTimer()
		Execute(disk, tree, fileOf)
	}
}
