// Package pipesort implements the sequential top-down data cube method
// the parallel algorithm uses as its building block (Sarawagi, Agrawal,
// Gupta [20]): schedule-tree construction by level-wise minimum-cost
// bipartite matching over the lattice, and the pipelined scan/sort
// execution phase that materializes every view of the tree.
//
// The parallel algorithm (Procedure 1, Step 2) plans one tree per
// Di-partition with the root's attribute order pinned to the global
// sort order (Di,...,Dd-1), so that the partition's prefix views come
// out in the global order and merge cheaply. The sequential baseline
// plans over the whole lattice with a free root order.
package pipesort

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/mincostflow"
)

// Plan builds a Pipesort schedule tree over the given views.
//
// root must be a member of views and a superset of all of them. If
// rootOrder is non-nil the root is materialized in exactly that
// attribute order (the parallel algorithm pins it to the global sort
// order); if nil, the planner is free to choose the order that
// cheapens the root's pipeline. sizer provides view-size estimates for
// the scan/sort edge costs.
//
// Every view must be reachable through the next populated level: for
// full partitions (lattice.Partition) this always holds. Plan panics
// on malformed inputs; it is driven by code, not user data.
func Plan(d int, root lattice.ViewID, rootOrder lattice.Order, views []lattice.ViewID, sizer estimate.Sizer) *lattice.Tree {
	// Group views by level, validating along the way.
	byLevel := make(map[int][]lattice.ViewID)
	foundRoot := false
	for _, v := range views {
		if !v.SubsetOf(root) {
			panic(fmt.Sprintf("pipesort: view %v is not a subset of root %v", v, root))
		}
		if v == root {
			foundRoot = true
			continue
		}
		byLevel[v.Count()] = append(byLevel[v.Count()], v)
	}
	if !foundRoot {
		panic(fmt.Sprintf("pipesort: root %v not among the views", root))
	}

	type planNode struct {
		view     lattice.ViewID
		parent   lattice.ViewID
		edge     lattice.EdgeKind
		forced   lattice.Order // non-nil when the order is pinned from above
		est      float64
		children []*planNode
		scan     *planNode // scan child, if any
	}
	nodes := map[lattice.ViewID]*planNode{}
	rootNode := &planNode{view: root, edge: lattice.EdgeRoot, est: sizer.EstimateView(root)}
	if rootOrder != nil {
		rootNode.forced = lattice.OrderOf(root, rootOrder)
	}
	nodes[root] = rootNode

	// Walk levels top-down. Parents of level k are the views of the
	// smallest populated level above k (the root's level acts as the
	// top). For full partitions that is always k+1.
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))

	parents := []*planNode{rootNode}
	for _, l := range levels {
		children := byLevel[l]
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })

		// Two agents per parent: a capacity-1 scan agent (even index)
		// and an unlimited sort agent (odd index).
		caps := make([]int, 2*len(parents))
		for i := range parents {
			caps[2*i] = 1
			caps[2*i+1] = 0
		}
		var edges []mincostflow.AssignmentEdge
		for pi, p := range parents {
			scanCost := costmodel.ScanOps(int(p.est))
			sortCost := costmodel.SortOps(int(p.est))
			for ci, c := range children {
				if !c.SubsetOf(p.view) {
					continue
				}
				edges = append(edges, mincostflow.AssignmentEdge{Agent: 2*pi + 1, Task: ci, Cost: sortCost})
				// A scan edge is admissible unless the parent's order is
				// already pinned and the child is not the corresponding
				// prefix set.
				if p.forced == nil || lattice.PrefixView(c, p.forced) {
					edges = append(edges, mincostflow.AssignmentEdge{Agent: 2 * pi, Task: ci, Cost: scanCost})
				}
			}
		}
		pick, _, err := mincostflow.Assignment(caps, len(children), edges)
		if err != nil {
			panic(fmt.Sprintf("pipesort: level %d unmatchable: %v", l, err))
		}

		next := make([]*planNode, 0, len(children))
		for ci, c := range children {
			e := edges[pick[ci]]
			p := parents[e.Agent/2]
			kind := lattice.EdgeSort
			if e.Agent%2 == 0 {
				kind = lattice.EdgeScan
			}
			n := &planNode{view: c, parent: p.view, edge: kind, est: sizer.EstimateView(c)}
			if kind == lattice.EdgeScan {
				p.scan = n
				if p.forced != nil {
					n.forced = p.forced.Prefix(c.Count())
				}
			}
			p.children = append(p.children, n)
			nodes[c] = n
			next = append(next, n)
		}
		parents = next
	}

	// Derive materialization orders. Forced orders win; otherwise a
	// node's order is its scan child's order extended by its remaining
	// attributes (so scan children are prefixes by construction),
	// bottoming out at the canonical order.
	var orderOf func(n *planNode) lattice.Order
	memo := map[lattice.ViewID]lattice.Order{}
	orderOf = func(n *planNode) lattice.Order {
		if o, ok := memo[n.view]; ok {
			return o
		}
		var o lattice.Order
		switch {
		case n.forced != nil:
			o = n.forced
		case n.scan != nil:
			o = orderOf(n.scan).Extend(n.view)
		default:
			o = lattice.Canonical(n.view)
		}
		memo[n.view] = o
		return o
	}

	tree := lattice.NewTree(d, root, orderOf(rootNode))
	tree.Root.EstRows = rootNode.est
	var build func(p *planNode)
	build = func(p *planNode) {
		// Deterministic child order: scan child first, then by view id.
		sort.Slice(p.children, func(i, j int) bool {
			ci, cj := p.children[i], p.children[j]
			if (ci.edge == lattice.EdgeScan) != (cj.edge == lattice.EdgeScan) {
				return ci.edge == lattice.EdgeScan
			}
			return ci.view < cj.view
		})
		for _, c := range p.children {
			n := tree.AddChild(p.view, c.view, orderOf(c), c.edge)
			n.EstRows = c.est
			build(c)
		}
	}
	build(rootNode)
	return tree
}

// PlanPartition plans the schedule tree for the full Di-partition of a
// d-dimensional cube with the root order pinned to the global sort
// order (Di,...,Dd-1), as Procedure 1 Step 2a requires.
func PlanPartition(i, d int, sizer estimate.Sizer) *lattice.Tree {
	root := lattice.Root(i, d)
	return Plan(d, root, lattice.Canonical(root), lattice.Partition(i, d), sizer)
}
