package pipesort

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/simdisk"
)

func mustParse(s string) lattice.ViewID {
	v, err := lattice.ParseView(s)
	if err != nil {
		panic(err)
	}
	return v
}

func randomRaw(seed int64, n, d int, cards []int) *record.Table {
	rng := rand.New(rand.NewSource(seed))
	t := record.New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = uint32(rng.Intn(cards[j]))
		}
		t.Append(row, int64(rng.Intn(5)+1))
	}
	return t
}

// groupBy computes the ground-truth aggregation of raw over the
// dimension sequence ord (raw columns are canonical: column i = Di).
func groupBy(raw *record.Table, ord lattice.Order) map[string]int64 {
	out := map[string]int64{}
	for i := 0; i < raw.Len(); i++ {
		key := ""
		for _, dim := range ord {
			key += fmt.Sprintf("%d,", raw.Dim(i, dim))
		}
		out[key] += raw.Meas(i)
	}
	return out
}

// checkView verifies a materialized view table against ground truth:
// correct groups and sums, sorted, duplicate-free.
func checkView(t *testing.T, view lattice.ViewID, got *record.Table, ord lattice.Order, raw *record.Table) {
	t.Helper()
	truth := groupBy(raw, ord)
	if got.Len() != len(truth) {
		t.Fatalf("view %v: %d rows, want %d", view, got.Len(), len(truth))
	}
	if !got.IsSorted() {
		t.Fatalf("view %v not sorted in its order %v", view, ord)
	}
	for i := 0; i < got.Len(); i++ {
		key := ""
		for c := 0; c < got.D; c++ {
			key += fmt.Sprintf("%d,", got.Dim(i, c))
		}
		want, ok := truth[key]
		if !ok {
			t.Fatalf("view %v row %d key %q not in truth", view, i, key)
		}
		if got.Meas(i) != want {
			t.Fatalf("view %v key %q = %d, want %d", view, key, got.Meas(i), want)
		}
		if i > 0 && got.Compare(i-1, i, got.D) == 0 {
			t.Fatalf("view %v has duplicate rows", view)
		}
	}
}

func fileOf(v lattice.ViewID) string { return "view." + v.String() }

// prepRoot aggregates raw into the root view sorted by rootOrder and
// stores it on disk.
func prepRoot(disk *simdisk.Disk, raw *record.Table, rootOrder lattice.Order) {
	proj := raw.Project([]int(rootOrder))
	root := record.SortAggregate(proj)
	disk.Put(fileOf(rootOrder.View()), root)
}

func TestPlanPartitionStructure(t *testing.T) {
	d := 4
	sizer := estimate.NewCardenas(10000, []int{16, 8, 4, 2})
	for i := 0; i < d; i++ {
		tree := PlanPartition(i, d, sizer)
		if err := tree.Validate(); err != nil {
			t.Fatalf("partition %d: %v\n%s", i, err, tree)
		}
		want := lattice.Partition(i, d)
		got := tree.Views()
		if len(got) != len(want) {
			t.Fatalf("partition %d: %d views, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("partition %d: views %v, want %v", i, got, want)
			}
		}
		// Root order pinned to the global sort order Di..Dd-1.
		if !tree.Root.Order.Equal(lattice.Canonical(lattice.Root(i, d))) {
			t.Fatalf("partition %d root order %v not pinned", i, tree.Root.Order)
		}
	}
}

func TestPlanPrefersScanForPrefixChild(t *testing.T) {
	// With the root order pinned to ABCD, scan edges out of the pinned
	// chain are only feasible for exact prefix sets, so the root's chain
	// must begin ABCD -> ABC -> AB (the level-3 and level-2 prefix
	// views). Deeper chain membership is a genuine cost decision: with
	// these cardinalities, A is cheaper to scan off the small AD view
	// than off AB, and the optimal matching is free to do so.
	sizer := estimate.NewCardenas(100000, []int{32, 16, 8, 4})
	tree := PlanPartition(0, 4, sizer)
	chain := lattice.ScanChain(tree.Root)
	if len(chain) < 3 {
		t.Fatalf("root scan chain has %d nodes, want >= 3:\n%s", len(chain), tree)
	}
	wantChain := []string{"ABCD", "ABC", "AB"}
	for i, w := range wantChain {
		if chain[i].View != mustParse(w) {
			t.Fatalf("chain[%d] = %v, want %s\n%s", i, chain[i].View, w, tree)
		}
	}
	// Every chain member of the pinned root is materialized in the
	// global sort order's prefix.
	for _, n := range chain {
		if !n.Order.IsPrefixOf(tree.Root.Order) {
			t.Fatalf("chain node %v order %v not a prefix of root order", n.View, n.Order)
		}
	}
}

func TestPlanFreeRootOrder(t *testing.T) {
	// Sequential baseline: free root order over the full lattice.
	d := 4
	sizer := estimate.NewCardenas(10000, []int{16, 8, 4, 2})
	tree := Plan(d, lattice.Full(d), nil, lattice.AllViews(d), sizer)
	if err := tree.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, tree)
	}
	if tree.Len() != 16 {
		t.Fatalf("tree has %d views, want 16", tree.Len())
	}
}

func TestPlanPanicsOnBadInput(t *testing.T) {
	sizer := estimate.NewCardenas(100, []int{4, 4})
	for _, f := range []func(){
		// Root not among views.
		func() { Plan(2, lattice.Full(2), nil, []lattice.ViewID{mustParse("A")}, sizer) },
		// View not subset of root.
		func() {
			Plan(2, mustParse("A"), nil, []lattice.ViewID{mustParse("A"), mustParse("B")}, sizer)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestExecutePartitionCorrectness(t *testing.T) {
	d := 4
	cards := []int{8, 6, 4, 3}
	raw := randomRaw(11, 2000, d, cards)
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	for i := 0; i < d; i++ {
		disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
		tree := PlanPartition(i, d, sizer)
		prepRoot(disk, raw, tree.Root.Order)
		st := Execute(disk, tree, fileOf)
		if st.Pipelines == 0 || st.RowsEmitted == 0 {
			t.Fatalf("partition %d: empty stats %+v", i, st)
		}
		tree.Walk(func(n *lattice.Node) {
			got := disk.MustGet(fileOf(n.View))
			checkView(t, n.View, got, n.Order, raw)
		})
	}
}

func TestExecuteFullCubeSequential(t *testing.T) {
	// The complete sequential Pipesort: plan over the whole lattice,
	// sort raw data by the derived root order, execute, verify all 2^d.
	d := 4
	cards := []int{10, 5, 4, 2}
	raw := randomRaw(23, 1500, d, cards)
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	tree := Plan(d, lattice.Full(d), nil, lattice.AllViews(d), sizer)
	if err := tree.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, tree)
	}
	disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
	prepRoot(disk, raw, tree.Root.Order)
	Execute(disk, tree, fileOf)
	count := 0
	tree.Walk(func(n *lattice.Node) {
		count++
		checkView(t, n.View, disk.MustGet(fileOf(n.View)), n.Order, raw)
	})
	if count != 16 {
		t.Fatalf("materialized %d views, want 16", count)
	}
}

func TestExecuteEmptyInput(t *testing.T) {
	d := 3
	sizer := estimate.NewCardenas(0, []int{4, 4, 4})
	tree := PlanPartition(0, d, sizer)
	disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
	disk.Put(fileOf(tree.Root.View), record.New(3, 0))
	Execute(disk, tree, fileOf)
	tree.Walk(func(n *lattice.Node) {
		if got := disk.MustGet(fileOf(n.View)); got.Len() != 0 {
			t.Fatalf("view %v should be empty, has %d rows", n.View, got.Len())
		}
	})
}

func TestExecuteSingleRow(t *testing.T) {
	d := 3
	raw := record.FromRows(3, [][]uint32{{1, 2, 3}}, []int64{7})
	sizer := estimate.NewCardenas(1, []int{4, 4, 4})
	tree := PlanPartition(0, d, sizer)
	disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
	prepRoot(disk, raw, tree.Root.Order)
	Execute(disk, tree, fileOf)
	tree.Walk(func(n *lattice.Node) {
		got := disk.MustGet(fileOf(n.View))
		if got.Len() != 1 || got.Meas(0) != 7 {
			t.Fatalf("view %v = %v", n.View, got)
		}
	})
}

func TestExecuteChargesTime(t *testing.T) {
	d := 4
	cards := []int{8, 6, 4, 3}
	raw := randomRaw(5, 3000, d, cards)
	clk := costmodel.NewClock(costmodel.Default())
	disk := simdisk.New(clk)
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	tree := PlanPartition(0, d, sizer)
	prepRoot(disk, raw, tree.Root.Order)
	before := clk.Seconds()
	st := Execute(disk, tree, fileOf)
	if clk.Seconds() <= before {
		t.Fatal("execution charged no simulated time")
	}
	if clk.CPUSeconds() == 0 || clk.DiskSeconds() == 0 {
		t.Fatal("execution must charge both CPU and disk components")
	}
	if st.Sorts == 0 {
		t.Fatal("a d=4 partition requires at least one sort edge")
	}
}

func TestPipelineAggregateMultiLevel(t *testing.T) {
	// Sorted input over 3 cols; aggregate at prefix lengths 3, 2, 1, 0
	// in one pass and compare against record.AggregateSorted.
	raw := randomRaw(9, 500, 3, []int{4, 3, 2})
	raw.Sort()
	lens := []int{3, 2, 1, 0}
	outs := make([]*record.Table, len(lens))
	for i, l := range lens {
		outs[i] = record.New(l, 0)
	}
	pipelineAggregate(raw, lens, outs, record.Agg{Op: record.OpSum})
	for i, l := range lens {
		want := record.AggregateSorted(raw, l)
		if !record.Equal(outs[i], want) {
			t.Fatalf("prefix %d: pipeline disagrees with AggregateSorted", l)
		}
	}
}

func TestStatsRowsEmittedMatchesViewSizes(t *testing.T) {
	d := 3
	cards := []int{6, 4, 2}
	raw := randomRaw(31, 800, d, cards)
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	tree := PlanPartition(0, d, sizer)
	disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
	prepRoot(disk, raw, tree.Root.Order)
	st := Execute(disk, tree, fileOf)
	var total int64
	tree.Walk(func(n *lattice.Node) {
		if n != tree.Root {
			total += int64(disk.Len(fileOf(n.View)))
		}
	})
	if st.RowsEmitted != total {
		t.Fatalf("RowsEmitted = %d, view rows (excl. root) = %d", st.RowsEmitted, total)
	}
}
