package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/partialcube"
	"repro/internal/record"
)

// buildMachine generates a data set, distributes it over p processors,
// and runs BuildCube.
func buildMachine(t *testing.T, spec gen.Spec, p int, cfg Config) (*cluster.Machine, Metrics, *record.Table) {
	t.Helper()
	g := gen.New(spec)
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	met, err := BuildCube(m, "raw", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, met, g.All()
}

// checkCube verifies every selected view against a brute-force hash
// group-by of the full raw data: globally sorted, duplicate-free,
// correct sums.
func checkCube(t *testing.T, m *cluster.Machine, raw *record.Table, views []lattice.ViewID) {
	t.Helper()
	for _, v := range views {
		// Determine the materialized order from the column layout: we
		// reconstruct ground truth per attribute order by gathering the
		// distributed slices and checking group sums for every possible
		// order is overkill; instead verify against all-order-agnostic
		// invariants plus sum-per-group via P0's order metadata being
		// unavailable here, we use the canonical trick: aggregate truth
		// keyed by multiset of (dim value) pairs is order-dependent, so
		// instead we check totals and row counts, then sortedness.
		var parts []*record.Table
		for r := 0; r < m.P(); r++ {
			if tb, ok := m.Proc(r).Disk().Get(ViewFile(v)); ok {
				parts = append(parts, tb)
			}
		}
		concat := record.New(v.Count(), 0)
		for i, tb := range parts {
			if !tb.IsSorted() {
				t.Fatalf("view %v part %d not sorted", v, i)
			}
			concat.AppendTable(tb)
		}
		if !concat.IsSorted() {
			t.Fatalf("view %v not globally sorted", v)
		}
		for i := 1; i < concat.Len(); i++ {
			if concat.Compare(i-1, i, concat.D) == 0 {
				t.Fatalf("view %v has cross-processor duplicate keys", v)
			}
		}
		if got, want := concat.TotalMeasure(), raw.TotalMeasure(); got != want {
			t.Fatalf("view %v measure mass %d, want %d", v, got, want)
		}
		// Distinct-group count must match a hash group-by on the raw
		// data (group identity is order-independent).
		groups := map[string]int64{}
		for i := 0; i < raw.Len(); i++ {
			key := ""
			for _, dim := range v.Dims() {
				key += fmt.Sprintf("%d,", raw.Dim(i, dim))
			}
			groups[key] += raw.Meas(i)
		}
		if concat.Len() != len(groups) {
			t.Fatalf("view %v has %d rows, want %d", v, concat.Len(), len(groups))
		}
		// Sum-set equality: collect measure multiset per view.
		counts := map[int64]int{}
		for _, s := range groups {
			counts[s]++
		}
		for i := 0; i < concat.Len(); i++ {
			counts[concat.Meas(i)]--
		}
		for s, c := range counts {
			if c != 0 {
				t.Fatalf("view %v group-sum multiset mismatch at sum %d (delta %d)", v, s, c)
			}
		}
	}
}

func smallSpec() gen.Spec {
	return gen.Spec{N: 3000, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 7}
}

func TestFullCubeCorrectnessAcrossP(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		m, met, raw := buildMachine(t, smallSpec(), p, Config{D: 4})
		checkCube(t, m, raw, lattice.AllViews(4))
		if met.OutputRows == 0 || met.SimSeconds <= 0 {
			t.Fatalf("p=%d: empty metrics %+v", p, met)
		}
		if met.P != p {
			t.Fatalf("metrics P = %d", met.P)
		}
	}
}

func TestFullCubeOutputBalanced(t *testing.T) {
	p := 4
	m, _, _ := buildMachine(t, gen.Spec{N: 8000, D: 4, Cards: []int{16, 12, 8, 5}, Seed: 3}, p, Config{D: 4})
	// Large views should be spread within a loose bound (small views
	// can't balance, so only check views with >= 8p rows).
	for _, v := range lattice.AllViews(4) {
		sizes := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			if n := m.Proc(r).Disk().Len(ViewFile(v)); n > 0 {
				sizes[r] = n
				total += n
			}
		}
		if total < 8*p {
			continue
		}
		if I := balance.Imbalance(sizes); I > 0.5 {
			t.Errorf("view %v imbalance %.2f (sizes %v)", v, I, sizes)
		}
	}
}

func TestPartialCubeOnlySelectedMaterialized(t *testing.T) {
	sel := partialcube.SelectPercent(4, 50, 11)
	p := 3
	m, met, raw := buildMachine(t, smallSpec(), p, Config{D: 4, Selected: sel})
	checkCube(t, m, raw, sel)
	selSet := map[lattice.ViewID]bool{}
	for _, v := range sel {
		selSet[v] = true
	}
	for _, v := range lattice.AllViews(4) {
		exists := false
		for r := 0; r < p; r++ {
			if m.Proc(r).Disk().Has(ViewFile(v)) {
				exists = true
			}
		}
		if selSet[v] && !exists {
			t.Fatalf("selected view %v missing", v)
		}
		if !selSet[v] && exists {
			t.Fatalf("unselected view %v left on disk", v)
		}
	}
	if met.OutputRows == 0 {
		t.Fatal("no output rows")
	}
}

func TestPartialCubeGreedyPlanner(t *testing.T) {
	sel := partialcube.SelectPercent(4, 25, 5)
	m, _, raw := buildMachine(t, smallSpec(), 3, Config{D: 4, Selected: sel, Partial: partialcube.Greedy})
	checkCube(t, m, raw, sel)
}

func TestLocalTreeModeCorrect(t *testing.T) {
	// Local trees diverge (each processor holds a different key range
	// after partitioning) but the cube must still be correct; resorts
	// are counted.
	spec := gen.Spec{N: 6000, D: 4, Cards: []int{16, 8, 6, 4}, Seed: 13}
	m, met, raw := buildMachine(t, spec, 4, Config{D: 4, Schedule: LocalTree})
	checkCube(t, m, raw, lattice.AllViews(4))
	t.Logf("local-tree resorts: %d", met.Resorts)
}

func TestGlobalTreeModeNeverResorts(t *testing.T) {
	m, met, raw := buildMachine(t, smallSpec(), 4, Config{D: 4, Schedule: GlobalTree})
	checkCube(t, m, raw, lattice.AllViews(4))
	if met.Resorts != 0 {
		t.Fatalf("global trees must never resort, got %d", met.Resorts)
	}
}

func TestFMEstimatorModeCorrect(t *testing.T) {
	m, _, raw := buildMachine(t, smallSpec(), 3, Config{D: 4, Estimator: FMEstimator})
	checkCube(t, m, raw, lattice.AllViews(4))
}

func TestSkewedDataCorrect(t *testing.T) {
	spec := gen.Spec{N: 5000, D: 4, Cards: []int{16, 8, 6, 4},
		Skews: []float64{2, 2, 2, 2}, Seed: 9}
	m, _, raw := buildMachine(t, spec, 4, Config{D: 4})
	checkCube(t, m, raw, lattice.AllViews(4))
}

func TestLeadingDimensionSkewCorrect(t *testing.T) {
	// The paper's "difficult input" (§4.4, curve D): high skew and high
	// cardinality on the leading dimension only.
	spec := gen.Spec{N: 5000, D: 4, Cards: []int{64, 8, 6, 4},
		Skews: []float64{3, 0, 0, 0}, Seed: 21}
	m, _, raw := buildMachine(t, spec, 4, Config{D: 4})
	checkCube(t, m, raw, lattice.AllViews(4))
}

func TestMetricsPhases(t *testing.T) {
	_, met, _ := buildMachine(t, smallSpec(), 3, Config{D: 4})
	for _, name := range []string{"partition", "plan", "build", "merge"} {
		if met.PhaseSeconds[name] <= 0 {
			t.Fatalf("phase %q has no time (phases: %v)", name, met.PhaseSeconds)
		}
	}
	if met.BytesMoved <= 0 || met.Supersteps <= 0 {
		t.Fatalf("communication metrics empty: %+v", met)
	}
	if met.BytesByPhase["partition"] <= 0 {
		t.Fatal("partitioning moved no bytes")
	}
	total := 0
	for _, n := range met.CaseCounts {
		total += n
	}
	if total != 16 {
		t.Fatalf("case counts cover %d views, want 16 (%v)", total, met.CaseCounts)
	}
	if met.CaseCounts[mergepart.CasePrefix] < 4 {
		t.Fatalf("expected at least the 4 roots + prefixes as case 1: %v", met.CaseCounts)
	}
}

func TestOutputRowsMatchViewRows(t *testing.T) {
	_, met, raw := buildMachine(t, smallSpec(), 2, Config{D: 4})
	var sum int64
	for _, rows := range met.ViewRows {
		sum += rows
	}
	if sum != met.OutputRows {
		t.Fatalf("OutputRows %d != sum of ViewRows %d", met.OutputRows, sum)
	}
	// The "all" view has exactly one row; the full view at most n.
	if met.ViewRows[lattice.Empty] != 1 {
		t.Fatalf("all view rows = %d", met.ViewRows[lattice.Empty])
	}
	if met.ViewRows[lattice.Full(4)] > int64(raw.Len()) {
		t.Fatal("full view larger than raw data")
	}
}

func TestEmptyInput(t *testing.T) {
	spec := gen.Spec{N: 0, D: 3, Cards: []int{4, 3, 2}, Seed: 1}
	m, met, _ := buildMachine(t, spec, 3, Config{D: 3})
	if met.OutputRows != 0 {
		t.Fatalf("empty input produced %d rows", met.OutputRows)
	}
	for _, v := range lattice.AllViews(3) {
		for r := 0; r < 3; r++ {
			if n := m.Proc(r).Disk().Len(ViewFile(v)); n > 0 {
				t.Fatalf("view %v has rows on empty input", v)
			}
		}
	}
}

func TestTinyInputFewerRowsThanProcessors(t *testing.T) {
	spec := gen.Spec{N: 3, D: 3, Cards: []int{4, 3, 2}, Seed: 2}
	m, _, raw := buildMachine(t, spec, 5, Config{D: 3})
	checkCube(t, m, raw, lattice.AllViews(3))
}

func TestRawDataPreserved(t *testing.T) {
	spec := smallSpec()
	g := gen.New(spec)
	p := 3
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	BuildCube(m, "raw", Config{D: 4})
	for r := 0; r < p; r++ {
		got := m.Proc(r).Disk().MustGet("raw")
		if !record.Equal(got, g.Slice(r, p)) {
			t.Fatalf("processor %d raw data mutated", r)
		}
	}
}

func TestComponentBreakdownAndMaskableComm(t *testing.T) {
	_, met, _ := buildMachine(t, smallSpec(), 4, Config{D: 4})
	if met.CPUSeconds <= 0 || met.DiskSeconds <= 0 || met.CommSeconds <= 0 {
		t.Fatalf("component breakdown empty: cpu=%v disk=%v comm=%v",
			met.CPUSeconds, met.DiskSeconds, met.CommSeconds)
	}
	// Components never exceed the makespan (barrier wait fills the gap).
	sum := met.CPUSeconds + met.DiskSeconds + met.CommSeconds
	if sum > met.SimSeconds*1.0001 {
		t.Fatalf("components (%v) exceed makespan (%v)", sum, met.SimSeconds)
	}
	f := met.MaskableCommFraction()
	if f <= 0 || f >= 1 {
		t.Fatalf("maskable comm fraction %v out of (0,1)", f)
	}
}

func TestOneAndTwoDimensionalCubes(t *testing.T) {
	// Degenerate lattices: d=1 has views {A, all}; d=2 adds {B, AB}.
	for _, d := range []int{1, 2} {
		cards := []int{9, 4}[:d]
		spec := gen.Spec{N: 500, D: d, Cards: cards, Seed: 5}
		m, met, raw := buildMachine(t, spec, 3, Config{D: d})
		checkCube(t, m, raw, lattice.AllViews(d))
		if met.ViewRows[lattice.Empty] != 1 {
			t.Fatalf("d=%d: grand total has %d rows", d, met.ViewRows[lattice.Empty])
		}
	}
}

func TestTightAndLooseGammas(t *testing.T) {
	for _, g := range []float64{0.001, 0.2} {
		m, _, raw := buildMachine(t, smallSpec(), 4, Config{D: 4, Gamma: g, MergeGamma: g})
		checkCube(t, m, raw, lattice.AllViews(4))
	}
}

func TestMissingRawFileErrors(t *testing.T) {
	m := cluster.New(2, costmodel.Default())
	// No raw data placed on the disks: the machine must fail loudly,
	// not deadlock or silently build an empty cube.
	if _, err := BuildCube(m, "raw", Config{D: 3}); err == nil {
		t.Fatal("expected error for missing raw file")
	}
}

func TestBadConfigErrors(t *testing.T) {
	cases := []Config{
		{D: 0},
		{D: lattice.MaxDims + 1},
		{D: 3, Gamma: -0.5},
		{D: 3, MergeGamma: 2},
		{D: 3, SampleCap: -1},
		{D: 2, Selected: []lattice.ViewID{lattice.Full(5)}},
		{D: 3, Checkpoint: CheckpointConfig{Enabled: true, Interval: -2}},
		{D: 3, Checkpoint: CheckpointConfig{Enabled: true, DetectSeconds: -1}},
	}
	for i, cfg := range cases {
		g := gen.New(gen.Spec{N: 50, D: 5, Cards: []int{5, 4, 3, 2, 2}, Seed: 1})
		m := cluster.New(2, costmodel.Default())
		for r := 0; r < 2; r++ {
			m.Proc(r).Disk().Put("raw", g.Slice(r, 2))
		}
		if _, err := BuildCube(m, "raw", cfg); err == nil {
			t.Errorf("case %d: expected config validation error", i)
		}
	}
}

func TestQuickRandomConfigurations(t *testing.T) {
	// Randomized end-to-end property: any (d, p, skew, gamma, schedule
	// mode) combination must produce a correct cube.
	f := func(seed int64, dRaw, pRaw, modeRaw uint8, gammaRaw uint8) bool {
		d := int(dRaw%4) + 2 // 2..5
		p := int(pRaw%6) + 1 // 1..6
		alpha := float64(uint64(seed)%3) / 2
		gamma := float64(gammaRaw%10)/100 + 0.001
		cards := []int{13, 9, 7, 5, 3}[:d]
		skews := make([]float64, d)
		for i := range skews {
			skews[i] = alpha
		}
		spec := gen.Spec{N: 800, D: d, Cards: cards, Skews: skews, Seed: seed}
		cfg := Config{D: d, Gamma: gamma, MergeGamma: gamma}
		if modeRaw%2 == 1 {
			cfg.Schedule = LocalTree
		}
		g := gen.New(spec)
		m := cluster.New(p, costmodel.Default())
		for r := 0; r < p; r++ {
			m.Proc(r).Disk().Put("raw", g.Slice(r, p))
		}
		met, err := BuildCube(m, "raw", cfg)
		if err != nil {
			return false
		}
		raw := g.All()
		// Spot-check three views: full, the empty view, one mid view.
		views := []lattice.ViewID{lattice.Full(d), lattice.Empty, lattice.Full(d).Remove(0)}
		for _, v := range views {
			concat := record.New(v.Count(), 0)
			for r := 0; r < p; r++ {
				if tb, ok := m.Proc(r).Disk().Get(ViewFile(v)); ok {
					concat.AppendTable(tb)
				}
			}
			if !concat.IsSorted() || concat.TotalMeasure() != raw.TotalMeasure() {
				return false
			}
			groups := map[string]bool{}
			for i := 0; i < raw.Len(); i++ {
				key := ""
				for _, dim := range v.Dims() {
					key += fmt.Sprintf("%d,", raw.Dim(i, dim))
				}
				groups[key] = true
			}
			if concat.Len() != len(groups) {
				return false
			}
		}
		return met.OutputRows > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxAggregation(t *testing.T) {
	// Build MIN and MAX cubes and verify three views against brute
	// force; the distributed merge must combine partial aggregates
	// with the operator, not add them.
	spec := smallSpec()
	for _, op := range []record.AggOp{record.OpMin, record.OpMax} {
		m, _, raw := buildMachine(t, spec, 4, Config{D: 4, Agg: op})
		for _, v := range []lattice.ViewID{lattice.Empty, lattice.Full(4).Remove(1), lattice.Full(4)} {
			concat := record.New(v.Count(), 0)
			for r := 0; r < 4; r++ {
				if tb, ok := m.Proc(r).Disk().Get(ViewFile(v)); ok {
					concat.AppendTable(tb)
				}
			}
			truth := map[string]int64{}
			seen := map[string]bool{}
			for i := 0; i < raw.Len(); i++ {
				key := ""
				for _, dim := range v.Dims() {
					key += fmt.Sprintf("%d,", raw.Dim(i, dim))
				}
				if !seen[key] {
					seen[key] = true
					truth[key] = raw.Meas(i)
				} else {
					truth[key] = op.Combine(truth[key], raw.Meas(i))
				}
			}
			if concat.Len() != len(truth) {
				t.Fatalf("%v view %v: %d rows, want %d", op, v, concat.Len(), len(truth))
			}
			for i := 0; i < concat.Len(); i++ {
				key := ""
				for c := 0; c < concat.D; c++ {
					key += fmt.Sprintf("%d,", concat.Dim(i, c))
				}
				if concat.Meas(i) != truth[key] {
					t.Fatalf("%v view %v key %q = %d, want %d", op, v, key, concat.Meas(i), truth[key])
				}
			}
		}
	}
}

func TestIcebergCube(t *testing.T) {
	spec := smallSpec()
	threshold := int64(20)
	m, met, raw := buildMachine(t, spec, 4, Config{D: 4, MinSupport: threshold})
	for _, v := range []lattice.ViewID{lattice.Full(4), lattice.Full(4).Remove(2), lattice.Empty} {
		concat := record.New(v.Count(), 0)
		for r := 0; r < 4; r++ {
			if tb, ok := m.Proc(r).Disk().Get(ViewFile(v)); ok {
				concat.AppendTable(tb)
			}
		}
		truth := map[string]int64{}
		for i := 0; i < raw.Len(); i++ {
			key := ""
			for _, dim := range v.Dims() {
				key += fmt.Sprintf("%d,", raw.Dim(i, dim))
			}
			truth[key] += raw.Meas(i)
		}
		want := 0
		for _, s := range truth {
			if s >= threshold {
				want++
			}
		}
		if concat.Len() != want {
			t.Fatalf("iceberg view %v: %d groups, want %d", v, concat.Len(), want)
		}
		for i := 0; i < concat.Len(); i++ {
			if concat.Meas(i) < threshold {
				t.Fatalf("iceberg view %v kept group below threshold: %d", v, concat.Meas(i))
			}
		}
	}
	// An iceberg cube is never larger than the full cube.
	_, full, _ := buildMachine(t, spec, 4, Config{D: 4})
	if met.OutputRows >= full.OutputRows {
		t.Fatalf("iceberg rows %d not smaller than full %d", met.OutputRows, full.OutputRows)
	}
}
