package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/record"
)

// buildFaulty distributes smallSpec over p processors and runs
// BuildCube with the given config, returning the machine, metrics and
// error without failing the test.
func buildFaulty(t *testing.T, p int, cfg Config) (*cluster.Machine, Metrics, error) {
	t.Helper()
	g := gen.New(smallSpec())
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	met, err := BuildCube(m, "raw", cfg)
	return m, met, err
}

// gatherView concatenates a view's slices in rank order; every build of
// the same data must produce the identical globally sorted table.
func gatherView(m *cluster.Machine, v lattice.ViewID) *record.Table {
	concat := record.New(v.Count(), 0)
	for r := 0; r < m.P(); r++ {
		if tb, ok := m.Proc(r).Disk().Get(ViewFile(v)); ok {
			concat.AppendTable(tb)
		}
	}
	return concat
}

func TestCrashWithoutCheckpointFailsFast(t *testing.T) {
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 1, Dimension: 2, Phase: "build"}}}
	_, _, err := buildFaulty(t, 4, Config{D: 4, Faults: plan})
	var crash *faults.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want *faults.CrashError, got %v", err)
	}
	if crash.Rank != 1 || crash.Dimension != 2 || crash.Phase != "build" {
		t.Fatalf("crash = %+v, want rank 1 dimension 2 phase build", crash)
	}
}

func TestRecoveryAtEveryDimensionBoundary(t *testing.T) {
	// Reference build, fault free.
	cleanM, cleanMet, raw := buildMachine(t, smallSpec(), 4, Config{D: 4})
	views := lattice.AllViews(4)

	for dim := 0; dim < 4; dim++ {
		plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 2, Dimension: dim}}}
		m, met, err := buildFaulty(t, 4, Config{
			D:          4,
			Faults:     plan,
			Checkpoint: CheckpointConfig{Enabled: true},
		})
		if err != nil {
			t.Fatalf("crash at dimension %d boundary: %v", dim, err)
		}
		if m.P() != 3 {
			t.Fatalf("dim %d: machine has %d processors after recovery, want 3", dim, m.P())
		}
		if !reflect.DeepEqual(met.FailedRanks, []int{2}) {
			t.Fatalf("dim %d: FailedRanks = %v, want [2]", dim, met.FailedRanks)
		}
		if met.RecoverySeconds <= 0 {
			t.Fatalf("dim %d: RecoverySeconds = %v, want > 0", dim, met.RecoverySeconds)
		}
		if met.CheckpointBytes <= 0 {
			t.Fatalf("dim %d: CheckpointBytes = %v, want > 0", dim, met.CheckpointBytes)
		}
		checkCube(t, m, raw, views)
		// The degraded build's cube is byte-identical to the clean one.
		for _, v := range views {
			if !record.Equal(gatherView(m, v), gatherView(cleanM, v)) {
				t.Fatalf("dim %d: view %v differs from the fault-free build", dim, v)
			}
		}
		if met.OutputRows != cleanMet.OutputRows {
			t.Fatalf("dim %d: output rows %d, clean build %d", dim, met.OutputRows, cleanMet.OutputRows)
		}
	}
}

func TestRecoveryFromMidPhaseCrash(t *testing.T) {
	// A crash inside a phase restarts its whole dimension iteration.
	for _, phase := range []string{"partition", "plan", "build", "merge"} {
		plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 0, Dimension: 2, Phase: phase}}}
		m, met, err := buildFaulty(t, 4, Config{
			D:          4,
			Faults:     plan,
			Checkpoint: CheckpointConfig{Enabled: true},
		})
		if err != nil {
			t.Fatalf("crash in phase %s: %v", phase, err)
		}
		g := gen.New(smallSpec())
		checkCube(t, m, g.All(), lattice.AllViews(4))
		if met.RecoverySeconds <= 0 {
			t.Fatalf("phase %s: RecoverySeconds = %v, want > 0", phase, met.RecoverySeconds)
		}
	}
}

func TestRecoveryWithCheckpointInterval(t *testing.T) {
	// Interval 2 checkpoints at boundaries 2 (and the initial raw
	// checkpoint at 0): a crash in dimension 3 resumes from 2, replaying
	// dimension 2's work.
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 1, Dimension: 3, Phase: "merge"}}}
	m, met, err := buildFaulty(t, 4, Config{
		D:          4,
		Faults:     plan,
		Checkpoint: CheckpointConfig{Enabled: true, Interval: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(smallSpec())
	checkCube(t, m, g.All(), lattice.AllViews(4))
	if met.RecoverySeconds <= 0 {
		t.Fatalf("RecoverySeconds = %v, want > 0", met.RecoverySeconds)
	}
}

func TestSequentialCrashesRecover(t *testing.T) {
	// Two processors die in different dimensions; the build finishes on
	// p-2 because recovery re-arms the checkpoints on the shrunken ring.
	plan := &faults.Plan{Crashes: []faults.Crash{
		{Rank: 3, Dimension: 1},
		{Rank: 0, Dimension: 2, Phase: "build"},
	}}
	m, met, err := buildFaulty(t, 4, Config{
		D:          4,
		Faults:     plan,
		Checkpoint: CheckpointConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.P() != 2 {
		t.Fatalf("machine has %d processors, want 2 after two crashes", m.P())
	}
	if !reflect.DeepEqual(met.FailedRanks, []int{3, 0}) {
		t.Fatalf("FailedRanks = %v, want [3 0]", met.FailedRanks)
	}
	g := gen.New(smallSpec())
	checkCube(t, m, g.All(), lattice.AllViews(4))
}

func TestRecoveryOnPartialCube(t *testing.T) {
	sel := []lattice.ViewID{lattice.Full(4), lattice.Empty, lattice.Full(4).Remove(1), lattice.Full(4).Remove(0).Remove(2)}
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 2, Dimension: 2}}}
	m, _, err := buildFaulty(t, 4, Config{
		D:          4,
		Selected:   sel,
		Faults:     plan,
		Checkpoint: CheckpointConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(smallSpec())
	checkCube(t, m, g.All(), sel)
}

func TestFaultPlanDeterminism(t *testing.T) {
	// Two builds under the same plan — crash, drops, corruption,
	// straggler — must produce byte-identical views and identical
	// metrics. The plan value itself is shared to prove it stays
	// immutable across runs.
	plan := &faults.Plan{
		Seed:        42,
		Crashes:     []faults.Crash{{Rank: 1, Dimension: 1, Phase: "merge"}},
		Drops:       []faults.PayloadFault{{Src: 0, Dst: 2, Exchange: 1, Times: 2}},
		Corruptions: []faults.PayloadFault{{Src: 3, Dst: 0, Exchange: 0}},
		Stragglers:  []faults.Straggler{{Rank: 2, Factor: 1.5}},
	}
	cfg := Config{D: 4, Faults: plan, Checkpoint: CheckpointConfig{Enabled: true}}
	m1, met1, err1 := buildFaulty(t, 4, cfg)
	m2, met2, err2 := buildFaulty(t, 4, cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("builds failed: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(met1, met2) {
		t.Fatalf("metrics differ between identical faulty builds:\n%+v\n%+v", met1, met2)
	}
	if met1.RetriedMessages == 0 {
		t.Fatal("expected retried messages from injected drops/corruptions")
	}
	for _, v := range lattice.AllViews(4) {
		for r := 0; r < m1.P(); r++ {
			t1, ok1 := m1.Proc(r).Disk().Get(ViewFile(v))
			t2, ok2 := m2.Proc(r).Disk().Get(ViewFile(v))
			if ok1 != ok2 {
				t.Fatalf("view %v rank %d: presence differs", v, r)
			}
			if ok1 && !record.Equal(t1, t2) {
				t.Fatalf("view %v rank %d: slices differ between identical builds", v, r)
			}
		}
	}
}

func TestCheckpointOverheadWithoutFaults(t *testing.T) {
	// Checkpointing alone must not change the cube, only add charged
	// overhead.
	mc, met, raw := buildMachine(t, smallSpec(), 4, Config{D: 4, Checkpoint: CheckpointConfig{Enabled: true}})
	checkCube(t, mc, raw, lattice.AllViews(4))
	if met.CheckpointBytes <= 0 || met.CheckpointSeconds <= 0 {
		t.Fatalf("checkpoint overhead not charged: bytes=%d seconds=%v", met.CheckpointBytes, met.CheckpointSeconds)
	}
	if met.RecoverySeconds != 0 || len(met.FailedRanks) != 0 {
		t.Fatalf("fault-free build reports recovery: %v %v", met.RecoverySeconds, met.FailedRanks)
	}
	_, plain, _ := buildMachine(t, smallSpec(), 4, Config{D: 4})
	if met.SimSeconds <= plain.SimSeconds {
		t.Fatalf("checkpointing cost nothing: %.3fs vs %.3fs", met.SimSeconds, plain.SimSeconds)
	}
}

func TestStragglerStretchesMakespan(t *testing.T) {
	_, plain, _ := buildMachine(t, smallSpec(), 4, Config{D: 4})
	plan := &faults.Plan{Stragglers: []faults.Straggler{{Rank: 2, Factor: 4}}}
	_, slow, err := buildFaulty(t, 4, Config{D: 4, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if slow.SimSeconds <= plain.SimSeconds {
		t.Fatalf("straggler did not stretch makespan: %.3fs vs %.3fs", slow.SimSeconds, plain.SimSeconds)
	}
	if slow.OutputRows != plain.OutputRows {
		t.Fatalf("straggler changed the cube: %d vs %d rows", slow.OutputRows, plain.OutputRows)
	}
}

func TestRecoveryUnderOverlappedComm(t *testing.T) {
	// The §4.1 overlap mode leaves communication in flight when a
	// processor dies; recovery must still settle and complete.
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 1, Dimension: 2, Phase: "merge"}}}
	m, met, err := buildFaulty(t, 4, Config{
		D:           4,
		OverlapComm: true,
		Faults:      plan,
		Checkpoint:  CheckpointConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(smallSpec())
	checkCube(t, m, g.All(), lattice.AllViews(4))
	if met.RecoverySeconds <= 0 {
		t.Fatalf("RecoverySeconds = %v, want > 0", met.RecoverySeconds)
	}
}

func TestSingleProcessorCrashIsFatal(t *testing.T) {
	// With p=1 there is no survivor to recover on; the crash is returned
	// even with checkpointing enabled.
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 0, Dimension: 1}}}
	_, _, err := buildFaulty(t, 1, Config{
		D:          4,
		Faults:     plan,
		Checkpoint: CheckpointConfig{Enabled: true},
	})
	var crash *faults.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want *faults.CrashError, got %v", err)
	}
}
