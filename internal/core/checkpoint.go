package core

// Per-dimension checkpointing and crash recovery. The protocol exploits
// the structure of Procedure 1: every dimension iteration re-reads the
// immutable raw share and its outputs are exactly the views of the
// Di-partition, so the durable state needed to restart from a dimension
// boundary is the raw share plus the completed views. Each processor
// therefore replicates its raw share up front and its newly completed
// view slices at every checkpoint boundary to its ring neighbor
// ((rank+1) mod p), along with a manifest recording how far the build
// has progressed. All checkpoint I/O and communication is charged on
// the simulated clocks.
//
// When processor f crashes, the survivors shrink to p-1 ranks. The dead
// rank's ring neighbor holds its replicas and adopts them: the raw
// replica is appended to the neighbor's own share, the view replicas
// merged into its own sorted slices. The completed views are then
// rebalanced across the survivors with Adaptive–Sample–Sort (presorted
// mode: only the sampling, the h-relation, and the p-way merge are
// paid), the checkpoint state is rebuilt on the shrunken ring so a
// further crash stays recoverable, and Procedure 1 restarts from the
// resume boundary. The adopted raw share is left imbalanced: every
// dimension iteration's Adaptive–Sample–Sort rebalances the Di-roots,
// which is where the real work happens.

import (
	"repro/internal/cluster"
	"repro/internal/colstore"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/samplesort"
)

// ckptPrefix names the neighbor-replica copy of a file.
const ckptPrefix = "ckpt.r."

// manifestFile is the per-processor checkpoint manifest: a one-column
// table whose first row is the resume dimension boundary and whose
// remaining rows are the completed view IDs.
const manifestFile = "ckpt.manifest"

// ckptFile is one file of a checkpoint set: its name, column count (so
// processors without the file can present an empty table of the right
// shape), and whether it is a sealed view slice — sealed files ship
// and land in the columnar compressed layout. sealed is decided by
// file kind (view vs raw/manifest), never per-disk state, so all
// processors agree on the collective they run (SPMD).
type ckptFile struct {
	name   string
	cols   int
	sealed bool
}

// lastCheckpointBoundary returns the dimension to restart from after a
// crash in dimension crashDim: the latest checkpointed boundary at or
// before it. The floor is startDim, covered by the initial raw
// checkpoint (or the previous recovery's re-replication).
func lastCheckpointBoundary(crashDim, startDim, interval int) int {
	resume := startDim
	for b := startDim; b < crashDim; b++ {
		if (b+1-startDim)%interval == 0 {
			resume = b + 1
		}
	}
	return resume
}

// completedViews lists the selected views of the dimension partitions
// before upTo — the views a restart from boundary upTo must preserve.
func completedViews(d int, sel []lattice.ViewID, upTo int) []lattice.ViewID {
	var out []lattice.ViewID
	for i := 0; i < upTo; i++ {
		out = append(out, lattice.PartitionSubset(i, d, sel)...)
	}
	return out
}

// writeManifest persists the checkpoint manifest locally (charged).
func writeManifest(p *cluster.Proc, upTo int, completed []lattice.ViewID, out *procOut) {
	t := record.New(1, 1+len(completed))
	t.Append([]uint32{uint32(upTo)}, 0)
	for _, v := range completed {
		t.Append([]uint32{uint32(v)}, 0)
	}
	out.ckptBytes += int64(t.Bytes())
	p.Disk().Put(manifestFile, t)
}

// replicateFiles sends each named file to the ring neighbor
// ((rank+1) mod p) over one bulk h-relation per file and stores the
// received copies under ckptPrefix. Reads, wire time, and replica
// writes are all charged. Every processor must pass the same file
// list (SPMD). On one processor there is no neighbor and replication
// is a no-op: the local manifest is the whole checkpoint.
func replicateFiles(p *cluster.Proc, files []ckptFile, out *procOut) {
	np := p.P()
	if np == 1 {
		return
	}
	disk := p.Disk()
	from := (p.Rank() + np - 1) % np
	for _, f := range files {
		if f.sealed && colstore.Enabled() {
			// View slices ship in the columnar compressed layout and are
			// stored compressed on the neighbor's disk.
			var s *colstore.Slice
			if disk.Has(f.name) {
				disk.Seal(f.name)
				s, _ = disk.GetSlice(f.name)
			}
			dest := make([]*colstore.Slice, np)
			dest[(p.Rank()+1)%np] = s
			in := cluster.AllToAllPayloads(p, dest, (*colstore.Slice).Clone)
			if r := in[from]; r != nil && r.Len() > 0 {
				disk.PutSlice(ckptPrefix+f.name, r)
				out.ckptBytes += int64(r.Bytes())
			}
			continue
		}
		var t *record.Table
		if disk.Has(f.name) {
			t = disk.MustGet(f.name)
		} else {
			t = record.New(f.cols, 0)
		}
		dest := make([]*record.Table, np)
		dest[(p.Rank()+1)%np] = t
		in := cluster.AllToAllTables(p, dest)
		if r := in[from]; r != nil {
			// Clone: the simulated wire carries the sender's live table.
			disk.Put(ckptPrefix+f.name, r.Clone())
			out.ckptBytes += int64(r.Bytes())
		}
	}
}

// checkpointInitial replicates the raw share before any real work, so
// a crash in any dimension can restart from the raw data.
func checkpointInitial(p *cluster.Proc, rawFile string, out *procOut) {
	writeManifest(p, 0, nil, out)
	replicateFiles(p, []ckptFile{
		{rawFile, p.Disk().Cols(rawFile), false},
		{manifestFile, 1, false},
	}, out)
}

// checkpointBoundary runs at the boundary after dimension upTo-1: the
// views completed since the previous checkpoint (dimensions
// [from, upTo)) are replicated to the ring neighbor and the manifest
// advanced to upTo.
func checkpointBoundary(p *cluster.Proc, cfg Config, sel []lattice.ViewID, from, upTo int, out *procOut) {
	var files []ckptFile
	for i := from; i < upTo; i++ {
		for _, v := range lattice.PartitionSubset(i, cfg.D, sel) {
			files = append(files, ckptFile{ViewFile(v), v.Count(), true})
		}
	}
	writeManifest(p, upTo, completedViews(cfg.D, sel, upTo), out)
	files = append(files, ckptFile{manifestFile, 1, false})
	replicateFiles(p, files, out)
}

// recoverOnProc is the SPMD recovery body run on the shrunken machine
// after a crash: detect, adopt, rebalance, re-arm. On return the
// survivors are ready to re-enter Procedure 1 at dimension resume.
func recoverOnProc(p *cluster.Proc, rawFile string, cfg Config, sel []lattice.ViewID, resume, adopter int, out *procOut) {
	disk := p.Disk()
	clk := p.Clock()
	p.SetOverlap(cfg.OverlapComm)
	// Failure detection: survivors notice the dead processor by a
	// heartbeat timeout before agreeing to recover.
	clk.AddCommDelay(cfg.Checkpoint.DetectSeconds)
	cluster.Barrier(p)
	start := clk.Seconds()
	p.SetPhase("recover")

	completed := completedViews(cfg.D, sel, resume)
	agg := rankAgg(cfg, p.Rank())

	// The dead rank's ring neighbor holds its replicas and adopts them:
	// the raw replica is appended to its own share, each completed view
	// replica merged into its own sorted slice (the slices cover
	// disjoint global key ranges, so a 2-way merge suffices).
	if p.Rank() == adopter {
		repl := disk.MustTake(ckptPrefix + rawFile)
		mine := disk.MustTake(rawFile)
		clk.AddCompute(costmodel.ScanOps(mine.Len() + repl.Len()))
		mine.AppendTable(repl)
		disk.Put(rawFile, mine)
		for _, v := range completed {
			name := ViewFile(v)
			r, ok := disk.Take(ckptPrefix + name)
			if !ok {
				r = record.New(v.Count(), 0)
			}
			own, ok := disk.Take(name)
			if !ok {
				own = record.New(v.Count(), 0)
			}
			clk.AddCompute(costmodel.MergeOps(own.Len()+r.Len(), 2))
			disk.Put(name, record.MergeSortedAggregateAgg([]*record.Table{own, r}, agg))
		}
	}

	// Drop everything the restart does not build on: stale replicas
	// (the ring is about to change), partially built views of
	// dimensions >= resume, and the old manifest.
	keep := map[string]bool{rawFile: true}
	for _, v := range completed {
		keep[ViewFile(v)] = true
	}
	for _, name := range disk.Files() {
		if !keep[name] {
			disk.Remove(name)
		}
	}
	// Every survivor must present each completed view for rebalancing,
	// even as an empty slice.
	for _, v := range completed {
		if !disk.Has(ViewFile(v)) {
			disk.Put(ViewFile(v), record.New(v.Count(), 0))
		}
	}

	// Rebalance the completed views — including the adopter's doubled
	// slices — across the survivors with Adaptive–Sample–Sort, then
	// re-seal them: rebalancing leaves slices in row form.
	for _, v := range completed {
		samplesort.SortPresortedAgg(p, ViewFile(v), cfg.MergeGamma, agg)
		if disk.Has(ViewFile(v)) {
			disk.Seal(ViewFile(v))
		}
	}

	// Re-arm the protocol on the shrunken ring so a further crash is
	// recoverable: fresh manifest, fresh replicas of the raw share and
	// every completed view.
	writeManifest(p, resume, completed, out)
	files := []ckptFile{{rawFile, cfg.D, false}}
	for _, v := range completed {
		files = append(files, ckptFile{ViewFile(v), v.Count(), true})
	}
	files = append(files, ckptFile{manifestFile, 1, false})
	replicateFiles(p, files, out)

	cluster.Barrier(p)
	out.recoverySeconds += clk.Seconds() - start
}
