package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/sketch"
)

// holisticRaw builds a deterministic raw table whose measures are
// values (not unit counts), so distinct-count and quantile aggregates
// are non-trivial per group. Measures stay below 128, where the
// quantile sketch's log-quantized codes are exact.
func holisticRaw(n, d int, cards []int, measRange int) *record.Table {
	t := record.New(d, n)
	row := make([]uint32, d)
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = uint32(next() % uint64(cards[j]))
		}
		t.Append(row, int64(next()%uint64(measRange)))
	}
	return t
}

// holisticOracle group-bys raw over view v's dimensions, returning the
// multiset of raw measure values per group key.
func holisticOracle(raw *record.Table, v lattice.ViewID) map[string][]int64 {
	out := map[string][]int64{}
	dims := v.Dims()
	for i := 0; i < raw.Len(); i++ {
		key := ""
		for _, dim := range dims {
			key += fmt.Sprintf("%d,", raw.Dim(i, dim))
		}
		out[key] = append(out[key], raw.Meas(i))
	}
	return out
}

func exactDistinct(vals []int64) float64 {
	set := map[int64]bool{}
	for _, v := range vals {
		set[v] = true
	}
	return float64(len(set))
}

func exactQuantile(vals []int64, q float64) float64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(q*float64(len(s)-1))])
}

// buildHolistic distributes raw over p processors and builds the full
// cube under the holistic op, returning the machine and its store.
func buildHolistic(t *testing.T, raw *record.Table, d, p int, op record.AggOp, kind sketch.Kind, arena int) (*cluster.Machine, *sketch.Store, Metrics) {
	t.Helper()
	st := sketch.NewStore(sketch.Config{Kind: kind, ArenaBudget: arena})
	m := cluster.New(p, costmodel.Default())
	n := raw.Len()
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", raw.Sub(r*n/p, (r+1)*n/p))
	}
	met, err := BuildCube(m, "raw", Config{D: d, Agg: op, Sketch: st})
	if err != nil {
		t.Fatal(err)
	}
	return m, st, met
}

// checkHolisticCube walks every view slice, resolves each group's
// measure through the store, and compares against the brute-force
// oracle. With measures below 128 and group cardinalities below the
// exact threshold, both sketches are exact, so the comparison is too.
func checkHolisticCube(t *testing.T, m *cluster.Machine, st *sketch.Store, raw *record.Table, d int, op record.AggOp) {
	t.Helper()
	for _, v := range lattice.AllViews(d) {
		oracle := holisticOracle(raw, v)
		seen := 0
		var order lattice.Order
		for r := 0; r < m.P(); r++ {
			tb, ok := m.Proc(r).Disk().Peek(ViewFile(v))
			if !ok || tb.Len() == 0 {
				continue
			}
			if order == nil {
				order = guessOrder(tb, raw, v)
			}
			for i := 0; i < tb.Len(); i++ {
				key := keyOf(tb, i, order)
				vals, ok := oracle[key]
				if !ok {
					t.Fatalf("view %v rank %d row %d key %q not in oracle", v, r, i, key)
				}
				seen++
				switch op {
				case record.OpDistinct:
					got := st.Estimate(tb.Meas(i), 0)
					if want := exactDistinct(vals); got != want {
						t.Fatalf("view %v key %q distinct %v, want %v", v, key, got, want)
					}
				case record.OpQuantile:
					for _, q := range []float64{0, 0.5, 1} {
						got := st.Estimate(tb.Meas(i), q)
						if want := exactQuantile(vals, q); math.Abs(got-want) > 0.5 {
							t.Fatalf("view %v key %q q=%v got %v, want %v", v, key, q, got, want)
						}
					}
				}
			}
		}
		if seen != len(oracle) {
			t.Fatalf("view %v has %d groups, oracle has %d", v, seen, len(oracle))
		}
	}
}

// guessOrder recovers the materialized attribute order of a view slice
// by matching its first row's column values against oracle keys — the
// test-side stand-in for the build's order metadata.
func guessOrder(tb, raw *record.Table, v lattice.ViewID) lattice.Order {
	dims := v.Dims()
	if len(dims) <= 1 {
		return lattice.Order(dims)
	}
	oracle := holisticOracle(raw, v)
	var try func(cur []int, rest []int) lattice.Order
	try = func(cur, rest []int) lattice.Order {
		if len(rest) == 0 {
			ok := true
			for i := 0; i < tb.Len() && ok; i++ {
				if _, hit := oracle[keyOf(tb, i, cur)]; !hit {
					ok = false
				}
			}
			if ok {
				return lattice.Order(append([]int(nil), cur...))
			}
			return nil
		}
		for k := range rest {
			nr := append(append([]int(nil), rest[:k]...), rest[k+1:]...)
			if o := try(append(cur, rest[k]), nr); o != nil {
				return o
			}
		}
		return nil
	}
	return try(nil, dims)
}

// keyOf renders row i's group key in canonical dimension order: ord[c]
// names the dimension stored in column c, and the oracle keys are in
// ascending dimension order.
func keyOf(tb *record.Table, i int, ord []int) string {
	type dv struct{ dim, val int }
	pairs := make([]dv, len(ord))
	for c, dim := range ord {
		pairs[c] = dv{dim, int(tb.Dim(i, c))}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].dim < pairs[b].dim })
	key := ""
	for _, p := range pairs {
		key += fmt.Sprintf("%d,", p.val)
	}
	return key
}

func TestBuildCubeDistinct(t *testing.T) {
	d := 3
	raw := holisticRaw(1200, d, []int{6, 4, 3}, 100)
	m, st, met := buildHolistic(t, raw, d, 4, record.OpDistinct, sketch.KindDistinct, sketch.DefaultArenaBudget)
	checkHolisticCube(t, m, st, raw, d, record.OpDistinct)
	if met.SketchBytes <= 0 {
		t.Fatalf("SketchBytes = %d, want > 0", met.SketchBytes)
	}
	var per int64
	for _, b := range met.ViewSketchBytes {
		per += b
	}
	if per != met.SketchBytes {
		t.Fatalf("per-view sketch bytes %d != total %d", per, met.SketchBytes)
	}
}

func TestBuildCubeQuantile(t *testing.T) {
	d := 3
	raw := holisticRaw(1200, d, []int{6, 4, 3}, 100)
	m, st, _ := buildHolistic(t, raw, d, 4, record.OpQuantile, sketch.KindQuantile, sketch.DefaultArenaBudget)
	checkHolisticCube(t, m, st, raw, d, record.OpQuantile)
}

// TestBuildCubeHolisticMemoryBounded rebuilds under an arena budget far
// below the total sealed sketch state: the build must spill and merge
// in bounded passes yet produce the same exact answers.
func TestBuildCubeHolisticMemoryBounded(t *testing.T) {
	d := 3
	raw := holisticRaw(1500, d, []int{8, 5, 3}, 100)
	m, st, _ := buildHolistic(t, raw, d, 4, record.OpQuantile, sketch.KindQuantile, 2048)
	stats := st.Stats()
	if stats.SealedBytes <= 2048 {
		t.Fatalf("sealed %d bytes; arena not actually under pressure", stats.SealedBytes)
	}
	if stats.PeakResident > 2048+4*1024 {
		t.Fatalf("peak resident %d blew the arena budget", stats.PeakResident)
	}
	if stats.Decodes == 0 {
		t.Fatal("no spill-and-reload happened under a tiny arena")
	}
	checkHolisticCube(t, m, st, raw, d, record.OpQuantile)
}

// TestBuildCubeHolisticDeterministic: two independent builds of the
// same data produce byte-identical sealed sketch blobs row for row.
func TestBuildCubeHolisticDeterministic(t *testing.T) {
	d := 3
	raw := holisticRaw(900, d, []int{5, 4, 3}, 100)
	m1, st1, _ := buildHolistic(t, raw, d, 3, record.OpDistinct, sketch.KindDistinct, sketch.DefaultArenaBudget)
	m2, st2, _ := buildHolistic(t, raw, d, 3, record.OpDistinct, sketch.KindDistinct, sketch.DefaultArenaBudget)
	for _, v := range lattice.AllViews(d) {
		for r := 0; r < m1.P(); r++ {
			t1, ok1 := m1.Proc(r).Disk().Peek(ViewFile(v))
			t2, ok2 := m2.Proc(r).Disk().Peek(ViewFile(v))
			if ok1 != ok2 {
				t.Fatalf("view %v rank %d presence differs", v, r)
			}
			if !ok1 {
				continue
			}
			if t1.Len() != t2.Len() {
				t.Fatalf("view %v rank %d length differs", v, r)
			}
			for i := 0; i < t1.Len(); i++ {
				b1 := st1.Export([]int64{t1.Meas(i)})[0]
				b2 := st2.Export([]int64{t2.Meas(i)})[0]
				if string(b1) != string(b2) {
					t.Fatalf("view %v rank %d row %d sketch blobs differ", v, r, i)
				}
			}
		}
	}
}

func TestBuildCubeHolisticValidation(t *testing.T) {
	m := cluster.New(2, costmodel.Default())
	for r := 0; r < 2; r++ {
		m.Proc(r).Disk().Put("raw", record.New(2, 0))
	}
	if _, err := BuildCube(m, "raw", Config{D: 2, Agg: record.OpDistinct}); err == nil {
		t.Fatal("holistic build without a sketch store must be rejected")
	}
	st := sketch.NewStore(sketch.Config{Kind: sketch.KindDistinct})
	if _, err := BuildCube(m, "raw", Config{D: 2, Agg: record.OpDistinct, Sketch: st, MinSupport: 5}); err == nil {
		t.Fatal("holistic iceberg build must be rejected")
	}
}
