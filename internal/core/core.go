// Package core implements Procedure 1 of the paper,
// Parallel–Shared–Nothing–Data–Cube: for each dimension Di (in
// decreasing cardinality order), (1) partition the data — every
// processor locally aggregates its raw share into its Di-root, the
// union is globally sorted by (Di,...,Dd-1) with Adaptive–Sample–Sort,
// and re-aggregated locally; (2) build the local Di-partition with the
// Pipesort schedule tree planned by P0 and broadcast (or per-processor
// local trees, the §4.2 baseline); (3) merge the p local copies of
// every view with Merge–Partitions. Partial cubes (§3) replace the
// schedule-tree construction with the partial-cube planner and merge
// only the selected views.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/extsort"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/partialcube"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/samplesort"
)

// ScheduleMode selects between the paper's global schedule trees
// (P0 plans, everyone follows — the recommended configuration) and
// per-processor local trees (each processor plans from its own data;
// merge must re-sort disagreeing views).
type ScheduleMode int

const (
	// GlobalTree is the paper's method: one tree, broadcast by P0.
	GlobalTree ScheduleMode = iota
	// LocalTree lets each processor plan from its own statistics.
	LocalTree
)

func (s ScheduleMode) String() string {
	if s == LocalTree {
		return "local"
	}
	return "global"
}

// EstimatorKind selects the view-size estimator driving planning.
type EstimatorKind int

const (
	// CardenasEstimator uses the analytic balls-in-cells formula on
	// locally measured per-dimension cardinalities.
	CardenasEstimator EstimatorKind = iota
	// FMEstimator uses Flajolet–Martin probabilistic counting over the
	// local data (the paper's reference [6]).
	FMEstimator
)

// Config parameterizes a cube build.
type Config struct {
	// D is the data dimensionality.
	D int
	// Selected lists the views to materialize; nil means the full cube.
	Selected []lattice.ViewID
	// Gamma is the Adaptive–Sample–Sort shift threshold for raw-data
	// partitioning (paper default 1%).
	Gamma float64
	// MergeGamma is the Merge–Partitions Case 2/3 threshold (paper
	// default 3%).
	MergeGamma float64
	// Schedule selects global (default) or local schedule trees.
	Schedule ScheduleMode
	// Estimator selects the view-size estimator (default Cardenas).
	Estimator EstimatorKind
	// Partial selects the partial-cube planner when Selected is a
	// proper subset (default Pruned).
	Partial partialcube.Kind
	// SampleCap overrides the spaced-sample size (default 100p).
	SampleCap int
	// FMBitmaps is the sketch width for FMEstimator (default 64).
	FMBitmaps int
	// Agg is the aggregate operator applied to measures (default
	// record.OpSum; COUNT is OpSum over unit measures).
	Agg record.AggOp
	// MinSupport, when > 0, builds an iceberg cube (Beyer-Ramakrishnan;
	// Ng et al. [18] on PC clusters): only groups whose aggregate is >=
	// MinSupport are kept in the output views. The filter is applied to
	// the final merged views, so it is exact for any operator.
	MinSupport int64
	// OverlapComm enables the §4.1 communication–computation overlap:
	// the bulk h-relations of data partitioning (Adaptive–Sample–Sort)
	// and merging (Procedure 3) are posted and run concurrently with
	// the local work that follows them, with the unmasked remainder
	// settled at the next barrier.
	OverlapComm bool
}

func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = 0.01
	}
	if c.MergeGamma == 0 {
		c.MergeGamma = 0.03
	}
	if c.FMBitmaps == 0 {
		c.FMBitmaps = 64
	}
	return c
}

// ViewFile names the disk file holding a view's local slice.
func ViewFile(v lattice.ViewID) string { return "cube." + v.String() }

// Metrics aggregates a parallel cube build.
type Metrics struct {
	P          int
	SimSeconds float64
	// PhaseSeconds is the per-phase makespan contribution (max over
	// processors of local phase time): "partition", "plan", "build",
	// "merge".
	PhaseSeconds map[string]float64
	BytesMoved   int64
	BytesByPhase map[string]int64
	Supersteps   int64
	// CPUSeconds, DiskSeconds and CommSeconds break the makespan
	// processor's clock into components (taken from the processor that
	// finished last). The paper's §4.1 notes that overlapping
	// communication with local computation would mask 40-60% of the
	// communication overhead; MaskableCommFraction is CommSeconds over
	// the makespan, the upper bound of that optimization.
	// OverlappedCommSeconds is the communication the makespan processor
	// actually masked behind local work (non-zero only with
	// Config.OverlapComm).
	CPUSeconds            float64
	DiskSeconds           float64
	CommSeconds           float64
	OverlappedCommSeconds float64
	Shifts                int // global shifts triggered by Adaptive–Sample–Sort
	Resorts               int // views re-sorted during merge (local-tree mode)
	CaseCounts            map[mergepart.Case]int
	OutputRows            int64
	OutputBytes           int64
	ViewRows              map[lattice.ViewID]int64
	// ViewOrders records each selected view's materialized attribute
	// order (the merge target order agreed by P0).
	ViewOrders map[lattice.ViewID]lattice.Order
}

// procOut captures per-processor observations during the SPMD run.
type procOut struct {
	phase   map[string]float64
	shifts  int
	resorts int
	cases   map[mergepart.Case]int
	orders  map[lattice.ViewID]lattice.Order
}

// BuildCube runs Procedure 1 on the machine. Every processor's disk
// must hold its share of the raw data under rawFile (n/p records each,
// D dimension columns in canonical order). On return, each selected
// view v is distributed across the processors' disks under
// ViewFile(v), globally sorted in its attribute order, balanced within
// the merge threshold.
func BuildCube(m *cluster.Machine, rawFile string, cfg Config) Metrics {
	cfg = cfg.withDefaults()
	if cfg.D < 1 || cfg.D > lattice.MaxDims {
		panic(fmt.Sprintf("core: bad dimensionality %d", cfg.D))
	}
	sel := cfg.Selected
	if sel == nil {
		sel = lattice.AllViews(cfg.D)
	}
	outs := make([]*procOut, m.P())
	m.Run(func(p *cluster.Proc) {
		out := &procOut{
			phase:  map[string]float64{},
			cases:  map[mergepart.Case]int{},
			orders: map[lattice.ViewID]lattice.Order{},
		}
		outs[p.Rank()] = out
		buildOnProc(p, rawFile, cfg, sel, out)
	})
	return collectMetrics(m, sel, outs)
}

// buildOnProc is the SPMD body of Procedure 1.
func buildOnProc(p *cluster.Proc, rawFile string, cfg Config, sel []lattice.ViewID, out *procOut) {
	d := cfg.D
	disk := p.Disk()
	clk := p.Clock()
	p.SetOverlap(cfg.OverlapComm)
	phase := func(name string) func() {
		p.SetPhase(name)
		start := clk.Seconds()
		return func() {
			// Settle in-flight overlapped communication so its residual
			// is attributed to the phase that posted it.
			clk.SettleComm()
			out.phase[name] += clk.Seconds() - start
		}
	}

	for i := 0; i < d; i++ {
		partViews := lattice.Partition(i, d)
		partSel := lattice.PartitionSubset(i, d, sel)
		if len(partSel) == 0 {
			continue // nothing selected in this partition (partial cube)
		}
		root := lattice.Root(i, d)
		rootOrder := lattice.Canonical(root)
		rootFile := ViewFile(root)

		// ---- Step 1: data partitioning. ----
		done := phase("partition")
		// 1a: local Di-root = sort + scan of the local raw share.
		raw := disk.MustGet(rawFile)
		clk.AddCompute(costmodel.ScanOps(raw.Len()))
		disk.Put(rootFile, raw.Project([]int(rootOrder)))
		extsort.Sort(disk, rootFile)
		localAggregate(p, rootFile, cfg.Agg)
		// 1b: global sort of the union of the local roots.
		sres := samplesort.Sort(p, rootFile, cfg.Gamma)
		if sres.Shifted {
			out.shifts++
		}
		// 1c: local re-aggregation of the received slice.
		localAggregate(p, rootFile, cfg.Agg)
		done()

		// ---- Step 2: local Di-partition. ----
		done = phase("plan")
		tree := planTree(p, cfg, i, partViews, partSel, root, rootOrder, rootFile)
		done()

		done = phase("build")
		sampleCap := cfg.SampleCap
		if sampleCap == 0 {
			sampleCap = 100 * p.P()
		}
		pipesort.ExecuteOpts(disk, tree, ViewFile, pipesort.Options{SampleCap: sampleCap, Op: cfg.Agg})
		done()

		// ---- Step 3: merge of the local Di-partitions. ----
		done = phase("merge")
		targets := mergeTargets(p, tree, partSel)
		for k, v := range partSel {
			out.orders[v] = targets[k]
			my := tree.Node(v).Order
			r := mergepart.MergeViewOp(p, ViewFile(v), v, my, targets[k], rootOrder, cfg.MergeGamma, cfg.Agg)
			if r.Resorted {
				out.resorts++
			}
			out.cases[r.Case]++
			if cfg.MinSupport > 0 {
				icebergFilter(p, ViewFile(v), cfg.MinSupport)
			}
		}
		// Drop intermediate views a partial plan materialized.
		selSet := map[lattice.ViewID]bool{}
		for _, v := range partSel {
			selSet[v] = true
		}
		tree.Walk(func(n *lattice.Node) {
			if !selSet[n.View] {
				disk.Remove(ViewFile(n.View))
			}
		})
		done()
	}
}

// icebergFilter drops groups whose final aggregate falls below the
// iceberg threshold (one scan and a rewrite of the survivors).
func icebergFilter(p *cluster.Proc, file string, minSupport int64) {
	disk := p.Disk()
	t := disk.MustTake(file)
	p.Clock().AddCompute(costmodel.ScanOps(t.Len()))
	kept := record.New(t.D, 0)
	n := t.Len()
	for i := 0; i < n; i++ {
		if t.Meas(i) >= minSupport {
			kept.AppendFrom(t, i)
		}
	}
	disk.Put(file, kept)
}

// localAggregate rewrites a sorted file with adjacent duplicate keys
// collapsed (the "sequential scan" halves of Steps 1a and 1c).
func localAggregate(p *cluster.Proc, file string, op record.AggOp) {
	disk := p.Disk()
	t := disk.MustTake(file)
	p.Clock().AddCompute(costmodel.ScanOps(t.Len()))
	disk.Put(file, record.AggregateSortedOp(t, t.D, op))
}

// planTree performs Steps 2a/2b: P0 plans and broadcasts in global
// mode; every processor plans its own tree in local mode.
func planTree(p *cluster.Proc, cfg Config, i int, partViews, partSel []lattice.ViewID, root lattice.ViewID, rootOrder lattice.Order, rootFile string) *lattice.Tree {
	needPlan := cfg.Schedule == LocalTree || p.Rank() == 0
	var tree *lattice.Tree
	if needPlan {
		sizer := makeSizer(p, cfg, rootFile, rootOrder)
		if len(partSel) == len(partViews) {
			tree = pipesort.Plan(cfg.D, root, rootOrder, partViews, sizer)
		} else {
			tree = partialcube.Plan(cfg.Partial, cfg.D, root, rootOrder, partViews, partSel, sizer)
		}
		if fm, ok := sizer.(*estimate.FMSizer); ok {
			p.Clock().AddCompute(fm.ScanOps)
		}
	}
	if cfg.Schedule == GlobalTree {
		// The root's encoded size governs the charge; receivers are
		// billed for what was actually posted.
		bytes := 0
		if p.Rank() == 0 {
			bytes = tree.EncodedBytes()
		}
		tree = cluster.Broadcast(p, 0, tree, bytes)
	}
	return tree
}

// makeSizer builds the view-size estimator from this processor's local
// root slice — the paper's "statistical estimates based on the data
// available".
func makeSizer(p *cluster.Proc, cfg Config, rootFile string, rootOrder lattice.Order) estimate.Sizer {
	disk := p.Disk()
	t := disk.MustGet(rootFile)
	switch cfg.Estimator {
	case FMEstimator:
		return estimate.NewFM(t, rootOrder, cfg.FMBitmaps)
	default:
		p.Clock().AddCompute(costmodel.ScanOps(t.Len()) * float64(len(rootOrder)))
		cards := estimate.MeasureCardinalities(t, rootOrder)
		return estimate.NewCardenas(int64(t.Len()), cards)
	}
}

// mergeTargets agrees on the per-view merge orders: P0's
// materialization orders, broadcast to everyone. In global-tree mode
// these always equal the local orders; in local-tree mode they may
// differ, triggering merge-time re-sorts.
func mergeTargets(p *cluster.Proc, tree *lattice.Tree, partSel []lattice.ViewID) []lattice.Order {
	orders := make([]lattice.Order, len(partSel))
	bytes := 0
	if p.Rank() == 0 {
		for k, v := range partSel {
			orders[k] = tree.Node(v).Order
			bytes += 1 + len(orders[k])
		}
	}
	return cluster.Broadcast(p, 0, orders, bytes)
}

// MaskableCommFraction returns the fraction of the makespan spent in
// communication — the upper bound on the §4.1 overlap optimization.
func (m Metrics) MaskableCommFraction() float64 {
	if m.SimSeconds == 0 {
		return 0
	}
	return m.CommSeconds / m.SimSeconds
}

// collectMetrics aggregates per-processor observations and the final
// disk state.
func collectMetrics(m *cluster.Machine, sel []lattice.ViewID, outs []*procOut) Metrics {
	st := m.Stats()
	met := Metrics{
		P:            m.P(),
		SimSeconds:   m.SimSeconds(),
		PhaseSeconds: map[string]float64{},
		BytesMoved:   st.BytesMoved,
		BytesByPhase: st.ByPhase,
		Supersteps:   st.Supersteps,
		CaseCounts:   map[mergepart.Case]int{},
		ViewRows:     map[lattice.ViewID]int64{},
		ViewOrders:   outs[0].orders,
	}
	for _, out := range outs {
		for name, sec := range out.phase {
			if sec > met.PhaseSeconds[name] {
				met.PhaseSeconds[name] = sec
			}
		}
		met.Shifts += out.shifts
		met.Resorts += out.resorts
	}
	// Component breakdown of the slowest processor's clock.
	for r := 0; r < m.P(); r++ {
		clk := m.Proc(r).Clock()
		if clk.Seconds() >= met.SimSeconds-1e-9 {
			met.CPUSeconds = clk.CPUSeconds()
			met.DiskSeconds = clk.DiskSeconds()
			met.CommSeconds = clk.CommSeconds()
			met.OverlappedCommSeconds = clk.OverlappedCommSeconds()
			break
		}
	}
	// Case counts from P0's observations (identical on all processors).
	for c, n := range outs[0].cases {
		met.CaseCounts[c] += n
	}
	for _, v := range sel {
		var rows int64
		for r := 0; r < m.P(); r++ {
			if n := m.Proc(r).Disk().Len(ViewFile(v)); n > 0 {
				rows += int64(n)
			}
		}
		met.ViewRows[v] = rows
		met.OutputRows += rows
		met.OutputBytes += rows * int64(record.RowBytes(v.Count()))
	}
	return met
}
