// Package core implements Procedure 1 of the paper,
// Parallel–Shared–Nothing–Data–Cube: for each dimension Di (in
// decreasing cardinality order), (1) partition the data — every
// processor locally aggregates its raw share into its Di-root, the
// union is globally sorted by (Di,...,Dd-1) with Adaptive–Sample–Sort,
// and re-aggregated locally; (2) build the local Di-partition with the
// Pipesort schedule tree planned by P0 and broadcast (or per-processor
// local trees, the §4.2 baseline); (3) merge the p local copies of
// every view with Merge–Partitions. Partial cubes (§3) replace the
// schedule-tree construction with the partial-cube planner and merge
// only the selected views.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/extsort"
	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/partialcube"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/samplesort"
	"repro/internal/sketch"
)

// ScheduleMode selects between the paper's global schedule trees
// (P0 plans, everyone follows — the recommended configuration) and
// per-processor local trees (each processor plans from its own data;
// merge must re-sort disagreeing views).
type ScheduleMode int

const (
	// GlobalTree is the paper's method: one tree, broadcast by P0.
	GlobalTree ScheduleMode = iota
	// LocalTree lets each processor plan from its own statistics.
	LocalTree
)

func (s ScheduleMode) String() string {
	if s == LocalTree {
		return "local"
	}
	return "global"
}

// EstimatorKind selects the view-size estimator driving planning.
type EstimatorKind int

const (
	// CardenasEstimator uses the analytic balls-in-cells formula on
	// locally measured per-dimension cardinalities.
	CardenasEstimator EstimatorKind = iota
	// FMEstimator uses Flajolet–Martin probabilistic counting over the
	// local data (the paper's reference [6]).
	FMEstimator
)

// Config parameterizes a cube build.
type Config struct {
	// D is the data dimensionality.
	D int
	// Selected lists the views to materialize; nil means the full cube.
	Selected []lattice.ViewID
	// Gamma is the Adaptive–Sample–Sort shift threshold for raw-data
	// partitioning (paper default 1%).
	Gamma float64
	// MergeGamma is the Merge–Partitions Case 2/3 threshold (paper
	// default 3%).
	MergeGamma float64
	// Schedule selects global (default) or local schedule trees.
	Schedule ScheduleMode
	// Estimator selects the view-size estimator (default Cardenas).
	Estimator EstimatorKind
	// Partial selects the partial-cube planner when Selected is a
	// proper subset (default Pruned).
	Partial partialcube.Kind
	// SampleCap overrides the spaced-sample size (default 100p).
	SampleCap int
	// FMBitmaps is the sketch width for FMEstimator (default 64).
	FMBitmaps int
	// Agg is the aggregate operator applied to measures (default
	// record.OpSum; COUNT is OpSum over unit measures).
	Agg record.AggOp
	// Sketch is the shared sketch store backing holistic operators
	// (OpDistinct, OpQuantile): per-group state lives in the store and
	// measures carry negative handles into it. Required when Agg is
	// holistic; ignored otherwise.
	Sketch *sketch.Store
	// Cards, when len(Cards) == D, gives the per-dimension effective
	// cardinalities (in raw column order, post attribute-value
	// reordering). They drive caller-supplied KeyPlans for the external
	// sorts — skipping per-run width measurement and widening the
	// packed-kernel window — and are stored with the cube for query-time
	// planning. Optional: nil falls back to measured plans.
	Cards []int
	// MinSupport, when > 0, builds an iceberg cube (Beyer-Ramakrishnan;
	// Ng et al. [18] on PC clusters): only groups whose aggregate is >=
	// MinSupport are kept in the output views. The filter is applied to
	// the final merged views, so it is exact for any operator.
	MinSupport int64
	// OverlapComm enables the §4.1 communication–computation overlap:
	// the bulk h-relations of data partitioning (Adaptive–Sample–Sort)
	// and merging (Procedure 3) are posted and run concurrently with
	// the local work that follows them, with the unmasked remainder
	// settled at the next barrier.
	OverlapComm bool
	// Faults, when non-nil, installs a deterministic fault-injection
	// plan on the machine: crashes, dropped/corrupted h-relation
	// payloads (repaired by charged retries), and stragglers.
	Faults *faults.Plan
	// Checkpoint configures per-dimension checkpointing and crash
	// recovery.
	Checkpoint CheckpointConfig
}

// CheckpointConfig configures the fault-tolerance protocol: after
// every Interval dimension iterations each processor replicates its
// newly completed view slices (and, up front, its raw share) to its
// ring neighbor's disk along with a completed-view manifest, all
// charged on the simulated clock. When a processor crashes, the
// survivors shrink to p-1, the dead rank's replicas are adopted by its
// neighbor, the completed views are rebalanced with
// Adaptive–Sample–Sort, and the build restarts from the last
// checkpointed dimension boundary. Without checkpointing a crash
// fails the build fast with a structured error.
type CheckpointConfig struct {
	// Enabled turns checkpointing (and crash recovery) on.
	Enabled bool
	// Interval is the number of dimension iterations per checkpoint
	// (default 1: checkpoint at every Di boundary).
	Interval int
	// DetectSeconds is the failure-detection timeout survivors charge
	// before starting recovery (default 0.25s, a heartbeat timeout).
	DetectSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = 0.01
	}
	if c.MergeGamma == 0 {
		c.MergeGamma = 0.03
	}
	if c.FMBitmaps == 0 {
		c.FMBitmaps = 64
	}
	if c.Checkpoint.Interval == 0 {
		c.Checkpoint.Interval = 1
	}
	if c.Checkpoint.DetectSeconds == 0 {
		c.Checkpoint.DetectSeconds = 0.25
	}
	return c
}

// validate checks the configuration and the machine's preloaded state
// up front, so configuration mistakes surface as errors instead of
// panics from deep inside the SPMD run.
func (c Config) validate(m *cluster.Machine, rawFile string) error {
	if c.D < 1 || c.D > lattice.MaxDims {
		return fmt.Errorf("core: bad dimensionality %d (want 1..%d)", c.D, lattice.MaxDims)
	}
	if c.Gamma <= 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: gamma %v out of range (0,1)", c.Gamma)
	}
	if c.MergeGamma <= 0 || c.MergeGamma >= 1 {
		return fmt.Errorf("core: merge gamma %v out of range (0,1)", c.MergeGamma)
	}
	if c.SampleCap < 0 {
		return fmt.Errorf("core: negative sample cap %d", c.SampleCap)
	}
	if c.FMBitmaps < 1 {
		return fmt.Errorf("core: bad FM bitmap count %d", c.FMBitmaps)
	}
	if c.MinSupport < 0 {
		return fmt.Errorf("core: negative iceberg threshold %d", c.MinSupport)
	}
	if c.Agg.Holistic() {
		if c.Sketch == nil {
			return fmt.Errorf("core: holistic aggregate %v requires a sketch store", c.Agg)
		}
		if c.MinSupport > 0 {
			return fmt.Errorf("core: iceberg threshold is undefined for holistic aggregate %v (measures are sketch handles)", c.Agg)
		}
	}
	full := lattice.Full(c.D)
	for _, v := range c.Selected {
		if !v.SubsetOf(full) {
			return fmt.Errorf("core: selected view %#x outside the %d-dimensional lattice", uint32(v), c.D)
		}
	}
	if c.Checkpoint.Interval < 1 {
		return fmt.Errorf("core: checkpoint interval %d (want >= 1)", c.Checkpoint.Interval)
	}
	if c.Checkpoint.DetectSeconds < 0 {
		return fmt.Errorf("core: negative failure-detection timeout %v", c.Checkpoint.DetectSeconds)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(m.P()); err != nil {
			return err
		}
	}
	for r := 0; r < m.P(); r++ {
		disk := m.Proc(r).Disk()
		if !disk.Has(rawFile) {
			return fmt.Errorf("core: processor %d has no raw file %q", r, rawFile)
		}
		if cols := disk.Cols(rawFile); cols != c.D {
			return fmt.Errorf("core: processor %d raw file %q has %d columns, config says %d", r, rawFile, cols, c.D)
		}
	}
	return nil
}

// ViewFile names the disk file holding a view's local slice.
func ViewFile(v lattice.ViewID) string { return "cube." + v.String() }

// ViewSliceLens returns the per-rank row counts of view v's local
// slices on the machine's disks, post-build: element r is the slice
// length on processor r, or -1 if that processor holds no slice of v.
// It is a metadata access (uncharged), the hook the query-serving
// layer uses to plan over the cube where it lives.
func ViewSliceLens(m *cluster.Machine, v lattice.ViewID) []int {
	out := make([]int, m.P())
	for r := 0; r < m.P(); r++ {
		out[r] = m.Proc(r).Disk().Len(ViewFile(v))
	}
	return out
}

// ViewGlobalRows sums the per-rank slice lengths of view v (metadata
// access, uncharged); a view with no slices anywhere has 0 rows.
func ViewGlobalRows(m *cluster.Machine, v lattice.ViewID) int64 {
	var rows int64
	for _, n := range ViewSliceLens(m, v) {
		if n > 0 {
			rows += int64(n)
		}
	}
	return rows
}

// Metrics aggregates a parallel cube build.
type Metrics struct {
	P          int
	SimSeconds float64
	// PhaseSeconds is the per-phase makespan contribution (max over
	// processors of local phase time): "partition", "plan", "build",
	// "merge".
	PhaseSeconds map[string]float64
	BytesMoved   int64
	BytesByPhase map[string]int64
	Supersteps   int64
	// CPUSeconds, DiskSeconds and CommSeconds break the makespan
	// processor's clock into components (taken from the processor that
	// finished last). The paper's §4.1 notes that overlapping
	// communication with local computation would mask 40-60% of the
	// communication overhead; MaskableCommFraction is CommSeconds over
	// the makespan, the upper bound of that optimization.
	// OverlappedCommSeconds is the communication the makespan processor
	// actually masked behind local work (non-zero only with
	// Config.OverlapComm).
	CPUSeconds            float64
	DiskSeconds           float64
	CommSeconds           float64
	OverlappedCommSeconds float64
	Shifts                int // global shifts triggered by Adaptive–Sample–Sort
	Resorts               int // views re-sorted during merge (local-tree mode)
	CaseCounts            map[mergepart.Case]int
	OutputRows            int64
	// OutputBytes is the row-format size of the output views (the
	// uncompressed baseline); OutputBytesStored is the modelled on-disk
	// size after columnar compression — equal to OutputBytes when the
	// columnar store is disabled.
	OutputBytes       int64
	OutputBytesStored int64
	// SketchBytes is the serialized size of all sketch state referenced
	// by the output views' measures (holistic aggregates only);
	// ViewSketchBytes is the per-view breakdown. Zero for algebraic
	// operators.
	SketchBytes     int64
	ViewSketchBytes map[lattice.ViewID]int64
	ViewRows        map[lattice.ViewID]int64
	// ViewBytesStored is the per-view modelled on-disk size, summed over
	// the per-rank slices as the storage layer reports them.
	ViewBytesStored map[lattice.ViewID]int64
	// ViewOrders records each selected view's materialized attribute
	// order (the merge target order agreed by P0).
	ViewOrders map[lattice.ViewID]lattice.Order
	// SchedTrees retains, per dimension, the Pipesort schedule tree P0
	// planned and broadcast (global-tree mode only; nil per dimension in
	// local-tree mode, where processors never agreed on one). The
	// incremental-ingest subsystem replays these trees over delta data
	// instead of re-planning, so a batch follows exactly the schedule
	// the live cube was built with.
	SchedTrees map[int]*lattice.Tree
	// IngestedRows, IngestBatches, IngestSeconds, DeltaMergeSeconds and
	// DeltaMergeBytes account incremental maintenance (internal/ingest):
	// facts appended after the initial build, the batches that carried
	// them, the makespan of the delta-build ("ingest") and delta-merge
	// ("deltamerge") phases, and the bytes moved while merging deltas
	// into live views. Zero after BuildCube; accumulated by
	// ingest.Result.AddTo.
	IngestedRows      int64
	IngestBatches     int64
	IngestSeconds     float64
	DeltaMergeSeconds float64
	DeltaMergeBytes   int64
	// RetriedMessages counts h-relation payloads retransmitted to
	// repair injected drops and corruptions.
	RetriedMessages int64
	// CheckpointBytes is the total bytes written to checkpoint state
	// (neighbor replicas and manifests) across all processors.
	CheckpointBytes int64
	// CheckpointSeconds is the checkpoint phase's makespan contribution
	// (PhaseSeconds["checkpoint"]).
	CheckpointSeconds float64
	// RecoverySeconds is the time spent in crash recovery (failure
	// detection, replica adoption, rebalance, re-replication), max over
	// surviving processors.
	RecoverySeconds float64
	// FailedRanks lists the original ranks of crashed processors the
	// build recovered from, in crash order.
	FailedRanks []int
}

// dimObs captures what one processor observed during one dimension
// iteration. A restarted dimension replaces its observations wholesale
// so aborted partial attempts are not double counted.
type dimObs struct {
	shifts  int
	resorts int
	cases   map[mergepart.Case]int
	orders  map[lattice.ViewID]lattice.Order
	tree    *lattice.Tree // broadcast schedule tree (global mode only)
}

func newDimObs() *dimObs {
	return &dimObs{cases: map[mergepart.Case]int{}, orders: map[lattice.ViewID]lattice.Order{}}
}

// procOut captures per-processor observations during the SPMD run.
// Observations tied to a dimension live in dims so a recovery restart
// overwrites them instead of double counting; phase seconds accumulate
// across restarts because the repeated work really happened.
type procOut struct {
	phase           map[string]float64
	dims            map[int]*dimObs
	ckptBytes       int64
	recoverySeconds float64
}

func newProcOut() *procOut {
	return &procOut{phase: map[string]float64{}, dims: map[int]*dimObs{}}
}

// BuildCube runs Procedure 1 on the machine. Every processor's disk
// must hold its share of the raw data under rawFile (n/p records each,
// D dimension columns in canonical order). On return, each selected
// view v is distributed across the processors' disks under
// ViewFile(v), globally sorted in its attribute order, balanced within
// the merge threshold.
//
// With cfg.Faults installed, an injected crash either fails the build
// with a *faults.CrashError (no checkpointing, or a crash outside the
// recoverable region), or — with cfg.Checkpoint.Enabled on more than
// one processor — shrinks the machine to the survivors, recovers from
// the per-dimension checkpoints, and completes the build degraded.
// Sequential crashes are recoverable as long as at least one processor
// survives each; a crash during recovery itself fails fast.
func BuildCube(m *cluster.Machine, rawFile string, cfg Config) (Metrics, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(m, rawFile); err != nil {
		return Metrics{}, err
	}
	if err := m.SetFaults(cfg.Faults); err != nil {
		return Metrics{}, err
	}
	if cfg.Sketch != nil && cfg.Agg.Holistic() {
		// Sketch payloads ride the h-relations with the rows that carry
		// their handles: charge their serialized size on every exchange.
		sz := rankAgg(cfg, 0)
		m.SetTableSizer(func(t *record.Table) int { return sz.TableStateBytes(t) })
	}
	sel := cfg.Selected
	if sel == nil {
		sel = lattice.AllViews(cfg.D)
	}
	origP := m.P()
	outs := make([]*procOut, m.P())
	for i := range outs {
		outs[i] = newProcOut()
	}
	var failed []int
	startDim := 0
	initial := true
	for {
		err := m.Run(func(p *cluster.Proc) {
			buildOnProc(p, rawFile, cfg, sel, outs[p.Rank()], startDim, initial)
		})
		if err == nil {
			break
		}
		var crash *faults.CrashError
		if !errors.As(err, &crash) || !cfg.Checkpoint.Enabled || m.P() <= 1 || crash.Dimension < startDim {
			return Metrics{}, err
		}
		// Survivors continue on p-1 processors from the last
		// checkpointed dimension boundary at or before the crash.
		resume := lastCheckpointBoundary(crash.Dimension, startDim, cfg.Checkpoint.Interval)
		dead := m.RankOf(crash.Rank)
		if dead < 0 {
			return Metrics{}, err
		}
		if serr := m.Shrink(dead); serr != nil {
			return Metrics{}, serr
		}
		outs = append(outs[:dead:dead], outs[dead+1:]...)
		failed = append(failed, crash.Rank)
		// The dead rank's ring neighbor holds its replicas and adopts
		// its data: old rank (dead+1) mod oldP is new rank dead mod newP.
		adopter := dead % m.P()
		if rerr := m.Run(func(p *cluster.Proc) {
			recoverOnProc(p, rawFile, cfg, sel, resume, adopter, outs[p.Rank()])
		}); rerr != nil {
			return Metrics{}, rerr
		}
		startDim = resume
		initial = false
	}
	met := collectMetrics(m, origP, sel, outs, cfg)
	met.FailedRanks = failed
	return met, nil
}

// buildOnProc is the SPMD body of Procedure 1, starting at dimension
// startDim (0 on a fresh build, the resume boundary after recovery).
// initial marks the first attempt, which takes the up-front raw-data
// checkpoint.
func buildOnProc(p *cluster.Proc, rawFile string, cfg Config, sel []lattice.ViewID, out *procOut, startDim int, initial bool) {
	d := cfg.D
	clk := p.Clock()
	p.SetOverlap(cfg.OverlapComm)
	phase := func(name string) func() {
		p.SetPhase(name)
		start := clk.Seconds()
		return func() {
			// Settle in-flight overlapped communication so its residual
			// is attributed to the phase that posted it.
			clk.SettleComm()
			out.phase[name] += clk.Seconds() - start
		}
	}

	ck := cfg.Checkpoint
	if initial && ck.Enabled {
		// Before any real work: replicate the raw share to the ring
		// neighbor so a crash in any dimension can restart from it.
		done := phase("checkpoint")
		checkpointInitial(p, rawFile, out)
		done()
	}

	lastCkpt := startDim
	for i := startDim; i < d; i++ {
		// Dimension boundary: crash injection point, fresh observation
		// slot (a restarted dimension must not double count).
		p.SetEpoch(i)
		obs := newDimObs()
		out.dims[i] = obs

		partSel := lattice.PartitionSubset(i, d, sel)
		if len(partSel) > 0 {
			buildDim(p, rawFile, cfg, i, partSel, obs, phase)
		}

		if ck.Enabled && i < d-1 && (i+1-startDim)%ck.Interval == 0 {
			done := phase("checkpoint")
			checkpointBoundary(p, cfg, sel, lastCkpt, i+1, out)
			done()
			lastCkpt = i + 1
		}
	}
}

// rankAgg builds the aggregate descriptor a processor applies to
// measures: the configured operator plus, for holistic operators, this
// rank's combiner into the shared sketch store.
func rankAgg(cfg Config, rank int) record.Agg {
	agg := record.Agg{Op: cfg.Agg}
	if cfg.Sketch != nil && cfg.Agg.Holistic() {
		agg.State = cfg.Sketch.Rank(rank)
	}
	return agg
}

// buildDim runs one dimension iteration of Procedure 1: partition,
// plan, build, merge.
func buildDim(p *cluster.Proc, rawFile string, cfg Config, i int, partSel []lattice.ViewID, obs *dimObs, phase func(string) func()) {
	d := cfg.D
	disk := p.Disk()
	clk := p.Clock()
	agg := rankAgg(cfg, p.Rank())
	partViews := lattice.Partition(i, d)
	root := lattice.Root(i, d)
	rootOrder := lattice.Canonical(root)
	rootFile := ViewFile(root)

	// ---- Step 1: data partitioning. ----
	done := phase("partition")
	// 1a: local Di-root = sort + scan of the local raw share.
	raw := disk.MustGet(rawFile)
	clk.AddCompute(costmodel.ScanOps(raw.Len()))
	disk.Put(rootFile, raw.Project([]int(rootOrder)))
	if len(cfg.Cards) == d {
		pc := make([]int, len(rootOrder))
		for j, col := range rootOrder {
			pc[j] = cfg.Cards[col]
		}
		extsort.SortPlan(disk, rootFile, record.PlanKeyFromCards(pc))
	} else {
		extsort.Sort(disk, rootFile)
	}
	localAggregate(p, rootFile, agg)
	// 1b: global sort of the union of the local roots.
	sres := samplesort.Sort(p, rootFile, cfg.Gamma)
	if sres.Shifted {
		obs.shifts++
	}
	// 1c: local re-aggregation of the received slice.
	localAggregate(p, rootFile, agg)
	done()

	// ---- Step 2: local Di-partition. ----
	done = phase("plan")
	tree := planTree(p, cfg, i, partViews, partSel, root, rootOrder, rootFile)
	if cfg.Schedule == GlobalTree {
		// Retain the agreed tree for incremental ingest (read-only from
		// here on; pipesort never mutates it).
		obs.tree = tree
	}
	done()

	done = phase("build")
	sampleCap := cfg.SampleCap
	if sampleCap == 0 {
		sampleCap = 100 * p.P()
	}
	pipesort.ExecuteOpts(disk, tree, ViewFile, pipesort.Options{SampleCap: sampleCap, Op: cfg.Agg, State: agg.State})
	done()

	// ---- Step 3: merge of the local Di-partitions. ----
	done = phase("merge")
	targets := mergeTargets(p, tree, partSel)
	for k, v := range partSel {
		obs.orders[v] = targets[k]
		my := tree.Node(v).Order
		r := mergepart.MergeViewAgg(p, ViewFile(v), v, my, targets[k], rootOrder, cfg.MergeGamma, agg)
		if r.Resorted {
			obs.resorts++
		}
		obs.cases[r.Case]++
		if cfg.MinSupport > 0 {
			icebergFilter(p, ViewFile(v), cfg.MinSupport)
		}
		// Rewrite the finished slice in the columnar compressed layout
		// (no-op when the columnar store is disabled): every later
		// consumer — checkpoints, persist, snapshots, queries — reads it
		// at the compressed size.
		if disk.Has(ViewFile(v)) {
			disk.Seal(ViewFile(v))
		}
	}
	// Drop intermediate views a partial plan materialized.
	selSet := map[lattice.ViewID]bool{}
	for _, v := range partSel {
		selSet[v] = true
	}
	tree.Walk(func(n *lattice.Node) {
		if !selSet[n.View] {
			disk.Remove(ViewFile(n.View))
		}
	})
	done()
}

// icebergFilter drops groups whose final aggregate falls below the
// iceberg threshold (one scan and a rewrite of the survivors).
func icebergFilter(p *cluster.Proc, file string, minSupport int64) {
	disk := p.Disk()
	t := disk.MustTake(file)
	p.Clock().AddCompute(costmodel.ScanOps(t.Len()))
	kept := record.New(t.D, 0)
	n := t.Len()
	for i := 0; i < n; i++ {
		if t.Meas(i) >= minSupport {
			kept.AppendFrom(t, i)
		}
	}
	disk.Put(file, kept)
}

// localAggregate rewrites a sorted file with adjacent duplicate keys
// collapsed (the "sequential scan" halves of Steps 1a and 1c).
func localAggregate(p *cluster.Proc, file string, agg record.Agg) {
	disk := p.Disk()
	t := disk.MustTake(file)
	p.Clock().AddCompute(costmodel.ScanOps(t.Len()))
	disk.Put(file, record.AggregateSortedAgg(t, t.D, agg))
}

// planTree performs Steps 2a/2b: P0 plans and broadcasts in global
// mode; every processor plans its own tree in local mode.
func planTree(p *cluster.Proc, cfg Config, i int, partViews, partSel []lattice.ViewID, root lattice.ViewID, rootOrder lattice.Order, rootFile string) *lattice.Tree {
	needPlan := cfg.Schedule == LocalTree || p.Rank() == 0
	var tree *lattice.Tree
	if needPlan {
		sizer := makeSizer(p, cfg, rootFile, rootOrder)
		if len(partSel) == len(partViews) {
			tree = pipesort.Plan(cfg.D, root, rootOrder, partViews, sizer)
		} else {
			tree = partialcube.Plan(cfg.Partial, cfg.D, root, rootOrder, partViews, partSel, sizer)
		}
		if fm, ok := sizer.(*estimate.FMSizer); ok {
			p.Clock().AddCompute(fm.ScanOps)
		}
	}
	if cfg.Schedule == GlobalTree {
		// The root's encoded size governs the charge; receivers are
		// billed for what was actually posted.
		bytes := 0
		if p.Rank() == 0 {
			bytes = tree.EncodedBytes()
		}
		tree = cluster.Broadcast(p, 0, tree, bytes)
	}
	return tree
}

// makeSizer builds the view-size estimator from this processor's local
// root slice — the paper's "statistical estimates based on the data
// available".
func makeSizer(p *cluster.Proc, cfg Config, rootFile string, rootOrder lattice.Order) estimate.Sizer {
	disk := p.Disk()
	t := disk.MustGet(rootFile)
	switch cfg.Estimator {
	case FMEstimator:
		return estimate.NewFM(t, rootOrder, cfg.FMBitmaps)
	default:
		p.Clock().AddCompute(costmodel.ScanOps(t.Len()) * float64(len(rootOrder)))
		cards := estimate.MeasureCardinalities(t, rootOrder)
		return estimate.NewCardenas(int64(t.Len()), cards)
	}
}

// mergeTargets agrees on the per-view merge orders: P0's
// materialization orders, broadcast to everyone. In global-tree mode
// these always equal the local orders; in local-tree mode they may
// differ, triggering merge-time re-sorts.
func mergeTargets(p *cluster.Proc, tree *lattice.Tree, partSel []lattice.ViewID) []lattice.Order {
	orders := make([]lattice.Order, len(partSel))
	bytes := 0
	if p.Rank() == 0 {
		for k, v := range partSel {
			orders[k] = tree.Node(v).Order
			bytes += 1 + len(orders[k])
		}
	}
	return cluster.Broadcast(p, 0, orders, bytes)
}

// MaskableCommFraction returns the fraction of the makespan spent in
// communication — the upper bound on the §4.1 overlap optimization.
func (m Metrics) MaskableCommFraction() float64 {
	if m.SimSeconds == 0 {
		return 0
	}
	return m.CommSeconds / m.SimSeconds
}

// collectMetrics aggregates per-processor observations and the final
// disk state. origP is the machine size the build started with; after
// crash recovery m.P() is smaller.
func collectMetrics(m *cluster.Machine, origP int, sel []lattice.ViewID, outs []*procOut, cfg Config) Metrics {
	st := m.Stats()
	met := Metrics{
		P:               origP,
		SimSeconds:      m.SimSeconds(),
		PhaseSeconds:    map[string]float64{},
		BytesMoved:      st.BytesMoved,
		BytesByPhase:    st.ByPhase,
		Supersteps:      st.Supersteps,
		RetriedMessages: st.Retried,
		CaseCounts:      map[mergepart.Case]int{},
		ViewRows:        map[lattice.ViewID]int64{},
		ViewOrders:      map[lattice.ViewID]lattice.Order{},
	}
	for _, out := range outs {
		for name, sec := range out.phase {
			if sec > met.PhaseSeconds[name] {
				met.PhaseSeconds[name] = sec
			}
		}
		for _, obs := range out.dims {
			met.Shifts += obs.shifts
			met.Resorts += obs.resorts
		}
		met.CheckpointBytes += out.ckptBytes
		if out.recoverySeconds > met.RecoverySeconds {
			met.RecoverySeconds = out.recoverySeconds
		}
	}
	met.CheckpointSeconds = met.PhaseSeconds["checkpoint"]
	// Component breakdown of the slowest processor's clock.
	for r := 0; r < m.P(); r++ {
		clk := m.Proc(r).Clock()
		if clk.Seconds() >= met.SimSeconds-1e-9 {
			met.CPUSeconds = clk.CPUSeconds()
			met.DiskSeconds = clk.DiskSeconds()
			met.CommSeconds = clk.CommSeconds()
			met.OverlappedCommSeconds = clk.OverlappedCommSeconds()
			break
		}
	}
	// Case counts, merge orders and retained schedule trees from P0's
	// observations (identical on all processors).
	met.SchedTrees = map[int]*lattice.Tree{}
	for i, obs := range outs[0].dims {
		for c, n := range obs.cases {
			met.CaseCounts[c] += n
		}
		for v, o := range obs.orders {
			met.ViewOrders[v] = o
		}
		if obs.tree != nil {
			met.SchedTrees[i] = obs.tree
		}
	}
	met.ViewBytesStored = map[lattice.ViewID]int64{}
	met.ViewSketchBytes = map[lattice.ViewID]int64{}
	agg := rankAgg(cfg, 0)
	for _, v := range sel {
		var rows, stored, sk int64
		for r := 0; r < m.P(); r++ {
			disk := m.Proc(r).Disk()
			if n := disk.Len(ViewFile(v)); n > 0 {
				rows += int64(n)
				stored += int64(disk.StoredBytes(ViewFile(v)))
				if agg.State != nil {
					// Peek is uncharged: metrics collection must not
					// perturb the clocks later query timing reads.
					if t, ok := disk.Peek(ViewFile(v)); ok {
						sk += int64(agg.TableStateBytes(t))
					}
				}
			}
		}
		met.ViewRows[v] = rows
		met.ViewBytesStored[v] = stored
		met.ViewSketchBytes[v] = sk
		met.OutputRows += rows
		met.OutputBytes += rows * int64(record.RowBytes(v.Count()))
		met.OutputBytesStored += stored
		met.SketchBytes += sk
	}
	return met
}
