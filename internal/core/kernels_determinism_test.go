package core

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/record"
)

// TestBuildCubeKernelsDeterminism is the two-clock guard for the
// packed-key radix/merge kernels: building the same seeded cube with
// kernels enabled and disabled must produce byte-identical view files
// on every rank and identical public Metrics. The kernels are allowed
// to change wall-clock time only — every simulated charge (SortOps,
// MergeOps, block transfers, h-relations) is analytic in the input
// sizes, never in the execution path taken.
func TestBuildCubeKernelsDeterminism(t *testing.T) {
	spec := gen.Spec{N: 6000, D: 4, Cards: []int{16, 12, 8, 5}, Seed: 21}
	p := 4
	build := func(on bool) (*cluster.Machine, Metrics) {
		prev := record.SetKernelsEnabled(on)
		defer record.SetKernelsEnabled(prev)
		g := gen.New(spec)
		m := cluster.New(p, costmodel.Default())
		for r := 0; r < p; r++ {
			m.Proc(r).Disk().Put("raw", g.Slice(r, p))
		}
		met, err := BuildCube(m, "raw", Config{D: spec.D})
		if err != nil {
			t.Fatal(err)
		}
		return m, met
	}
	mOn, metOn := build(true)
	mOff, metOff := build(false)

	if !reflect.DeepEqual(metOn, metOff) {
		t.Fatalf("Metrics differ between kernel paths:\n on: %+v\noff: %+v", metOn, metOff)
	}
	if len(metOn.ViewRows) == 0 {
		t.Fatal("no views materialized")
	}
	for v := range metOn.ViewRows {
		for r := 0; r < p; r++ {
			tbOn, okOn := mOn.Proc(r).Disk().Get(ViewFile(v))
			tbOff, okOff := mOff.Proc(r).Disk().Get(ViewFile(v))
			if okOn != okOff {
				t.Fatalf("view %v rank %d: presence differs (on=%v off=%v)", v, r, okOn, okOff)
			}
			if okOn && !record.Equal(tbOn, tbOff) {
				t.Fatalf("view %v rank %d: bytes differ between kernel paths", v, r)
			}
		}
	}
}
