package colstore

import (
	"math/rand"
	"testing"

	"repro/internal/record"
)

// TestReorderingNarrowsKeyPlanToPackable is the PR's key-width
// acceptance check: a shape whose declared cardinalities need more
// than 128 key bits — forcing the comparison sort — becomes packable
// after the frequency remap densifies the codes, so the same data
// takes the radix path.
func TestReorderingNarrowsKeyPlanToPackable(t *testing.T) {
	defer record.SetKernelsEnabled(record.SetKernelsEnabled(true))

	// Six declared dimensions of 2^24: 6*24 = 144 bits, over the
	// 128-bit packed-key window.
	const d = 6
	declared := make([]int, d)
	for j := range declared {
		declared[j] = 1 << 24
	}
	if kp := record.PlanKeyFromCards(declared); kp.Packable() {
		t.Fatalf("declared plan packable at %d bits; the test needs a >128-bit shape", kp.Bits())
	}

	// The data only touches 16 scattered codes per dimension — sparse
	// in the declared domain, as real fact tables are.
	rng := rand.New(rand.NewSource(7))
	domain := make([][]uint32, d)
	for j := range domain {
		seen := map[uint32]bool{}
		for len(domain[j]) < 16 {
			v := uint32(rng.Intn(1 << 24))
			if !seen[v] {
				seen[v] = true
				domain[j] = append(domain[j], v)
			}
		}
	}
	const n = 512
	tb := record.New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = domain[j][rng.Intn(len(domain[j]))]
		}
		tb.Append(row, int64(i))
	}

	remaps := FrequencyRemaps(tb)
	cards := RemapCards(tb, remaps)
	ApplyRemaps(tb, remaps)
	for j, c := range cards {
		if c > 16 {
			t.Fatalf("dim %d: effective cardinality %d > 16 distinct values", j, c)
		}
	}
	kp := record.PlanKeyFromCards(cards)
	if !kp.Packable() {
		t.Fatalf("remapped plan not packable: %d bits from cards %v", kp.Bits(), cards)
	}
	// This is SortWithPlan's radix gate: kernels on, enough rows, the
	// plan covers every column and packs. The comparison-sort oracle
	// below then proves the radix path sorts the remapped codes
	// correctly.
	if !(record.KernelsEnabled() && n >= 48 && kp.Cols() == d && kp.Packable()) {
		t.Fatal("radix-path gate not satisfied")
	}

	oracle := tb.Clone()
	record.SetKernelsEnabled(false)
	oracle.Sort()
	record.SetKernelsEnabled(true)
	tb.SortWithPlan(kp, true)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if tb.Dim(i, j) != oracle.Dim(i, j) {
				t.Fatalf("row %d dim %d: radix %d != oracle %d", i, j, tb.Dim(i, j), oracle.Dim(i, j))
			}
		}
	}
}
