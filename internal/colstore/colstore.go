// Package colstore implements the columnar compressed layout for
// sorted view slices: per-column run-length encoding on the sort-prefix
// dimensions, bit-packing with measured widths on the remaining code
// columns, and offset-from-minimum bit-packing for measures. Because
// every materialized view slice is stored globally sorted in its
// attribute order, the leading columns are long runs of equal codes and
// RLE collapses them to a run directory; deeper columns rarely repeat
// and fall back to dense bit-packing, whose width shrinks when
// dictionary codes are reassigned by descending frequency at
// dictionary-freeze time (Kaser & Lemire's attribute-value reordering).
//
// A Slice is the unit the rest of the system moves around: simdisk
// files hold one behind the Store interface, persist v3 serializes
// them directly (per rank, so a load re-places slices without
// re-cutting — the near-zero-copy path), and checkpoint replication
// ships them over the wire at their compressed size. Decoding is lazy:
// Table() materializes the row form once and caches it, the mmap-style
// block-handle idiom — holding a Slice costs nothing until someone
// reads rows through it.
//
// Everything here is deterministic: the encoding chosen for a column
// depends only on the column's values, so modelled byte sizes (and the
// simulated charges derived from them) are identical run to run,
// kernels on or off.
package colstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/record"
)

// Column encodings.
const (
	// KindPacked stores every value bit-packed at Width bits.
	KindPacked uint8 = iota
	// KindRLE stores maximal runs: run values bit-packed at Width bits
	// plus a directory of run end rows.
	KindRLE
)

// ErrCorrupt is wrapped by every validation failure of a columnar
// block, so loaders can detect damaged or truncated slices with
// errors.Is instead of panicking mid-decode.
var ErrCorrupt = errors.New("colstore: corrupt columnar block")

// disabled gates the columnar layout globally (on by default), the
// storage analogue of record.SetKernelsEnabled: the row-storage bench
// arm and the columnar-vs-row oracle tests run with it off. Unlike the
// kernel switch, turning storage off is allowed to change modelled
// byte sizes — that difference is the point of the comparison.
var disabled atomic.Bool

// Enabled reports whether sealing to the columnar layout is on.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns the columnar layout on or off, returning the
// previous setting. Only complete configurations are supported: flip
// it before building, not mid-run.
func SetEnabled(on bool) bool {
	return !disabled.Swap(!on)
}

// Column is one encoded dimension column.
type Column struct {
	Kind  uint8
	Width uint8 // bits per value (0 when every value is 0)
	N     int   // logical row count
	// Words bit-packs the values LSB-first: row values for KindPacked,
	// run values for KindRLE.
	Words []uint64
	// Ends (KindRLE only) holds each run's exclusive end row,
	// strictly increasing; the last entry equals N.
	Ends []uint32
}

// Slice is one view slice in columnar form. All payload fields are
// exported so persist can gob-serialize a Slice as-is; the decode
// cache is unexported state the codec never sees.
type Slice struct {
	NumCols int
	NumRows int
	Cols    []Column
	// Measures are stored as offsets from MeasMin, bit-packed at
	// MeasWidth bits. The offset subtraction is modular over uint64, so
	// any int64 span round-trips exactly.
	MeasMin   int64
	MeasWidth uint8
	MeasWords []uint64

	mu    sync.Mutex
	cache *record.Table
}

// Store is the storage interface a simdisk file holds its relation
// behind: the row-form *record.Table (via TableStore) and the columnar
// *Slice both satisfy it, so every disk primitive works on either
// layout and charges the layout's modelled size.
type Store interface {
	// Len returns the row count.
	Len() int
	// D returns the dimension column count.
	D() int
	// Bytes returns the modelled stored size.
	Bytes() int
	// Table returns a row-form view of the store. For a Slice it is a
	// cached decode shared between callers, read-only by contract (the
	// same contract simdisk.Get has always had).
	Table() *record.Table
}

// TableStore adapts a row-form table to the Store interface.
type TableStore struct{ T *record.Table }

func (ts TableStore) Len() int             { return ts.T.Len() }
func (ts TableStore) D() int               { return ts.T.D }
func (ts TableStore) Bytes() int           { return ts.T.Bytes() }
func (ts TableStore) Table() *record.Table { return ts.T }

// Modelled header overhead: a slice header plus one per column and one
// for the measure column. Kept deliberately small and fixed so byte
// accounting is stable.
const (
	SliceHeaderBytes  = 16
	ColumnHeaderBytes = 12
)

// bitsFor returns the number of bits needed to represent v.
func bitsFor(v uint64) uint8 {
	w := uint8(0)
	for v != 0 {
		w++
		v >>= 1
	}
	return w
}

// wordsFor returns the uint64 word count backing n values of w bits.
func wordsFor(n int, w uint8) int {
	if w == 0 || n == 0 {
		return 0
	}
	return (n*int(w) + 63) / 64
}

// packedBytes models the byte size of n values at w bits.
func packedBytes(n int, w uint8) int {
	if w == 0 || n == 0 {
		return 0
	}
	return (n*int(w) + 7) / 8
}

// pack bit-packs vals at w bits per value, LSB-first.
func pack(vals []uint64, w uint8) []uint64 {
	nw := wordsFor(len(vals), w)
	if nw == 0 {
		return nil
	}
	words := make([]uint64, nw)
	for i, v := range vals {
		bit := i * int(w)
		word, off := bit>>6, uint(bit&63)
		words[word] |= v << off
		if off+uint(w) > 64 {
			words[word+1] |= v >> (64 - off)
		}
	}
	return words
}

// unpack extracts value i from an LSB-first packed word array.
func unpack(words []uint64, i int, w uint8) uint64 {
	if w == 0 {
		return 0
	}
	bit := i * int(w)
	word, off := bit>>6, uint(bit&63)
	v := words[word] >> off
	if off+uint(w) > 64 {
		v |= words[word+1] << (64 - off)
	}
	if w == 64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

// Encode compresses a table into a Slice. The choice of encoding per
// column (RLE vs packed) minimizes the modelled byte size and depends
// only on the column's values, so it is deterministic. Encode does not
// take ownership of t.
func Encode(t *record.Table) *Slice {
	n := t.Len()
	s := &Slice{NumCols: t.D, NumRows: n, Cols: make([]Column, t.D)}
	vals := make([]uint64, n)
	for j := 0; j < t.D; j++ {
		var maxv uint64
		runs := 0
		for i := 0; i < n; i++ {
			v := uint64(t.Dim(i, j))
			vals[i] = v
			if v > maxv {
				maxv = v
			}
			if i == 0 || vals[i] != vals[i-1] {
				runs++
			}
		}
		w := bitsFor(maxv)
		col := Column{Width: w, N: n}
		if packedBytes(runs, w)+4*runs < packedBytes(n, w) {
			col.Kind = KindRLE
			rv := make([]uint64, 0, runs)
			ends := make([]uint32, 0, runs)
			for i := 0; i < n; i++ {
				if i == 0 || vals[i] != vals[i-1] {
					if i > 0 {
						ends = append(ends, uint32(i))
					}
					rv = append(rv, vals[i])
				}
			}
			if n > 0 {
				ends = append(ends, uint32(n))
			}
			col.Words = pack(rv, w)
			col.Ends = ends
		} else {
			col.Kind = KindPacked
			col.Words = pack(vals, w)
		}
		s.Cols[j] = col
	}
	if n > 0 {
		minv, maxv := t.Meas(0), t.Meas(0)
		for i := 1; i < n; i++ {
			m := t.Meas(i)
			if m < minv {
				minv = m
			}
			if m > maxv {
				maxv = m
			}
		}
		s.MeasMin = minv
		s.MeasWidth = bitsFor(uint64(maxv) - uint64(minv))
		mv := make([]uint64, n)
		for i := 0; i < n; i++ {
			mv[i] = uint64(t.Meas(i)) - uint64(minv)
		}
		s.MeasWords = pack(mv, s.MeasWidth)
	}
	return s
}

// Len returns the row count (nil-safe).
func (s *Slice) Len() int {
	if s == nil {
		return 0
	}
	return s.NumRows
}

// D returns the dimension column count.
func (s *Slice) D() int { return s.NumCols }

// columnBytes models one column's encoded size, header included.
func (c *Column) columnBytes() int {
	if c.Kind == KindRLE {
		return ColumnHeaderBytes + packedBytes(len(c.Ends), c.Width) + 4*len(c.Ends)
	}
	return ColumnHeaderBytes + packedBytes(c.N, c.Width)
}

// Bytes returns the modelled compressed size of the slice (nil-safe:
// a nil slice models an absent payload of zero bytes).
func (s *Slice) Bytes() int {
	if s == nil {
		return 0
	}
	b := SliceHeaderBytes + ColumnHeaderBytes + packedBytes(s.NumRows, s.MeasWidth)
	for j := range s.Cols {
		b += s.Cols[j].columnBytes()
	}
	return b
}

// ColumnBytes returns the modelled encoded size of dimension column j
// (the run directory a prefix index reads), header included.
func (s *Slice) ColumnBytes(j int) int { return s.Cols[j].columnBytes() }

// RangeBytes models the bytes touched by reading rows [lo, hi): for
// packed columns the rows' packed bits, for RLE columns the runs
// overlapping the range. This is the block-granular charge ReadRange
// pays on a sealed file.
func (s *Slice) RangeBytes(lo, hi int) int {
	n := hi - lo
	if n <= 0 {
		return 0
	}
	b := SliceHeaderBytes + ColumnHeaderBytes + packedBytes(n, s.MeasWidth)
	for j := range s.Cols {
		c := &s.Cols[j]
		if c.Kind == KindRLE {
			r0 := sort.Search(len(c.Ends), func(k int) bool { return int(c.Ends[k]) > lo })
			r1 := sort.Search(len(c.Ends), func(k int) bool { return int(c.Ends[k]) >= hi })
			runs := r1 - r0 + 1
			b += ColumnHeaderBytes + packedBytes(runs, c.Width) + 4*runs
		} else {
			b += ColumnHeaderBytes + packedBytes(n, c.Width)
		}
	}
	return b
}

// Dim returns row i's value in dimension column j (random access:
// direct unpack for packed columns, run binary search for RLE).
func (s *Slice) Dim(i, j int) uint32 {
	c := &s.Cols[j]
	if c.Kind == KindRLE {
		r := sort.Search(len(c.Ends), func(k int) bool { return int(c.Ends[k]) > i })
		return uint32(unpack(c.Words, r, c.Width))
	}
	return uint32(unpack(c.Words, i, c.Width))
}

// Meas returns row i's measure.
func (s *Slice) Meas(i int) int64 {
	return int64(uint64(s.MeasMin) + unpack(s.MeasWords, i, s.MeasWidth))
}

// DecodeRange materializes rows [lo, hi) as a fresh row-form table,
// walking each column sequentially (amortized O(1) per value).
func (s *Slice) DecodeRange(lo, hi int) *record.Table {
	t := record.New(s.NumCols, hi-lo)
	row := make([]uint32, s.NumCols)
	runAt := make([]int, s.NumCols)
	for j := range s.Cols {
		c := &s.Cols[j]
		if c.Kind == KindRLE {
			runAt[j] = sort.Search(len(c.Ends), func(k int) bool { return int(c.Ends[k]) > lo })
		}
	}
	for i := lo; i < hi; i++ {
		for j := range s.Cols {
			c := &s.Cols[j]
			if c.Kind == KindRLE {
				for i >= int(c.Ends[runAt[j]]) {
					runAt[j]++
				}
				row[j] = uint32(unpack(c.Words, runAt[j], c.Width))
			} else {
				row[j] = uint32(unpack(c.Words, i, c.Width))
			}
		}
		t.Append(row, s.Meas(i))
	}
	return t
}

// Decode materializes the whole slice as a fresh row-form table.
func (s *Slice) Decode() *record.Table { return s.DecodeRange(0, s.NumRows) }

// Table returns the slice's cached row-form decode, materializing it
// on first use. Callers must treat the result as read-only; callers
// needing a mutable table use Decode.
func (s *Slice) Table() *record.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = s.Decode()
	}
	return s.cache
}

// LeadingRuns returns the run directory of the leading sort column:
// vals[k] is run k's value, starts[k] its first row, with one extra
// starts entry holding the slice length — exactly the shape the query
// engine's prefix Index wants. For an RLE leading column this reads
// the directory that is already materialized (no row scan).
func (s *Slice) LeadingRuns() (vals []uint32, starts []int) {
	if s.NumCols == 0 || s.NumRows == 0 {
		return nil, []int{0}
	}
	c := &s.Cols[0]
	if c.Kind == KindRLE {
		vals = make([]uint32, len(c.Ends))
		starts = make([]int, len(c.Ends)+1)
		for k := range c.Ends {
			vals[k] = uint32(unpack(c.Words, k, c.Width))
			starts[k+1] = int(c.Ends[k])
		}
		return vals, starts
	}
	for i := 0; i < s.NumRows; i++ {
		v := uint32(unpack(c.Words, i, c.Width))
		if len(vals) == 0 || vals[len(vals)-1] != v {
			vals = append(vals, v)
			starts = append(starts, i)
		}
	}
	starts = append(starts, s.NumRows)
	return vals, starts
}

// Clone deep-copies the slice's payload (not the decode cache), the
// simulated-wire analogue of record.Table.Clone.
func (s *Slice) Clone() *Slice {
	if s == nil {
		return nil
	}
	c := &Slice{
		NumCols:   s.NumCols,
		NumRows:   s.NumRows,
		Cols:      make([]Column, len(s.Cols)),
		MeasMin:   s.MeasMin,
		MeasWidth: s.MeasWidth,
		MeasWords: append([]uint64(nil), s.MeasWords...),
	}
	for j, col := range s.Cols {
		col.Words = append([]uint64(nil), col.Words...)
		col.Ends = append([]uint32(nil), col.Ends...)
		c.Cols[j] = col
	}
	return c
}

// Checksum hashes the slice's wire image (FNV-1a over headers and
// payload words), for the checked exchange's corruption detection.
func (s *Slice) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for k := 0; k < 8; k++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	if s == nil {
		return h
	}
	mix(uint64(s.NumCols))
	mix(uint64(s.NumRows))
	mix(uint64(s.MeasMin))
	mix(uint64(s.MeasWidth))
	for _, w := range s.MeasWords {
		mix(w)
	}
	for j := range s.Cols {
		c := &s.Cols[j]
		mix(uint64(c.Kind)<<32 | uint64(c.Width))
		for _, w := range c.Words {
			mix(w)
		}
		for _, e := range c.Ends {
			mix(uint64(e))
		}
	}
	return h
}

// Corrupt flips one payload bit chosen by mask, modelling wire damage
// for fault injection; it reports whether any bit was flipped (a slice
// with no payload cannot be damaged detectably).
func (s *Slice) Corrupt(mask uint64) bool {
	if s == nil {
		return false
	}
	var words []*uint64
	for j := range s.Cols {
		for k := range s.Cols[j].Words {
			words = append(words, &s.Cols[j].Words[k])
		}
	}
	for k := range s.MeasWords {
		words = append(words, &s.MeasWords[k])
	}
	if len(words) == 0 {
		return false
	}
	w := words[int(mask%uint64(len(words)))]
	*w ^= 1 << ((mask >> 8) % 64)
	return true
}

// Validate checks the slice's structural invariants, returning an
// error wrapping ErrCorrupt on any violation — the typed failure mode
// for damaged or truncated persisted blocks.
func (s *Slice) Validate() error {
	if s == nil {
		return fmt.Errorf("%w: nil slice", ErrCorrupt)
	}
	if s.NumCols < 0 || s.NumRows < 0 {
		return fmt.Errorf("%w: negative shape %dx%d", ErrCorrupt, s.NumRows, s.NumCols)
	}
	if len(s.Cols) != s.NumCols {
		return fmt.Errorf("%w: %d columns, header says %d", ErrCorrupt, len(s.Cols), s.NumCols)
	}
	for j := range s.Cols {
		c := &s.Cols[j]
		if c.N != s.NumRows {
			return fmt.Errorf("%w: column %d has %d rows, slice has %d", ErrCorrupt, j, c.N, s.NumRows)
		}
		if c.Width > 32 {
			return fmt.Errorf("%w: column %d width %d exceeds 32 bits", ErrCorrupt, j, c.Width)
		}
		switch c.Kind {
		case KindPacked:
			if len(c.Ends) != 0 {
				return fmt.Errorf("%w: packed column %d has a run directory", ErrCorrupt, j)
			}
			if len(c.Words) != wordsFor(c.N, c.Width) {
				return fmt.Errorf("%w: column %d has %d words, want %d", ErrCorrupt, j, len(c.Words), wordsFor(c.N, c.Width))
			}
		case KindRLE:
			if c.N == 0 {
				if len(c.Ends) != 0 || len(c.Words) != 0 {
					return fmt.Errorf("%w: empty RLE column %d has payload", ErrCorrupt, j)
				}
				continue
			}
			if len(c.Ends) == 0 || int(c.Ends[len(c.Ends)-1]) != c.N {
				return fmt.Errorf("%w: column %d run directory does not cover %d rows", ErrCorrupt, j, c.N)
			}
			prev := uint32(0)
			for k, e := range c.Ends {
				if e <= prev && k > 0 || e == 0 {
					return fmt.Errorf("%w: column %d run directory not increasing at %d", ErrCorrupt, j, k)
				}
				prev = e
			}
			if len(c.Words) != wordsFor(len(c.Ends), c.Width) {
				return fmt.Errorf("%w: column %d has %d run words, want %d", ErrCorrupt, j, len(c.Words), wordsFor(len(c.Ends), c.Width))
			}
		default:
			return fmt.Errorf("%w: column %d has unknown encoding %d", ErrCorrupt, j, c.Kind)
		}
	}
	if len(s.MeasWords) != wordsFor(s.NumRows, s.MeasWidth) {
		return fmt.Errorf("%w: %d measure words, want %d", ErrCorrupt, len(s.MeasWords), wordsFor(s.NumRows, s.MeasWidth))
	}
	return nil
}

// FrequencyRemaps computes, per dimension column, the attribute-value
// reordering remap: remaps[j][old] is the new code of old code old,
// assigned by descending frequency with ascending old code breaking
// ties. Applying it compacts each column's observed code space to a
// dense frequency-ordered prefix, which lengthens sorted runs and
// shrinks packed widths (Kaser & Lemire).
func FrequencyRemaps(t *record.Table) [][]uint32 {
	n := t.Len()
	remaps := make([][]uint32, t.D)
	for j := 0; j < t.D; j++ {
		maxv := uint32(0)
		for i := 0; i < n; i++ {
			if v := t.Dim(i, j); v > maxv {
				maxv = v
			}
		}
		freq := make([]int, int(maxv)+1)
		for i := 0; i < n; i++ {
			freq[t.Dim(i, j)]++
		}
		ord := make([]int, len(freq))
		for k := range ord {
			ord[k] = k
		}
		sort.SliceStable(ord, func(a, b int) bool { return freq[ord[a]] > freq[ord[b]] })
		remap := make([]uint32, len(freq))
		for newCode, old := range ord {
			remap[old] = uint32(newCode)
		}
		remaps[j] = remap
	}
	return remaps
}

// ApplyRemaps rewrites t's codes through the per-column remaps in
// place.
func ApplyRemaps(t *record.Table, remaps [][]uint32) {
	n := t.Len()
	for i := 0; i < n; i++ {
		row := t.Row(i)
		for j, v := range row {
			row[j] = remaps[j][v]
		}
	}
}

// RemapCards returns the effective per-column cardinalities after a
// frequency remap: the observed distinct counts, i.e. the number of
// codes each remap actually assigns.
func RemapCards(t *record.Table, remaps [][]uint32) []int {
	n := t.Len()
	cards := make([]int, t.D)
	for j := range cards {
		maxv := uint32(0)
		seen := false
		for i := 0; i < n; i++ {
			v := remaps[j][t.Dim(i, j)]
			if !seen || v > maxv {
				maxv, seen = v, true
			}
		}
		if seen {
			cards[j] = int(maxv) + 1
		} else {
			cards[j] = 1
		}
	}
	return cards
}
