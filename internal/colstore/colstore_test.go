package colstore

import (
	"errors"
	"testing"

	"repro/internal/record"
)

// splitmix64 gives the tests a deterministic value stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sortedTable builds a sorted aggregated table shaped like a view
// slice: leading columns low-cardinality (long runs), deeper columns
// wider, measures clustered around a base.
func sortedTable(n int, cards []int, seed uint64) *record.Table {
	t := record.New(len(cards), n)
	row := make([]uint32, len(cards))
	for i := 0; i < n; i++ {
		x := splitmix64(seed + uint64(i))
		for j, c := range cards {
			x = splitmix64(x)
			row[j] = uint32(x % uint64(c))
		}
		t.Append(row, 1000+int64(x%4096))
	}
	t.Sort()
	return record.AggregateSortedOp(t, t.D, record.OpSum)
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4097} {
		src := sortedTable(n, []int{4, 8, 300, 70000}, uint64(n)+1)
		s := Encode(src)
		if err := s.Validate(); err != nil {
			t.Fatalf("n=%d: valid slice rejected: %v", n, err)
		}
		if got := s.Decode(); !record.Equal(got, src) {
			t.Fatalf("n=%d: decode mismatch", n)
		}
		if s.Len() != src.Len() || s.D() != src.D {
			t.Fatalf("n=%d: shape %dx%d, want %dx%d", n, s.Len(), s.D(), src.Len(), src.D)
		}
	}
}

func TestRandomAccessAndRanges(t *testing.T) {
	src := sortedTable(500, []int{3, 5, 1000}, 7)
	s := Encode(src)
	n := src.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < src.D; j++ {
			if got, want := s.Dim(i, j), src.Dim(i, j); got != want {
				t.Fatalf("Dim(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
		if got, want := s.Meas(i), src.Meas(i); got != want {
			t.Fatalf("Meas(%d) = %d, want %d", i, got, want)
		}
	}
	for _, r := range [][2]int{{0, 0}, {0, n}, {n / 3, 2 * n / 3}, {n - 1, n}} {
		got := s.DecodeRange(r[0], r[1])
		want := src.Sub(r[0], r[1])
		if !record.Equal(got, want) {
			t.Fatalf("DecodeRange(%d,%d) mismatch", r[0], r[1])
		}
		rb := s.RangeBytes(r[0], r[1])
		if r[1] > r[0] && (rb <= 0 || rb > s.Bytes()+SliceHeaderBytes) {
			t.Fatalf("RangeBytes(%d,%d) = %d out of range (slice %d)", r[0], r[1], rb, s.Bytes())
		}
	}
}

func TestNegativeAndExtremeMeasures(t *testing.T) {
	src := record.New(1, 4)
	src.Append([]uint32{0}, -1<<62)
	src.Append([]uint32{1}, 1<<62)
	src.Append([]uint32{2}, 0)
	src.Append([]uint32{3}, -7)
	s := Encode(src)
	if got := s.Decode(); !record.Equal(got, src) {
		t.Fatal("extreme measure round trip failed")
	}
}

func TestCompressionOnSortedSlices(t *testing.T) {
	src := sortedTable(20000, []int{2, 4, 8, 16, 100, 100, 100, 100}, 99)
	s := Encode(src)
	if s.Bytes() >= src.Bytes() {
		t.Fatalf("columnar %d bytes >= row %d bytes on a sorted slice", s.Bytes(), src.Bytes())
	}
	// Leading column of a sorted low-cardinality slice must pick RLE.
	if s.Cols[0].Kind != KindRLE {
		t.Fatalf("leading sorted column not RLE (kind %d)", s.Cols[0].Kind)
	}
}

func TestLeadingRuns(t *testing.T) {
	src := sortedTable(3000, []int{5, 7, 5000}, 3)
	s := Encode(src)
	vals, starts := s.LeadingRuns()
	if len(starts) != len(vals)+1 || starts[len(starts)-1] != src.Len() {
		t.Fatalf("run directory shape: %d vals, %d starts, last %d", len(vals), len(starts), starts[len(starts)-1])
	}
	k := 0
	for i := 0; i < src.Len(); i++ {
		for i >= starts[k+1] {
			k++
		}
		if src.Dim(i, 0) != vals[k] {
			t.Fatalf("row %d: run directory says %d, table says %d", i, vals[k], src.Dim(i, 0))
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	src := sortedTable(400, []int{4, 9, 700}, 11)
	mutations := []func(*Slice){
		func(s *Slice) { s.NumRows++ },
		func(s *Slice) { s.Cols[0].Ends = s.Cols[0].Ends[:len(s.Cols[0].Ends)-1] },
		func(s *Slice) { s.Cols[0].Ends[0] = 0 },
		func(s *Slice) { s.Cols[2].Words = s.Cols[2].Words[:1] },
		func(s *Slice) { s.MeasWords = nil },
		func(s *Slice) { s.Cols[1].Kind = 9 },
		func(s *Slice) { s.Cols[1].Width = 60 },
	}
	for k, mutate := range mutations {
		s := Encode(src)
		mutate(s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("mutation %d: corrupt slice validated", k)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mutation %d: error %v does not wrap ErrCorrupt", k, err)
		}
	}
}

func TestChecksumAndCorrupt(t *testing.T) {
	src := sortedTable(300, []int{4, 9, 700}, 13)
	s := Encode(src)
	sum := s.Checksum()
	for _, mask := range []uint64{0, 1, 12345, 1 << 40} {
		bad := s.Clone()
		if !bad.Corrupt(mask) {
			t.Fatalf("mask %d: non-empty payload reported uncorruptible", mask)
		}
		if bad.Checksum() == sum {
			t.Fatalf("mask %d: corruption not visible in checksum", mask)
		}
	}
	if s.Checksum() != sum {
		t.Fatal("checksum not stable")
	}
	if s.Clone().Checksum() != sum {
		t.Fatal("clone changed checksum")
	}
}

func TestTableCacheSharedAndEqual(t *testing.T) {
	src := sortedTable(200, []int{3, 50}, 17)
	s := Encode(src)
	a, b := s.Table(), s.Table()
	if a != b {
		t.Fatal("Table() did not cache the decode")
	}
	if !record.Equal(a, src) {
		t.Fatal("cached decode mismatch")
	}
	if fresh := s.Decode(); fresh == a {
		t.Fatal("Decode() returned the shared cache")
	}
}

func TestFrequencyRemaps(t *testing.T) {
	// Sparse first-appearance codes: three values with skewed
	// frequencies at codes 9000, 5, 70000.
	src := record.New(1, 0)
	for i := 0; i < 60; i++ {
		src.Append([]uint32{9000}, 1)
	}
	for i := 0; i < 30; i++ {
		src.Append([]uint32{5}, 1)
	}
	for i := 0; i < 10; i++ {
		src.Append([]uint32{70000}, 1)
	}
	remaps := FrequencyRemaps(src)
	if remaps[0][9000] != 0 || remaps[0][5] != 1 || remaps[0][70000] != 2 {
		t.Fatalf("frequency order wrong: %d %d %d", remaps[0][9000], remaps[0][5], remaps[0][70000])
	}
	cards := RemapCards(src, remaps)
	ApplyRemaps(src, remaps)
	if cards[0] != 3 {
		t.Fatalf("effective cardinality %d, want 3", cards[0])
	}
	kp := record.PlanKeyFromCards(cards)
	if kp.Bits() != 2 {
		t.Fatalf("reordered plan %d bits, want 2", kp.Bits())
	}
}

func TestStoreInterface(t *testing.T) {
	src := sortedTable(100, []int{4, 40}, 19)
	var st Store = TableStore{T: src}
	if st.Len() != src.Len() || st.D() != src.D || st.Bytes() != src.Bytes() || st.Table() != src {
		t.Fatal("TableStore adapter broken")
	}
	st = Encode(src)
	if st.Len() != src.Len() || st.D() != src.D {
		t.Fatal("Slice Store shape broken")
	}
	if !record.Equal(st.Table(), src) {
		t.Fatal("Slice Store decode broken")
	}
}

func TestEnabledSwitch(t *testing.T) {
	prev := SetEnabled(false)
	if Enabled() {
		t.Fatal("disable did not stick")
	}
	SetEnabled(prev)
	if !Enabled() {
		t.Fatal("default should be enabled")
	}
}
