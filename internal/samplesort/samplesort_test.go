package samplesort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/record"
)

// runSort distributes the given per-processor tables, runs Sort on all
// processors, and returns the resulting per-processor tables and
// results.
func runSort(t *testing.T, parts []*record.Table, gamma float64) ([]*record.Table, []Result) {
	t.Helper()
	p := len(parts)
	m := cluster.New(p, costmodel.Default())
	for i, tb := range parts {
		m.Proc(i).Disk().Put("data", tb)
	}
	results := make([]Result, p)
	m.Run(func(pr *cluster.Proc) {
		results[pr.Rank()] = Sort(pr, "data", gamma)
	})
	out := make([]*record.Table, p)
	for i := 0; i < p; i++ {
		out[i] = m.Proc(i).Disk().MustGet("data")
	}
	return out, results
}

// checkGloballySorted verifies each part is sorted and parts are
// ordered across processors, and that the union matches want (as a
// multiset of rows with total measure).
func checkGloballySorted(t *testing.T, parts []*record.Table, want *record.Table) {
	t.Helper()
	concat := record.New(want.D, 0)
	for i, tb := range parts {
		if !tb.IsSorted() {
			t.Fatalf("part %d not locally sorted", i)
		}
		if i > 0 && parts[i-1].Len() > 0 && tb.Len() > 0 {
			if record.CompareTables(parts[i-1], parts[i-1].Len()-1, tb, 0, tb.D) > 0 {
				t.Fatalf("parts %d and %d out of global order", i-1, i)
			}
		}
		concat.AppendTable(tb)
	}
	sorted := want.Clone()
	sorted.Sort()
	if concat.Len() != sorted.Len() || concat.TotalMeasure() != sorted.TotalMeasure() {
		t.Fatalf("global size/mass mismatch: %d/%d rows", concat.Len(), sorted.Len())
	}
	for i := 0; i < concat.Len(); i++ {
		if record.CompareTables(concat, i, sorted, i, sorted.D) != 0 {
			t.Fatalf("row %d differs from reference sort", i)
		}
	}
}

func randomParts(seed int64, p, rowsPer, d, card int) ([]*record.Table, *record.Table) {
	rng := rand.New(rand.NewSource(seed))
	parts := make([]*record.Table, p)
	all := record.New(d, 0)
	row := make([]uint32, d)
	for j := 0; j < p; j++ {
		tb := record.New(d, rowsPer)
		for i := 0; i < rowsPer; i++ {
			for k := range row {
				row[k] = uint32(rng.Intn(card))
			}
			tb.Append(row, int64(rng.Intn(9)+1))
		}
		parts[j] = tb
		all.AppendTable(tb)
	}
	return parts, all
}

func TestSortBalancedUniform(t *testing.T) {
	parts, all := randomParts(1, 4, 1000, 3, 50)
	out, res := runSort(t, parts, 0.05)
	checkGloballySorted(t, out, all)
	for _, r := range res {
		if r.ImbalanceAfter > 0.05 && r.Shifted {
			t.Fatalf("shift left imbalance %v", r.ImbalanceAfter)
		}
	}
}

func TestSortTriggersShiftOnSkewedPlacement(t *testing.T) {
	// All small values on one processor: regular sampling still works,
	// but force a tiny gamma so any residual imbalance shifts.
	parts, all := randomParts(2, 4, 800, 2, 10)
	out, res := runSort(t, parts, 0.0001)
	checkGloballySorted(t, out, all)
	anyShift := false
	for _, r := range res {
		if r.Shifted {
			anyShift = true
			if r.ImbalanceAfter > 0.01 {
				t.Fatalf("post-shift imbalance %v too high", r.ImbalanceAfter)
			}
		}
	}
	// With duplicate-heavy keys and gamma=0.01%, a shift is essentially
	// guaranteed; if not, the data was perfectly balanced already.
	_ = anyShift
}

func TestSortSkipsShiftWhenBalanced(t *testing.T) {
	// Distinct keys striped across processors: sample sort balances
	// well; a loose gamma must not shift.
	p := 4
	parts := make([]*record.Table, p)
	for j := 0; j < p; j++ {
		tb := record.New(1, 0)
		for i := 0; i < 500; i++ {
			tb.Append([]uint32{uint32(i*p + j)}, 1)
		}
		parts[j] = tb
	}
	all := record.New(1, 0)
	for _, tb := range parts {
		all.AppendTable(tb)
	}
	out, res := runSort(t, parts, 0.25)
	checkGloballySorted(t, out, all)
	for _, r := range res {
		if r.Shifted {
			t.Fatalf("unexpected shift at imbalance %v", r.ImbalanceBefore)
		}
	}
}

func TestSortSingleProcessor(t *testing.T) {
	parts, all := randomParts(3, 1, 500, 2, 20)
	out, _ := runSort(t, parts, 0.01)
	checkGloballySorted(t, out, all)
}

func TestSortEmptyInput(t *testing.T) {
	p := 3
	parts := make([]*record.Table, p)
	for i := range parts {
		parts[i] = record.New(2, 0)
	}
	out, res := runSort(t, parts, 0.01)
	for i, tb := range out {
		if tb.Len() != 0 {
			t.Fatalf("part %d nonempty", i)
		}
		if res[i].Shifted {
			t.Fatal("empty input must not shift")
		}
	}
}

func TestSortOneProcEmpty(t *testing.T) {
	parts, _ := randomParts(5, 3, 400, 2, 30)
	parts = append(parts, record.New(2, 0)) // 4th processor has nothing
	all := record.New(2, 0)
	for _, tb := range parts {
		all.AppendTable(tb)
	}
	out, _ := runSort(t, parts, 0.01)
	checkGloballySorted(t, out, all)
}

func TestSortAllDuplicateKeys(t *testing.T) {
	// Pathological: every row identical. Sorting must terminate and
	// keep all rows; balance may be impossible before the shift, but
	// the shift must fix it.
	p := 4
	parts := make([]*record.Table, p)
	all := record.New(2, 0)
	for j := range parts {
		tb := record.New(2, 0)
		for i := 0; i < 300; i++ {
			tb.Append([]uint32{7, 7}, 1)
		}
		parts[j] = tb
		all.AppendTable(tb)
	}
	out, res := runSort(t, parts, 0.01)
	checkGloballySorted(t, out, all)
	for _, r := range res {
		if r.ImbalanceAfter > 0.01 {
			t.Fatalf("duplicates: final imbalance %v", r.ImbalanceAfter)
		}
	}
	_ = res
}

func TestQuickSortRandomConfigurations(t *testing.T) {
	f := func(seed int64, pRaw, cardRaw uint8) bool {
		p := int(pRaw%6) + 1
		card := int(cardRaw%40) + 1
		parts, all := randomParts(seed, p, 200, 2, card)
		m := cluster.New(p, costmodel.Default())
		for i, tb := range parts {
			m.Proc(i).Disk().Put("f", tb)
		}
		ok := true
		m.Run(func(pr *cluster.Proc) {
			r := Sort(pr, "f", 0.01)
			if r.Rows != m.Proc(pr.Rank()).Disk().Len("f") {
				ok = false
			}
		})
		out := make([]*record.Table, p)
		total := 0
		for i := 0; i < p; i++ {
			out[i] = m.Proc(i).Disk().MustGet("f")
			if !out[i].IsSorted() {
				return false
			}
			if i > 0 && out[i-1].Len() > 0 && out[i].Len() > 0 &&
				record.CompareTables(out[i-1], out[i-1].Len()-1, out[i], 0, 2) > 0 {
				return false
			}
			total += out[i].Len()
		}
		return ok && total == all.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSortNearEmptyInput exercises the degenerate path where fewer
// rows than processors exist: the pivot machinery sees tiny samples
// and most processors end up empty, but the global order must hold.
func TestSortNearEmptyInput(t *testing.T) {
	p := 4
	parts := make([]*record.Table, p)
	for i := range parts {
		parts[i] = record.New(2, 0)
	}
	parts[2].Append([]uint32{9, 1}, 5)
	parts[2].Append([]uint32{3, 7}, 2)
	all := record.New(2, 0)
	all.AppendTable(parts[2])
	out, res := runSort(t, parts, 0.01)
	checkGloballySorted(t, out, all)
	total := 0
	for i, r := range res {
		if r.Rows != out[i].Len() {
			t.Fatalf("proc %d reports %d rows, holds %d", i, r.Rows, out[i].Len())
		}
		total += r.Rows
	}
	if total != 2 {
		t.Fatalf("rows lost: %d of 2 survive", total)
	}
}

// TestSortEmptyInputChargesNoPivotBroadcast is the regression test for
// the degenerate pivot-broadcast charge: with no data there are no
// global pivots, so the broadcast must move keyBytes*len(global) = 0
// bytes, not keyBytes*(p-1). Only the row-count AllGather of Step 6
// touches the wire.
func TestSortEmptyInputChargesNoPivotBroadcast(t *testing.T) {
	p := 3
	m := cluster.New(p, costmodel.Default())
	for i := 0; i < p; i++ {
		m.Proc(i).Disk().Put("data", record.New(2, 0))
	}
	m.Run(func(pr *cluster.Proc) {
		Sort(pr, "data", 0.01)
	})
	// Step 6's AllGather of local sizes: every processor sends its
	// 8-byte count to the p-1 others.
	want := int64(p * 8 * (p - 1))
	if st := m.Stats(); st.BytesMoved != want {
		t.Fatalf("empty input moved %d bytes, want %d (sizes AllGather only)", st.BytesMoved, want)
	}
}

// TestSortSingleProcessorNoComm: p=1 must sort locally and touch the
// network not at all.
func TestSortSingleProcessorNoComm(t *testing.T) {
	m := cluster.New(1, costmodel.Default())
	tb := record.New(2, 0)
	for i := 0; i < 100; i++ {
		tb.Append([]uint32{uint32(99 - i), uint32(i)}, 1)
	}
	m.Proc(0).Disk().Put("data", tb)
	m.Run(func(pr *cluster.Proc) {
		r := Sort(pr, "data", 0.01)
		if r.Shifted {
			t.Error("p=1 must never shift")
		}
		if r.Rows != 100 {
			t.Errorf("p=1 kept %d rows, want 100", r.Rows)
		}
	})
	if !m.Proc(0).Disk().MustGet("data").IsSorted() {
		t.Fatal("p=1 output not sorted")
	}
	if st := m.Stats(); st.BytesMoved != 0 {
		t.Fatalf("p=1 moved %d bytes", st.BytesMoved)
	}
	if c := m.Proc(0).Clock().CommSeconds(); c != 0 {
		t.Fatalf("p=1 charged %v comm seconds", c)
	}
}

func TestSortMovesBytesAccounted(t *testing.T) {
	parts, _ := randomParts(9, 4, 1000, 3, 50)
	p := len(parts)
	m := cluster.New(p, costmodel.Default())
	for i, tb := range parts {
		m.Proc(i).Disk().Put("data", tb)
	}
	m.Run(func(pr *cluster.Proc) {
		pr.SetPhase("samplesort")
		Sort(pr, "data", 0.01)
	})
	st := m.Stats()
	if st.BytesMoved == 0 || st.ByPhase["samplesort"] != st.BytesMoved {
		t.Fatalf("stats wrong: %+v", st)
	}
}
