// Package samplesort implements Procedure 2 of the paper,
// Adaptive–Sample–Sort: parallel sorting by regular sampling (Li et
// al. [14]) with an adaptive rebalancing twist. One h-relation usually
// yields sorted and well-balanced data; the second "global shift"
// h-relation is performed only when the measured relative imbalance
// exceeds the threshold γ (1% for raw-data partitioning, 3% for merge
// re-sorts).
package samplesort

import (
	"sort"

	"repro/internal/balance"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/record"
)

// Result reports what one Adaptive–Sample–Sort run did.
type Result struct {
	// ImbalanceBefore is I(y0..yp-1) measured after the first
	// h-relation.
	ImbalanceBefore float64
	// Shifted reports whether the global shift was required.
	Shifted bool
	// ImbalanceAfter is the imbalance of the final distribution.
	ImbalanceAfter float64
	// Rows is this processor's final local row count.
	Rows int
}

// keyBytes models the wire size of one pivot key.
func keyBytes(cols int) int { return record.DimBytes * cols }

// Sort globally sorts the named file (present on every processor's
// disk with identical schema) lexicographically over all columns,
// applying the global shift only if the post-exchange imbalance
// exceeds gamma. On return every processor's file holds its slice of
// the global order: all rows on Pj sort no later than all rows on
// Pj+1. Must be called by all processors of the machine (SPMD).
func Sort(p *cluster.Proc, file string, gamma float64) Result {
	return sortImpl(p, file, gamma, false, record.Agg{Op: record.OpSum})
}

// SortPresorted is Sort for files already locally sorted (e.g. views
// being re-distributed by Merge–Partitions Case 3); it skips the local
// external sort of Step 1 and agglomerates equal keys (with op) during
// the p-way merge, so equal view keys arriving from different
// processors collapse in the same pass.
func SortPresorted(p *cluster.Proc, file string, gamma float64, op record.AggOp) Result {
	return sortImpl(p, file, gamma, true, record.Agg{Op: op})
}

// SortPresortedAgg is SortPresorted with sketch state for holistic
// operators: equal keys collapsing during the p-way merge combine
// their sketches through the processor's combiner.
func SortPresortedAgg(p *cluster.Proc, file string, gamma float64, agg record.Agg) Result {
	return sortImpl(p, file, gamma, true, agg)
}

func sortImpl(p *cluster.Proc, file string, gamma float64, presorted bool, agg record.Agg) Result {
	disk := p.Disk()
	clk := p.Clock()
	np := p.P()

	// Step 1: local sort, then select p regularly spaced local pivots.
	if !presorted {
		extsort.Sort(disk, file)
	}
	local := disk.MustTake(file)
	n := local.Len()
	cols := local.D
	pivots := make([][]uint32, 0, np)
	for k := 0; k < np; k++ {
		r := k * n / np
		if r < n {
			pivots = append(pivots, local.RowCopy(r))
		}
	}
	gathered := cluster.Gather(p, 0, pivots, keyBytes(cols)*len(pivots))

	// Step 2: P0 sorts the <= p^2 local pivots and selects p-1 global
	// pivots at regularly spaced ranks with a half-stride offset
	// (the paper's rank kp + floor(p/2) pattern, generalized to
	// tolerate processors with fewer than p rows).
	var global [][]uint32
	if p.Rank() == 0 {
		var all [][]uint32
		for _, g := range gathered {
			all = append(all, g...)
		}
		sortKeys(all)
		clk.AddCompute(costmodel.SortOps(len(all)))
		if len(all) > 0 {
			for k := 1; k < np; k++ {
				r := k*len(all)/np + len(all)/(2*np)
				if r >= len(all) {
					r = len(all) - 1
				}
				global = append(global, all[r])
			}
		}
	}
	// The root's actual pivot count governs the charge (fewer than p-1
	// global pivots exist on degenerate/small inputs); non-roots learn
	// the posted size from the broadcast itself.
	global = cluster.Broadcast(p, 0, global, keyBytes(cols)*len(global))

	// Step 3: partition the locally sorted data by the global pivots.
	out := make([]*record.Table, np)
	if len(global) == 0 {
		// Degenerate: no data anywhere (or p == 1); keep rows local.
		for k := range out {
			out[k] = record.New(cols, 0)
		}
		out[p.Rank()] = local
	} else {
		bounds := make([]int, 0, np+1)
		bounds = append(bounds, 0)
		for _, g := range global {
			bounds = append(bounds, record.LowerBound(local, g))
		}
		bounds = append(bounds, n)
		for k := 0; k < np; k++ {
			lo, hi := bounds[k], bounds[k+1]
			if hi < lo {
				hi = lo
			}
			out[k] = local.Sub(lo, hi)
		}
	}

	// Step 4: the h-relation.
	in := cluster.AllToAllTables(p, out)

	// Step 5: p-way merge of the received sorted sequences.
	total := 0
	for _, t := range in {
		if t != nil {
			total += t.Len()
		}
	}
	clk.AddCompute(costmodel.MergeOps(total, np))
	var merged *record.Table
	if presorted {
		// View redistribution: collapse equal keys while merging.
		merged = record.MergeSortedAggregateAgg(in, agg)
	} else {
		merged = record.MergeSorted(in)
	}

	// Step 6: measure imbalance; shift only if above threshold.
	sizes := cluster.AllGather(p, merged.Len(), 8)
	res := Result{ImbalanceBefore: balance.Imbalance(sizes)}
	if res.ImbalanceBefore > gamma {
		merged = globalShift(p, merged, sizes)
		res.Shifted = true
		sizes = cluster.AllGather(p, merged.Len(), 8)
	}
	res.ImbalanceAfter = balance.Imbalance(sizes)
	res.Rows = merged.Len()
	disk.Put(file, merged)
	return res
}

// globalShift rebalances the globally sorted distribution so every
// processor holds a contiguous slice of size within one row of n/p,
// using a single h-relation. sizes[j] is processor j's current row
// count.
func globalShift(p *cluster.Proc, local *record.Table, sizes []int) *record.Table {
	np := p.P()
	n := 0
	offset := 0
	for j, y := range sizes {
		if j < p.Rank() {
			offset += y
		}
		n += y
	}
	targets := balance.Targets(n, np)
	out := make([]*record.Table, np)
	for k := 0; k < np; k++ {
		lo := targets[k] - offset
		hi := targets[k+1] - offset
		if lo < 0 {
			lo = 0
		}
		if lo > local.Len() {
			lo = local.Len()
		}
		if hi > local.Len() {
			hi = local.Len()
		}
		if hi < lo {
			hi = lo
		}
		out[k] = local.Sub(lo, hi)
	}
	in := cluster.AllToAllTables(p, out)
	// Received segments are contiguous global ranges ordered by source
	// rank; concatenation preserves the global order.
	merged := record.New(local.D, 0)
	for _, t := range in {
		if t != nil {
			merged.AppendTable(t)
		}
	}
	p.Clock().AddCompute(costmodel.ScanOps(merged.Len()))
	return merged
}

// sortKeys sorts pivot keys lexicographically. Comparison-sorting the
// up to p^2 keys matches the SortOps(n log n) charge in Step 2.
func sortKeys(keys [][]uint32) {
	sort.Slice(keys, func(a, b int) bool {
		return record.CompareKeys(keys[a], keys[b]) < 0
	})
}
