package samplesort

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
)

func BenchmarkAdaptiveSampleSort(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run("p"+itoa(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				parts, _ := randomParts(int64(i), p, 20_000, 3, 5000)
				m := cluster.New(p, costmodel.Default())
				for r, tb := range parts {
					m.Proc(r).Disk().Put("f", tb)
				}
				b.StartTimer()
				m.Run(func(pr *cluster.Proc) { Sort(pr, "f", 0.01) })
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
