package partialcube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/simdisk"
)

func mustParse(s string) lattice.ViewID {
	v, err := lattice.ParseView(s)
	if err != nil {
		panic(err)
	}
	return v
}

func sizer4() estimate.Sizer { return estimate.NewCardenas(10000, []int{16, 8, 4, 2}) }

func TestPrunedContainsSelectedAndValidates(t *testing.T) {
	sel := []lattice.ViewID{mustParse("AC"), mustParse("A")}
	tree := Plan(Pruned, 4, lattice.Root(0, 4), lattice.Canonical(lattice.Root(0, 4)),
		lattice.Partition(0, 4), sel, sizer4())
	if err := tree.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, tree)
	}
	for _, v := range sel {
		n := tree.Node(v)
		if n == nil || !n.Wanted {
			t.Fatalf("selected %v missing or unwanted\n%s", v, tree)
		}
	}
	// Every leaf must be selected (no useless intermediates at leaves).
	tree.Walk(func(n *lattice.Node) {
		if len(n.Children) == 0 && !n.Wanted {
			t.Fatalf("unselected leaf %v\n%s", n.View, tree)
		}
	})
	// Root is intermediate unless selected.
	if tree.Root.Wanted {
		t.Fatal("unselected root marked wanted")
	}
}

func TestPrunedFullSelectionEqualsFullTree(t *testing.T) {
	all := lattice.Partition(0, 4)
	tree := Plan(Pruned, 4, lattice.Root(0, 4), lattice.Canonical(lattice.Root(0, 4)), all, all, sizer4())
	if tree.Len() != len(all) {
		t.Fatalf("full selection pruned to %d views, want %d", tree.Len(), len(all))
	}
	tree.Walk(func(n *lattice.Node) {
		if !n.Wanted {
			t.Fatalf("view %v unwanted under full selection", n.View)
		}
	})
}

func TestGreedyStructure(t *testing.T) {
	sel := []lattice.ViewID{mustParse("AB"), mustParse("AC"), mustParse("A")}
	tree := Plan(Greedy, 4, lattice.Root(0, 4), lattice.Canonical(lattice.Root(0, 4)),
		lattice.Partition(0, 4), sel, sizer4())
	if err := tree.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, tree)
	}
	// Greedy materializes only root + selected.
	if tree.Len() != 4 {
		t.Fatalf("greedy tree has %d views, want 4\n%s", tree.Len(), tree)
	}
	for _, v := range sel {
		if tree.Node(v) == nil {
			t.Fatalf("selected %v missing", v)
		}
	}
}

func TestGreedySelectedIncludesRoot(t *testing.T) {
	root := lattice.Root(0, 3)
	sel := []lattice.ViewID{root, mustParse("A")}
	tree := Plan(Greedy, 3, root, lattice.Canonical(root), lattice.Partition(0, 3), sel, estimate.NewCardenas(100, []int{4, 4, 4}))
	if !tree.Root.Wanted {
		t.Fatal("selected root must be wanted")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanPanicsOnForeignView(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Plan(Pruned, 3, mustParse("B"), nil, lattice.Partition(1, 3), []lattice.ViewID{mustParse("A")}, sizer4())
}

func TestSelectPercent(t *testing.T) {
	d := 6
	total := 1 << uint(d)
	for _, pct := range []int{25, 50, 75, 100} {
		sel := SelectPercent(d, pct, 42)
		want := total * pct / 100
		if len(sel) != want {
			t.Fatalf("%d%%: %d views, want %d", pct, len(sel), want)
		}
		// Determinism.
		again := SelectPercent(d, pct, 42)
		for i := range sel {
			if sel[i] != again[i] {
				t.Fatal("SelectPercent not deterministic")
			}
		}
	}
	if len(SelectPercent(3, 1, 7)) != 1 {
		t.Fatal("minimum selection is one view")
	}
}

func TestSelectPercentNested(t *testing.T) {
	// Larger percentages must be supersets of smaller ones (same seed),
	// since both take a prefix of the same hash order.
	lo := SelectPercent(5, 25, 9)
	hi := SelectPercent(5, 75, 9)
	set := map[lattice.ViewID]bool{}
	for _, v := range hi {
		set[v] = true
	}
	for _, v := range lo {
		if !set[v] {
			t.Fatalf("view %v in 25%% but not 75%%", v)
		}
	}
}

// TestPartialExecutionCorrectness runs a pruned partial plan through
// the pipesort executor and validates the selected views against a
// brute-force group-by.
func TestPartialExecutionCorrectness(t *testing.T) {
	d := 4
	cards := []int{8, 6, 4, 3}
	rng := rand.New(rand.NewSource(17))
	raw := record.New(d, 0)
	row := make([]uint32, d)
	for i := 0; i < 1500; i++ {
		for j := range row {
			row[j] = uint32(rng.Intn(cards[j]))
		}
		raw.Append(row, int64(rng.Intn(4)+1))
	}
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	sel := []lattice.ViewID{mustParse("AC"), mustParse("AD"), mustParse("A")}
	for _, kind := range []Kind{Pruned, Greedy} {
		tree := Plan(kind, d, lattice.Root(0, d), lattice.Canonical(lattice.Root(0, d)),
			lattice.Partition(0, d), sel, sizer)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
		proj := raw.Project([]int(tree.Root.Order))
		disk.Put("view."+tree.Root.View.String(), record.SortAggregate(proj))
		pipesort.Execute(disk, tree, func(v lattice.ViewID) string { return "view." + v.String() })
		for _, v := range sel {
			n := tree.Node(v)
			got := disk.MustGet("view." + v.String())
			truth := map[string]int64{}
			for i := 0; i < raw.Len(); i++ {
				key := ""
				for _, dim := range n.Order {
					key += string(rune(raw.Dim(i, dim))) + ","
				}
				truth[key] += raw.Meas(i)
			}
			if got.Len() != len(truth) {
				t.Fatalf("%s: view %v has %d rows, want %d", kind, v, got.Len(), len(truth))
			}
			if !got.IsSorted() {
				t.Fatalf("%s: view %v not sorted", kind, v)
			}
		}
	}
}

func TestGreedyCheaperThanNothingButValid(t *testing.T) {
	f := func(seed int64, dRaw, kRaw uint8) bool {
		d := int(dRaw%3) + 3 // 3..5
		root := lattice.Root(0, d)
		part := lattice.Partition(0, d)
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%len(part) + 1
		sel := map[lattice.ViewID]bool{}
		for len(sel) < k {
			sel[part[rng.Intn(len(part))]] = true
		}
		var selected []lattice.ViewID
		for v := range sel {
			selected = append(selected, v)
		}
		sizer := estimate.NewCardenas(5000, []int{16, 8, 8, 4, 4}[:d])
		for _, kind := range []Kind{Pruned, Greedy} {
			tree := Plan(kind, d, root, lattice.Canonical(root), part, selected, sizer)
			if tree.Validate() != nil {
				return false
			}
			for _, v := range selected {
				if tree.Node(v) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
