// Package partialcube plans schedule trees for partial data cubes
// (§3 of the paper): only a user-selected subset S of views is
// materialized. Following the paper's reference [4] (Dehne, Eavis,
// Rau-Chaplin, "Computing partial data cubes"), two planners are
// provided:
//
//   - Pruned: run Pipesort over the full lattice and prune the
//     resulting tree to the subtree spanning the selected views. Nodes
//     kept only to cheapen descendants are marked as intermediate
//     (Wanted == false), matching Figure 1c where unselected views are
//     materialized on the way to selected ones.
//   - Greedy: build the tree directly from the lattice, attaching each
//     selected view (largest first) to the cheapest already-planned
//     superset via a scan edge when the attribute orders allow it and
//     a sort edge otherwise.
//
// Both return trees whose root is the partition root; the root is
// marked intermediate unless itself selected.
package partialcube

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/pipesort"
)

// Kind selects the planning strategy.
type Kind int

const (
	// Pruned derives the partial tree from a full Pipesort tree.
	Pruned Kind = iota
	// Greedy builds the partial tree directly from the lattice.
	Greedy
)

func (k Kind) String() string {
	switch k {
	case Pruned:
		return "pruned"
	case Greedy:
		return "greedy"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Plan builds a partial-cube schedule tree over the views of `all`
// (the candidate lattice subset, e.g. a full Di-partition), keeping
// only what is needed to produce `selected`. rootOrder pins the root's
// materialization order when non-nil. selected must be a subset of
// all; the root itself need not be selected.
func Plan(kind Kind, d int, root lattice.ViewID, rootOrder lattice.Order, all, selected []lattice.ViewID, sizer estimate.Sizer) *lattice.Tree {
	selSet := map[lattice.ViewID]bool{}
	for _, v := range selected {
		if !v.SubsetOf(root) {
			panic(fmt.Sprintf("partialcube: selected view %v not a subset of root %v", v, root))
		}
		selSet[v] = true
	}
	var tree *lattice.Tree
	switch kind {
	case Pruned:
		tree = planPruned(d, root, rootOrder, all, selSet, sizer)
	case Greedy:
		tree = planGreedy(d, root, rootOrder, selected, selSet, sizer)
	default:
		panic(fmt.Sprintf("partialcube: unknown planner %d", int(kind)))
	}
	// Mark wanted-ness.
	tree.Walk(func(n *lattice.Node) { n.Wanted = selSet[n.View] })
	return tree
}

// planPruned plans the full tree and keeps exactly the nodes with a
// selected view in their subtree (selected nodes' ancestors are
// automatically retained, so the result stays a tree).
func planPruned(d int, root lattice.ViewID, rootOrder lattice.Order, all []lattice.ViewID, selSet map[lattice.ViewID]bool, sizer estimate.Sizer) *lattice.Tree {
	full := pipesort.Plan(d, root, rootOrder, all, sizer)
	keep := map[lattice.ViewID]bool{}
	var mark func(n *lattice.Node) bool
	mark = func(n *lattice.Node) bool {
		need := selSet[n.View]
		for _, c := range n.Children {
			if mark(c) {
				need = true
			}
		}
		keep[n.View] = need
		return need
	}
	mark(full.Root)

	pruned := lattice.NewTree(d, root, full.Root.Order)
	pruned.Root.EstRows = full.Root.EstRows
	var copyKept func(n *lattice.Node)
	copyKept = func(n *lattice.Node) {
		for _, c := range n.Children {
			if keep[c.View] {
				nc := pruned.AddChild(n.View, c.View, c.Order, c.Edge)
				nc.EstRows = c.EstRows
				copyKept(c)
			}
		}
	}
	copyKept(full.Root)
	return pruned
}

// planGreedy attaches selected views directly, largest level first.
func planGreedy(d int, root lattice.ViewID, rootOrder lattice.Order, selected []lattice.ViewID, selSet map[lattice.ViewID]bool, sizer estimate.Sizer) *lattice.Tree {
	if rootOrder == nil {
		rootOrder = lattice.Canonical(root)
	}
	tree := lattice.NewTree(d, root, rootOrder)
	tree.Root.EstRows = sizer.EstimateView(root)

	todo := append([]lattice.ViewID(nil), selected...)
	sort.Slice(todo, func(i, j int) bool {
		if todo[i].Count() != todo[j].Count() {
			return todo[i].Count() > todo[j].Count()
		}
		return todo[i] < todo[j]
	})
	for _, v := range todo {
		if tree.Node(v) != nil {
			continue
		}
		var bestParent *lattice.Node
		bestKind := lattice.EdgeSort
		bestCost := 0.0
		tree.Walk(func(n *lattice.Node) {
			if !v.SubsetOf(n.View) || v == n.View {
				return
			}
			// A scan edge is feasible when v is exactly the prefix set
			// of the parent's order and the scan slot is free.
			kind := lattice.EdgeSort
			cost := costmodel.SortOps(int(n.EstRows))
			if lattice.PrefixView(v, n.Order) && !hasScanChild(n) {
				kind = lattice.EdgeScan
				cost = costmodel.ScanOps(int(n.EstRows))
			}
			if bestParent == nil || cost < bestCost {
				bestParent, bestKind, bestCost = n, kind, cost
			}
		})
		var order lattice.Order
		if bestKind == lattice.EdgeScan {
			order = bestParent.Order.Prefix(v.Count())
		} else {
			order = lattice.Canonical(v)
		}
		n := tree.AddChild(bestParent.View, v, order, bestKind)
		n.EstRows = sizer.EstimateView(v)
	}
	return tree
}

func hasScanChild(n *lattice.Node) bool {
	for _, c := range n.Children {
		if c.Edge == lattice.EdgeScan {
			return true
		}
	}
	return false
}

// SelectPercent deterministically selects approximately pct percent of
// the views of a d-dimensional lattice, preferring low-dimensional
// views (randomized within each level, seeded for reproducibility).
// This models the paper's §3 motivation — users materialize the views
// OLAP queries actually touch, typically those "with at most 5
// dimensions" — and is the workload generator behind Figure 6's
// 25/50/75/100% experiments. Selections are nested: a larger
// percentage is a superset of a smaller one under the same seed.
func SelectPercent(d int, pct int, seed int64) []lattice.ViewID {
	if pct < 0 || pct > 100 {
		panic(fmt.Sprintf("partialcube: percentage %d out of range", pct))
	}
	all := lattice.AllViews(d)
	if pct == 100 {
		return all
	}
	// Order by level (coarse views first), breaking ties with a seeded
	// hash, then take a prefix.
	type hv struct {
		v lattice.ViewID
		h uint64
	}
	hs := make([]hv, len(all))
	for i, v := range all {
		x := uint64(seed)<<32 ^ uint64(v)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		hs[i] = hv{v, x}
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].v.Count() != hs[j].v.Count() {
			return hs[i].v.Count() < hs[j].v.Count()
		}
		return hs[i].h < hs[j].h
	})
	k := len(all) * pct / 100
	if k < 1 {
		k = 1
	}
	out := make([]lattice.ViewID, 0, k)
	for _, e := range hs[:k] {
		out = append(out, e.v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
