package partialcube

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/simdisk"
)

// The advisor materializes and retires views one at a time, so the
// selections it hands the planners are arbitrary lattice subsets —
// non-contiguous (holes between a view and its ancestors), singletons,
// or everything. These tests pin Plan's behavior on exactly those
// shapes for both planners.

func checkPlan(t *testing.T, kind Kind, d int, sel []lattice.ViewID, sizer estimate.Sizer) *lattice.Tree {
	t.Helper()
	root := lattice.Root(0, d)
	tree := Plan(kind, d, root, lattice.Canonical(root), lattice.Partition(0, d), sel, sizer)
	if err := tree.Validate(); err != nil {
		t.Fatalf("%s: %v\n%s", kind, err, tree)
	}
	for _, v := range sel {
		n := tree.Node(v)
		if n == nil || !n.Wanted {
			t.Fatalf("%s: selected %v missing or unwanted\n%s", kind, v, tree)
		}
	}
	tree.Walk(func(n *lattice.Node) {
		if len(n.Children) == 0 && !n.Wanted {
			t.Fatalf("%s: unselected leaf %v\n%s", kind, n.View, tree)
		}
	})
	return tree
}

func TestPlanNonContiguousSelection(t *testing.T) {
	// Holes everywhere (all in the D0-partition, whose views lead with
	// A): a 3-dim view, a 2-dim view under it, a 2-dim view on a
	// disjoint branch, and a singleton — no chain covers them, and the
	// unselected root plus (for pruned) intermediates must be filled in.
	sel := []lattice.ViewID{
		mustParse("ABD"),
		mustParse("AD"),
		mustParse("AC"),
		mustParse("A"),
	}
	sizer := sizer4()
	pruned := checkPlan(t, Pruned, 4, sel, sizer)
	greedy := checkPlan(t, Greedy, 4, sel, sizer)
	// Greedy materializes only root + selected; pruned may keep
	// intermediates but never fewer views than greedy's minimum.
	if greedy.Len() != len(sel)+1 {
		t.Fatalf("greedy tree has %d views, want %d\n%s", greedy.Len(), len(sel)+1, greedy)
	}
	if pruned.Len() < greedy.Len() {
		t.Fatalf("pruned tree (%d views) smaller than greedy minimum (%d)", pruned.Len(), greedy.Len())
	}
}

func TestPlanSingletonSelections(t *testing.T) {
	// Every view of the partition, selected alone, must plan under both
	// strategies — this is the advisor's one-view-materialized-per-step
	// regime.
	d := 4
	sizer := sizer4()
	for _, v := range lattice.Partition(0, d) {
		sel := []lattice.ViewID{v}
		for _, kind := range []Kind{Pruned, Greedy} {
			tree := checkPlan(t, kind, d, sel, sizer)
			if kind == Greedy {
				want := 2
				if v == lattice.Root(0, d) {
					want = 1
				}
				if tree.Len() != want {
					t.Fatalf("greedy singleton %v: %d views, want %d\n%s", v, tree.Len(), want, tree)
				}
			}
		}
	}
}

func TestPlanFullSetDegenerate(t *testing.T) {
	// Selecting the entire partition must work for both planners and
	// mark every node wanted (the pruned case collapses to the full
	// Pipesort tree; greedy must still cover everything).
	d := 4
	all := lattice.Partition(0, d)
	for _, kind := range []Kind{Pruned, Greedy} {
		tree := checkPlan(t, kind, d, all, sizer4())
		if tree.Len() != len(all) {
			t.Fatalf("%s: full selection plans %d views, want %d", kind, tree.Len(), len(all))
		}
		tree.Walk(func(n *lattice.Node) {
			if !n.Wanted {
				t.Fatalf("%s: view %v unwanted under full selection", kind, n.View)
			}
		})
	}
}

// TestPlanPrunedGreedyAgreeOnContents executes both planners' trees on
// the same data and asserts every selected view comes out identical:
// strategy affects cost, never answers.
func TestPlanPrunedGreedyAgreeOnContents(t *testing.T) {
	d := 4
	cards := []int{8, 6, 4, 3}
	raw := record.New(d, 0)
	row := make([]uint32, d)
	for i := 0; i < 2000; i++ {
		x := uint64(i)*0x9e3779b97f4a7c15 + 0x1234
		for j := range row {
			x ^= x >> 29
			x *= 0xbf58476d1ce4e5b9
			row[j] = uint32(x>>33) % uint32(cards[j])
		}
		raw.Append(row, int64(i%5+1))
	}
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	sel := []lattice.ViewID{mustParse("ABD"), mustParse("AD"), mustParse("AC"), mustParse("A")}

	results := map[Kind]map[lattice.ViewID]*record.Table{}
	for _, kind := range []Kind{Pruned, Greedy} {
		tree := Plan(kind, d, lattice.Root(0, d), lattice.Canonical(lattice.Root(0, d)),
			lattice.Partition(0, d), sel, sizer)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		disk := simdisk.New(costmodel.NewClock(costmodel.Default()))
		proj := raw.Project([]int(tree.Root.Order))
		disk.Put("view."+tree.Root.View.String(), record.SortAggregate(proj))
		pipesort.Execute(disk, tree, func(v lattice.ViewID) string { return "view." + v.String() })
		out := map[lattice.ViewID]*record.Table{}
		for _, v := range sel {
			// Project onto canonical order so the two planners' possibly
			// different attribute orders compare as sets of group rows.
			tb := disk.MustGet("view." + v.String())
			n := tree.Node(v)
			canon := lattice.Canonical(v)
			colOf := map[int]int{}
			for c, dim := range n.Order {
				colOf[dim] = c
			}
			proj := make([]int, len(canon))
			for j, dim := range canon {
				proj[j] = colOf[dim]
			}
			out[v] = record.SortAggregate(tb.Project(proj))
		}
		results[kind] = out
	}
	for _, v := range sel {
		if !record.Equal(results[Pruned][v], results[Greedy][v]) {
			t.Fatalf("view %v: pruned and greedy disagree (%d rows vs %d)",
				v, results[Pruned][v].Len(), results[Greedy][v].Len())
		}
	}
}
