// Package lattice models the data-cube lattice of the paper (Figure
// 1a): the 2^d views (group-bys) of a d-dimensional raw data set,
// together with the Di-partition decomposition of Figure 3 and the
// schedule trees (Figure 1b,c) that drive top-down cube construction.
//
// Dimensions are indexed 0..d-1 in decreasing cardinality order
// (|D0| >= |D1| >= ... >= |Dd-1|), as the paper assumes w.l.o.g. View
// identifiers list their dimensions in that order, so "the view ACD"
// for d=4 is the bitmask {0,2,3}. The Di-partition Si is the set of
// views whose leading (highest-cardinality) dimension is Di, and the
// Di-root is the view on all of Di..Dd-1.
package lattice

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxDims bounds the dimensionality: a full cube has 2^d views, so
// anything beyond this is impractical to materialize anyway.
const MaxDims = 24

// ViewID identifies a view (group-by) as a bitmask over dimensions;
// bit i set means dimension Di participates. The zero value is the
// "all" view (total aggregation over no group-by attributes).
type ViewID uint32

// Empty is the "all" view.
const Empty ViewID = 0

// Full returns the view over all d dimensions (the raw data set's
// schema).
func Full(d int) ViewID {
	checkDims(d)
	return ViewID(1<<uint(d)) - 1
}

func checkDims(d int) {
	if d < 1 || d > MaxDims {
		panic(fmt.Sprintf("lattice: dimensionality %d out of range 1..%d", d, MaxDims))
	}
}

// Has reports whether dimension i participates in the view.
func (v ViewID) Has(i int) bool { return v&(1<<uint(i)) != 0 }

// Add returns the view with dimension i added.
func (v ViewID) Add(i int) ViewID { return v | 1<<uint(i) }

// Remove returns the view with dimension i removed.
func (v ViewID) Remove(i int) ViewID { return v &^ (1 << uint(i)) }

// Count returns the number of participating dimensions (the view's
// level in the lattice).
func (v ViewID) Count() int { return bits.OnesCount32(uint32(v)) }

// SubsetOf reports whether every dimension of v is in u, i.e. v is
// computable from u by aggregation.
func (v ViewID) SubsetOf(u ViewID) bool { return v&^u == 0 }

// Dims returns the participating dimension indices in ascending order
// (which is decreasing cardinality order, the canonical identifier
// order).
func (v ViewID) Dims() []int {
	out := make([]int, 0, v.Count())
	for w := uint32(v); w != 0; w &= w - 1 {
		out = append(out, bits.TrailingZeros32(w))
	}
	return out
}

// Leading returns the view's leading dimension (its lowest set index,
// i.e. the highest-cardinality participating dimension), or -1 for the
// empty view. The leading dimension determines which Di-partition owns
// the view.
func (v ViewID) Leading() int {
	if v == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(v))
}

// String renders the view with letters A..Z per dimension ("ACD"), or
// "all" for the empty view.
func (v ViewID) String() string {
	if v == 0 {
		return "all"
	}
	var sb strings.Builder
	for _, i := range v.Dims() {
		sb.WriteByte(byte('A' + i))
	}
	return sb.String()
}

// ParseView parses the String form back into a ViewID ("all" or letter
// sequences such as "ACD").
func ParseView(s string) (ViewID, error) {
	if s == "all" {
		return Empty, nil
	}
	var v ViewID
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 'A' || c > 'A'+MaxDims-1 {
			return 0, fmt.Errorf("lattice: bad view %q: character %q", s, c)
		}
		v = v.Add(int(c - 'A'))
	}
	return v, nil
}

// AllViews returns all 2^d views of a d-dimensional cube, in ascending
// ViewID order.
func AllViews(d int) []ViewID {
	checkDims(d)
	out := make([]ViewID, 0, 1<<uint(d))
	for v := ViewID(0); v < 1<<uint(d); v++ {
		out = append(out, v)
	}
	return out
}

// Root returns the Di-root: the view on all dimensions Di..Dd-1, the
// coarsest view from which every view of the Di-partition is
// computable.
func Root(i, d int) ViewID {
	checkDims(d)
	if i < 0 || i >= d {
		panic(fmt.Sprintf("lattice: partition index %d out of range 0..%d", i, d-1))
	}
	return Full(d) &^ (ViewID(1<<uint(i)) - 1)
}

// Partition returns Si, the views of the Di-partition: all views whose
// leading dimension is Di. The last partition (i == d-1) additionally
// owns the empty ("all") view, as in the paper's Figure 3. Views are
// returned in ascending ViewID order; the Di-root is always included.
func Partition(i, d int) []ViewID {
	checkDims(d)
	if i < 0 || i >= d {
		panic(fmt.Sprintf("lattice: partition index %d out of range 0..%d", i, d-1))
	}
	var out []ViewID
	if i == d-1 {
		out = append(out, Empty)
	}
	// Views containing Di and nothing below it: Di plus any subset of
	// Di+1..Dd-1.
	rest := Root(i, d).Remove(i).Dims()
	for mask := 0; mask < 1<<uint(len(rest)); mask++ {
		v := ViewID(0).Add(i)
		for b, dim := range rest {
			if mask&(1<<uint(b)) != 0 {
				v = v.Add(dim)
			}
		}
		out = append(out, v)
	}
	sortViews(out)
	return out
}

// PartitionOf returns the index of the partition owning view v in a
// d-dimensional cube.
func PartitionOf(v ViewID, d int) int {
	if v == 0 {
		return d - 1
	}
	return v.Leading()
}

// PartitionSubset returns the members of sel that belong to the
// Di-partition (the redefinition of Si for partial cubes, §3).
func PartitionSubset(i, d int, sel []ViewID) []ViewID {
	var out []ViewID
	for _, v := range sel {
		if PartitionOf(v, d) == i {
			out = append(out, v)
		}
	}
	sortViews(out)
	return out
}

func sortViews(vs []ViewID) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// Level groups views by dimension count: Level(views, k) returns the
// members with exactly k dimensions.
func Level(views []ViewID, k int) []ViewID {
	var out []ViewID
	for _, v := range views {
		if v.Count() == k {
			out = append(out, v)
		}
	}
	return out
}
