package lattice

import (
	"testing"
	"testing/quick"
)

func TestViewIDBasics(t *testing.T) {
	v := Empty.Add(0).Add(2).Add(3)
	if v.String() != "ACD" {
		t.Fatalf("String = %q, want ACD", v.String())
	}
	if !v.Has(2) || v.Has(1) {
		t.Fatal("Has wrong")
	}
	if v.Count() != 3 {
		t.Fatalf("Count = %d", v.Count())
	}
	if got := v.Remove(2).String(); got != "AD" {
		t.Fatalf("Remove: %q", got)
	}
	if v.Leading() != 0 {
		t.Fatalf("Leading = %d", v.Leading())
	}
	if Empty.Leading() != -1 {
		t.Fatal("Empty.Leading should be -1")
	}
	if Empty.String() != "all" {
		t.Fatalf("Empty.String = %q", Empty.String())
	}
	dims := v.Dims()
	if len(dims) != 3 || dims[0] != 0 || dims[1] != 2 || dims[2] != 3 {
		t.Fatalf("Dims = %v", dims)
	}
}

func TestParseViewRoundTrip(t *testing.T) {
	for _, v := range AllViews(5) {
		got, err := ParseView(v.String())
		if err != nil || got != v {
			t.Fatalf("round trip %v: got %v err %v", v, got, err)
		}
	}
	if _, err := ParseView("A1"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSubsetOf(t *testing.T) {
	abcd := Full(4)
	ac, _ := ParseView("AC")
	bd, _ := ParseView("BD")
	if !ac.SubsetOf(abcd) || !bd.SubsetOf(abcd) {
		t.Fatal("subset of full failed")
	}
	if ac.SubsetOf(bd) || bd.SubsetOf(ac) {
		t.Fatal("disjoint views reported subsets")
	}
	if !Empty.SubsetOf(ac) {
		t.Fatal("empty must be subset of everything")
	}
}

func TestAllViewsCount(t *testing.T) {
	if got := len(AllViews(4)); got != 16 {
		t.Fatalf("AllViews(4) = %d views", got)
	}
}

func TestRoot(t *testing.T) {
	// Figure 3 with d=4: A-root=ABCD, B-root=BCD, C-root=CD, D-root=D.
	want := []string{"ABCD", "BCD", "CD", "D"}
	for i, w := range want {
		if got := Root(i, 4).String(); got != w {
			t.Fatalf("Root(%d,4) = %s, want %s", i, got, w)
		}
	}
}

func TestPartitionMatchesFigure3(t *testing.T) {
	// Figure 3, d=4: A-partition = {ABCD ABC ABD ACD AB AC AD A},
	// B-partition = {BCD BC BD B}, C-partition = {CD C},
	// D-partition = {D, all}.
	wants := [][]string{
		{"A", "AB", "AC", "ABC", "AD", "ABD", "ACD", "ABCD"},
		{"B", "BC", "BD", "BCD"},
		{"C", "CD"},
		{"all", "D"},
	}
	for i, want := range wants {
		got := Partition(i, 4)
		if len(got) != len(want) {
			t.Fatalf("Partition(%d,4) = %v, want %v", i, got, want)
		}
		for j, w := range want {
			wv, _ := ParseView(w)
			if got[j] != wv {
				t.Fatalf("Partition(%d,4)[%d] = %v, want %v", i, j, got[j], wv)
			}
		}
	}
}

func TestPartitionsCoverLatticeExactlyOnce(t *testing.T) {
	f := func(dRaw uint8) bool {
		d := int(dRaw%8) + 1
		seen := map[ViewID]int{}
		for i := 0; i < d; i++ {
			for _, v := range Partition(i, d) {
				seen[v]++
				if PartitionOf(v, d) != i {
					return false
				}
				if !Root(i, d).SubsetOf(Full(d)) || !v.SubsetOf(Root(i, d)) {
					return false
				}
			}
		}
		if len(seen) != 1<<uint(d) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSubset(t *testing.T) {
	sel := []ViewID{mustParse("AC"), mustParse("BD"), mustParse("B"), Empty}
	got := PartitionSubset(1, 4, sel)
	if len(got) != 2 || got[0] != mustParse("B") || got[1] != mustParse("BD") {
		t.Fatalf("PartitionSubset = %v", got)
	}
	got = PartitionSubset(3, 4, sel)
	if len(got) != 1 || got[0] != Empty {
		t.Fatalf("empty view should be in the last partition: %v", got)
	}
}

func TestLevel(t *testing.T) {
	lvl2 := Level(AllViews(4), 2)
	if len(lvl2) != 6 {
		t.Fatalf("level 2 of d=4 has %d views, want 6", len(lvl2))
	}
}

func mustParse(s string) ViewID {
	v, err := ParseView(s)
	if err != nil {
		panic(err)
	}
	return v
}

func TestOrderBasics(t *testing.T) {
	v := mustParse("ACD")
	o := Canonical(v)
	if o.String() != "ACD" {
		t.Fatalf("Canonical = %v", o)
	}
	if o.View() != v {
		t.Fatal("View() round trip failed")
	}
	q := OrderOf(v, []int{2, 0, 3}) // CAD
	if q.String() != "CAD" {
		t.Fatalf("OrderOf = %v", q)
	}
	if !q.Prefix(2).Equal(Order{2, 0}) {
		t.Fatalf("Prefix = %v", q.Prefix(2))
	}
	if !(Order{2, 0}).IsPrefixOf(q) {
		t.Fatal("IsPrefixOf failed")
	}
	if (Order{0, 2}).IsPrefixOf(q) {
		t.Fatal("IsPrefixOf false positive")
	}
}

func TestOrderOfRejectsBadPermutations(t *testing.T) {
	v := mustParse("AB")
	for _, bad := range [][]int{{0}, {0, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OrderOf(%v) should panic", bad)
				}
			}()
			OrderOf(v, bad)
		}()
	}
}

func TestPrefixView(t *testing.T) {
	q := Order{0, 1, 2, 3} // ABCD
	if !PrefixView(mustParse("AB"), q) {
		t.Fatal("AB should be a prefix view of ABCD order")
	}
	if PrefixView(mustParse("AC"), q) {
		t.Fatal("AC must not be a prefix view of ABCD order")
	}
	if !PrefixView(Empty, q) {
		t.Fatal("the empty view is a prefix of anything")
	}
	// Order CAB: prefix views are C, CA(=AC), CAB(=ABC).
	q = Order{2, 0, 1}
	if !PrefixView(mustParse("AC"), q) || !PrefixView(mustParse("C"), q) {
		t.Fatal("prefix views of CAB wrong")
	}
	if PrefixView(mustParse("A"), q) {
		t.Fatal("A is not a prefix view of CAB")
	}
}

func TestOrderExtend(t *testing.T) {
	o := Order{2, 0} // CA
	ext := o.Extend(mustParse("ABCD"))
	if ext.String() != "CABD" {
		t.Fatalf("Extend = %v", ext)
	}
	// Extending with no new dims is a no-op copy.
	same := o.Extend(mustParse("AC"))
	if !same.Equal(o) {
		t.Fatalf("Extend no-op = %v", same)
	}
}

func TestProjectionFrom(t *testing.T) {
	parent := Order{2, 0, 1, 3} // CABD
	child := Order{1, 3}        // BD
	proj := child.ProjectionFrom(parent)
	if len(proj) != 2 || proj[0] != 2 || proj[1] != 3 {
		t.Fatalf("ProjectionFrom = %v", proj)
	}
}

func TestTreeBuildValidateAndChains(t *testing.T) {
	// Build the A-partition tree of Figure 3 by hand:
	// ABCD --scan--> ABC --scan--> AB --scan--> A
	//      --sort--> ACD --scan--> AC
	//      --sort--> ABD --scan--> AD
	d := 4
	tr := NewTree(d, mustParse("ABCD"), Order{0, 1, 2, 3})
	tr.AddChild(mustParse("ABCD"), mustParse("ABC"), Order{0, 1, 2}, EdgeScan)
	tr.AddChild(mustParse("ABC"), mustParse("AB"), Order{0, 1}, EdgeScan)
	tr.AddChild(mustParse("AB"), mustParse("A"), Order{0}, EdgeScan)
	tr.AddChild(mustParse("ABCD"), mustParse("ACD"), Order{0, 2, 3}, EdgeSort)
	tr.AddChild(mustParse("ACD"), mustParse("AC"), Order{0, 2}, EdgeScan)
	tr.AddChild(mustParse("ABCD"), mustParse("ABD"), Order{0, 3, 1}, EdgeSort) // materialized as ADB
	tr.AddChild(mustParse("ABD"), mustParse("AD"), Order{0, 3}, EdgeScan)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v\n%s", err, tr)
	}
	if tr.Len() != 8 {
		t.Fatalf("Len = %d", tr.Len())
	}
	chain := ScanChain(tr.Root)
	if len(chain) != 4 || chain[3].View != mustParse("A") {
		t.Fatalf("root scan chain wrong: %d nodes", len(chain))
	}
	chain = ScanChain(tr.Node(mustParse("ACD")))
	if len(chain) != 2 || chain[1].View != mustParse("AC") {
		t.Fatal("ACD scan chain wrong")
	}
	if tr.EncodedBytes() <= 0 {
		t.Fatal("EncodedBytes must be positive")
	}
	views := tr.Views()
	if len(views) != 8 || views[0] != mustParse("A") {
		t.Fatalf("Views = %v", views)
	}
}

func TestTreeValidateCatchesViolations(t *testing.T) {
	// Two scan children.
	tr := NewTree(2, mustParse("AB"), Order{0, 1})
	tr.AddChild(mustParse("AB"), mustParse("A"), Order{0}, EdgeScan)
	n := tr.AddChild(mustParse("AB"), mustParse("B"), Order{1}, EdgeSort)
	n.Edge = EdgeScan // corrupt: B is not a prefix of AB order
	if err := tr.Validate(); err == nil {
		t.Fatal("expected validation failure")
	}
}

func TestTreeAddChildPanics(t *testing.T) {
	tr := NewTree(2, mustParse("AB"), Order{0, 1})
	for _, f := range []func(){
		func() { tr.AddChild(mustParse("A"), mustParse("B"), Order{1}, EdgeSort) }, // parent missing
		func() { tr.AddChild(mustParse("AB"), mustParse("AB"), Order{0, 1}, EdgeSort) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTreeWalkPreorder(t *testing.T) {
	tr := NewTree(3, mustParse("ABC"), Order{0, 1, 2})
	tr.AddChild(mustParse("ABC"), mustParse("AB"), Order{0, 1}, EdgeScan)
	tr.AddChild(mustParse("AB"), mustParse("A"), Order{0}, EdgeScan)
	var seq []ViewID
	tr.Walk(func(n *Node) { seq = append(seq, n.View) })
	if len(seq) != 3 || seq[0] != mustParse("ABC") || seq[2] != mustParse("A") {
		t.Fatalf("Walk order = %v", seq)
	}
}

func TestEdgeKindStrings(t *testing.T) {
	if EdgeRoot.String() != "root" || EdgeScan.String() != "scan" || EdgeSort.String() != "sort" {
		t.Fatal("edge kind strings wrong")
	}
	if EdgeKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestTreeStringRendersIntermediates(t *testing.T) {
	tr := NewTree(2, mustParse("AB"), Order{0, 1})
	n := tr.AddChild(mustParse("AB"), mustParse("A"), Order{0}, EdgeScan)
	n.Wanted = false
	s := tr.String()
	if s == "" || !contains(s, "intermediate") {
		t.Fatalf("String missing intermediate marker:\n%s", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCheckDimsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Full(0) },
		func() { Full(MaxDims + 1) },
		func() { AllViews(0) },
		func() { Root(-1, 4) },
		func() { Root(4, 4) },
		func() { Partition(5, 4) },
		func() { NewTree(0, Empty, Order{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOrderStringAndCanonicalEmpty(t *testing.T) {
	if (Order{}).String() != "all" {
		t.Fatalf("empty order string = %q", (Order{}).String())
	}
	if (Order{2, 0, 1}).String() != "CAB" {
		t.Fatal("order string wrong")
	}
	if len(Canonical(Empty)) != 0 {
		t.Fatal("canonical of empty should be empty")
	}
}

func TestProjectionFromPanicsOnMissingAttr(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(Order{3}).ProjectionFrom(Order{0, 1})
}

func TestAddChildBadKindPanics(t *testing.T) {
	tr := NewTree(2, mustParse("AB"), Order{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.AddChild(mustParse("AB"), mustParse("A"), Order{0}, EdgeRoot)
}

func TestPartitionOfAllViews(t *testing.T) {
	for _, v := range AllViews(5) {
		i := PartitionOf(v, 5)
		if i < 0 || i >= 5 {
			t.Fatalf("PartitionOf(%v) = %d", v, i)
		}
	}
}
