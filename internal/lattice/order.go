package lattice

import "fmt"

// Order is the attribute order of a materialized view: the sequence of
// dimension indices its table columns follow. A view computed by a
// linear scan of its parent must have an Order that is a prefix of the
// parent's Order (bold edges in Figure 1b); otherwise the parent must
// be re-sorted first.
type Order []int

// Canonical returns the canonical order of a view: dimensions in
// decreasing cardinality (ascending index), the order used by view
// identifiers.
func Canonical(v ViewID) Order { return Order(v.Dims()) }

// OrderOf builds an Order from explicit dimension indices, validating
// that they form a permutation of v's dimensions.
func OrderOf(v ViewID, dims []int) Order {
	if len(dims) != v.Count() {
		panic(fmt.Sprintf("lattice: order %v has %d dims, view %v has %d", dims, len(dims), v, v.Count()))
	}
	var seen ViewID
	for _, i := range dims {
		if !v.Has(i) || seen.Has(i) {
			panic(fmt.Sprintf("lattice: order %v is not a permutation of view %v", dims, v))
		}
		seen = seen.Add(i)
	}
	return Order(append([]int(nil), dims...))
}

// View returns the view this order spans.
func (o Order) View() ViewID {
	var v ViewID
	for _, i := range o {
		v = v.Add(i)
	}
	return v
}

// Prefix returns a copy of the first k attributes as an Order.
func (o Order) Prefix(k int) Order { return Order(append([]int(nil), o[:k]...)) }

// IsPrefixOf reports whether o is a prefix of q.
func (o Order) IsPrefixOf(q Order) bool {
	if len(o) > len(q) {
		return false
	}
	for i, v := range o {
		if q[i] != v {
			return false
		}
	}
	return true
}

// PrefixView reports whether view v equals the set of the first
// v.Count() attributes of q — i.e. a table ordered by q, aggregated to
// v, stays sorted (the paper's prefix-view test, §2.4).
func PrefixView(v ViewID, q Order) bool {
	k := v.Count()
	if k > len(q) {
		return false
	}
	var set ViewID
	for _, i := range q[:k] {
		set = set.Add(i)
	}
	return set == v
}

// Extend returns o followed by the dimensions of v not already in o,
// in canonical order. It derives a parent's order from its scan
// child's order in Pipesort.
func (o Order) Extend(v ViewID) Order {
	out := Order(append([]int(nil), o...))
	have := o.View()
	for _, i := range v.Dims() {
		if !have.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether two orders are identical.
func (o Order) Equal(q Order) bool {
	if len(o) != len(q) {
		return false
	}
	for i := range o {
		if o[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the order as dimension letters, e.g. "CAB".
func (o Order) String() string {
	if len(o) == 0 {
		return "all"
	}
	b := make([]byte, len(o))
	for i, d := range o {
		b[i] = byte('A' + d)
	}
	return string(b)
}

// ProjectionFrom returns, for each attribute of o, its column index in
// parent order q. It panics if an attribute of o is missing from q.
// The result drives record.Table.Project when deriving a child view's
// layout from its parent's.
func (o Order) ProjectionFrom(q Order) []int {
	pos := map[int]int{}
	for c, dim := range q {
		pos[dim] = c
	}
	out := make([]int, len(o))
	for i, dim := range o {
		c, ok := pos[dim]
		if !ok {
			panic(fmt.Sprintf("lattice: attribute %c of %v not in parent order %v", 'A'+dim, o, q))
		}
		out[i] = c
	}
	return out
}
