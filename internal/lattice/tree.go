package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// EdgeKind labels how a schedule-tree node's view is created from its
// parent.
type EdgeKind int

const (
	// EdgeRoot marks the tree root, created from raw (or globally
	// sorted) data rather than from another view.
	EdgeRoot EdgeKind = iota
	// EdgeScan means the view is aggregated during a linear scan of
	// its parent (the parent's order has the child as a prefix); bold
	// edges in Figure 1b.
	EdgeScan
	// EdgeSort means the parent must be re-sorted into the child's
	// order before the aggregating scan.
	EdgeSort
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeRoot:
		return "root"
	case EdgeScan:
		return "scan"
	case EdgeSort:
		return "sort"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Node is one view in a schedule tree.
type Node struct {
	View     ViewID
	Order    Order // attribute order in which the view is materialized
	Edge     EdgeKind
	Parent   *Node
	Children []*Node
	// EstRows is the planner's estimated row count, retained for
	// inspection and cost ablations.
	EstRows float64
	// Wanted marks views the user selected (always true for full
	// cubes). Unwanted nodes are intermediate views a partial-cube
	// plan materializes only to cheapen descendants (Figure 1c).
	Wanted bool
}

// Tree is a schedule tree (Figure 1b,c): a subgraph of the lattice
// rooted at the partition root, giving the order and method (scan or
// sort) by which each view is created.
type Tree struct {
	D     int // cube dimensionality (for rendering and validation)
	Root  *Node
	nodes map[ViewID]*Node
}

// NewTree creates a schedule tree with the given root view and order.
func NewTree(d int, rootView ViewID, rootOrder Order) *Tree {
	checkDims(d)
	root := &Node{View: rootView, Order: OrderOf(rootView, rootOrder), Edge: EdgeRoot, Wanted: true}
	return &Tree{D: d, Root: root, nodes: map[ViewID]*Node{rootView: root}}
}

// AddChild inserts child under parent with the given materialization
// order and edge kind, returning the new node. Each view may appear at
// most once in a tree.
func (t *Tree) AddChild(parent ViewID, child ViewID, order Order, kind EdgeKind) *Node {
	p, ok := t.nodes[parent]
	if !ok {
		panic(fmt.Sprintf("lattice: parent %v not in tree", parent))
	}
	if _, dup := t.nodes[child]; dup {
		panic(fmt.Sprintf("lattice: view %v already in tree", child))
	}
	if kind != EdgeScan && kind != EdgeSort {
		panic(fmt.Sprintf("lattice: child edge must be scan or sort, got %v", kind))
	}
	n := &Node{View: child, Order: OrderOf(child, order), Edge: kind, Parent: p, Wanted: true}
	p.Children = append(p.Children, n)
	t.nodes[child] = n
	return n
}

// Node returns the node for view v, or nil.
func (t *Tree) Node(v ViewID) *Node { return t.nodes[v] }

// Len returns the number of views in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// Views returns the views in the tree in ascending ViewID order.
func (t *Tree) Views() []ViewID {
	out := make([]ViewID, 0, len(t.nodes))
	for v := range t.nodes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Walk visits nodes in depth-first preorder (parents before children,
// children in insertion order).
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// ScanChain returns the maximal chain of scan edges starting at n:
// n itself followed by its scan child, that child's scan child, and so
// on. These views are all produced in the single linear scan that
// materializes n (a Pipesort pipeline).
func ScanChain(n *Node) []*Node {
	chain := []*Node{n}
	for {
		var next *Node
		for _, c := range chain[len(chain)-1].Children {
			if c.Edge == EdgeScan {
				next = c
				break
			}
		}
		if next == nil {
			return chain
		}
		chain = append(chain, next)
	}
}

// Validate checks the structural invariants of a schedule tree:
// every child's view is a strict subset of its parent's; scan children
// have orders that are prefixes of their parent's order; each node has
// at most one scan child; and all nodes are reachable from the root.
func (t *Tree) Validate() error {
	reached := 0
	var err error
	t.Walk(func(n *Node) {
		if err != nil {
			return
		}
		reached++
		if t.nodes[n.View] != n {
			err = fmt.Errorf("lattice: node %v not indexed", n.View)
			return
		}
		scans := 0
		for _, c := range n.Children {
			if !c.View.SubsetOf(n.View) || c.View == n.View {
				err = fmt.Errorf("lattice: child %v is not a strict subset of parent %v", c.View, n.View)
				return
			}
			if c.Parent != n {
				err = fmt.Errorf("lattice: child %v has wrong parent pointer", c.View)
				return
			}
			if c.Edge == EdgeScan {
				scans++
				if !c.Order.IsPrefixOf(n.Order) {
					err = fmt.Errorf("lattice: scan child %v order %v is not a prefix of parent order %v",
						c.View, c.Order, n.Order)
					return
				}
			}
		}
		if scans > 1 {
			err = fmt.Errorf("lattice: node %v has %d scan children", n.View, scans)
		}
	})
	if err != nil {
		return err
	}
	if reached != len(t.nodes) {
		return fmt.Errorf("lattice: %d nodes indexed but %d reachable", len(t.nodes), reached)
	}
	return nil
}

// EncodedBytes models the wire size of broadcasting the tree (Step 2b
// of Procedure 1): per node, the view id, parent id, edge kind, and
// attribute order.
func (t *Tree) EncodedBytes() int {
	total := 0
	t.Walk(func(n *Node) { total += 4 + 4 + 1 + len(n.Order) })
	return total
}

// String renders the tree with indentation, e.g. for test failures.
func (t *Tree) String() string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		mark := ""
		if !n.Wanted {
			mark = " (intermediate)"
		}
		fmt.Fprintf(&sb, "%s[%s] order=%s%s\n", n.View, n.Edge, n.Order, mark)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
