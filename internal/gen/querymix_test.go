package gen

import (
	"math"
	"testing"
)

func TestQueryMixDeterministic(t *testing.T) {
	a, b := NewQueryMix(64, 1.2, 9), NewQueryMix(64, 1.2, 9)
	for i := 0; i < 2000; i++ {
		if a.Key(i) != b.Key(i) {
			t.Fatalf("query %d differs between identical mixes", i)
		}
	}
	c := NewQueryMix(64, 1.2, 10)
	same := 0
	for i := 0; i < 2000; i++ {
		if a.Key(i) == c.Key(i) {
			same++
		}
	}
	if same == 2000 {
		t.Fatal("different seeds produced an identical query stream")
	}
}

func TestQueryMixKeysWithinRange(t *testing.T) {
	m := NewQueryMix(7, 2, 3)
	for i := 0; i < 5000; i++ {
		if k := m.Key(i); k < 0 || k >= 7 {
			t.Fatalf("query %d key %d out of [0,7)", i, k)
		}
	}
	if m.Keys() != 7 {
		t.Fatalf("Keys() = %d, want 7", m.Keys())
	}
}

func TestQueryMixSkewConcentratesOnHotKeys(t *testing.T) {
	// A flash crowd: with alpha = 1.5 over 100 keys, the hottest key
	// should take a large share; uniform should not.
	mass := func(alpha float64) float64 {
		m := NewQueryMix(100, alpha, 4)
		zero := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if m.Key(i) == 0 {
				zero++
			}
		}
		return float64(zero) / n
	}
	if u := mass(0); u > 0.05 {
		t.Fatalf("uniform mass on key 0 = %v", u)
	}
	if s := mass(1.5); s < 0.3 {
		t.Fatalf("alpha=1.5 mass on key 0 = %v, want > 0.3", s)
	}
}

func TestQueryMixHotMassMatchesEmpirical(t *testing.T) {
	m := NewQueryMix(50, 1.0, 5)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if m.Key(i) < 5 {
			hits++
		}
	}
	got, want := float64(hits)/n, m.HotMass(5)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical top-5 mass %v vs HotMass %v", got, want)
	}
	if m.HotMass(0) != 0 || m.HotMass(50) != 1 || m.HotMass(99) != 1 {
		t.Fatal("HotMass edge cases wrong")
	}
}

func TestQueryMixValidationPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewQueryMix(0, 1, 1) },
		func() { NewQueryMix(8, -0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
