// Package gen generates the synthetic data sets of the paper's
// evaluation (§4): n records over d dimensions with per-dimension
// cardinality |Di| and per-dimension Zipf skew αi (Zipf [26]; α = 0 is
// uniform, α = 3 is highly skewed).
//
// Rows are produced by a counter-based generator: row i's values are a
// pure function of (seed, i), so the data set is identical no matter
// how many processors it is split across — exactly what speedup
// experiments require — and each processor can generate its slice
// independently without communication.
package gen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/record"
)

// Spec describes a synthetic data set.
type Spec struct {
	N     int       // number of rows
	D     int       // number of dimensions
	Cards []int     // Cards[i] = |Di|; must be non-increasing (paper's w.l.o.g.)
	Skews []float64 // Skews[i] = Zipf alpha for Di; nil means all zero
	Seed  int64
}

// PaperCards is the cardinality mix used throughout the paper's d=8
// experiments: 256, 128, 64, 32, 16, 8, 6, 6.
func PaperCards() []int { return []int{256, 128, 64, 32, 16, 8, 6, 6} }

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	if s.N < 0 {
		return fmt.Errorf("gen: negative row count %d", s.N)
	}
	if s.D < 1 {
		return fmt.Errorf("gen: need at least one dimension, got %d", s.D)
	}
	if len(s.Cards) != s.D {
		return fmt.Errorf("gen: %d cardinalities for %d dimensions", len(s.Cards), s.D)
	}
	for i, c := range s.Cards {
		if c < 1 {
			return fmt.Errorf("gen: dimension %d has cardinality %d", i, c)
		}
		if i > 0 && c > s.Cards[i-1] {
			return fmt.Errorf("gen: cardinalities must be non-increasing (|D%d|=%d > |D%d|=%d)", i, c, i-1, s.Cards[i-1])
		}
	}
	if s.Skews != nil {
		if len(s.Skews) != s.D {
			return fmt.Errorf("gen: %d skews for %d dimensions", len(s.Skews), s.D)
		}
		for i, a := range s.Skews {
			if a < 0 {
				return fmt.Errorf("gen: dimension %d has negative skew %v", i, a)
			}
		}
	}
	return nil
}

// Generator produces rows of a Spec.
type Generator struct {
	spec Spec
	cdfs [][]float64 // per dimension, cumulative Zipf distribution
}

// New builds a generator, precomputing the per-dimension Zipf CDFs.
// It panics on an invalid spec (specs are code, not user input).
func New(spec Spec) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{spec: spec, cdfs: make([][]float64, spec.D)}
	for i := 0; i < spec.D; i++ {
		alpha := 0.0
		if spec.Skews != nil {
			alpha = spec.Skews[i]
		}
		g.cdfs[i] = zipfCDF(spec.Cards[i], alpha)
	}
	return g
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// zipfCDF returns the cumulative distribution over {0..card-1} with
// P(k) proportional to 1/(k+1)^alpha.
func zipfCDF(card int, alpha float64) []float64 {
	cdf := make([]float64, card)
	sum := 0.0
	for k := 0; k < card; k++ {
		sum += math.Pow(float64(k+1), -alpha)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[card-1] = 1 // guard against rounding
	return cdf
}

// splitmix64 is the counter-based PRNG core.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Row writes row i's dimension values into buf (length >= D).
func (g *Generator) Row(i int, buf []uint32) {
	for dim := 0; dim < g.spec.D; dim++ {
		h := splitmix64(uint64(g.spec.Seed)<<20 ^ uint64(i)*0x9e3779b97f4a7c15 ^ uint64(dim)<<48)
		u := float64(h>>11) / float64(1<<53)
		cdf := g.cdfs[dim]
		buf[dim] = uint32(sort.SearchFloat64s(cdf, u))
		if int(buf[dim]) >= len(cdf) {
			buf[dim] = uint32(len(cdf) - 1)
		}
	}
}

// Table materializes rows [lo, hi) with unit measures (so every view
// aggregates to counts).
func (g *Generator) Table(lo, hi int) *record.Table {
	if lo < 0 || hi > g.spec.N || lo > hi {
		panic(fmt.Sprintf("gen: range [%d,%d) out of bounds for n=%d", lo, hi, g.spec.N))
	}
	t := record.New(g.spec.D, hi-lo)
	buf := make([]uint32, g.spec.D)
	for i := lo; i < hi; i++ {
		g.Row(i, buf)
		t.Append(buf, 1)
	}
	return t
}

// All materializes the full data set.
func (g *Generator) All() *record.Table { return g.Table(0, g.spec.N) }

// Slice materializes processor rank's share of an even split across p
// processors (Figure 2b's input distribution). The union of all slices
// is exactly All(), independent of p.
func (g *Generator) Slice(rank, p int) *record.Table {
	if p < 1 || rank < 0 || rank >= p {
		panic(fmt.Sprintf("gen: bad slice rank %d of %d", rank, p))
	}
	lo := rank * g.spec.N / p
	hi := (rank + 1) * g.spec.N / p
	return g.Table(lo, hi)
}
