package gen

import (
	"fmt"

	"repro/internal/record"
)

// hotDomain separates the hot-key draws from the base row stream and
// from the query mix's counter space, so composing generators over
// the same seed never correlates them accidentally.
const hotDomain = uint64(0x48) << 56 // 'H'

// Correlation ties one dimension's value to another's: with
// probability Strength, row[Dim] is a deterministic function of
// row[Anchor] instead of an independent draw. This is the adversarial
// build-side structure (the row counterpart of the Zipf query mix):
// correlated dimensions collapse the effective key space, so group
// sizes — and with them per-processor partition weights — concentrate
// far beyond what independent Zipf marginals produce.
type Correlation struct {
	Dim      int     // the dependent dimension
	Anchor   int     // the dimension it follows
	Strength float64 // probability in [0,1] the tie applies per row
}

// HotSpec describes an adversarial hot-key data set: a base Spec plus
// a hot set in one dimension that soaks up a fixed fraction of all
// rows, and optional cross-dimension correlations.
type HotSpec struct {
	Base Spec
	// HotDim is the dimension carrying the hot keys.
	HotDim int
	// HotKeys is the number of hot values (drawn from the low end of
	// the dictionary) and HotMass the fraction of rows forced into
	// them — HotMass 0.8 over 4 keys out of 10k is the "one key swamps
	// a processor" regime the γ-shift alone cannot fix.
	HotKeys int
	HotMass float64
	// Correlations are applied after the hot-key override, in order.
	Correlations []Correlation
}

// Validate checks the spec.
func (s HotSpec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.HotDim < 0 || s.HotDim >= s.Base.D {
		return fmt.Errorf("gen: hot dimension %d out of range 0..%d", s.HotDim, s.Base.D-1)
	}
	if s.HotKeys < 1 || s.HotKeys > s.Base.Cards[s.HotDim] {
		return fmt.Errorf("gen: %d hot keys out of range 1..%d", s.HotKeys, s.Base.Cards[s.HotDim])
	}
	if s.HotMass < 0 || s.HotMass > 1 {
		return fmt.Errorf("gen: hot mass %v out of range [0,1]", s.HotMass)
	}
	for _, c := range s.Correlations {
		if c.Dim < 0 || c.Dim >= s.Base.D || c.Anchor < 0 || c.Anchor >= s.Base.D {
			return fmt.Errorf("gen: correlation %d<-%d out of range", c.Dim, c.Anchor)
		}
		if c.Dim == c.Anchor {
			return fmt.Errorf("gen: dimension %d correlated with itself", c.Dim)
		}
		if c.Strength < 0 || c.Strength > 1 {
			return fmt.Errorf("gen: correlation strength %v out of range [0,1]", c.Strength)
		}
	}
	return nil
}

// HotGenerator produces rows of a HotSpec. Like the base Generator it
// is counter-based: row i is a pure function of (spec, i), so slices
// generated on different processors compose to the same data set.
type HotGenerator struct {
	spec HotSpec
	base *Generator
}

// NewHot builds an adversarial hot-key generator. It panics on an
// invalid spec (specs are code, not user input).
func NewHot(spec HotSpec) *HotGenerator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &HotGenerator{spec: spec, base: New(spec.Base)}
}

// Spec returns the generator's spec.
func (g *HotGenerator) Spec() HotSpec { return g.spec }

// Row writes row i's dimension values into buf (length >= D).
func (g *HotGenerator) Row(i int, buf []uint32) {
	g.base.Row(i, buf)
	s := g.spec
	seed := uint64(s.Base.Seed) << 20
	// Hot-key override: a HotMass fraction of rows lands on one of
	// HotKeys values, themselves Zipf-ish (key k gets ~2x key k+1).
	h := splitmix64(hotDomain ^ seed ^ uint64(i)*0x9e3779b97f4a7c15)
	if float64(h>>11)/float64(1<<53) < s.HotMass {
		k := splitmix64(h)
		key := 0
		for key < s.HotKeys-1 && k&1 == 0 {
			key++
			k >>= 1
		}
		buf[s.HotDim] = uint32(key)
	}
	// Correlations: the dependent value is a pure function of the
	// anchor's value, so equal anchors always map to equal dependents
	// — the tie survives any row order or partitioning.
	for ci, c := range s.Correlations {
		u := splitmix64(hotDomain ^ seed ^ uint64(i)*0x632be59bd9b4e019 ^ uint64(ci)<<40)
		if float64(u>>11)/float64(1<<53) >= c.Strength {
			continue
		}
		f := splitmix64(hotDomain ^ uint64(c.Dim)<<32 ^ uint64(buf[c.Anchor]))
		buf[c.Dim] = uint32(f % uint64(s.Base.Cards[c.Dim]))
	}
}

// Table materializes rows [lo, hi) with unit measures.
func (g *HotGenerator) Table(lo, hi int) *record.Table {
	if lo < 0 || hi > g.spec.Base.N || lo > hi {
		panic(fmt.Sprintf("gen: range [%d,%d) out of bounds for n=%d", lo, hi, g.spec.Base.N))
	}
	t := record.New(g.spec.Base.D, hi-lo)
	buf := make([]uint32, g.spec.Base.D)
	for i := lo; i < hi; i++ {
		g.Row(i, buf)
		t.Append(buf, 1)
	}
	return t
}

// All materializes the full data set.
func (g *HotGenerator) All() *record.Table { return g.Table(0, g.spec.Base.N) }

// Slice materializes processor rank's share of an even split across p
// processors; the union of all slices is exactly All(), independent
// of p.
func (g *HotGenerator) Slice(rank, p int) *record.Table {
	if p < 1 || rank < 0 || rank >= p {
		panic(fmt.Sprintf("gen: bad slice rank %d of %d", rank, p))
	}
	lo := rank * g.spec.Base.N / p
	hi := (rank + 1) * g.spec.Base.N / p
	return g.Table(lo, hi)
}
