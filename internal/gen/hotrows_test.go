package gen

import "testing"

func hotSpec() HotSpec {
	return HotSpec{
		Base:    Spec{N: 20000, D: 4, Cards: []int{64, 32, 16, 8}, Seed: 7},
		HotDim:  0,
		HotKeys: 3,
		HotMass: 0.7,
		Correlations: []Correlation{
			{Dim: 1, Anchor: 0, Strength: 0.9},
		},
	}
}

func TestHotRowsDeterministicAcrossSplits(t *testing.T) {
	g := NewHot(hotSpec())
	all := g.All()
	for _, p := range []int{2, 3, 5} {
		i := 0
		for r := 0; r < p; r++ {
			s := g.Slice(r, p)
			for k := 0; k < s.Len(); k++ {
				for c := 0; c < all.D; c++ {
					if s.Dim(k, c) != all.Dim(i, c) {
						t.Fatalf("p=%d row %d col %d: slice %d != all %d", p, i, c, s.Dim(k, c), all.Dim(i, c))
					}
				}
				i++
			}
		}
		if i != all.Len() {
			t.Fatalf("p=%d covers %d of %d rows", p, i, all.Len())
		}
	}
}

func TestHotRowsMass(t *testing.T) {
	spec := hotSpec()
	g := NewHot(spec)
	all := g.All()
	hot := 0
	for i := 0; i < all.Len(); i++ {
		if int(all.Dim(i, spec.HotDim)) < spec.HotKeys {
			hot++
		}
	}
	frac := float64(hot) / float64(all.Len())
	// The override alone contributes HotMass; base draws add a little.
	if frac < spec.HotMass || frac > spec.HotMass+0.15 {
		t.Fatalf("hot fraction %.3f, want ~%.2f", frac, spec.HotMass)
	}
}

func TestHotRowsCorrelationIsFunctional(t *testing.T) {
	// A correlated value, when the tie fires, must be a pure function
	// of the anchor value: each anchor maps to exactly one tied value.
	spec := hotSpec()
	spec.Correlations[0].Strength = 1 // always tie
	g := NewHot(spec)
	all := g.All()
	seen := map[uint32]uint32{}
	for i := 0; i < all.Len(); i++ {
		a, v := all.Dim(i, 0), all.Dim(i, 1)
		if prev, ok := seen[a]; ok && prev != v {
			t.Fatalf("anchor %d maps to both %d and %d", a, prev, v)
		}
		seen[a] = v
	}
	// Full-strength correlation collapses the (D0,D1) key space to at
	// most |D0| combinations (vs |D0|*|D1| independent).
	if len(seen) > spec.Base.Cards[0] {
		t.Fatalf("%d anchor values exceed cardinality %d", len(seen), spec.Base.Cards[0])
	}
}

func TestHotSpecValidate(t *testing.T) {
	bad := []HotSpec{
		{Base: Spec{N: 10, D: 2, Cards: []int{4, 4}}, HotDim: 2, HotKeys: 1},
		{Base: Spec{N: 10, D: 2, Cards: []int{4, 4}}, HotDim: 0, HotKeys: 0},
		{Base: Spec{N: 10, D: 2, Cards: []int{4, 4}}, HotDim: 0, HotKeys: 8},
		{Base: Spec{N: 10, D: 2, Cards: []int{4, 4}}, HotDim: 0, HotKeys: 1, HotMass: 1.5},
		{Base: Spec{N: 10, D: 2, Cards: []int{4, 4}}, HotDim: 0, HotKeys: 1,
			Correlations: []Correlation{{Dim: 1, Anchor: 1, Strength: 0.5}}},
		{Base: Spec{N: 10, D: 2, Cards: []int{4, 4}}, HotDim: 0, HotKeys: 1,
			Correlations: []Correlation{{Dim: 1, Anchor: 0, Strength: 2}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
	if err := hotSpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}
