package gen

import (
	"fmt"
	"sort"
)

// QueryMix draws query keys with Zipf(alpha) popularity over a key
// space {0..keys-1}: a flash-crowd workload where a handful of hot
// keys dominate. Like the row generator it is counter-based — Key(i)
// is a pure function of (seed, i) — so any number of query workers can
// replay the same stream, and a chaos run and its fault-free control
// issue identical queries.
type QueryMix struct {
	cdf  []float64
	seed int64
}

// NewQueryMix builds a query mix over keys keys with Zipf skew alpha
// (alpha = 0 is uniform). It panics on an invalid shape (mixes are
// code, not user input).
func NewQueryMix(keys int, alpha float64, seed int64) *QueryMix {
	if keys < 1 {
		panic(fmt.Sprintf("gen: query mix needs at least one key, got %d", keys))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("gen: query mix has negative skew %v", alpha))
	}
	return &QueryMix{cdf: zipfCDF(keys, alpha), seed: seed}
}

// Keys returns the key-space size.
func (m *QueryMix) Keys() int { return len(m.cdf) }

// queryDomain separates the query stream's hash domain from the row
// generator's, so a mix and a data set sharing a seed stay independent.
const queryDomain = uint64(0x51) << 56

// Key returns the i-th query's key (0-based stream position).
func (m *QueryMix) Key(i int) int {
	h := splitmix64(uint64(m.seed)<<20 ^ uint64(i)*0x9e3779b97f4a7c15 ^ queryDomain)
	u := float64(h>>11) / float64(1 << 53)
	k := sort.SearchFloat64s(m.cdf, u)
	if k >= len(m.cdf) {
		k = len(m.cdf) - 1
	}
	return k
}

// HotMass returns the probability mass of the top-n hottest keys
// (keys 0..n-1), the expected fraction of queries a cache holding
// those keys absorbs.
func (m *QueryMix) HotMass(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n >= len(m.cdf) {
		return 1
	}
	return m.cdf[n-1]
}
