package gen

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

func baseSpec() Spec {
	return Spec{N: 5000, D: 4, Cards: []int{16, 8, 4, 2}, Seed: 1}
}

func TestValidate(t *testing.T) {
	good := baseSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Spec{
		{N: -1, D: 1, Cards: []int{2}},
		{N: 10, D: 0, Cards: nil},
		{N: 10, D: 2, Cards: []int{4}},
		{N: 10, D: 1, Cards: []int{0}},
		{N: 10, D: 2, Cards: []int{4, 8}},                            // increasing cards
		{N: 10, D: 2, Cards: []int{8, 4}, Skews: []float64{0}},       // skew len
		{N: 10, D: 2, Cards: []int{8, 4}, Skews: []float64{0, -0.5}}, // negative skew
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDeterministicAndPIndependent(t *testing.T) {
	g := New(baseSpec())
	all := g.All()
	for _, p := range []int{1, 3, 4, 7} {
		merged := record.New(g.Spec().D, 0)
		for r := 0; r < p; r++ {
			merged.AppendTable(g.Slice(r, p))
		}
		if !record.Equal(merged, all) {
			t.Fatalf("union of %d slices differs from full data set", p)
		}
	}
	// Re-created generator yields identical data.
	if !record.Equal(New(baseSpec()).All(), all) {
		t.Fatal("generator not deterministic")
	}
}

func TestSeedChangesData(t *testing.T) {
	s1, s2 := baseSpec(), baseSpec()
	s2.Seed = 2
	if record.Equal(New(s1).All(), New(s2).All()) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestValuesWithinCardinality(t *testing.T) {
	f := func(seed int64, alphaRaw uint8) bool {
		spec := Spec{
			N: 500, D: 3, Cards: []int{7, 5, 3},
			Skews: []float64{float64(alphaRaw % 4), 0, float64(alphaRaw%4) / 2},
			Seed:  seed,
		}
		tb := New(spec).All()
		for i := 0; i < tb.Len(); i++ {
			for j := 0; j < spec.D; j++ {
				if int(tb.Dim(i, j)) >= spec.Cards[j] {
					return false
				}
			}
			if tb.Meas(i) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	spec := Spec{N: 50000, D: 1, Cards: []int{10}, Seed: 3}
	tb := New(spec).All()
	counts := make([]int, 10)
	for i := 0; i < tb.Len(); i++ {
		counts[tb.Dim(i, 0)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-5000) > 500 {
			t.Fatalf("value %d appeared %d times, want ~5000", v, c)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	// With alpha = 2 over card 100, value 0 should dominate; compare
	// against alpha = 0.
	mass := func(alpha float64) float64 {
		spec := Spec{N: 20000, D: 1, Cards: []int{100}, Skews: []float64{alpha}, Seed: 4}
		tb := New(spec).All()
		zero := 0
		for i := 0; i < tb.Len(); i++ {
			if tb.Dim(i, 0) == 0 {
				zero++
			}
		}
		return float64(zero) / float64(tb.Len())
	}
	uniform, skewed := mass(0), mass(2)
	if uniform > 0.05 {
		t.Fatalf("uniform mass at 0 = %v", uniform)
	}
	if skewed < 0.5 {
		t.Fatalf("alpha=2 mass at 0 = %v, want > 0.5", skewed)
	}
}

func TestSkewIncreasesDataReduction(t *testing.T) {
	// §4.3: higher skew means more duplicate rows, hence smaller
	// aggregated root. Verify distinct counts fall as alpha rises.
	distinct := func(alpha float64) int {
		spec := Spec{
			N: 20000, D: 4, Cards: []int{16, 8, 4, 2},
			Skews: []float64{alpha, alpha, alpha, alpha}, Seed: 5,
		}
		tb := New(spec).All()
		return record.SortAggregate(tb).Len()
	}
	d0, d1, d3 := distinct(0), distinct(1), distinct(3)
	if !(d0 >= d1 && d1 > d3) {
		t.Fatalf("distinct counts not decreasing with skew: %d, %d, %d", d0, d1, d3)
	}
}

func TestPaperCards(t *testing.T) {
	cards := PaperCards()
	if len(cards) != 8 || cards[0] != 256 || cards[7] != 6 {
		t.Fatalf("PaperCards = %v", cards)
	}
	spec := Spec{N: 10, D: 8, Cards: cards, Seed: 1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableRangePanics(t *testing.T) {
	g := New(baseSpec())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Table(0, g.Spec().N+1)
}

func TestSliceBoundsCoverExactly(t *testing.T) {
	spec := baseSpec()
	spec.N = 17 // not divisible by p
	g := New(spec)
	total := 0
	for r := 0; r < 5; r++ {
		total += g.Slice(r, 5).Len()
	}
	if total != 17 {
		t.Fatalf("slices cover %d rows, want 17", total)
	}
}
