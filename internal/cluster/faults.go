package cluster

import (
	"fmt"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/record"
)

// faultState is the runtime side of an installed fault plan: the
// immutable plan plus which planned crashes have already fired on this
// machine. Keeping the fired flags here (not on the plan) lets one
// plan value drive any number of machines, which the determinism test
// depends on.
type faultState struct {
	plan  *faults.Plan
	mu    sync.Mutex
	fired []bool
}

// crashPanic unwinds the goroutine of a deliberately crashed
// processor; Run converts it into the *faults.CrashError it carries.
type crashPanic struct{ err *faults.CrashError }

// SetFaults installs a fault-injection plan on the machine (nil
// uninstalls). Straggler factors take effect immediately on the
// processors' clocks; crashes and payload faults fire as execution
// reaches their trigger points. The plan addresses processors by
// original rank, so it stays meaningful across Shrink.
func (m *Machine) SetFaults(plan *faults.Plan) error {
	if plan == nil {
		m.faults = nil
		for _, p := range m.procs {
			p.clock.SetSlowdown(1)
		}
		return nil
	}
	if err := plan.Validate(m.p); err != nil {
		return err
	}
	m.faults = &faultState{plan: plan, fired: make([]bool, len(plan.Crashes))}
	for _, p := range m.procs {
		p.clock.SetSlowdown(plan.SlowdownFor(p.orig))
	}
	return nil
}

// maybeCrash fires at most once per planned crash when this
// processor's current execution point matches. Called at superstep
// entry, SetPhase, and SetEpoch.
func (p *Proc) maybeCrash() {
	fs := p.m.faults
	if fs == nil {
		return
	}
	for i, c := range fs.plan.Crashes {
		if !c.Matches(p.orig, p.epoch, p.phase, p.steps) {
			continue
		}
		fs.mu.Lock()
		done := fs.fired[i]
		fs.fired[i] = true
		fs.mu.Unlock()
		if done {
			continue
		}
		panic(crashPanic{&faults.CrashError{
			Rank:      p.orig,
			Dimension: p.epoch,
			Phase:     p.phase,
			Superstep: p.steps,
		}})
	}
}

// Shrink removes processor rank from the machine in place, renumbering
// the survivors' ranks while preserving their original ranks, clocks,
// disks, and the machine's accumulated statistics and fault plan. It
// models degraded continuation after a crash: the dead node's disk and
// its contents are gone. The machine must not be running.
func (m *Machine) Shrink(rank int) error {
	if m.p <= 1 {
		return fmt.Errorf("cluster: cannot shrink a %d-processor machine", m.p)
	}
	if rank < 0 || rank >= m.p {
		return fmt.Errorf("cluster: shrink rank %d out of range 0..%d", rank, m.p-1)
	}
	m.procs = append(m.procs[:rank:rank], m.procs[rank+1:]...)
	m.p--
	for i, p := range m.procs {
		p.rank = i
	}
	m.bar = newBarrier(m.p)
	m.matrix = make([][]any, m.p)
	for i := range m.matrix {
		m.matrix[i] = make([]any, m.p)
	}
	m.slot = make([]any, m.p)
	m.times = make([]float64, m.p)
	return nil
}

// RankOf returns the current rank of the processor with the given
// original rank, or -1 if it has been removed by Shrink.
func (m *Machine) RankOf(orig int) int {
	for _, p := range m.procs {
		if p.orig == orig {
			return p.rank
		}
	}
	return -1
}

// tableEnvelope is the wire format of the checked all-to-all path: the
// payload, the sender's checksum over its wire image, and the fault
// directives the plan injects into this delivery.
type tableEnvelope struct {
	t           *record.Table
	sum         uint64
	drops       int
	corruptions int
	src         int // sender's original rank
	exchange    int64
}

// allToAllTablesChecked is the fault-aware bulk exchange. Senders
// checksum every outgoing payload (charged as a scan). Receivers
// replay the injected delivery failures: a dropped payload times out
// and is retransmitted; a corrupted payload is detected by a checksum
// mismatch and retransmitted. Every failed attempt costs the receiver
// the payload's wire time again plus an exponential backoff, charged
// synchronously after the superstep (retries happen after the
// h-relation's first pass, so they cannot ride the overlap lane).
func allToAllTablesChecked(p *Proc, out []*record.Table) []*record.Table {
	m := p.m
	fs := m.faults
	if len(out) != m.p {
		panic(fmt.Sprintf("cluster: AllToAll payload count %d, want %d", len(out), m.p))
	}
	exchange := p.exchanges
	p.exchanges++

	env := make([]tableEnvelope, m.p)
	sent, msgs, sentRows := 0, 0, 0
	for k := 0; k < m.p; k++ {
		t := out[k]
		e := tableEnvelope{t: t}
		if k != p.rank && m.tableBytes(t) > 0 {
			e.sum = t.Checksum()
			e.src = p.orig
			e.exchange = exchange
			e.drops, e.corruptions = fs.plan.FailuresFor(p.orig, m.procs[k].orig, exchange)
			sentRows += t.Len()
			sent += m.tableBytes(t)
			msgs++
		}
		env[k] = e
	}
	// The sender's checksum pass over its outgoing rows.
	p.clock.AddCompute(costmodel.ScanOps(sentRows))

	in := make([]*record.Table, m.p)
	var retryBytes int64
	var retryMsgs int64
	var verifyRows int
	var backoff float64
	base := fs.plan.Backoff()

	p.superstep(
		func() {
			for k := range env {
				m.matrix[p.rank][k] = env[k]
			}
		},
		func() int {
			recv := 0
			for j := 0; j < m.p; j++ {
				e := m.matrix[j][p.rank].(tableEnvelope)
				in[j] = e.t
				if j == p.rank || m.tableBytes(e.t) == 0 {
					continue
				}
				recv += m.tableBytes(e.t)
				attempt := 0
				// Dropped attempts: the receiver's delivery timeout
				// expires and the sender retransmits.
				for i := 0; i < e.drops; i++ {
					attempt++
					backoff += base * float64(int(1)<<(attempt-1))
					retryBytes += int64(m.tableBytes(e.t))
					retryMsgs++
				}
				// Corrupted attempts: a damaged copy arrives, the
				// receiver's checksum pass rejects it, and the sender
				// retransmits.
				for i := 0; i < e.corruptions; i++ {
					attempt++
					bad := e.t.Clone()
					if bad.Corrupt(fs.plan.CorruptionMask(e.src, p.orig, e.exchange, attempt)) {
						if bad.Checksum() == e.sum {
							panic(fmt.Sprintf("cluster: corrupted payload %d->%d passed checksum", e.src, p.rank))
						}
					}
					verifyRows += bad.Len()
					backoff += base * float64(int(1)<<(attempt-1))
					retryBytes += int64(m.tableBytes(e.t))
					retryMsgs++
				}
				// The delivery that sticks is verified too.
				if e.t.Checksum() != e.sum {
					panic(fmt.Sprintf("cluster: payload %d->%d failed checksum after retries", e.src, p.rank))
				}
				verifyRows += e.t.Len()
			}
			return recv
		},
		sent, msgs, true,
	)

	// Repair costs are charged synchronously after the superstep: the
	// retransmitted bytes, the backoff waits, and the receiver's
	// checksum passes. The retransmissions are repair traffic, counted
	// in Stats.Retried rather than in the h-relation's BytesMoved.
	if retryMsgs > 0 {
		p.clock.AddComm(int(retryBytes), int(retryMsgs))
		p.clock.AddCommDelay(backoff)
		m.mu.Lock()
		m.stats.Retried += retryMsgs
		m.mu.Unlock()
	}
	p.clock.AddCompute(costmodel.ScanOps(verifyRows))
	return in
}
