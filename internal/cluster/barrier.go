package cluster

import "sync"

// abortSignal is panicked inside barrier waiters when another processor
// has failed, so that SPMD goroutines unwind instead of deadlocking.
type abortSignal struct{}

// barrier is a reusable generation-counting barrier for a fixed party
// size, with abort support: once aborted, all current and future
// waiters panic with abortSignal.
type barrier struct {
	mu   sync.Mutex
	cond *sync.Cond
	size int
	n    int
	gen  uint64
	err  error
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all parties arrive. A size-1 barrier returns
// immediately.
func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		panic(abortSignal{})
	}
	b.n++
	if b.n == b.size {
		b.n = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for b.gen == gen && b.err == nil {
		b.cond.Wait()
	}
	// Panic only if the abort arrived while this generation was still
	// open. A waiter whose barrier completed returns normally even if an
	// abort lands before it is scheduled again: its barrier did succeed,
	// and unwinding here would make the survivor's progress — and its
	// charged clock — depend on scheduling instead of on program order.
	if b.gen == gen && b.err != nil {
		panic(abortSignal{})
	}
}

// abort records the first failure and releases all waiters.
func (b *barrier) abort(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
	b.cond.Broadcast()
}

// abortErr returns the recorded failure, if any.
func (b *barrier) abortErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// reset clears abort state so the machine can be reused after a
// propagated failure (primarily for tests).
func (b *barrier) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.err = nil
	b.n = 0
}
