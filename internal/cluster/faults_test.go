package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/record"
)

// payloadTables builds one small table per destination, tagged by
// (src, dst) so mixed-up deliveries are detectable.
func payloadTables(p *Proc, rows int) []*record.Table {
	out := make([]*record.Table, p.P())
	for k := range out {
		tb := record.New(2, rows)
		for i := 0; i < rows; i++ {
			tb.Append([]uint32{uint32(p.Rank()), uint32(k)}, int64(i))
		}
		out[k] = tb
	}
	return out
}

func checkDeliveries(t *testing.T, p *Proc, in []*record.Table, rows int) {
	t.Helper()
	for j, tb := range in {
		if tb.Len() != rows {
			t.Errorf("rank %d from %d: %d rows, want %d", p.Rank(), j, tb.Len(), rows)
		}
		for i := 0; i < tb.Len(); i++ {
			if tb.Dim(i, 0) != uint32(j) || tb.Dim(i, 1) != uint32(p.Rank()) {
				t.Errorf("rank %d from %d: row %d mislabelled (%d,%d)",
					p.Rank(), j, i, tb.Dim(i, 0), tb.Dim(i, 1))
			}
		}
	}
}

func TestSetFaultsValidates(t *testing.T) {
	m := newMachine(3)
	bad := &faults.Plan{Crashes: []faults.Crash{{Rank: 7}}}
	if err := m.SetFaults(bad); err == nil {
		t.Fatal("expected validation error for out-of-range rank")
	}
	if m.faults != nil {
		t.Fatal("invalid plan must not be installed")
	}
}

func TestInjectedCrashReturnsCrashError(t *testing.T) {
	m := newMachine(4)
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 2, Superstep: 2}}}
	if err := m.SetFaults(plan); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(p *Proc) {
			Barrier(p)
			Barrier(p)
			Barrier(p)
		})
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after injected crash")
	}
	var crash *faults.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want *faults.CrashError, got %v", err)
	}
	if crash.Rank != 2 || crash.Superstep != 2 {
		t.Fatalf("crash = %+v, want rank 2 superstep 2", crash)
	}
	if !strings.Contains(crash.Error(), "processor 2") {
		t.Fatalf("error %q does not name the rank", crash.Error())
	}
	// The crash fires at most once: a second run completes.
	if err := m.Run(func(p *Proc) { Barrier(p); Barrier(p); Barrier(p) }); err != nil {
		t.Fatalf("second run after one-shot crash: %v", err)
	}
}

func TestDroppedPayloadsAreRetriedAndCharged(t *testing.T) {
	const rows = 50
	run := func(plan *faults.Plan) (*Machine, float64) {
		m := newMachine(3)
		if plan != nil {
			if err := m.SetFaults(plan); err != nil {
				t.Fatal(err)
			}
		}
		err := m.Run(func(p *Proc) {
			in := AllToAllTables(p, payloadTables(p, rows))
			checkDeliveries(t, p, in, rows)
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, m.SimSeconds()
	}

	_, clean := run(nil)
	m, faulty := run(&faults.Plan{
		Seed:  7,
		Drops: []faults.PayloadFault{{Src: 0, Dst: 1, Exchange: 0, Times: 2}},
	})

	if got := m.Stats().Retried; got != 2 {
		t.Fatalf("Retried = %d, want 2", got)
	}
	if faulty <= clean {
		t.Fatalf("retries must cost time: faulty %.6fs <= clean %.6fs", faulty, clean)
	}
}

func TestCorruptedPayloadsAreRepaired(t *testing.T) {
	const rows = 40
	m := newMachine(2)
	plan := &faults.Plan{
		Seed:        11,
		Corruptions: []faults.PayloadFault{{Src: 1, Dst: 0, Exchange: 0}},
	}
	if err := m.SetFaults(plan); err != nil {
		t.Fatal(err)
	}
	err := m.Run(func(p *Proc) {
		in := AllToAllTables(p, payloadTables(p, rows))
		checkDeliveries(t, p, in, rows)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Retried; got != 1 {
		t.Fatalf("Retried = %d, want 1", got)
	}
}

func TestStragglerSlowsLocalWorkOnly(t *testing.T) {
	m := newMachine(2)
	plan := &faults.Plan{Stragglers: []faults.Straggler{{Rank: 1, Factor: 3}}}
	if err := m.SetFaults(plan); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(func(p *Proc) { p.Clock().AddCompute(1e9) }); err != nil {
		t.Fatal(err)
	}
	fast := m.Proc(0).Clock().Seconds()
	slow := m.Proc(1).Clock().Seconds()
	if slow < fast*2.9 || slow > fast*3.1 {
		t.Fatalf("straggler clock %.4fs, want ~3x %.4fs", slow, fast)
	}
	// Uninstalling resets the slowdown.
	if err := m.SetFaults(nil); err != nil {
		t.Fatal(err)
	}
	before := m.Proc(1).Clock().Seconds()
	if err := m.Run(func(p *Proc) { p.Clock().AddCompute(1e9) }); err != nil {
		t.Fatal(err)
	}
	d0 := m.Proc(0).Clock().Seconds() - fast
	d1 := m.Proc(1).Clock().Seconds() - before
	if d1 > d0*1.01 {
		t.Fatalf("slowdown not reset: rank 1 charged %.4fs vs rank 0 %.4fs", d1, d0)
	}
}

func TestShrinkRenumbersAndPreservesState(t *testing.T) {
	m := newMachine(4)
	for r := 0; r < 4; r++ {
		tb := record.New(1, 1)
		tb.Append([]uint32{uint32(r)}, int64(r))
		m.Proc(r).Disk().Put("tag", tb)
	}
	if err := m.Shrink(1); err != nil {
		t.Fatal(err)
	}
	if m.P() != 3 {
		t.Fatalf("P() = %d after Shrink, want 3", m.P())
	}
	wantOrig := []int{0, 2, 3}
	for r := 0; r < 3; r++ {
		if got := m.Proc(r).OrigRank(); got != wantOrig[r] {
			t.Fatalf("rank %d orig = %d, want %d", r, got, wantOrig[r])
		}
		tb := m.Proc(r).Disk().MustGet("tag")
		if tb.Dim(0, 0) != uint32(wantOrig[r]) {
			t.Fatalf("rank %d disk carries tag %d, want %d", r, tb.Dim(0, 0), wantOrig[r])
		}
	}
	if got := m.RankOf(1); got != -1 {
		t.Fatalf("RankOf(1) = %d, want -1 for removed processor", got)
	}
	if got := m.RankOf(3); got != 2 {
		t.Fatalf("RankOf(3) = %d, want 2", got)
	}
	// The shrunken machine still runs collectives.
	err := m.Run(func(p *Proc) {
		in := AllToAllTables(p, payloadTables(p, 5))
		checkDeliveries(t, p, in, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shrink(9); err == nil {
		t.Fatal("expected error for out-of-range shrink rank")
	}
}

func TestCrashAtPhaseAndEpoch(t *testing.T) {
	m := newMachine(3)
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 0, Dimension: 1, Phase: "merge"}}}
	if err := m.SetFaults(plan); err != nil {
		t.Fatal(err)
	}
	err := m.Run(func(p *Proc) {
		for dim := 0; dim < 3; dim++ {
			p.SetEpoch(dim)
			p.SetPhase("partition")
			Barrier(p)
			p.SetPhase("merge")
			Barrier(p)
		}
	})
	var crash *faults.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("want *faults.CrashError, got %v", err)
	}
	if crash.Rank != 0 || crash.Dimension != 1 || crash.Phase != "merge" {
		t.Fatalf("crash = %+v, want rank 0 dimension 1 phase merge", crash)
	}
}
