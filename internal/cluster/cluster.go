// Package cluster simulates the paper's shared-nothing multiprocessor
// (Figure 2a): p processors P0..Pp-1, each with private memory and a
// private local disk, connected by a switch. There is no shared memory
// or shared disk visible to the algorithm; processors interact only
// through the collective operations of this package, mirroring the MPI
// primitives the paper uses (MPI_Alltoallv h-relations, broadcast,
// gather).
//
// Execution model: Run launches one goroutine per processor executing
// the same SPMD body, so the algorithm really runs in parallel on the
// host. Timing model: each processor owns a costmodel.Clock charged for
// its local CPU and disk work; every collective is a BSP superstep that
// (1) synchronizes all clocks to the maximum (the barrier wait) and
// (2) charges each processor h-relation communication time, where h is
// the maximum of its bytes sent and received in the superstep. The
// machine's simulated wall-clock time is the maximum clock at the end,
// exactly the paper's "wall clock time between the start of the first
// process and the termination of the last process".
//
// In overlapped mode (Proc.SetOverlap, the paper's §4.1 optimization)
// bulk h-relations are posted and the processor continues: the charge
// runs concurrently with subsequent local CPU/disk work and the
// unmasked remainder is settled at the next barrier.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/record"
	"repro/internal/simdisk"
)

// Machine is a simulated shared-nothing multiprocessor.
type Machine struct {
	p      int
	params costmodel.Params
	procs  []*Proc

	bar *barrier

	// Superstep exchange state. matrix[src][dst] carries point-to-point
	// payloads; slot[src] carries one-per-processor payloads; times[src]
	// carries clock postings for BSP synchronization.
	matrix [][]any
	slot   []any
	times  []float64

	// faults, when non-nil, is the installed fault-injection state
	// (SetFaults). It survives Shrink so a recovered machine keeps the
	// same plan.
	faults *faultState

	// tableExtra, when non-nil, reports extra wire bytes a payload
	// table carries beyond its row bytes (SetTableSizer).
	tableExtra func(*record.Table) int

	mu    sync.Mutex
	stats Stats
}

// Stats aggregates communication over a run.
type Stats struct {
	BytesMoved int64            // total bytes crossing the network
	Messages   int64            // total point-to-point messages
	Supersteps int64            // number of collective supersteps
	Retried    int64            // retransmitted messages (fault repairs)
	ByPhase    map[string]int64 // bytes moved per phase label
}

// Proc is one simulated processor: a rank, a private clock, and a
// private disk. SPMD bodies receive their Proc and must not touch any
// other processor's state except through collectives.
type Proc struct {
	rank    int
	orig    int // original rank, stable across Shrink
	m       *Machine
	clock   *costmodel.Clock
	disk    *simdisk.Disk
	phase   string
	overlap bool

	// Fault-injection execution point: the current dimension iteration
	// (SetEpoch, -1 before the first), the processor's superstep count,
	// and its bulk-table-exchange ordinal.
	epoch     int
	steps     int64
	exchanges int64
}

// slotMsg is a one-per-processor payload together with its modelled
// wire size, so receivers are charged for what was actually posted
// rather than what they guessed.
type slotMsg struct {
	val   any
	bytes int
}

// New returns a machine with p processors using the given cost
// parameters.
func New(p int, params costmodel.Params) *Machine {
	if p < 1 {
		panic(fmt.Sprintf("cluster: need at least one processor, got %d", p))
	}
	m := &Machine{
		p:      p,
		params: params,
		bar:    newBarrier(p),
		matrix: make([][]any, p),
		slot:   make([]any, p),
		times:  make([]float64, p),
		stats:  Stats{ByPhase: make(map[string]int64)},
	}
	for i := range m.matrix {
		m.matrix[i] = make([]any, p)
	}
	m.procs = make([]*Proc, p)
	for i := 0; i < p; i++ {
		clk := costmodel.NewClock(params)
		m.procs[i] = &Proc{rank: i, orig: i, m: m, clock: clk, disk: simdisk.New(clk), epoch: -1}
	}
	return m
}

// P returns the number of processors.
func (m *Machine) P() int { return m.p }

// Params returns the machine's cost parameters.
func (m *Machine) Params() costmodel.Params { return m.params }

// Proc returns processor i, for pre-loading its disk before Run and
// inspecting it afterwards.
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// Stats returns a copy of the accumulated communication statistics.
func (m *Machine) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.ByPhase = make(map[string]int64, len(m.stats.ByPhase))
	for k, v := range m.stats.ByPhase {
		s.ByPhase[k] = v
	}
	return s
}

// SimSeconds returns the simulated makespan: the maximum clock over all
// processors.
func (m *Machine) SimSeconds() float64 {
	max := 0.0
	for _, p := range m.procs {
		if s := p.clock.Seconds(); s > max {
			max = s
		}
	}
	return max
}

// Run executes body on every processor concurrently and blocks until
// all finish. If any processor fails — an injected crash or an
// unexpected panic — every other processor is released from its
// barrier waits and Run returns the first failure as an error: a
// *faults.CrashError for injected crashes, otherwise an error naming
// the panicking rank. The machine is reusable after a failed run (the
// barrier is reset and surviving clocks are settled), which is what
// checkpoint recovery builds on.
func (m *Machine) Run(body func(*Proc)) error {
	var wg sync.WaitGroup
	wg.Add(m.p)
	for i := 0; i < m.p; i++ {
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				switch r := recover().(type) {
				case nil:
				case abortSignal:
					// Another processor failed first; just unwind.
				case crashPanic:
					m.bar.abort(r.err)
				default:
					m.bar.abort(fmt.Errorf("cluster: processor %d panicked: %v", p.rank, r))
				}
			}()
			body(p)
			// Communication still in flight when the body returns must
			// complete before the machine's makespan is read.
			p.clock.SettleComm()
		}(m.procs[i])
	}
	wg.Wait()
	if err := m.bar.abortErr(); err != nil {
		// Unwound processors skipped their normal settle; their
		// in-flight communication still completes on the wire.
		for _, p := range m.procs {
			p.clock.SettleComm()
		}
		m.bar.reset()
		return err
	}
	return nil
}

// Rank returns the processor's rank in [0, P).
func (p *Proc) Rank() int { return p.rank }

// OrigRank returns the processor's rank in the machine as originally
// built, stable across Shrink. Fault plans address processors by
// original rank.
func (p *Proc) OrigRank() int { return p.orig }

// P returns the number of processors in the machine.
func (p *Proc) P() int { return p.m.p }

// Clock returns the processor's simulated clock.
func (p *Proc) Clock() *costmodel.Clock { return p.clock }

// Disk returns the processor's private disk.
func (p *Proc) Disk() *simdisk.Disk { return p.disk }

// SetPhase labels subsequent communication for per-phase statistics
// (e.g. the merge phase bytes of Figure 8b). It is also a fault
// injection point: a planned crash pinned to this phase fires here.
func (p *Proc) SetPhase(name string) {
	p.phase = name
	p.maybeCrash()
}

// SetEpoch marks the start of a dimension iteration (the paper's Di
// boundary) for fault targeting, clearing the phase label. A planned
// crash pinned to this dimension boundary fires here.
func (p *Proc) SetEpoch(e int) {
	p.epoch = e
	p.phase = ""
	p.maybeCrash()
}

// Epoch returns the current dimension iteration set via SetEpoch (-1
// before the first).
func (p *Proc) Epoch() int { return p.epoch }

// SetOverlap switches this processor's bulk h-relations (AllToAll) to
// overlapped mode, the paper's §4.1 communication–computation overlap:
// the exchange is posted and the processor continues with local work;
// the transfer runs concurrently with subsequent CPU/disk charges and
// whatever has not been masked is settled at the next barrier. Control
// collectives (Broadcast, Gather, AllGather) stay synchronous — their
// results gate the computation that follows, so overlapping them would
// be dishonest.
func (p *Proc) SetOverlap(on bool) { p.overlap = on }

// account records communication volume attributed to this processor's
// sends.
func (p *Proc) account(bytesSent int64, msgs int64) {
	m := p.m
	m.mu.Lock()
	m.stats.BytesMoved += bytesSent
	m.stats.Messages += msgs
	if p.phase != "" {
		m.stats.ByPhase[p.phase] += bytesSent
	}
	m.mu.Unlock()
}

// superstep performs the two-barrier BSP exchange protocol around a
// collective. post must write this processor's payloads into the
// exchange state; read must consume payloads destined to this
// processor and return its received byte count, so the h-relation is
// charged max(sent, recv) from what actually arrived — not from a
// value guessed before the exchange. sent is this processor's outgoing
// byte count and msgs its message count. overlappable marks bulk
// exchanges whose charge may ride the clock's overlap lane when the
// processor is in overlapped mode.
func (p *Proc) superstep(post func(), read func() int, sent, msgs int, overlappable bool) {
	m := p.m
	// Superstep entry is a fault injection point: a crash fired here
	// kills the processor before it posts anything, so its payloads for
	// this exchange are lost — the failure mode a real MPI job sees.
	p.steps++
	p.maybeCrash()
	post()
	// Any communication still overlapping from an earlier superstep
	// must complete before this barrier: its time is part of when this
	// processor arrives.
	p.clock.SettleComm()
	m.times[p.rank] = p.clock.Seconds()
	m.bar.wait()

	// All postings visible. Synchronize to the slowest processor, then
	// pay for this processor's share of the h-relation.
	tmax := 0.0
	for _, t := range m.times {
		if t > tmax {
			tmax = t
		}
	}
	recv := read()
	p.clock.AdvanceTo(tmax)
	h := sent
	if recv > h {
		h = recv
	}
	if overlappable && p.overlap {
		p.clock.AddCommOverlap(h, msgs)
	} else {
		p.clock.AddComm(h, msgs)
	}
	p.account(int64(sent), int64(msgs))
	if p.rank == 0 {
		m.mu.Lock()
		m.stats.Supersteps++
		m.mu.Unlock()
	}

	// Second barrier: nobody may start posting the next superstep until
	// everyone has read this one.
	m.bar.wait()
}

// Barrier synchronizes all processors and their clocks without moving
// data.
func Barrier(p *Proc) {
	p.superstep(func() {}, func() int { return 0 }, 0, 0, false)
}

// Broadcast sends root's value to every processor and returns it.
// bytes is the modelled payload size as known at the root, which is
// charged for p-1 outgoing copies; non-roots are charged for the size
// the root actually posted (their own bytes argument is ignored, as in
// MPI, where the root determines the message size).
func Broadcast[T any](p *Proc, root int, val T, bytes int) T {
	m := p.m
	var out T
	sent, msgs := 0, 0
	if p.rank == root && bytes > 0 {
		sent = bytes * (m.p - 1)
		msgs = m.p - 1
	}
	p.superstep(
		func() {
			if p.rank == root {
				m.slot[root] = slotMsg{val: val, bytes: bytes}
			}
		},
		func() int {
			msg := m.slot[root].(slotMsg)
			out = msg.val.(T)
			if p.rank == root {
				return 0
			}
			return msg.bytes
		},
		sent, msgs, false,
	)
	return out
}

// Gather collects one value from every processor at root. Only the
// root receives the slice (indexed by rank); others get nil. bytes is
// this processor's payload size; the root is charged the sum of the
// sizes actually posted, so uneven contributions (e.g. pivot lists
// from processors with few rows) are accounted honestly.
func Gather[T any](p *Proc, root int, val T, bytes int) []T {
	m := p.m
	var out []T
	sent, msgs := 0, 0
	if p.rank != root && bytes > 0 {
		sent = bytes
		msgs = 1
	}
	p.superstep(
		func() { m.slot[p.rank] = slotMsg{val: val, bytes: bytes} },
		func() int {
			if p.rank != root {
				return 0
			}
			out = make([]T, m.p)
			recv := 0
			for i := 0; i < m.p; i++ {
				msg := m.slot[i].(slotMsg)
				out[i] = msg.val.(T)
				if i != root {
					recv += msg.bytes
				}
			}
			return recv
		},
		sent, msgs, false,
	)
	return out
}

// AllGather collects one value from every processor at every
// processor. bytes is this processor's payload size; each processor
// receives the sum of the other processors' posted sizes.
func AllGather[T any](p *Proc, val T, bytes int) []T {
	m := p.m
	out := make([]T, m.p)
	sent, msgs := 0, 0
	if bytes > 0 {
		sent = bytes * (m.p - 1)
		msgs = m.p - 1
	}
	p.superstep(
		func() { m.slot[p.rank] = slotMsg{val: val, bytes: bytes} },
		func() int {
			recv := 0
			for i := 0; i < m.p; i++ {
				msg := m.slot[i].(slotMsg)
				out[i] = msg.val.(T)
				if i != p.rank {
					recv += msg.bytes
				}
			}
			return recv
		},
		sent, msgs, false,
	)
	return out
}

// AllToAll performs the h-relation at the heart of the algorithm
// (MPI_Alltoallv): out[k] is this processor's payload for processor k;
// the result's element j is the payload processor j addressed to this
// processor. bytesOf models each payload's wire size; local delivery
// (k == rank) is free. Each processor is charged max(sent, recv) — the
// true h-relation, so receive-skewed processors pay for what arrives.
// In overlapped mode (SetOverlap) the charge rides the clock's overlap
// lane and may be masked by subsequent local work.
func AllToAll[T any](p *Proc, out []T, bytesOf func(T) int) []T {
	m := p.m
	if len(out) != m.p {
		panic(fmt.Sprintf("cluster: AllToAll payload count %d, want %d", len(out), m.p))
	}
	sent, msgs := 0, 0
	for k, v := range out {
		if k != p.rank {
			if b := bytesOf(v); b > 0 {
				sent += b
				msgs++
			}
		}
	}
	in := make([]T, m.p)
	p.superstep(
		func() {
			for k, v := range out {
				m.matrix[p.rank][k] = v
			}
		},
		func() int {
			recv := 0
			for j := 0; j < m.p; j++ {
				in[j] = m.matrix[j][p.rank].(T)
				if j != p.rank {
					recv += bytesOf(in[j])
				}
			}
			return recv
		},
		sent, msgs, true,
	)
	return in
}

// SetTableSizer installs a hook reporting the extra wire bytes a
// payload table carries beyond its row bytes — e.g. the serialized
// sketch state behind holistic-measure handles — so bulk h-relations
// charge for the payload that actually crosses the switch. Install
// before Run; the hook must be safe for concurrent use.
func (m *Machine) SetTableSizer(extra func(*record.Table) int) { m.tableExtra = extra }

// tableBytes is the modelled wire size of a payload table (nil means
// empty), including any extra state bytes the installed sizer reports.
func (m *Machine) tableBytes(t *record.Table) int {
	if t == nil || t.Len() == 0 {
		return 0
	}
	b := t.Bytes()
	if m.tableExtra != nil {
		b += m.tableExtra(t)
	}
	return b
}

// AllToAllTables is AllToAll for record tables, with byte accounting
// from the tables' modelled sizes. nil entries are treated as empty.
// When a fault plan is installed (SetFaults) each payload carries a
// wire-image checksum; injected drops and corruptions are detected and
// repaired by charged retransmissions with exponential backoff.
func AllToAllTables(p *Proc, out []*record.Table) []*record.Table {
	if p.m.faults == nil {
		return AllToAll(p, out, p.m.tableBytes)
	}
	return allToAllTablesChecked(p, out)
}

// Reduce combines one value per processor at root with a left fold over
// ranks 0..p-1; non-roots receive the zero value.
func Reduce[T any](p *Proc, root int, val T, bytes int, combine func(a, b T) T) T {
	vals := Gather(p, root, val, bytes)
	var acc T
	if p.rank == root {
		acc = vals[0]
		for _, v := range vals[1:] {
			acc = combine(acc, v)
		}
	}
	return acc
}

// AllReduce combines one value per processor and delivers the result
// everywhere.
func AllReduce[T any](p *Proc, val T, bytes int, combine func(a, b T) T) T {
	vals := AllGather(p, val, bytes)
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = combine(acc, v)
	}
	return acc
}
