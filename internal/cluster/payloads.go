package cluster

import (
	"fmt"

	"repro/internal/costmodel"
)

// Payload is a bulk-exchange payload the checked path can verify and
// damage: compressed view slices (colstore.Slice) satisfy it. Methods
// must be nil-safe on pointer receivers — a nil payload models an
// absent message of zero bytes.
type Payload interface {
	// Bytes is the modelled wire size.
	Bytes() int
	// Len is the logical row count, charged for checksum scans.
	Len() int
	// Checksum hashes the wire image.
	Checksum() uint64
	// Corrupt deterministically damages the payload in place, reporting
	// whether any bit changed.
	Corrupt(mask uint64) bool
}

// AllToAllPayloads is the bulk h-relation for arbitrary Payload types,
// charged at each payload's modelled (compressed) wire size. clone
// deep-copies a payload: the simulated wire must not alias the
// sender's live value, and injected corruption damages copies. With a
// fault plan installed the exchange runs checked — senders checksum
// outgoing payloads, receivers detect injected drops and corruptions
// and pay for charged retransmissions with exponential backoff —
// mirroring AllToAllTables' fault semantics exactly.
func AllToAllPayloads[T Payload](p *Proc, out []T, clone func(T) T) []T {
	if p.m.faults == nil {
		in := AllToAll(p, out, func(v T) int {
			if v.Len() == 0 {
				return 0
			}
			return v.Bytes()
		})
		for j := range in {
			if in[j].Len() > 0 {
				in[j] = clone(in[j])
			}
		}
		return in
	}
	return allToAllPayloadsChecked(p, out, clone)
}

// payloadEnvelope mirrors tableEnvelope for generic payloads.
type payloadEnvelope[T Payload] struct {
	v           T
	sum         uint64
	drops       int
	corruptions int
	src         int
	exchange    int64
}

// allToAllPayloadsChecked is allToAllTablesChecked generalized over the
// Payload interface; see that function for the protocol commentary.
func allToAllPayloadsChecked[T Payload](p *Proc, out []T, clone func(T) T) []T {
	m := p.m
	fs := m.faults
	if len(out) != m.p {
		panic(fmt.Sprintf("cluster: AllToAll payload count %d, want %d", len(out), m.p))
	}
	exchange := p.exchanges
	p.exchanges++

	env := make([]payloadEnvelope[T], m.p)
	sent, msgs, sentRows := 0, 0, 0
	for k := 0; k < m.p; k++ {
		v := out[k]
		e := payloadEnvelope[T]{v: v}
		if k != p.rank && v.Len() > 0 {
			e.sum = v.Checksum()
			e.src = p.orig
			e.exchange = exchange
			e.drops, e.corruptions = fs.plan.FailuresFor(p.orig, m.procs[k].orig, exchange)
			sentRows += v.Len()
			sent += v.Bytes()
			msgs++
		}
		env[k] = e
	}
	p.clock.AddCompute(costmodel.ScanOps(sentRows))

	in := make([]T, m.p)
	var retryBytes int64
	var retryMsgs int64
	var verifyRows int
	var backoff float64
	base := fs.plan.Backoff()

	p.superstep(
		func() {
			for k := range env {
				m.matrix[p.rank][k] = env[k]
			}
		},
		func() int {
			recv := 0
			for j := 0; j < m.p; j++ {
				e := m.matrix[j][p.rank].(payloadEnvelope[T])
				in[j] = e.v
				if j == p.rank || e.v.Len() == 0 {
					continue
				}
				recv += e.v.Bytes()
				attempt := 0
				for i := 0; i < e.drops; i++ {
					attempt++
					backoff += base * float64(int(1)<<(attempt-1))
					retryBytes += int64(e.v.Bytes())
					retryMsgs++
				}
				for i := 0; i < e.corruptions; i++ {
					attempt++
					bad := clone(e.v)
					if bad.Corrupt(uint64(fs.plan.CorruptionMask(e.src, p.orig, e.exchange, attempt))) {
						if bad.Checksum() == e.sum {
							panic(fmt.Sprintf("cluster: corrupted payload %d->%d passed checksum", e.src, p.rank))
						}
					}
					verifyRows += bad.Len()
					backoff += base * float64(int(1)<<(attempt-1))
					retryBytes += int64(e.v.Bytes())
					retryMsgs++
				}
				if e.v.Checksum() != e.sum {
					panic(fmt.Sprintf("cluster: payload %d->%d failed checksum after retries", e.src, p.rank))
				}
				verifyRows += e.v.Len()
			}
			return recv
		},
		sent, msgs, true,
	)

	if retryMsgs > 0 {
		p.clock.AddComm(int(retryBytes), int(retryMsgs))
		p.clock.AddCommDelay(backoff)
		m.mu.Lock()
		m.stats.Retried += retryMsgs
		m.mu.Unlock()
	}
	p.clock.AddCompute(costmodel.ScanOps(verifyRows))

	// The delivery that sticks must not alias the sender's live value.
	for j := range in {
		if j != p.rank && in[j].Len() > 0 {
			in[j] = clone(in[j])
		}
	}
	return in
}
