package cluster

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/record"
)

func newMachine(p int) *Machine { return New(p, costmodel.Default()) }

func TestRunExecutesAllProcessors(t *testing.T) {
	m := newMachine(8)
	var ran [8]int32
	m.Run(func(p *Proc) {
		atomic.AddInt32(&ran[p.Rank()], 1)
		if p.P() != 8 {
			t.Errorf("P() = %d, want 8", p.P())
		}
	})
	for i, r := range ran {
		if r != 1 {
			t.Fatalf("processor %d ran %d times", i, r)
		}
	}
}

func TestBroadcast(t *testing.T) {
	m := newMachine(5)
	var got [5]int
	m.Run(func(p *Proc) {
		val := -1
		if p.Rank() == 2 {
			val = 42
		}
		got[p.Rank()] = Broadcast(p, 2, val, 8)
	})
	for i, v := range got {
		if v != 42 {
			t.Fatalf("processor %d got %d, want 42", i, v)
		}
	}
}

func TestGather(t *testing.T) {
	m := newMachine(4)
	var atRoot []int
	m.Run(func(p *Proc) {
		res := Gather(p, 0, p.Rank()*10, 8)
		if p.Rank() == 0 {
			atRoot = res
		} else if res != nil {
			t.Errorf("non-root %d received %v", p.Rank(), res)
		}
	})
	for i, v := range atRoot {
		if v != i*10 {
			t.Fatalf("gathered[%d] = %d, want %d", i, v, i*10)
		}
	}
}

func TestAllGather(t *testing.T) {
	m := newMachine(4)
	var all [4][]int
	m.Run(func(p *Proc) {
		all[p.Rank()] = AllGather(p, p.Rank()+1, 8)
	})
	for r := 0; r < 4; r++ {
		for i, v := range all[r] {
			if v != i+1 {
				t.Fatalf("proc %d allgather[%d] = %d, want %d", r, i, v, i+1)
			}
		}
	}
}

func TestAllToAll(t *testing.T) {
	p := 4
	m := newMachine(p)
	var got [4][]int
	m.Run(func(pr *Proc) {
		out := make([]int, p)
		for k := range out {
			out[k] = pr.Rank()*100 + k // message "from rank to k"
		}
		got[pr.Rank()] = AllToAll(pr, out, func(int) int { return 8 })
	})
	for me := 0; me < p; me++ {
		for j := 0; j < p; j++ {
			if got[me][j] != j*100+me {
				t.Fatalf("proc %d from %d = %d, want %d", me, j, got[me][j], j*100+me)
			}
		}
	}
}

func TestAllToAllTables(t *testing.T) {
	p := 3
	m := newMachine(p)
	var total [3]int64
	m.Run(func(pr *Proc) {
		out := make([]*record.Table, p)
		for k := range out {
			tb := record.New(1, 1)
			tb.Append([]uint32{uint32(pr.Rank())}, int64(k))
			out[k] = tb
		}
		out[(pr.Rank()+1)%p] = nil // nil payloads allowed
		in := AllToAllTables(pr, out)
		var sum int64
		for _, tb := range in {
			if tb != nil {
				sum += tb.TotalMeasure()
			}
		}
		total[pr.Rank()] = sum
	})
	// Each processor k receives measure k from every sender that kept it.
	for me := 0; me < p; me++ {
		var want int64
		for src := 0; src < p; src++ {
			if (src+1)%p != me {
				want += int64(me)
			}
		}
		if total[me] != want {
			t.Fatalf("proc %d total = %d, want %d", me, total[me], want)
		}
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	m := newMachine(6)
	var red [6]int
	var allred [6]int
	m.Run(func(p *Proc) {
		red[p.Rank()] = Reduce(p, 0, p.Rank()+1, 8, func(a, b int) int { return a + b })
		allred[p.Rank()] = AllReduce(p, p.Rank()+1, 8, func(a, b int) int { return a + b })
	})
	if red[0] != 21 {
		t.Fatalf("Reduce at root = %d, want 21", red[0])
	}
	for i := 1; i < 6; i++ {
		if red[i] != 0 {
			t.Fatalf("Reduce at non-root %d = %d, want 0", i, red[i])
		}
	}
	for i, v := range allred {
		if v != 21 {
			t.Fatalf("AllReduce at %d = %d, want 21", i, v)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := newMachine(3)
	m.Run(func(p *Proc) {
		// Processor 1 does much more local work.
		if p.Rank() == 1 {
			p.Clock().AddCompute(12e6) // 1 second at default rate
		}
		Barrier(p)
	})
	// After the barrier all clocks advanced to the slowest.
	for i := 0; i < 3; i++ {
		if s := m.Proc(i).Clock().Seconds(); s < 0.99 {
			t.Fatalf("processor %d clock %v, want >= ~1s", i, s)
		}
	}
	if m.SimSeconds() < 0.99 {
		t.Fatalf("SimSeconds = %v", m.SimSeconds())
	}
}

func TestCommunicationChargesTime(t *testing.T) {
	m := newMachine(2)
	payload := 12_500_000 // 1 second at default 12.5 MB/s
	m.Run(func(p *Proc) {
		out := make([]*record.Table, 2)
		tb := record.New(0, payload/record.RowBytes(0))
		for i := 0; i < payload/record.RowBytes(0); i++ {
			tb.Append(nil, 1)
		}
		out[1-p.Rank()] = tb
		AllToAllTables(p, out)
	})
	for i := 0; i < 2; i++ {
		if c := m.Proc(i).Clock().CommSeconds(); c < 0.9 {
			t.Fatalf("processor %d comm seconds = %v, want ~1", i, c)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	m := newMachine(4)
	m.Run(func(p *Proc) {
		p.SetPhase("merge")
		out := make([]int, 4)
		AllToAll(p, out, func(int) int { return 100 })
		p.SetPhase("")
		Barrier(p)
	})
	st := m.Stats()
	// Each of 4 procs sends 3 off-rank payloads of 100 bytes.
	if st.BytesMoved != 1200 {
		t.Fatalf("BytesMoved = %d, want 1200", st.BytesMoved)
	}
	if st.Messages != 12 {
		t.Fatalf("Messages = %d, want 12", st.Messages)
	}
	if st.ByPhase["merge"] != 1200 {
		t.Fatalf("ByPhase[merge] = %d, want 1200", st.ByPhase["merge"])
	}
	if st.Supersteps != 2 {
		t.Fatalf("Supersteps = %d, want 2", st.Supersteps)
	}
}

func TestLocalDeliveryIsFree(t *testing.T) {
	m := newMachine(1)
	m.Run(func(p *Proc) {
		in := AllToAll(p, []int{7}, func(int) int { return 1 << 20 })
		if in[0] != 7 {
			t.Errorf("self-delivery failed: %v", in)
		}
	})
	if st := m.Stats(); st.BytesMoved != 0 {
		t.Fatalf("BytesMoved = %d, want 0 for self-delivery", st.BytesMoved)
	}
}

func TestPanicPropagatesWithoutDeadlock(t *testing.T) {
	m := newMachine(4)
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(p *Proc) {
			if p.Rank() == 2 {
				panic("boom")
			}
			Barrier(p) // others would deadlock here without abort support
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error from Run")
		}
		if !strings.Contains(err.Error(), "processor 2") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after mid-superstep panic")
	}
}

func TestPanicReleasesOverlappedCommWaiters(t *testing.T) {
	// A processor dying while peers hold unsettled overlapped
	// communication must still release every barrier waiter, and the
	// machine must stay usable for a follow-up run.
	m := newMachine(4)
	done := make(chan error, 1)
	go func() {
		done <- m.Run(func(p *Proc) {
			p.SetOverlap(true)
			out := make([]int, 4)
			for k := range out {
				out[k] = p.Rank()
			}
			AllToAll(p, out, func(int) int { return 1 << 16 })
			if p.Rank() == 1 {
				panic("mid-overlap crash")
			}
			Barrier(p) // overlapped comm is still unsettled here
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error from Run")
		}
		if !strings.Contains(err.Error(), "processor 1") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after panic with unsettled overlapped comm")
	}
	// The barrier must have been reset: a clean run still works.
	if err := m.Run(func(p *Proc) { Barrier(p) }); err != nil {
		t.Fatalf("machine unusable after aborted run: %v", err)
	}
}

func TestProcDisksAreIndependent(t *testing.T) {
	m := newMachine(3)
	m.Run(func(p *Proc) {
		tb := record.New(1, 1)
		tb.Append([]uint32{uint32(p.Rank())}, 1)
		p.Disk().Put("mine", tb)
	})
	for i := 0; i < 3; i++ {
		tb := m.Proc(i).Disk().MustGet("mine")
		if tb.Dim(0, 0) != uint32(i) {
			t.Fatalf("disk %d holds %v", i, tb)
		}
	}
}

// TestAllToAllReceiveSkewCharge is the regression test for the
// h-relation undercharge: a processor that sends nothing but receives
// a large payload must be charged max(sent, recv) = recv, not 0.
func TestAllToAllReceiveSkewCharge(t *testing.T) {
	m := newMachine(2)
	payload := 12_500_000 // 1 second at default 12.5 MB/s
	m.Run(func(p *Proc) {
		out := make([]int, 2)
		if p.Rank() == 0 {
			out[1] = payload
		}
		AllToAll(p, out, func(v int) int { return v })
	})
	// Processor 1 sent 0 bytes and received the full payload: its
	// h-relation charge is the receive side.
	if c := m.Proc(1).Clock().CommSeconds(); c < 0.9 {
		t.Fatalf("receive-skewed processor charged %v comm seconds, want ~1 (max(sent, recv))", c)
	}
	if c := m.Proc(0).Clock().CommSeconds(); c < 0.9 {
		t.Fatalf("sender charged %v comm seconds, want ~1", c)
	}
}

// TestCollectiveAccounting checks every collective's h-relation charge
// against hand-computed per-processor sent/recv byte counts.
func TestCollectiveAccounting(t *testing.T) {
	type charge struct{ sent, recv, msgs int }
	cases := []struct {
		name string
		p    int
		body func(p *Proc)
		want []charge // indexed by rank
	}{
		{
			name: "Broadcast",
			p:    3,
			body: func(p *Proc) {
				v := 0
				if p.Rank() == 1 {
					v = 7
				}
				Broadcast(p, 1, v, 1000)
			},
			want: []charge{{0, 1000, 0}, {2000, 0, 2}, {0, 1000, 0}},
		},
		{
			name: "BroadcastEmptyPayload",
			p:    3,
			body: func(p *Proc) {
				// Degenerate pivot broadcast: the root posts 0 bytes, so
				// nobody is charged, whatever non-roots guessed.
				bytes := 0
				if p.Rank() != 0 {
					bytes = 999
				}
				Broadcast(p, 0, []int(nil), bytes)
			},
			want: []charge{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
		},
		{
			name: "GatherUnevenSizes",
			p:    3,
			body: func(p *Proc) {
				// Sender j contributes 100*(j+1) bytes; the root's receive
				// charge is the sum actually posted, not a guess.
				Gather(p, 0, p.Rank(), 100*(p.Rank()+1))
			},
			want: []charge{{0, 500, 0}, {200, 0, 1}, {300, 0, 1}},
		},
		{
			name: "AllGather",
			p:    4,
			body: func(p *Proc) {
				AllGather(p, p.Rank(), 50)
			},
			want: []charge{{150, 150, 3}, {150, 150, 3}, {150, 150, 3}, {150, 150, 3}},
		},
		{
			name: "AllToAll",
			p:    3,
			body: func(p *Proc) {
				// Wire sizes b[src][dst]; bytesOf is the payload itself.
				b := [3][3]int{
					{0, 100, 200},
					{0, 0, 0},
					{50, 0, 0},
				}
				AllToAll(p, b[p.Rank()][:], func(v int) int { return v })
			},
			want: []charge{{300, 50, 2}, {0, 100, 0}, {50, 200, 1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMachine(tc.p)
			m.Run(tc.body)
			params := m.Params()
			var wantMoved int64
			for r, w := range tc.want {
				h := w.sent
				if w.recv > h {
					h = w.recv
				}
				want := float64(h)/params.NetBandwidth + float64(w.msgs)*params.NetLatency
				got := m.Proc(r).Clock().CommSeconds()
				if diff := got - want; diff > 1e-12 || diff < -1e-12 {
					t.Errorf("proc %d comm seconds = %v, want %v (h=%d msgs=%d)", r, got, want, h, w.msgs)
				}
				wantMoved += int64(w.sent)
			}
			if st := m.Stats(); st.BytesMoved != wantMoved {
				t.Errorf("BytesMoved = %d, want %d", st.BytesMoved, wantMoved)
			}
		})
	}
}

// TestOverlapMasksCommBehindCompute checks the §4.1 post-then-continue
// semantics: with overlap enabled, an AllToAll charge is absorbed by
// subsequent compute, and only the unmasked remainder reaches the
// makespan.
func TestOverlapMasksCommBehindCompute(t *testing.T) {
	run := func(overlap bool) *Machine {
		m := newMachine(2)
		payload := 12_500_000 // 1 second of comm
		m.Run(func(p *Proc) {
			p.SetOverlap(overlap)
			out := make([]int, 2)
			out[1-p.Rank()] = payload
			AllToAll(p, out, func(v int) int { return v })
			p.Clock().AddCompute(2e6) // 2 seconds of local work
			Barrier(p)
		})
		return m
	}
	base, ov := run(false), run(true)
	// Baseline: 1s comm + 2s compute. Overlapped: the transfer hides
	// entirely behind the compute, so ~1s is saved.
	if d := base.SimSeconds() - ov.SimSeconds(); d < 0.9 {
		t.Fatalf("overlap saved %v seconds, want ~1 (base %v, overlap %v)",
			d, base.SimSeconds(), ov.SimSeconds())
	}
	clk := ov.Proc(0).Clock()
	if o := clk.OverlappedCommSeconds(); o < 0.9 {
		t.Fatalf("OverlappedCommSeconds = %v, want ~1", o)
	}
	// The comm component still records the full transfer.
	if c := clk.CommSeconds(); c < 0.9 {
		t.Fatalf("CommSeconds = %v, want ~1 even when masked", c)
	}
	if p := clk.PendingCommSeconds(); p != 0 {
		t.Fatalf("pending comm %v after run, want 0", p)
	}
}

// TestOverlapSettlesAtBarrier: with no local work between the exchange
// and the next barrier there is nothing to hide behind, so overlap mode
// must cost the same as synchronous mode.
func TestOverlapSettlesAtBarrier(t *testing.T) {
	run := func(overlap bool) *Machine {
		m := newMachine(2)
		payload := 12_500_000
		m.Run(func(p *Proc) {
			p.SetOverlap(overlap)
			out := make([]int, 2)
			out[1-p.Rank()] = payload
			AllToAll(p, out, func(v int) int { return v })
			Barrier(p)
		})
		return m
	}
	base, ov := run(false), run(true)
	if d := base.SimSeconds() - ov.SimSeconds(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("no local work, yet overlap changed the makespan by %v", d)
	}
	if o := ov.Proc(0).Clock().OverlappedCommSeconds(); o != 0 {
		t.Fatalf("OverlappedCommSeconds = %v with nothing to overlap", o)
	}
}

// TestOverlapSettledAtRunEnd: in-flight communication when the SPMD
// body returns must still reach the makespan.
func TestOverlapSettledAtRunEnd(t *testing.T) {
	m := newMachine(2)
	payload := 12_500_000
	m.Run(func(p *Proc) {
		p.SetOverlap(true)
		out := make([]int, 2)
		out[1-p.Rank()] = payload
		AllToAll(p, out, func(v int) int { return v })
		// Body ends with the transfer still pending.
	})
	if s := m.SimSeconds(); s < 0.9 {
		t.Fatalf("SimSeconds = %v, want ~1: pending comm must settle at run end", s)
	}
}

// TestOverlapDoesNotApplyToControlCollectives: Broadcast/Gather/
// AllGather results gate the computation that follows, so they stay
// synchronous even in overlapped mode.
func TestOverlapDoesNotApplyToControlCollectives(t *testing.T) {
	m := newMachine(2)
	m.Run(func(p *Proc) {
		p.SetOverlap(true)
		Broadcast(p, 0, 1, 12_500_000)
		AllGather(p, p.Rank(), 12_500_000)
		p.Clock().AddCompute(10e6)
	})
	for r := 0; r < 2; r++ {
		if o := m.Proc(r).Clock().OverlappedCommSeconds(); o != 0 {
			t.Fatalf("proc %d overlapped %v seconds of control-collective comm", r, o)
		}
	}
}

func TestManySuperstepsStress(t *testing.T) {
	m := newMachine(8)
	m.Run(func(p *Proc) {
		for i := 0; i < 200; i++ {
			v := AllReduce(p, 1, 4, func(a, b int) int { return a + b })
			if v != 8 {
				t.Errorf("round %d: AllReduce = %d", i, v)
				return
			}
		}
	})
}
