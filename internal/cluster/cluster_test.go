package cluster

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/record"
)

func newMachine(p int) *Machine { return New(p, costmodel.Default()) }

func TestRunExecutesAllProcessors(t *testing.T) {
	m := newMachine(8)
	var ran [8]int32
	m.Run(func(p *Proc) {
		atomic.AddInt32(&ran[p.Rank()], 1)
		if p.P() != 8 {
			t.Errorf("P() = %d, want 8", p.P())
		}
	})
	for i, r := range ran {
		if r != 1 {
			t.Fatalf("processor %d ran %d times", i, r)
		}
	}
}

func TestBroadcast(t *testing.T) {
	m := newMachine(5)
	var got [5]int
	m.Run(func(p *Proc) {
		val := -1
		if p.Rank() == 2 {
			val = 42
		}
		got[p.Rank()] = Broadcast(p, 2, val, 8)
	})
	for i, v := range got {
		if v != 42 {
			t.Fatalf("processor %d got %d, want 42", i, v)
		}
	}
}

func TestGather(t *testing.T) {
	m := newMachine(4)
	var atRoot []int
	m.Run(func(p *Proc) {
		res := Gather(p, 0, p.Rank()*10, 8)
		if p.Rank() == 0 {
			atRoot = res
		} else if res != nil {
			t.Errorf("non-root %d received %v", p.Rank(), res)
		}
	})
	for i, v := range atRoot {
		if v != i*10 {
			t.Fatalf("gathered[%d] = %d, want %d", i, v, i*10)
		}
	}
}

func TestAllGather(t *testing.T) {
	m := newMachine(4)
	var all [4][]int
	m.Run(func(p *Proc) {
		all[p.Rank()] = AllGather(p, p.Rank()+1, 8)
	})
	for r := 0; r < 4; r++ {
		for i, v := range all[r] {
			if v != i+1 {
				t.Fatalf("proc %d allgather[%d] = %d, want %d", r, i, v, i+1)
			}
		}
	}
}

func TestAllToAll(t *testing.T) {
	p := 4
	m := newMachine(p)
	var got [4][]int
	m.Run(func(pr *Proc) {
		out := make([]int, p)
		for k := range out {
			out[k] = pr.Rank()*100 + k // message "from rank to k"
		}
		got[pr.Rank()] = AllToAll(pr, out, func(int) int { return 8 })
	})
	for me := 0; me < p; me++ {
		for j := 0; j < p; j++ {
			if got[me][j] != j*100+me {
				t.Fatalf("proc %d from %d = %d, want %d", me, j, got[me][j], j*100+me)
			}
		}
	}
}

func TestAllToAllTables(t *testing.T) {
	p := 3
	m := newMachine(p)
	var total [3]int64
	m.Run(func(pr *Proc) {
		out := make([]*record.Table, p)
		for k := range out {
			tb := record.New(1, 1)
			tb.Append([]uint32{uint32(pr.Rank())}, int64(k))
			out[k] = tb
		}
		out[(pr.Rank()+1)%p] = nil // nil payloads allowed
		in := AllToAllTables(pr, out)
		var sum int64
		for _, tb := range in {
			if tb != nil {
				sum += tb.TotalMeasure()
			}
		}
		total[pr.Rank()] = sum
	})
	// Each processor k receives measure k from every sender that kept it.
	for me := 0; me < p; me++ {
		var want int64
		for src := 0; src < p; src++ {
			if (src+1)%p != me {
				want += int64(me)
			}
		}
		if total[me] != want {
			t.Fatalf("proc %d total = %d, want %d", me, total[me], want)
		}
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	m := newMachine(6)
	var red [6]int
	var allred [6]int
	m.Run(func(p *Proc) {
		red[p.Rank()] = Reduce(p, 0, p.Rank()+1, 8, func(a, b int) int { return a + b })
		allred[p.Rank()] = AllReduce(p, p.Rank()+1, 8, func(a, b int) int { return a + b })
	})
	if red[0] != 21 {
		t.Fatalf("Reduce at root = %d, want 21", red[0])
	}
	for i := 1; i < 6; i++ {
		if red[i] != 0 {
			t.Fatalf("Reduce at non-root %d = %d, want 0", i, red[i])
		}
	}
	for i, v := range allred {
		if v != 21 {
			t.Fatalf("AllReduce at %d = %d, want 21", i, v)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := newMachine(3)
	m.Run(func(p *Proc) {
		// Processor 1 does much more local work.
		if p.Rank() == 1 {
			p.Clock().AddCompute(12e6) // 1 second at default rate
		}
		Barrier(p)
	})
	// After the barrier all clocks advanced to the slowest.
	for i := 0; i < 3; i++ {
		if s := m.Proc(i).Clock().Seconds(); s < 0.99 {
			t.Fatalf("processor %d clock %v, want >= ~1s", i, s)
		}
	}
	if m.SimSeconds() < 0.99 {
		t.Fatalf("SimSeconds = %v", m.SimSeconds())
	}
}

func TestCommunicationChargesTime(t *testing.T) {
	m := newMachine(2)
	payload := 12_500_000 // 1 second at default 12.5 MB/s
	m.Run(func(p *Proc) {
		out := make([]*record.Table, 2)
		tb := record.New(0, payload/record.RowBytes(0))
		for i := 0; i < payload/record.RowBytes(0); i++ {
			tb.Append(nil, 1)
		}
		out[1-p.Rank()] = tb
		AllToAllTables(p, out)
	})
	for i := 0; i < 2; i++ {
		if c := m.Proc(i).Clock().CommSeconds(); c < 0.9 {
			t.Fatalf("processor %d comm seconds = %v, want ~1", i, c)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	m := newMachine(4)
	m.Run(func(p *Proc) {
		p.SetPhase("merge")
		out := make([]int, 4)
		AllToAll(p, out, func(int) int { return 100 })
		p.SetPhase("")
		Barrier(p)
	})
	st := m.Stats()
	// Each of 4 procs sends 3 off-rank payloads of 100 bytes.
	if st.BytesMoved != 1200 {
		t.Fatalf("BytesMoved = %d, want 1200", st.BytesMoved)
	}
	if st.Messages != 12 {
		t.Fatalf("Messages = %d, want 12", st.Messages)
	}
	if st.ByPhase["merge"] != 1200 {
		t.Fatalf("ByPhase[merge] = %d, want 1200", st.ByPhase["merge"])
	}
	if st.Supersteps != 2 {
		t.Fatalf("Supersteps = %d, want 2", st.Supersteps)
	}
}

func TestLocalDeliveryIsFree(t *testing.T) {
	m := newMachine(1)
	m.Run(func(p *Proc) {
		in := AllToAll(p, []int{7}, func(int) int { return 1 << 20 })
		if in[0] != 7 {
			t.Errorf("self-delivery failed: %v", in)
		}
	})
	if st := m.Stats(); st.BytesMoved != 0 {
		t.Fatalf("BytesMoved = %d, want 0 for self-delivery", st.BytesMoved)
	}
}

func TestPanicPropagatesWithoutDeadlock(t *testing.T) {
	m := newMachine(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from Run")
		}
		if !strings.Contains(r.(error).Error(), "processor 2") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		Barrier(p) // others would deadlock here without abort support
	})
}

func TestProcDisksAreIndependent(t *testing.T) {
	m := newMachine(3)
	m.Run(func(p *Proc) {
		tb := record.New(1, 1)
		tb.Append([]uint32{uint32(p.Rank())}, 1)
		p.Disk().Put("mine", tb)
	})
	for i := 0; i < 3; i++ {
		tb := m.Proc(i).Disk().MustGet("mine")
		if tb.Dim(0, 0) != uint32(i) {
			t.Fatalf("disk %d holds %v", i, tb)
		}
	}
}

func TestManySuperstepsStress(t *testing.T) {
	m := newMachine(8)
	m.Run(func(p *Proc) {
		for i := 0; i < 200; i++ {
			v := AllReduce(p, 1, 4, func(a, b int) int { return a + b })
			if v != 8 {
				t.Errorf("round %d: AllReduce = %d", i, v)
				return
			}
		}
	})
}
