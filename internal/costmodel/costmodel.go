// Package costmodel provides the calibrated performance model of the
// paper's experimental platform: a 16-node Beowulf cluster of 1.8 GHz
// Intel Xeon nodes with 512 MB RAM, 7200 RPM IDE disks, and a 100 Mb/s
// Ethernet switch (IPDPS'03, §4).
//
// The shared-nothing machine in internal/cluster executes the real
// algorithm on real goroutines, but the paper's figures are about a
// 2003 cluster where communication is extremely slow relative to
// computation. Each simulated processor therefore carries a Clock that
// accumulates modelled CPU, disk, and network seconds; collectives
// synchronize clocks in BSP fashion. Figures are plotted in these
// simulated seconds, so shapes (who wins, where crossovers fall) match
// the paper even though the host machine is modern hardware.
package costmodel

import "math"

// Params holds the machine constants of the modelled cluster.
type Params struct {
	// CPURate is the number of abstract record operations the CPU
	// retires per second. One comparison-and-move during sorting, one
	// aggregation step during a scan, etc., each cost O(1) record
	// operations (see the *Cost helpers).
	CPURate float64

	// DiskBandwidth is the sequential disk transfer rate in bytes/s.
	// 7200 RPM IDE drives of the era sustain roughly 25 MB/s.
	DiskBandwidth float64

	// DiskAccessTime is the fixed cost of initiating a file-level
	// operation (seek + rotational latency), in seconds.
	DiskAccessTime float64

	// BlockSize is the disk block transfer size B in bytes.
	BlockSize int

	// MemoryBytes is the per-node memory budget m available to
	// external-memory algorithms, in bytes.
	MemoryBytes int

	// NetBandwidth is the per-node link bandwidth in bytes/s. The
	// paper's switch is 100 Mb/s Ethernet: ~12.5 MB/s per node, and the
	// authors note communication is "extremely slow in comparison to
	// computation speed".
	NetBandwidth float64

	// NetLatency is the per-message software + wire latency in seconds
	// (MPI/LAM over 100 Mb Ethernet: ~100 us).
	NetLatency float64
}

// Default returns the parameters calibrated to the paper's cluster.
func Default() Params {
	return Params{
		// ~1800 cycles per record operation on the 1.8 GHz Xeon:
		// calibrated so the sequential Pipesort baseline approaches the
		// paper's implied tens-of-microseconds per output row (n=2M
		// builds a 227M-row cube in hours sequentially, per Figure 5's
		// speedup curves and the 2003 C++/LEDA implementation).
		CPURate:       1e6,
		DiskBandwidth: 25e6,
		// Raw seek+rotation is ~10ms, but the OS page cache absorbs
		// most small-file latencies; 2ms per file-level operation
		// matches streamed-write behaviour on the paper's IDE disks.
		DiskAccessTime: 0.002,
		BlockSize:      64 << 10,
		MemoryBytes:    256 << 20, // half of 512 MB usable for sort runs
		NetBandwidth:   12.5e6,
		NetLatency:     100e-6,
	}
}

// Modern returns parameters approximating a current cluster with NVMe
// storage and 10 GbE, used by ablation benches to show how the
// balance-threshold and schedule-tree tradeoffs shift when
// communication is no longer the bottleneck.
func Modern() Params {
	return Params{
		CPURate:        400e6,
		DiskBandwidth:  2e9,
		DiskAccessTime: 0.0001,
		BlockSize:      256 << 10,
		MemoryBytes:    8 << 30,
		NetBandwidth:   1.25e9,
		NetLatency:     10e-6,
	}
}

// SortOps returns the modelled record-operation count of comparison
// sorting n records: n * ceil(log2 n).
func SortOps(n int) float64 {
	if n <= 1 {
		return float64(n)
	}
	return float64(n) * math.Ceil(math.Log2(float64(n)))
}

// MergeOps returns the modelled record-operation count of a k-way merge
// of n total records: n * ceil(log2 k).
func MergeOps(n, k int) float64 {
	if n <= 0 {
		return 0
	}
	if k <= 2 {
		return float64(n)
	}
	return float64(n) * math.Ceil(math.Log2(float64(k)))
}

// ScanOps returns the modelled record-operation count of scanning and
// aggregating n records.
func ScanOps(n int) float64 { return float64(n) }

// SearchOps returns the modelled record-operation count of one binary
// search over n sorted records: ceil(log2(n+1)) comparisons.
func SearchOps(n int) float64 {
	if n <= 0 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n) + 1))
}

// Clock accumulates the simulated elapsed time of one processor. The
// zero value is a clock at time zero. Clock is not safe for concurrent
// use; each simulated processor owns its clock exclusively and the
// cluster package synchronizes them only at collectives.
//
// Besides the synchronous AddComm charge, the clock has an
// overlappable-communication lane implementing the paper's §4.1
// optimization: AddCommOverlap posts communication time that runs
// concurrently with subsequent CPU and disk work. Each later
// AddCompute/AddDisk drains the pending transfer at the rate of the
// work performed, and the drained portion never reaches the elapsed
// time — it is masked, and recorded in OverlappedCommSeconds. Whatever
// is still in flight when SettleComm is called (the next barrier) is
// charged as ordinary elapsed time. commSeconds always records the
// full transfer time, masked or not, so CommSeconds remains the upper
// bound of the optimization.
type Clock struct {
	p       Params
	seconds float64

	// Component breakdown, for the figures and for the §4.1
	// overlap-analysis metric.
	cpuSeconds  float64
	diskSeconds float64
	commSeconds float64

	// Overlappable-communication lane state.
	pendingComm    float64
	overlappedComm float64

	// slowdown multiplies local (CPU and disk) work time; > 1 models a
	// straggling processor. Zero means no slowdown (factor 1).
	slowdown float64
}

// NewClock returns a clock at time zero using the given machine
// parameters.
func NewClock(p Params) *Clock { return &Clock{p: p} }

// Params returns the machine parameters the clock charges against.
func (c *Clock) Params() Params { return c.p }

// Seconds returns the simulated time elapsed on this processor.
func (c *Clock) Seconds() float64 { return c.seconds }

// CPUSeconds returns the accumulated compute component.
func (c *Clock) CPUSeconds() float64 { return c.cpuSeconds }

// DiskSeconds returns the accumulated disk component.
func (c *Clock) DiskSeconds() float64 { return c.diskSeconds }

// CommSeconds returns the accumulated communication component,
// including any communication that was overlapped with computation.
func (c *Clock) CommSeconds() float64 { return c.commSeconds }

// OverlappedCommSeconds returns the communication time that was masked
// by concurrent CPU or disk work via the overlap lane.
func (c *Clock) OverlappedCommSeconds() float64 { return c.overlappedComm }

// PendingCommSeconds returns the in-flight overlappable communication
// not yet drained or settled.
func (c *Clock) PendingCommSeconds() float64 { return c.pendingComm }

// drain overlaps dt seconds of local work with any in-flight
// communication: up to dt seconds of the pending transfer complete
// concurrently and are masked.
func (c *Clock) drain(dt float64) {
	if c.pendingComm <= 0 {
		return
	}
	ov := dt
	if c.pendingComm < ov {
		ov = c.pendingComm
	}
	c.pendingComm -= ov
	c.overlappedComm += ov
}

// SetSlowdown sets the straggler factor applied to subsequent local
// (CPU and disk) work; factor 1 restores full speed. Communication is
// unaffected: the network link is shared, only the node is degraded.
func (c *Clock) SetSlowdown(factor float64) {
	if factor < 1 {
		panic("costmodel: slowdown factor < 1")
	}
	c.slowdown = factor
}

func (c *Clock) slow() float64 {
	if c.slowdown > 1 {
		return c.slowdown
	}
	return 1
}

// AddCompute charges ops abstract record operations of CPU time.
func (c *Clock) AddCompute(ops float64) {
	dt := ops / c.p.CPURate * c.slow()
	c.seconds += dt
	c.cpuSeconds += dt
	c.drain(dt)
}

// AddDisk charges a sequential transfer of the given number of bytes,
// rounded up to whole blocks, plus one access latency.
func (c *Clock) AddDisk(bytes int) {
	if bytes < 0 {
		panic("costmodel: negative disk transfer")
	}
	blocks := (bytes + c.p.BlockSize - 1) / c.p.BlockSize
	dt := (c.p.DiskAccessTime + float64(blocks*c.p.BlockSize)/c.p.DiskBandwidth) * c.slow()
	c.seconds += dt
	c.diskSeconds += dt
	c.drain(dt)
}

// AddComm charges h-relation communication time for a superstep in
// which this processor's maximum of sent and received bytes is h and
// msgs point-to-point messages were involved.
func (c *Clock) AddComm(h int, msgs int) {
	dt := float64(h)/c.p.NetBandwidth + float64(msgs)*c.p.NetLatency
	c.seconds += dt
	c.commSeconds += dt
}

// AddCommOverlap posts the same charge as AddComm on the overlap lane:
// the transfer proceeds concurrently with subsequent AddCompute and
// AddDisk work until SettleComm.
func (c *Clock) AddCommOverlap(h int, msgs int) {
	dt := float64(h)/c.p.NetBandwidth + float64(msgs)*c.p.NetLatency
	c.commSeconds += dt
	c.pendingComm += dt
}

// AddCommDelay charges dt seconds of pure communication waiting time
// (retransmission backoff, failure-detection timeouts). The processor
// is blocked on the network, so the time lands on both the elapsed and
// communication components.
func (c *Clock) AddCommDelay(dt float64) {
	if dt < 0 {
		panic("costmodel: negative comm delay")
	}
	c.seconds += dt
	c.commSeconds += dt
}

// SettleComm blocks on any in-flight overlappable communication,
// charging the unmasked remainder as elapsed time. Collectives call it
// before every barrier: data posted in a superstep must have fully
// arrived before the next superstep can proceed.
func (c *Clock) SettleComm() {
	c.seconds += c.pendingComm
	c.pendingComm = 0
}

// AdvanceTo moves the clock forward to time t (a barrier
// synchronization); it never moves backwards. The waiting time is not
// attributed to any component.
func (c *Clock) AdvanceTo(t float64) {
	if t > c.seconds {
		c.seconds = t
	}
}
