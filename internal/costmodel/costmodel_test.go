package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSortOps(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{8, 24},
		{9, 36}, // ceil(log2 9) = 4
	}
	for _, c := range cases {
		if got := SortOps(c.n); got != c.want {
			t.Errorf("SortOps(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestMergeOps(t *testing.T) {
	if got := MergeOps(100, 2); got != 100 {
		t.Errorf("MergeOps(100,2) = %v, want 100", got)
	}
	if got := MergeOps(100, 8); got != 300 {
		t.Errorf("MergeOps(100,8) = %v, want 300", got)
	}
	if got := MergeOps(0, 16); got != 0 {
		t.Errorf("MergeOps(0,16) = %v, want 0", got)
	}
}

func TestClockComponents(t *testing.T) {
	p := Default()
	c := NewClock(p)
	c.AddCompute(p.CPURate) // exactly 1 second of CPU
	if math.Abs(c.CPUSeconds()-1) > 1e-12 {
		t.Fatalf("CPUSeconds = %v, want 1", c.CPUSeconds())
	}
	c.AddDisk(p.BlockSize) // one block
	wantDisk := p.DiskAccessTime + float64(p.BlockSize)/p.DiskBandwidth
	if math.Abs(c.DiskSeconds()-wantDisk) > 1e-12 {
		t.Fatalf("DiskSeconds = %v, want %v", c.DiskSeconds(), wantDisk)
	}
	c.AddComm(int(p.NetBandwidth), 0) // 1 second of wire time
	if math.Abs(c.CommSeconds()-1) > 1e-12 {
		t.Fatalf("CommSeconds = %v, want 1", c.CommSeconds())
	}
	sum := c.CPUSeconds() + c.DiskSeconds() + c.CommSeconds()
	if math.Abs(c.Seconds()-sum) > 1e-12 {
		t.Fatalf("Seconds = %v, want component sum %v", c.Seconds(), sum)
	}
}

func TestOverlapLaneMasksCommBehindWork(t *testing.T) {
	p := Default()
	c := NewClock(p)
	c.AddCommOverlap(int(p.NetBandwidth), 0) // 1 second posted, in flight
	if c.Seconds() != 0 {
		t.Fatalf("posted comm advanced the clock to %v", c.Seconds())
	}
	if math.Abs(c.CommSeconds()-1) > 1e-12 {
		t.Fatalf("CommSeconds = %v, want full 1s even while pending", c.CommSeconds())
	}
	c.AddCompute(p.CPURate / 4) // 0.25 s of work drains 0.25 s of comm
	if math.Abs(c.OverlappedCommSeconds()-0.25) > 1e-12 {
		t.Fatalf("OverlappedCommSeconds = %v, want 0.25", c.OverlappedCommSeconds())
	}
	if math.Abs(c.PendingCommSeconds()-0.75) > 1e-12 {
		t.Fatalf("PendingCommSeconds = %v, want 0.75", c.PendingCommSeconds())
	}
	c.SettleComm()                         // residual 0.75 s becomes elapsed time
	if math.Abs(c.Seconds()-1.0) > 1e-12 { // 0.25 compute + 0.75 residual
		t.Fatalf("Seconds = %v, want 1.0", c.Seconds())
	}
	if c.PendingCommSeconds() != 0 {
		t.Fatalf("pending %v after settle", c.PendingCommSeconds())
	}
	// Total elapsed is 0.25 s cheaper than the synchronous 1.25 s.
	if math.Abs(c.OverlappedCommSeconds()-0.25) > 1e-12 {
		t.Fatalf("settle changed the overlapped total to %v", c.OverlappedCommSeconds())
	}
}

func TestOverlapLaneFullyMasked(t *testing.T) {
	p := Default()
	c := NewClock(p)
	c.AddCommOverlap(int(p.NetBandwidth)/2, 0) // 0.5 s in flight
	c.AddDisk(64 << 20)                        // plenty of disk time
	c.SettleComm()
	if math.Abs(c.OverlappedCommSeconds()-0.5) > 1e-12 {
		t.Fatalf("OverlappedCommSeconds = %v, want 0.5", c.OverlappedCommSeconds())
	}
	// Fully masked: elapsed time is the disk time alone.
	if math.Abs(c.Seconds()-c.DiskSeconds()) > 1e-12 {
		t.Fatalf("Seconds = %v, want disk-only %v", c.Seconds(), c.DiskSeconds())
	}
}

func TestClockDiskRoundsUpToBlocks(t *testing.T) {
	p := Default()
	c := NewClock(p)
	c.AddDisk(1) // one byte still moves one block
	want := p.DiskAccessTime + float64(p.BlockSize)/p.DiskBandwidth
	if math.Abs(c.Seconds()-want) > 1e-12 {
		t.Fatalf("Seconds = %v, want %v", c.Seconds(), want)
	}
}

func TestAdvanceToNeverGoesBack(t *testing.T) {
	c := NewClock(Default())
	c.AddCompute(1e6)
	before := c.Seconds()
	c.AdvanceTo(before / 2)
	if c.Seconds() != before {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	c.AdvanceTo(before * 2)
	if c.Seconds() != before*2 {
		t.Fatalf("AdvanceTo did not advance: %v", c.Seconds())
	}
}

func TestClockMonotone(t *testing.T) {
	f := func(ops uint16, bytes uint16, h uint16) bool {
		c := NewClock(Default())
		prev := c.Seconds()
		c.AddCompute(float64(ops))
		if c.Seconds() < prev {
			return false
		}
		prev = c.Seconds()
		c.AddDisk(int(bytes))
		if c.Seconds() < prev {
			return false
		}
		prev = c.Seconds()
		c.AddComm(int(h), 1)
		return c.Seconds() >= prev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModernDominatesDefault(t *testing.T) {
	d, m := Default(), Modern()
	if m.CPURate <= d.CPURate || m.DiskBandwidth <= d.DiskBandwidth ||
		m.NetBandwidth <= d.NetBandwidth || m.DiskAccessTime >= d.DiskAccessTime ||
		m.NetLatency >= d.NetLatency {
		t.Fatal("Modern params must dominate the 2003 defaults componentwise")
	}
}

func TestDefaultCalibration(t *testing.T) {
	// The calibration anchor: ~39 us of CPU per record operation-heavy
	// output row implies a CPU rate of a few million record ops/s on
	// the 1.8 GHz Xeon; sanity-check the order of magnitude so an
	// accidental edit doesn't silently shift every figure.
	d := Default()
	if d.CPURate < 5e5 || d.CPURate > 5e7 {
		t.Fatalf("CPURate %v outside calibrated order of magnitude", d.CPURate)
	}
	if d.NetBandwidth != 12.5e6 {
		t.Fatalf("NetBandwidth %v; the paper's switch is 100 Mb/s", d.NetBandwidth)
	}
}
