// Package replica implements the replicated serving tier that splits
// the read path off the ingest leader: N cube replicas, each
// bootstrapped from a persist-v2 snapshot of the leader and advanced
// by applying the leader's committed ingest batches in commit order.
// Because the delta pipeline is deterministic and snapshots re-scatter
// slices on the leader's partition boundaries, a replica that has
// applied batch k is byte-identical to the leader as of batch k — same
// view slices, same per-view version counters — so any replica within
// the configured staleness bound can answer any read the leader could.
//
// The design follows the main-memory cluster OLAP playbook (Hespe et
// al., see PAPERS.md): one writer, many readers, snapshot + delta
// shipping, bounded-staleness reads. The leader never blocks on
// replica progress: committing a batch is an append to the delta log
// and a wakeup; per-replica shipping goroutines drain the log at their
// own pace. Replica failures reuse the faults machinery from the
// build's fault model — a seeded plan crashes a replica at an exact
// batch sequence, and the crashed replica re-bootstraps from the
// latest snapshot plus the delta log, deterministically.
//
// On top of replication the package carries the serving path's failure
// policy: reads are handed out as leases whose release reports the
// outcome, per-replica circuit breakers (see breaker.go) steer routing
// away from replicas that keep failing reads, and a serving-time fault
// plan (faults.ServePlan) injects deterministic query-time crashes,
// stragglers, and delta-ship stalls for chaos testing.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/colstore"
	"repro/internal/faults"
	"repro/internal/record"
)

// ErrClosed is returned by Acquire and WaitCaughtUp after Close.
var ErrClosed = errors.New("replica: group closed")

// ErrAllFailed is returned by Acquire when every replica has been
// permanently retired: no amount of waiting will produce an eligible
// replica, so the caller should fail over to the leader instead of
// blocking out its deadline.
var ErrAllFailed = errors.New("replica: every replica permanently failed")

// ServeCrashError reports that the replica picked for a read was
// killed by an injected serving-time crash (faults.ServePlan) while
// the read was being dispatched. The read never executed; the caller
// should fail over to another replica.
type ServeCrashError struct {
	// Replica is the crashed replica's index; Query the per-replica
	// read ordinal the crash was keyed on.
	Replica int
	Query   uint64
}

func (e *ServeCrashError) Error() string {
	return fmt.Sprintf("replica: replica %d crashed at its query %d (injected)", e.Replica, e.Query)
}

// Batch is one committed leader ingest batch in the delta log. Rows
// are in the cube's internal dimension order, exactly as the leader
// applied them.
type Batch struct {
	Seq  uint64
	Rows [][]uint32
	Meas []int64
	// Bytes is the modelled on-wire size of the batch, fixed at Commit:
	// the columnar compressed image when the columnar store is enabled,
	// the row-format size otherwise.
	Bytes int
}

// Node is one replica's serving state: a cube bootstrapped from a
// leader snapshot, advanced by applying shipped batches. Apply must be
// deterministic — applying the same batches in the same order to the
// same snapshot yields the same node state.
type Node interface {
	Apply(rows [][]uint32, meas []int64) error
}

// Config configures a replica group.
type Config struct {
	// Replicas is the number of read replicas (>= 1).
	Replicas int
	// MaxLag is the staleness bound in committed batches: a replica is
	// eligible to serve only while leaderSeq - applied <= MaxLag. 0
	// means replicas serve only when fully caught up.
	MaxLag uint64
	// Bootstrap builds a fresh Node from a leader snapshot. It is
	// called once per replica at group creation and again whenever a
	// crashed replica re-bootstraps.
	Bootstrap func(snapshot []byte) (Node, error)
	// Faults, when non-nil, injects deterministic replica crashes:
	// Crash.Rank is the replica index and Crash.Superstep the batch
	// sequence the replica dies at (just before applying it). A crash
	// with Superstep 0 and Dimension -1 fires before the replica's
	// first apply. Payload faults and stragglers in the plan are
	// ignored — replication ships committed state, not h-relations.
	Faults *faults.Plan
	// ServeFaults, when non-nil, injects deterministic serving-time
	// faults: replica crashes keyed on per-replica read ordinals
	// (surfaced to Acquire as *ServeCrashError), query stragglers
	// (surfaced as Lease.Delay), and delta-ship stalls (wall-clock
	// delays in the shipping loop).
	ServeFaults *faults.ServePlan
	// Breaker configures the per-replica circuit breakers (zero value
	// = defaults; Threshold < 0 disables them).
	Breaker BreakerConfig
	// BeforeApply, when non-nil, runs before a replica applies a batch
	// — an instrumentation hook for modelling slow replicas in tests.
	BeforeApply func(replica int, seq uint64)
}

// ReplicaStat is one replica's progress and routing counters.
type ReplicaStat struct {
	// Node is the replica's current serving node (nil while down). It
	// is replaced wholesale by a re-bootstrap.
	Node Node
	// State is "live" (eligible), "catchingup" (running but beyond the
	// staleness bound), "down" (crashed, awaiting re-bootstrap), or
	// "failed" (bootstrap or re-apply failed permanently, or retired
	// by Retire).
	State string
	// Breaker is the replica's circuit-breaker state: "closed",
	// "open", "half-open", or "disabled".
	Breaker string
	// Applied is the last batch sequence applied; Lag is leaderSeq -
	// Applied.
	Applied uint64
	Lag     uint64
	// Inflight is the number of reads currently routed here.
	Inflight int
	// Routed counts reads ever routed here (survives re-bootstraps).
	Routed int64
	// Bootstraps counts node constructions (1 for a replica that never
	// crashed); Crashes counts failures, injected or real.
	Bootstraps int64
	Crashes    int64
}

// Stats is a point-in-time snapshot of the group.
type Stats struct {
	// LeaderSeq is the last committed batch sequence; SnapSeq the
	// sequence of the current bootstrap snapshot; LogLen the number of
	// retained delta-log entries.
	LeaderSeq uint64
	SnapSeq   uint64
	LogLen    int
	// Routed counts reads routed across all replicas; Waits counts
	// Acquire calls that had to block because no replica was within
	// the staleness bound (or breaker-admitted).
	Routed int64
	Waits  int64
	// SnapshotShipBytes totals the snapshot bytes shipped to bootstrap
	// replicas (initial bootstraps and crash-recovery re-bootstraps);
	// DeltaShipBytes totals the modelled on-wire bytes of shipped delta
	// batches. Both shrink under the columnar store: snapshots are
	// persist-v3 images and delta batches ship compressed.
	SnapshotShipBytes int64
	DeltaShipBytes    int64
	// BreakerOpens, BreakerProbes, and BreakerCloses total the
	// circuit-breaker transitions across all replicas.
	BreakerOpens  int64
	BreakerProbes int64
	BreakerCloses int64
	// Replicas has one entry per replica, by index.
	Replicas []ReplicaStat
}

type rep struct {
	node        Node
	applied     uint64
	down        bool
	failed      bool
	inflight    int
	routed      int64
	qseq        uint64 // per-replica routed-read ordinal (serve-fault key)
	bootstraps  int64
	crashes     int64
	lastFailSeq uint64 // batch whose Apply failed (0 = none): two failures in a row => failed
	br          *breaker
}

// Group manages N replicas: the delta log, per-replica shipping
// goroutines, bounded-staleness routing, breaker-gated leases, and
// crash/catch-up. All methods are safe for concurrent use. The leader
// side (Commit, SetSnapshot) never blocks on replica progress.
type Group struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup

	closed   bool
	closedCh chan struct{}

	// log holds committed batches not yet compacted, ascending and
	// contiguous in Seq.
	log       []Batch
	leaderSeq uint64
	snapshot  []byte
	snapSeq   uint64

	reps            []*rep
	crashFired      []bool
	serveCrashFired []bool

	routed int64
	waits  int64

	// Modelled replication traffic: snapshot bytes shipped to bootstrap
	// replicas (initial and re-bootstraps) and delta-batch bytes shipped
	// to advance them.
	snapShipBytes  int64
	deltaShipBytes int64
}

// Lease is one read's reservation on a replica. Release must be called
// exactly when the read completes; its outcome drives the replica's
// circuit breaker.
type Lease struct {
	g     *Group
	idx   int
	node  Node
	delay time.Duration
	once  sync.Once
}

// Node returns the leased replica's serving node.
func (l *Lease) Node() Node { return l.node }

// Replica returns the leased replica's index.
func (l *Lease) Replica() int { return l.idx }

// Delay returns the injected straggler delay for this read (0 without
// serve faults). The caller is expected to sleep it before executing,
// modelling a slow replica.
func (l *Lease) Delay() time.Duration { return l.delay }

// Release returns the lease. failed reports whether the read failed in
// a way that indicts the replica (crash, execution error) — overload
// and caller-side deadline expiry are not the replica's fault and must
// be released with failed=false. Release is idempotent.
func (l *Lease) Release(failed bool) {
	l.once.Do(func() {
		g := l.g
		g.mu.Lock()
		r := g.reps[l.idx]
		r.inflight--
		r.br.done(failed, time.Now())
		g.cond.Broadcast()
		g.mu.Unlock()
	})
}

// New bootstraps cfg.Replicas replicas from the snapshot (taken at
// batch sequence snapSeq) and starts their shipping goroutines.
func New(cfg Config, snapshot []byte, snapSeq uint64) (*Group, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("replica: group needs at least one replica, got %d", cfg.Replicas)
	}
	if cfg.Bootstrap == nil {
		return nil, fmt.Errorf("replica: nil Bootstrap")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Replicas); err != nil {
			return nil, err
		}
	}
	if cfg.ServeFaults != nil {
		if err := cfg.ServeFaults.Validate(cfg.Replicas); err != nil {
			return nil, err
		}
	}
	g := &Group{
		cfg:       cfg,
		snapshot:  snapshot,
		snapSeq:   snapSeq,
		leaderSeq: snapSeq,
		closedCh:  make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	if cfg.Faults != nil {
		g.crashFired = make([]bool, len(cfg.Faults.Crashes))
	}
	if cfg.ServeFaults != nil {
		g.serveCrashFired = make([]bool, len(cfg.ServeFaults.Crashes))
	}
	for i := 0; i < cfg.Replicas; i++ {
		node, err := cfg.Bootstrap(snapshot)
		if err != nil {
			return nil, fmt.Errorf("replica %d: bootstrap: %w", i, err)
		}
		g.snapShipBytes += int64(len(snapshot))
		g.reps = append(g.reps, &rep{node: node, applied: snapSeq, bootstraps: 1, br: newBreaker(cfg.Breaker)})
	}
	for i := range g.reps {
		g.wg.Add(1)
		go g.ship(i)
	}
	return g, nil
}

// Commit appends one committed leader batch to the delta log and wakes
// the shippers. It never blocks on replica progress — the leader's
// ingest path returns immediately no matter how far behind any
// replica is. Returns the batch's assigned sequence.
func (g *Group) Commit(rows [][]uint32, meas []int64) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.leaderSeq++
	g.log = append(g.log, Batch{Seq: g.leaderSeq, Rows: rows, Meas: meas, Bytes: batchBytes(rows, meas)})
	g.cond.Broadcast()
	return g.leaderSeq
}

// batchBytes models one delta batch's on-wire size: the columnar
// compressed image when the columnar store is enabled, the row-format
// size otherwise. Deterministic — the same rows always cost the same
// bytes, so ship-byte totals are reproducible across runs.
func batchBytes(rows [][]uint32, meas []int64) int {
	if len(rows) == 0 {
		return 0
	}
	t := record.New(len(rows[0]), len(rows))
	for i, r := range rows {
		t.Append(r, meas[i])
	}
	if colstore.Enabled() {
		return colstore.Encode(t).Bytes()
	}
	return t.Bytes()
}

// SetSnapshot installs a fresh bootstrap snapshot taken at batch
// sequence seq and compacts the delta log: entries every running
// replica has already applied (and that the snapshot supersedes for
// re-bootstraps) are dropped. Down replicas restart from this snapshot
// instead of replaying from the beginning.
func (g *Group) SetSnapshot(snapshot []byte, seq uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if seq < g.snapSeq {
		return
	}
	g.snapshot, g.snapSeq = snapshot, seq
	min := seq
	for _, r := range g.reps {
		if !r.down && !r.failed && r.node != nil && r.applied < min {
			min = r.applied
		}
	}
	drop := 0
	for drop < len(g.log) && g.log[drop].Seq <= min {
		drop++
	}
	g.log = g.log[drop:]
}

// LeaderSeq returns the last committed batch sequence.
func (g *Group) LeaderSeq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderSeq
}

// Crash takes replica i down as if it had failed. Its shipper
// re-bootstraps it from the latest snapshot and replays the delta log.
func (g *Group) Crash(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.reps) {
		return fmt.Errorf("replica: index %d out of range 0..%d", i, len(g.reps)-1)
	}
	r := g.reps[i]
	r.down, r.node = true, nil
	r.crashes++
	g.cond.Broadcast()
	return nil
}

// Retire permanently removes replica i from service: no re-bootstrap,
// no routing, as if its node were irrecoverably failed. In-flight
// reads drain normally. Use it to take a replica out for maintenance
// or after an operator decides it is beyond repair.
func (g *Group) Retire(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.reps) {
		return fmt.Errorf("replica: index %d out of range 0..%d", i, len(g.reps)-1)
	}
	g.reps[i].failed = true
	g.cond.Broadcast()
	return nil
}

// tryPickLocked routes one read: it returns a lease on the picked
// replica, a *ServeCrashError when the pick fired an injected
// serving-time crash (the replica is now down), or (nil, nil) when no
// replica is currently admittable.
func (g *Group) tryPickLocked(affinity uint64, avoid []bool) (*Lease, error) {
	now := time.Now()
	i := g.pickLocked(affinity, avoid, now)
	if i < 0 {
		return nil, nil
	}
	r := g.reps[i]
	r.qseq++
	if p := g.cfg.ServeFaults; p != nil {
		if k := p.CrashIndex(i, r.qseq, g.serveCrashFired); k >= 0 {
			// The replica dies as the read is dispatched: the read fails
			// over, the shipper re-bootstraps the replica, and the crash
			// counts against its breaker (a crash-looping replica should
			// end up breaker-open between re-bootstraps).
			g.serveCrashFired[k] = true
			r.down, r.node = true, nil
			r.crashes++
			r.br.done(true, now)
			g.cond.Broadcast()
			return nil, &ServeCrashError{Replica: i, Query: r.qseq}
		}
	}
	r.br.route()
	r.inflight++
	r.routed++
	g.routed++
	l := &Lease{g: g, idx: i, node: r.node}
	if p := g.cfg.ServeFaults; p != nil {
		if d := p.StragglerDelay(i, r.qseq); d > 0 {
			l.delay = time.Duration(d * float64(time.Second))
		}
	}
	return l, nil
}

// Acquire picks the serving replica for one read and leases a slot on
// it: among replicas within the staleness bound whose breakers admit
// reads, the one with the fewest in-flight reads (ties to fewest total
// routed, then lowest index), skipping any in the avoid set (indexed
// by replica; nil = none — failover retries pass the replicas they
// already tried). A nonzero affinity prefers the read's "home" replica
// (affinity mod replicas) when it is eligible and not noticeably more
// loaded, keeping repeat queries on the replica whose result cache
// already holds them.
//
// When no replica is admittable the call blocks until one catches up
// within the bound (or a breaker cooldown expires) or ctx expires —
// that wait is the bounded-staleness guarantee. When every replica is
// permanently failed it returns ErrAllFailed immediately instead of
// blocking, so callers can fail over to the leader. An injected
// serving-time crash on the picked replica returns *ServeCrashError.
func (g *Group) Acquire(ctx context.Context, affinity uint64, avoid []bool) (*Lease, error) {
	g.mu.Lock()
	waited := false
	for {
		if g.closed {
			g.mu.Unlock()
			return nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			g.mu.Unlock()
			return nil, err
		}
		if g.allFailedLocked() {
			g.mu.Unlock()
			return nil, ErrAllFailed
		}
		l, err := g.tryPickLocked(affinity, avoid)
		if l != nil || err != nil {
			g.mu.Unlock()
			return l, err
		}
		if !waited {
			waited = true
			g.waits++
		}
		// Nothing admittable: wake on replica progress (cond broadcast),
		// on the earliest breaker cooldown expiry (nothing else fires a
		// broadcast at that moment), or on ctx.
		var wake *time.Timer
		if at := g.earliestBreakerRetryLocked(); !at.IsZero() {
			if d := time.Until(at); d > 0 {
				wake = time.AfterFunc(d, g.broadcast)
			}
		}
		stop := context.AfterFunc(ctx, g.broadcast)
		g.cond.Wait()
		stop()
		if wake != nil {
			wake.Stop()
		}
	}
}

// TryAcquire is the non-blocking Acquire used for hedged requests: it
// leases an admittable replica immediately or reports none. An
// injected crash on the picked replica fires (taking the replica down)
// and reports no lease.
func (g *Group) TryAcquire(affinity uint64, avoid []bool) (*Lease, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, false
	}
	l, err := g.tryPickLocked(affinity, avoid)
	return l, l != nil && err == nil
}

func (g *Group) broadcast() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *Group) allFailedLocked() bool {
	for _, r := range g.reps {
		if !r.failed {
			return false
		}
	}
	return true
}

// earliestBreakerRetryLocked returns the soonest open-breaker cooldown
// expiry among otherwise-eligible replicas (zero when none is pending).
func (g *Group) earliestBreakerRetryLocked() time.Time {
	var at time.Time
	for _, r := range g.reps {
		if !g.eligibleLocked(r) {
			continue
		}
		if t := r.br.retryAt(); !t.IsZero() && (at.IsZero() || t.Before(at)) {
			at = t
		}
	}
	return at
}

// WaitCaughtUp blocks until every non-failed replica has applied the
// current leader sequence (useful after a burst of ingest, and for
// deterministic tests).
func (g *Group) WaitCaughtUp(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		done := true
		for _, r := range g.reps {
			if r.failed {
				continue
			}
			if r.down || r.node == nil || r.applied != g.leaderSeq {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		stop := context.AfterFunc(ctx, g.broadcast)
		g.cond.Wait()
		stop()
	}
}

// Stats snapshots the group's progress and routing counters.
func (g *Group) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{
		LeaderSeq:         g.leaderSeq,
		SnapSeq:           g.snapSeq,
		LogLen:            len(g.log),
		Routed:            g.routed,
		Waits:             g.waits,
		SnapshotShipBytes: g.snapShipBytes,
		DeltaShipBytes:    g.deltaShipBytes,
	}
	for _, r := range g.reps {
		st := ReplicaStat{
			Node:       r.node,
			Breaker:    r.br.stateName(),
			Applied:    r.applied,
			Lag:        g.leaderSeq - r.applied,
			Inflight:   r.inflight,
			Routed:     r.routed,
			Bootstraps: r.bootstraps,
			Crashes:    r.crashes,
		}
		switch {
		case r.failed:
			st.State = "failed"
		case r.down || r.node == nil:
			st.State = "down"
		case st.Lag > g.cfg.MaxLag:
			st.State = "catchingup"
		default:
			st.State = "live"
		}
		s.BreakerOpens += r.br.opens
		s.BreakerProbes += r.br.probes
		s.BreakerCloses += r.br.closes
		s.Replicas = append(s.Replicas, st)
	}
	return s
}

// Close stops the shipping goroutines and fails pending Acquires. It
// does not touch the replicas' nodes (in-flight reads drain normally).
func (g *Group) Close() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		close(g.closedCh)
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	g.wg.Wait()
}

func (g *Group) eligibleLocked(r *rep) bool {
	return r.node != nil && !r.down && !r.failed && g.leaderSeq-r.applied <= g.cfg.MaxLag
}

// pickLocked implements the routing policy described on Acquire.
func (g *Group) pickLocked(affinity uint64, avoid []bool, now time.Time) int {
	admit := func(i int, r *rep) bool {
		if avoid != nil && i < len(avoid) && avoid[i] {
			return false
		}
		return g.eligibleLocked(r) && r.br.ready(now)
	}
	best := -1
	minIn := 0
	for i, r := range g.reps {
		if !admit(i, r) {
			continue
		}
		if best == -1 || r.inflight < minIn ||
			(r.inflight == minIn && r.routed < g.reps[best].routed) {
			best, minIn = i, r.inflight
		}
	}
	if best == -1 {
		return -1
	}
	if affinity != 0 {
		h := int(affinity % uint64(len(g.reps)))
		if rh := g.reps[h]; admit(h, rh) && rh.inflight <= minIn+1 {
			return h
		}
	}
	return best
}

// needsWorkLocked reports whether replica r's shipper has anything to
// do: a re-bootstrap, or unapplied committed batches.
func (g *Group) needsWorkLocked(r *rep) bool {
	if r.failed {
		return false
	}
	return r.down || r.node == nil || r.applied < g.leaderSeq
}

// nextBatchLocked returns the logged batch with Seq == applied+1, or
// nil when it has been compacted away (the replica must re-bootstrap
// from the snapshot instead).
func (g *Group) nextBatchLocked(applied uint64) *Batch {
	if len(g.log) == 0 || g.log[0].Seq > applied+1 {
		return nil
	}
	idx := int(applied + 1 - g.log[0].Seq)
	if idx >= len(g.log) {
		return nil
	}
	return &g.log[idx]
}

// fireCrashLocked consumes at most one matching planned crash for
// replica i at batch sequence seq. Each crash fires once per group,
// like the build-time fault model.
func (g *Group) fireCrashLocked(i int, seq uint64) bool {
	p := g.cfg.Faults
	if p == nil {
		return false
	}
	for k, c := range p.Crashes {
		if g.crashFired[k] {
			continue
		}
		if c.Matches(i, -1, "", int64(seq)) {
			g.crashFired[k] = true
			return true
		}
	}
	return false
}

// stallShip sleeps the injected delta-ship stall for replica i's
// application of batch seq, interruptible by Close. Called without the
// group mutex.
func (g *Group) stallShip(i int, seq uint64) {
	p := g.cfg.ServeFaults
	if p == nil {
		return
	}
	d := p.StallDelay(i, seq)
	if d <= 0 {
		return
	}
	t := time.NewTimer(time.Duration(d * float64(time.Second)))
	defer t.Stop()
	select {
	case <-t.C:
	case <-g.closedCh:
	}
}

// ship is replica i's shipping loop: re-bootstrap when down, otherwise
// apply the next committed batch, firing any planned crash at its
// exact sequence. One goroutine per replica; the leader never waits on
// it. The loop holds g.mu except across the Bootstrap/Apply calls
// themselves.
func (g *Group) ship(i int) {
	defer g.wg.Done()
	r := g.reps[i]
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		for !g.closed && !g.needsWorkLocked(r) {
			g.cond.Wait()
		}
		if g.closed {
			return
		}

		if r.down || r.node == nil || g.nextBatchLocked(r.applied) == nil {
			// Re-bootstrap from the latest snapshot; the delta log from
			// snapSeq+1 replays through the normal apply path below.
			snap, seq := g.snapshot, g.snapSeq
			r.down, r.node = true, nil
			g.mu.Unlock()
			node, err := g.cfg.Bootstrap(snap)
			g.mu.Lock()
			if err != nil || node == nil {
				// A snapshot that cannot be loaded will not load next
				// time either: retire the replica instead of spinning.
				r.failed = true
			} else {
				r.node = node
				r.applied = seq
				r.down = false
				r.bootstraps++
				g.snapShipBytes += int64(len(snap))
			}
			g.cond.Broadcast()
			continue
		}

		b := g.nextBatchLocked(r.applied)
		if g.fireCrashLocked(i, b.Seq) {
			r.down, r.node = true, nil
			r.crashes++
			g.cond.Broadcast()
			continue
		}
		node := r.node
		// The batch is on the wire whether or not the apply succeeds.
		g.deltaShipBytes += int64(b.Bytes)
		g.mu.Unlock()
		g.stallShip(i, b.Seq)
		if g.cfg.BeforeApply != nil {
			g.cfg.BeforeApply(i, b.Seq)
		}
		err := node.Apply(b.Rows, b.Meas)
		g.mu.Lock()
		if err != nil {
			// Treat an apply failure as a replica fault: take the
			// replica down and re-bootstrap. If the very same batch
			// fails again after a clean re-bootstrap the fault is
			// deterministic — retire the replica rather than loop.
			if r.lastFailSeq == b.Seq {
				r.failed = true
			}
			r.lastFailSeq = b.Seq
			r.down, r.node = true, nil
			r.crashes++
		} else {
			r.applied = b.Seq
			// Clear the failure marker only once the replica applies the
			// previously failed batch (or passes it): a successful replay
			// of *earlier* batches after a re-bootstrap says nothing
			// about whether the failed batch will fail again.
			if b.Seq >= r.lastFailSeq {
				r.lastFailSeq = 0
			}
		}
		g.cond.Broadcast()
	}
}
