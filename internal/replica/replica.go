// Package replica implements the replicated serving tier that splits
// the read path off the ingest leader: N cube replicas, each
// bootstrapped from a persist-v2 snapshot of the leader and advanced
// by applying the leader's committed ingest batches in commit order.
// Because the delta pipeline is deterministic and snapshots re-scatter
// slices on the leader's partition boundaries, a replica that has
// applied batch k is byte-identical to the leader as of batch k — same
// view slices, same per-view version counters — so any replica within
// the configured staleness bound can answer any read the leader could.
//
// The design follows the main-memory cluster OLAP playbook (Hespe et
// al., see PAPERS.md): one writer, many readers, snapshot + delta
// shipping, bounded-staleness reads. The leader never blocks on
// replica progress: committing a batch is an append to the delta log
// and a wakeup; per-replica shipping goroutines drain the log at their
// own pace. Replica failures reuse the faults machinery from the
// build's fault model — a seeded plan crashes a replica at an exact
// batch sequence, and the crashed replica re-bootstraps from the
// latest snapshot plus the delta log, deterministically.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/faults"
)

// ErrClosed is returned by Acquire and WaitCaughtUp after Close.
var ErrClosed = errors.New("replica: group closed")

// Batch is one committed leader ingest batch in the delta log. Rows
// are in the cube's internal dimension order, exactly as the leader
// applied them.
type Batch struct {
	Seq  uint64
	Rows [][]uint32
	Meas []int64
}

// Node is one replica's serving state: a cube bootstrapped from a
// leader snapshot, advanced by applying shipped batches. Apply must be
// deterministic — applying the same batches in the same order to the
// same snapshot yields the same node state.
type Node interface {
	Apply(rows [][]uint32, meas []int64) error
}

// Config configures a replica group.
type Config struct {
	// Replicas is the number of read replicas (>= 1).
	Replicas int
	// MaxLag is the staleness bound in committed batches: a replica is
	// eligible to serve only while leaderSeq - applied <= MaxLag. 0
	// means replicas serve only when fully caught up.
	MaxLag uint64
	// Bootstrap builds a fresh Node from a leader snapshot. It is
	// called once per replica at group creation and again whenever a
	// crashed replica re-bootstraps.
	Bootstrap func(snapshot []byte) (Node, error)
	// Faults, when non-nil, injects deterministic replica crashes:
	// Crash.Rank is the replica index and Crash.Superstep the batch
	// sequence the replica dies at (just before applying it). A crash
	// with Superstep 0 and Dimension -1 fires before the replica's
	// first apply. Payload faults and stragglers in the plan are
	// ignored — replication ships committed state, not h-relations.
	Faults *faults.Plan
	// BeforeApply, when non-nil, runs before a replica applies a batch
	// — an instrumentation hook for modelling slow replicas in tests.
	BeforeApply func(replica int, seq uint64)
}

// ReplicaStat is one replica's progress and routing counters.
type ReplicaStat struct {
	// Node is the replica's current serving node (nil while down). It
	// is replaced wholesale by a re-bootstrap.
	Node Node
	// State is "live" (eligible), "catchingup" (running but beyond the
	// staleness bound), "down" (crashed, awaiting re-bootstrap), or
	// "failed" (bootstrap or re-apply failed permanently).
	State string
	// Applied is the last batch sequence applied; Lag is leaderSeq -
	// Applied.
	Applied uint64
	Lag     uint64
	// Inflight is the number of reads currently routed here.
	Inflight int
	// Routed counts reads ever routed here (survives re-bootstraps).
	Routed int64
	// Bootstraps counts node constructions (1 for a replica that never
	// crashed); Crashes counts failures, injected or real.
	Bootstraps int64
	Crashes    int64
}

// Stats is a point-in-time snapshot of the group.
type Stats struct {
	// LeaderSeq is the last committed batch sequence; SnapSeq the
	// sequence of the current bootstrap snapshot; LogLen the number of
	// retained delta-log entries.
	LeaderSeq uint64
	SnapSeq   uint64
	LogLen    int
	// Routed counts reads routed across all replicas; Waits counts
	// Acquire calls that had to block because no replica was within
	// the staleness bound.
	Routed int64
	Waits  int64
	// Replicas has one entry per replica, by index.
	Replicas []ReplicaStat
}

type rep struct {
	node        Node
	applied     uint64
	down        bool
	failed      bool
	inflight    int
	routed      int64
	bootstraps  int64
	crashes     int64
	lastFailSeq uint64 // batch whose Apply failed (0 = none): two failures in a row => failed
}

// Group manages N replicas: the delta log, per-replica shipping
// goroutines, bounded-staleness routing, and crash/catch-up. All
// methods are safe for concurrent use. The leader side (Commit,
// SetSnapshot) never blocks on replica progress.
type Group struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond
	wg   sync.WaitGroup

	closed bool

	// log holds committed batches not yet compacted, ascending and
	// contiguous in Seq.
	log       []Batch
	leaderSeq uint64
	snapshot  []byte
	snapSeq   uint64

	reps       []*rep
	crashFired []bool

	routed int64
	waits  int64
}

// New bootstraps cfg.Replicas replicas from the snapshot (taken at
// batch sequence snapSeq) and starts their shipping goroutines.
func New(cfg Config, snapshot []byte, snapSeq uint64) (*Group, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("replica: group needs at least one replica, got %d", cfg.Replicas)
	}
	if cfg.Bootstrap == nil {
		return nil, fmt.Errorf("replica: nil Bootstrap")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Replicas); err != nil {
			return nil, err
		}
	}
	g := &Group{
		cfg:       cfg,
		snapshot:  snapshot,
		snapSeq:   snapSeq,
		leaderSeq: snapSeq,
	}
	g.cond = sync.NewCond(&g.mu)
	if cfg.Faults != nil {
		g.crashFired = make([]bool, len(cfg.Faults.Crashes))
	}
	for i := 0; i < cfg.Replicas; i++ {
		node, err := cfg.Bootstrap(snapshot)
		if err != nil {
			return nil, fmt.Errorf("replica %d: bootstrap: %w", i, err)
		}
		g.reps = append(g.reps, &rep{node: node, applied: snapSeq, bootstraps: 1})
	}
	for i := range g.reps {
		g.wg.Add(1)
		go g.ship(i)
	}
	return g, nil
}

// Commit appends one committed leader batch to the delta log and wakes
// the shippers. It never blocks on replica progress — the leader's
// ingest path returns immediately no matter how far behind any
// replica is. Returns the batch's assigned sequence.
func (g *Group) Commit(rows [][]uint32, meas []int64) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.leaderSeq++
	g.log = append(g.log, Batch{Seq: g.leaderSeq, Rows: rows, Meas: meas})
	g.cond.Broadcast()
	return g.leaderSeq
}

// SetSnapshot installs a fresh bootstrap snapshot taken at batch
// sequence seq and compacts the delta log: entries every running
// replica has already applied (and that the snapshot supersedes for
// re-bootstraps) are dropped. Down replicas restart from this snapshot
// instead of replaying from the beginning.
func (g *Group) SetSnapshot(snapshot []byte, seq uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if seq < g.snapSeq {
		return
	}
	g.snapshot, g.snapSeq = snapshot, seq
	min := seq
	for _, r := range g.reps {
		if !r.down && !r.failed && r.node != nil && r.applied < min {
			min = r.applied
		}
	}
	drop := 0
	for drop < len(g.log) && g.log[drop].Seq <= min {
		drop++
	}
	g.log = g.log[drop:]
}

// LeaderSeq returns the last committed batch sequence.
func (g *Group) LeaderSeq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderSeq
}

// Crash takes replica i down as if it had failed. Its shipper
// re-bootstraps it from the latest snapshot and replays the delta log.
func (g *Group) Crash(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i < 0 || i >= len(g.reps) {
		return fmt.Errorf("replica: index %d out of range 0..%d", i, len(g.reps)-1)
	}
	r := g.reps[i]
	r.down, r.node = true, nil
	r.crashes++
	g.cond.Broadcast()
	return nil
}

// Acquire picks the serving replica for one read and reserves a slot
// on it: among replicas within the staleness bound, the one with the
// fewest in-flight reads (ties to fewest total routed, then lowest
// index). A nonzero affinity prefers the read's "home" replica
// (affinity mod replicas) when it is eligible and not noticeably more
// loaded, keeping repeat queries on the replica whose result cache
// already holds them. When no replica is eligible the call blocks
// until one catches up within the bound or ctx expires — that wait is
// the bounded-staleness guarantee. The release func must be called
// when the read completes.
func (g *Group) Acquire(ctx context.Context, affinity uint64) (Node, func(), error) {
	g.mu.Lock()
	waited := false
	for {
		if g.closed {
			g.mu.Unlock()
			return nil, nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			g.mu.Unlock()
			return nil, nil, err
		}
		if i := g.pickLocked(affinity); i >= 0 {
			r := g.reps[i]
			r.inflight++
			r.routed++
			g.routed++
			node := r.node
			g.mu.Unlock()
			var once sync.Once
			release := func() {
				once.Do(func() {
					g.mu.Lock()
					r.inflight--
					g.mu.Unlock()
				})
			}
			return node, release, nil
		}
		if !waited {
			waited = true
			g.waits++
		}
		stop := context.AfterFunc(ctx, func() {
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		})
		g.cond.Wait()
		stop()
	}
}

// WaitCaughtUp blocks until every non-failed replica has applied the
// current leader sequence (useful after a burst of ingest, and for
// deterministic tests).
func (g *Group) WaitCaughtUp(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		done := true
		for _, r := range g.reps {
			if r.failed {
				continue
			}
			if r.down || r.node == nil || r.applied != g.leaderSeq {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		stop := context.AfterFunc(ctx, func() {
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		})
		g.cond.Wait()
		stop()
	}
}

// Stats snapshots the group's progress and routing counters.
func (g *Group) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{
		LeaderSeq: g.leaderSeq,
		SnapSeq:   g.snapSeq,
		LogLen:    len(g.log),
		Routed:    g.routed,
		Waits:     g.waits,
	}
	for _, r := range g.reps {
		st := ReplicaStat{
			Node:       r.node,
			Applied:    r.applied,
			Lag:        g.leaderSeq - r.applied,
			Inflight:   r.inflight,
			Routed:     r.routed,
			Bootstraps: r.bootstraps,
			Crashes:    r.crashes,
		}
		switch {
		case r.failed:
			st.State = "failed"
		case r.down || r.node == nil:
			st.State = "down"
		case st.Lag > g.cfg.MaxLag:
			st.State = "catchingup"
		default:
			st.State = "live"
		}
		s.Replicas = append(s.Replicas, st)
	}
	return s
}

// Close stops the shipping goroutines and fails pending Acquires. It
// does not touch the replicas' nodes (in-flight reads drain normally).
func (g *Group) Close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	g.wg.Wait()
}

func (g *Group) eligibleLocked(r *rep) bool {
	return r.node != nil && !r.down && !r.failed && g.leaderSeq-r.applied <= g.cfg.MaxLag
}

// pickLocked implements the routing policy described on Acquire.
func (g *Group) pickLocked(affinity uint64) int {
	best := -1
	minIn := 0
	for i, r := range g.reps {
		if !g.eligibleLocked(r) {
			continue
		}
		if best == -1 || r.inflight < minIn ||
			(r.inflight == minIn && r.routed < g.reps[best].routed) {
			best, minIn = i, r.inflight
		}
	}
	if best == -1 {
		return -1
	}
	if affinity != 0 {
		h := int(affinity % uint64(len(g.reps)))
		if rh := g.reps[h]; g.eligibleLocked(rh) && rh.inflight <= minIn+1 {
			return h
		}
	}
	return best
}

// needsWorkLocked reports whether replica r's shipper has anything to
// do: a re-bootstrap, or unapplied committed batches.
func (g *Group) needsWorkLocked(r *rep) bool {
	if r.failed {
		return false
	}
	return r.down || r.node == nil || r.applied < g.leaderSeq
}

// nextBatchLocked returns the logged batch with Seq == applied+1, or
// nil when it has been compacted away (the replica must re-bootstrap
// from the snapshot instead).
func (g *Group) nextBatchLocked(applied uint64) *Batch {
	if len(g.log) == 0 || g.log[0].Seq > applied+1 {
		return nil
	}
	idx := int(applied + 1 - g.log[0].Seq)
	if idx >= len(g.log) {
		return nil
	}
	return &g.log[idx]
}

// fireCrashLocked consumes at most one matching planned crash for
// replica i at batch sequence seq. Each crash fires once per group,
// like the build-time fault model.
func (g *Group) fireCrashLocked(i int, seq uint64) bool {
	p := g.cfg.Faults
	if p == nil {
		return false
	}
	for k, c := range p.Crashes {
		if g.crashFired[k] {
			continue
		}
		if c.Matches(i, -1, "", int64(seq)) {
			g.crashFired[k] = true
			return true
		}
	}
	return false
}

// ship is replica i's shipping loop: re-bootstrap when down, otherwise
// apply the next committed batch, firing any planned crash at its
// exact sequence. One goroutine per replica; the leader never waits on
// it. The loop holds g.mu except across the Bootstrap/Apply calls
// themselves.
func (g *Group) ship(i int) {
	defer g.wg.Done()
	r := g.reps[i]
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		for !g.closed && !g.needsWorkLocked(r) {
			g.cond.Wait()
		}
		if g.closed {
			return
		}

		if r.down || r.node == nil || g.nextBatchLocked(r.applied) == nil {
			// Re-bootstrap from the latest snapshot; the delta log from
			// snapSeq+1 replays through the normal apply path below.
			snap, seq := g.snapshot, g.snapSeq
			r.down, r.node = true, nil
			g.mu.Unlock()
			node, err := g.cfg.Bootstrap(snap)
			g.mu.Lock()
			if err != nil || node == nil {
				// A snapshot that cannot be loaded will not load next
				// time either: retire the replica instead of spinning.
				r.failed = true
			} else {
				r.node = node
				r.applied = seq
				r.down = false
				r.bootstraps++
			}
			g.cond.Broadcast()
			continue
		}

		b := g.nextBatchLocked(r.applied)
		if g.fireCrashLocked(i, b.Seq) {
			r.down, r.node = true, nil
			r.crashes++
			g.cond.Broadcast()
			continue
		}
		node := r.node
		g.mu.Unlock()
		if g.cfg.BeforeApply != nil {
			g.cfg.BeforeApply(i, b.Seq)
		}
		err := node.Apply(b.Rows, b.Meas)
		g.mu.Lock()
		if err != nil {
			// Treat an apply failure as a replica fault: take the
			// replica down and re-bootstrap. If the very same batch
			// fails again after a clean re-bootstrap the fault is
			// deterministic — retire the replica rather than loop.
			if r.lastFailSeq == b.Seq {
				r.failed = true
			}
			r.lastFailSeq = b.Seq
			r.down, r.node = true, nil
			r.crashes++
		} else {
			r.applied = b.Seq
			// Clear the failure marker only once the replica applies the
			// previously failed batch (or passes it): a successful replay
			// of *earlier* batches after a re-bootstrap says nothing
			// about whether the failed batch will fail again.
			if b.Seq >= r.lastFailSeq {
				r.lastFailSeq = 0
			}
		}
		g.cond.Broadcast()
	}
}
