package replica

import "time"

// BreakerConfig configures the per-replica circuit breakers that gate
// read routing. A breaker protects the fleet from a sick-but-alive
// replica: one that keeps accepting reads and failing them (flaky
// disk, poisoned cache, crash loop). Consecutive failures open the
// breaker, routing steers around it for a cooldown, then a single
// probe read decides whether it closes again.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (default 3; negative disables breakers entirely).
	Threshold int
	// Cooldown is how long an open breaker rejects routing before
	// admitting a half-open probe (default 100ms).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	return c
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one replica's circuit breaker. It is driven entirely
// under the group mutex (or a test's), so it needs no locking of its
// own; time is passed in so tests can drive the state machine with a
// fake clock.
//
// State machine: closed --(Threshold consecutive failures)--> open
// --(Cooldown elapses)--> half-open --(probe succeeds)--> closed, or
// --(probe fails)--> open again. While half-open exactly one read (the
// probe) is admitted; a failure of an already-in-flight read while the
// breaker is open does not re-arm the cooldown, so a loaded replica
// cannot starve its own recovery probe.
type breaker struct {
	cfg       BreakerConfig
	state     int
	consec    int       // consecutive failures
	openUntil time.Time // end of the open cooldown
	probing   bool      // a half-open probe is in flight

	opens, probes, closes int64 // lifetime transition counters
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

func (b *breaker) disabled() bool { return b.cfg.Threshold < 0 }

// ready reports whether the breaker admits a read now. An expired open
// cooldown transitions to half-open as a side effect; half-open admits
// only while no probe is in flight.
func (b *breaker) ready(now time.Time) bool {
	if b.disabled() {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = false
	}
	return !b.probing
}

// route marks the selected read: in half-open it becomes the probe.
func (b *breaker) route() {
	if b.state == breakerHalfOpen && !b.probing {
		b.probing = true
		b.probes++
	}
}

// done records a read's outcome. Failures count toward the threshold;
// a half-open probe's outcome alone moves the breaker out of
// half-open.
func (b *breaker) done(failed bool, now time.Time) {
	if b.disabled() {
		return
	}
	if failed {
		b.consec++
		if b.state == breakerHalfOpen ||
			(b.state == breakerClosed && b.consec >= b.cfg.Threshold) {
			b.state = breakerOpen
			b.openUntil = now.Add(b.cfg.Cooldown)
			b.probing = false
			b.opens++
		}
		return
	}
	b.consec = 0
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
		b.closes++
	}
}

// retryAt returns when an unready breaker will next admit a read (zero
// when it already would, or never will by time alone).
func (b *breaker) retryAt() time.Time {
	if b.state == breakerOpen {
		return b.openUntil
	}
	return time.Time{}
}

func (b *breaker) stateName() string {
	if b.disabled() {
		return "disabled"
	}
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
