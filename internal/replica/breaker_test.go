package replica

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})

	// Closed admits; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.ready(now) {
			t.Fatalf("closed breaker rejected read %d", i)
		}
		b.route()
		b.done(true, now)
	}
	if b.stateName() != "closed" {
		t.Fatalf("state after 2 failures = %s, want closed", b.stateName())
	}
	// A success resets the consecutive count.
	b.done(false, now)
	b.done(true, now)
	b.done(true, now)
	if b.stateName() != "closed" {
		t.Fatalf("success did not reset the failure streak: %s", b.stateName())
	}
	// The third consecutive failure opens it.
	b.done(true, now)
	if b.stateName() != "open" || b.opens != 1 {
		t.Fatalf("state after streak = %s (opens %d), want open/1", b.stateName(), b.opens)
	}
	if b.ready(now) || b.ready(now.Add(999*time.Millisecond)) {
		t.Fatal("open breaker admitted a read inside the cooldown")
	}
	if got := b.retryAt(); !got.Equal(now.Add(time.Second)) {
		t.Fatalf("retryAt = %v, want cooldown end", got)
	}

	// Cooldown elapses: half-open admits exactly one probe.
	now = now.Add(time.Second)
	if !b.ready(now) {
		t.Fatal("half-open breaker rejected the probe")
	}
	b.route()
	if b.stateName() != "half-open" || b.probes != 1 {
		t.Fatalf("state = %s probes = %d, want half-open/1", b.stateName(), b.probes)
	}
	if b.ready(now) {
		t.Fatal("half-open admitted a second read while the probe was in flight")
	}
	// Probe fails: back to open, cooldown re-armed.
	b.done(true, now)
	if b.stateName() != "open" || b.opens != 2 {
		t.Fatalf("failed probe left state %s (opens %d)", b.stateName(), b.opens)
	}

	// Next probe succeeds: closed again, admitting freely.
	now = now.Add(time.Second)
	if !b.ready(now) {
		t.Fatal("second probe rejected")
	}
	b.route()
	b.done(false, now)
	if b.stateName() != "closed" || b.closes != 1 {
		t.Fatalf("successful probe left state %s (closes %d)", b.stateName(), b.closes)
	}
	if !b.ready(now) || !b.ready(now) {
		t.Fatal("closed breaker limited admission")
	}
}

func TestBreakerOpenNotReArmedByStragglers(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.done(true, now) // opens
	if b.stateName() != "open" {
		t.Fatalf("state = %s, want open", b.stateName())
	}
	// A straggling in-flight read failing mid-cooldown must not push
	// the cooldown out, or a loaded replica never gets its probe.
	b.done(true, now.Add(900*time.Millisecond))
	if !b.ready(now.Add(1100 * time.Millisecond)) {
		t.Fatal("late failure re-armed the open cooldown")
	}
}

func TestBreakerDisabled(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 10; i++ {
		b.done(true, now)
	}
	if !b.ready(now) || b.stateName() != "disabled" {
		t.Fatalf("disabled breaker tripped: ready=%v state=%s", b.ready(now), b.stateName())
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(BreakerConfig{})
	if b.cfg.Threshold != 3 || b.cfg.Cooldown != 100*time.Millisecond {
		t.Fatalf("defaults = %+v", b.cfg)
	}
}
