package replica

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// fakeNode is a trivial deterministic Node: its state is the sum of a
// bootstrap base and every applied batch's measures. Batches in these
// tests carry their commit ordinal as the single measure, so equal
// totals mean equal applied prefixes.
type fakeNode struct {
	mu    sync.Mutex
	total int64
	fail  int64 // Apply fails whenever a measure equals fail (0 = never)
}

func (n *fakeNode) Apply(rows [][]uint32, meas []int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range meas {
		if n.fail != 0 && m == n.fail {
			return errors.New("injected apply failure")
		}
		n.total += m
	}
	return nil
}

func (n *fakeNode) Total() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.total
}

// snapshotOf encodes a fakeNode bootstrap base; bootstrapFake decodes
// it.
func snapshotOf(total int64) []byte { return []byte(strconv.FormatInt(total, 10)) }

func bootstrapFake(fail int64) func([]byte) (Node, error) {
	return func(snap []byte) (Node, error) {
		base, err := strconv.ParseInt(string(snap), 10, 64)
		if err != nil {
			return nil, err
		}
		return &fakeNode{total: base, fail: fail}, nil
	}
}

// commitN commits batches carrying ordinals from..to inclusive and
// returns their sum.
func commitN(g *Group, from, to int64) int64 {
	var sum int64
	for k := from; k <= to; k++ {
		g.Commit(nil, []int64{k})
		sum += k
	}
	return sum
}

func waitCaughtUp(t *testing.T, g *Group) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
}

func TestCommitShipAndCatchUp(t *testing.T) {
	g, err := New(Config{Replicas: 3, Bootstrap: bootstrapFake(0)}, snapshotOf(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sum := commitN(g, 1, 5)
	waitCaughtUp(t, g)
	st := g.Stats()
	if st.LeaderSeq != 5 {
		t.Fatalf("LeaderSeq = %d, want 5", st.LeaderSeq)
	}
	for i, r := range st.Replicas {
		if r.Applied != 5 || r.Lag != 0 || r.State != "live" || r.Bootstraps != 1 {
			t.Fatalf("replica %d: %+v", i, r)
		}
		if got := r.Node.(*fakeNode).Total(); got != 100+sum {
			t.Fatalf("replica %d total %d, want %d", i, got, 100+sum)
		}
	}
}

func TestBoundedStalenessBlocksAcquire(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	g, err := New(Config{
		Replicas:  1,
		MaxLag:    1,
		Bootstrap: bootstrapFake(0),
		BeforeApply: func(replica int, seq uint64) {
			<-gate
		},
	}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	defer gateOnce.Do(func() { close(gate) })

	commitN(g, 1, 3)
	// The replica cannot apply anything while the gate is closed, so it
	// is 3 batches behind a MaxLag of 1: reads must block until the
	// deadline, not serve stale data.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, _, err = g.Acquire(ctx, 0)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire beyond the staleness bound: err = %v, want deadline", err)
	}
	if st := g.Stats(); st.Waits == 0 {
		t.Fatalf("blocked Acquire not counted: %+v", st)
	}

	gateOnce.Do(func() { close(gate) })
	waitCaughtUp(t, g)
	node, release, err := g.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if got := node.(*fakeNode).Total(); got != 1+2+3 {
		t.Fatalf("served total %d, want 6", got)
	}
}

func TestRoutingLeastLoadedAndAffinity(t *testing.T) {
	g, err := New(Config{Replicas: 3, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Without releases, three acquires must land on three distinct
	// replicas (least-inflight routing).
	ctx := context.Background()
	seen := map[Node]bool{}
	var releases []func()
	for k := 0; k < 3; k++ {
		n, rel, err := g.Acquire(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[n] = true
		releases = append(releases, rel)
	}
	if len(seen) != 3 {
		t.Fatalf("3 concurrent reads used %d replicas", len(seen))
	}
	for _, rel := range releases {
		rel()
	}

	// With an affinity hash, idle repeats stay on the home replica
	// (5 mod 3 = replica 2) so its cache keeps the entry.
	var home Node
	for k := 0; k < 8; k++ {
		n, rel, err := g.Acquire(ctx, 5)
		if err != nil {
			t.Fatal(err)
		}
		rel()
		if home == nil {
			home = n
		} else if n != home {
			t.Fatalf("affinity read %d routed away from home replica", k)
		}
	}
	st := g.Stats()
	// 1 from the spread phase plus all 8 affinity reads.
	if st.Replicas[2].Routed != 9 {
		t.Fatalf("home replica routed %d, want 9 (stats %+v)", st.Replicas[2].Routed, st)
	}
}

func TestCrashReBootstrapAndCompaction(t *testing.T) {
	g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sum := commitN(g, 1, 4)
	waitCaughtUp(t, g)
	// Everyone applied through 4: a snapshot at 4 compacts the whole log.
	g.SetSnapshot(snapshotOf(sum), 4)
	if st := g.Stats(); st.LogLen != 0 || st.SnapSeq != 4 {
		t.Fatalf("after compaction: %+v", st)
	}

	// Crash replica 1: it re-bootstraps from the seq-4 snapshot (the
	// pre-snapshot log entries are gone) and lands on the same state.
	if err := g.Crash(1); err != nil {
		t.Fatal(err)
	}
	sum += commitN(g, 5, 6)
	waitCaughtUp(t, g)
	st := g.Stats()
	r := st.Replicas[1]
	if r.Crashes != 1 || r.Bootstraps != 2 || r.Applied != 6 || r.State != "live" {
		t.Fatalf("crashed replica after catch-up: %+v", r)
	}
	for i, rep := range st.Replicas {
		if got := rep.Node.(*fakeNode).Total(); got != sum {
			t.Fatalf("replica %d total %d, want %d", i, got, sum)
		}
	}
}

func TestPlannedCrashIsDeterministic(t *testing.T) {
	run := func() (Stats, []int64) {
		g, err := New(Config{
			Replicas:  2,
			Bootstrap: bootstrapFake(0),
			Faults: &faults.Plan{Crashes: []faults.Crash{
				{Rank: 0, Dimension: -1, Superstep: 2},
			}},
		}, snapshotOf(0), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		commitN(g, 1, 5)
		waitCaughtUp(t, g)
		st := g.Stats()
		totals := make([]int64, len(st.Replicas))
		for i, r := range st.Replicas {
			totals[i] = r.Node.(*fakeNode).Total()
		}
		return st, totals
	}
	st1, tot1 := run()
	st2, tot2 := run()
	if st1.Replicas[0].Crashes != 1 || st1.Replicas[0].Bootstraps != 2 {
		t.Fatalf("planned crash did not fire exactly once: %+v", st1.Replicas[0])
	}
	if st1.Replicas[1].Crashes != 0 {
		t.Fatalf("crash leaked onto replica 1: %+v", st1.Replicas[1])
	}
	for i := range tot1 {
		if tot1[i] != 1+2+3+4+5 || tot1[i] != tot2[i] {
			t.Fatalf("replica %d totals across runs: %d vs %d", i, tot1[i], tot2[i])
		}
	}
	// Node pointers differ run to run; everything else must not.
	for i := range st1.Replicas {
		a, b := st1.Replicas[i], st2.Replicas[i]
		a.Node, b.Node = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("replica %d stats differ across identical runs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestDeterministicApplyFailureRetiresReplica(t *testing.T) {
	// Batch ordinal 2 always fails on this node: after a crash, a
	// re-bootstrap, and a second identical failure, the group must
	// retire the replica instead of looping forever.
	g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(2)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	commitN(g, 1, 3)
	waitCaughtUp(t, g) // skips failed replicas

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := g.Stats()
		if st.Replicas[0].State == "failed" && st.Replicas[1].State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas not retired: %+v", st.Replicas)
		}
		time.Sleep(time.Millisecond)
	}

	// With every replica failed, reads fail by deadline rather than
	// serving a corrupt node.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := g.Acquire(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire with all replicas failed: %v", err)
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := New(Config{Replicas: 0, Bootstrap: bootstrapFake(0)}, nil, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := New(Config{Replicas: 2}, nil, 0); err == nil {
		t.Fatal("nil bootstrap accepted")
	}
	if _, err := New(Config{
		Replicas:  2,
		Bootstrap: bootstrapFake(0),
		Faults:    &faults.Plan{Crashes: []faults.Crash{{Rank: 7}}},
	}, snapshotOf(0), 0); err == nil {
		t.Fatal("out-of-range crash rank accepted")
	}
	g, err := New(Config{Replicas: 1, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Crash(5); err == nil {
		t.Fatal("out-of-range crash index accepted")
	}
	g.Close()
	if _, _, err := g.Acquire(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close: %v", err)
	}
	if err := g.WaitCaughtUp(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitCaughtUp after Close: %v", err)
	}
}
