package replica

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// fakeNode is a trivial deterministic Node: its state is the sum of a
// bootstrap base and every applied batch's measures. Batches in these
// tests carry their commit ordinal as the single measure, so equal
// totals mean equal applied prefixes.
type fakeNode struct {
	mu    sync.Mutex
	total int64
	fail  int64 // Apply fails whenever a measure equals fail (0 = never)
}

func (n *fakeNode) Apply(rows [][]uint32, meas []int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range meas {
		if n.fail != 0 && m == n.fail {
			return errors.New("injected apply failure")
		}
		n.total += m
	}
	return nil
}

func (n *fakeNode) Total() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.total
}

// snapshotOf encodes a fakeNode bootstrap base; bootstrapFake decodes
// it.
func snapshotOf(total int64) []byte { return []byte(strconv.FormatInt(total, 10)) }

func bootstrapFake(fail int64) func([]byte) (Node, error) {
	return func(snap []byte) (Node, error) {
		base, err := strconv.ParseInt(string(snap), 10, 64)
		if err != nil {
			return nil, err
		}
		return &fakeNode{total: base, fail: fail}, nil
	}
}

// commitN commits batches carrying ordinals from..to inclusive and
// returns their sum.
func commitN(g *Group, from, to int64) int64 {
	var sum int64
	for k := from; k <= to; k++ {
		g.Commit(nil, []int64{k})
		sum += k
	}
	return sum
}

func waitCaughtUp(t *testing.T, g *Group) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
}

func TestCommitShipAndCatchUp(t *testing.T) {
	g, err := New(Config{Replicas: 3, Bootstrap: bootstrapFake(0)}, snapshotOf(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sum := commitN(g, 1, 5)
	waitCaughtUp(t, g)
	st := g.Stats()
	if st.LeaderSeq != 5 {
		t.Fatalf("LeaderSeq = %d, want 5", st.LeaderSeq)
	}
	for i, r := range st.Replicas {
		if r.Applied != 5 || r.Lag != 0 || r.State != "live" || r.Bootstraps != 1 {
			t.Fatalf("replica %d: %+v", i, r)
		}
		if got := r.Node.(*fakeNode).Total(); got != 100+sum {
			t.Fatalf("replica %d total %d, want %d", i, got, 100+sum)
		}
	}
}

func TestBoundedStalenessBlocksAcquire(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	g, err := New(Config{
		Replicas:  1,
		MaxLag:    1,
		Bootstrap: bootstrapFake(0),
		BeforeApply: func(replica int, seq uint64) {
			<-gate
		},
	}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	defer gateOnce.Do(func() { close(gate) })

	commitN(g, 1, 3)
	// The replica cannot apply anything while the gate is closed, so it
	// is 3 batches behind a MaxLag of 1: reads must block until the
	// deadline, not serve stale data.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_, err = g.Acquire(ctx, 0, nil)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Acquire beyond the staleness bound: err = %v, want deadline", err)
	}
	if st := g.Stats(); st.Waits == 0 {
		t.Fatalf("blocked Acquire not counted: %+v", st)
	}

	gateOnce.Do(func() { close(gate) })
	waitCaughtUp(t, g)
	l, err := g.Acquire(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release(false)
	if got := l.Node().(*fakeNode).Total(); got != 1+2+3 {
		t.Fatalf("served total %d, want 6", got)
	}
}

func TestRoutingLeastLoadedAndAffinity(t *testing.T) {
	g, err := New(Config{Replicas: 3, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Without releases, three acquires must land on three distinct
	// replicas (least-inflight routing).
	ctx := context.Background()
	seen := map[Node]bool{}
	var leases []*Lease
	for k := 0; k < 3; k++ {
		l, err := g.Acquire(ctx, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[l.Node()] = true
		leases = append(leases, l)
	}
	if len(seen) != 3 {
		t.Fatalf("3 concurrent reads used %d replicas", len(seen))
	}
	for _, l := range leases {
		l.Release(false)
	}

	// With an affinity hash, idle repeats stay on the home replica
	// (5 mod 3 = replica 2) so its cache keeps the entry.
	var home Node
	for k := 0; k < 8; k++ {
		l, err := g.Acquire(ctx, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.Release(false)
		if home == nil {
			home = l.Node()
		} else if l.Node() != home {
			t.Fatalf("affinity read %d routed away from home replica", k)
		}
	}
	st := g.Stats()
	// 1 from the spread phase plus all 8 affinity reads.
	if st.Replicas[2].Routed != 9 {
		t.Fatalf("home replica routed %d, want 9 (stats %+v)", st.Replicas[2].Routed, st)
	}
}

func TestCrashReBootstrapAndCompaction(t *testing.T) {
	g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	sum := commitN(g, 1, 4)
	waitCaughtUp(t, g)
	// Everyone applied through 4: a snapshot at 4 compacts the whole log.
	g.SetSnapshot(snapshotOf(sum), 4)
	if st := g.Stats(); st.LogLen != 0 || st.SnapSeq != 4 {
		t.Fatalf("after compaction: %+v", st)
	}

	// Crash replica 1: it re-bootstraps from the seq-4 snapshot (the
	// pre-snapshot log entries are gone) and lands on the same state.
	if err := g.Crash(1); err != nil {
		t.Fatal(err)
	}
	sum += commitN(g, 5, 6)
	waitCaughtUp(t, g)
	st := g.Stats()
	r := st.Replicas[1]
	if r.Crashes != 1 || r.Bootstraps != 2 || r.Applied != 6 || r.State != "live" {
		t.Fatalf("crashed replica after catch-up: %+v", r)
	}
	for i, rep := range st.Replicas {
		if got := rep.Node.(*fakeNode).Total(); got != sum {
			t.Fatalf("replica %d total %d, want %d", i, got, sum)
		}
	}
}

func TestPlannedCrashIsDeterministic(t *testing.T) {
	run := func() (Stats, []int64) {
		g, err := New(Config{
			Replicas:  2,
			Bootstrap: bootstrapFake(0),
			Faults: &faults.Plan{Crashes: []faults.Crash{
				{Rank: 0, Dimension: -1, Superstep: 2},
			}},
		}, snapshotOf(0), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		commitN(g, 1, 5)
		waitCaughtUp(t, g)
		st := g.Stats()
		totals := make([]int64, len(st.Replicas))
		for i, r := range st.Replicas {
			totals[i] = r.Node.(*fakeNode).Total()
		}
		return st, totals
	}
	st1, tot1 := run()
	st2, tot2 := run()
	if st1.Replicas[0].Crashes != 1 || st1.Replicas[0].Bootstraps != 2 {
		t.Fatalf("planned crash did not fire exactly once: %+v", st1.Replicas[0])
	}
	if st1.Replicas[1].Crashes != 0 {
		t.Fatalf("crash leaked onto replica 1: %+v", st1.Replicas[1])
	}
	for i := range tot1 {
		if tot1[i] != 1+2+3+4+5 || tot1[i] != tot2[i] {
			t.Fatalf("replica %d totals across runs: %d vs %d", i, tot1[i], tot2[i])
		}
	}
	// Node pointers differ run to run; everything else must not.
	for i := range st1.Replicas {
		a, b := st1.Replicas[i], st2.Replicas[i]
		a.Node, b.Node = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("replica %d stats differ across identical runs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestDeterministicApplyFailureRetiresReplica(t *testing.T) {
	// Batch ordinal 2 always fails on this node: after a crash, a
	// re-bootstrap, and a second identical failure, the group must
	// retire the replica instead of looping forever.
	g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(2)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	commitN(g, 1, 3)
	waitCaughtUp(t, g) // skips failed replicas

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := g.Stats()
		if st.Replicas[0].State == "failed" && st.Replicas[1].State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas not retired: %+v", st.Replicas)
		}
		time.Sleep(time.Millisecond)
	}

	// With every replica permanently failed, reads must not block out
	// their deadline: ErrAllFailed tells the caller to fail over to the
	// leader immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := g.Acquire(ctx, 0, nil); !errors.Is(err, ErrAllFailed) {
		t.Fatalf("Acquire with all replicas failed: %v, want ErrAllFailed", err)
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := New(Config{Replicas: 0, Bootstrap: bootstrapFake(0)}, nil, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := New(Config{Replicas: 2}, nil, 0); err == nil {
		t.Fatal("nil bootstrap accepted")
	}
	if _, err := New(Config{
		Replicas:  2,
		Bootstrap: bootstrapFake(0),
		Faults:    &faults.Plan{Crashes: []faults.Crash{{Rank: 7}}},
	}, snapshotOf(0), 0); err == nil {
		t.Fatal("out-of-range crash rank accepted")
	}
	if _, err := New(Config{
		Replicas:    2,
		Bootstrap:   bootstrapFake(0),
		ServeFaults: &faults.ServePlan{Crashes: []faults.ServeCrash{{Replica: 7, Query: 1}}},
	}, snapshotOf(0), 0); err == nil {
		t.Fatal("out-of-range serve-crash replica accepted")
	}
	g, err := New(Config{Replicas: 1, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Crash(5); err == nil {
		t.Fatal("out-of-range crash index accepted")
	}
	if err := g.Retire(5); err == nil {
		t.Fatal("out-of-range retire index accepted")
	}
	g.Close()
	if _, err := g.Acquire(context.Background(), 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after Close: %v", err)
	}
	if err := g.WaitCaughtUp(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitCaughtUp after Close: %v", err)
	}
	if _, ok := g.TryAcquire(0, nil); ok {
		t.Fatal("TryAcquire after Close leased")
	}
}

func TestServeCrashFiresOnExactOrdinalAndReBootstraps(t *testing.T) {
	// One replica, crash at its 3rd routed read: the first two reads
	// serve, the third gets a ServeCrashError, the shipper re-bootstraps
	// the replica, and later reads serve again.
	g, err := New(Config{
		Replicas:    1,
		Bootstrap:   bootstrapFake(0),
		ServeFaults: &faults.ServePlan{Crashes: []faults.ServeCrash{{Replica: 0, Query: 3}}},
	}, snapshotOf(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	for k := 0; k < 2; k++ {
		l, err := g.Acquire(ctx, 0, nil)
		if err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
		l.Release(false)
	}
	_, err = g.Acquire(ctx, 0, nil)
	var sc *ServeCrashError
	if !errors.As(err, &sc) || sc.Replica != 0 || sc.Query != 3 {
		t.Fatalf("3rd read: err = %v, want ServeCrashError{0, 3}", err)
	}
	waitCaughtUp(t, g)
	l, err := g.Acquire(ctx, 0, nil)
	if err != nil {
		t.Fatalf("read after re-bootstrap: %v", err)
	}
	if got := l.Node().(*fakeNode).Total(); got != 7 {
		t.Fatalf("re-bootstrapped total %d, want 7", got)
	}
	l.Release(false)
	st := g.Stats().Replicas[0]
	if st.Crashes != 1 || st.Bootstraps != 2 {
		t.Fatalf("after serve crash: %+v", st)
	}
}

func TestServeCrashIsDeterministicAcrossRuns(t *testing.T) {
	plan := &faults.ServePlan{Crashes: faults.CrashLoop(1, 2, 3, 2)}
	run := func() []uint64 {
		g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(0), ServeFaults: plan}, snapshotOf(0), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		ctx := context.Background()
		var crashedAt []uint64
		// Sequential reads with alternating affinity walk both replicas
		// deterministically; record which global read ordinals crash.
		for k := 0; k < 12; k++ {
			waitCaughtUp(t, g) // let re-bootstraps settle so routing is deterministic
			l, err := g.Acquire(ctx, uint64(k%2)+2, nil)
			if err != nil {
				var sc *ServeCrashError
				if !errors.As(err, &sc) {
					t.Fatalf("read %d: %v", k, err)
				}
				crashedAt = append(crashedAt, uint64(k))
				continue
			}
			l.Release(false)
		}
		return crashedAt
	}
	a, b := run(), run()
	if len(a) != 2 {
		t.Fatalf("crash loop fired %d times, want 2 (at %v)", len(a), a)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("serve crashes fired at different points across identical runs: %v vs %v", a, b)
	}
}

func TestStragglerDelaySurfacesOnLease(t *testing.T) {
	g, err := New(Config{
		Replicas:  1,
		Bootstrap: bootstrapFake(0),
		ServeFaults: &faults.ServePlan{Stragglers: []faults.ServeStraggler{
			{Replica: 0, FromQuery: 2, ToQuery: 3, DelaySeconds: 0.5},
		}},
	}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()
	want := []time.Duration{0, 500 * time.Millisecond, 500 * time.Millisecond, 0}
	for k, w := range want {
		l, err := g.Acquire(ctx, 0, nil)
		if err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
		if l.Delay() != w {
			t.Fatalf("read %d delay = %v, want %v", k, l.Delay(), w)
		}
		l.Release(false)
	}
}

func TestBreakerOpensOnFailedReleasesAndRecovers(t *testing.T) {
	g, err := New(Config{
		Replicas:  2,
		Bootstrap: bootstrapFake(0),
		Breaker:   BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
	}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	// Fail two consecutive reads on replica 0: its breaker opens and
	// routing steers everything to replica 1.
	for k := 0; k < 2; k++ {
		l, err := g.Acquire(ctx, 0, []bool{false, true})
		if err != nil {
			t.Fatal(err)
		}
		if l.Replica() != 0 {
			t.Fatalf("avoid set ignored: routed to %d", l.Replica())
		}
		l.Release(true)
	}
	st := g.Stats()
	if st.Replicas[0].Breaker != "open" || st.BreakerOpens != 1 {
		t.Fatalf("breaker after 2 failures: %+v", st.Replicas[0])
	}
	for k := 0; k < 4; k++ {
		l, err := g.Acquire(ctx, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if l.Replica() != 1 {
			t.Fatalf("read %d routed to breaker-open replica", k)
		}
		l.Release(false)
	}

	// After the cooldown a single probe is admitted; its success closes
	// the breaker and replica 0 serves again.
	time.Sleep(60 * time.Millisecond)
	l, err := g.Acquire(ctx, 0, []bool{false, true})
	if err != nil {
		t.Fatalf("probe read: %v", err)
	}
	if l.Replica() != 0 {
		t.Fatalf("probe routed to %d", l.Replica())
	}
	l.Release(false)
	st = g.Stats()
	if st.Replicas[0].Breaker != "closed" || st.BreakerProbes != 1 || st.BreakerCloses != 1 {
		t.Fatalf("breaker after successful probe: %+v (totals %d/%d/%d)",
			st.Replicas[0], st.BreakerOpens, st.BreakerProbes, st.BreakerCloses)
	}
}

func TestBreakerCooldownWakesBlockedAcquire(t *testing.T) {
	// Single replica, breaker opens: a blocked Acquire must wake when
	// the cooldown expires (nothing else broadcasts at that moment) and
	// get the half-open probe instead of sleeping out its deadline.
	g, err := New(Config{
		Replicas:  1,
		Bootstrap: bootstrapFake(0),
		Breaker:   BreakerConfig{Threshold: 1, Cooldown: 50 * time.Millisecond},
	}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	l, err := g.Acquire(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Release(true) // opens the breaker

	start := time.Now()
	actx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	l, err = g.Acquire(actx, 0, nil)
	if err != nil {
		t.Fatalf("Acquire across breaker cooldown: %v", err)
	}
	l.Release(false)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("blocked Acquire slept %v past a 50ms cooldown", elapsed)
	}
}

func TestTryAcquireAvoidsAndReportsExhaustion(t *testing.T) {
	g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	l, ok := g.TryAcquire(0, []bool{true, false})
	if !ok || l.Replica() != 1 {
		t.Fatalf("TryAcquire with avoid[0]: ok=%v lease=%+v", ok, l)
	}
	defer l.Release(false)
	if _, ok := g.TryAcquire(0, []bool{true, true}); ok {
		t.Fatal("TryAcquire leased an avoided replica")
	}
}

func TestRetireRemovesReplicaPermanently(t *testing.T) {
	g, err := New(Config{Replicas: 2, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	if err := g.Retire(0); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		l, err := g.Acquire(ctx, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if l.Replica() != 1 {
			t.Fatalf("read %d routed to retired replica", k)
		}
		l.Release(false)
	}
	if st := g.Stats().Replicas[0]; st.State != "failed" {
		t.Fatalf("retired replica state = %s", st.State)
	}

	// Retiring the last replica flips Acquire to ErrAllFailed.
	if err := g.Retire(1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(ctx, 0, nil); !errors.Is(err, ErrAllFailed) {
		t.Fatalf("Acquire with all retired: %v, want ErrAllFailed", err)
	}
	// Committed batches still ship nowhere without wedging the leader.
	commitN(g, 1, 2)
	if got := g.LeaderSeq(); got != 2 {
		t.Fatalf("LeaderSeq = %d, want 2", got)
	}
}

func TestShipStallSpikesLagThenRecovers(t *testing.T) {
	// Stall replica 0's application of batch 1 by 200ms: with MaxLag 0
	// reads route to replica 1 during the stall, and the stalled replica
	// catches up to the identical state afterwards.
	g, err := New(Config{
		Replicas:    2,
		Bootstrap:   bootstrapFake(0),
		ServeFaults: &faults.ServePlan{Stalls: []faults.ShipStall{{Replica: 0, Batch: 1, DelaySeconds: 0.2}}},
	}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	sum := commitN(g, 1, 3)

	// Replica 1 catches up quickly; replica 0 is stuck in the stall.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := g.Stats()
		if st.Replicas[1].Applied == 3 {
			if st.Replicas[0].Applied != 0 {
				t.Skip("stall too short to observe on this machine")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica 1 never caught up: %+v", st.Replicas)
		}
		time.Sleep(time.Millisecond)
	}
	l, err := g.Acquire(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Replica() != 0 {
		// Routing steered around the lagging replica.
		l.Release(false)
	} else {
		t.Fatal("read routed to a replica beyond the staleness bound")
	}

	waitCaughtUp(t, g)
	for i, r := range g.Stats().Replicas {
		if got := r.Node.(*fakeNode).Total(); got != sum {
			t.Fatalf("replica %d total %d after stall, want %d", i, got, sum)
		}
	}
}

func TestAcquireRacesSnapshotRefreshAtBatchBoundary(t *testing.T) {
	// Satellite race test: bounded-staleness Acquire racing SetSnapshot
	// compaction at a batch boundary, with concurrent commits and a
	// crash-loop forcing re-bootstraps from the moving snapshot. The
	// race detector is the assertion; totals are checked at the end.
	g, err := New(Config{Replicas: 2, MaxLag: 4, Bootstrap: bootstrapFake(0)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var sum int64
	wg.Add(1)
	go func() { // leader: commit batches and refresh the snapshot at each boundary
		defer wg.Done()
		var s int64
		for k := int64(1); k <= 200; k++ {
			g.Commit(nil, []int64{k})
			s += k
			if k%10 == 0 {
				g.SetSnapshot(snapshotOf(s), uint64(k))
			}
		}
		sum = s
		close(stop)
	}()
	wg.Add(1)
	go func() { // chaos: crash replica 0 now and then
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = g.Crash(0)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // readers: acquire within the staleness bound
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
				l, err := g.Acquire(tctx, uint64(w), nil)
				cancel()
				if err == nil {
					_ = l.Node().(*fakeNode).Total()
					l.Release(false)
				}
			}
		}(w)
	}
	wg.Wait()
	waitCaughtUp(t, g)
	for i, r := range g.Stats().Replicas {
		if got := r.Node.(*fakeNode).Total(); got != sum {
			t.Fatalf("replica %d total %d after race, want %d", i, got, sum)
		}
	}
}

func TestRetirementRacesConcurrentQueries(t *testing.T) {
	// Satellite race test: a deterministic apply failure retiring a
	// replica (lastFailSeq path) while queries hammer Acquire/Release.
	// No read may ever land on the retired replica's dead node.
	g, err := New(Config{Replicas: 2, MaxLag: 1000, Bootstrap: bootstrapFake(5)}, snapshotOf(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
				l, err := g.Acquire(tctx, uint64(w), nil)
				cancel()
				if err == nil {
					if l.Node() == nil {
						t.Error("lease on a nil node")
						l.Release(true)
						return
					}
					_ = l.Node().(*fakeNode).Total()
					l.Release(false)
				}
			}
		}(w)
	}
	// Batch carrying measure 5 deterministically fails on both replicas:
	// both retire while the readers run.
	commitN(g, 1, 10)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := g.Stats()
		if st.Replicas[0].State == "failed" && st.Replicas[1].State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("replicas not retired under load: %+v", st.Replicas)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}
