package balance

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImbalanceBasics(t *testing.T) {
	cases := []struct {
		sizes []int
		want  float64
	}{
		{nil, 0},
		{[]int{5}, 0},
		{[]int{10, 10, 10}, 0},
		{[]int{0, 0, 0}, 0},
		{[]int{20, 10}, 1.0 / 3},     // avg 15: (20-15)/15 = 1/3
		{[]int{0, 10, 20}, 1},        // avg 10: (10-0)/10 = 1
		{[]int{9, 10, 11}, 1.0 / 10}, // avg 10
	}
	for _, c := range cases {
		if got := Imbalance(c.sizes); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Imbalance(%v) = %v, want %v", c.sizes, got, c.want)
		}
	}
}

func TestImbalanceProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return Imbalance(nil) == 0
		}
		sizes := make([]int, len(raw))
		allEqual := true
		for i, v := range raw {
			sizes[i] = int(v)
			if v != raw[0] {
				allEqual = false
			}
		}
		I := Imbalance(sizes)
		if I < 0 {
			return false
		}
		if allEqual && I != 0 {
			return false
		}
		// Scale invariance.
		scaled := make([]int, len(sizes))
		for i := range sizes {
			scaled[i] = sizes[i] * 7
		}
		return math.Abs(Imbalance(scaled)-I) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTargets(t *testing.T) {
	got := Targets(10, 4)
	want := []int{0, 2, 5, 7, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets(10,4) = %v, want %v", got, want)
		}
	}
	// Target sizes are balanced within 1.
	for k := 0; k < 4; k++ {
		size := got[k+1] - got[k]
		if size < 2 || size > 3 {
			t.Fatalf("target part %d has size %d", k, size)
		}
	}
}

func TestTargetsImbalanceWithinOne(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw%16) + 1
		ts := Targets(n, p)
		if ts[0] != 0 || ts[p] != n {
			return false
		}
		for k := 0; k < p; k++ {
			size := ts[k+1] - ts[k]
			if size < n/p || size > n/p+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
