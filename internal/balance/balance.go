// Package balance implements the relative-imbalance metric the paper
// uses to decide when data must be rebalanced:
//
//	I(y0..yp-1) = max{ (ymax - yavg)/yavg, (yavg - ymin)/yavg }
//
// Adaptive–Sample–Sort triggers its "global shift" when I exceeds γ
// (default 1%), and Merge–Partitions distinguishes Case 2 from Case 3
// views by comparing I against γ (default 3%).
package balance

// Imbalance returns I(sizes). It is 0 for empty input, perfectly
// balanced input, or an all-zero distribution.
func Imbalance(sizes []int) float64 {
	if len(sizes) == 0 {
		return 0
	}
	min, max, sum := sizes[0], sizes[0], 0
	for _, y := range sizes {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
		sum += y
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(len(sizes))
	hi := (float64(max) - avg) / avg
	lo := (avg - float64(min)) / avg
	if hi > lo {
		return hi
	}
	return lo
}

// Targets returns the balanced target boundaries for redistributing a
// total of n items over p parts: part k owns global positions
// [Targets[k], Targets[k+1]). len(result) == p+1.
func Targets(n, p int) []int {
	t := make([]int, p+1)
	for k := 0; k <= p; k++ {
		t[k] = k * n / p
	}
	return t
}
