package record

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// The packed-key kernels (radix sort, loser-tree merges) are pure
// wall-clock optimizations: they produce the same sorted relations and
// leave every simulated-time charge untouched. kernelsOn is the global
// fallback switch; tests flip it to prove bit-identical cube output
// with the kernels disabled (see TestKernelDeterminism), and the
// wallbench harness flips it to measure the before/after.
var kernelsOff atomic.Bool // zero value = kernels enabled

// KernelsEnabled reports whether the packed-key kernels are active.
func KernelsEnabled() bool { return !kernelsOff.Load() }

// SetKernelsEnabled enables or disables the packed-key kernels
// process-wide and returns the previous setting. Disabling falls every
// sort and merge back to the comparison-based paths (sort.Sort,
// container/heap); outputs of the aggregation pipeline are unaffected.
func SetKernelsEnabled(on bool) bool {
	prev := !kernelsOff.Load()
	kernelsOff.Store(!on)
	return prev
}

// maxKeyBits is the widest sort prefix the kernels pack: one uint64
// for narrow prefixes, a [hi, lo] pair of uint64 for wide ones.
const maxKeyBits = 128

// KeyPlan describes how a table's row prefix packs into a fixed-width
// integer key: per-column bit widths, most-significant column first,
// so that unsigned integer comparison of packed keys is exactly the
// lexicographic comparison of the rows. A plan packs when the summed
// widths fit 128 bits (one uint64 when they fit 64).
//
// Widths come from schema cardinalities when the caller knows them
// (PlanKeyFromCards) or from a measured per-column maximum
// (MeasureKeyPlan, the default inside Table.Sort). A plan built from
// measured maxima is valid only for the rows it measured; merging
// tables requires the Union of their plans.
type KeyPlan struct {
	widths []uint8
	bits   int
}

// PlanKeyWidths builds a plan from explicit per-column bit widths.
func PlanKeyWidths(widths []uint8) KeyPlan {
	kp := KeyPlan{widths: widths}
	for _, w := range widths {
		if w > 32 {
			panic(fmt.Sprintf("record: key width %d exceeds 32 bits", w))
		}
		kp.bits += int(w)
	}
	return kp
}

// PlanKeyFromCards builds a plan from per-column cardinalities (values
// are assumed in [0, card)). Unknown cardinalities (card <= 0) cost a
// full 32 bits.
func PlanKeyFromCards(cards []int) KeyPlan {
	widths := make([]uint8, len(cards))
	for i, c := range cards {
		if c <= 0 || c > 1<<32-1 {
			widths[i] = 32
		} else {
			widths[i] = uint8(bits.Len64(uint64(c - 1)))
		}
	}
	return PlanKeyWidths(widths)
}

// MeasureKeyPlan measures the per-column maxima of t in one scan and
// returns the tightest plan covering its rows.
func MeasureKeyPlan(t *Table) KeyPlan {
	d := t.D
	n := t.Len()
	maxs := make([]uint32, d)
	for i := 0; i < n; i++ {
		base := i * d
		for j := 0; j < d; j++ {
			if v := t.dims[base+j]; v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	widths := make([]uint8, d)
	for j, m := range maxs {
		widths[j] = uint8(bits.Len32(m))
	}
	return PlanKeyWidths(widths)
}

// Bits returns the total packed width in bits.
func (kp KeyPlan) Bits() int { return kp.bits }

// Cols returns the number of columns the plan covers.
func (kp KeyPlan) Cols() int { return len(kp.widths) }

// Packable reports whether rows covered by the plan pack into the
// kernels' fixed-width keys.
func (kp KeyPlan) Packable() bool { return kp.bits <= maxKeyBits }

// Wide reports whether packed keys need the second (hi) word.
func (kp KeyPlan) Wide() bool { return kp.bits > 64 }

// Union returns the plan covering rows covered by either input (the
// per-column maximum width). Both plans must span the same columns.
func (kp KeyPlan) Union(o KeyPlan) KeyPlan {
	if len(kp.widths) != len(o.widths) {
		panic(fmt.Sprintf("record: union of key plans over %d and %d columns", len(kp.widths), len(o.widths)))
	}
	widths := make([]uint8, len(kp.widths))
	for i := range widths {
		widths[i] = kp.widths[i]
		if o.widths[i] > widths[i] {
			widths[i] = o.widths[i]
		}
	}
	return PlanKeyWidths(widths)
}

// PackRow packs row i of t (whose first Cols() columns must be covered
// by the plan) into a [hi, lo] key pair; hi is zero for narrow plans.
func (kp KeyPlan) PackRow(t *Table, i int) (hi, lo uint64) {
	base := i * t.D
	for j, w := range kp.widths {
		hi = hi<<w | lo>>(64-w)
		lo = lo<<w | uint64(t.dims[base+j])
	}
	return hi, lo
}

// PackKeys bulk-extracts the packed keys of every row of t into lo
// (and hi when the plan is wide; pass nil otherwise). The slices must
// have length t.Len(). This is the column-gather half of the radix
// kernel, exposed for benchmarks and cross-package merges.
func (kp KeyPlan) PackKeys(t *Table, hi, lo []uint64) {
	n := t.Len()
	if len(lo) != n || (kp.Wide() && len(hi) != n) {
		panic("record: PackKeys slice length mismatch")
	}
	d := t.D
	if kp.Wide() {
		for i := 0; i < n; i++ {
			var h, l uint64
			base := i * d
			for j, w := range kp.widths {
				h = h<<w | l>>(64-w)
				l = l<<w | uint64(t.dims[base+j])
			}
			hi[i], lo[i] = h, l
		}
		return
	}
	for i := 0; i < n; i++ {
		var l uint64
		base := i * d
		for j, w := range kp.widths {
			l = l<<w | uint64(t.dims[base+j])
		}
		lo[i] = l
	}
}
