package record

// Checksum returns an FNV-1a hash of the table's wire image (column
// count, then the row-major dimension values and measures). It is the
// integrity check on h-relation payloads: a retransmitting transport
// compares the received table's checksum against the sender's.
func (t *Table) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix32 := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime
		}
	}
	mix32(uint32(t.D))
	mix32(uint32(t.Len()))
	for _, v := range t.dims {
		mix32(v)
	}
	for _, m := range t.meas {
		mix32(uint32(m))
		mix32(uint32(uint64(m) >> 32))
	}
	return h
}

// Corrupt flips the bits of mask in one cell of the table (the first
// dimension value, or the first measure for zero-column tables). It
// reports whether anything changed; an empty table has no payload to
// damage. mask must be nonzero for the change to be observable.
func (t *Table) Corrupt(mask uint32) bool {
	if len(t.dims) > 0 {
		t.dims[0] ^= mask
		return true
	}
	if len(t.meas) > 0 {
		t.meas[0] ^= int64(mask)
		return true
	}
	return false
}
