package record

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowBytes(t *testing.T) {
	// The paper's 2M-row, 8-dimension raw set is 72 MB => 36 bytes/row.
	if got := RowBytes(8); got != 36 {
		t.Fatalf("RowBytes(8) = %d, want 36", got)
	}
	if got := RowBytes(0); got != 4 {
		t.Fatalf("RowBytes(0) = %d, want 4", got)
	}
}

func TestAppendAndAccessors(t *testing.T) {
	tb := New(3, 0)
	tb.Append([]uint32{1, 2, 3}, 10)
	tb.Append([]uint32{4, 5, 6}, 20)
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if tb.Dim(1, 2) != 6 {
		t.Fatalf("Dim(1,2) = %d, want 6", tb.Dim(1, 2))
	}
	if tb.Meas(0) != 10 || tb.Meas(1) != 20 {
		t.Fatalf("measures wrong: %d %d", tb.Meas(0), tb.Meas(1))
	}
	if got := tb.Bytes(); got != 2*RowBytes(3) {
		t.Fatalf("Bytes = %d, want %d", got, 2*RowBytes(3))
	}
	tb.AddMeas(0, 5)
	if tb.Meas(0) != 15 {
		t.Fatalf("AddMeas: got %d, want 15", tb.Meas(0))
	}
	tb.SetMeas(0, 7)
	if tb.Meas(0) != 7 {
		t.Fatalf("SetMeas: got %d, want 7", tb.Meas(0))
	}
}

func TestAppendPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong row width")
		}
	}()
	New(2, 0).Append([]uint32{1}, 1)
}

func TestAppendFromAndRange(t *testing.T) {
	src := FromRows(2, [][]uint32{{1, 1}, {2, 2}, {3, 3}}, []int64{1, 2, 3})
	dst := New(2, 0)
	dst.AppendFrom(src, 1)
	dst.AppendRange(src, 0, 2)
	dst.AppendTable(src)
	if dst.Len() != 6 {
		t.Fatalf("Len = %d, want 6", dst.Len())
	}
	if dst.Dim(0, 0) != 2 || dst.Dim(1, 0) != 1 || dst.Dim(2, 0) != 2 || dst.Dim(3, 0) != 1 {
		t.Fatalf("unexpected contents: %v", dst)
	}
}

func TestCloneAndSubAreDeep(t *testing.T) {
	src := FromRows(2, [][]uint32{{1, 1}, {2, 2}}, nil)
	c := src.Clone()
	c.SetMeas(0, 99)
	c.Row(0)[0] = 99
	if src.Meas(0) != 1 || src.Dim(0, 0) != 1 {
		t.Fatal("Clone aliases source")
	}
	s := src.Sub(1, 2)
	if s.Len() != 1 || s.Dim(0, 0) != 2 {
		t.Fatalf("Sub wrong: %v", s)
	}
	s.Row(0)[0] = 77
	if src.Dim(1, 0) != 2 {
		t.Fatal("Sub aliases source")
	}
}

func TestProject(t *testing.T) {
	src := FromRows(3, [][]uint32{{1, 2, 3}, {4, 5, 6}}, []int64{7, 8})
	p := src.Project([]int{2, 0})
	if p.D != 2 || p.Len() != 2 {
		t.Fatalf("shape wrong: %v", p)
	}
	if p.Dim(0, 0) != 3 || p.Dim(0, 1) != 1 || p.Dim(1, 0) != 6 || p.Dim(1, 1) != 4 {
		t.Fatalf("projection wrong: %v", p)
	}
	if p.Meas(1) != 8 {
		t.Fatalf("measure lost: %v", p)
	}
}

func TestSortAndIsSorted(t *testing.T) {
	tb := FromRows(2, [][]uint32{{3, 1}, {1, 2}, {1, 1}, {2, 9}}, nil)
	if tb.IsSorted() {
		t.Fatal("unsorted table reported sorted")
	}
	tb.Sort()
	if !tb.IsSorted() {
		t.Fatal("sorted table reported unsorted")
	}
	want := [][]uint32{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	for i, w := range want {
		if CompareRowKey(tb, i, w) != 0 {
			t.Fatalf("row %d = %v, want %v", i, tb.Row(i), w)
		}
	}
}

func TestAggregateSorted(t *testing.T) {
	tb := FromRows(3, [][]uint32{
		{1, 1, 5},
		{1, 1, 6},
		{1, 2, 7},
		{2, 2, 8},
		{2, 2, 9},
	}, []int64{1, 2, 3, 4, 5})
	agg := AggregateSorted(tb, 2)
	if agg.D != 2 || agg.Len() != 3 {
		t.Fatalf("agg shape wrong: %v", agg)
	}
	wantMeas := []int64{3, 3, 9}
	for i, w := range wantMeas {
		if agg.Meas(i) != w {
			t.Fatalf("agg meas %d = %d, want %d", i, agg.Meas(i), w)
		}
	}
	if agg.TotalMeasure() != tb.TotalMeasure() {
		t.Fatal("aggregation lost measure mass")
	}
}

func TestAggregateSortedEmpty(t *testing.T) {
	agg := AggregateSorted(New(3, 0), 2)
	if agg.Len() != 0 {
		t.Fatalf("want empty, got %d rows", agg.Len())
	}
}

func TestSortAggregateMatchesHashGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := New(3, 0)
	truth := map[[3]uint32]int64{}
	for i := 0; i < 500; i++ {
		r := []uint32{uint32(rng.Intn(4)), uint32(rng.Intn(4)), uint32(rng.Intn(4))}
		m := int64(rng.Intn(10))
		tb.Append(r, m)
		truth[[3]uint32{r[0], r[1], r[2]}] += m
	}
	agg := SortAggregate(tb)
	if agg.Len() != len(truth) {
		t.Fatalf("distinct count = %d, want %d", agg.Len(), len(truth))
	}
	for i := 0; i < agg.Len(); i++ {
		k := [3]uint32{agg.Dim(i, 0), agg.Dim(i, 1), agg.Dim(i, 2)}
		if truth[k] != agg.Meas(i) {
			t.Fatalf("group %v = %d, want %d", k, agg.Meas(i), truth[k])
		}
	}
	if !agg.IsSorted() {
		t.Fatal("aggregate not sorted")
	}
}

func TestCompareKeys(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want int
	}{
		{[]uint32{1, 2}, []uint32{1, 2}, 0},
		{[]uint32{1, 2}, []uint32{1, 3}, -1},
		{[]uint32{2}, []uint32{1, 9}, 1},
		{[]uint32{1}, []uint32{1, 0}, -1},
		{[]uint32{1, 0}, []uint32{1}, 1},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := CompareKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareKeys(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBounds(t *testing.T) {
	tb := FromRows(2, [][]uint32{{1, 1}, {1, 3}, {2, 0}, {2, 0}, {3, 5}}, nil)
	if got := LowerBound(tb, []uint32{2, 0}); got != 2 {
		t.Fatalf("LowerBound = %d, want 2", got)
	}
	if got := UpperBound(tb, []uint32{2, 0}); got != 4 {
		t.Fatalf("UpperBound = %d, want 4", got)
	}
	// Prefix key: all rows with first column 1.
	if lo, hi := LowerBound(tb, []uint32{1}), UpperBound(tb, []uint32{1}); lo != 0 || hi != 2 {
		t.Fatalf("prefix bounds = [%d,%d), want [0,2)", lo, hi)
	}
	if got := LowerBound(tb, []uint32{9, 9}); got != tb.Len() {
		t.Fatalf("LowerBound past end = %d, want %d", got, tb.Len())
	}
}

func TestMergeSorted(t *testing.T) {
	a := FromRows(2, [][]uint32{{1, 1}, {3, 3}}, []int64{1, 3})
	b := FromRows(2, [][]uint32{{2, 2}, {4, 4}}, []int64{2, 4})
	m := MergeSorted([]*Table{a, b})
	if m.Len() != 4 || !m.IsSorted() {
		t.Fatalf("merge wrong: %v", m)
	}
	if m.TotalMeasure() != 10 {
		t.Fatalf("measure mass = %d, want 10", m.TotalMeasure())
	}
}

func TestMergeSortedAggregate(t *testing.T) {
	a := FromRows(2, [][]uint32{{1, 1}, {2, 2}}, []int64{1, 2})
	b := FromRows(2, [][]uint32{{1, 1}, {3, 3}}, []int64{10, 3})
	m := MergeSortedAggregate([]*Table{a, b})
	if m.Len() != 3 {
		t.Fatalf("rows = %d, want 3", m.Len())
	}
	if m.Meas(0) != 11 {
		t.Fatalf("merged measure = %d, want 11", m.Meas(0))
	}
}

func TestMergeSortedAllEmpty(t *testing.T) {
	m := MergeSorted([]*Table{New(3, 0), New(3, 0)})
	if m.Len() != 0 || m.D != 3 {
		t.Fatalf("want empty 3-col table, got %v", m)
	}
	m = MergeSorted(nil)
	if m.Len() != 0 {
		t.Fatalf("want empty table, got %v", m)
	}
}

// randomTable builds a deterministic pseudo-random table from quick's
// fuzz inputs.
func randomTable(seed int64, n, d, card int) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = uint32(rng.Intn(card))
		}
		t.Append(row, int64(rng.Intn(100)))
	}
	return t
}

func TestQuickSortIsPermutation(t *testing.T) {
	f := func(seed int64, n8 uint8, d3 uint8) bool {
		n := int(n8)
		d := int(d3%4) + 1
		tb := randomTable(seed, n, d, 8)
		before := tb.TotalMeasure()
		counts := map[string]int{}
		key := func(tab *Table, i int) string {
			b := make([]byte, 0, d*4)
			for j := 0; j < d; j++ {
				v := tab.Dim(i, j)
				b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			return string(b)
		}
		for i := 0; i < n; i++ {
			counts[key(tb, i)]++
		}
		tb.Sort()
		if !tb.IsSorted() || tb.TotalMeasure() != before {
			return false
		}
		for i := 0; i < n; i++ {
			counts[key(tb, i)]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeEqualsSortConcat(t *testing.T) {
	f := func(seed int64, n1, n2 uint8) bool {
		a := randomTable(seed, int(n1), 3, 5)
		b := randomTable(seed+1, int(n2), 3, 5)
		a.Sort()
		b.Sort()
		merged := MergeSorted([]*Table{a, b})
		concat := New(3, 0)
		concat.AppendTable(a)
		concat.AppendTable(b)
		concat.Sort()
		if merged.Len() != concat.Len() || !merged.IsSorted() {
			return false
		}
		// Same multiset of rows and same total measure.
		return merged.TotalMeasure() == concat.TotalMeasure()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAggregatePreservesMass(t *testing.T) {
	f := func(seed int64, n8 uint8, kRaw uint8) bool {
		d := 4
		tb := randomTable(seed, int(n8)+1, d, 3)
		k := int(kRaw%uint8(d)) + 1
		tb.Sort()
		agg := AggregateSorted(tb, k)
		if agg.TotalMeasure() != tb.TotalMeasure() {
			return false
		}
		// No adjacent duplicates on the first k columns remain.
		for i := 1; i < agg.Len(); i++ {
			if agg.Compare(i-1, i, k) == 0 {
				return false
			}
		}
		return agg.IsSorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringElides(t *testing.T) {
	tb := randomTable(1, 100, 2, 4)
	s := tb.String()
	if len(s) == 0 || len(s) > 2000 {
		t.Fatalf("String() length %d unreasonable", len(s))
	}
}

func TestAggOpCombine(t *testing.T) {
	cases := []struct {
		op      AggOp
		a, b, w int64
	}{
		{OpSum, 3, 4, 7},
		{OpMin, 3, 4, 3},
		{OpMin, 4, 3, 3},
		{OpMax, 3, 4, 4},
		{OpMax, -5, -9, -5},
	}
	for _, c := range cases {
		if got := c.op.Combine(c.a, c.b); got != c.w {
			t.Errorf("%v.Combine(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.w)
		}
	}
	if OpSum.String() != "sum" || OpMin.String() != "min" || OpMax.String() != "max" {
		t.Fatal("AggOp strings wrong")
	}
}

func TestAggregateSortedOpMinMax(t *testing.T) {
	tb := FromRows(2, [][]uint32{{1, 1}, {1, 1}, {1, 1}, {2, 2}}, []int64{5, 2, 9, 4})
	min := AggregateSortedOp(tb, 2, OpMin)
	if min.Meas(0) != 2 || min.Meas(1) != 4 {
		t.Fatalf("min wrong: %v", min)
	}
	max := AggregateSortedOp(tb, 2, OpMax)
	if max.Meas(0) != 9 {
		t.Fatalf("max wrong: %v", max)
	}
}

func TestMergeSortedAggregateOp(t *testing.T) {
	a := FromRows(1, [][]uint32{{1}}, []int64{7})
	b := FromRows(1, [][]uint32{{1}, {2}}, []int64{3, 5})
	m := MergeSortedAggregateOp([]*Table{a, b}, OpMin)
	if m.Len() != 2 || m.Meas(0) != 3 || m.Meas(1) != 5 {
		t.Fatalf("merged min wrong: %v", m)
	}
}

func TestQuickAggOpsAssociative(t *testing.T) {
	f := func(vals []int64, opRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		op := AggOp(opRaw % 3)
		// Fold left and fold right must agree (associativity), and any
		// split must combine to the total.
		acc := vals[0]
		for _, v := range vals[1:] {
			acc = op.Combine(acc, v)
		}
		for split := 1; split < len(vals); split++ {
			l := vals[0]
			for _, v := range vals[1:split] {
				l = op.Combine(l, v)
			}
			r := vals[split]
			for _, v := range vals[split+1:] {
				r = op.Combine(r, v)
			}
			if op.Combine(l, r) != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	tb := randomTable(1, 50, 2, 4)
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatal("Reset did not truncate")
	}
	tb.Append([]uint32{1, 2}, 3)
	if tb.Len() != 1 || tb.Meas(0) != 3 {
		t.Fatal("table unusable after Reset")
	}
}

func TestFromRowsPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows(2, [][]uint32{{1}}, nil)
}

func TestProjectPanicsOnBadColumn(t *testing.T) {
	tb := randomTable(1, 5, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Project([]int{0, 2})
}

func TestNewPanicsOnNegativeColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 0)
}

func TestAppendFromPanicsOnMismatch(t *testing.T) {
	a, b := New(2, 0), randomTable(1, 3, 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.AppendFrom(b, 0)
}

func TestMergeMismatchedColumnsPanics(t *testing.T) {
	a := randomTable(1, 3, 2, 4)
	b := randomTable(2, 3, 3, 4)
	a.Sort()
	b.Sort()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeSorted([]*Table{a, b})
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := FromRows(2, [][]uint32{{1, 2}}, []int64{3})
	if !Equal(a, a.Clone()) {
		t.Fatal("clone not equal")
	}
	b := a.Clone()
	b.SetMeas(0, 4)
	if Equal(a, b) {
		t.Fatal("measure diff missed")
	}
	c := a.Clone()
	c.Row(0)[1] = 9
	if Equal(a, c) {
		t.Fatal("dim diff missed")
	}
	if Equal(a, New(2, 0)) || Equal(a, New(3, 0)) {
		t.Fatal("shape diff missed")
	}
}

func TestAggregateOpWrongWidthPanics(t *testing.T) {
	tb := randomTable(1, 5, 3, 4)
	tb.Sort()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AggregateSortedOpInto(tb, 2, New(3, 0), OpSum)
}

func TestCombineUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AggOp(99).Combine(1, 2)
}
