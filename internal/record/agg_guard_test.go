package record

import (
	"strings"
	"testing"
)

// TestAggOpsExhaustive is the op-switch guard: adding a new AggOp
// without updating AggOps(), String, Holistic, and Combine must fail
// here rather than silently falling through to sum somewhere downstream
// (make lint-aggop greps the serve/merge switches; this test pins the
// package-level contract).
func TestAggOpsExhaustive(t *testing.T) {
	ops := AggOps()
	if len(ops) == 0 {
		t.Fatal("AggOps is empty")
	}
	seen := map[AggOp]bool{}
	for i, op := range ops {
		if int(op) != i {
			t.Fatalf("AggOps()[%d] = %d; the list must cover the consts in declaration order", i, int(op))
		}
		if seen[op] {
			t.Fatalf("AggOps lists %v twice", op)
		}
		seen[op] = true
		if s := op.String(); strings.HasPrefix(s, "AggOp(") {
			t.Errorf("op %d has no String case", int(op))
		}
		// Holistic must classify every listed op without panicking.
		holistic := op.Holistic()

		if holistic {
			// A holistic op combined without sketch state must panic, not
			// silently produce a wrong scalar.
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("holistic op %v combined without state did not panic", op)
					}
				}()
				op.Combine(1, 2)
			}()
			continue
		}
		// Algebraic ops must combine associatively and commutatively.
		vals := []int64{-7, 0, 3, 12}
		for _, a := range vals {
			for _, b := range vals {
				if op.Combine(a, b) != op.Combine(b, a) {
					t.Errorf("%v not commutative at (%d,%d)", op, a, b)
				}
				for _, c := range vals {
					if op.Combine(op.Combine(a, b), c) != op.Combine(a, op.Combine(b, c)) {
						t.Errorf("%v not associative at (%d,%d,%d)", op, a, b, c)
					}
				}
			}
		}
	}
	// The list itself must be complete: the next integer after the last
	// listed op must be unknown to String (else a const was added without
	// extending AggOps, and every range-over-AggOps guard goes blind).
	next := AggOp(len(ops))
	if s := next.String(); !strings.HasPrefix(s, "AggOp(") {
		t.Fatalf("op %d (%s) has a String case but is missing from AggOps()", int(next), s)
	}
}

// TestAggSealAndStateBytesAlgebraic pins the algebraic fast path: an
// Agg without a StateCombiner is the bare operator (identity Seal,
// zero state bytes).
func TestAggSealAndStateBytesAlgebraic(t *testing.T) {
	a := Agg{Op: OpSum}
	if got := a.Combine(2, 3); got != 5 {
		t.Fatalf("Combine = %d", got)
	}
	if got := a.Seal(-42); got != -42 {
		t.Fatalf("Seal = %d", got)
	}
	if got := a.StateBytes(-42); got != 0 {
		t.Fatalf("StateBytes = %d", got)
	}
	tb := FromRows(1, [][]uint32{{1}, {2}}, []int64{5, -9})
	if got := a.TableStateBytes(tb); got != 0 {
		t.Fatalf("TableStateBytes = %d", got)
	}
}

// fakeCombiner counts calls so aggregation paths can be audited for
// seal-on-emit: every emitted accumulator must be sealed exactly once.
type fakeCombiner struct {
	sealed   map[int64]bool
	combines int
	next     int64
}

func newFakeCombiner() *fakeCombiner { return &fakeCombiner{sealed: map[int64]bool{}, next: -1} }

func (f *fakeCombiner) Combine(a, b int64) int64 {
	f.combines++
	if a < 0 && !f.sealed[a] {
		return a // open accumulator absorbs in place
	}
	h := f.next
	f.next--
	return h
}

func (f *fakeCombiner) Seal(h int64) int64 {
	if h < 0 {
		f.sealed[h] = true
	}
	return h
}

func (f *fakeCombiner) StateBytes(h int64) int {
	if h < 0 {
		return 16
	}
	return 0
}

// TestAggregateSealsOnEmit verifies the aggregation and merge paths
// seal every combined accumulator before it reaches the output table —
// the invariant that makes emitted tables safe to store, ship, and
// share.
func TestAggregateSealsOnEmit(t *testing.T) {
	check := func(name string, out *Table, f *fakeCombiner) {
		t.Helper()
		for i := 0; i < out.Len(); i++ {
			if m := out.Meas(i); m < 0 && !f.sealed[m] {
				t.Fatalf("%s: row %d emitted unsealed accumulator %d", name, i, m)
			}
		}
	}

	// Runs of 3, 1, 2 rows.
	mk := func() *Table {
		return FromRows(1,
			[][]uint32{{1}, {1}, {1}, {2}, {3}, {3}},
			[]int64{10, 11, 12, 20, 30, 31})
	}
	f := newFakeCombiner()
	out := AggregateSortedAgg(mk(), 1, Agg{Op: OpDistinct, State: f})
	if out.Len() != 3 {
		t.Fatalf("AggregateSortedAgg rows = %d", out.Len())
	}
	check("AggregateSortedAgg", out, f)
	if out.Meas(1) != 20 {
		t.Fatalf("singleton run must keep its raw measure, got %d", out.Meas(1))
	}

	f = newFakeCombiner()
	a := FromRows(1, [][]uint32{{1}, {2}, {4}}, []int64{1, 2, 4})
	b := FromRows(1, [][]uint32{{1}, {3}, {4}}, []int64{5, 3, 6})
	out = MergeSortedAggregateAgg([]*Table{a, b}, Agg{Op: OpDistinct, State: f})
	if out.Len() != 4 {
		t.Fatalf("MergeSortedAggregateAgg rows = %d", out.Len())
	}
	check("MergeSortedAggregateAgg", out, f)
}
