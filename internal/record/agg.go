package record

import "fmt"

// AggOp is the aggregate operator applied to measures when rows with
// equal keys are combined. The algebraic operators (sum/min/max) are
// associative and commutative over the raw int64 measure, which the
// distributed merge relies on: partial aggregates computed on
// different processors combine in any order. (COUNT is OpSum over unit
// measures; AVG is derivable from a SUM cube plus a COUNT cube, per
// Gray et al.'s algebraic-aggregate classification.)
//
// The holistic operators (distinct-count, quantile) cannot be combined
// through a bare int64: their per-group state is a mergeable sketch
// held in a sketch store, and the measure word is either a raw value
// (>= 0, an implicit singleton) or a negative handle into the store.
// Holistic combines therefore go through an Agg carrying a
// StateCombiner; calling Combine on a bare holistic AggOp panics.
type AggOp int

const (
	// OpSum adds measures (the default; also COUNT with measure 1).
	OpSum AggOp = iota
	// OpMin keeps the minimum measure.
	OpMin
	// OpMax keeps the maximum measure.
	OpMax
	// OpDistinct counts distinct raw measure values per group
	// (holistic; served as an estimate from a mergeable sketch).
	OpDistinct
	// OpQuantile tracks the distribution of raw measure values per
	// group (holistic; percentiles are served as estimates from a
	// mergeable sketch).
	OpQuantile
)

// AggOps lists every operator, in declaration order. Exhaustiveness
// tests range over it so a new operator cannot be added without every
// op switch (and this list) being updated in the same change.
func AggOps() []AggOp {
	return []AggOp{OpSum, OpMin, OpMax, OpDistinct, OpQuantile}
}

// Holistic reports whether the operator's per-group state is a
// mergeable sketch rather than the bare measure word. Holistic
// measures flow through Agg (operator + StateCombiner); every path
// that combines, ships, or serves measures must consult this.
func (op AggOp) Holistic() bool {
	switch op {
	case OpSum, OpMin, OpMax:
		return false
	case OpDistinct, OpQuantile:
		return true
	}
	panic(fmt.Sprintf("record: unknown aggregate operator %d", int(op)))
}

func (op AggOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpDistinct:
		return "distinct"
	case OpQuantile:
		return "quantile"
	}
	return fmt.Sprintf("AggOp(%d)", int(op))
}

// Combine merges two partial aggregates of an algebraic operator.
// Holistic operators panic: their state lives in a sketch store and
// must be combined through an Agg with a StateCombiner.
func (op AggOp) Combine(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpDistinct, OpQuantile:
		panic(fmt.Sprintf("record: holistic operator %v combined without a state combiner", op))
	}
	panic(fmt.Sprintf("record: unknown aggregate operator %d", int(op)))
}

// StateCombiner combines measure words whose state lives outside the
// table — the sketch store's per-rank view of itself. A measure word
// is either a raw value (>= 0, an implicit singleton sketch) or a
// negative handle naming a sketch in the store.
//
// Combine may mutate and return an open accumulator it owns; Seal
// freezes an accumulator into its canonical serialized form (identity
// on raw words and already-sealed handles) and MUST be called on every
// measure before it is written to disk, shipped, or shared — open
// state is private to the combining pass. StateBytes reports the extra
// wire/disk bytes the word's sketch state occupies beyond the measure
// word itself (0 for raw words), which communication charging adds to
// row bytes for honest h-relation accounting.
type StateCombiner interface {
	Combine(a, b int64) int64
	Seal(h int64) int64
	StateBytes(h int64) int
}

// Agg pairs an operator with the state combiner holistic operators
// need. The zero State is valid for algebraic operators; constructing
// an Agg for a holistic operator without State panics at first use.
type Agg struct {
	Op    AggOp
	State StateCombiner
}

// Combine merges two partial aggregates.
func (a Agg) Combine(x, y int64) int64 {
	if a.State != nil {
		return a.State.Combine(x, y)
	}
	return a.Op.Combine(x, y)
}

// Seal freezes x if it is an open sketch accumulator; identity for
// algebraic operators and raw/sealed words.
func (a Agg) Seal(x int64) int64 {
	if a.State != nil {
		return a.State.Seal(x)
	}
	return x
}

// StateBytes reports the sketch payload bytes of measure word x
// (0 for algebraic operators and raw words).
func (a Agg) StateBytes(x int64) int {
	if a.State != nil {
		return a.State.StateBytes(x)
	}
	return 0
}

// TableStateBytes sums the sketch payload bytes of every measure in t
// (0 for algebraic aggregates) — the honest extra volume a shipped or
// stored table carries beyond its row bytes.
func (a Agg) TableStateBytes(t *Table) int {
	if a.State == nil || t == nil {
		return 0
	}
	total := 0
	for i, n := 0, t.Len(); i < n; i++ {
		total += a.State.StateBytes(t.Meas(i))
	}
	return total
}

// AggregateSortedAggInto collapses runs of adjacent rows of t that are
// equal on the first k columns, emitting one row per run into out with
// the run's combined measure, sealed. t must be sorted on its first k
// columns; out must have k columns.
func AggregateSortedAggInto(t *Table, k int, out *Table, agg Agg) {
	if out.D != k {
		panic(fmt.Sprintf("record: aggregate output has %d columns, want %d", out.D, k))
	}
	n := t.Len()
	if n == 0 {
		return
	}
	runStart := 0
	acc := t.meas[0]
	combined := false
	for i := 1; i < n; i++ {
		if t.Compare(runStart, i, k) == 0 {
			acc = agg.Combine(acc, t.meas[i])
			combined = true
			continue
		}
		out.dims = append(out.dims, t.dims[runStart*t.D:runStart*t.D+k]...)
		if combined {
			acc = agg.Seal(acc)
		}
		out.meas = append(out.meas, acc)
		runStart = i
		acc = t.meas[i]
		combined = false
	}
	out.dims = append(out.dims, t.dims[runStart*t.D:runStart*t.D+k]...)
	if combined {
		acc = agg.Seal(acc)
	}
	out.meas = append(out.meas, acc)
}

// AggregateSortedOpInto is AggregateSortedAggInto for algebraic
// operators (no sketch state).
func AggregateSortedOpInto(t *Table, k int, out *Table, op AggOp) {
	AggregateSortedAggInto(t, k, out, Agg{Op: op})
}

// AggregateSortedAgg is AggregateSortedAggInto with a fresh output.
func AggregateSortedAgg(t *Table, k int, agg Agg) *Table {
	out := New(k, 0)
	AggregateSortedAggInto(t, k, out, agg)
	return out
}

// AggregateSortedOp is AggregateSortedOpInto with a fresh output.
func AggregateSortedOp(t *Table, k int, op AggOp) *Table {
	return AggregateSortedAgg(t, k, Agg{Op: op})
}

// SortAggregateAgg sorts t and collapses full-row duplicates.
func SortAggregateAgg(t *Table, agg Agg) *Table {
	t.Sort()
	return AggregateSortedAgg(t, t.D, agg)
}

// SortAggregateOp sorts t and collapses full-row duplicates with op.
func SortAggregateOp(t *Table, op AggOp) *Table {
	return SortAggregateAgg(t, Agg{Op: op})
}

// MergeSortedAggregateAgg merges sorted tables collapsing duplicates.
func MergeSortedAggregateAgg(tables []*Table, agg Agg) *Table {
	return mergeSortedAgg(tables, true, agg)
}

// MergeSortedAggregateOp merges sorted tables collapsing duplicates
// with op.
func MergeSortedAggregateOp(tables []*Table, op AggOp) *Table {
	return mergeSortedAgg(tables, true, Agg{Op: op})
}
