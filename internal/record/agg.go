package record

import "fmt"

// AggOp is the aggregate operator applied to measures when rows with
// equal keys are combined. All operators are associative and
// commutative, which the distributed merge relies on: partial
// aggregates computed on different processors combine in any order.
// (COUNT is OpSum over unit measures; AVG is derivable from a SUM cube
// plus a COUNT cube, per Gray et al.'s algebraic-aggregate
// classification.)
type AggOp int

const (
	// OpSum adds measures (the default; also COUNT with measure 1).
	OpSum AggOp = iota
	// OpMin keeps the minimum measure.
	OpMin
	// OpMax keeps the maximum measure.
	OpMax
)

func (op AggOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("AggOp(%d)", int(op))
}

// Combine merges two partial aggregates.
func (op AggOp) Combine(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("record: unknown aggregate operator %d", int(op)))
}

// AggregateSortedOpInto is AggregateSortedInto with an explicit
// operator.
func AggregateSortedOpInto(t *Table, k int, out *Table, op AggOp) {
	if out.D != k {
		panic(fmt.Sprintf("record: aggregate output has %d columns, want %d", out.D, k))
	}
	n := t.Len()
	if n == 0 {
		return
	}
	runStart := 0
	acc := t.meas[0]
	for i := 1; i < n; i++ {
		if t.Compare(runStart, i, k) == 0 {
			acc = op.Combine(acc, t.meas[i])
			continue
		}
		out.dims = append(out.dims, t.dims[runStart*t.D:runStart*t.D+k]...)
		out.meas = append(out.meas, acc)
		runStart = i
		acc = t.meas[i]
	}
	out.dims = append(out.dims, t.dims[runStart*t.D:runStart*t.D+k]...)
	out.meas = append(out.meas, acc)
}

// AggregateSortedOp is AggregateSortedOpInto with a fresh output.
func AggregateSortedOp(t *Table, k int, op AggOp) *Table {
	out := New(k, 0)
	AggregateSortedOpInto(t, k, out, op)
	return out
}

// SortAggregateOp sorts t and collapses full-row duplicates with op.
func SortAggregateOp(t *Table, op AggOp) *Table {
	t.Sort()
	return AggregateSortedOp(t, t.D, op)
}

// MergeSortedAggregateOp merges sorted tables collapsing duplicates
// with op.
func MergeSortedAggregateOp(tables []*Table, op AggOp) *Table {
	return mergeSortedOp(tables, true, op)
}
