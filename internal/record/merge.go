package record

import "container/heap"

// mergeItem is a cursor into one sorted input run.
type mergeItem struct {
	t   *Table
	pos int
	src int // input index, used to break ties deterministically
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := CompareTables(h[i].t, h[i].pos, h[j].t, h[j].pos, h[i].t.D)
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)      { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h mergeHeap) peek() *mergeItem { return &h[0] }
func (h mergeHeap) empty() bool      { return len(h) == 0 }

// MergeSorted merges sorted tables (all with the same column count,
// each sorted over all columns) into one sorted table. Ties are broken
// by input index, making the merge deterministic.
func MergeSorted(tables []*Table) *Table {
	return mergeSorted(tables, false)
}

// MergeSortedAggregate merges sorted tables and collapses full-row
// duplicates, summing measures. Each input must already be sorted; the
// inputs may contain rows equal to rows of other inputs (but are not
// required to be internally duplicate-free). Use
// MergeSortedAggregateOp for other aggregate operators.
func MergeSortedAggregate(tables []*Table) *Table {
	return mergeSortedAgg(tables, true, Agg{Op: OpSum})
}

func mergeSorted(tables []*Table, aggregate bool) *Table {
	return mergeSortedAgg(tables, aggregate, Agg{Op: OpSum})
}

// mergeSortedAgg dispatches between the packed-key loser-tree kernel
// and the comparison/heap fallback. Both produce identical output: the
// same global order with ties broken by input index.
func mergeSortedAgg(tables []*Table, aggregate bool, agg Agg) *Table {
	d := -1
	total := 0
	live := 0
	for _, t := range tables {
		if t == nil || t.Len() == 0 {
			continue
		}
		if d == -1 {
			d = t.D
		} else if t.D != d {
			panic("record: merging tables with different column counts")
		}
		total += t.Len()
		live++
	}
	if d == -1 {
		// All inputs empty: preserve column count if any input exists.
		for _, t := range tables {
			if t != nil {
				return New(t.D, 0)
			}
		}
		return New(0, 0)
	}
	if KernelsEnabled() && live > 1 {
		kp := KeyPlan{}
		planned := false
		for _, t := range tables {
			if t == nil || t.Len() == 0 {
				continue
			}
			p := MeasureKeyPlan(t)
			if !planned {
				kp, planned = p, true
			} else {
				kp = kp.Union(p)
			}
		}
		if kp.Packable() {
			return mergeSortedTree(tables, d, total, kp, aggregate, agg)
		}
	}
	return mergeSortedHeap(tables, d, total, aggregate, agg)
}

// mergeSortedTree is the kernel path: bulk-extract each input's packed
// keys once, then run the k-way loser tree over them. The aggregate
// duplicate test is one (or two) word compares against the last
// emitted key instead of a D-column row compare — packing is injective
// under the union plan, so key equality is row equality.
func mergeSortedTree(tables []*Table, d, total int, kp KeyPlan, aggregate bool, agg Agg) *Table {
	wide := kp.Wide()
	type stream struct {
		t      *Table
		pos    int
		hi, lo []uint64
	}
	streams := make([]stream, 0, len(tables))
	for _, t := range tables {
		if t == nil || t.Len() == 0 {
			continue
		}
		s := stream{t: t, lo: make([]uint64, t.Len())}
		if wide {
			s.hi = make([]uint64, t.Len())
		}
		kp.PackKeys(t, s.hi, s.lo)
		streams = append(streams, s)
	}
	lt := NewLoserTree(len(streams))
	for i := range streams {
		if wide {
			lt.SetKey(i, streams[i].hi[0], streams[i].lo[0])
		} else {
			lt.SetKey(i, 0, streams[i].lo[0])
		}
	}
	lt.Init()

	out := New(d, total)
	var lastHi, lastLo uint64
	have := false
	lastCombined := false
	for {
		w := lt.Winner()
		if w < 0 {
			break
		}
		s := &streams[w]
		var kh, kl uint64
		kl = s.lo[s.pos]
		if wide {
			kh = s.hi[s.pos]
		}
		if aggregate && have && kh == lastHi && kl == lastLo {
			out.SetMeas(out.Len()-1, agg.Combine(out.Meas(out.Len()-1), s.t.Meas(s.pos)))
			lastCombined = true
		} else {
			if lastCombined {
				out.SetMeas(out.Len()-1, agg.Seal(out.Meas(out.Len()-1)))
				lastCombined = false
			}
			out.AppendFrom(s.t, s.pos)
			lastHi, lastLo, have = kh, kl, true
		}
		if s.pos++; s.pos >= s.t.Len() {
			lt.Close(w)
		} else if wide {
			lt.SetKey(w, s.hi[s.pos], s.lo[s.pos])
		} else {
			lt.SetKey(w, 0, s.lo[s.pos])
		}
		lt.Fix()
	}
	if lastCombined {
		out.SetMeas(out.Len()-1, agg.Seal(out.Meas(out.Len()-1)))
	}
	return out
}

// mergeSortedHeap is the comparison fallback (and the oracle the
// kernel path is tested against): a container/heap of row cursors.
func mergeSortedHeap(tables []*Table, d, total int, aggregate bool, agg Agg) *Table {
	out := New(d, total)
	h := make(mergeHeap, 0, len(tables))
	for i, t := range tables {
		if t != nil && t.Len() > 0 {
			h = append(h, mergeItem{t: t, pos: 0, src: i})
		}
	}
	heap.Init(&h)
	lastCombined := false
	for !h.empty() {
		it := h.peek()
		row := it.t
		pos := it.pos
		if aggregate && out.Len() > 0 && CompareTables(out, out.Len()-1, row, pos, d) == 0 {
			out.SetMeas(out.Len()-1, agg.Combine(out.Meas(out.Len()-1), row.Meas(pos)))
			lastCombined = true
		} else {
			if lastCombined {
				out.SetMeas(out.Len()-1, agg.Seal(out.Meas(out.Len()-1)))
				lastCombined = false
			}
			out.AppendFrom(row, pos)
		}
		if it.pos++; it.pos >= it.t.Len() {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	if lastCombined {
		out.SetMeas(out.Len()-1, agg.Seal(out.Meas(out.Len()-1)))
	}
	return out
}
