package record

import "container/heap"

// mergeItem is a cursor into one sorted input run.
type mergeItem struct {
	t   *Table
	pos int
	src int // input index, used to break ties deterministically
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := CompareTables(h[i].t, h[i].pos, h[j].t, h[j].pos, h[i].t.D)
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)      { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any        { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h mergeHeap) peek() *mergeItem { return &h[0] }
func (h mergeHeap) empty() bool      { return len(h) == 0 }

// MergeSorted merges sorted tables (all with the same column count,
// each sorted over all columns) into one sorted table. Ties are broken
// by input index, making the merge deterministic.
func MergeSorted(tables []*Table) *Table {
	return mergeSorted(tables, false)
}

// MergeSortedAggregate merges sorted tables and collapses full-row
// duplicates, summing measures. Each input must already be sorted; the
// inputs may contain rows equal to rows of other inputs (but are not
// required to be internally duplicate-free). Use
// MergeSortedAggregateOp for other aggregate operators.
func MergeSortedAggregate(tables []*Table) *Table {
	return mergeSortedOp(tables, true, OpSum)
}

func mergeSorted(tables []*Table, aggregate bool) *Table {
	return mergeSortedOp(tables, aggregate, OpSum)
}

func mergeSortedOp(tables []*Table, aggregate bool, op AggOp) *Table {
	d := -1
	total := 0
	for _, t := range tables {
		if t == nil || t.Len() == 0 {
			continue
		}
		if d == -1 {
			d = t.D
		} else if t.D != d {
			panic("record: merging tables with different column counts")
		}
		total += t.Len()
	}
	if d == -1 {
		// All inputs empty: preserve column count if any input exists.
		for _, t := range tables {
			if t != nil {
				return New(t.D, 0)
			}
		}
		return New(0, 0)
	}
	out := New(d, total)
	h := make(mergeHeap, 0, len(tables))
	for i, t := range tables {
		if t != nil && t.Len() > 0 {
			h = append(h, mergeItem{t: t, pos: 0, src: i})
		}
	}
	heap.Init(&h)
	for !h.empty() {
		it := h.peek()
		row := it.t
		pos := it.pos
		if aggregate && out.Len() > 0 && CompareTables(out, out.Len()-1, row, pos, d) == 0 {
			out.SetMeas(out.Len()-1, op.Combine(out.Meas(out.Len()-1), row.Meas(pos)))
		} else {
			out.AppendFrom(row, pos)
		}
		if it.pos++; it.pos >= it.t.Len() {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}
