package record

import (
	"math/rand"
	"testing"
)

// stableSortRef is the oracle for the radix path: indices sorted with
// a stable comparison sort, then gathered. The radix kernel is LSD
// (stable), so its output must match this exactly — measures included.
func stableSortRef(t *Table) *Table {
	idx := make([]int, t.Len())
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort on indices: O(n^2) but trivially stable and
	// obviously correct for test-sized inputs.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && t.Compare(idx[j], idx[j-1], t.D) < 0; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := New(t.D, t.Len())
	for _, p := range idx {
		out.AppendFrom(t, p)
	}
	return out
}

// wideRandomTable builds a table whose measured key plan exceeds 128
// bits (full 32-bit values in every column), forcing the comparison
// fallback for d >= 5.
func wideRandomTable(seed int64, n, d int) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := New(d, n)
	row := make([]uint32, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Uint32() | 1<<31 // force width 32 per column
		}
		t.Append(row, int64(rng.Intn(100)))
	}
	return t
}

func TestKeyPlanPackRowOrdersLikeCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3, 4} {
		tb := randomTable(rng.Int63(), 200, d, 1<<uint(4*d)) // up to 16 bits/col
		kp := MeasureKeyPlan(tb)
		if !kp.Packable() {
			t.Fatalf("d=%d plan unexpectedly unpackable (%d bits)", d, kp.Bits())
		}
		for trial := 0; trial < 500; trial++ {
			i, j := rng.Intn(tb.Len()), rng.Intn(tb.Len())
			hi1, lo1 := kp.PackRow(tb, i)
			hi2, lo2 := kp.PackRow(tb, j)
			keyCmp := 0
			if hi1 != hi2 || lo1 != lo2 {
				keyCmp = -1
				if hi1 > hi2 || (hi1 == hi2 && lo1 > lo2) {
					keyCmp = 1
				}
			}
			if rowCmp := tb.Compare(i, j, d); keyCmp != rowCmp {
				t.Fatalf("d=%d rows %d,%d: key compare %d, row compare %d", d, i, j, keyCmp, rowCmp)
			}
		}
	}
}

func TestKeyPlanWidePackOrdersLikeCompare(t *testing.T) {
	// 5 columns of full 32-bit values: 160 bits, unpackable. 3 columns:
	// 96 bits, wide (two-word) but packable.
	tb := wideRandomTable(3, 300, 3)
	kp := MeasureKeyPlan(tb)
	if !kp.Packable() || !kp.Wide() {
		t.Fatalf("want wide packable plan, got bits=%d", kp.Bits())
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		i, j := rng.Intn(tb.Len()), rng.Intn(tb.Len())
		hi1, lo1 := kp.PackRow(tb, i)
		hi2, lo2 := kp.PackRow(tb, j)
		keyCmp := 0
		if hi1 != hi2 || lo1 != lo2 {
			keyCmp = -1
			if hi1 > hi2 || (hi1 == hi2 && lo1 > lo2) {
				keyCmp = 1
			}
		}
		if rowCmp := tb.Compare(i, j, tb.D); keyCmp != rowCmp {
			t.Fatalf("rows %d,%d: key compare %d, row compare %d", i, j, keyCmp, rowCmp)
		}
	}
}

func TestPlanKeyFromCards(t *testing.T) {
	kp := PlanKeyFromCards([]int{256, 2, 1, 0, 1 << 20})
	want := []uint8{8, 1, 0, 32, 20}
	for i, w := range want {
		if kp.widths[i] != w {
			t.Fatalf("card width %d = %d, want %d", i, kp.widths[i], w)
		}
	}
	if kp.Bits() != 61 {
		t.Fatalf("bits = %d, want 61", kp.Bits())
	}
}

func TestRadixSortMatchesStableOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := []struct {
		n, d, card int
	}{
		{radixMinRows, 1, 4},     // d=1, heavy duplicates
		{500, 1, 1 << 20},        // d=1, wide values
		{500, 4, 7},              // duplicates across a medium prefix
		{2000, 8, 256},           // the paper's d=8 shape
		{300, 10, 4},             // d=10, narrow columns still pack
		{257, 3, 1 << 16},        // 48-bit keys
		{1000, 3, 1 << 31},       // 93+ bit keys: wide two-word path
		{radixMinRows + 1, 2, 1}, // all-equal keys
	}
	for _, c := range cases {
		tb := randomTable(rng.Int63(), c.n, c.d, c.card)
		kp := MeasureKeyPlan(tb)
		if !kp.Packable() {
			t.Fatalf("case %+v should pack (bits=%d)", c, kp.Bits())
		}
		want := stableSortRef(tb)
		got := tb.Clone()
		got.sortRadix(kp)
		if !Equal(got, want) {
			t.Fatalf("case %+v: radix sort differs from stable oracle", c)
		}
	}
}

func TestSortFallbackWhenUnpackable(t *testing.T) {
	// 10 columns of full-width values cannot pack (320 bits); Sort must
	// still produce a correctly sorted permutation of the input.
	tb := wideRandomTable(11, 400, 10)
	if kp := MeasureKeyPlan(tb); kp.Packable() {
		t.Fatalf("expected unpackable plan, got %d bits", kp.Bits())
	}
	before := tb.TotalMeasure()
	tb.Sort()
	if !tb.IsSorted() || tb.TotalMeasure() != before {
		t.Fatal("fallback sort incorrect")
	}
}

func TestSortKernelsToggle(t *testing.T) {
	// Sorting the same duplicate-free table with kernels on and off
	// must agree bit-for-bit (with duplicates only the dims agree;
	// the aggregated relation is the determinism boundary, asserted
	// end-to-end in core's TestKernelDeterminism).
	rng := rand.New(rand.NewSource(21))
	tb := New(2, 0)
	seen := map[uint64]bool{}
	for len(seen) < 900 {
		a, b := uint32(rng.Intn(1000)), uint32(rng.Intn(1000))
		k := uint64(a)<<32 | uint64(b)
		if !seen[k] {
			seen[k] = true
			tb.Append([]uint32{a, b}, int64(rng.Intn(50)))
		}
	}
	on := tb.Clone()
	on.Sort()
	prev := SetKernelsEnabled(false)
	defer SetKernelsEnabled(prev)
	off := tb.Clone()
	off.Sort()
	if !Equal(on, off) {
		t.Fatal("kernels-on and kernels-off sorts disagree on duplicate-free input")
	}
}

func TestSortEmptyAndTiny(t *testing.T) {
	e := New(3, 0)
	e.Sort()
	if e.Len() != 0 {
		t.Fatal("empty sort corrupted table")
	}
	one := FromRows(2, [][]uint32{{5, 5}}, []int64{3})
	one.Sort()
	if one.Meas(0) != 3 {
		t.Fatal("singleton sort corrupted table")
	}
	zeroCols := New(0, 0)
	zeroCols.Append(nil, 1)
	zeroCols.Append(nil, 2)
	zeroCols.Sort()
	if zeroCols.Len() != 2 || zeroCols.TotalMeasure() != 3 {
		t.Fatal("zero-column sort corrupted table")
	}
}

func TestSortWithPlanFromCards(t *testing.T) {
	cards := []int{256, 128, 64, 32, 16, 8, 6, 6}
	tb := randomTable(5, 3000, 8, 6) // values < 6 fit every card
	kp := PlanKeyFromCards(cards)
	want := stableSortRef(tb)
	tb.SortWithPlan(kp, true)
	if !Equal(tb, want) {
		t.Fatal("SortWithPlan(cards) differs from stable oracle")
	}
}

func TestApplyPermutation(t *testing.T) {
	tb := FromRows(2, [][]uint32{{0, 0}, {1, 1}, {2, 2}, {3, 3}}, []int64{0, 1, 2, 3})
	ApplyPermutation(tb, []uint32{3, 1, 0, 2})
	want := FromRows(2, [][]uint32{{3, 3}, {1, 1}, {0, 0}, {2, 2}}, []int64{3, 1, 0, 2})
	if !Equal(tb, want) {
		t.Fatalf("permutation wrong: %v", tb)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	ApplyPermutation(tb, []uint32{0})
}

func TestLoserTreeMergeMatchesHeapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(9) + 1
		d := rng.Intn(4) + 1
		card := []int{2, 8, 1 << 10, 1 << 20}[rng.Intn(4)]
		tables := make([]*Table, k)
		total := 0
		for i := range tables {
			n := rng.Intn(200)
			if rng.Intn(5) == 0 {
				n = 0
			}
			tables[i] = randomTable(rng.Int63(), n, d, card)
			tables[i].Sort()
			total += n
		}
		for _, aggregate := range []bool{false, true} {
			for _, op := range []AggOp{OpSum, OpMin, OpMax} {
				want := mergeSortedHeap(tables, d, total, aggregate, Agg{Op: op})
				got := mergeSortedAgg(tables, aggregate, Agg{Op: op})
				if !Equal(got, want) {
					t.Fatalf("trial %d (k=%d d=%d agg=%v op=%v): tree merge differs from heap",
						trial, k, d, aggregate, op)
				}
			}
		}
	}
}

func TestLoserTreeMergeUnpackableFallsBack(t *testing.T) {
	// 6 full-width columns force the heap path; output must still be a
	// correct aggregating merge.
	a := wideRandomTable(17, 150, 6)
	b := wideRandomTable(18, 150, 6)
	a.Sort()
	b.Sort()
	m := MergeSortedAggregate([]*Table{a, b})
	if !m.IsSorted() {
		t.Fatal("fallback merge not sorted")
	}
	if m.TotalMeasure() != a.TotalMeasure()+b.TotalMeasure() {
		t.Fatal("fallback merge lost measure mass")
	}
}

func TestLoserTreeDirect(t *testing.T) {
	// Exercise the tree structure itself for every k, including
	// interleaved closes, against a linear-scan reference.
	rng := rand.New(rand.NewSource(31))
	for k := 1; k <= 17; k++ {
		type src struct {
			keys []uint64
			pos  int
		}
		srcs := make([]src, k)
		var all []uint64
		for i := range srcs {
			n := rng.Intn(30)
			keys := make([]uint64, n)
			for j := range keys {
				keys[j] = uint64(rng.Intn(50))
			}
			// Each stream must be sorted.
			for a := 1; a < n; a++ {
				for b := a; b > 0 && keys[b] < keys[b-1]; b-- {
					keys[b], keys[b-1] = keys[b-1], keys[b]
				}
			}
			srcs[i] = src{keys: keys}
			all = append(all, keys...)
		}
		for a := 1; a < len(all); a++ {
			for b := a; b > 0 && all[b] < all[b-1]; b-- {
				all[b], all[b-1] = all[b-1], all[b]
			}
		}
		lt := NewLoserTree(k)
		for i := range srcs {
			if len(srcs[i].keys) > 0 {
				lt.SetKey(i, 0, srcs[i].keys[0])
			}
		}
		lt.Init()
		var got []uint64
		for {
			w := lt.Winner()
			if w < 0 {
				break
			}
			s := &srcs[w]
			got = append(got, s.keys[s.pos])
			s.pos++
			if s.pos >= len(s.keys) {
				lt.Close(w)
			} else {
				lt.SetKey(w, 0, s.keys[s.pos])
			}
			lt.Fix()
		}
		if len(got) != len(all) {
			t.Fatalf("k=%d: popped %d keys, want %d", k, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("k=%d: key %d = %d, want %d", k, i, got[i], all[i])
			}
		}
	}
}

func TestMergeKernelsToggleIdenticalOnDistinctKeys(t *testing.T) {
	// With globally distinct keys (no ties beyond src ordering of equal
	// rows), tree and heap merges are bit-identical even without
	// aggregation.
	rng := rand.New(rand.NewSource(77))
	k := 5
	tables := make([]*Table, k)
	used := map[uint32]bool{}
	for i := range tables {
		tables[i] = New(1, 0)
		for j := 0; j < 100; j++ {
			v := uint32(rng.Intn(100000))
			if used[v] {
				continue
			}
			used[v] = true
			tables[i].Append([]uint32{v}, int64(v))
		}
		tables[i].Sort()
	}
	on := MergeSorted(tables)
	prev := SetKernelsEnabled(false)
	defer SetKernelsEnabled(prev)
	off := MergeSorted(tables)
	if !Equal(on, off) {
		t.Fatal("kernel and fallback merges disagree")
	}
}

func TestZeroColumnMergeAndPlan(t *testing.T) {
	// Regression: a pure-aggregate query projects to zero group-by
	// columns; MeasureKeyPlan must terminate on d=0 tables and the
	// merge must collapse everything into one row.
	mk := func(meas ...int64) *Table {
		tb := New(0, len(meas))
		for _, m := range meas {
			tb.Append(nil, m)
		}
		return tb
	}
	kp := MeasureKeyPlan(mk(1, 2, 3))
	if kp.Cols() != 0 || !kp.Packable() || kp.Wide() {
		t.Fatalf("bad zero-column plan: %+v", kp)
	}
	got := MergeSortedAggregate([]*Table{mk(1, 2), mk(10), mk(100, 200)})
	if got.Len() != 1 || got.Meas(0) != 313 {
		t.Fatalf("zero-column aggregate merge: len=%d meas=%v", got.Len(), got)
	}
	want := mergeSortedHeap([]*Table{mk(1, 2), mk(10), mk(100, 200)}, 0, 5, true, Agg{Op: OpSum})
	if !Equal(got, want) {
		t.Fatal("zero-column merge differs from heap oracle")
	}
}
