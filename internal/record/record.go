// Package record provides the relational substrate for ROLAP cube
// construction: d-dimensional records with a single additive measure,
// stored in flat row-major tables, together with comparators over
// attribute orders and adjacent-duplicate agglomeration.
//
// A Table with D columns models a relation whose rows are tuples of D
// uint32 dimension values plus one int64 measure. Views of a data cube
// are themselves Tables whose columns are exactly the view's attributes,
// laid out in the view's attribute order. A Table does not know which
// cube dimensions its columns correspond to; that mapping lives in the
// lattice package.
//
// The sort-dominated hot paths run on packed-key kernels (key.go,
// radix.go, losertree.go): per-column bit widths pack a row into one
// or two machine words (KeyPlan), sorting is an LSD radix sort over
// (key, rowIdx) pairs followed by one permutation gather, and k-way
// merges run a loser tree on packed keys. The kernels are wall-clock
// optimizations only — every simulated-time charge and every
// aggregated relation is identical with them disabled
// (SetKernelsEnabled), which the determinism tests assert.
package record

import (
	"fmt"
	"sort"
	"strings"
)

// DimBytes is the on-disk/on-wire width of one dimension value. The
// paper's data sets use 4-byte dimension encodings (2M rows x 8 dims +
// measure = 72 MB), which RowBytes reproduces.
const DimBytes = 4

// MeasBytes is the on-disk/on-wire width of the measure.
const MeasBytes = 4

// RowBytes returns the modelled size in bytes of one row with d
// dimension columns. It is used for all disk and network accounting so
// that simulated volumes match the paper's (36-byte rows at d=8).
func RowBytes(d int) int { return DimBytes*d + MeasBytes }

// Table is a relation of rows with D uint32 dimension columns and one
// int64 measure column, stored row-major in flat slices. The zero value
// is unusable; construct with New.
type Table struct {
	// D is the number of dimension columns per row.
	D    int
	dims []uint32 // len = n*D, row-major
	meas []int64  // len = n
}

// New returns an empty table with d dimension columns and capacity for
// capRows rows.
func New(d, capRows int) *Table {
	if d < 0 {
		panic(fmt.Sprintf("record: negative column count %d", d))
	}
	return &Table{
		D:    d,
		dims: make([]uint32, 0, capRows*d),
		meas: make([]int64, 0, capRows),
	}
}

// FromRows builds a table from explicit rows; each row must have d
// dimension values. Measures are set to meas[i] if provided, else 1.
// Intended for tests and examples.
func FromRows(d int, rows [][]uint32, meas []int64) *Table {
	t := New(d, len(rows))
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("record: row %d has %d values, want %d", i, len(r), d))
		}
		m := int64(1)
		if meas != nil {
			m = meas[i]
		}
		t.Append(r, m)
	}
	return t
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.meas) }

// Bytes returns the modelled byte size of the whole table.
func (t *Table) Bytes() int { return t.Len() * RowBytes(t.D) }

// Dim returns dimension column j of row i.
func (t *Table) Dim(i, j int) uint32 { return t.dims[i*t.D+j] }

// Meas returns the measure of row i.
func (t *Table) Meas(i int) int64 { return t.meas[i] }

// SetMeas overwrites the measure of row i.
func (t *Table) SetMeas(i int, m int64) { t.meas[i] = m }

// AddMeas adds delta to the measure of row i.
func (t *Table) AddMeas(i int, delta int64) { t.meas[i] += delta }

// Row returns a copy-free view of row i's dimension values. The slice
// aliases the table; callers must not retain it across mutations.
func (t *Table) Row(i int) []uint32 { return t.dims[i*t.D : i*t.D+t.D] }

// RowCopy returns a fresh copy of row i's dimension values.
func (t *Table) RowCopy(i int) []uint32 {
	r := make([]uint32, t.D)
	copy(r, t.Row(i))
	return r
}

// Append adds a row with the given dimension values and measure.
func (t *Table) Append(dims []uint32, meas int64) {
	if len(dims) != t.D {
		panic(fmt.Sprintf("record: appending %d values to %d-column table", len(dims), t.D))
	}
	t.dims = append(t.dims, dims...)
	t.meas = append(t.meas, meas)
}

// AppendFrom appends row i of src (which must have the same column
// count) to t.
func (t *Table) AppendFrom(src *Table, i int) {
	if src.D != t.D {
		panic(fmt.Sprintf("record: appending from %d-column table to %d-column table", src.D, t.D))
	}
	t.dims = append(t.dims, src.Row(i)...)
	t.meas = append(t.meas, src.meas[i])
}

// AppendRange appends rows [lo,hi) of src to t.
func (t *Table) AppendRange(src *Table, lo, hi int) {
	if src.D != t.D {
		panic(fmt.Sprintf("record: appending from %d-column table to %d-column table", src.D, t.D))
	}
	t.dims = append(t.dims, src.dims[lo*src.D:hi*src.D]...)
	t.meas = append(t.meas, src.meas[lo:hi]...)
}

// AppendTable appends all rows of src to t.
func (t *Table) AppendTable(src *Table) { t.AppendRange(src, 0, src.Len()) }

// Reset truncates the table to zero rows, retaining capacity.
func (t *Table) Reset() {
	t.dims = t.dims[:0]
	t.meas = t.meas[:0]
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New(t.D, t.Len())
	c.dims = append(c.dims, t.dims...)
	c.meas = append(c.meas, t.meas...)
	return c
}

// Sub returns a deep copy of rows [lo,hi).
func (t *Table) Sub(lo, hi int) *Table {
	c := New(t.D, hi-lo)
	c.AppendRange(t, lo, hi)
	return c
}

// Project returns a new table whose columns are the given columns of t,
// in the given order, preserving row order and measures. cols indexes
// t's columns. It is how a coarser view's tuple layout is derived from a
// finer one before aggregation; it runs under every Pipesort sort edge,
// so the output is preallocated at exact capacity and filled by index
// rather than per-element append.
func (t *Table) Project(cols []int) *Table {
	for _, c := range cols {
		if c < 0 || c >= t.D {
			panic(fmt.Sprintf("record: project column %d out of range 0..%d", c, t.D-1))
		}
	}
	n := t.Len()
	k := len(cols)
	out := New(k, n)
	out.dims = out.dims[:n*k]
	out.meas = out.meas[:n]
	for i := 0; i < n; i++ {
		base := i * t.D
		obase := i * k
		for j, c := range cols {
			out.dims[obase+j] = t.dims[base+c]
		}
	}
	copy(out.meas, t.meas)
	return out
}

// Swap exchanges rows i and j.
func (t *Table) Swap(i, j int) {
	if i == j {
		return
	}
	a, b := i*t.D, j*t.D
	for k := 0; k < t.D; k++ {
		t.dims[a+k], t.dims[b+k] = t.dims[b+k], t.dims[a+k]
	}
	t.meas[i], t.meas[j] = t.meas[j], t.meas[i]
}

// Compare lexicographically compares rows i and j of t on the first k
// columns, returning -1, 0, or +1.
func (t *Table) Compare(i, j, k int) int {
	a, b := i*t.D, j*t.D
	for c := 0; c < k; c++ {
		switch {
		case t.dims[a+c] < t.dims[b+c]:
			return -1
		case t.dims[a+c] > t.dims[b+c]:
			return 1
		}
	}
	return 0
}

// CompareTables lexicographically compares row i of a with row j of b on
// the first k columns. Both tables must have at least k columns with the
// same semantics.
func CompareTables(a *Table, i int, b *Table, j, k int) int {
	for c := 0; c < k; c++ {
		av, bv := a.dims[i*a.D+c], b.dims[j*b.D+c]
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	}
	return 0
}

// CompareRowKey compares row i of t against a key on the first
// min(len(key), k) columns.
func CompareRowKey(t *Table, i int, key []uint32) int {
	base := i * t.D
	k := len(key)
	if k > t.D {
		k = t.D
	}
	for c := 0; c < k; c++ {
		switch {
		case t.dims[base+c] < key[c]:
			return -1
		case t.dims[base+c] > key[c]:
			return 1
		}
	}
	return 0
}

// CompareKeys lexicographically compares two keys; a shorter key that is
// a prefix of the longer compares less.
func CompareKeys(a, b []uint32) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for c := 0; c < n; c++ {
		switch {
		case a[c] < b[c]:
			return -1
		case a[c] > b[c]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// sorter adapts Table to sort.Interface over all columns.
type sorter struct{ t *Table }

func (s sorter) Len() int           { return s.t.Len() }
func (s sorter) Swap(i, j int)      { s.t.Swap(i, j) }
func (s sorter) Less(i, j int) bool { return s.t.Compare(i, j, s.t.D) < 0 }

// Sort sorts the table in place lexicographically over all columns.
//
// When the packed-key kernels are enabled (the default; see
// SetKernelsEnabled) and the rows pack into fixed-width integer keys
// (MeasureKeyPlan/KeyPlan), sorting runs the LSD radix kernel: pack
// one key per row, radix sort (key, rowIdx) pairs, and reorder dims
// and meas with a single gather (ApplyPermutation) instead of
// O(n log n) multi-word swaps. Unpackable rows, tiny tables, and
// kernels-off all fall back to the comparison sort. Callers charge
// simulated time via costmodel.SortOps regardless of the path taken —
// the kernels change wall-clock time only.
func (t *Table) Sort() {
	t.SortWithPlan(KeyPlan{}, false)
}

// SortWithPlan is Sort with a caller-supplied key plan (e.g. built
// from schema cardinalities with PlanKeyFromCards); when havePlan is
// false the plan is measured from the data. The plan must cover every
// value in the table or the packed order would be wrong.
func (t *Table) SortWithPlan(kp KeyPlan, havePlan bool) {
	n := t.Len()
	if n <= 1 {
		return
	}
	if KernelsEnabled() && n >= radixMinRows && t.D > 0 {
		if !havePlan {
			kp = MeasureKeyPlan(t)
		}
		if kp.Cols() == t.D && kp.Packable() {
			t.sortRadix(kp)
			return
		}
	}
	sort.Sort(sorter{t})
}

// IsSorted reports whether the table is sorted over all columns.
func (t *Table) IsSorted() bool { return sort.IsSorted(sorter{t}) }

// AggregateSortedInto collapses runs of adjacent rows of t that are
// equal on the first k columns, emitting one row per run into out: the
// run's first k dimension values with the sum of the run's measures.
// t must be sorted on its first k columns; out must have k columns.
// Use AggregateSortedOpInto for other aggregate operators.
func AggregateSortedInto(t *Table, k int, out *Table) {
	AggregateSortedOpInto(t, k, out, OpSum)
}

// AggregateSorted is AggregateSortedInto with a freshly allocated output.
func AggregateSorted(t *Table, k int) *Table {
	out := New(k, 0)
	AggregateSortedInto(t, k, out)
	return out
}

// SortAggregate sorts t (over all columns) and returns the aggregation
// of full-row duplicates. t is mutated by the sort.
func SortAggregate(t *Table) *Table {
	t.Sort()
	return AggregateSorted(t, t.D)
}

// Equal reports whether a and b have identical shape and contents.
func Equal(a, b *Table) bool {
	if a.D != b.D || a.Len() != b.Len() {
		return false
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return false
		}
	}
	for i := range a.meas {
		if a.meas[i] != b.meas[i] {
			return false
		}
	}
	return true
}

// TotalMeasure returns the sum of all measures, an invariant preserved
// by every aggregation step.
func (t *Table) TotalMeasure() int64 {
	var s int64
	for _, m := range t.meas {
		s += m
	}
	return s
}

// String renders the table for debugging; large tables are elided.
func (t *Table) String() string {
	var sb strings.Builder
	n := t.Len()
	fmt.Fprintf(&sb, "Table{d=%d n=%d", t.D, n)
	limit := n
	if limit > 16 {
		limit = 16
	}
	for i := 0; i < limit; i++ {
		fmt.Fprintf(&sb, " %v:%d", t.Row(i), t.meas[i])
	}
	if n > limit {
		sb.WriteString(" ...")
	}
	sb.WriteString("}")
	return sb.String()
}

// LowerBound returns the first row index i in sorted table t with
// row(i) >= key on the key's columns (prefix compare).
func LowerBound(t *Table, key []uint32) int {
	return sort.Search(t.Len(), func(i int) bool { return CompareRowKey(t, i, key) >= 0 })
}

// UpperBound returns the first row index i in sorted table t with
// row(i) > key on the key's columns.
func UpperBound(t *Table, key []uint32) int {
	return sort.Search(t.Len(), func(i int) bool { return CompareRowKey(t, i, key) > 0 })
}
