package record

import "sync"

// radixMinRows is the row count below which the comparison sort wins:
// the radix kernel's fixed costs (key extraction, counting passes,
// permutation gather) don't amortize over tiny tables.
const radixMinRows = 48

// sortScratch holds the reusable buffers of one radix sort: packed
// keys, the row permutation, their counting-sort doubles, and spare
// column/measure slices for the gather pass. Pooled so the per-sort-
// edge Project+sort churn of Pipesort stops allocating: each processor
// goroutine effectively reuses one scratch across its sorts.
type sortScratch struct {
	keyLo, keyHi []uint64
	tmpLo, tmpHi []uint64
	idx, tmpIdx  []uint32
	dims         []uint32
	meas         []int64
}

var scratchPool = sync.Pool{New: func() any { return new(sortScratch) }}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// sortRadix sorts t with the packed-key kernel: extract one key per
// row, LSD radix sort the (key, rowIdx) pairs, then reorder dims and
// meas with a single gather pass instead of O(n log n) D-word swaps.
// The radix passes are stable, so equal keys keep their input order
// (the comparison path makes no such promise; both orders agglomerate
// to identical views because the aggregate operators are commutative).
func (t *Table) sortRadix(kp KeyPlan) {
	n := t.Len()
	sc := scratchPool.Get().(*sortScratch)
	wide := kp.Wide()
	sc.keyLo = growU64(sc.keyLo, n)
	sc.tmpLo = growU64(sc.tmpLo, n)
	sc.idx = growU32(sc.idx, n)
	sc.tmpIdx = growU32(sc.tmpIdx, n)
	if wide {
		sc.keyHi = growU64(sc.keyHi, n)
		sc.tmpHi = growU64(sc.tmpHi, n)
		kp.PackKeys(t, sc.keyHi, sc.keyLo)
	} else {
		kp.PackKeys(t, nil, sc.keyLo)
	}
	for i := range sc.idx {
		sc.idx[i] = uint32(i)
	}
	perm := radixSortKeys(sc, kp.bits, wide)
	t.applyPermutation(perm, sc)
	scratchPool.Put(sc)
}

// radixSortKeys LSD-radix-sorts the scratch's (keyLo, keyHi, idx)
// triples byte by byte — low word first, then the high word — and
// returns the slice holding the final row permutation. Passes whose
// byte is constant across all keys are skipped, so a plan of b bits
// costs at most ceil(b/8) counting passes and usually fewer.
func radixSortKeys(sc *sortScratch, bits int, wide bool) []uint32 {
	n := len(sc.keyLo)
	srcLo, dstLo := sc.keyLo, sc.tmpLo
	srcHi, dstHi := sc.keyHi, sc.tmpHi
	srcIdx, dstIdx := sc.idx, sc.tmpIdx
	var count [256]int

	loBits := bits
	if loBits > 64 {
		loBits = 64
	}
	pass := func(keys []uint64, shift uint) bool {
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xff]++
		}
		if count[(keys[0]>>shift)&0xff] == n {
			return false // constant byte: nothing to do
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		return true
	}
	scatter := func(keys []uint64, shift uint) {
		if wide {
			for i, k := range keys {
				p := count[(k>>shift)&0xff]
				count[(k>>shift)&0xff] = p + 1
				dstLo[p] = srcLo[i]
				dstHi[p] = srcHi[i]
				dstIdx[p] = srcIdx[i]
			}
		} else {
			for i, k := range keys {
				p := count[(k>>shift)&0xff]
				count[(k>>shift)&0xff] = p + 1
				dstLo[p] = srcLo[i]
				dstIdx[p] = srcIdx[i]
			}
		}
	}
	flip := func() {
		srcLo, dstLo = dstLo, srcLo
		srcHi, dstHi = dstHi, srcHi
		srcIdx, dstIdx = dstIdx, srcIdx
	}

	for b := 0; b < loBits; b += 8 {
		shift := uint(b)
		if !pass(srcLo, shift) {
			continue
		}
		scatter(srcLo, shift)
		flip()
	}
	if wide {
		for b := 0; b < bits-64; b += 8 {
			shift := uint(b)
			if !pass(srcHi, shift) {
				continue
			}
			scatter(srcHi, shift)
			flip()
		}
	}
	return srcIdx
}

// applyPermutation gathers dims and meas into scratch buffers in perm
// order and swaps them into the table, leaving the table's previous
// slices in the scratch for reuse by the next sort.
func (t *Table) applyPermutation(perm []uint32, sc *sortScratch) {
	n := t.Len()
	d := t.D
	dims := growU32(sc.dims, n*d)
	meas := growI64(sc.meas, n)
	for i, p := range perm {
		copy(dims[i*d:i*d+d], t.dims[int(p)*d:int(p)*d+d])
		meas[i] = t.meas[p]
	}
	sc.dims, t.dims = t.dims[:0], dims
	sc.meas, t.meas = t.meas[:0], meas
}

// ApplyPermutation reorders t so that new row i is old row perm[i].
// perm must be a permutation of [0, t.Len()); it is the gather half of
// the radix kernel, exported for benchmarks and external kernels.
func ApplyPermutation(t *Table, perm []uint32) {
	if len(perm) != t.Len() {
		panic("record: permutation length mismatch")
	}
	sc := scratchPool.Get().(*sortScratch)
	t.applyPermutation(perm, sc)
	scratchPool.Put(sc)
}
