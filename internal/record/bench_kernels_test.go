package record

import (
	"testing"
)

// Microbenchmarks for the packed-key kernels. Each hot-path benchmark
// has a kernels-on and kernels-off variant so the speedup is measured
// in one `go test -bench` run; cmd/wallbench drives the same
// comparisons and emits machine-readable JSON.

func benchTable(seed int64, n, d, card int) *Table {
	return randomTable(seed, n, d, card)
}

func benchSort(b *testing.B, n, d, card int, on bool) {
	b.Helper()
	prev := SetKernelsEnabled(on)
	defer SetKernelsEnabled(prev)
	src := benchTable(1, n, d, card)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := src.Clone()
		b.StartTimer()
		t.Sort()
	}
	b.SetBytes(int64(n * RowBytes(d)))
}

func BenchmarkTableSortD8Radix(b *testing.B)      { benchSort(b, 100_000, 8, 64, true) }
func BenchmarkTableSortD8Comparison(b *testing.B) { benchSort(b, 100_000, 8, 64, false) }
func BenchmarkTableSortD4Radix(b *testing.B)      { benchSort(b, 100_000, 4, 1000, true) }
func BenchmarkTableSortD4Comparison(b *testing.B) { benchSort(b, 100_000, 4, 1000, false) }

func BenchmarkPackKeys(b *testing.B) {
	t := benchTable(2, 100_000, 8, 64)
	kp := MeasureKeyPlan(t)
	lo := make([]uint64, t.Len())
	var hi []uint64
	if kp.Wide() {
		hi = make([]uint64, t.Len())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kp.PackKeys(t, hi, lo)
	}
	b.SetBytes(int64(t.Len() * RowBytes(t.D)))
}

func BenchmarkApplyPermutation(b *testing.B) {
	src := benchTable(3, 100_000, 8, 64)
	perm := make([]uint32, src.Len())
	for i := range perm {
		perm[i] = uint32(i)
	}
	rng := newBenchRng(3)
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.next() % uint64(i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t := src.Clone()
		b.StartTimer()
		ApplyPermutation(t, perm)
	}
	b.SetBytes(int64(src.Len() * RowBytes(src.D)))
}

// benchRng is a tiny splitmix64 so the benchmark does not depend on
// math/rand allocation behaviour inside the timed loop.
type benchRng struct{ s uint64 }

func newBenchRng(seed uint64) *benchRng { return &benchRng{s: seed} }
func (r *benchRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func benchMerge(b *testing.B, k, rows, d, card int, on bool) {
	b.Helper()
	prev := SetKernelsEnabled(on)
	defer SetKernelsEnabled(prev)
	tables := make([]*Table, k)
	for i := range tables {
		tables[i] = benchTable(int64(10+i), rows, d, card)
		tables[i].Sort()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeSortedAggregate(tables)
	}
	b.SetBytes(int64(k * rows * RowBytes(d)))
}

func BenchmarkMergeK8LoserTree(b *testing.B) { benchMerge(b, 8, 20_000, 4, 1000, true) }
func BenchmarkMergeK8Heap(b *testing.B)      { benchMerge(b, 8, 20_000, 4, 1000, false) }

func BenchmarkProject(b *testing.B) {
	t := benchTable(4, 100_000, 8, 64)
	cols := []int{6, 2, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Project(cols)
	}
	b.SetBytes(int64(t.Len() * RowBytes(len(cols))))
}
