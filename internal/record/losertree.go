package record

// LoserTree is a k-way tournament tree of losers over packed keys: the
// selection structure of the external-merge literature (Knuth 5.4.1).
// Each of the k leaves carries the packed key of one input stream's
// current row; popping the winner and replaying its root path costs
// ceil(log2 k) integer comparisons, versus container/heap's log2 k
// comparisons each O(D) column words — and no interface dispatch.
//
// Usage: NewLoserTree(k), SetKey/Close each leaf, Init once, then
// repeatedly Winner -> consume that stream's row -> SetKey (or Close)
// -> Fix. Ties break to the lower leaf index, matching the src
// tie-break of the heap-based merges the tree replaces.
type LoserTree struct {
	k    int
	node []int32 // node[0] = winner; node[1..k-1] = loser of that match
	hi   []uint64
	lo   []uint64
	done []bool
}

// NewLoserTree returns a tree over k streams, all initially closed.
func NewLoserTree(k int) *LoserTree {
	lt := &LoserTree{
		k:    k,
		node: make([]int32, k),
		hi:   make([]uint64, k),
		lo:   make([]uint64, k),
		done: make([]bool, k),
	}
	for i := range lt.done {
		lt.done[i] = true
	}
	return lt
}

// SetKey sets leaf i's current packed key (hi is zero for narrow
// plans) and marks the stream live. Call Fix afterwards unless the
// tree has not been Init-ed yet.
func (lt *LoserTree) SetKey(i int, hi, lo uint64) {
	lt.hi[i], lt.lo[i] = hi, lo
	lt.done[i] = false
}

// Close marks leaf i exhausted. Call Fix afterwards unless the tree
// has not been Init-ed yet.
func (lt *LoserTree) Close(i int) { lt.done[i] = true }

// less orders leaves by (exhausted last, keyHi, keyLo, leaf index).
func (lt *LoserTree) less(a, b int32) bool {
	if lt.done[a] || lt.done[b] {
		return !lt.done[a] && lt.done[b]
	}
	if lt.hi[a] != lt.hi[b] {
		return lt.hi[a] < lt.hi[b]
	}
	if lt.lo[a] != lt.lo[b] {
		return lt.lo[a] < lt.lo[b]
	}
	return a < b
}

// Init builds the tournament from the current leaf keys.
func (lt *LoserTree) Init() {
	if lt.k == 1 {
		lt.node[0] = 0
		return
	}
	lt.node[0] = lt.build(1)
}

// build computes the winner of the subtree rooted at internal node n
// (leaves live at heap positions k..2k-1), storing losers on the way.
func (lt *LoserTree) build(n int) int32 {
	if n >= lt.k {
		return int32(n - lt.k)
	}
	a := lt.build(2 * n)
	b := lt.build(2*n + 1)
	if lt.less(a, b) {
		lt.node[n] = b
		return a
	}
	lt.node[n] = a
	return b
}

// Winner returns the leaf index holding the smallest current key, or
// -1 when every stream is closed.
func (lt *LoserTree) Winner() int {
	w := lt.node[0]
	if lt.done[w] {
		return -1
	}
	return int(w)
}

// Fix replays the previous winner's path to the root after its key
// changed (SetKey) or its stream closed (Close).
func (lt *LoserTree) Fix() {
	x := lt.node[0]
	for n := (int(x) + lt.k) / 2; n >= 1; n /= 2 {
		if lt.less(lt.node[n], x) {
			lt.node[n], x = x, lt.node[n]
		}
	}
	lt.node[0] = x
}
