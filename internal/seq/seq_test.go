package seq

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/partialcube"
	"repro/internal/record"
	"repro/internal/simdisk"
)

func spec() gen.Spec {
	return gen.Spec{N: 3000, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 7}
}

func TestSequentialFullCubeCorrect(t *testing.T) {
	raw := gen.New(spec()).All()
	disk, met, err := buildChecked(raw, Config{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if met.OutputRows == 0 || met.SimSeconds <= 0 {
		t.Fatalf("metrics empty: %+v", met)
	}
	for _, v := range lattice.AllViews(4) {
		tb := disk.MustGet(ViewFile(v))
		groups := map[string]int64{}
		for i := 0; i < raw.Len(); i++ {
			key := ""
			for _, dim := range v.Dims() {
				key += fmt.Sprintf("%d,", raw.Dim(i, dim))
			}
			groups[key] += raw.Meas(i)
		}
		if tb.Len() != len(groups) {
			t.Fatalf("view %v: %d rows, want %d", v, tb.Len(), len(groups))
		}
		if tb.TotalMeasure() != raw.TotalMeasure() {
			t.Fatalf("view %v measure mass wrong", v)
		}
	}
}

func buildChecked(raw *record.Table, cfg Config) (d *simdisk.Disk, m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	dd, mm := BuildCube(raw, cfg)
	return dd, mm, nil
}

func TestSequentialPartialCube(t *testing.T) {
	raw := gen.New(spec()).All()
	sel := partialcube.SelectPercent(4, 50, 3)
	disk, met, err := buildChecked(raw, Config{D: 4, Selected: sel})
	if err != nil {
		t.Fatal(err)
	}
	selSet := map[lattice.ViewID]bool{}
	for _, v := range sel {
		selSet[v] = true
	}
	for _, v := range lattice.AllViews(4) {
		if selSet[v] != disk.Has(ViewFile(v)) {
			t.Fatalf("view %v presence wrong", v)
		}
	}
	if met.OutputRows == 0 {
		t.Fatal("no output")
	}
}

func TestSequentialMatchesParallelOutput(t *testing.T) {
	// The baseline and the parallel algorithm must agree exactly on
	// every view's global size (they compute the same cube).
	g := gen.New(spec())
	raw := g.All()
	_, seqMet := BuildCube(raw, Config{D: 4})

	p := 4
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	parMet, err := core.BuildCube(m, "raw", core.Config{D: 4})
	if err != nil {
		t.Fatal(err)
	}

	if seqMet.OutputRows != parMet.OutputRows {
		t.Fatalf("output rows: seq %d, parallel %d", seqMet.OutputRows, parMet.OutputRows)
	}
	for v, rows := range seqMet.ViewRows {
		if parMet.ViewRows[v] != rows {
			t.Fatalf("view %v: seq %d rows, parallel %d", v, rows, parMet.ViewRows[v])
		}
	}
}

func TestSequentialTimeScalesWithInput(t *testing.T) {
	small := gen.New(gen.Spec{N: 1000, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 1}).All()
	large := gen.New(gen.Spec{N: 8000, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 1}).All()
	_, ms := BuildCube(small, Config{D: 4})
	_, ml := BuildCube(large, Config{D: 4})
	if ml.SimSeconds <= ms.SimSeconds {
		t.Fatalf("larger input not slower: %v vs %v", ml.SimSeconds, ms.SimSeconds)
	}
}

func TestSequentialModernParamsFaster(t *testing.T) {
	raw := gen.New(spec()).All()
	_, slow := BuildCube(raw, Config{D: 4})
	modern := costmodel.Modern()
	_, fast := BuildCube(raw, Config{D: 4, Params: &modern})
	if fast.SimSeconds >= slow.SimSeconds {
		t.Fatalf("modern hardware not faster: %v vs %v", fast.SimSeconds, slow.SimSeconds)
	}
}

func TestSequentialRejectsBadConfig(t *testing.T) {
	raw := gen.New(spec()).All()
	if _, _, err := buildChecked(raw, Config{D: 3}); err == nil {
		t.Fatal("expected panic on dimension mismatch")
	}
}
