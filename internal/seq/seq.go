// Package seq provides the sequential baselines of the paper's
// evaluation: the single-machine Pipesort full-cube builder [3] and the
// sequential partial-cube builder [4]. All speedup figures divide these
// baselines' simulated times by the parallel times (§4.1: "sequential
// times ... were measured on a single processor of our parallel machine
// using our sequential implementations of Pipesort and Partial cube").
//
// The baseline runs on one simulated processor (one clock, one disk):
// it plans a single schedule tree over the whole lattice with a free
// root order — no data partitioning and no merging.
package seq

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/extsort"
	"repro/internal/lattice"
	"repro/internal/partialcube"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/simdisk"
)

// Config parameterizes a sequential build.
type Config struct {
	// D is the data dimensionality.
	D int
	// Selected lists the views to build; nil means the full cube.
	Selected []lattice.ViewID
	// Partial selects the partial-cube planner for proper subsets.
	Partial partialcube.Kind
	// Params is the machine cost model (defaults to costmodel.Default).
	Params *costmodel.Params
	// Agg is the aggregate operator (default record.OpSum).
	Agg record.AggOp
}

// Metrics reports a sequential build.
type Metrics struct {
	SimSeconds  float64
	OutputRows  int64
	OutputBytes int64
	Sorts       int
	ViewRows    map[lattice.ViewID]int64
}

// ViewFile names the output file for a view on the baseline's disk.
func ViewFile(v lattice.ViewID) string { return "cube." + v.String() }

// BuildCube builds the (partial) cube of raw sequentially, returning
// the disk holding every requested view and the metrics.
func BuildCube(raw *record.Table, cfg Config) (*simdisk.Disk, Metrics) {
	if cfg.D < 1 || raw.D != cfg.D {
		panic(fmt.Sprintf("seq: table has %d columns, config says %d", raw.D, cfg.D))
	}
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	clk := costmodel.NewClock(params)
	disk := simdisk.New(clk)

	// The raw data starts on disk, as in the paper's timing protocol
	// ("all times include the time taken to read the input from
	// files").
	disk.Put("raw", raw.Clone())

	sel := cfg.Selected
	if sel == nil {
		sel = lattice.AllViews(cfg.D)
	}
	full := len(sel) == 1<<uint(cfg.D)

	// Plan from measured statistics, free root order.
	input := disk.MustGet("raw")
	clk.AddCompute(costmodel.ScanOps(input.Len()) * float64(cfg.D))
	cards := estimate.MeasureCardinalities(input, lattice.Canonical(lattice.Full(cfg.D)))
	sizer := estimate.NewCardenas(int64(input.Len()), cards)

	root := lattice.Full(cfg.D)
	var tree *lattice.Tree
	if full {
		tree = pipesort.Plan(cfg.D, root, nil, lattice.AllViews(cfg.D), sizer)
	} else {
		tree = partialcube.Plan(cfg.Partial, cfg.D, root, nil, lattice.AllViews(cfg.D), sel, sizer)
	}

	// Materialize the root: project the raw data into the root order,
	// external sort, aggregate.
	clk.AddCompute(costmodel.ScanOps(input.Len()))
	disk.Put(ViewFile(root), input.Project([]int(tree.Root.Order)))
	extsort.Sort(disk, ViewFile(root))
	t := disk.MustTake(ViewFile(root))
	clk.AddCompute(costmodel.ScanOps(t.Len()))
	disk.Put(ViewFile(root), record.AggregateSortedOp(t, t.D, cfg.Agg))

	st := pipesort.ExecuteOpts(disk, tree, ViewFile, pipesort.Options{Op: cfg.Agg})

	// Drop intermediates not selected.
	selSet := map[lattice.ViewID]bool{}
	for _, v := range sel {
		selSet[v] = true
	}
	tree.Walk(func(n *lattice.Node) {
		if !selSet[n.View] {
			disk.Remove(ViewFile(n.View))
		}
	})

	met := Metrics{
		SimSeconds: clk.Seconds(),
		Sorts:      st.Sorts,
		ViewRows:   map[lattice.ViewID]int64{},
	}
	for _, v := range sel {
		if n := disk.Len(ViewFile(v)); n > 0 {
			met.ViewRows[v] = int64(n)
			met.OutputRows += int64(n)
			met.OutputBytes += int64(n * record.RowBytes(v.Count()))
		}
	}
	return disk, met
}
