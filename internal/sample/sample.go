// Package sample implements the online spaced sampling scheme of the
// paper's §2.4: while a view vj is written to disk, an array A[1..a]
// (a = 100p) is maintained so that when the write completes — and only
// then is |vj| known — A holds an evenly spaced sample of the view's
// keys. Merge–Partitions uses these samples to estimate the overlap
// sizes |v'j| with ~1/p% accuracy without re-scanning any disk-resident
// view, which is sufficient for the 1% accuracy the Case 2 / Case 3
// imbalance test needs.
//
// The implementation keeps every stride-th key and halves the sample
// (doubling the stride) whenever the array fills, which is the same
// "every second element into every second location" compaction the
// paper describes, expressed without in-place aliasing.
package sample

import (
	"fmt"

	"repro/internal/record"
)

// Online is an under-construction or finished spaced sample.
type Online struct {
	capacity int
	stride   int
	n        int // total keys observed
	keys     [][]uint32
}

// NewOnline returns a sample that will retain at most a keys; a must
// be positive.
func NewOnline(a int) *Online {
	if a < 2 {
		panic(fmt.Sprintf("sample: capacity %d too small", a))
	}
	return &Online{capacity: a, stride: 1}
}

// Add observes the next key of the stream (keys must arrive in the
// view's sorted order for rank estimation to be meaningful). The key
// is copied.
func (s *Online) Add(key []uint32) {
	if s.n%s.stride == 0 {
		s.keys = append(s.keys, append([]uint32(nil), key...))
		if len(s.keys) == s.capacity {
			half := s.keys[: 0 : len(s.keys)/2]
			for i := 0; i < len(s.keys); i += 2 {
				half = append(half, s.keys[i])
			}
			s.keys = half
			s.stride *= 2
		}
	}
	s.n++
}

// AddTable observes every row of a table in order.
func (s *Online) AddTable(t *record.Table) {
	n := t.Len()
	for i := 0; i < n; i++ {
		s.Add(t.Row(i))
	}
}

// Len returns the number of keys observed.
func (s *Online) Len() int { return s.n }

// Size returns the number of retained sample keys.
func (s *Online) Size() int { return len(s.keys) }

// Stride returns the spacing between retained keys.
func (s *Online) Stride() int { return s.stride }

// EstimateRank estimates how many observed keys are <= key (prefix
// comparison on min(len(key), len(sample key)) columns). The estimate
// is exact while the stride is 1 and within one stride otherwise.
func (s *Online) EstimateRank(key []uint32) int {
	// Samples are at stream positions 0, stride, 2*stride, ...; count
	// how many retained keys are <= key with binary search.
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if leqPrefix(s.keys[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	est := lo * s.stride
	if est > s.n {
		est = s.n
	}
	return est
}

// leqPrefix compares on the shorter key's width.
func leqPrefix(a, b []uint32) bool {
	k := len(a)
	if len(b) < k {
		k = len(b)
	}
	for i := 0; i < k; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return true
}

// EstimateRange estimates how many observed keys lie in (lo, hi],
// where a nil bound means unbounded on that side.
func (s *Online) EstimateRange(lo, hi []uint32) int {
	upper := s.n
	if hi != nil {
		upper = s.EstimateRank(hi)
	}
	lower := 0
	if lo != nil {
		lower = s.EstimateRank(lo)
	}
	if upper < lower {
		return 0
	}
	return upper - lower
}
