package sample

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
)

func TestExactWhileSmall(t *testing.T) {
	s := NewOnline(100)
	for i := 0; i < 50; i++ {
		s.Add([]uint32{uint32(i)})
	}
	if s.Stride() != 1 || s.Size() != 50 || s.Len() != 50 {
		t.Fatalf("stride=%d size=%d len=%d", s.Stride(), s.Size(), s.Len())
	}
	for i := 0; i < 50; i++ {
		if got := s.EstimateRank([]uint32{uint32(i)}); got != i+1 {
			t.Fatalf("rank(%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := s.EstimateRank([]uint32{999}); got != 50 {
		t.Fatalf("rank beyond end = %d", got)
	}
}

func TestCompactionKeepsSpacing(t *testing.T) {
	s := NewOnline(8)
	n := 1000
	for i := 0; i < n; i++ {
		s.Add([]uint32{uint32(i)})
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Size() >= 8 || s.Size() < 4 {
		t.Fatalf("Size = %d, want in [4,8)", s.Size())
	}
	// Estimation error bounded by stride.
	for _, q := range []int{0, 100, 500, 999} {
		got := s.EstimateRank([]uint32{uint32(q)})
		if got < q+1-s.Stride() || got > q+1+s.Stride() {
			t.Fatalf("rank(%d) = %d (stride %d)", q, got, s.Stride())
		}
	}
}

func TestEstimateRankWithDuplicates(t *testing.T) {
	s := NewOnline(1000)
	for i := 0; i < 300; i++ {
		s.Add([]uint32{uint32(i / 100)}) // 100 copies each of 0,1,2
	}
	if got := s.EstimateRank([]uint32{0}); got != 100 {
		t.Fatalf("rank(0) = %d, want 100", got)
	}
	if got := s.EstimateRank([]uint32{1}); got != 200 {
		t.Fatalf("rank(1) = %d, want 200", got)
	}
}

func TestEstimateRange(t *testing.T) {
	s := NewOnline(1000)
	for i := 0; i < 100; i++ {
		s.Add([]uint32{uint32(i)})
	}
	if got := s.EstimateRange([]uint32{10}, []uint32{20}); got != 10 {
		t.Fatalf("range (10,20] = %d, want 10", got)
	}
	if got := s.EstimateRange(nil, []uint32{20}); got != 21 {
		t.Fatalf("range (-inf,20] = %d, want 21", got)
	}
	if got := s.EstimateRange([]uint32{89}, nil); got != 10 {
		t.Fatalf("range (89,+inf) = %d, want 10", got)
	}
	if got := s.EstimateRange([]uint32{50}, []uint32{40}); got != 0 {
		t.Fatalf("inverted range = %d, want 0", got)
	}
}

func TestAddTable(t *testing.T) {
	tb := record.FromRows(2, [][]uint32{{1, 1}, {2, 2}, {3, 3}}, nil)
	s := NewOnline(10)
	s.AddTable(tb)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.EstimateRank([]uint32{2, 2}); got != 2 {
		t.Fatalf("rank = %d", got)
	}
	// Prefix comparison: a 1-column key against 2-column samples.
	if got := s.EstimateRank([]uint32{2}); got != 2 {
		t.Fatalf("prefix rank = %d", got)
	}
}

func TestNewOnlineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOnline(1)
}

func TestQuickErrorWithinStride(t *testing.T) {
	f := func(seed int64, nRaw uint16, capRaw uint8) bool {
		n := int(nRaw%5000) + 1
		capacity := int(capRaw%200) + 2
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = uint32(rng.Intn(100))
		}
		// Sort ascending (sample requires sorted stream).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		s := NewOnline(capacity)
		for _, k := range keys {
			s.Add([]uint32{k})
		}
		// Check rank estimates for a few probes.
		for probe := uint32(0); probe < 100; probe += 17 {
			truth := 0
			for _, k := range keys {
				if k <= probe {
					truth++
				}
			}
			got := s.EstimateRank([]uint32{probe})
			if got < truth-s.Stride() || got > truth+s.Stride() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
