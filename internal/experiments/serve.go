package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/queryengine"
	"repro/internal/record"
)

// serveOp is one replayable workload query: group by the given
// internal dimensions under the given bounds. The same stream is
// served at every machine size, so points are directly comparable.
type serveOp struct {
	group  []int
	bounds map[int][2]uint32
}

// serveWorkload builds the deterministic query stream for the serve
// table. The mix is biased toward the high-cardinality dimensions so
// source views are large and the scan actually exercises the
// machine (queries against tiny views measure only fixed superstep
// costs); half the stream repeats a hot pool so the result cache
// warms up.
func serveWorkload(seed int64, queries int) []serveOp {
	rng := rand.New(rand.NewSource(seed * 7919))
	cards := gen.PaperCards()
	randomOp := func() serveOp {
		top := rng.Perm(3) // the 256/128/64-cardinality dimensions
		switch rng.Intn(10) {
		case 0, 1, 2: // range aggregate over two large dimensions
			o := serveOp{bounds: map[int][2]uint32{}}
			for _, d := range top[:2] {
				a := uint32(rng.Intn(cards[d]))
				b := uint32(rng.Intn(cards[d]))
				if a > b {
					a, b = b, a
				}
				o.bounds[d] = [2]uint32{a, b}
			}
			return o
		case 3, 4, 5: // filtered group-by: superset view is 3 large dims
			d := 3 + rng.Intn(3)
			return serveOp{
				group:  []int{top[0], top[1]},
				bounds: map[int][2]uint32{d: {uint32(rng.Intn(cards[d])), uint32(rng.Intn(cards[d]))}},
			}
		default: // plain group-by over two large dimensions
			return serveOp{group: []int{top[0], top[1]}}
		}
	}
	// Fix the filtered case's bounds to be a valid range.
	normalize := func(o serveOp) serveOp {
		for d, b := range o.bounds {
			if b[0] > b[1] {
				o.bounds[d] = [2]uint32{b[1], b[0]}
			}
		}
		return o
	}
	pool := make([]serveOp, 1+queries/8)
	for i := range pool {
		pool[i] = normalize(randomOp())
	}
	out := make([]serveOp, queries)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i] = pool[rng.Intn(len(pool))]
		} else {
			out[i] = normalize(randomOp())
		}
	}
	return out
}

// ServePoint is one machine size's serving measurements over the
// shared workload.
type ServePoint struct {
	P           int
	Queries     int
	SimSeconds  float64 // simulated machine time executing (hits are free)
	Throughput  float64 // queries per simulated second
	Speedup     float64 // throughput relative to the first point
	P50ms       float64 // executed-query latency percentiles, sim ms
	P95ms       float64
	HitRatio    float64
	RowsScanned int64
}

// ServeResult is the distributed-serving table: query throughput and
// latency versus machine size, plus an indexed-versus-scan probe.
type ServeResult struct {
	N       int
	Queries int
	Points  []ServePoint
	// IdxRows / ScanRows are the rows charged by one equality query on
	// the root view's leading sort dimension with and without the
	// prefix index, at the largest machine size.
	IdxRows, ScanRows int64
}

// Serve builds the paper's d=8 cube at each machine size and replays
// the same query workload through the distributed query engine with a
// warm LRU result cache, measuring simulated throughput scaling.
func Serve(sc Scale) ServeResult {
	spec := paperSpec(sc.N1M, sc.Seed)
	workload := serveWorkload(sc.Seed, 160)
	res := ServeResult{N: spec.N, Queries: len(workload)}

	for _, p := range sc.Procs {
		g := gen.New(spec)
		m := cluster.New(p, costmodel.Default())
		for r := 0; r < p; r++ {
			m.Proc(r).Disk().Put("raw", g.Slice(r, p))
		}
		met, err := core.BuildCube(m, "raw", core.Config{D: spec.D})
		if err != nil {
			panic(fmt.Sprintf("experiments: serve build failed: %v", err))
		}
		e := queryengine.New(m, met.ViewOrders, met.ViewRows, record.OpSum)
		cache := queryengine.NewCache(256)

		pt := ServePoint{P: p, Queries: len(workload)}
		var lat []float64
		hits := 0
		for _, o := range workload {
			q, err := e.NewQuery(o.group, o.bounds)
			if err != nil {
				panic(fmt.Sprintf("experiments: serve plan failed: %v", err))
			}
			if _, ok := cache.Get(q.Key()); ok {
				hits++
				continue
			}
			_, qm, err := e.Execute(q)
			if err != nil {
				panic(fmt.Sprintf("experiments: serve query failed: %v", err))
			}
			cache.Put(q.Key(), struct{}{})
			pt.SimSeconds += qm.SimSeconds
			pt.RowsScanned += qm.RowsScanned
			lat = append(lat, qm.SimSeconds)
		}
		pt.HitRatio = float64(hits) / float64(len(workload))
		if pt.SimSeconds > 0 {
			pt.Throughput = float64(len(workload)) / pt.SimSeconds
		}
		sort.Float64s(lat)
		pt.P50ms = 1e3 * servePercentile(lat, 0.50)
		pt.P95ms = 1e3 * servePercentile(lat, 0.95)
		res.Points = append(res.Points, pt)

		if p == sc.Procs[len(sc.Procs)-1] {
			res.IdxRows, res.ScanRows = indexProbe(e)
		}
	}
	for i := range res.Points {
		res.Points[i].Speedup = res.Points[i].Throughput / res.Points[0].Throughput
	}
	return res
}

// indexProbe charges one equality query on the root view's leading
// sort dimension twice — once through the prefix index, once forced to
// full scans — and returns the rows each version touched.
func indexProbe(e *queryengine.Engine) (idxRows, scanRows int64) {
	full := lattice.Full(8)
	q := queryengine.Query{
		View:    full,
		Bounds:  []queryengine.Bound{{Col: 0, Lo: 7, Hi: 7}},
		OutCols: []int{1, 2},
	}
	_, im, err := e.Execute(q)
	if err != nil {
		panic(fmt.Sprintf("experiments: index probe failed: %v", err))
	}
	q.NoIndex = true
	_, sm, err := e.Execute(q)
	if err != nil {
		panic(fmt.Sprintf("experiments: scan probe failed: %v", err))
	}
	return im.RowsScanned, sm.RowsScanned
}

func servePercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// Print renders the serve table.
func (r ServeResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Distributed serving: %d queries against the d=8 cube, n=%d, warm LRU cache\n", r.Queries, r.N)
	fmt.Fprintf(w, "%4s %10s %12s %9s %9s %9s %7s %12s\n",
		"p", "sim_s", "queries/s", "speedup", "p50_ms", "p95_ms", "hit%", "rows_scan")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%4d %10.3f %12.1f %8.2fx %9.3f %9.3f %6.1f%% %12d\n",
			pt.P, pt.SimSeconds, pt.Throughput, pt.Speedup,
			pt.P50ms, pt.P95ms, 100*pt.HitRatio, pt.RowsScanned)
	}
	fmt.Fprintf(w, "prefix index probe (largest p): %d rows via index vs %d rows full scan\n",
		r.IdxRows, r.ScanRows)
}
