package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/record"
)

// IngestPoint is one (p, batch size) measurement of incremental
// maintenance against the from-scratch alternative: the same batch of
// new facts applied as a delta build + merge, versus rebuilding the
// whole cube on base+batch.
type IngestPoint struct {
	P          int
	BatchPct   float64
	BatchRows  int
	IngestSecs float64 // simulated seconds to apply the batch
	MergeSecs  float64 // the delta-merge share of IngestSecs
	RebuildSec float64 // simulated seconds to rebuild base+batch
	Ratio      float64 // IngestSecs / RebuildSec (smaller is better)
	RowsPerSec float64 // batch rows per simulated second
}

// IngestResult is the incremental-maintenance table: amortized batch
// cost versus full rebuild across batch sizes and machine sizes.
type IngestResult struct {
	N      int
	D      int
	Points []IngestPoint
}

// Ingest measures the economics of the ingest subsystem on the
// paper's d=8 cube: for each machine size and batch size, build the
// base cube, apply one batch incrementally (delta build + Case 1/2
// merge into the live views), and compare its simulated cost with
// rebuilding everything from raw. Small batches should cost a small
// fraction of a rebuild once data volume dominates the fixed per-file
// access charges; the table shows how that ratio falls with batch
// size and data size.
func Ingest(sc Scale) IngestResult {
	spec := paperSpec(sc.N1M, sc.Seed)
	res := IngestResult{N: spec.N, D: spec.D}

	var procs []int
	for _, p := range sc.Procs {
		if p <= 8 {
			procs = append(procs, p)
		}
	}
	for _, p := range procs {
		for _, pct := range []float64{0.01, 0.05} {
			base := spec.N
			batchN := int(float64(base) * pct)
			if batchN < 1 {
				batchN = 1
			}
			full := spec
			full.N = base + batchN
			g := gen.New(full)

			m := cluster.New(p, costmodel.Default())
			for r := 0; r < p; r++ {
				m.Proc(r).Disk().Put("raw", g.Table(r*base/p, (r+1)*base/p))
			}
			met, err := core.BuildCube(m, "raw", core.Config{D: full.D})
			if err != nil {
				panic(fmt.Sprintf("experiments: ingest base build failed: %v", err))
			}
			ir, err := ingest.IngestBatch(m, g.Table(base, base+batchN), ingest.Config{
				D:      full.D,
				Orders: met.ViewOrders,
				Trees:  met.SchedTrees,
				Agg:    record.OpSum,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: ingest batch failed: %v", err))
			}

			rb := cluster.New(p, costmodel.Default())
			for r := 0; r < p; r++ {
				rb.Proc(r).Disk().Put("raw", g.Table(r*full.N/p, (r+1)*full.N/p))
			}
			rmet, err := core.BuildCube(rb, "raw", core.Config{D: full.D})
			if err != nil {
				panic(fmt.Sprintf("experiments: ingest rebuild failed: %v", err))
			}

			pt := IngestPoint{
				P:          p,
				BatchPct:   100 * pct,
				BatchRows:  batchN,
				IngestSecs: ir.SimSeconds,
				MergeSecs:  ir.DeltaMergeSeconds,
				RebuildSec: rmet.SimSeconds,
				Ratio:      ir.SimSeconds / rmet.SimSeconds,
			}
			if ir.SimSeconds > 0 {
				pt.RowsPerSec = float64(batchN) / ir.SimSeconds
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res
}

// Print renders the ingest table.
func (r IngestResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Incremental maintenance: one batch into the live d=%d cube, base n=%d\n", r.D, r.N)
	fmt.Fprintf(w, "%4s %7s %10s %10s %10s %11s %8s %11s\n",
		"p", "batch%", "batch_rows", "ingest_s", "dmerge_s", "rebuild_s", "ratio", "rows/sim_s")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%4d %6.1f%% %10d %10.3f %10.3f %11.3f %8.3f %11.0f\n",
			pt.P, pt.BatchPct, pt.BatchRows, pt.IngestSecs, pt.MergeSecs,
			pt.RebuildSec, pt.Ratio, pt.RowsPerSec)
	}
	fmt.Fprintln(w, "ratio = ingest/rebuild simulated seconds; < 1 means incremental wins")
}
