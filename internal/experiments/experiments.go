// Package experiments regenerates every figure of the paper's
// evaluation (§4, Figures 5-11) plus the headline end-to-end claims
// (§1/§4.1). Each FigN function runs the corresponding workload sweep
// on the simulated shared-nothing cluster and returns the series the
// paper plots; the Print methods emit them as aligned text tables.
//
// The Scale parameter maps the paper's data sizes onto practical run
// sizes: DefaultScale shrinks the paper's 1M/2M-row data sets so the
// full suite finishes in seconds (shapes, not absolute numbers, are
// the reproduction target); PaperScale uses the original sizes.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/mergepart"
	"repro/internal/partialcube"
	"repro/internal/seq"
	"repro/internal/workpart"
)

// Scale maps the paper's workload sizes to run sizes.
type Scale struct {
	// N1M stands in for the paper's n = 1,000,000 rows; N2M and N10M
	// for 2,000,000 and 10,000,000.
	N1M, N2M, N10M int
	// Procs is the processor sweep (the paper uses 1..16).
	Procs []int
	// MaxP is the fixed processor count of the single-machine figures
	// (8 and 10; the paper uses 16).
	MaxP int
	// Seed makes every workload deterministic.
	Seed int64
}

// DefaultScale is small enough for tests and benches (seconds of wall
// time) while preserving every figure's qualitative shape.
func DefaultScale() Scale {
	return Scale{
		N1M: 60_000, N2M: 120_000, N10M: 600_000,
		Procs: []int{1, 2, 4, 8, 16},
		MaxP:  16,
		Seed:  1,
	}
}

// PaperScale uses the paper's actual data sizes. Expect minutes of
// wall time per figure.
func PaperScale() Scale {
	s := DefaultScale()
	s.N1M, s.N2M, s.N10M = 1_000_000, 2_000_000, 10_000_000
	return s
}

// Scaled returns DefaultScale with every data size multiplied by f
// (e.g. f = 4 for a medium run).
func Scaled(f float64) Scale {
	s := DefaultScale()
	s.N1M = int(float64(s.N1M) * f)
	s.N2M = int(float64(s.N2M) * f)
	s.N10M = int(float64(s.N10M) * f)
	return s
}

// paperSpec is the fixed parameter set of §4: d=8, |Di| = 256, 128,
// 64, 32, 16, 8, 6, 6, no skew.
func paperSpec(n int, seed int64) gen.Spec {
	return gen.Spec{N: n, D: 8, Cards: gen.PaperCards(), Seed: seed}
}

// runParallel distributes the spec's data over p processors and builds
// the cube. The figure sweeps inject no faults, so an error is a bug.
func runParallel(spec gen.Spec, p int, cfg core.Config) core.Metrics {
	met, err := runParallelErr(spec, p, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: build failed: %v", err))
	}
	return met
}

// runParallelErr is runParallel for configurations that may fail (the
// faults table's no-checkpoint crash runs).
func runParallelErr(spec gen.Spec, p int, cfg core.Config) (core.Metrics, error) {
	g := gen.New(spec)
	m := cluster.New(p, costmodel.Default())
	for r := 0; r < p; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, p))
	}
	return core.BuildCube(m, "raw", cfg)
}

// runSeq builds the baseline cube sequentially.
func runSeq(spec gen.Spec, cfg seq.Config) seq.Metrics {
	_, met := seq.BuildCube(gen.New(spec).All(), cfg)
	return met
}

// SpeedupPoint is one (p, time) measurement with its relative speedup
// against the sequential baseline.
type SpeedupPoint struct {
	P       int
	Seconds float64
	Speedup float64
}

func speedupSeries(seqSeconds float64, procs []int, run func(p int) core.Metrics) []SpeedupPoint {
	out := make([]SpeedupPoint, 0, len(procs))
	for _, p := range procs {
		met := run(p)
		out = append(out, SpeedupPoint{P: p, Seconds: met.SimSeconds, Speedup: seqSeconds / met.SimSeconds})
	}
	return out
}

func printSpeedupTable(w io.Writer, title string, labels []string, seqSecs []float64, series [][]SpeedupPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s", "p")
	for _, l := range labels {
		fmt.Fprintf(w, " | %22s", l)
	}
	fmt.Fprintln(w)
	for i := range series[0] {
		fmt.Fprintf(w, "%-6d", series[0][i].P)
		for s := range series {
			pt := series[s][i]
			fmt.Fprintf(w, " | %10.1fs  %7.2fx", pt.Seconds, pt.Speedup)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-6s", "seq")
	for _, s := range seqSecs {
		fmt.Fprintf(w, " | %10.1fs  %8s", s, "")
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------- Fig 5

// Fig5Series is one data-set size of Figure 5.
type Fig5Series struct {
	N          int
	SeqSeconds float64
	Points     []SpeedupPoint
	OutputRows int64
}

// Fig5Result reproduces Figure 5: full-cube wall time and relative
// speedup vs processor count for two data-set sizes.
type Fig5Result struct {
	Series []Fig5Series
}

// Fig5 runs the Figure 5 sweep.
func Fig5(sc Scale) Fig5Result {
	var res Fig5Result
	for _, n := range []int{sc.N1M, sc.N2M} {
		spec := paperSpec(n, sc.Seed)
		sq := runSeq(spec, seq.Config{D: spec.D})
		s := Fig5Series{N: n, SeqSeconds: sq.SimSeconds}
		var rows int64
		s.Points = speedupSeries(sq.SimSeconds, sc.Procs, func(p int) core.Metrics {
			met := runParallel(spec, p, core.Config{D: spec.D})
			rows = met.OutputRows
			return met
		})
		s.OutputRows = rows
		res.Series = append(res.Series, s)
	}
	return res
}

// Print writes the figure's table.
func (r Fig5Result) Print(w io.Writer) {
	labels := make([]string, len(r.Series))
	seqs := make([]float64, len(r.Series))
	pts := make([][]SpeedupPoint, len(r.Series))
	for i, s := range r.Series {
		labels[i] = fmt.Sprintf("n=%d", s.N)
		seqs[i] = s.SeqSeconds
		pts[i] = s.Points
	}
	printSpeedupTable(w, "Figure 5: full-cube time and relative speedup vs processors", labels, seqs, pts)
	for _, s := range r.Series {
		fmt.Fprintf(w, "  n=%d -> cube of %d rows\n", s.N, s.OutputRows)
	}
}

// ---------------------------------------------------------------- Fig 6

// Fig6Series is one selected-percentage curve of Figure 6.
type Fig6Series struct {
	Percent    int
	SeqSeconds float64
	Points     []SpeedupPoint
}

// Fig6Result reproduces Figure 6: partial-cube time and speedup for
// 25/50/75/100% selected views.
type Fig6Result struct {
	Series []Fig6Series
}

// Fig6 runs the Figure 6 sweep.
func Fig6(sc Scale) Fig6Result {
	spec := paperSpec(sc.N2M, sc.Seed)
	var res Fig6Result
	for _, pct := range []int{25, 50, 75, 100} {
		sel := partialcube.SelectPercent(spec.D, pct, sc.Seed)
		sq := runSeq(spec, seq.Config{D: spec.D, Selected: sel})
		s := Fig6Series{Percent: pct, SeqSeconds: sq.SimSeconds}
		s.Points = speedupSeries(sq.SimSeconds, sc.Procs, func(p int) core.Metrics {
			return runParallel(spec, p, core.Config{D: spec.D, Selected: sel})
		})
		res.Series = append(res.Series, s)
	}
	return res
}

// Print writes the figure's table.
func (r Fig6Result) Print(w io.Writer) {
	labels := make([]string, len(r.Series))
	seqs := make([]float64, len(r.Series))
	pts := make([][]SpeedupPoint, len(r.Series))
	for i, s := range r.Series {
		labels[i] = fmt.Sprintf("%d%% selected", s.Percent)
		seqs[i] = s.SeqSeconds
		pts[i] = s.Points
	}
	printSpeedupTable(w, "Figure 6: partial-cube time and relative speedup vs processors", labels, seqs, pts)
}

// ---------------------------------------------------------------- Fig 7

// Fig7Result reproduces Figure 7: global vs local schedule trees.
type Fig7Result struct {
	SeqSeconds float64
	Global     []SpeedupPoint
	Local      []SpeedupPoint
	// Resorts counts merge-time re-sorts in local-tree mode per p.
	Resorts []int
}

// Fig7 runs the Figure 7 sweep.
func Fig7(sc Scale) Fig7Result {
	spec := paperSpec(sc.N1M, sc.Seed)
	sq := runSeq(spec, seq.Config{D: spec.D})
	res := Fig7Result{SeqSeconds: sq.SimSeconds}
	res.Global = speedupSeries(sq.SimSeconds, sc.Procs, func(p int) core.Metrics {
		return runParallel(spec, p, core.Config{D: spec.D, Schedule: core.GlobalTree, Estimator: core.FMEstimator})
	})
	res.Local = speedupSeries(sq.SimSeconds, sc.Procs, func(p int) core.Metrics {
		met := runParallel(spec, p, core.Config{D: spec.D, Schedule: core.LocalTree, Estimator: core.FMEstimator})
		res.Resorts = append(res.Resorts, met.Resorts)
		return met
	})
	return res
}

// Print writes the figure's table.
func (r Fig7Result) Print(w io.Writer) {
	printSpeedupTable(w, "Figure 7: global vs local schedule trees",
		[]string{"global tree", "local tree"},
		[]float64{r.SeqSeconds, r.SeqSeconds},
		[][]SpeedupPoint{r.Global, r.Local})
	fmt.Fprintf(w, "  local-tree merge re-sorts per p: %v\n", r.Resorts)
}

// ---------------------------------------------------------------- Fig 8

// Fig8Point is one skew level of Figure 8.
type Fig8Point struct {
	Alpha     float64
	Seconds   float64
	MergeMB   float64
	TotalRows int64
}

// Fig8Result reproduces Figure 8: time and merge-phase communication
// volume vs Zipf skew, at the maximum processor count.
type Fig8Result struct {
	P      int
	Points []Fig8Point
}

// Fig8 runs the Figure 8 sweep.
func Fig8(sc Scale) Fig8Result {
	res := Fig8Result{P: sc.MaxP}
	for _, alpha := range []float64{0, 1, 2, 3} {
		spec := paperSpec(sc.N1M, sc.Seed)
		spec.Skews = []float64{alpha, alpha, alpha, alpha, alpha, alpha, alpha, alpha}
		met := runParallel(spec, sc.MaxP, core.Config{D: spec.D})
		res.Points = append(res.Points, Fig8Point{
			Alpha:     alpha,
			Seconds:   met.SimSeconds,
			MergeMB:   float64(met.BytesByPhase["merge"]) / 1e6,
			TotalRows: met.OutputRows,
		})
	}
	return res
}

// Print writes the figure's table.
func (r Fig8Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: skew vs time and merge communication (p=%d)\n", r.P)
	fmt.Fprintf(w, "%-6s | %10s | %12s | %12s\n", "alpha", "seconds", "merge MB", "cube rows")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-6.1f | %10.1f | %12.1f | %12d\n", pt.Alpha, pt.Seconds, pt.MergeMB, pt.TotalRows)
	}
}

// ---------------------------------------------------------------- Fig 9

// Fig9Series is one cardinality mix of Figure 9.
type Fig9Series struct {
	Label      string
	SeqSeconds float64
	Points     []SpeedupPoint
}

// Fig9Result reproduces Figure 9: cardinality mixes A-D.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9 runs the Figure 9 sweep: (A) all 256, (B) the paper mix,
// (C) all 16, (D) the paper mix with alpha0 = 3.
func Fig9(sc Scale) Fig9Result {
	mixes := []struct {
		label string
		cards []int
		skews []float64
	}{
		{"A: |Di|=256", []int{256, 256, 256, 256, 256, 256, 256, 256}, nil},
		{"B: paper mix", gen.PaperCards(), nil},
		{"C: |Di|=16", []int{16, 16, 16, 16, 16, 16, 16, 16}, nil},
		{"D: B + a0=3", gen.PaperCards(), []float64{3, 0, 0, 0, 0, 0, 0, 0}},
	}
	var res Fig9Result
	for _, mix := range mixes {
		spec := gen.Spec{N: sc.N1M, D: 8, Cards: mix.cards, Skews: mix.skews, Seed: sc.Seed}
		sq := runSeq(spec, seq.Config{D: spec.D})
		s := Fig9Series{Label: mix.label, SeqSeconds: sq.SimSeconds}
		s.Points = speedupSeries(sq.SimSeconds, sc.Procs, func(p int) core.Metrics {
			return runParallel(spec, p, core.Config{D: spec.D})
		})
		res.Series = append(res.Series, s)
	}
	return res
}

// Print writes the figure's table.
func (r Fig9Result) Print(w io.Writer) {
	labels := make([]string, len(r.Series))
	seqs := make([]float64, len(r.Series))
	pts := make([][]SpeedupPoint, len(r.Series))
	for i, s := range r.Series {
		labels[i] = s.Label
		seqs[i] = s.SeqSeconds
		pts[i] = s.Points
	}
	printSpeedupTable(w, "Figure 9: cardinality mixes", labels, seqs, pts)
}

// --------------------------------------------------------------- Fig 10

// Fig10Point is one dimensionality of Figure 10.
type Fig10Point struct {
	D         int
	Seconds   float64
	Views     int
	TotalRows int64
}

// Fig10Result reproduces Figure 10: time vs dimensionality.
type Fig10Result struct {
	P      int
	Points []Fig10Point
}

// Fig10 runs the Figure 10 sweep: d = 6..10, all cardinalities 256.
func Fig10(sc Scale) Fig10Result {
	res := Fig10Result{P: sc.MaxP}
	for d := 6; d <= 10; d++ {
		cards := make([]int, d)
		for i := range cards {
			cards[i] = 256
		}
		spec := gen.Spec{N: sc.N1M, D: d, Cards: cards, Seed: sc.Seed}
		met := runParallel(spec, sc.MaxP, core.Config{D: d})
		res.Points = append(res.Points, Fig10Point{
			D: d, Seconds: met.SimSeconds, Views: 1 << uint(d), TotalRows: met.OutputRows,
		})
	}
	return res
}

// Print writes the figure's table.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 10: dimensionality vs time (p=%d)\n", r.P)
	fmt.Fprintf(w, "%-4s | %8s | %10s | %12s\n", "d", "views", "seconds", "cube rows")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-4d | %8d | %10.1f | %12d\n", pt.D, pt.Views, pt.Seconds, pt.TotalRows)
	}
}

// --------------------------------------------------------------- Fig 11

// Fig11Series is one balance threshold of Figure 11.
type Fig11Series struct {
	GammaPct   float64
	SeqSeconds float64
	Points     []SpeedupPoint
}

// Fig11Result reproduces Figure 11: balance threshold tradeoffs.
type Fig11Result struct {
	Series []Fig11Series
}

// Fig11 runs the Figure 11 sweep: merge balance thresholds 3/5/7%.
func Fig11(sc Scale) Fig11Result {
	spec := paperSpec(sc.N1M, sc.Seed)
	sq := runSeq(spec, seq.Config{D: spec.D})
	var res Fig11Result
	for _, pct := range []float64{3, 5, 7} {
		s := Fig11Series{GammaPct: pct, SeqSeconds: sq.SimSeconds}
		s.Points = speedupSeries(sq.SimSeconds, sc.Procs, func(p int) core.Metrics {
			return runParallel(spec, p, core.Config{D: spec.D, MergeGamma: pct / 100})
		})
		res.Series = append(res.Series, s)
	}
	return res
}

// Print writes the figure's table.
func (r Fig11Result) Print(w io.Writer) {
	labels := make([]string, len(r.Series))
	seqs := make([]float64, len(r.Series))
	pts := make([][]SpeedupPoint, len(r.Series))
	for i, s := range r.Series {
		labels[i] = fmt.Sprintf("gamma=%.0f%%", s.GammaPct)
		seqs[i] = s.SeqSeconds
		pts[i] = s.Points
	}
	printSpeedupTable(w, "Figure 11: balance threshold tradeoffs", labels, seqs, pts)
}

// -------------------------------------------------------------- Overlap

// OverlapPoint compares one processor count with the §4.1
// communication–computation overlap off and on.
type OverlapPoint struct {
	P              int
	BaseSeconds    float64
	OverlapSeconds float64
	// MaskedSeconds is the communication the makespan processor hid
	// behind local work in the overlapped run.
	MaskedSeconds float64
	// Improvement is (base - overlap) / base; it can never exceed
	// MaskableFraction, the baseline's CommSeconds / SimSeconds bound.
	Improvement      float64
	MaskableFraction float64
}

// OverlapSkewPoint is one Zipf skew level of the Figure 8 workload at
// the full machine, overlap off and on.
type OverlapSkewPoint struct {
	Alpha            float64
	BaseSeconds      float64
	OverlapSeconds   float64
	Improvement      float64
	MaskableFraction float64
}

// OverlapResult turns the paper's §4.1 overlap observation into a
// figure-style table: the Figure 5 processor sweep and the Figure 8
// skew sweep, each built with the communication–computation overlap
// disabled and enabled.
type OverlapResult struct {
	N      int
	Points []OverlapPoint
	SkewP  int
	Skew   []OverlapSkewPoint
}

// Overlap runs the overlap on/off comparison.
func Overlap(sc Scale) OverlapResult {
	spec := paperSpec(sc.N1M, sc.Seed)
	res := OverlapResult{N: sc.N1M, SkewP: sc.MaxP}
	for _, p := range sc.Procs {
		base := runParallel(spec, p, core.Config{D: spec.D})
		ov := runParallel(spec, p, core.Config{D: spec.D, OverlapComm: true})
		res.Points = append(res.Points, OverlapPoint{
			P:                p,
			BaseSeconds:      base.SimSeconds,
			OverlapSeconds:   ov.SimSeconds,
			MaskedSeconds:    ov.OverlappedCommSeconds,
			Improvement:      (base.SimSeconds - ov.SimSeconds) / base.SimSeconds,
			MaskableFraction: base.MaskableCommFraction(),
		})
	}
	for _, alpha := range []float64{0, 1, 2, 3} {
		skewed := paperSpec(sc.N1M, sc.Seed)
		skewed.Skews = []float64{alpha, alpha, alpha, alpha, alpha, alpha, alpha, alpha}
		base := runParallel(skewed, sc.MaxP, core.Config{D: skewed.D})
		ov := runParallel(skewed, sc.MaxP, core.Config{D: skewed.D, OverlapComm: true})
		res.Skew = append(res.Skew, OverlapSkewPoint{
			Alpha:            alpha,
			BaseSeconds:      base.SimSeconds,
			OverlapSeconds:   ov.SimSeconds,
			Improvement:      (base.SimSeconds - ov.SimSeconds) / base.SimSeconds,
			MaskableFraction: base.MaskableCommFraction(),
		})
	}
	return res
}

// Print writes the overlap comparison tables.
func (r OverlapResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Overlap: §4.1 communication–computation overlap off/on (n=%d)\n", r.N)
	fmt.Fprintf(w, "%-6s | %10s | %10s | %10s | %9s | %9s\n",
		"p", "base s", "overlap s", "masked s", "improv", "bound")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-6d | %10.1f | %10.1f | %10.1f | %8.1f%% | %8.1f%%\n",
			pt.P, pt.BaseSeconds, pt.OverlapSeconds, pt.MaskedSeconds,
			100*pt.Improvement, 100*pt.MaskableFraction)
	}
	fmt.Fprintf(w, "Overlap under skew (p=%d)\n", r.SkewP)
	fmt.Fprintf(w, "%-6s | %10s | %10s | %9s | %9s\n",
		"alpha", "base s", "overlap s", "improv", "bound")
	for _, pt := range r.Skew {
		fmt.Fprintf(w, "%-6.1f | %10.1f | %10.1f | %8.1f%% | %8.1f%%\n",
			pt.Alpha, pt.BaseSeconds, pt.OverlapSeconds,
			100*pt.Improvement, 100*pt.MaskableFraction)
	}
}

// -------------------------------------------------------------- Headline

// HeadlineResult reproduces the paper's §1/§4.1 end-to-end claims:
// input size vs cube size and build time on the full machine.
type HeadlineResult struct {
	P       int
	Entries []HeadlineEntry
}

// HeadlineEntry is one input size.
type HeadlineEntry struct {
	N          int
	Seconds    float64
	CubeRows   int64
	CubeGB     float64
	InputMB    float64
	Expansion  float64 // cube rows / input rows
	CaseCounts map[mergepart.Case]int
}

// Headline runs the two headline builds (the paper's 2M- and 10M-row
// data sets, scaled).
func Headline(sc Scale) HeadlineResult {
	res := HeadlineResult{P: sc.MaxP}
	for _, n := range []int{sc.N2M, sc.N10M} {
		spec := paperSpec(n, sc.Seed)
		met := runParallel(spec, sc.MaxP, core.Config{D: spec.D})
		res.Entries = append(res.Entries, HeadlineEntry{
			N:          n,
			Seconds:    met.SimSeconds,
			CubeRows:   met.OutputRows,
			CubeGB:     float64(met.OutputBytes) / 1e9,
			InputMB:    float64(n*36) / 1e6,
			Expansion:  float64(met.OutputRows) / float64(n),
			CaseCounts: met.CaseCounts,
		})
	}
	return res
}

// Print writes the headline table.
func (r HeadlineResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Headline: end-to-end cube builds (p=%d)\n", r.P)
	fmt.Fprintf(w, "%-10s | %10s | %12s | %8s | %10s\n", "n", "input MB", "cube rows", "cube GB", "seconds")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-10d | %10.1f | %12d | %8.2f | %10.1f\n", e.N, e.InputMB, e.CubeRows, e.CubeGB, e.Seconds)
	}
}

// viewCount is a small helper used by tests.
func viewCount(d int) int { return len(lattice.AllViews(d)) }

// ------------------------------------------------------------ Baseline

// BaselinePoint compares the two architectures at one processor count.
type BaselinePoint struct {
	P                    int
	WorkPartSeconds      float64
	WorkPartSpeedup      float64
	SharedNothingSeconds float64
	SharedNothingSpeedup float64
	WorkPartImbalance    float64
}

// BaselineResult compares the paper's shared-nothing data-partitioning
// algorithm against the shared-disk work-partitioning family its
// introduction contrasts (not a figure in the paper; our reproduction
// of its architectural argument).
type BaselineResult struct {
	SeqSeconds float64
	Points     []BaselinePoint
}

// Baseline runs the architecture comparison on the Figure 5 workload.
func Baseline(sc Scale) BaselineResult {
	spec := paperSpec(sc.N1M, sc.Seed)
	raw := gen.New(spec).All()
	sq := runSeq(spec, seq.Config{D: spec.D})
	res := BaselineResult{SeqSeconds: sq.SimSeconds}
	for _, p := range sc.Procs {
		_, wm := workpart.BuildCube(raw, workpart.Config{D: spec.D, P: p})
		sn := runParallel(spec, p, core.Config{D: spec.D})
		res.Points = append(res.Points, BaselinePoint{
			P:                    p,
			WorkPartSeconds:      wm.SimSeconds,
			WorkPartSpeedup:      sq.SimSeconds / wm.SimSeconds,
			SharedNothingSeconds: sn.SimSeconds,
			SharedNothingSpeedup: sq.SimSeconds / sn.SimSeconds,
			WorkPartImbalance:    wm.Imbalance,
		})
	}
	return res
}

// Print writes the comparison table.
func (r BaselineResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Baseline: shared-nothing data partitioning vs shared-disk work partitioning")
	fmt.Fprintf(w, "%-6s | %24s | %24s | %10s\n", "p", "work partitioning", "shared-nothing (paper)", "wp imbal")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%-6d | %12.1fs  %7.2fx | %12.1fs  %7.2fx | %10.2f\n",
			pt.P, pt.WorkPartSeconds, pt.WorkPartSpeedup,
			pt.SharedNothingSeconds, pt.SharedNothingSpeedup, pt.WorkPartImbalance)
	}
	fmt.Fprintf(w, "%-6s | %12.1fs\n", "seq", r.SeqSeconds)
}

// -------------------------------------------------------------- Faults

// FaultsOverheadPoint is one checkpoint interval of the overhead sweep
// (interval 0 is the checkpoint-free baseline).
type FaultsOverheadPoint struct {
	Interval     int
	Seconds      float64
	CheckpointMB float64
	OverheadPct  float64
}

// FaultsRecoveryPoint is one crash point of the recovery sweep: a
// processor killed at the given dimension boundary, the build finishing
// degraded on p-1 from the per-dimension checkpoints.
type FaultsRecoveryPoint struct {
	Dimension       int
	Seconds         float64
	RecoverySeconds float64
	CheckpointMB    float64
	RetriedMessages int64
	FailedRanks     []int
}

// FaultsResult is the fault-tolerance table (not a figure in the
// paper, which assumes a failure-free cluster): the checkpointing
// overhead as a function of the checkpoint interval, and the recovery
// cost as a function of where in the build a processor dies.
type FaultsResult struct {
	P, N     int
	Overhead []FaultsOverheadPoint
	Recovery []FaultsRecoveryPoint
	// NoCheckpointErr is the structured failure the dimension-3 crash
	// produces when checkpointing is off.
	NoCheckpointErr string
}

// Faults runs the fault-tolerance sweeps on the Figure 5 workload at
// the full machine.
func Faults(sc Scale) FaultsResult {
	spec := paperSpec(sc.N1M, sc.Seed)
	p := sc.MaxP
	res := FaultsResult{P: p, N: sc.N1M}

	base := runParallel(spec, p, core.Config{D: spec.D})
	res.Overhead = append(res.Overhead, FaultsOverheadPoint{Interval: 0, Seconds: base.SimSeconds})
	for _, interval := range []int{1, 2, 4} {
		met := runParallel(spec, p, core.Config{
			D:          spec.D,
			Checkpoint: core.CheckpointConfig{Enabled: true, Interval: interval},
		})
		res.Overhead = append(res.Overhead, FaultsOverheadPoint{
			Interval:     interval,
			Seconds:      met.SimSeconds,
			CheckpointMB: float64(met.CheckpointBytes) / 1e6,
			OverheadPct:  100 * (met.SimSeconds - base.SimSeconds) / base.SimSeconds,
		})
	}

	// Recovery cost vs failure point: kill rank 1 at successive
	// dimension boundaries, with one dropped replica payload thrown in
	// so the retry path shows up in the table.
	for _, dim := range []int{1, 3, 5, 7} {
		plan := &faults.Plan{
			Seed:    sc.Seed,
			Crashes: []faults.Crash{{Rank: 1, Dimension: dim}},
			Drops:   []faults.PayloadFault{{Src: 0, Dst: 1, Exchange: 0}},
		}
		met, err := runParallelErr(spec, p, core.Config{
			D:          spec.D,
			Faults:     plan,
			Checkpoint: core.CheckpointConfig{Enabled: true},
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: recovery build failed: %v", err))
		}
		res.Recovery = append(res.Recovery, FaultsRecoveryPoint{
			Dimension:       dim,
			Seconds:         met.SimSeconds,
			RecoverySeconds: met.RecoverySeconds,
			CheckpointMB:    float64(met.CheckpointBytes) / 1e6,
			RetriedMessages: met.RetriedMessages,
			FailedRanks:     met.FailedRanks,
		})
	}

	// The same mid-build crash without checkpointing fails fast with a
	// structured error naming the failure point.
	plan := &faults.Plan{Crashes: []faults.Crash{{Rank: 1, Dimension: 3}}}
	if _, err := runParallelErr(spec, p, core.Config{D: spec.D, Faults: plan}); err != nil {
		res.NoCheckpointErr = err.Error()
	}
	return res
}

// Print writes the fault-tolerance tables.
func (r FaultsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Faults: checkpoint overhead vs interval (p=%d, n=%d)\n", r.P, r.N)
	fmt.Fprintf(w, "%-10s | %10s | %10s | %9s\n", "interval", "seconds", "ckpt MB", "overhead")
	for _, pt := range r.Overhead {
		label := fmt.Sprintf("%d", pt.Interval)
		if pt.Interval == 0 {
			label = "off"
		}
		fmt.Fprintf(w, "%-10s | %10.1f | %10.1f | %8.1f%%\n",
			label, pt.Seconds, pt.CheckpointMB, pt.OverheadPct)
	}
	fmt.Fprintf(w, "Faults: recovery cost vs failure point (crash of P1, interval=1)\n")
	fmt.Fprintf(w, "%-10s | %10s | %10s | %10s | %8s | %s\n",
		"crash dim", "seconds", "recover s", "ckpt MB", "retried", "failed")
	for _, pt := range r.Recovery {
		fmt.Fprintf(w, "%-10d | %10.1f | %10.1f | %10.1f | %8d | %v\n",
			pt.Dimension, pt.Seconds, pt.RecoverySeconds, pt.CheckpointMB,
			pt.RetriedMessages, pt.FailedRanks)
	}
	fmt.Fprintf(w, "  same crash without checkpointing: %s\n", r.NoCheckpointErr)
}
