package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestIngestTableShape(t *testing.T) {
	sc := testScale()
	sc.Procs = []int{1, 8}
	res := Ingest(sc)
	if len(res.Points) != 4 { // {1,8} procs x {1%,5%} batches
		t.Fatalf("want 4 points, got %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.IngestSecs <= 0 || pt.RebuildSec <= 0 || pt.Ratio <= 0 {
			t.Fatalf("degenerate point: %+v", pt)
		}
		if pt.MergeSecs <= 0 || pt.MergeSecs > pt.IngestSecs {
			t.Fatalf("delta-merge share out of range: %+v", pt)
		}
		// Even at test sizes (where fixed access charges dominate), a
		// small batch must never cost more than the full rebuild.
		if pt.Ratio >= 1 {
			t.Fatalf("ingest costs more than rebuild: %+v", pt)
		}
	}
	// Within one machine size the bigger batch costs more to apply.
	for i := 0; i+1 < len(res.Points); i += 2 {
		if res.Points[i].IngestSecs >= res.Points[i+1].IngestSecs {
			t.Fatalf("5%% batch not costlier than 1%%: %+v vs %+v",
				res.Points[i], res.Points[i+1])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "rebuild_s") {
		t.Fatal("Print output malformed")
	}
}
