package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// testScale is small enough for CI while preserving the qualitative
// shapes the assertions check.
func testScale() Scale {
	return Scale{
		N1M: 12_000, N2M: 24_000, N10M: 48_000,
		Procs: []int{1, 2, 4, 8},
		MaxP:  8,
		Seed:  1,
	}
}

func last(pts []SpeedupPoint) SpeedupPoint { return pts[len(pts)-1] }

func TestFig5SpeedupShape(t *testing.T) {
	res := Fig5(testScale())
	if len(res.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		// Time decreases monotonically with p.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Seconds >= s.Points[i-1].Seconds {
				t.Fatalf("n=%d: time not decreasing at p=%d (%v -> %v)",
					s.N, s.Points[i].P, s.Points[i-1].Seconds, s.Points[i].Seconds)
			}
		}
		// Meaningful speedup at the largest p.
		if sp := last(s.Points).Speedup; sp < 2 {
			t.Fatalf("n=%d: speedup at max p only %.2f", s.N, sp)
		}
		if s.OutputRows == 0 {
			t.Fatal("no cube rows")
		}
	}
	// The paper's core observation: larger inputs speed up better.
	small, large := res.Series[0], res.Series[1]
	if last(large.Points).Speedup <= last(small.Points).Speedup*0.95 {
		t.Fatalf("larger data set should not speed up worse: %v vs %v",
			last(large.Points).Speedup, last(small.Points).Speedup)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("Print output malformed")
	}
}

func TestFig6PartialCubeShape(t *testing.T) {
	res := Fig6(testScale())
	if len(res.Series) != 4 {
		t.Fatalf("want 4 series, got %d", len(res.Series))
	}
	// Sequential partial times grow (weakly) with the selected
	// percentage: a high percentage of low-dimensional views can
	// require the whole tree as intermediates, so adjacent steps may
	// tie, but 25% must be strictly cheaper than 100%.
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].SeqSeconds < res.Series[i-1].SeqSeconds*0.999 {
			t.Fatalf("seq time decreasing with selection: %d%%=%.1f vs %d%%=%.1f",
				res.Series[i].Percent, res.Series[i].SeqSeconds,
				res.Series[i-1].Percent, res.Series[i-1].SeqSeconds)
		}
	}
	if res.Series[0].SeqSeconds >= res.Series[3].SeqSeconds {
		t.Fatalf("25%% seq (%.1f) not cheaper than 100%% seq (%.1f)",
			res.Series[0].SeqSeconds, res.Series[3].SeqSeconds)
	}
	// Every selection keeps a real speedup at the largest p (paper: 25%
	// is still "more than half of optimal"). Note an honest deviation
	// recorded in EXPERIMENTS.md: in our cost model mid-range
	// selections can speed up slightly BETTER than the full cube
	// (they skip the expensive merges of the largest views), whereas
	// the paper has the full cube on top; both systems agree that
	// selections down to 25% parallelize well and that tiny selections
	// fall off.
	for _, s := range res.Series {
		if sp := last(s.Points).Speedup; sp < 1 {
			t.Fatalf("%d%% selection speedup %.2f < 1", s.Percent, sp)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "partial-cube") {
		t.Fatal("Print output malformed")
	}
}

func TestFig7GlobalBeatsLocal(t *testing.T) {
	res := Fig7(testScale())
	// At the largest p, the global schedule tree must not lose to the
	// local trees (the paper's §2.3/§4.2 conclusion: merge-time
	// re-sorts dominate the benefit of locally optimal trees).
	g, l := last(res.Global), last(res.Local)
	if g.Seconds > l.Seconds*1.05 {
		t.Fatalf("global tree slower than local at p=%d: %.1f vs %.1f", g.P, g.Seconds, l.Seconds)
	}
	// Local mode must actually have diverged somewhere in the sweep
	// (otherwise the comparison is vacuous).
	total := 0
	for _, r := range res.Resorts {
		total += r
	}
	if total == 0 {
		t.Fatal("local-tree mode never re-sorted; trees never diverged")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "schedule trees") {
		t.Fatal("Print output malformed")
	}
}

func TestFig8SkewShape(t *testing.T) {
	// Skew effects need enough rows for data reduction to outweigh
	// per-view overheads; run this figure at a larger n.
	sc := testScale()
	sc.N1M = 60_000
	res := Fig8(sc)
	if len(res.Points) != 4 {
		t.Fatalf("want 4 skew levels, got %d", len(res.Points))
	}
	// Data reduction: cube shrinks monotonically with skew.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].TotalRows >= res.Points[i-1].TotalRows {
			t.Fatalf("cube rows not decreasing with skew: %v", res.Points)
		}
	}
	// High skew is much faster than no skew (paper: time drops
	// significantly for alpha > 1).
	if res.Points[3].Seconds >= res.Points[0].Seconds {
		t.Fatalf("alpha=3 (%.1fs) not faster than alpha=0 (%.1fs)",
			res.Points[3].Seconds, res.Points[0].Seconds)
	}
	// Communication collapses at high skew relative to its peak.
	peak := 0.0
	for _, pt := range res.Points {
		if pt.MergeMB > peak {
			peak = pt.MergeMB
		}
	}
	if res.Points[3].MergeMB > peak*0.8 {
		t.Fatalf("alpha=3 communication %.1fMB not below peak %.1fMB", res.Points[3].MergeMB, peak)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "skew") {
		t.Fatal("Print output malformed")
	}
}

func TestFig9CardinalityShape(t *testing.T) {
	// Cardinality effects are subtle; use a larger n and a short
	// processor sweep.
	sc := testScale()
	sc.N1M = 60_000
	sc.Procs = []int{1, 8}
	res := Fig9(sc)
	if len(res.Series) != 4 {
		t.Fatalf("want 4 mixes, got %d", len(res.Series))
	}
	a, b, c, d := res.Series[0], res.Series[1], res.Series[2], res.Series[3]
	// The sparsest mix (A, all-256) is the slowest at the largest p
	// (paper Fig 9a: "the sparser data sets require somewhat more
	// time"). B and C are close in our model; we assert only A's
	// position, the figure's headline effect.
	ta, tb, tc := last(a.Points).Seconds, last(b.Points).Seconds, last(c.Points).Seconds
	if ta <= tb || ta <= tc {
		t.Fatalf("sparsest mix not slowest: A=%.1f B=%.1f C=%.1f", ta, tb, tc)
	}
	// The "difficult input" D (skewed leading dimension) loses speedup
	// relative to B but stays useful (paper: still about half optimal).
	sb, sd := last(b.Points).Speedup, last(d.Points).Speedup
	if sd > sb*1.1 {
		t.Fatalf("difficult mix D speeds up better (%.2f) than B (%.2f)", sd, sb)
	}
	if sd < 1 {
		t.Fatalf("mix D speedup collapsed: %.2f", sd)
	}
}

func TestFig10DimensionalityShape(t *testing.T) {
	sc := testScale()
	res := Fig10(sc)
	if len(res.Points) != 5 {
		t.Fatalf("want d=6..10, got %d points", len(res.Points))
	}
	for i, pt := range res.Points {
		if pt.D != 6+i || pt.Views != 1<<uint(6+i) {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
		if i > 0 {
			prev := res.Points[i-1]
			if pt.Seconds <= prev.Seconds {
				t.Fatalf("time not increasing with d: d=%d %.1fs vs d=%d %.1fs",
					pt.D, pt.Seconds, prev.D, prev.Seconds)
			}
			if pt.TotalRows <= prev.TotalRows {
				t.Fatal("output not growing with d")
			}
			// Time grows roughly with output size (paper: essentially
			// linear in output): the per-row time should stay within a
			// factor 4 between adjacent d.
			r1 := pt.Seconds / float64(pt.TotalRows)
			r0 := prev.Seconds / float64(prev.TotalRows)
			if r1 > r0*4 || r1 < r0/4 {
				t.Fatalf("time per output row jumped: d=%d %.3g vs d=%d %.3g", pt.D, r1, prev.D, r0)
			}
		}
	}
}

func TestFig11BalanceShape(t *testing.T) {
	res := Fig11(testScale())
	if len(res.Series) != 3 {
		t.Fatalf("want gammas 3/5/7, got %d", len(res.Series))
	}
	// Tightening gamma may cost time but the effect is small (paper:
	// "the effect is small"): 3% at most 50% slower than 7% at max p,
	// and never faster by more than a whisker is not required — only
	// bounded degradation.
	t3 := last(res.Series[0].Points).Seconds
	t7 := last(res.Series[2].Points).Seconds
	if t3 > t7*1.5 {
		t.Fatalf("gamma=3%% (%.1fs) more than 1.5x slower than gamma=7%% (%.1fs)", t3, t7)
	}
	for _, s := range res.Series {
		if last(s.Points).Speedup < 1.5 {
			t.Fatalf("gamma=%.0f%%: speedup %.2f too low", s.GammaPct, last(s.Points).Speedup)
		}
	}
}

func TestHeadlineExpansion(t *testing.T) {
	res := Headline(testScale())
	if len(res.Entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.CubeRows == 0 || e.Seconds <= 0 {
			t.Fatalf("empty headline entry: %+v", e)
		}
		// The cube is much larger than the input (paper: 113x at n=2M;
		// smaller inputs saturate less but still explode).
		if e.Expansion < 10 {
			t.Fatalf("n=%d: expansion only %.1fx", e.N, e.Expansion)
		}
	}
	// More input, more cube.
	if res.Entries[1].CubeRows <= res.Entries[0].CubeRows {
		t.Fatal("larger input should produce a larger cube")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Headline") {
		t.Fatal("Print output malformed")
	}
}

func TestScales(t *testing.T) {
	d := DefaultScale()
	p := PaperScale()
	if p.N1M != 1_000_000 || p.N2M != 2_000_000 || p.N10M != 10_000_000 {
		t.Fatalf("PaperScale wrong: %+v", p)
	}
	if d.N1M >= p.N1M {
		t.Fatal("default scale should be reduced")
	}
	s := Scaled(2)
	if s.N1M != 2*d.N1M {
		t.Fatalf("Scaled(2) = %+v", s)
	}
	if viewCount(4) != 16 {
		t.Fatal("viewCount helper broken")
	}
}

// TestOverlapImprovesWithinBound is the acceptance check of the §4.1
// overlap: enabling OverlapComm must reduce SimSeconds on the default
// experiment config, and the improvement can never exceed the
// corrected MaskableCommFraction bound.
func TestOverlapImprovesWithinBound(t *testing.T) {
	res := Overlap(testScale())
	if len(res.Points) == 0 || len(res.Skew) == 0 {
		t.Fatalf("overlap result malformed: %+v", res)
	}
	anyGain := false
	check := func(label string, base, overlap, improvement, bound float64) {
		t.Helper()
		if overlap > base*(1+1e-9) {
			t.Errorf("%s: overlap run slower (%.3f > %.3f)", label, overlap, base)
		}
		if improvement > bound+1e-9 {
			t.Errorf("%s: improvement %.4f exceeds maskable bound %.4f", label, improvement, bound)
		}
	}
	for _, pt := range res.Points {
		check(fmt.Sprintf("p=%d", pt.P), pt.BaseSeconds, pt.OverlapSeconds, pt.Improvement, pt.MaskableFraction)
		if pt.P > 1 {
			if pt.Improvement > 0.005 {
				anyGain = true
			}
			if pt.MaskedSeconds <= 0 {
				t.Errorf("p=%d: nothing masked despite overlap mode", pt.P)
			}
		} else if pt.MaskableFraction > 1e-9 {
			t.Errorf("p=1 has comm to mask: %v", pt.MaskableFraction)
		}
	}
	for _, pt := range res.Skew {
		check(fmt.Sprintf("alpha=%.1f", pt.Alpha), pt.BaseSeconds, pt.OverlapSeconds, pt.Improvement, pt.MaskableFraction)
	}
	if !anyGain {
		t.Fatal("overlap produced no measurable improvement at any p > 1")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Overlap") {
		t.Fatal("Print malformed")
	}
}

func TestBaselineComparison(t *testing.T) {
	sc := testScale()
	sc.N1M = 60_000
	sc.Procs = []int{4, 16}
	res := Baseline(sc)
	if len(res.Points) != 2 || res.SeqSeconds <= 0 {
		t.Fatalf("baseline malformed: %+v", res)
	}
	p16 := res.Points[1]
	// At scale the paper's architecture wins (see workpart tests for
	// the saturation analysis).
	if p16.SharedNothingSpeedup <= p16.WorkPartSpeedup {
		t.Fatalf("shared-nothing (%.2fx) should beat work partitioning (%.2fx) at p=16",
			p16.SharedNothingSpeedup, p16.WorkPartSpeedup)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "work partitioning") {
		t.Fatal("Print malformed")
	}
}

func TestFaultsTableShape(t *testing.T) {
	res := Faults(testScale())
	if len(res.Overhead) != 4 || res.Overhead[0].Interval != 0 {
		t.Fatalf("overhead sweep malformed: %+v", res.Overhead)
	}
	base := res.Overhead[0].Seconds
	for _, pt := range res.Overhead[1:] {
		if pt.Seconds <= base {
			t.Fatalf("interval %d: checkpointing cost nothing (%.1fs vs %.1fs)",
				pt.Interval, pt.Seconds, base)
		}
		if pt.CheckpointMB <= 0 {
			t.Fatalf("interval %d: no checkpoint bytes", pt.Interval)
		}
	}
	for _, pt := range res.Recovery {
		if pt.RecoverySeconds <= 0 {
			t.Fatalf("crash at dim %d: no recovery time charged", pt.Dimension)
		}
		if pt.Seconds <= base {
			t.Fatalf("crash at dim %d: degraded build not slower than clean baseline", pt.Dimension)
		}
		if len(pt.FailedRanks) != 1 || pt.FailedRanks[0] != 1 {
			t.Fatalf("crash at dim %d: FailedRanks = %v", pt.Dimension, pt.FailedRanks)
		}
		if pt.RetriedMessages == 0 {
			t.Fatalf("crash at dim %d: injected drop not retried", pt.Dimension)
		}
	}
	// A later failure point costs at least as much recovery as an
	// earlier one (more completed views to rebalance and re-replicate).
	for i := 1; i < len(res.Recovery); i++ {
		if res.Recovery[i].RecoverySeconds < res.Recovery[i-1].RecoverySeconds*0.9 {
			t.Fatalf("recovery cost shrank sharply with later failure point: %+v", res.Recovery)
		}
	}
	if !strings.Contains(res.NoCheckpointErr, "processor 1") {
		t.Fatalf("no-checkpoint failure %q does not name the processor", res.NoCheckpointErr)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	for _, want := range []string{"checkpoint overhead", "recovery cost", "processor 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("printed table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestServeThroughputScales(t *testing.T) {
	sc := testScale()
	sc.Procs = []int{1, 8}
	res := Serve(sc)
	if len(res.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(res.Points))
	}
	p1, p8 := res.Points[0], res.Points[1]
	// The acceptance bar: at least 2x simulated query throughput at
	// p=8 over p=1 on the identical workload.
	if p8.Throughput < 2*p1.Throughput {
		t.Fatalf("p=8 throughput %.1f q/s < 2x p=1 %.1f q/s", p8.Throughput, p1.Throughput)
	}
	// The warm cache must actually be hitting, identically at every p
	// (the workload and planner are deterministic).
	if p1.HitRatio <= 0 || p1.HitRatio != p8.HitRatio {
		t.Fatalf("hit ratios %.2f / %.2f", p1.HitRatio, p8.HitRatio)
	}
	// The prefix index must charge strictly fewer rows than the scan.
	if res.IdxRows >= res.ScanRows || res.ScanRows == 0 {
		t.Fatalf("index probe %d rows vs scan %d rows", res.IdxRows, res.ScanRows)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "queries/s") {
		t.Fatal("Print output malformed")
	}
}
