package advisor

import (
	"reflect"
	"testing"

	"repro/internal/lattice"
)

// tableSizer returns fixed estimates, defaulting to def for views not
// listed.
type tableSizer struct {
	est map[lattice.ViewID]float64
	def float64
}

func (s tableSizer) EstimateView(v lattice.ViewID) float64 {
	if e, ok := s.est[v]; ok {
		return e
	}
	return s.def
}

func cfg() Config {
	return Config{
		D:                  3,
		MinFallbacks:       2,
		ColdSourceQueries:  0.5,
		MaterializePerStep: 2,
		RetirePerStep:      1,
		CostWeight:         0.25,
		Seed:               42,
	}
}

func v(dims ...int) lattice.ViewID {
	out := lattice.Empty
	for _, d := range dims {
		out = out.Add(d)
	}
	return out
}

func TestRecommendMaterializesHotFallback(t *testing.T) {
	full := v(0, 1, 2)
	window := map[lattice.ViewID]Demand{
		v(0): {Fallbacks: 100, FallbackRows: 100 * 1000}, // hot, scans full
		v(1): {Fallbacks: 1, FallbackRows: 1000},         // below MinFallbacks
	}
	mat := map[lattice.ViewID]int64{full: 1000}
	sizer := tableSizer{def: 10}
	recs := Recommend(cfg(), window, mat, sizer)
	if len(recs) != 1 {
		t.Fatalf("got %d recs, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Action != Materialize || r.View != v(0) || r.From != full {
		t.Fatalf("unexpected rec %+v", r)
	}
	// saved = 100000 - 100*10 = 99000; cost = 0.25*(1000+10) = 252.5
	want := 99000.0 - 252.5
	if r.Score != want {
		t.Fatalf("score %v, want %v", r.Score, want)
	}
}

func TestRecommendSkipsWhenNoGain(t *testing.T) {
	full := v(0, 1, 2)
	// Estimated size equals the source: materializing saves nothing.
	window := map[lattice.ViewID]Demand{
		v(0, 1): {Fallbacks: 50, FallbackRows: 50 * 1000},
	}
	mat := map[lattice.ViewID]int64{full: 1000}
	recs := Recommend(cfg(), window, mat, tableSizer{def: 1000})
	if len(recs) != 0 {
		t.Fatalf("expected no recs, got %+v", recs)
	}
}

func TestRecommendRespectsMaxViewsAndBudget(t *testing.T) {
	full := v(0, 1, 2)
	window := map[lattice.ViewID]Demand{
		v(0): {Fallbacks: 100, FallbackRows: 1e6},
		v(1): {Fallbacks: 90, FallbackRows: 9e5},
	}
	mat := map[lattice.ViewID]int64{full: 1000}
	c := cfg()
	c.MaxViews = 2 // one slot beyond the existing view
	recs := Recommend(c, window, mat, tableSizer{def: 10})
	var made int
	for _, r := range recs {
		if r.Action == Materialize {
			made++
		}
	}
	if made != 1 {
		t.Fatalf("MaxViews=2 admitted %d materializations, want 1", made)
	}

	c = cfg()
	c.StorageBudgetBytes = 1 // nothing fits
	recs = Recommend(c, window, mat, tableSizer{def: 10})
	for _, r := range recs {
		if r.Action == Materialize {
			t.Fatalf("budget 1 byte admitted %+v", r)
		}
	}
}

func TestRecommendRetiresColdCoveredView(t *testing.T) {
	full := v(0, 1, 2)
	cold := v(0, 1)
	window := map[lattice.ViewID]Demand{
		full: {SourceQueries: 50},
		cold: {SourceQueries: 0.1}, // cold
	}
	mat := map[lattice.ViewID]int64{full: 1000, cold: 400}
	recs := Recommend(cfg(), window, mat, tableSizer{def: 10})
	if len(recs) != 1 {
		t.Fatalf("got %d recs, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Action != Retire || r.View != cold || r.From != full {
		t.Fatalf("unexpected rec %+v", r)
	}
}

func TestRecommendNeverRetiresFrontier(t *testing.T) {
	// The full view is cold but nothing covers it: it must stay.
	full := v(0, 1, 2)
	mat := map[lattice.ViewID]int64{full: 1000}
	recs := Recommend(cfg(), map[lattice.ViewID]Demand{}, mat, tableSizer{def: 10})
	if len(recs) != 0 {
		t.Fatalf("retired the frontier: %+v", recs)
	}
}

func TestRecommendRetirePassKeepsCover(t *testing.T) {
	// Both a view and its only cover are cold; a single pass with
	// RetirePerStep=2 must not retire both (the second loses cover
	// once the first goes).
	full := v(0, 1, 2)
	mid := v(0, 1)
	low := v(0)
	mat := map[lattice.ViewID]int64{full: 1000, mid: 400, low: 100}
	c := cfg()
	c.RetirePerStep = 3
	recs := Recommend(c, map[lattice.ViewID]Demand{}, mat, tableSizer{def: 10})
	retired := map[lattice.ViewID]bool{}
	for _, r := range recs {
		if r.Action == Retire {
			retired[r.View] = true
		}
	}
	if !retired[mid] || !retired[low] {
		t.Fatalf("expected mid+low retired, got %+v", recs)
	}
	if retired[full] {
		t.Fatalf("retired the frontier full view: %+v", recs)
	}
}

func TestRecommendDeterministicTieBreak(t *testing.T) {
	full := v(0, 1, 2)
	// Identical demand on two targets: order decided by seeded hash.
	window := map[lattice.ViewID]Demand{
		v(0): {Fallbacks: 10, FallbackRows: 1e5},
		v(1): {Fallbacks: 10, FallbackRows: 1e5},
	}
	mat := map[lattice.ViewID]int64{full: 1000}
	c := cfg()
	c.MaterializePerStep = 1
	first := Recommend(c, window, mat, tableSizer{def: 10})
	for i := 0; i < 10; i++ {
		again := Recommend(c, window, mat, tableSizer{def: 10})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs: %+v vs %+v", i, first, again)
		}
	}
	// A different seed may (and here does, for some seed) pick the
	// other view — the tie-break must depend on the seed, not on a
	// fixed lattice bias.
	c2 := c
	var flipped bool
	for s := int64(0); s < 32; s++ {
		c2.Seed = s
		if got := Recommend(c2, window, mat, tableSizer{def: 10}); got[0].View != first[0].View {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatalf("tie-break ignored the seed: always %v", first[0].View)
	}
}

func TestDecay(t *testing.T) {
	w := map[lattice.ViewID]Demand{
		v(0): {Hits: 10, Fallbacks: 4, FallbackRows: 100, SourceQueries: 2},
		v(1): {Hits: 1e-8}, // decays to nothing
	}
	Decay(w, 0.5, map[lattice.ViewID]Demand{
		v(0): {Hits: 2},
		v(2): {Fallbacks: 3},
	})
	if got := w[v(0)]; got.Hits != 7 || got.Fallbacks != 2 || got.FallbackRows != 50 || got.SourceQueries != 1 {
		t.Fatalf("decayed window %+v", got)
	}
	if _, ok := w[v(1)]; ok {
		t.Fatalf("negligible entry survived")
	}
	if got := w[v(2)]; got.Fallbacks != 3 {
		t.Fatalf("new entry %+v", got)
	}
}
