// Package advisor turns serving-time demand evidence into
// materialization decisions: which views to build online and which to
// retire. It is the two-tier cube playbook — a small rollup set
// answers the hot queries directly, everything else falls back to a
// smallest-superset scan — with the rollup set *learned* from traffic
// instead of fixed at build time.
//
// The package is pure decision logic: it consumes a decayed demand
// window (per-target-view hit and fallback counters maintained by the
// query engine), the current materialized set with row counts, and a
// size estimator, and emits a deterministic, ordered recommendation
// list. Executing recommendations (building views through the ingest
// machinery, retiring behind the drain barrier) is the public
// rolap.Advisor's job, so this layer stays trivially testable.
package advisor

import (
	"sort"

	"repro/internal/estimate"
	"repro/internal/lattice"
	"repro/internal/record"
)

// Action distinguishes recommendation kinds.
type Action int

const (
	// Materialize builds View online from its smallest materialized
	// strict superset (From).
	Materialize Action = iota
	// Retire drops View; its traffic falls back to From, the smallest
	// remaining strict superset.
	Retire
)

func (a Action) String() string {
	if a == Retire {
		return "retire"
	}
	return "materialize"
}

// Demand is one target view's decayed traffic window (the advisor's
// copy of queryengine.ViewDemand, decayed so old traffic ages out).
type Demand struct {
	Hits          float64
	Fallbacks     float64
	FallbackRows  float64
	SourceQueries float64
}

// Config bounds and seeds a recommendation pass.
type Config struct {
	// D is the cube dimensionality.
	D int
	// MaxViews caps the materialized set size (0 = no cap).
	MaxViews int
	// StorageBudgetBytes caps total estimated view storage (0 = no
	// cap). Existing views count against it at their actual size.
	StorageBudgetBytes int64
	// MinFallbacks is the least (decayed) fallback traffic a target
	// view needs before it is considered for materialization.
	MinFallbacks float64
	// ColdSourceQueries is the most (decayed) source traffic a
	// materialized view may carry and still be considered cold enough
	// to retire.
	ColdSourceQueries float64
	// MaterializePerStep / RetirePerStep bound one pass's actions.
	MaterializePerStep int
	RetirePerStep      int
	// CostWeight scales the one-time build cost (source rows scanned
	// plus target rows written) against the recurring per-window scan
	// savings when scoring a materialization.
	CostWeight float64
	// Seed fixes the hash used to break score ties, so a fixed seed
	// and traffic transcript always yield the same recommendations.
	Seed int64
}

// Recommendation is one advised action, with the evidence that scored
// it.
type Recommendation struct {
	Action Action
	// View is the view to build or drop.
	View lattice.ViewID
	// From is the smallest materialized strict superset: the build
	// source for Materialize, the fallback target for Retire.
	From lattice.ViewID
	// Score is the net benefit in row-scan units per demand window
	// (Materialize) or the estimated storage rows reclaimed (Retire).
	Score float64
	// EstRows is the estimated (Materialize) or actual (Retire) global
	// row count of View.
	EstRows int64
}

// Recommend scores every candidate against the current materialized
// set and returns the pass's actions: materializations first (best
// score first), then retirements. materialized maps each live view to
// its actual global row count. The result is deterministic: maps are
// walked in sorted key order and score ties break by a seeded hash,
// then by ViewID.
func Recommend(cfg Config, window map[lattice.ViewID]Demand, materialized map[lattice.ViewID]int64, sizer estimate.Sizer) []Recommendation {
	if cfg.CostWeight == 0 {
		cfg.CostWeight = 0.25
	}
	if cfg.MaterializePerStep == 0 {
		cfg.MaterializePerStep = 2
	}
	if cfg.RetirePerStep == 0 {
		cfg.RetirePerStep = 1
	}

	var recs []Recommendation
	recs = append(recs, materializeCandidates(cfg, window, materialized, sizer)...)
	recs = append(recs, retireCandidates(cfg, window, materialized)...)
	return recs
}

// materializeCandidates picks the fallback targets worth building.
func materializeCandidates(cfg Config, window map[lattice.ViewID]Demand, materialized map[lattice.ViewID]int64, sizer estimate.Sizer) []Recommendation {
	targets := sortedViews(window)
	var cands []Recommendation
	for _, v := range targets {
		if _, live := materialized[v]; live {
			continue
		}
		d := window[v]
		if d.Fallbacks < cfg.MinFallbacks {
			continue
		}
		src, srcRows, ok := smallestSuperset(v, materialized)
		if !ok {
			continue // nothing covers it; not answerable anyway
		}
		est := sizer.EstimateView(v)
		if est >= float64(srcRows) {
			continue // no coarser than its source: nothing to gain
		}
		// Benefit: the window's fallback scans would have read est
		// rows each instead of what they actually read. Cost: one
		// build (scan the source, write the view), amortized by
		// CostWeight.
		saved := d.FallbackRows - d.Fallbacks*est
		cost := cfg.CostWeight * (float64(srcRows) + est)
		score := saved - cost
		if score <= 0 {
			continue
		}
		cands = append(cands, Recommendation{
			Action:  Materialize,
			View:    v,
			From:    src,
			Score:   score,
			EstRows: int64(est + 0.5),
		})
	}
	sortRecs(cands, cfg.Seed)

	// Apply budgets in score order.
	liveCount := len(materialized)
	var usedBytes int64
	if cfg.StorageBudgetBytes > 0 {
		for v, rows := range materialized {
			usedBytes += rows * int64(record.RowBytes(v.Count()))
		}
	}
	out := cands[:0]
	for _, r := range cands {
		if len(out) >= cfg.MaterializePerStep {
			break
		}
		if cfg.MaxViews > 0 && liveCount >= cfg.MaxViews {
			break
		}
		bytes := r.EstRows * int64(record.RowBytes(r.View.Count()))
		if cfg.StorageBudgetBytes > 0 && usedBytes+bytes > cfg.StorageBudgetBytes {
			continue
		}
		out = append(out, r)
		liveCount++
		usedBytes += bytes
	}
	return out
}

// retireCandidates picks cold views whose traffic another view can
// absorb. Candidates are evaluated against a working copy of the
// materialized set so a pass never retires a view and its only
// remaining superset together.
func retireCandidates(cfg Config, window map[lattice.ViewID]Demand, materialized map[lattice.ViewID]int64) []Recommendation {
	var cands []Recommendation
	for _, v := range sortedViewRows(materialized) {
		d := window[v]
		if d.SourceQueries > cfg.ColdSourceQueries {
			continue
		}
		if _, _, ok := smallestSuperset(v, materialized); !ok {
			continue // frontier view: retiring would lose answerability
		}
		rows := materialized[v]
		cands = append(cands, Recommendation{
			Action:  Retire,
			View:    v,
			Score:   float64(rows * int64(record.RowBytes(v.Count()))),
			EstRows: rows,
		})
	}
	sortRecs(cands, cfg.Seed)

	working := make(map[lattice.ViewID]int64, len(materialized))
	for v, n := range materialized {
		working[v] = n
	}
	out := cands[:0]
	for _, r := range cands {
		if len(out) >= cfg.RetirePerStep {
			break
		}
		src, _, ok := smallestSuperset(r.View, working)
		if !ok {
			continue // its cover was retired earlier in this pass
		}
		r.From = src
		delete(working, r.View)
		out = append(out, r)
	}
	return out
}

// smallestSuperset returns the materialized strict superset of v with
// the fewest rows (ties to the smaller ViewID), mirroring the
// engine's rewrite rule.
func smallestSuperset(v lattice.ViewID, materialized map[lattice.ViewID]int64) (lattice.ViewID, int64, bool) {
	best := lattice.ViewID(0)
	bestRows := int64(-1)
	for u, rows := range materialized {
		if u == v || !v.SubsetOf(u) {
			continue
		}
		if bestRows == -1 || rows < bestRows || (rows == bestRows && u < best) {
			best, bestRows = u, rows
		}
	}
	return best, bestRows, bestRows != -1
}

// sortRecs orders by score descending, breaking ties with a seeded
// hash and finally the ViewID, so equal-scored candidates are picked
// reproducibly but without a fixed lattice bias.
func sortRecs(recs []Recommendation, seed int64) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		ha, hb := tieHash(seed, a.View), tieHash(seed, b.View)
		if ha != hb {
			return ha < hb
		}
		return a.View < b.View
	})
}

// tieHash is the seeded mix partialcube.SelectPercent uses, reused so
// tie-breaks are stable across packages.
func tieHash(seed int64, v lattice.ViewID) uint64 {
	x := uint64(seed)<<32 ^ uint64(v)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func sortedViews(m map[lattice.ViewID]Demand) []lattice.ViewID {
	out := make([]lattice.ViewID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedViewRows(m map[lattice.ViewID]int64) []lattice.ViewID {
	out := make([]lattice.ViewID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Decay ages a demand window in place by factor (0..1) and folds in
// the latest counter deltas: w = w*factor + delta. Entries that decay
// to negligible mass are dropped so the window doesn't grow without
// bound over a long-lived server.
func Decay(window map[lattice.ViewID]Demand, factor float64, delta map[lattice.ViewID]Demand) {
	for v, w := range window {
		w.Hits *= factor
		w.Fallbacks *= factor
		w.FallbackRows *= factor
		w.SourceQueries *= factor
		if w.Hits+w.Fallbacks+w.FallbackRows+w.SourceQueries < 1e-6 {
			delete(window, v)
			continue
		}
		window[v] = w
	}
	for v, d := range delta {
		w := window[v]
		w.Hits += d.Hits
		w.Fallbacks += d.Fallbacks
		w.FallbackRows += d.FallbackRows
		w.SourceQueries += d.SourceQueries
		window[v] = w
	}
}
