package workpart

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/record"
	"repro/internal/seq"
)

func spec() gen.Spec {
	return gen.Spec{N: 3000, D: 4, Cards: []int{12, 8, 5, 3}, Seed: 7}
}

func TestWorkPartitionCorrectness(t *testing.T) {
	raw := gen.New(spec()).All()
	out, met := BuildCube(raw, Config{D: 4, P: 4})
	if met.Pipelines == 0 || met.OutputRows == 0 {
		t.Fatalf("empty metrics: %+v", met)
	}
	for _, v := range lattice.AllViews(4) {
		tb, ok := out.Get("cube." + v.String())
		if !ok {
			t.Fatalf("view %v missing", v)
		}
		groups := map[string]int64{}
		for i := 0; i < raw.Len(); i++ {
			key := ""
			for _, dim := range v.Dims() {
				key += fmt.Sprintf("%d,", raw.Dim(i, dim))
			}
			groups[key] += raw.Meas(i)
		}
		if tb.Len() != len(groups) {
			t.Fatalf("view %v: %d rows, want %d", v, tb.Len(), len(groups))
		}
		if tb.TotalMeasure() != raw.TotalMeasure() {
			t.Fatalf("view %v measure mass wrong", v)
		}
		if !tb.IsSorted() {
			t.Fatalf("view %v not sorted", v)
		}
	}
}

func TestWorkPartitionMatchesSharedNothingOutput(t *testing.T) {
	g := gen.New(spec())
	raw := g.All()
	_, wm := BuildCube(raw, Config{D: 4, P: 4})

	m := cluster.New(4, costmodel.Default())
	for r := 0; r < 4; r++ {
		m.Proc(r).Disk().Put("raw", g.Slice(r, 4))
	}
	sn, err := core.BuildCube(m, "raw", core.Config{D: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wm.OutputRows != sn.OutputRows {
		t.Fatalf("output rows differ: workpart %d, shared-nothing %d", wm.OutputRows, sn.OutputRows)
	}
}

func TestWorkPartitionMinAggregation(t *testing.T) {
	raw := gen.New(spec()).All()
	out, _ := BuildCube(raw, Config{D: 4, P: 3, Agg: record.OpMin})
	tb := out.MustGet("cube.all")
	var want int64
	for i := 0; i < raw.Len(); i++ {
		if i == 0 || raw.Meas(i) < want {
			want = raw.Meas(i)
		}
	}
	if tb.Len() != 1 || tb.Meas(0) != want {
		t.Fatalf("min grand total = %v, want %d", tb, want)
	}
}

func TestWorkPartitionLosesAtScale(t *testing.T) {
	// The paper's motivation for data partitioning: work partitioning
	// recomputes every pipeline from an independent sort of the full
	// raw data and funnels all of it through the shared disk, so at a
	// realistic data size the shared-nothing algorithm wins outright at
	// p = 16, and work partitioning's own 4 -> 16 gain saturates well
	// below the 4x processor increase.
	spec := gen.Spec{N: 60_000, D: 8, Cards: gen.PaperCards(), Seed: 3}
	raw := gen.New(spec).All()
	_, sq := seq.BuildCube(raw, seq.Config{D: 8})

	speedupAt := func(p int) (work, shared float64) {
		_, wm := BuildCube(raw, Config{D: 8, P: p})
		g := gen.New(spec)
		m := cluster.New(p, costmodel.Default())
		for r := 0; r < p; r++ {
			m.Proc(r).Disk().Put("raw", g.Slice(r, p))
		}
		sn, err := core.BuildCube(m, "raw", core.Config{D: 8})
		if err != nil {
			t.Fatal(err)
		}
		return sq.SimSeconds / wm.SimSeconds, sq.SimSeconds / sn.SimSeconds
	}
	w4, s4 := speedupAt(4)
	w16, s16 := speedupAt(16)
	t.Logf("speedups: workpart p4=%.2f p16=%.2f | shared-nothing p4=%.2f p16=%.2f", w4, w16, s4, s16)
	if s16 <= w16 {
		t.Fatalf("shared-nothing (%.2fx) should beat work partitioning (%.2fx) at p=16", s16, w16)
	}
	if gain := w16 / w4; gain > 3.0 {
		t.Fatalf("work partitioning gained %.2fx from 4x processors; expected saturation", gain)
	}
	_ = s4
}

func TestAssignmentBalance(t *testing.T) {
	raw := gen.New(gen.Spec{N: 10_000, D: 6, Cards: []int{32, 16, 8, 8, 6, 4}, Seed: 5}).All()
	_, met := BuildCube(raw, Config{D: 6, P: 4})
	// LPT over 32 pipelines of a d=6 lattice balances well, though not
	// perfectly (the paper's "load balancing challenge").
	if met.Imbalance > 0.5 {
		t.Fatalf("assignment imbalance %.2f too high", met.Imbalance)
	}
	if len(met.WorkerSecs) != 4 {
		t.Fatalf("worker times missing: %v", met.WorkerSecs)
	}
}

func TestConfigValidation(t *testing.T) {
	raw := gen.New(spec()).All()
	for _, f := range []func(){
		func() { BuildCube(raw, Config{D: 3, P: 2}) },
		func() { BuildCube(raw, Config{D: 4, P: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
