// Package workpart implements the competing approach the paper's
// introduction describes: *work partitioning* on a shared-disk
// machine. The lattice's views are partitioned into groups, each group
// is assigned to one processor, and every processor computes its
// groups from the full raw data set — which therefore must be readable
// by all processors simultaneously, "usually provided through the use
// of a shared disk system". No merge phase is needed (each view is
// computed entirely by one processor), but the shared disk serializes
// the raw-data scans and per-view loads balance poorly; the paper
// cites load balancing and scalability as this family's main
// challenges, and this implementation exists to reproduce that
// comparison against the shared-nothing algorithm.
//
// Concretely (following the structure of Dehne et al. [3]): a Pipesort
// schedule tree is planned over the full lattice; its pipelines
// (maximal scan chains) become the work units; units are assigned to
// processors with LPT greedy balancing on estimated cost; each
// processor materializes its pipelines by sorting the raw data into
// the pipeline head's order on local scratch and aggregating down the
// chain. Raw-data reads and view writes go through the shared disk,
// whose bandwidth is divided among the processors.
package workpart

import (
	"fmt"
	"sort"

	"repro/internal/balance"
	"repro/internal/costmodel"
	"repro/internal/estimate"
	"repro/internal/extsort"
	"repro/internal/lattice"
	"repro/internal/pipesort"
	"repro/internal/record"
	"repro/internal/simdisk"
)

// Config parameterizes a work-partitioned build.
type Config struct {
	D int
	P int // number of processors sharing the disk
	// Params is the machine cost model (defaults to costmodel.Default).
	Params *costmodel.Params
	// Agg is the aggregate operator (default record.OpSum).
	Agg record.AggOp
}

// Metrics reports a work-partitioned build.
type Metrics struct {
	SimSeconds  float64   // makespan: the slowest processor
	WorkerSecs  []float64 // per-processor time
	Pipelines   int       // work units
	OutputRows  int64
	OutputBytes int64
	// Imbalance is the relative imbalance of the per-worker times, the
	// load-balancing quality of the assignment.
	Imbalance float64
}

// pipeline is one work unit: a maximal scan chain of the schedule
// tree, created by one sort of the raw data.
type pipeline struct {
	chain []*lattice.Node
	cost  float64
}

// BuildCube materializes the full cube of raw with work partitioning
// over p processors sharing one disk, returning the shared output disk
// (one file per view, named cube.<view>) and metrics.
func BuildCube(raw *record.Table, cfg Config) (*simdisk.Disk, Metrics) {
	if cfg.D < 1 || raw.D != cfg.D {
		panic(fmt.Sprintf("workpart: table has %d columns, config says %d", raw.D, cfg.D))
	}
	if cfg.P < 1 {
		panic(fmt.Sprintf("workpart: bad processor count %d", cfg.P))
	}
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}

	// Plan once (on processor 0's clock).
	clocks := make([]*costmodel.Clock, cfg.P)
	for i := range clocks {
		clocks[i] = costmodel.NewClock(params)
	}
	clocks[0].AddCompute(costmodel.ScanOps(raw.Len()) * float64(cfg.D))
	cards := estimate.MeasureCardinalities(raw, lattice.Canonical(lattice.Full(cfg.D)))
	sizer := estimate.NewCardenas(int64(raw.Len()), cards)
	tree := pipesort.Plan(cfg.D, lattice.Full(cfg.D), nil, lattice.AllViews(cfg.D), sizer)

	// Decompose into pipelines: the root chain plus one chain per sort
	// edge. Every pipeline re-sorts the raw data into its head order.
	var units []pipeline
	var collect func(head *lattice.Node)
	collect = func(head *lattice.Node) {
		chain := lattice.ScanChain(head)
		cost := costmodel.SortOps(raw.Len())
		for _, n := range chain {
			cost += costmodel.ScanOps(int(n.EstRows))
		}
		units = append(units, pipeline{chain: chain, cost: cost})
		for _, m := range chain {
			for _, w := range m.Children {
				if w.Edge == lattice.EdgeSort {
					collect(w)
				}
			}
		}
	}
	collect(tree.Root)

	// LPT assignment: largest unit first onto the least-loaded worker.
	sort.Slice(units, func(i, j int) bool { return units[i].cost > units[j].cost })
	loads := make([]float64, cfg.P)
	assigned := make([][]pipeline, cfg.P)
	for _, u := range units {
		best := 0
		for w := 1; w < cfg.P; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		loads[best] += u.cost
		assigned[best] = append(assigned[best], u)
	}

	// Shared output disk; charged on a dedicated clock that we do not
	// use for timing (each worker separately pays contention below).
	out := simdisk.New(costmodel.NewClock(params))

	rawBytes := raw.Bytes()
	for w := 0; w < cfg.P; w++ {
		clk := clocks[w]
		scratch := simdisk.New(clk) // local scratch disk, uncontended
		for ui, u := range assigned[w] {
			// Read the raw data from the shared disk: bandwidth divided
			// by the processors streaming concurrently.
			clk.AddDisk(rawBytes * cfg.P)
			head := u.chain[0]
			cols := []int(head.Order)
			clk.AddCompute(costmodel.ScanOps(raw.Len()))
			proj := raw.Project(cols)
			name := fmt.Sprintf("scratch.%d", ui)
			scratch.Put(name, proj)
			extsort.Sort(scratch, name)
			data := scratch.MustTake(name)
			// Aggregate down the chain; each level from the previous.
			for _, n := range u.chain {
				k := len(n.Order)
				clk.AddCompute(costmodel.ScanOps(data.Len()))
				data = record.AggregateSortedOp(data, k, cfg.Agg)
				// Write the view to the shared disk, with contention.
				clk.AddDisk(data.Bytes() * cfg.P)
				out.Put("cube."+n.View.String(), data.Clone())
			}
		}
	}

	met := Metrics{Pipelines: len(units), WorkerSecs: make([]float64, cfg.P)}
	intLoads := make([]int, cfg.P)
	for w, clk := range clocks {
		met.WorkerSecs[w] = clk.Seconds()
		intLoads[w] = int(clk.Seconds() * 1000)
		if clk.Seconds() > met.SimSeconds {
			met.SimSeconds = clk.Seconds()
		}
	}
	met.Imbalance = balance.Imbalance(intLoads)
	for _, v := range lattice.AllViews(cfg.D) {
		if n := out.Len("cube." + v.String()); n > 0 {
			met.OutputRows += int64(n)
			met.OutputBytes += int64(n * record.RowBytes(v.Count()))
		}
	}
	return out, met
}
