package sketch

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// blob returns the canonical serialized form of a sketch.
func blob(m Mergeable) []byte { return m.AppendBinary(nil) }

func TestDistinctExactBelowThreshold(t *testing.T) {
	d := NewDistinct(64, 256)
	for i := 0; i < 200; i++ {
		d.Insert(int64(i % 50)) // 50 distinct, many duplicates
	}
	if !d.Exact() {
		t.Fatal("sketch left exact mode below threshold")
	}
	if got := d.Estimate(0); got != 50 {
		t.Fatalf("exact estimate = %v, want 50", got)
	}
}

func TestDistinctConvertsAboveThreshold(t *testing.T) {
	d := NewDistinct(64, 1024)
	n := 5000
	for i := 0; i < n; i++ {
		d.Insert(int64(i))
	}
	if d.Exact() {
		t.Fatal("sketch stayed exact above threshold")
	}
	est := d.Estimate(0)
	if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.15 {
		t.Fatalf("FM estimate %v for %d distinct (rel err %.3f)", est, n, rel)
	}
}

// TestDistinctOrderInsensitive is the determinism keystone: the same
// multiset absorbed in any insertion order, through any merge tree,
// must seal to bit-identical blobs.
func TestDistinctOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 900)
	for i := range vals {
		vals[i] = int64(rng.Intn(400)) // straddles a threshold of 64 after split
	}

	build := func(order []int64, parts int) []byte {
		chunks := make([]*Distinct, parts)
		for i := range chunks {
			chunks[i] = NewDistinct(64, 256)
		}
		for i, v := range order {
			chunks[i%parts].Insert(v)
		}
		root := chunks[0]
		for _, c := range chunks[1:] {
			root.Merge(c)
		}
		return blob(root)
	}

	want := build(vals, 1)
	shuffled := append([]int64(nil), vals...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, parts := range []int{1, 2, 7} {
		if got := build(shuffled, parts); !bytes.Equal(got, want) {
			t.Fatalf("blob differs for %d-way merge of shuffled input", parts)
		}
	}

	// Exact-mode invariance too (small distinct set).
	small := make([]int64, 300)
	for i := range small {
		small[i] = int64(rng.Intn(40))
	}
	want = build(small, 1)
	rng.Shuffle(len(small), func(i, j int) { small[i], small[j] = small[j], small[i] })
	if got := build(small, 5); !bytes.Equal(got, want) {
		t.Fatal("exact-mode blob differs under shuffle+merge")
	}
}

func TestDistinctRoundTrip(t *testing.T) {
	for _, n := range []int{10, 500} {
		d := NewDistinct(64, 256)
		for i := 0; i < n; i++ {
			d.Insert(int64(i * 3))
		}
		b := blob(d)
		back, err := distinctFromBinary(b, 64, 256)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(blob(back), b) {
			t.Fatalf("n=%d: round-trip blob differs", n)
		}
		if back.Estimate(0) != d.Estimate(0) {
			t.Fatalf("n=%d: round-trip estimate differs", n)
		}
	}
}

func TestQCodeMonotoneContinuous(t *testing.T) {
	prev := qCode(0)
	for v := int64(1); v < 1<<14; v++ {
		c := qCode(v)
		if c < prev {
			t.Fatalf("qCode not monotone at %d", v)
		}
		if c > prev+1 {
			t.Fatalf("qCode skips a code at %d (%d -> %d)", v, prev, c)
		}
		prev = c
	}
	// Range inversion: every value lies in its code's range.
	for _, v := range []int64{0, 1, 127, 128, 255, 256, 1000, 1 << 20, 1<<62 + 12345} {
		lo, hi := qBaseRange(qCode(v))
		if uint64(v) < lo || uint64(v) > hi {
			t.Fatalf("value %d outside its bucket range [%d, %d]", v, lo, hi)
		}
	}
	if c := qCode(1<<63 - 1); c > qMaxCode {
		t.Fatalf("max value code %d exceeds qMaxCode %d", c, qMaxCode)
	}
}

func TestQuantileAccuracy(t *testing.T) {
	d := NewQuantile(4096)
	n := 50000
	for i := 0; i < n; i++ {
		d.Insert(int64(i))
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		got := d.Estimate(q)
		want := q * float64(n-1)
		tol := 0.01*want + 2 // log-bucket half-width ~0.4%, compaction may widen
		if math.Abs(got-want) > tol {
			t.Fatalf("q=%v: estimate %v, want %v ± %v (shift %d)", q, got, want, tol, d.Shift())
		}
	}
}

func TestQuantileCompactionBound(t *testing.T) {
	d := NewQuantile(32)
	for i := 0; i < 100000; i++ {
		d.Insert(int64(i * 7))
	}
	if len(d.codes) > 32 {
		t.Fatalf("histogram has %d buckets, bound 32", len(d.codes))
	}
	if d.Shift() == 0 {
		t.Fatal("expected compaction to raise the shift")
	}
	if d.Total() != 100000 {
		t.Fatalf("total = %d", d.Total())
	}
	// Even heavily compacted, the median should be in the right region.
	got := d.Estimate(0.5)
	want := 0.5 * 7 * 99999
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("compacted median %v far from %v", got, want)
	}
}

func TestQuantileOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1 << 20))
	}

	build := func(order []int64, parts, maxBuckets int) []byte {
		chunks := make([]*Quantile, parts)
		for i := range chunks {
			chunks[i] = NewQuantile(maxBuckets)
		}
		for i, v := range order {
			chunks[i%parts].Insert(v)
		}
		root := chunks[0]
		for _, c := range chunks[1:] {
			root.Merge(c)
		}
		return blob(root)
	}

	for _, maxBuckets := range []int{64, 4096} { // with and without compaction pressure
		want := build(vals, 1, maxBuckets)
		shuffled := append([]int64(nil), vals...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, parts := range []int{2, 5, 16} {
			if got := build(shuffled, parts, maxBuckets); !bytes.Equal(got, want) {
				t.Fatalf("maxBuckets=%d parts=%d: blob differs", maxBuckets, parts)
			}
		}
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	d := NewQuantile(128)
	for i := 0; i < 10000; i++ {
		d.Insert(int64(i * i))
	}
	b := blob(d)
	back, err := quantileFromBinary(b, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob(back), b) {
		t.Fatal("round-trip blob differs")
	}
	if back.Estimate(0.9) != d.Estimate(0.9) {
		t.Fatal("round-trip estimate differs")
	}
}

func TestStoreCombineSealEstimate(t *testing.T) {
	s := NewStore(Config{Kind: KindDistinct, ExactThreshold: 8, FMBitmaps: 64})
	c := s.Rank(0)

	// Runs combine raw words into one accumulator.
	h := c.Combine(3, 4)
	if h >= 0 {
		t.Fatalf("Combine returned raw word %d", h)
	}
	if got := c.Combine(h, 5); got != h {
		t.Fatalf("open accumulator not reused: %d vs %d", got, h)
	}
	c.Combine(h, 3) // duplicate
	c.Seal(h)
	if got := s.Estimate(h, 0); got != 3 {
		t.Fatalf("estimate = %v, want 3 (values 3,4,5)", got)
	}
	// Sealed handles merge into fresh accumulators, not in place.
	h2 := c.Combine(h, 9)
	if h2 == h {
		t.Fatal("sealed accumulator mutated in place")
	}
	c.Seal(h2)
	if got := s.Estimate(h2, 0); got != 4 {
		t.Fatalf("merged estimate = %v, want 4", got)
	}
	if got := s.Estimate(h, 0); got != 3 {
		t.Fatalf("source sketch changed by merge: %v", got)
	}
	// Raw words are singletons.
	if got := s.Estimate(42, 0); got != 1 {
		t.Fatalf("raw distinct estimate = %v", got)
	}

	if st := s.Stats(); st.Entries != 2 || st.SealedBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if c.StateBytes(7) != 0 || c.StateBytes(h) == 0 {
		t.Fatal("StateBytes misreports raw/handle words")
	}
}

func TestStoreQuantileRawEstimate(t *testing.T) {
	s := NewStore(Config{Kind: KindQuantile})
	if got := s.Estimate(123, 0.5); got != 123 {
		t.Fatalf("raw quantile estimate = %v", got)
	}
	c := s.Rank(0)
	h := c.Combine(10, 20)
	c.Combine(h, 30)
	c.Seal(h)
	if got := s.EstimateMeasure(h, 0.5); got != 20 {
		t.Fatalf("median of {10,20,30} = %d", got)
	}
	if got := s.EstimateMeasure(h, 0); got != 10 {
		t.Fatalf("min of {10,20,30} = %d", got)
	}
}

func TestStoreScratchRelease(t *testing.T) {
	s := NewStore(Config{Kind: KindDistinct, ExactThreshold: 8, FMBitmaps: 64})
	rank := s.Rank(0)
	h := rank.Combine(1, 2)
	rank.Seal(h)

	sc := s.Scratch()
	sh := sc.Combine(h, 3)
	sc.Seal(sh)
	if got := s.Estimate(sh, 0); got != 3 {
		t.Fatalf("scratch estimate = %v", got)
	}
	s.ReleaseScratch(sc)
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries after release = %d", st.Entries)
	}
	// Rank sketch unaffected.
	if got := s.Estimate(h, 0); got != 2 {
		t.Fatalf("rank sketch after release = %v", got)
	}
	// Scratch ids are never reused.
	sc2 := s.Scratch()
	if sc2.shard == sc.shard {
		t.Fatal("scratch shard id reused")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("dangling scratch handle did not panic")
			}
		}()
		s.Estimate(sh, 0)
	}()
}

// TestStoreMemoryBounded is the spill-and-merge acceptance: with an
// arena far smaller than the total sketch state, the build still
// completes and serves correct estimates, and the decoded high-water
// mark stays near the budget instead of near the total.
func TestStoreMemoryBounded(t *testing.T) {
	const arena = 4 << 10
	s := NewStore(Config{Kind: KindQuantile, MaxBuckets: 256, ArenaBudget: arena})
	c := s.Rank(0)

	rng := rand.New(rand.NewSource(3))
	const groups = 200
	handles := make([]int64, groups)
	for g := 0; g < groups; g++ {
		h := c.Combine(int64(rng.Intn(1<<16)), int64(rng.Intn(1<<16)))
		for i := 0; i < 300; i++ {
			h = c.Combine(h, int64(rng.Intn(1<<16)))
		}
		handles[g] = c.Seal(h)
	}
	// Second pass merges sealed state (forces spilled blobs to decode).
	for g := 0; g < groups; g += 2 {
		h := c.Combine(handles[g], handles[g+1])
		c.Seal(h)
	}

	st := s.Stats()
	if st.SealedBytes <= arena {
		t.Fatalf("test too small: sealed %d <= arena %d", st.SealedBytes, arena)
	}
	if st.PeakResident >= st.SealedBytes {
		t.Fatalf("peak resident %d not bounded below sealed total %d", st.PeakResident, st.SealedBytes)
	}
	// Budget bounds the sealed-decode cache; one open accumulator rides
	// on top, so allow that much headroom.
	maxOne := 5 + 10*256
	if st.PeakResident > arena+4*maxOne {
		t.Fatalf("peak resident %d far above arena %d", st.PeakResident, arena)
	}
	if st.Decodes == 0 {
		t.Fatal("expected spill-and-decode churn with a small arena")
	}
	// Spilled state still serves.
	for _, h := range handles {
		if est := s.Estimate(h, 0.5); est <= 0 {
			t.Fatalf("estimate %v for handle %d", est, h)
		}
	}
}

func TestStoreExportImport(t *testing.T) {
	s := NewStore(Config{Kind: KindDistinct, ExactThreshold: 16, FMBitmaps: 64})
	c := s.Rank(2)
	h1 := c.Seal(c.Combine(1, 2))
	h2 := c.Seal(c.Combine(h1, 50))
	handles := []int64{h1, h2}
	blobs := s.Export(handles)

	s2 := NewStore(Config{Kind: KindDistinct, ExactThreshold: 16, FMBitmaps: 64})
	if err := s2.Import(handles, blobs); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if s2.Estimate(h, 0) != s.Estimate(h, 0) {
			t.Fatalf("handle %d estimate differs after import", i)
		}
	}
	// Imported stores keep minting from where the rank left off without
	// colliding with imported slots.
	c2 := s2.Rank(2)
	h3 := c2.Seal(c2.Combine(h1, h2))
	if h3 == h1 || h3 == h2 {
		t.Fatal("import collided with fresh allocation")
	}
	if got := s2.Estimate(h3, 0); got != 3 {
		t.Fatalf("post-import combine estimate = %v", got)
	}

	// Conflicting re-import must fail; identical re-import is a no-op.
	if err := s2.Import(handles, blobs); err != nil {
		t.Fatalf("idempotent import failed: %v", err)
	}
	if err := s2.Import([]int64{h1}, [][]byte{blobs[1]}); err == nil {
		t.Fatal("conflicting import did not fail")
	}
	// Corrupt blob rejected.
	if err := s2.Import([]int64{encodeHandle(9, 0)}, [][]byte{{99}}); err == nil {
		t.Fatal("corrupt blob import did not fail")
	}
}

// TestCombinerAllocationDeterminism pins the handle-word guarantee:
// the same run structure processed twice mints the same handles.
func TestCombinerAllocationDeterminism(t *testing.T) {
	mint := func() []int64 {
		s := NewStore(Config{Kind: KindQuantile, MaxBuckets: 64})
		var out []int64
		for r := 0; r < 3; r++ {
			c := s.Rank(r)
			for g := 0; g < 4; g++ {
				h := c.Combine(int64(g), int64(g+1))
				h = c.Combine(h, int64(g+2))
				out = append(out, c.Seal(h))
			}
		}
		return out
	}
	a, b := mint(), mint()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("handle %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestOpenCrossShardPanics(t *testing.T) {
	s := NewStore(Config{Kind: KindDistinct, ExactThreshold: 8, FMBitmaps: 64})
	h := s.Rank(0).Combine(1, 2) // open in shard 0
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard open combine did not panic")
		}
	}()
	s.Rank(1).Combine(h, 3)
}
