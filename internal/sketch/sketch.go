// Package sketch is the mergeable-measure subsystem backing the
// holistic aggregate operators (distinct-count, quantile). A holistic
// measure cannot be combined through a bare int64 the way sum/min/max
// can: its per-group state is a sketch — a small summary of the
// multiset of raw measure values absorbed by the group — that supports
// lossless merging. Sketches live in a Store; tables carry either raw
// measure values (>= 0, implicit singletons) or negative handles into
// the store, so the record-layer kernels move holistic state with the
// same 8-byte measure word they already move.
//
// Both sketch kinds are order-insensitive monoids: the state is a pure
// function of the absorbed multiset, independent of insertion order
// and merge tree shape. That property is what makes the distributed
// build deterministic — the kernels-on and kernels-off execution paths
// visit runs in different orders, yet seal bit-identical blobs.
package sketch

// Kind selects which holistic measure a store's sketches track. A
// store holds sketches of exactly one kind; the aggregate operator of
// the cube determines it.
type Kind int

const (
	// KindDistinct counts distinct raw measure values per group.
	KindDistinct Kind = iota
	// KindQuantile tracks the distribution of raw measure values per
	// group so arbitrary percentiles can be served.
	KindQuantile
)

func (k Kind) String() string {
	switch k {
	case KindDistinct:
		return "distinct"
	case KindQuantile:
		return "quantile"
	}
	return "unknown"
}

// Defaults for Config fields left zero.
const (
	// DefaultFMBitmaps is the PCSA bitmap count for distinct sketches
	// past the exact threshold (standard error ~ 0.78/sqrt(m) ≈ 2.4%).
	DefaultFMBitmaps = 1024
	// DefaultExactThreshold is the distinct-value count below which a
	// distinct sketch stores the exact value set (zero error). PCSA is
	// biased until roughly 4·m items, so the exact range is sized to
	// hand over where the (bias-corrected) FM estimate is already
	// trustworthy.
	DefaultExactThreshold = 4096
	// DefaultMaxBuckets bounds a quantile sketch's histogram; beyond
	// it the log-bucket resolution halves (KLL-style compaction).
	DefaultMaxBuckets = 4096
	// DefaultArenaBudget bounds the decoded-sketch arena of a store
	// (bytes); sealed sketches past it are spilled to their serialized
	// blobs and re-decoded on demand.
	DefaultArenaBudget = 1 << 20
)

// Config sizes a Store's sketches and its decoded-state arena.
type Config struct {
	// Kind selects distinct-count or quantile sketches.
	Kind Kind
	// FMBitmaps is the PCSA bitmap count (power of two) used by
	// distinct sketches once past ExactThreshold.
	FMBitmaps int
	// ExactThreshold is the distinct-value count up to which distinct
	// sketches stay exact.
	ExactThreshold int
	// MaxBuckets bounds quantile histogram size before compaction.
	MaxBuckets int
	// ArenaBudget bounds decoded sealed-sketch bytes kept resident;
	// open accumulators are charged against it but never evicted, so
	// the budget throttles cache, not correctness.
	ArenaBudget int
}

// WithDefaults fills zero fields with package defaults.
func (c Config) WithDefaults() Config {
	if c.FMBitmaps == 0 {
		c.FMBitmaps = DefaultFMBitmaps
	}
	if c.ExactThreshold == 0 {
		c.ExactThreshold = DefaultExactThreshold
	}
	if c.MaxBuckets == 0 {
		c.MaxBuckets = DefaultMaxBuckets
	}
	if c.ArenaBudget == 0 {
		c.ArenaBudget = DefaultArenaBudget
	}
	return c
}

// Mergeable is one group's sketch state. Implementations must be
// order-insensitive monoids: any sequence of Insert and Merge calls
// absorbing the same multiset must yield the same serialized form.
type Mergeable interface {
	// Insert absorbs one raw measure value (>= 0).
	Insert(v int64)
	// Merge absorbs another sketch of the same kind and parameters.
	// The argument is read-only.
	Merge(o Mergeable)
	// Estimate serves the measure: the distinct-count estimate (q is
	// ignored) or the value at quantile q in [0, 1].
	Estimate(q float64) float64
	// Bytes is the serialized size, maintained in O(1).
	Bytes() int
	// AppendBinary appends the canonical serialized form to dst.
	AppendBinary(dst []byte) []byte
	// Clone returns an independent deep copy.
	Clone() Mergeable
}
