package sketch

import (
	"fmt"
	"sort"

	"repro/internal/estimate"
)

// Distinct is a hybrid distinct-count sketch: up to threshold distinct
// values it stores the exact sorted value set (zero error); past it,
// the set is folded into a Flajolet–Martin PCSA sketch (the same
// machinery the size estimator uses). The final form is a pure
// function of the absorbed multiset — exact iff the multiset has at
// most threshold distinct values — because the distinct count of a
// union is monotone: no insertion or merge order can keep a too-large
// set exact or demote a small one to FM.
type Distinct struct {
	threshold int
	m         int // FM bitmap count
	exact     []uint64
	fm        *estimate.FMSketch
}

// Wire tags for the two serialized forms.
const (
	distinctTagExact = 0
	distinctTagFM    = 1
)

// NewDistinct returns an empty sketch with the given exact threshold
// and FM bitmap count.
func NewDistinct(threshold, fmBitmaps int) *Distinct {
	if threshold < 1 {
		panic("sketch: distinct exact threshold must be positive")
	}
	return &Distinct{threshold: threshold, m: fmBitmaps}
}

// Insert implements Mergeable.
func (d *Distinct) Insert(v int64) {
	if d.fm != nil {
		d.fm.Add(estimate.Hash64(uint64(v)))
		return
	}
	u := uint64(v)
	i := sort.Search(len(d.exact), func(i int) bool { return d.exact[i] >= u })
	if i < len(d.exact) && d.exact[i] == u {
		return
	}
	d.exact = append(d.exact, 0)
	copy(d.exact[i+1:], d.exact[i:])
	d.exact[i] = u
	if len(d.exact) > d.threshold {
		d.convert()
	}
}

// convert folds the exact set into an FM sketch.
func (d *Distinct) convert() {
	d.fm = estimate.NewFMSketch(d.m)
	for _, u := range d.exact {
		d.fm.Add(estimate.Hash64(u))
	}
	d.exact = nil
}

// Merge implements Mergeable; o must be a *Distinct with identical
// parameters and is not modified.
func (d *Distinct) Merge(o Mergeable) {
	od, ok := o.(*Distinct)
	if !ok {
		panic(fmt.Sprintf("sketch: merging %T into Distinct", o))
	}
	if od.threshold != d.threshold || od.m != d.m {
		panic("sketch: merging Distinct sketches with different parameters")
	}
	switch {
	case d.fm == nil && od.fm == nil:
		// Union of two sorted sets; may overflow into FM.
		merged := make([]uint64, 0, len(d.exact)+len(od.exact))
		i, j := 0, 0
		for i < len(d.exact) && j < len(od.exact) {
			a, b := d.exact[i], od.exact[j]
			switch {
			case a < b:
				merged = append(merged, a)
				i++
			case b < a:
				merged = append(merged, b)
				j++
			default:
				merged = append(merged, a)
				i++
				j++
			}
		}
		merged = append(merged, d.exact[i:]...)
		merged = append(merged, od.exact[j:]...)
		d.exact = merged
		if len(d.exact) > d.threshold {
			d.convert()
		}
	case d.fm != nil && od.fm != nil:
		d.fm.Merge(od.fm)
	case d.fm != nil: // other exact
		for _, u := range od.exact {
			d.fm.Add(estimate.Hash64(u))
		}
	default: // self exact, other FM
		d.convert()
		d.fm.Merge(od.fm)
	}
}

// Estimate implements Mergeable; q is ignored for distinct counting.
func (d *Distinct) Estimate(float64) float64 {
	if d.fm == nil {
		return float64(len(d.exact))
	}
	return d.fm.Estimate()
}

// Exact reports whether the sketch still holds the exact value set.
func (d *Distinct) Exact() bool { return d.fm == nil }

// Bytes implements Mergeable.
func (d *Distinct) Bytes() int {
	if d.fm == nil {
		return 5 + 8*len(d.exact)
	}
	return 1 + d.fm.Bytes()
}

// AppendBinary implements Mergeable: a tag byte, then either the
// sorted value set (4-byte LE count + 8-byte LE values) or the FM
// bitmaps. Both forms are canonical for the absorbed multiset.
func (d *Distinct) AppendBinary(dst []byte) []byte {
	if d.fm == nil {
		n := len(d.exact)
		dst = append(dst, distinctTagExact, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		for _, u := range d.exact {
			dst = append(dst,
				byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		return dst
	}
	return d.fm.AppendBinary(append(dst, distinctTagFM))
}

// Clone implements Mergeable.
func (d *Distinct) Clone() Mergeable {
	c := &Distinct{threshold: d.threshold, m: d.m}
	if d.fm != nil {
		c.fm = d.fm.Clone()
	} else {
		c.exact = append([]uint64(nil), d.exact...)
	}
	return c
}

// distinctFromBinary reconstructs a Distinct from AppendBinary output.
func distinctFromBinary(data []byte, threshold, fmBitmaps int) (*Distinct, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("sketch: empty distinct blob")
	}
	d := &Distinct{threshold: threshold, m: fmBitmaps}
	switch data[0] {
	case distinctTagExact:
		body := data[1:]
		if len(body) < 4 {
			return nil, fmt.Errorf("sketch: truncated distinct blob")
		}
		n := int(uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16 | uint32(body[3])<<24)
		body = body[4:]
		if n > threshold || len(body) != 8*n {
			return nil, fmt.Errorf("sketch: distinct blob claims %d values with %d payload bytes", n, len(body))
		}
		d.exact = make([]uint64, n)
		for i := range d.exact {
			b := body[i*8:]
			d.exact[i] = uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		}
		for i := 1; i < n; i++ {
			if d.exact[i-1] >= d.exact[i] {
				return nil, fmt.Errorf("sketch: distinct blob value set is not strictly sorted")
			}
		}
	case distinctTagFM:
		fm, err := estimate.FMFromBinary(data[1:])
		if err != nil {
			return nil, err
		}
		if fm.Bytes() != fmBitmaps*8 {
			return nil, fmt.Errorf("sketch: distinct blob FM size %d bytes, store expects %d", fm.Bytes(), fmBitmaps*8)
		}
		d.fm = fm
	default:
		return nil, fmt.Errorf("sketch: unknown distinct blob tag %d", data[0])
	}
	return d, nil
}
