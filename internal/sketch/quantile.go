package sketch

import (
	"fmt"
	"math/bits"
	"sort"
)

// qMantBits is the mantissa width of the log-quantized bucket code:
// values below 2^(qMantBits+1)-ish are exact, larger values are
// bucketed with 2^-qMantBits relative granularity (~0.4% half-width).
const qMantBits = 7

// qMaxCode is the largest base bucket code (e=63, full mantissa).
const qMaxCode = (63-(qMantBits-1))<<qMantBits + (1<<qMantBits - 1)

// qCode maps a raw value to its base bucket code: identity below 128,
// then floating-point-style (exponent, 7-bit mantissa). The mapping is
// monotone and continuous (qCode(127)=127, qCode(128)=128), so sorted
// codes preserve value order.
func qCode(v int64) uint16 {
	u := uint64(v)
	if u < 1<<qMantBits {
		return uint16(u)
	}
	e := bits.Len64(u) - 1
	m := (u >> (uint(e) - qMantBits)) & (1<<qMantBits - 1)
	return uint16((e-(qMantBits-1))<<qMantBits) + uint16(m)
}

// qBaseRange returns the half-open value range [lo, hi] a base code
// covers (inverse of qCode).
func qBaseRange(c uint16) (lo, hi uint64) {
	if c < 1<<qMantBits {
		return uint64(c), uint64(c)
	}
	e := uint(c>>qMantBits) + qMantBits - 1
	m := uint64(c & (1<<qMantBits - 1))
	lo = (1<<qMantBits + m) << (e - qMantBits)
	hi = lo + 1<<(e-qMantBits) - 1
	return lo, hi
}

// qRep returns the representative value (range midpoint) of ladder
// code c at the given resolution shift.
func qRep(c uint16, shift uint8) float64 {
	first := uint16(uint32(c) << shift)
	last := uint32(c)<<shift + (1<<shift - 1)
	if last > qMaxCode {
		last = qMaxCode
	}
	lo, _ := qBaseRange(first)
	_, hi := qBaseRange(uint16(last))
	return float64(lo) + float64(hi-lo)/2
}

// Quantile is a mergeable quantile sketch: a histogram over
// log-quantized buckets with a KLL-style compaction ladder. When the
// histogram exceeds maxBuckets, the resolution shift increments —
// adjacent bucket pairs merge — and repeats until it fits. The final
// (shift, histogram) is a pure function of the absorbed multiset: the
// shift settles at the smallest resolution whose distinct-bucket count
// fits, which no insertion or merge order can change (bucket counts
// are monotone under absorption). Value relative error is bounded by
// the bucket half-width, ~2^(shift-8) for large values and shift 0
// error ~0.4%.
type Quantile struct {
	maxBuckets int
	shift      uint8
	codes      []uint16
	counts     []int64
	total      int64
}

// NewQuantile returns an empty sketch bounded to maxBuckets histogram
// buckets.
func NewQuantile(maxBuckets int) *Quantile {
	if maxBuckets < 1 {
		panic("sketch: quantile bucket bound must be positive")
	}
	return &Quantile{maxBuckets: maxBuckets}
}

// Insert implements Mergeable.
func (d *Quantile) Insert(v int64) {
	c := qCode(v) >> d.shift
	i := sort.Search(len(d.codes), func(i int) bool { return d.codes[i] >= c })
	if i < len(d.codes) && d.codes[i] == c {
		d.counts[i]++
	} else {
		d.codes = append(d.codes, 0)
		copy(d.codes[i+1:], d.codes[i:])
		d.codes[i] = c
		d.counts = append(d.counts, 0)
		copy(d.counts[i+1:], d.counts[i:])
		d.counts[i] = 1
	}
	d.total++
	for len(d.codes) > d.maxBuckets {
		d.compactOnce()
	}
}

// compactOnce halves the resolution: shift++, adjacent bucket pairs
// sharing a parent code merge.
func (d *Quantile) compactOnce() {
	d.shift++
	w := 0
	for i := 0; i < len(d.codes); i++ {
		c := d.codes[i] >> 1
		if w > 0 && d.codes[w-1] == c {
			d.counts[w-1] += d.counts[i]
			continue
		}
		d.codes[w] = c
		d.counts[w] = d.counts[i]
		w++
	}
	d.codes = d.codes[:w]
	d.counts = d.counts[:w]
}

// Merge implements Mergeable; o must be a *Quantile with the same
// bucket bound and is not modified.
func (d *Quantile) Merge(o Mergeable) {
	od, ok := o.(*Quantile)
	if !ok {
		panic(fmt.Sprintf("sketch: merging %T into Quantile", o))
	}
	if od.maxBuckets != d.maxBuckets {
		panic("sketch: merging Quantile sketches with different bucket bounds")
	}
	for d.shift < od.shift {
		d.compactOnce()
	}
	down := d.shift - od.shift
	// Merge the other histogram, folded to our resolution, in one
	// sorted pass.
	codes := make([]uint16, 0, len(d.codes)+len(od.codes))
	counts := make([]int64, 0, len(d.codes)+len(od.codes))
	i, j := 0, 0
	push := func(c uint16, n int64) {
		if k := len(codes); k > 0 && codes[k-1] == c {
			counts[k-1] += n
			return
		}
		codes = append(codes, c)
		counts = append(counts, n)
	}
	for i < len(d.codes) || j < len(od.codes) {
		var oc uint16
		if j < len(od.codes) {
			oc = od.codes[j] >> down
		}
		switch {
		case j >= len(od.codes) || (i < len(d.codes) && d.codes[i] <= oc):
			push(d.codes[i], d.counts[i])
			i++
		default:
			push(oc, od.counts[j])
			j++
		}
	}
	d.codes, d.counts = codes, counts
	d.total += od.total
	for len(d.codes) > d.maxBuckets {
		d.compactOnce()
	}
}

// Estimate implements Mergeable: the representative value at quantile
// q in [0, 1] (clamped).
func (d *Quantile) Estimate(q float64) float64 {
	if d.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(q * float64(d.total-1))
	var cum int64
	for i, n := range d.counts {
		cum += n
		if cum > target {
			return qRep(d.codes[i], d.shift)
		}
	}
	return qRep(d.codes[len(d.codes)-1], d.shift)
}

// Shift exposes the current resolution shift (0 = full resolution).
func (d *Quantile) Shift() int { return int(d.shift) }

// Total returns the number of values absorbed.
func (d *Quantile) Total() int64 { return d.total }

// Bytes implements Mergeable.
func (d *Quantile) Bytes() int { return 5 + 10*len(d.codes) }

// AppendBinary implements Mergeable: shift byte, 4-byte LE bucket
// count, then per bucket a 2-byte LE code and 8-byte LE count. The
// histogram is sorted and the (shift, histogram) pair canonical, so
// the form is a pure function of the absorbed multiset.
func (d *Quantile) AppendBinary(dst []byte) []byte {
	n := len(d.codes)
	dst = append(dst, d.shift, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	for i, c := range d.codes {
		dst = append(dst, byte(c), byte(c>>8))
		u := uint64(d.counts[i])
		dst = append(dst,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}

// Clone implements Mergeable.
func (d *Quantile) Clone() Mergeable {
	return &Quantile{
		maxBuckets: d.maxBuckets,
		shift:      d.shift,
		codes:      append([]uint16(nil), d.codes...),
		counts:     append([]int64(nil), d.counts...),
		total:      d.total,
	}
}

// quantileFromBinary reconstructs a Quantile from AppendBinary output.
func quantileFromBinary(data []byte, maxBuckets int) (*Quantile, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("sketch: truncated quantile blob")
	}
	d := &Quantile{maxBuckets: maxBuckets, shift: data[0]}
	n := int(uint32(data[1]) | uint32(data[2])<<8 | uint32(data[3])<<16 | uint32(data[4])<<24)
	body := data[5:]
	if n > maxBuckets || len(body) != 10*n {
		return nil, fmt.Errorf("sketch: quantile blob claims %d buckets with %d payload bytes", n, len(body))
	}
	d.codes = make([]uint16, n)
	d.counts = make([]int64, n)
	for i := 0; i < n; i++ {
		b := body[i*10:]
		d.codes[i] = uint16(b[0]) | uint16(b[1])<<8
		d.counts[i] = int64(uint64(b[2]) | uint64(b[3])<<8 | uint64(b[4])<<16 | uint64(b[5])<<24 |
			uint64(b[6])<<32 | uint64(b[7])<<40 | uint64(b[8])<<48 | uint64(b[9])<<56)
		if d.counts[i] <= 0 {
			return nil, fmt.Errorf("sketch: quantile blob bucket %d has count %d", i, d.counts[i])
		}
		if i > 0 && d.codes[i-1] >= d.codes[i] {
			return nil, fmt.Errorf("sketch: quantile blob buckets are not strictly sorted")
		}
		d.total += d.counts[i]
	}
	return d, nil
}
