package sketch

import (
	"container/list"
	"fmt"
	"math"
	"sync"
)

// Measure-word handle layout. A holistic measure word is either a raw
// value (>= 0, an implicit singleton sketch) or a negative handle
// -((shard<<40)|idx)-1 naming a sketch in the store. Shards 0..p-1
// belong to the build/ingest ranks — each rank allocates sequentially
// into its own shard, so handle words are deterministic for a fixed
// rank count regardless of goroutine scheduling. Shard ids at or above
// scratchShardBase are query-scratch shards: allocated per query
// execution, released when its results are resolved, never reused.
const (
	handleIdxBits    = 40
	handleIdxMask    = int64(1)<<handleIdxBits - 1
	scratchShardBase = 1 << 20
)

// IsHandle reports whether measure word m names a stored sketch.
func IsHandle(m int64) bool { return m < 0 }

func encodeHandle(shard uint32, idx int) int64 {
	return -(int64(shard)<<handleIdxBits | int64(idx)) - 1
}

func decodeHandle(h int64) (shard uint32, idx int) {
	v := -h - 1
	return uint32(v >> handleIdxBits), int(v & handleIdxMask)
}

// entry is one sketch's slot: the sealed serialized blob, and/or the
// decoded state. Open entries (mid-combine accumulators) always hold
// decoded state and no blob; sealed entries always hold the blob and
// cache the decode in the store's bounded arena.
type entry struct {
	blob []byte
	dec  Mergeable
	res  int           // resident bytes charged for dec
	el   *list.Element // arena LRU position while sealed and decoded
	open bool
}

type shard struct {
	entries []*entry
}

// Stats is a point-in-time snapshot of a store's footprint.
type Stats struct {
	// Entries is the number of live sketches (open + sealed).
	Entries int
	// SealedBytes is the total serialized size of sealed sketches —
	// what the store costs on disk or over a snapshot wire.
	SealedBytes int
	// Resident is the decoded state currently held in memory.
	Resident int
	// PeakResident is the high-water mark of Resident — the memory the
	// build actually needed, which the arena budget bounds for sealed
	// decodes (open accumulators ride on top).
	PeakResident int
	// Decodes counts blob-to-state decodes (spill churn).
	Decodes int
}

// Store owns every sketch of one cube: per-group mergeable state
// addressed by handle words embedded in table measures. All methods
// are safe for concurrent use.
type Store struct {
	cfg Config

	mu          sync.Mutex
	shards      map[uint32]*shard
	nextScratch uint32
	lru         *list.List // *entry values: sealed, decoded, evictable
	resident    int
	peak        int
	sealed      int
	entries     int
	decodes     int
}

// NewStore returns an empty store for the given configuration (zero
// fields take package defaults).
func NewStore(cfg Config) *Store {
	return &Store{
		cfg:         cfg.WithDefaults(),
		shards:      make(map[uint32]*shard),
		nextScratch: scratchShardBase,
		lru:         list.New(),
	}
}

// Config returns the store's effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats returns a snapshot of the store's footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      s.entries,
		SealedBytes:  s.sealed,
		Resident:     s.resident,
		PeakResident: s.peak,
		Decodes:      s.decodes,
	}
}

// Rank returns the combiner for build/ingest rank r. Handles minted by
// rank combiners are permanent (until the store is discarded).
func (s *Store) Rank(r int) *Combiner {
	if r < 0 || r >= scratchShardBase {
		panic(fmt.Sprintf("sketch: rank %d out of range", r))
	}
	return &Combiner{s: s, shard: uint32(r)}
}

// Scratch returns a combiner over a fresh scratch shard for a
// query-time merge; release it with ReleaseScratch once every handle
// it minted has been resolved to an estimate.
func (s *Store) Scratch() *Combiner {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextScratch
	s.nextScratch++
	return &Combiner{s: s, shard: id}
}

// ReleaseScratch drops a scratch combiner's shard and every sketch in
// it. Handles minted by it are invalid afterwards.
func (s *Store) ReleaseScratch(c *Combiner) {
	if c == nil || c.s != s {
		return
	}
	if c.shard < scratchShardBase {
		panic("sketch: releasing a rank shard")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[c.shard]
	if sh == nil {
		return
	}
	for _, e := range sh.entries {
		if e == nil {
			continue
		}
		s.entries--
		s.sealed -= len(e.blob)
		if e.dec != nil {
			s.resident -= e.res
		}
		if e.el != nil {
			s.lru.Remove(e.el)
		}
	}
	delete(s.shards, c.shard)
}

// lookup resolves a handle to its entry; the caller holds s.mu.
func (s *Store) lookup(h int64) *entry {
	shardID, idx := decodeHandle(h)
	sh := s.shards[shardID]
	if sh == nil || idx >= len(sh.entries) || sh.entries[idx] == nil {
		panic(fmt.Sprintf("sketch: dangling handle %d (shard %d idx %d)", h, shardID, idx))
	}
	return sh.entries[idx]
}

// newSketch allocates an empty Mergeable per the store's kind.
func (s *Store) newSketch() Mergeable {
	switch s.cfg.Kind {
	case KindDistinct:
		return NewDistinct(s.cfg.ExactThreshold, s.cfg.FMBitmaps)
	case KindQuantile:
		return NewQuantile(s.cfg.MaxBuckets)
	}
	panic(fmt.Sprintf("sketch: unknown kind %d", int(s.cfg.Kind)))
}

// decodeBlob reconstructs sketch state from a sealed blob.
func (s *Store) decodeBlob(blob []byte) (Mergeable, error) {
	switch s.cfg.Kind {
	case KindDistinct:
		return distinctFromBinary(blob, s.cfg.ExactThreshold, s.cfg.FMBitmaps)
	case KindQuantile:
		return quantileFromBinary(blob, s.cfg.MaxBuckets)
	}
	panic(fmt.Sprintf("sketch: unknown kind %d", int(s.cfg.Kind)))
}

// resolved returns the decoded state of a sealed or open entry,
// decoding the blob into the arena if spilled. Caller holds s.mu.
func (s *Store) resolved(e *entry) Mergeable {
	if e.dec != nil {
		if e.el != nil {
			s.lru.MoveToFront(e.el)
		}
		return e.dec
	}
	dec, err := s.decodeBlob(e.blob)
	if err != nil {
		panic(fmt.Sprintf("sketch: corrupt sealed sketch: %v", err))
	}
	e.dec = dec
	e.res = dec.Bytes()
	s.decodes++
	s.charge(e.res)
	e.el = s.lru.PushFront(e)
	s.evict()
	return dec
}

// charge adds resident bytes and tracks the high-water mark; caller
// holds s.mu.
func (s *Store) charge(n int) {
	s.resident += n
	if s.resident > s.peak {
		s.peak = s.resident
	}
}

// evict spills sealed decoded entries past the arena budget, oldest
// first. Open accumulators are never in the LRU and never spilled.
func (s *Store) evict() {
	for s.resident > s.cfg.ArenaBudget {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		e.el = nil
		e.dec = nil
		s.resident -= e.res
		e.res = 0
	}
}

// absorb folds measure word m into open accumulator dec: raw words
// insert, handles merge. Caller holds s.mu.
func (s *Store) absorb(dec Mergeable, m int64) {
	if m >= 0 {
		dec.Insert(m)
		return
	}
	dec.Merge(s.resolved(s.lookup(m)))
}

// Estimate serves measure word m: raw distinct words are singletons
// (estimate 1), raw quantile words are their own value at any q, and
// handles are served from their sketch.
func (s *Store) Estimate(m int64, q float64) float64 {
	if m >= 0 {
		if s.cfg.Kind == KindDistinct {
			return 1
		}
		return float64(m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolved(s.lookup(m)).Estimate(q)
}

// EstimateMeasure is Estimate rounded back into a measure word, for
// query results that replace handles with served estimates.
func (s *Store) EstimateMeasure(m int64, q float64) int64 {
	return int64(math.Round(s.Estimate(m, q)))
}

// StateBytes reports the sketch payload bytes behind measure word m
// (0 for raw words): the honest extra volume the word costs on a wire
// or disk beyond the 8-byte measure itself.
func (s *Store) StateBytes(m int64) int {
	if m >= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.lookup(m)
	if e.open {
		return e.dec.Bytes()
	}
	return len(e.blob)
}

// Export returns the sealed blobs behind the given handles, for
// persistence. Panics on raw words, dangling handles, or open state —
// exporting unsealed state is a seal-on-emit violation.
func (s *Store) Export(handles []int64) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	blobs := make([][]byte, len(handles))
	for i, h := range handles {
		if h >= 0 {
			panic(fmt.Sprintf("sketch: exporting raw measure word %d", h))
		}
		e := s.lookup(h)
		if e.open {
			panic(fmt.Sprintf("sketch: exporting open sketch %d", h))
		}
		blobs[i] = e.blob
	}
	return blobs
}

// Import installs sealed blobs at the exact handle slots they were
// exported from, so persisted tables referencing those handles stay
// valid verbatim. Re-importing an identical blob at an occupied slot
// is a no-op; a conflicting blob is an error.
func (s *Store) Import(handles []int64, blobs [][]byte) error {
	if len(handles) != len(blobs) {
		return fmt.Errorf("sketch: import of %d handles with %d blobs", len(handles), len(blobs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, h := range handles {
		if h >= 0 {
			return fmt.Errorf("sketch: import of raw measure word %d", h)
		}
		// Validate before installing.
		if _, err := s.decodeBlob(blobs[i]); err != nil {
			return fmt.Errorf("sketch: import handle %d: %w", h, err)
		}
		shardID, idx := decodeHandle(h)
		sh := s.shards[shardID]
		if sh == nil {
			sh = &shard{}
			s.shards[shardID] = sh
		}
		if shardID >= s.nextScratch {
			s.nextScratch = shardID + 1
		}
		for len(sh.entries) <= idx {
			sh.entries = append(sh.entries, nil)
		}
		if e := sh.entries[idx]; e != nil {
			if string(e.blob) != string(blobs[i]) {
				return fmt.Errorf("sketch: import conflicts with live sketch at handle %d", h)
			}
			continue
		}
		blob := append([]byte(nil), blobs[i]...)
		sh.entries[idx] = &entry{blob: blob}
		s.entries++
		s.sealed += len(blob)
	}
	return nil
}

// Combiner is one shard's view of the store, implementing
// record.StateCombiner. Combine may mutate open accumulators it owns
// (handles it minted that are not yet sealed); every other measure
// word is read-only to it.
type Combiner struct {
	s     *Store
	shard uint32
}

// Store returns the backing store.
func (c *Combiner) Store() *Store { return c.s }

// Combine implements record.StateCombiner. If a is an open accumulator
// owned by this combiner's shard it absorbs b in place; otherwise a
// fresh open accumulator absorbing both operands is minted. Because
// run boundaries determine where fresh accumulators start, the minted
// handle sequence — and therefore every handle word in emitted tables
// — is identical across kernel on/off execution paths.
func (c *Combiner) Combine(a, b int64) int64 {
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if a < 0 {
		shardID, _ := decodeHandle(a)
		e := s.lookup(a)
		if e.open {
			if shardID != c.shard {
				panic(fmt.Sprintf("sketch: open sketch %d from shard %d crossed into shard %d — seal-on-emit violated", a, shardID, c.shard))
			}
			before := e.res
			s.absorb(e.dec, b)
			e.res = e.dec.Bytes()
			s.charge(e.res - before)
			return a
		}
	}
	dec := s.newSketch()
	s.absorb(dec, a)
	s.absorb(dec, b)
	sh := s.shards[c.shard]
	if sh == nil {
		sh = &shard{}
		s.shards[c.shard] = sh
	}
	idx := len(sh.entries)
	sh.entries = append(sh.entries, &entry{dec: dec, res: dec.Bytes(), open: true})
	s.entries++
	s.charge(dec.Bytes())
	return encodeHandle(c.shard, idx)
}

// Seal implements record.StateCombiner: freeze an open accumulator
// into its canonical blob (identity on raw words and sealed handles).
// The decoded state stays cached in the arena, evictable.
func (c *Combiner) Seal(h int64) int64 {
	if h >= 0 {
		return h
	}
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.lookup(h)
	if !e.open {
		return h
	}
	e.open = false
	e.blob = e.dec.AppendBinary(nil)
	s.sealed += len(e.blob)
	e.el = s.lru.PushFront(e)
	s.evict()
	return h
}

// StateBytes implements record.StateCombiner.
func (c *Combiner) StateBytes(h int64) int { return c.s.StateBytes(h) }
