package rolap

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/lattice"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	in, oracle := loadRandom(t, 1200, 31)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Processors() != 3 {
		t.Fatalf("Processors = %d", loaded.Processors())
	}
	if len(loaded.Views()) != len(cube.Views()) {
		t.Fatalf("views %d != %d", len(loaded.Views()), len(cube.Views()))
	}
	// Queries agree with the original and the oracle.
	queries := []struct {
		dims []string
		key  []uint32
	}{
		{[]string{"store"}, []uint32{5}},
		{[]string{"month", "channel"}, []uint32{2, 1}},
		{nil, nil},
	}
	for _, q := range queries {
		a, err1 := cube.Aggregate(q.dims, q.key)
		b, err2 := loaded.Aggregate(q.dims, q.key)
		if err1 != nil || err2 != nil || a != b || a != oracle(q.dims, q.key) {
			t.Fatalf("query %v: orig %d (%v), loaded %d (%v)", q.dims, a, err1, b, err2)
		}
	}
	// GroupBy works on loaded cubes too.
	vw, err := loaded.GroupBy([]string{"product"}, map[string]uint32{"channel": 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		if want := oracle([]string{"product", "channel"}, []uint32{key[0], 0}); m != want {
			t.Fatalf("loaded GroupBy product %d = %d, want %d", key[0], m, want)
		}
	}
	// Metrics survive.
	if loaded.Metrics().OutputRows != cube.Metrics().OutputRows {
		t.Fatal("metrics lost")
	}
}

func TestSaveLoadWithDictionaries(t *testing.T) {
	in, err := LoadCSV(strings.NewReader(salesCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Dictionaries travel with the snapshot: query by decoded name via
	// the loaded cube's input.
	vw, err := loaded.View([]string{"region"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		if loadedName := loadedDecode(loaded, "region", key[0]); loadedName == "east" && m == 330 {
			found = true
		}
	}
	if !found {
		t.Fatal("east=330 not found after reload")
	}
}

// loadedDecode decodes through the loaded cube's internal input.
func loadedDecode(c *Cube, dim string, code uint32) string {
	return c.in.Decode(dim, code)
}

func TestLoadCubeErrors(t *testing.T) {
	if _, err := LoadCube(strings.NewReader("not a gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(savedCube{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCube(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}

// saveLoad round-trips a cube through the gob snapshot.
func saveLoad(t *testing.T, c *Cube) *Cube {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestSaveLoadRehydratesQueryState is the regression test for the
// loader leaving query-side state unhydrated: a loaded cube must have
// a live distributed engine (not the gather-and-scan fallback), usable
// prefix indexes, correct smallest-superset planning inputs, and
// serving must work — all without rebuilding.
func TestSaveLoadRehydratesQueryState(t *testing.T) {
	in, oracle := loadRandom(t, 1500, 37)
	cube, err := Build(in, Options{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	loaded := saveLoad(t, cube)

	if loaded.machine == nil || loaded.engine == nil {
		t.Fatal("loaded cube has no rehydrated machine/engine")
	}
	if loaded.machine.P() != 4 {
		t.Fatalf("rehydrated machine has %d procs, want 4", loaded.machine.P())
	}
	// Every rank concatenation reproduces the original view, and the
	// planning row counts drive the same source-view choices.
	checkCubesEqual(t, loaded, cube)
	for _, dims := range [][]string{{"store"}, {"month", "channel"}, {"product", "store"}} {
		want, err := cube.smallestSuperset(mustView(t, cube, dims))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.smallestSuperset(mustView(t, loaded, dims))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("planner picks %v on loaded cube, %v on original", got, want)
		}
	}

	// A server over the loaded cube answers from the prefix index.
	s, err := loaded.NewServer(ServerOptions{})
	if err != nil {
		t.Fatalf("loaded cube cannot serve: %v", err)
	}
	ctx := context.Background()
	got, qm, err := s.Aggregate(ctx, []string{"store"}, []uint32{5})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle([]string{"store"}, []uint32{5}); got != want {
		t.Fatalf("served aggregate %d, oracle %d", got, want)
	}
	if !qm.IndexUsed {
		t.Fatalf("prefix index not rebuilt on loaded cube: %+v", qm)
	}
}

func mustView(t *testing.T, c *Cube, dims []string) lattice.ViewID {
	t.Helper()
	v, err := c.in.viewOf(dims)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSaveLoadThenIngest checks the loader's root-aligned scatter: a
// batch ingested into a loaded cube must land exactly where a scratch
// rebuild on all the facts does.
func TestSaveLoadThenIngest(t *testing.T) {
	rows, meas := randomFacts(900, 97)
	base := 700
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 3})
	loaded := saveLoad(t, cube)

	im, err := loaded.Ingest(rows[base:], meas[base:])
	if err != nil {
		t.Fatal(err)
	}
	if im.Rows != int64(len(rows)-base) || im.DeltaMergeSeconds <= 0 {
		t.Fatalf("batch metrics implausible: %+v", im)
	}
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 3})
	checkCubesEqual(t, loaded, fresh)
	if got, want := loaded.Metrics().OutputRows, fresh.Metrics().OutputRows; got != want {
		t.Fatalf("OutputRows %d after load+ingest, fresh build %d", got, want)
	}
	// Ingesting into the original and into its loaded copy agree too.
	if _, err := cube.Ingest(rows[base:], meas[base:]); err != nil {
		t.Fatal(err)
	}
	checkCubesEqual(t, loaded, cube)
}

// TestSaveLoadPendingAndVersions: buffered facts and view version
// counters survive the round trip.
func TestSaveLoadPendingAndVersions(t *testing.T) {
	rows, meas := randomFacts(800, 113)
	base := 600
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})

	// One applied batch bumps versions; a few buffered rows stay pending.
	if _, err := cube.Ingest(rows[base:base+100], meas[base:base+100]); err != nil {
		t.Fatal(err)
	}
	g, err := cube.NewIngester(IngesterOptions{MaxRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := base + 100; i < len(rows); i++ {
		if _, _, err := g.Add(rows[i], meas[i]); err != nil {
			t.Fatal(err)
		}
	}
	loaded := saveLoad(t, cube)

	if got, want := loaded.Pending(), cube.Pending(); got != want || got != len(rows)-base-100 {
		t.Fatalf("pending %d after load, want %d", got, want)
	}
	origVers := cube.engine.Versions()
	loadVers := loaded.engine.Versions()
	for v, ver := range origVers {
		if ver > 0 && loadVers[v] != ver {
			t.Fatalf("view %v version %d after load, want %d", v, loadVers[v], ver)
		}
	}
	// Flushing the restored buffer completes the stream identically to
	// a scratch rebuild on everything.
	if _, err := loaded.Flush(); err != nil {
		t.Fatal(err)
	}
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 2})
	checkCubesEqual(t, loaded, fresh)
}

// TestSaveDuringIngestNotTorn: Save racing a concurrent Ingest must
// serialize at a committed batch boundary. Every snapshot taken while
// batches land must reload to a cube in which all views agree on the
// grand total, and that total is one of the committed prefix totals —
// never a torn mixture of pre- and post-batch slices.
func TestSaveDuringIngestNotTorn(t *testing.T) {
	rows, meas := randomFacts(700, 311)
	base := 300
	cube := buildFromFacts(t, rows[:base], meas[:base], Options{Processors: 2})

	// Totals at every committed boundary.
	allowed := map[int64]bool{}
	var total int64
	for _, m := range meas[:base] {
		total += m
	}
	allowed[total] = true
	const batch = 50
	for lo := base; lo < len(rows); lo += batch {
		for _, m := range meas[lo : lo+batch] {
			total += m
		}
		allowed[total] = true
	}

	done := make(chan error, 1)
	go func() {
		for lo := base; lo < len(rows); lo += batch {
			if _, err := cube.Ingest(rows[lo:lo+batch], meas[lo:lo+batch]); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var snaps [][]byte
	ingesting := true
	for ingesting {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			ingesting = false
		default:
		}
		var buf bytes.Buffer
		if err := cube.Save(&buf); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, buf.Bytes())
	}

	for k, snap := range snaps {
		loaded, err := LoadCube(bytes.NewReader(snap))
		if err != nil {
			t.Fatalf("snapshot %d: %v", k, err)
		}
		grand, err := loaded.Aggregate(nil, nil)
		if err != nil {
			t.Fatalf("snapshot %d: %v", k, err)
		}
		if !allowed[grand] {
			t.Fatalf("snapshot %d: grand total %d is not any committed boundary", k, grand)
		}
		// Every view of a Sum cube re-aggregates to the same grand
		// total; a torn save (some views pre-batch, some post-batch)
		// would disagree.
		for _, dims := range loaded.Views() {
			vw, err := loaded.View(dims)
			if err != nil {
				t.Fatalf("snapshot %d view %v: %v", k, dims, err)
			}
			var sum int64
			for i := 0; i < vw.Len(); i++ {
				_, m := vw.Row(i)
				sum += m
			}
			if sum != grand {
				t.Fatalf("snapshot %d: view %v sums to %d, grand total %d — torn save", k, dims, sum, grand)
			}
		}
	}
	// The last snapshot (taken after ingest finished) reloads to the
	// complete stream: identical to a scratch rebuild on all the facts.
	loaded, err := LoadCube(bytes.NewReader(snaps[len(snaps)-1]))
	if err != nil {
		t.Fatal(err)
	}
	fresh := buildFromFacts(t, rows, meas, Options{Processors: 2})
	checkCubesEqual(t, loaded, fresh)
}

// TestLoadV1Snapshot: version-1 snapshots (no hardware, iceberg, or
// version records) still load and serve queries, but reject ingest.
func TestLoadV1Snapshot(t *testing.T) {
	in, oracle := loadRandom(t, 900, 131)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Encode the v1 wire form: the same struct with only v1 fields set.
	sc := savedCube{
		Version:    1,
		Dimensions: cube.in.schema.Dimensions,
		Dicts:      cube.in.dicts,
		Op:         int(cube.op),
		Metrics:    cube.Metrics(),
	}
	for _, v := range cube.views {
		vw, ok := cube.gather(v)
		if !ok {
			t.Fatalf("view %v not materialized", v)
		}
		sv := savedView{View: uint32(v), Order: cube.orders[v]}
		for i := 0; i < vw.rows.Len(); i++ {
			sv.Dims = append(sv.Dims, vw.rows.Row(i)...)
			sv.Meas = append(sv.Meas, vw.rows.Meas(i))
		}
		sc.Views = append(sc.Views, sv)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Aggregate([]string{"month", "channel"}, []uint32{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle([]string{"month", "channel"}, []uint32{2, 1}); got != want {
		t.Fatalf("v1 loaded aggregate %d, oracle %d", got, want)
	}
	if _, err := loaded.Ingest([][]uint32{{0, 0, 0, 0}}, []int64{1}); err == nil {
		t.Fatal("v1-loaded cube accepted an ingest batch")
	}
}

// TestLoadV2SnapshotUnderColumnarCode: a snapshot written with the
// columnar store disabled is the exact v2 row-form wire format; the
// v3-capable loader must still accept it and answer queries
// identically to the live cube.
func TestLoadV2SnapshotUnderColumnarCode(t *testing.T) {
	in, oracle := loadRandom(t, 1000, 59)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev := colstore.SetEnabled(false)
	var v2 bytes.Buffer
	err = cube.Save(&v2)
	colstore.SetEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}
	var sc savedCube
	if err := gob.NewDecoder(bytes.NewReader(v2.Bytes())).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	if sc.Version != 2 {
		t.Fatalf("columnar-disabled save wrote version %d, want 2", sc.Version)
	}
	loaded, err := LoadCube(&v2)
	if err != nil {
		t.Fatal(err)
	}
	checkCubesEqual(t, loaded, cube)
	if got := mustAggregate(t, loaded, []string{"store"}, []uint32{3}); got != oracle([]string{"store"}, []uint32{3}) {
		t.Fatalf("v2-loaded aggregate %d, oracle %d", got, oracle([]string{"store"}, []uint32{3}))
	}
}

func mustAggregate(t *testing.T, c *Cube, dims []string, key []uint32) int64 {
	t.Helper()
	got, err := c.Aggregate(dims, key)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSaveLoadColumnarMatchesRowOracle: the same cube saved through
// the v3 columnar path and the v2 row path reloads to byte-identical
// views and answers.
func TestSaveLoadColumnarMatchesRowOracle(t *testing.T) {
	in, oracle := loadRandom(t, 1100, 67)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	if err := cube.Save(&v3); err != nil {
		t.Fatal(err)
	}
	var sc savedCube
	if err := gob.NewDecoder(bytes.NewReader(v3.Bytes())).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	if sc.Version != 3 {
		t.Fatalf("columnar save wrote version %d, want 3", sc.Version)
	}
	prev := colstore.SetEnabled(false)
	var v2 bytes.Buffer
	err = cube.Save(&v2)
	colstore.SetEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Len() >= v2.Len() {
		t.Fatalf("v3 snapshot (%d bytes) not smaller than v2 (%d bytes)", v3.Len(), v2.Len())
	}
	fromV3, err := LoadCube(&v3)
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := LoadCube(&v2)
	if err != nil {
		t.Fatal(err)
	}
	checkCubesEqual(t, fromV3, fromV2)
	for _, q := range []struct {
		dims []string
		key  []uint32
	}{{[]string{"month"}, []uint32{4}}, {nil, nil}} {
		a := mustAggregate(t, fromV3, q.dims, q.key)
		if b := mustAggregate(t, fromV2, q.dims, q.key); a != b || a != oracle(q.dims, q.key) {
			t.Fatalf("query %v: v3 %d, v2 %d, oracle %d", q.dims, a, b, oracle(q.dims, q.key))
		}
	}
}

// TestLoadCubeCorruptColumnarBlock: a flipped payload bit and a
// structurally damaged column must both surface as errors wrapping
// colstore.ErrCorrupt — never a panic, never a silently wrong cube.
func TestLoadCubeCorruptColumnarBlock(t *testing.T) {
	in, _ := loadRandom(t, 800, 71)
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := func(t *testing.T, damage func(sc *savedCube) bool) error {
		t.Helper()
		var sc savedCube
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&sc); err != nil {
			t.Fatal(err)
		}
		if !damage(&sc) {
			t.Fatal("no columnar block to damage")
		}
		var bad bytes.Buffer
		if err := gob.NewEncoder(&bad).Encode(sc); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCube(&bad)
		return err
	}

	err = corrupt(t, func(sc *savedCube) bool {
		for i := range sc.Views {
			for _, s := range sc.Views[i].Slices {
				if s.Corrupt(0xdeadbeef) {
					return true
				}
			}
		}
		return false
	})
	if !errors.Is(err, colstore.ErrCorrupt) {
		t.Fatalf("bit flip: err = %v, want colstore.ErrCorrupt", err)
	}

	err = corrupt(t, func(sc *savedCube) bool {
		for i := range sc.Views {
			for _, s := range sc.Views[i].Slices {
				for j := range s.Cols {
					if len(s.Cols[j].Words) > 0 {
						s.Cols[j].Words = s.Cols[j].Words[:len(s.Cols[j].Words)-1]
						return true
					}
				}
			}
		}
		return false
	})
	if !errors.Is(err, colstore.ErrCorrupt) {
		t.Fatalf("truncated column: err = %v, want colstore.ErrCorrupt", err)
	}
}

// TestLoadCubeTruncatedStream: cutting the v3 gob stream at arbitrary
// points must produce an error, not a panic or a partial cube.
func TestLoadCubeTruncatedStream(t *testing.T) {
	in, _ := loadRandom(t, 800, 73)
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, k := range []int{1, len(b) / 4, len(b) / 2, 3 * len(b) / 4, len(b) - 1} {
		if _, err := LoadCube(bytes.NewReader(b[:k])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", k, len(b))
		}
	}
}
