package rolap

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	in, oracle := loadRandom(t, 1200, 31)
	cube, err := Build(in, Options{Processors: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Processors() != 3 {
		t.Fatalf("Processors = %d", loaded.Processors())
	}
	if len(loaded.Views()) != len(cube.Views()) {
		t.Fatalf("views %d != %d", len(loaded.Views()), len(cube.Views()))
	}
	// Queries agree with the original and the oracle.
	queries := []struct {
		dims []string
		key  []uint32
	}{
		{[]string{"store"}, []uint32{5}},
		{[]string{"month", "channel"}, []uint32{2, 1}},
		{nil, nil},
	}
	for _, q := range queries {
		a, err1 := cube.Aggregate(q.dims, q.key)
		b, err2 := loaded.Aggregate(q.dims, q.key)
		if err1 != nil || err2 != nil || a != b || a != oracle(q.dims, q.key) {
			t.Fatalf("query %v: orig %d (%v), loaded %d (%v)", q.dims, a, err1, b, err2)
		}
	}
	// GroupBy works on loaded cubes too.
	vw, err := loaded.GroupBy([]string{"product"}, map[string]uint32{"channel": 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		if want := oracle([]string{"product", "channel"}, []uint32{key[0], 0}); m != want {
			t.Fatalf("loaded GroupBy product %d = %d, want %d", key[0], m, want)
		}
	}
	// Metrics survive.
	if loaded.Metrics().OutputRows != cube.Metrics().OutputRows {
		t.Fatal("metrics lost")
	}
}

func TestSaveLoadWithDictionaries(t *testing.T) {
	in, err := LoadCSV(strings.NewReader(salesCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := Build(in, Options{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCube(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Dictionaries travel with the snapshot: query by decoded name via
	// the loaded cube's input.
	vw, err := loaded.View([]string{"region"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < vw.Len(); i++ {
		key, m := vw.Row(i)
		if loadedName := loadedDecode(loaded, "region", key[0]); loadedName == "east" && m == 330 {
			found = true
		}
	}
	if !found {
		t.Fatal("east=330 not found after reload")
	}
}

// loadedDecode decodes through the loaded cube's internal input.
func loadedDecode(c *Cube, dim string, code uint32) string {
	return c.in.Decode(dim, code)
}

func TestLoadCubeErrors(t *testing.T) {
	if _, err := LoadCube(strings.NewReader("not a gob")); err == nil {
		t.Fatal("garbage accepted")
	}
}
